// Command lmreport produces a human-readable congestion report for one
// AS of the synthetic survey world: its aggregated queuing-delay signal,
// periodogram, classification, and probe details — the single-network
// drill-down view an operator would want after a survey flags their AS.
//
// Usage:
//
//	lmreport -asn 64500
//	lmreport -asn 64511 -period 2020-04
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/last-mile-congestion/lastmile/internal/core"
	"github.com/last-mile-congestion/lastmile/internal/lastmile"
	"github.com/last-mile-congestion/lastmile/internal/report"
	"github.com/last-mile-congestion/lastmile/internal/scenario"
)

func main() {
	var (
		asn    = flag.Uint64("asn", 64500, "AS number within the survey world (64500 + index)")
		period = flag.String("period", "2019-09", "measurement period label (2018-03 .. 2019-09, 2020-04)")
		seed   = flag.Uint64("seed", 2020, "simulation seed")
		ases   = flag.Int("ases", 0, "world size (default 646)")
	)
	flag.Parse()
	if err := run(*asn, *period, *seed, *ases); err != nil {
		fmt.Fprintln(os.Stderr, "lmreport:", err)
		os.Exit(1)
	}
}

func run(asn uint64, periodLabel string, seed uint64, ases int) error {
	cfg := scenario.DefaultConfig(seed)
	if ases > 0 {
		cfg.ASes = ases
	}
	world, err := scenario.Build(cfg)
	if err != nil {
		return err
	}
	var target *scenario.ASInfo
	for _, a := range world.ASes {
		if uint64(a.Network.ASN) == asn {
			target = a
			break
		}
	}
	if target == nil {
		return fmt.Errorf("AS%d is not in the world (range: 64500..%d)", asn, 64500+len(world.ASes)-1)
	}
	var period scenario.Period
	found := false
	for _, p := range scenario.AllPeriods() {
		if p.Label == periodLabel {
			period, found = p, true
			break
		}
	}
	if !found {
		return fmt.Errorf("unknown period %q", periodLabel)
	}

	perProbe, err := world.PerProbeDelays(target, period)
	if err != nil {
		return err
	}
	signal, err := lastmile.AggregateQueuingDelay(perProbe)
	if err != nil {
		return err
	}
	probes := len(perProbe)
	cls, err := core.Classify(signal, core.DefaultClassifierOptions())
	if err != nil {
		return err
	}
	boot, err := core.BootstrapAmplitude(perProbe, core.BootstrapOptions{Seed: seed})
	if err != nil {
		return err
	}
	mask, err := core.PeakHourMask(signal, cls, core.DefaultGuardOptions())
	if err != nil {
		return err
	}

	fmt.Printf("Last-mile congestion report — %s, period %s\n\n", target.Network.Name, period.Label)
	tb := report.NewTable("field", "value")
	tb.AddRowf("country", target.Network.CC)
	tb.AddRowf("access technology", target.Network.Tech.String())
	rank, _ := world.Ranking.Rank(target.Network.ASN)
	users, _ := world.Ranking.Users(target.Network.ASN)
	tb.AddRowf("APNIC eyeball rank", rank)
	tb.AddRowf("estimated users", users)
	tb.AddRowf("contributing probes", probes)
	tb.AddRowf("classification", cls.Class.String())
	tb.AddRowf("daily amplitude (ms)", fmt.Sprintf("%.2f", cls.DailyAmplitude))
	tb.AddRowf("amplitude 90% CI (bootstrap)", fmt.Sprintf("%.2f - %.2f ms", boot.CI90Low, boot.CI90High))
	tb.AddRowf("class stability (bootstrap)", fmt.Sprintf("%.0f%%", 100*boot.ClassStability))
	tb.AddRowf("prominent frequency (c/h)", fmt.Sprintf("%.4f", cls.Peak.Freq))
	tb.AddRowf("prominent is daily", cls.IsDaily)
	tb.AddRowf("bins to exclude from delay studies", fmt.Sprintf("%.0f%% (peak-hour guard, §6)", 100*core.MaskedFraction(mask)))
	if err := tb.Render(os.Stdout); err != nil {
		return err
	}

	fmt.Printf("\nAggregated queuing delay (%d bins):\n%s\n", signal.Len(),
		report.Sparkline(report.Downsample(signal.Values, 96), 0))
	fmt.Printf("\nPeriodogram (DC..Nyquist, peak-to-peak ms):\n%s\n",
		report.Sparkline(report.Downsample(cls.Periodogram.P2P[1:], 96), 0))
	return nil
}
