// Command lmsurvey runs the paper's last-mile congestion pipeline over a
// traceroute dataset: per-probe last-mile estimation, 30-minute median
// binning, population aggregation, and Welch-based classification.
//
// It reads newline-delimited RIPE Atlas traceroute JSON or the binary
// wire format (cmd/atlasgen -format binary), detecting the encoding
// automatically — either genuine Atlas API output or synthetic data —
// groups probes by origin AS (probe metadata, then an optional RIB
// longest-prefix match, then the archive's own in-band attribution for
// wire input), attributes each traceroute, and hands the attributed
// dataset to the batch survey runner, which replays it through the
// shared incremental delay engine and classifies every AS.
//
// Usage:
//
//	atlasgen -isp A -days 8 | lmsurvey
//	lmsurvey -in traces.jsonl -rib rib.txt -csv signals/
//	lmsurvey -in traces.jsonl -workers 8 -shards 8
//	lmsurvey -in archive.lmw -split 8
//
// The survey fans out over -workers goroutines and -shards engine lock
// stripes (both default GOMAXPROCS); -split K additionally replays the
// dataset map-reduce style through K independent engines merged at the
// end (engine.Merge). The report is byte-identical at any worker,
// shard, or split count.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	lastmile "github.com/last-mile-congestion/lastmile"
	"github.com/last-mile-congestion/lastmile/internal/ioutil"
	"github.com/last-mile-congestion/lastmile/internal/report"
)

func main() {
	var (
		in       = flag.String("in", "-", "traceroute JSONL input (- for stdin)")
		ribIn    = flag.String("rib", "", "optional RIB file ('prefix origin' lines) for probe->AS mapping")
		probesIn = flag.String("probes", "", "optional probe metadata file (Atlas probe-archive JSON) for probe->AS mapping and anchor exclusion")
		csvDir   = flag.String("csv", "", "optional directory for per-AS signal CSV dumps")
		workers  = flag.Int("workers", 0, "worker goroutines for the per-AS pipeline (0 = GOMAXPROCS, 1 = serial; output is identical at any count)")
		shards   = flag.Int("shards", 0, "engine lock stripes for the replay (0 = GOMAXPROCS; output is identical at any count)")
		split    = flag.Int("split", 1, "map-reduce replay: split the dataset across this many independent engines and merge (output is identical at any count)")
		metrics  = flag.String("metrics", "", "write an end-of-run telemetry snapshot (Prometheus text) to this file (- for stdout)")
	)
	flag.Parse()
	if err := run(*in, *ribIn, *probesIn, *csvDir, *metrics, *workers, *shards, *split); err != nil {
		fmt.Fprintln(os.Stderr, "lmsurvey:", err)
		os.Exit(1)
	}
}

func run(in, ribIn, probesIn, csvDir, metricsOut string, workers, shards, split int) error {
	var r io.Reader = os.Stdin
	if in != "-" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer ioutil.CloseQuiet(f)
		r = f
	}
	var rib *lastmile.RIB
	if ribIn != "" {
		f, err := os.Open(ribIn)
		if err != nil {
			return err
		}
		parsed, err := lastmile.ParseRIB(f)
		ioutil.CloseQuiet(f)
		if err != nil {
			return err
		}
		rib = parsed
	}
	var registry *lastmile.ProbeRegistry
	if probesIn != "" {
		f, err := os.Open(probesIn)
		if err != nil {
			return err
		}
		parsed, err := lastmile.ParseProbeRegistry(f)
		ioutil.CloseQuiet(f)
		if err != nil {
			return err
		}
		registry = parsed
	}

	// Attribution pass: resolve each probe's origin AS once (probe
	// metadata, when given, drives AS attribution and the §2 anchor
	// exclusion; a RIB longest-prefix match is the fallback) and tag
	// every traceroute with it. The survey runner does the rest.
	probeASN := map[int]lastmile.ASN{}
	asProbes := map[lastmile.ASN]map[int]bool{}
	var results []lastmile.AttributedResult
	var tMin, tMax time.Time
	sc := lastmile.NewResultScanner(r)
	total, anchorsSkipped := 0, 0
	for sc.Scan() {
		res := sc.Result()
		total++
		var meta *lastmile.ProbeInfo
		if registry != nil {
			if info, ok := registry.ByID(res.ProbeID); ok {
				if info.IsAnchor {
					anchorsSkipped++
					continue
				}
				meta = info
			}
		}
		asn, seen := probeASN[res.ProbeID]
		if !seen {
			switch {
			case meta != nil && meta.ASNv4 != 0:
				asn = meta.ASNv4
			case rib != nil && res.FromAddr.IsValid():
				if origin, err := rib.OriginOf(res.FromAddr); err == nil {
					asn = origin
				}
			case sc.ASN() != 0:
				// Binary wire archives carry the origin AS in-band;
				// explicit -probes / -rib attribution takes precedence.
				asn = sc.ASN()
			}
			probeASN[res.ProbeID] = asn
		}
		if asProbes[asn] == nil {
			asProbes[asn] = map[int]bool{}
		}
		asProbes[asn][res.ProbeID] = true
		// Clone: the scanner reuses res's storage on the next Scan.
		results = append(results, lastmile.AttributedResult{ASN: asn, Result: res.Clone()})
		if tMin.IsZero() || res.Timestamp.Before(tMin) {
			tMin = res.Timestamp
		}
		if res.Timestamp.After(tMax) {
			tMax = res.Timestamp
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if total == 0 {
		return fmt.Errorf("no traceroutes in input")
	}
	start := tMin.Truncate(lastmile.DefaultBinWidth)
	end := tMax.Add(lastmile.DefaultBinWidth).Truncate(lastmile.DefaultBinWidth)

	fmt.Printf("lmsurvey: %d traceroutes, %d probes, %d AS group(s), %s .. %s",
		total, len(probeASN), len(asProbes), start.Format(time.RFC3339), end.Format(time.RFC3339))
	if anchorsSkipped > 0 {
		fmt.Printf(" (%d anchor traceroutes excluded)", anchorsSkipped)
	}
	fmt.Print("\n\n")

	reg := lastmile.DefaultMetrics()
	survey, skipped, err := lastmile.RunSurveySharded(start.Format("2006-01"), results, split, lastmile.SurveyOptions{
		Start:   start,
		End:     end,
		Workers: workers,
		Shards:  shards,
		Metrics: reg,
	})
	if err != nil {
		return err
	}
	if metricsOut != "" {
		defer func() {
			if derr := reg.DumpFile(metricsOut); derr != nil {
				fmt.Fprintln(os.Stderr, "lmsurvey: metrics dump:", derr)
			}
		}()
	}
	skipReason := map[lastmile.ASN]error{}
	for _, s := range skipped {
		skipReason[s.ASN] = s.Reason
	}

	// One row per input AS in ASN order: classified ASes with their
	// verdicts, skipped ASes with their reasons.
	asns := make([]lastmile.ASN, 0, survey.Len()+len(skipped))
	asns = append(asns, survey.ASNs()...)
	for _, s := range skipped {
		asns = append(asns, s.ASN)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })

	tb := report.NewTable("AS", "probes", "class", "daily amp (ms)", "peak freq (c/h)", "signal")
	for _, asn := range asns {
		res := survey.Results[asn]
		if res == nil {
			reason := skipReason[asn]
			label := fmt.Sprintf("(unclassifiable: %v)", reason)
			if errors.Is(reason, lastmile.ErrNoUsableData) {
				label = "(no usable data)"
			}
			tb.AddRowf(asn.String(), len(asProbes[asn]), label, "-", "-", "")
			continue
		}
		tb.AddRowf(asn.String(), res.Probes, res.Class.String(),
			fmt.Sprintf("%.2f", res.DailyAmplitude),
			fmt.Sprintf("%.3f", res.Peak.Freq),
			report.Sparkline(report.Downsample(res.Signal.Values, 48), 0))
		if csvDir != "" {
			if err := dumpCSV(csvDir, asn, res.Signal); err != nil {
				return err
			}
		}
	}
	return tb.Render(os.Stdout)
}

func dumpCSV(dir string, asn lastmile.ASN, signal *lastmile.Series) (err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, fmt.Sprintf("%s.csv", asn)))
	if err != nil {
		return err
	}
	defer ioutil.CloseJoin(f, &err)
	return report.WriteSeriesCSV(f, "agg_queuing_delay_ms", signal)
}
