// Command lmsurvey runs the paper's last-mile congestion pipeline over a
// traceroute dataset: per-probe last-mile estimation, 30-minute median
// binning, population aggregation, and Welch-based classification.
//
// It reads newline-delimited RIPE Atlas traceroute JSON — either genuine
// Atlas API output or cmd/atlasgen's synthetic data — groups probes by
// origin AS (via an optional RIB for longest-prefix match, else by the
// probe's source), and classifies every AS.
//
// Usage:
//
//	atlasgen -isp A -days 8 | lmsurvey
//	lmsurvey -in traces.jsonl -rib rib.txt -csv signals/
//	lmsurvey -in traces.jsonl -workers 8
//
// The per-AS pipeline fans out over -workers goroutines (default
// GOMAXPROCS); the report is byte-identical at any worker count.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	lastmile "github.com/last-mile-congestion/lastmile"
	"github.com/last-mile-congestion/lastmile/internal/ioutil"
	"github.com/last-mile-congestion/lastmile/internal/parallel"
	"github.com/last-mile-congestion/lastmile/internal/report"
)

func main() {
	var (
		in       = flag.String("in", "-", "traceroute JSONL input (- for stdin)")
		ribIn    = flag.String("rib", "", "optional RIB file ('prefix origin' lines) for probe->AS mapping")
		probesIn = flag.String("probes", "", "optional probe metadata file (Atlas probe-archive JSON) for probe->AS mapping and anchor exclusion")
		csvDir   = flag.String("csv", "", "optional directory for per-AS signal CSV dumps")
		workers  = flag.Int("workers", 0, "worker goroutines for the per-AS pipeline (0 = GOMAXPROCS, 1 = serial; output is identical at any count)")
	)
	flag.Parse()
	if err := run(*in, *ribIn, *probesIn, *csvDir, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "lmsurvey:", err)
		os.Exit(1)
	}
}

func run(in, ribIn, probesIn, csvDir string, workers int) error {
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var r io.Reader = os.Stdin
	if in != "-" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer ioutil.CloseQuiet(f)
		r = f
	}
	var rib *lastmile.RIB
	if ribIn != "" {
		f, err := os.Open(ribIn)
		if err != nil {
			return err
		}
		parsed, err := lastmile.ParseRIB(f)
		ioutil.CloseQuiet(f)
		if err != nil {
			return err
		}
		rib = parsed
	}
	var registry *lastmile.ProbeRegistry
	if probesIn != "" {
		f, err := os.Open(probesIn)
		if err != nil {
			return err
		}
		parsed, err := lastmile.ParseProbeRegistry(f)
		ioutil.CloseQuiet(f)
		if err != nil {
			return err
		}
		registry = parsed
	}

	// Pass 1 is avoided: results are buffered per probe, and the
	// accumulator range is derived from observed timestamps.
	type probeData struct {
		asn     lastmile.ASN
		results []*lastmile.Result
	}
	probes := map[int]*probeData{}
	var tMin, tMax time.Time
	sc := lastmile.NewResultScanner(r)
	total, anchorsSkipped := 0, 0
	for sc.Scan() {
		res := sc.Result()
		total++
		// Probe metadata, when given, drives AS attribution and the §2
		// anchor exclusion; a RIB longest-prefix match is the fallback.
		var meta *lastmile.ProbeInfo
		if registry != nil {
			if info, ok := registry.ByID(res.ProbeID); ok {
				if info.IsAnchor {
					anchorsSkipped++
					continue
				}
				meta = info
			}
		}
		pd := probes[res.ProbeID]
		if pd == nil {
			pd = &probeData{}
			switch {
			case meta != nil && meta.ASNv4 != 0:
				pd.asn = meta.ASNv4
			case rib != nil && res.FromAddr.IsValid():
				if asn, err := rib.OriginOf(res.FromAddr); err == nil {
					pd.asn = asn
				}
			}
			probes[res.ProbeID] = pd
		}
		pd.results = append(pd.results, res)
		if tMin.IsZero() || res.Timestamp.Before(tMin) {
			tMin = res.Timestamp
		}
		if res.Timestamp.After(tMax) {
			tMax = res.Timestamp
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if total == 0 {
		return fmt.Errorf("no traceroutes in input")
	}
	start := tMin.Truncate(lastmile.DefaultBinWidth)
	end := tMax.Add(lastmile.DefaultBinWidth).Truncate(lastmile.DefaultBinWidth)

	// Group probes by AS and run the pipeline per AS.
	byAS := map[lastmile.ASN][]*probeData{}
	for _, pd := range probes {
		byAS[pd.asn] = append(byAS[pd.asn], pd)
	}
	fmt.Printf("lmsurvey: %d traceroutes, %d probes, %d AS group(s), %s .. %s",
		total, len(probes), len(byAS), start.Format(time.RFC3339), end.Format(time.RFC3339))
	if anchorsSkipped > 0 {
		fmt.Printf(" (%d anchor traceroutes excluded)", anchorsSkipped)
	}
	fmt.Print("\n\n")

	tb := report.NewTable("AS", "probes", "class", "daily amp (ms)", "peak freq (c/h)", "signal")
	asns := make([]lastmile.ASN, 0, len(byAS))
	for asn := range byAS {
		asns = append(asns, asn)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })

	// The per-AS pipelines are independent; fan them out and keep the
	// table in sorted-ASN order. Each AS's verdict depends only on its
	// own probes, so the output is identical at any worker count.
	type asVerdict struct {
		signal      *lastmile.Series // nil when no usable data
		n           int
		cls         lastmile.Classification
		classifyErr error
	}
	verdicts, err := parallel.Map(context.Background(), workers, len(asns), func(i int) (asVerdict, error) {
		group := byAS[asns[i]]
		accs := make([]*lastmile.ProbeAccumulator, 0, len(group))
		for _, pd := range group {
			acc, err := lastmile.NewProbeAccumulator(pd.results[0].ProbeID, start, end, lastmile.DefaultBinWidth)
			if err != nil {
				return asVerdict{}, err
			}
			for _, res := range pd.results {
				if err := acc.Add(res); err != nil {
					return asVerdict{}, err
				}
			}
			accs = append(accs, acc)
		}
		signal, n, err := lastmile.PopulationDelay(accs, lastmile.DefaultMinTraceroutes)
		if err != nil {
			return asVerdict{}, nil // no usable data; keep the row
		}
		cls, err := lastmile.Classify(signal, lastmile.DefaultClassifierOptions())
		if err != nil {
			return asVerdict{signal: signal, n: n, classifyErr: err}, nil
		}
		return asVerdict{signal: signal, n: n, cls: cls}, nil
	})
	if err != nil {
		return err
	}
	for i, asn := range asns {
		v := verdicts[i]
		switch {
		case v.signal == nil:
			tb.AddRowf(asn.String(), len(byAS[asn]), "(no usable data)", "-", "-", "")
		case v.classifyErr != nil:
			tb.AddRowf(asn.String(), v.n, fmt.Sprintf("(unclassifiable: %v)", v.classifyErr), "-", "-", "")
		default:
			tb.AddRowf(asn.String(), v.n, v.cls.Class.String(),
				fmt.Sprintf("%.2f", v.cls.DailyAmplitude),
				fmt.Sprintf("%.3f", v.cls.Peak.Freq),
				report.Sparkline(report.Downsample(v.signal.Values, 48), 0))
			if csvDir != "" {
				if err := dumpCSV(csvDir, asn, v.signal); err != nil {
					return err
				}
			}
		}
	}
	return tb.Render(os.Stdout)
}

func dumpCSV(dir string, asn lastmile.ASN, signal *lastmile.Series) (err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, fmt.Sprintf("%s.csv", asn)))
	if err != nil {
		return err
	}
	defer ioutil.CloseJoin(f, &err)
	return report.WriteSeriesCSV(f, "agg_queuing_delay_ms", signal)
}
