package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// exec runs the CLI entry point with args and returns exit code and
// captured streams.
func exec(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestCleanPackageExitsZero(t *testing.T) {
	code, stdout, stderr := exec(t, "testdata/clean")
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stdout=%q stderr=%q", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("clean run printed findings: %q", stdout)
	}
}

func TestFindingsExitOne(t *testing.T) {
	code, stdout, stderr := exec(t, "testdata/dirty")
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr=%q", code, stderr)
	}
	if !strings.Contains(stdout, "floatcmp") || !strings.Contains(stdout, "dirty.go") {
		t.Errorf("findings output missing analyzer or file: %q", stdout)
	}
	if !strings.Contains(stderr, "1 finding") {
		t.Errorf("stderr missing findings summary: %q", stderr)
	}
}

func TestLoadErrorExitsTwo(t *testing.T) {
	code, _, stderr := exec(t, "testdata/broken")
	if code != 2 {
		t.Fatalf("exit = %d, want 2; stderr=%q", code, stderr)
	}
	if !strings.Contains(stderr, "lmvet:") {
		t.Errorf("stderr missing error report: %q", stderr)
	}
}

func TestBadPatternExitsTwo(t *testing.T) {
	code, _, _ := exec(t, "testdata/no-such-dir")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestUnknownFlagExitsTwo(t *testing.T) {
	code, _, _ := exec(t, "-definitely-not-a-flag")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestJSONShape(t *testing.T) {
	code, stdout, _ := exec(t, "-json", "testdata/dirty")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var report struct {
		Count       int `json:"count"`
		Diagnostics []struct {
			Analyzer string `json:"analyzer"`
			File     string `json:"file"`
			Line     int    `json:"line"`
			Column   int    `json:"column"`
			Message  string `json:"message"`
		} `json:"diagnostics"`
	}
	if err := json.Unmarshal([]byte(stdout), &report); err != nil {
		t.Fatalf("output is not the documented JSON shape: %v\n%s", err, stdout)
	}
	if report.Count != 1 || len(report.Diagnostics) != 1 {
		t.Fatalf("count = %d, diagnostics = %d, want 1 and 1", report.Count, len(report.Diagnostics))
	}
	d := report.Diagnostics[0]
	if d.Analyzer != "floatcmp" {
		t.Errorf("analyzer = %q, want floatcmp", d.Analyzer)
	}
	if !strings.HasSuffix(d.File, "dirty.go") || d.Line == 0 || d.Column == 0 {
		t.Errorf("position not populated: %+v", d)
	}
	if d.Message == "" {
		t.Errorf("empty message")
	}
}

func TestJSONCleanRun(t *testing.T) {
	code, stdout, _ := exec(t, "-json", "testdata/clean")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	var report struct {
		Count       int   `json:"count"`
		Diagnostics []any `json:"diagnostics"`
	}
	if err := json.Unmarshal([]byte(stdout), &report); err != nil {
		t.Fatalf("clean -json output unparsable: %v", err)
	}
	if report.Count != 0 || len(report.Diagnostics) != 0 {
		t.Errorf("clean run reported count=%d diagnostics=%d", report.Count, len(report.Diagnostics))
	}
}

func TestDisableFlagSuppressesFindings(t *testing.T) {
	code, stdout, stderr := exec(t, "-floatcmp=false", "testdata/dirty")
	if code != 0 {
		t.Fatalf("exit = %d, want 0 with floatcmp disabled; stdout=%q stderr=%q", code, stdout, stderr)
	}
}

func TestOtherCheckersStillRunWhenOneDisabled(t *testing.T) {
	// Disabling an unrelated checker must not suppress the floatcmp
	// finding.
	code, stdout, _ := exec(t, "-errclose=false", "testdata/dirty")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(stdout, "floatcmp") {
		t.Errorf("floatcmp finding missing: %q", stdout)
	}
}

func TestIgnoreDirectiveSuppressesFinding(t *testing.T) {
	code, stdout, stderr := exec(t, "testdata/ignored")
	if code != 0 {
		t.Fatalf("exit = %d, want 0 with inline suppression; stdout=%q stderr=%q", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("suppressed run printed findings: %q", stdout)
	}
}

func TestMalformedIgnoreDirectiveReported(t *testing.T) {
	code, stdout, _ := exec(t, "testdata/badignore")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(stdout, "malformed lmvet:ignore directive") {
		t.Errorf("missing malformed-directive diagnostic: %q", stdout)
	}
	// A directive without a reason suppresses nothing: the underlying
	// floatcmp finding must still be printed.
	if !strings.Contains(stdout, "floatcmp") {
		t.Errorf("floatcmp finding was wrongly suppressed: %q", stdout)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lmvet.baseline")

	code, stdout, stderr := exec(t, "-baseline", path, "-write-baseline", "testdata/dirty")
	if code != 0 {
		t.Fatalf("-write-baseline exit = %d, want 0; stderr=%q", code, stderr)
	}
	if !strings.Contains(stderr, "wrote 1 baseline entry") {
		t.Errorf("stderr missing write report: %q", stderr)
	}
	body, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("baseline not written: %v", err)
	}
	if !strings.Contains(string(body), "floatcmp\t") {
		t.Errorf("baseline body missing entry: %q", body)
	}

	// The same dirty package now passes against its own baseline.
	code, stdout, stderr = exec(t, "-baseline", path, "testdata/dirty")
	if code != 0 {
		t.Fatalf("baselined exit = %d, want 0; stdout=%q stderr=%q", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("baselined findings still printed: %q", stdout)
	}
	if !strings.Contains(stderr, "1 baselined finding(s) suppressed") {
		t.Errorf("stderr missing baseline summary: %q", stderr)
	}
}

func TestBaselineDoesNotSuppressNewFindings(t *testing.T) {
	// A baseline recorded from one package must not absorb findings
	// from a different file.
	path := filepath.Join(t.TempDir(), "lmvet.baseline")
	if code, _, stderr := exec(t, "-baseline", path, "-write-baseline", "testdata/dirty"); code != 0 {
		t.Fatalf("-write-baseline exit = %d; stderr=%q", code, stderr)
	}
	code, stdout, _ := exec(t, "-baseline", path, "testdata/multi/a")
	if code != 1 {
		t.Fatalf("exit = %d, want 1 for unbaselined finding", code)
	}
	if !strings.Contains(stdout, "a.go") {
		t.Errorf("new finding missing: %q", stdout)
	}
}

func TestWriteBaselineRequiresPath(t *testing.T) {
	code, _, stderr := exec(t, "-write-baseline", "testdata/dirty")
	if code != 2 {
		t.Fatalf("exit = %d, want 2; stderr=%q", code, stderr)
	}
}

// sarifLog mirrors the slice of SARIF 2.1.0 the tests assert on.
type sarifLog struct {
	Version string `json:"version"`
	Schema  string `json:"$schema"`
	Runs    []struct {
		Tool struct {
			Driver struct {
				Name  string `json:"name"`
				Rules []struct {
					ID string `json:"id"`
				} `json:"rules"`
			} `json:"driver"`
		} `json:"tool"`
		Results []struct {
			RuleID    string `json:"ruleId"`
			Level     string `json:"level"`
			Locations []struct {
				PhysicalLocation struct {
					ArtifactLocation struct {
						URI       string `json:"uri"`
						URIBaseID string `json:"uriBaseId"`
					} `json:"artifactLocation"`
					Region struct {
						StartLine int `json:"startLine"`
					} `json:"region"`
				} `json:"physicalLocation"`
			} `json:"locations"`
		} `json:"results"`
	} `json:"runs"`
}

func TestSARIFShape(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out", "lmvet.sarif")
	code, _, stderr := exec(t, "-sarif", path, "testdata/dirty")
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (SARIF output does not change exit codes); stderr=%q", code, stderr)
	}
	body, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("SARIF report not written (parent dirs should be created): %v", err)
	}
	var log sarifLog
	if err := json.Unmarshal(body, &log); err != nil {
		t.Fatalf("SARIF output unparsable: %v\n%s", err, body)
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-2.1.0") {
		t.Errorf("version = %q schema = %q, want SARIF 2.1.0", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "lmvet" {
		t.Errorf("driver name = %q, want lmvet", run.Tool.Driver.Name)
	}
	if len(run.Tool.Driver.Rules) == 0 {
		t.Error("driver rules empty; every analyzer should be listed")
	}
	if len(run.Results) != 1 {
		t.Fatalf("results = %d, want 1", len(run.Results))
	}
	res := run.Results[0]
	if res.RuleID != "floatcmp" || res.Level != "error" {
		t.Errorf("ruleId = %q level = %q, want floatcmp/error", res.RuleID, res.Level)
	}
	if len(res.Locations) != 1 {
		t.Fatalf("locations = %d, want 1", len(res.Locations))
	}
	loc := res.Locations[0].PhysicalLocation
	if !strings.HasSuffix(loc.ArtifactLocation.URI, "dirty.go") {
		t.Errorf("uri = %q, want suffix dirty.go", loc.ArtifactLocation.URI)
	}
	if loc.ArtifactLocation.URIBaseID != "%SRCROOT%" {
		t.Errorf("uriBaseId = %q, want %%SRCROOT%%", loc.ArtifactLocation.URIBaseID)
	}
	if loc.Region.StartLine == 0 {
		t.Error("region startLine not populated")
	}
}

func TestSARIFStdout(t *testing.T) {
	code, stdout, _ := exec(t, "-sarif", "-", "testdata/dirty")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var log sarifLog
	if err := json.Unmarshal([]byte(stdout), &log); err != nil {
		t.Fatalf("-sarif=- stdout is not pure SARIF: %v\n%s", err, stdout)
	}
	if len(log.Runs) != 1 || len(log.Runs[0].Results) != 1 {
		t.Errorf("unexpected SARIF contents: %s", stdout)
	}
}

func TestSARIFStdoutConflictsWithJSON(t *testing.T) {
	code, _, stderr := exec(t, "-json", "-sarif", "-", "testdata/dirty")
	if code != 2 {
		t.Fatalf("exit = %d, want 2; stderr=%q", code, stderr)
	}
}

func TestSeverityOverrideDowngradesExit(t *testing.T) {
	code, stdout, stderr := exec(t, "-severity", "floatcmp=warn", "testdata/dirty")
	if code != 0 {
		t.Fatalf("exit = %d, want 0 for warn-only findings; stderr=%q", code, stderr)
	}
	if !strings.Contains(stdout, "floatcmp") {
		t.Errorf("downgraded finding no longer printed: %q", stdout)
	}
	if !strings.Contains(stderr, "0 error(s), 1 warning(s)") {
		t.Errorf("stderr summary missing warning count: %q", stderr)
	}
}

func TestSeverityFlagValidation(t *testing.T) {
	if code, _, _ := exec(t, "-severity", "floatcmp=fatal", "testdata/clean"); code != 2 {
		t.Errorf("bad level: exit = %d, want 2", code)
	}
	if code, _, _ := exec(t, "-severity", "nosuch=warn", "testdata/clean"); code != 2 {
		t.Errorf("unknown analyzer: exit = %d, want 2", code)
	}
}

func TestWorkersOutputIdentical(t *testing.T) {
	dirs := []string{"testdata/multi/a", "testdata/multi/b", "testdata/multi/c"}
	serial, serialErr := "", ""
	for i, workers := range []string{"1", "4"} {
		args := append([]string{"-workers=" + workers}, dirs...)
		code, stdout, stderr := exec(t, args...)
		if code != 1 {
			t.Fatalf("workers=%s exit = %d, want 1; stderr=%q", workers, code, stderr)
		}
		if i == 0 {
			serial, serialErr = stdout, stderr
			if strings.Count(serial, "floatcmp") != 3 {
				t.Fatalf("expected 3 findings across packages, got: %q", serial)
			}
			continue
		}
		if stdout != serial {
			t.Errorf("stdout differs between -workers=1 and -workers=%s:\n%q\nvs\n%q", workers, serial, stdout)
		}
		if stderr != serialErr {
			t.Errorf("stderr differs between -workers=1 and -workers=%s:\n%q\nvs\n%q", workers, serialErr, stderr)
		}
	}
}

func TestConcurrencyAnalyzersIntegration(t *testing.T) {
	code, stdout, _ := exec(t, "testdata/concdirty")
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stdout=%q", code, stdout)
	}
	for _, want := range []string{"goleak", "chanprotocol", "ctxflow", "lmmonitor interrupt-race shape"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("output missing %q:\n%s", want, stdout)
		}
	}
	// Disabling the three concurrency analyzers restores a clean exit.
	code, stdout, stderr := exec(t, "-goleak=false", "-chanprotocol=false", "-ctxflow=false", "testdata/concdirty")
	if code != 0 {
		t.Fatalf("exit = %d, want 0 with concurrency analyzers disabled; stdout=%q stderr=%q", code, stdout, stderr)
	}
}

func TestWorkersIdenticalWithConcurrencyAnalyzers(t *testing.T) {
	dirs := []string{"testdata/multi/a", "testdata/multi/b", "testdata/multi/c", "testdata/concdirty"}
	serial, serialErr := "", ""
	for i, workers := range []string{"1", "8"} {
		args := append([]string{"-workers=" + workers}, dirs...)
		code, stdout, stderr := exec(t, args...)
		if code != 1 {
			t.Fatalf("workers=%s exit = %d, want 1; stderr=%q", workers, code, stderr)
		}
		if i == 0 {
			serial, serialErr = stdout, stderr
			if !strings.Contains(serial, "goleak") || !strings.Contains(serial, "floatcmp") {
				t.Fatalf("expected module-wide and per-package findings together, got: %q", serial)
			}
			continue
		}
		if stdout != serial {
			t.Errorf("stdout differs between -workers=1 and -workers=%s:\n%q\nvs\n%q", workers, serial, stdout)
		}
		if stderr != serialErr {
			t.Errorf("stderr differs between -workers=1 and -workers=%s:\n%q\nvs\n%q", workers, serialErr, stderr)
		}
	}
}

func TestSARIFUnwritablePathExitsTwo(t *testing.T) {
	blocker := filepath.Join(t.TempDir(), "blocker")
	if err := os.WriteFile(blocker, []byte("a plain file, not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := exec(t, "-sarif", filepath.Join(blocker, "out.sarif"), "testdata/dirty")
	if code != 2 {
		t.Fatalf("exit = %d, want 2; stderr=%q", code, stderr)
	}
	if !strings.Contains(stderr, "lmvet:") {
		t.Errorf("stderr missing error report: %q", stderr)
	}
}

func TestWriteBaselineUnwritablePathExitsTwo(t *testing.T) {
	blocker := filepath.Join(t.TempDir(), "blocker")
	if err := os.WriteFile(blocker, []byte("a plain file, not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := exec(t, "-baseline", filepath.Join(blocker, "lmvet.baseline"), "-write-baseline", "testdata/dirty")
	if code != 2 {
		t.Fatalf("exit = %d, want 2; stderr=%q", code, stderr)
	}
}

func TestUnknownAnalyzerFlagExitsTwo(t *testing.T) {
	// Analyzer switches are generated from the registry; a flag for an
	// analyzer that does not exist must fail flag parsing, not be
	// silently accepted.
	code, _, stderr := exec(t, "-nosuchanalyzer=false", "testdata/clean")
	if code != 2 {
		t.Fatalf("exit = %d, want 2; stderr=%q", code, stderr)
	}
	if !strings.Contains(stderr, "nosuchanalyzer") {
		t.Errorf("stderr does not name the unknown flag: %q", stderr)
	}
}
