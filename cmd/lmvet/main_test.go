package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// exec runs the CLI entry point with args and returns exit code and
// captured streams.
func exec(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestCleanPackageExitsZero(t *testing.T) {
	code, stdout, stderr := exec(t, "testdata/clean")
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stdout=%q stderr=%q", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("clean run printed findings: %q", stdout)
	}
}

func TestFindingsExitOne(t *testing.T) {
	code, stdout, stderr := exec(t, "testdata/dirty")
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr=%q", code, stderr)
	}
	if !strings.Contains(stdout, "floatcmp") || !strings.Contains(stdout, "dirty.go") {
		t.Errorf("findings output missing analyzer or file: %q", stdout)
	}
	if !strings.Contains(stderr, "1 finding") {
		t.Errorf("stderr missing findings summary: %q", stderr)
	}
}

func TestLoadErrorExitsTwo(t *testing.T) {
	code, _, stderr := exec(t, "testdata/broken")
	if code != 2 {
		t.Fatalf("exit = %d, want 2; stderr=%q", code, stderr)
	}
	if !strings.Contains(stderr, "lmvet:") {
		t.Errorf("stderr missing error report: %q", stderr)
	}
}

func TestBadPatternExitsTwo(t *testing.T) {
	code, _, _ := exec(t, "testdata/no-such-dir")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestUnknownFlagExitsTwo(t *testing.T) {
	code, _, _ := exec(t, "-definitely-not-a-flag")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestJSONShape(t *testing.T) {
	code, stdout, _ := exec(t, "-json", "testdata/dirty")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var report struct {
		Count       int `json:"count"`
		Diagnostics []struct {
			Analyzer string `json:"analyzer"`
			File     string `json:"file"`
			Line     int    `json:"line"`
			Column   int    `json:"column"`
			Message  string `json:"message"`
		} `json:"diagnostics"`
	}
	if err := json.Unmarshal([]byte(stdout), &report); err != nil {
		t.Fatalf("output is not the documented JSON shape: %v\n%s", err, stdout)
	}
	if report.Count != 1 || len(report.Diagnostics) != 1 {
		t.Fatalf("count = %d, diagnostics = %d, want 1 and 1", report.Count, len(report.Diagnostics))
	}
	d := report.Diagnostics[0]
	if d.Analyzer != "floatcmp" {
		t.Errorf("analyzer = %q, want floatcmp", d.Analyzer)
	}
	if !strings.HasSuffix(d.File, "dirty.go") || d.Line == 0 || d.Column == 0 {
		t.Errorf("position not populated: %+v", d)
	}
	if d.Message == "" {
		t.Errorf("empty message")
	}
}

func TestJSONCleanRun(t *testing.T) {
	code, stdout, _ := exec(t, "-json", "testdata/clean")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	var report struct {
		Count       int   `json:"count"`
		Diagnostics []any `json:"diagnostics"`
	}
	if err := json.Unmarshal([]byte(stdout), &report); err != nil {
		t.Fatalf("clean -json output unparsable: %v", err)
	}
	if report.Count != 0 || len(report.Diagnostics) != 0 {
		t.Errorf("clean run reported count=%d diagnostics=%d", report.Count, len(report.Diagnostics))
	}
}

func TestDisableFlagSuppressesFindings(t *testing.T) {
	code, stdout, stderr := exec(t, "-floatcmp=false", "testdata/dirty")
	if code != 0 {
		t.Fatalf("exit = %d, want 0 with floatcmp disabled; stdout=%q stderr=%q", code, stdout, stderr)
	}
}

func TestOtherCheckersStillRunWhenOneDisabled(t *testing.T) {
	// Disabling an unrelated checker must not suppress the floatcmp
	// finding.
	code, stdout, _ := exec(t, "-errclose=false", "testdata/dirty")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(stdout, "floatcmp") {
		t.Errorf("floatcmp finding missing: %q", stdout)
	}
}
