// Package broken is an lmvet CLI test fixture that fails to parse.
package broken

func Oops( {
