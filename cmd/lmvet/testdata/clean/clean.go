// Package clean is an lmvet CLI test fixture with no findings.
package clean

// Sum adds integers; nothing here trips any analyzer.
func Sum(xs []int) int {
	total := 0
	for _, v := range xs {
		total += v
	}
	return total
}
