// Package concdirty trips all three concurrency-lifecycle analyzers:
// a leaked sender for goleak, a default-polled completion signal for
// chanprotocol (the lmmonitor race shape), and an unthreaded context
// parameter for ctxflow.
package concdirty

import "context"

// Leak spawns a sender nothing ever receives from.
func Leak() {
	ch := make(chan int)
	go func() {
		ch <- 1
	}()
}

// Poll can drop a completion signal behind its default arm.
func Poll(results chan int) (int, bool) {
	select {
	case v, ok := <-results:
		return v, ok
	default:
		return 0, true
	}
}

// Wait accepts ctx and ignores it while blocking.
func Wait(ctx context.Context, in chan int) int {
	return <-in
}
