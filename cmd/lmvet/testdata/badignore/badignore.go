// Package badignore is an lmvet CLI test fixture with a malformed
// suppression: the directive names no reason, so it suppresses nothing
// and is itself reported as an error-severity "lmvet" diagnostic.
package badignore

// Equal compares floats with ==.
func Equal(a, b float64) bool {
	return a == b //lmvet:ignore floatcmp
}
