// Package a is one of three sibling fixtures used to check that
// parallel and serial lmvet runs emit byte-identical output.
package a

// Same compares floats with ==, which floatcmp flags.
func Same(x, y float64) bool {
	return x == y
}
