// Package dirty is an lmvet CLI test fixture with exactly one floatcmp
// finding, used to exercise exit code 1, the -json shape, and the
// per-checker disable flags.
package dirty

// Equal compares floats with ==, which floatcmp flags.
func Equal(a, b float64) bool {
	return a == b
}
