// Package ignored is an lmvet CLI test fixture whose single floatcmp
// violation carries a well-formed inline suppression, so the run must
// exit 0.
package ignored

// Equal compares floats bitwise on purpose; the trailing directive
// records why the finding is accepted.
func Equal(a, b float64) bool {
	return a == b //lmvet:ignore floatcmp fixture: bitwise identity is the comparison under test
}
