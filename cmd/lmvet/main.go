// Command lmvet runs the repo-specific static-analysis suite over the
// last-mile congestion codebase: NaN-unsafe float comparisons, unguarded
// float sorts and reductions, nondeterminism in the simulation packages
// (both the local detguard checks and the interprocedural dettaint taint
// engine over the module call graph), lock misuse in the streaming
// monitor, goroutine fan-out that bypasses the worker-pool index
// discipline, dropped Close/Flush errors on the ingest/report paths,
// hidden allocations reachable from //lmvet:hotpath roots (allocguard,
// over the intraprocedural escape/provenance dataflow lattice),
// lock-acquisition-order cycles plus unsampled telemetry under hot
// locks (lockorder, over the module-wide lock graph), and — over the
// goflow goroutine/channel lifecycle summaries — goroutines that can
// outlive their spawner (goleak), channel ownership-protocol violations
// such as close by a non-sender, double close, send after close, and
// default-polled completion signals (chanprotocol), and context.Context
// parameters never threaded into blocking work (ctxflow). The three
// concurrency analyzers are interprocedural: blocking effects reached
// through channel-valued parameters are reported at the spawn or call
// site with a dettaint-style witness chain.
//
// Usage:
//
//	lmvet [flags] [packages]
//
// Packages follow the usual pattern syntax ("./...", "./internal/stats").
// With no arguments, ./... is analysed.
//
// Flags beyond the per-analyzer on/off switches:
//
//	-workers N          analyze packages concurrently (default GOMAXPROCS);
//	                    output is byte-identical to -workers=1
//	-json               emit findings as a JSON document
//	-sarif PATH         also write a SARIF 2.1.0 report to PATH ("-" = stdout)
//	-baseline PATH      suppress findings recorded in the baseline file
//	                    (matched by analyzer+file+message, falling back to
//	                    analyzer+directory+message across file moves)
//	-write-baseline     rewrite the -baseline file from current findings
//	-severity LIST      override severities, e.g. "poolsafe=error,errclose=warn"
//	-unscoped           ignore the default per-analyzer package scoping
//
// Findings can also be suppressed inline with a
// "//lmvet:ignore <analyzer> <reason>" comment on (or directly above) the
// offending line.
//
// Exit codes: 0 — no error-severity findings (warnings may have been
// printed); 1 — error findings reported; 2 — usage, load, or type-check
// error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"github.com/last-mile-congestion/lastmile/internal/analysis"
	"github.com/last-mile-congestion/lastmile/internal/ioutil"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonDiagnostic is the stable -json output shape for one finding.
type jsonDiagnostic struct {
	Analyzer string `json:"analyzer"`
	Severity string `json:"severity"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// jsonReport is the stable -json output document.
type jsonReport struct {
	Count       int              `json:"count"`
	Baselined   int              `json:"baselined"`
	Diagnostics []jsonDiagnostic `json:"diagnostics"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lmvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON document")
	sarifPath := fs.String("sarif", "", "write a SARIF 2.1.0 report to this path (\"-\" for stdout)")
	baselinePath := fs.String("baseline", "", "baseline file of accepted findings to suppress")
	writeBaseline := fs.Bool("write-baseline", false, "rewrite the -baseline file from the current findings and exit")
	severityFlag := fs.String("severity", "", "per-analyzer severity overrides: name=error|warn, comma-separated")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "max packages analyzed concurrently (output is identical at any setting)")
	unscoped := fs.Bool("unscoped", false, "ignore the default per-analyzer package scoping and apply every analyzer everywhere")
	enabled := make(map[string]*bool)
	for _, a := range analysis.All() {
		enabled[a.Name] = fs.Bool(a.Name, true, a.Doc)
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	severities, err := parseSeverities(*severityFlag)
	if err != nil {
		fmt.Fprintln(stderr, "lmvet:", err)
		return 2
	}
	if *writeBaseline && *baselinePath == "" {
		fmt.Fprintln(stderr, "lmvet: -write-baseline requires -baseline")
		return 2
	}
	if *jsonOut && *sarifPath == "-" {
		fmt.Fprintln(stderr, "lmvet: -json and -sarif=- both claim stdout; write the SARIF report to a file")
		return 2
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "lmvet:", err)
		return 2
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "lmvet:", err)
		return 2
	}
	dirs, err := loader.ResolvePatterns(cwd, patterns)
	if err != nil {
		fmt.Fprintln(stderr, "lmvet:", err)
		return 2
	}
	if len(dirs) == 0 {
		fmt.Fprintln(stderr, "lmvet: no packages matched", patterns)
		return 2
	}

	cfg := analysis.DefaultConfig()
	if *unscoped {
		cfg.Scope = nil
	}
	cfg.Workers = *workers
	cfg.Severity = severities
	cfg.Enabled = make(map[string]bool, len(enabled))
	for name, on := range enabled {
		cfg.Enabled[name] = *on
	}

	diags, err := analysis.RunSuite(loader, dirs, cfg)
	if err != nil {
		fmt.Fprintln(stderr, "lmvet:", err)
		return 2
	}

	if *writeBaseline {
		body := analysis.FormatBaseline(diags, loader.ModuleDir)
		if err := os.WriteFile(*baselinePath, []byte(body), 0o644); err != nil {
			fmt.Fprintln(stderr, "lmvet:", err)
			return 2
		}
		fmt.Fprintf(stderr, "lmvet: wrote %d baseline entr%s to %s\n",
			len(diags), plural(len(diags), "y", "ies"), *baselinePath)
		return 0
	}

	baselined := 0
	if *baselinePath != "" {
		f, err := os.Open(*baselinePath)
		if err != nil {
			fmt.Fprintln(stderr, "lmvet:", err)
			return 2
		}
		base, err := analysis.ParseBaseline(f)
		ioutil.CloseQuiet(f)
		if err != nil {
			fmt.Fprintln(stderr, "lmvet:", err)
			return 2
		}
		var accepted []analysis.Diagnostic
		diags, accepted = base.Filter(diags, loader.ModuleDir)
		baselined = len(accepted)
	}

	if *sarifPath != "" {
		if err := writeSARIF(*sarifPath, stdout, diags, loader.ModuleDir); err != nil {
			fmt.Fprintln(stderr, "lmvet:", err)
			return 2
		}
	}

	errors, warnings := 0, 0
	for _, d := range diags {
		if d.Severity == string(analysis.SeverityWarn) {
			warnings++
		} else {
			errors++
		}
	}

	if *sarifPath == "-" {
		// SARIF already owns stdout; report only the summary on stderr.
		if baselined > 0 {
			fmt.Fprintf(stderr, "lmvet: %d baselined finding(s) suppressed\n", baselined)
		}
		if len(diags) > 0 {
			fmt.Fprintf(stderr, "lmvet: %d finding(s): %d error(s), %d warning(s)\n", len(diags), errors, warnings)
		}
	} else if *jsonOut {
		report := jsonReport{Count: len(diags), Baselined: baselined, Diagnostics: make([]jsonDiagnostic, 0, len(diags))}
		for _, d := range diags {
			report.Diagnostics = append(report.Diagnostics, jsonDiagnostic{
				Analyzer: d.Analyzer,
				Severity: d.Severity,
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(stderr, "lmvet:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
		}
		if baselined > 0 {
			fmt.Fprintf(stderr, "lmvet: %d baselined finding(s) suppressed\n", baselined)
		}
		if len(diags) > 0 {
			fmt.Fprintf(stderr, "lmvet: %d finding(s): %d error(s), %d warning(s)\n", len(diags), errors, warnings)
		}
	}
	if errors > 0 {
		return 1
	}
	return 0
}

// writeSARIF writes the SARIF report to path, or stdout for "-".
func writeSARIF(path string, stdout io.Writer, diags []analysis.Diagnostic, moduleDir string) error {
	if path == "-" {
		return analysis.WriteSARIF(stdout, diags, moduleDir)
	}
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := analysis.WriteSARIF(f, diags, moduleDir); err != nil {
		ioutil.CloseQuiet(f)
		return err
	}
	return f.Close()
}

// parseSeverities parses "name=error|warn,..." into an override map.
func parseSeverities(s string) (map[string]analysis.Severity, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[string]analysis.Severity)
	for _, part := range strings.Split(s, ",") {
		name, level, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("bad -severity entry %q; want name=error|warn", part)
		}
		if analysis.Lookup(name) == nil {
			return nil, fmt.Errorf("unknown analyzer %q in -severity", name)
		}
		switch analysis.Severity(level) {
		case analysis.SeverityError, analysis.SeverityWarn:
			out[name] = analysis.Severity(level)
		default:
			return nil, fmt.Errorf("bad severity %q for %s; want error or warn", level, name)
		}
	}
	return out, nil
}

// plural picks the singular or plural suffix for n.
func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}
