// Command lmvet runs the repo-specific static-analysis suite over the
// last-mile congestion codebase: NaN-unsafe float comparisons, unguarded
// float sorts and reductions, nondeterminism in the simulation packages,
// lock misuse in the streaming monitor, goroutine fan-out that bypasses
// the worker-pool index discipline, and dropped Close/Flush errors on
// the ingest/report paths.
//
// Usage:
//
//	lmvet [flags] [packages]
//
// Packages follow the usual pattern syntax ("./...", "./internal/stats").
// With no arguments, ./... is analysed.
//
// Exit codes: 0 — no findings; 1 — findings reported; 2 — usage, load,
// or type-check error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/last-mile-congestion/lastmile/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonDiagnostic is the stable -json output shape for one finding.
type jsonDiagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// jsonReport is the stable -json output document.
type jsonReport struct {
	Count       int              `json:"count"`
	Diagnostics []jsonDiagnostic `json:"diagnostics"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lmvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON document")
	unscoped := fs.Bool("unscoped", false, "ignore the default per-analyzer package scoping and apply every analyzer everywhere")
	enabled := make(map[string]*bool)
	for _, a := range analysis.All() {
		enabled[a.Name] = fs.Bool(a.Name, true, a.Doc)
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "lmvet:", err)
		return 2
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "lmvet:", err)
		return 2
	}
	dirs, err := loader.ResolvePatterns(cwd, patterns)
	if err != nil {
		fmt.Fprintln(stderr, "lmvet:", err)
		return 2
	}
	if len(dirs) == 0 {
		fmt.Fprintln(stderr, "lmvet: no packages matched", patterns)
		return 2
	}

	cfg := analysis.DefaultConfig()
	if *unscoped {
		cfg.Scope = nil
	}
	cfg.Enabled = make(map[string]bool, len(enabled))
	for name, on := range enabled {
		cfg.Enabled[name] = *on
	}

	diags, err := analysis.RunSuite(loader, dirs, cfg)
	if err != nil {
		fmt.Fprintln(stderr, "lmvet:", err)
		return 2
	}

	if *jsonOut {
		report := jsonReport{Count: len(diags), Diagnostics: make([]jsonDiagnostic, 0, len(diags))}
		for _, d := range diags {
			report.Diagnostics = append(report.Diagnostics, jsonDiagnostic{
				Analyzer: d.Analyzer,
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(stderr, "lmvet:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "lmvet: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}
