// Command cdngen generates synthetic CDN access logs for the Tokyo
// case-study world, runnable through the public throughput estimator.
// Output is CSV by default; -format binary emits the compact wire
// format instead.
//
// Usage:
//
//	cdngen -isp A -clients 500 -days 2 -out ispa.csv
//	cdngen -isp A -days 2 -format binary -out ispa.lmw
//	cdngen -isp C -mobile | head
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/last-mile-congestion/lastmile/internal/cdn"
	"github.com/last-mile-congestion/lastmile/internal/ioutil"
	"github.com/last-mile-congestion/lastmile/internal/scenario"
	"github.com/last-mile-congestion/lastmile/internal/wire"
)

func main() {
	var (
		ispName = flag.String("isp", "A", "Tokyo ISP to generate for: A, B or C")
		mobile  = flag.Bool("mobile", false, "generate the ISP's mobile arm instead of broadband")
		clients = flag.Int("clients", 500, "client population")
		days    = flag.Int("days", 1, "days of logs (starting Sep 19 2019)")
		seed    = flag.Uint64("seed", 2020, "simulation seed")
		out     = flag.String("out", "-", "output file (- for stdout)")
		format  = flag.String("format", "csv", "output format: csv or binary (wire stream)")
	)
	flag.Parse()
	if err := run(*ispName, *mobile, *clients, *days, *seed, *out, *format); err != nil {
		fmt.Fprintln(os.Stderr, "cdngen:", err)
		os.Exit(1)
	}
}

func run(ispName string, mobile bool, clients, days int, seed uint64, out, format string) (err error) {
	tk, err := scenario.BuildTokyo(seed, clients)
	if err != nil {
		return err
	}
	var ti *scenario.TokyoISP
	switch strings.ToUpper(ispName) + map[bool]string{true: "m", false: ""}[mobile] {
	case "A":
		ti = tk.ISPA
	case "B":
		ti = tk.ISPB
	case "C":
		ti = tk.ISPC
	case "Am":
		ti = tk.ISPAMobile
	case "Bm":
		ti = tk.ISPBMobile
	case "Cm":
		ti = tk.ISPCMobile
	default:
		return fmt.Errorf("unknown ISP %q (want A, B or C)", ispName)
	}
	if days < 1 {
		return fmt.Errorf("days must be >= 1")
	}

	var w io.Writer = os.Stdout
	if out != "-" {
		// cerr, not err: a short-declared err here would shadow the
		// named return that CloseJoin records into.
		f, cerr := os.Create(out)
		if cerr != nil {
			return cerr
		}
		defer ioutil.CloseJoin(f, &err)
		w = f
	}

	var (
		write func(e *cdn.LogEntry) error
		flush func() error
	)
	switch format {
	case "csv":
		cw := cdn.NewWriter(w)
		write = cw.Write
		flush = cw.Flush
	case "binary":
		ww := wire.NewWriter(w, wire.StreamCDNLog)
		write = ww.WriteLog
		flush = ww.Flush
	default:
		return fmt.Errorf("unknown format %q (want csv or binary)", format)
	}

	gen := &cdn.Generator{
		Network:                 ti.Network,
		Devices:                 ti.Devices,
		Clients:                 clients,
		RequestsPerClientPerDay: 40,
		DualStackFrac:           0.6,
		Seed:                    seed,
	}
	start := scenario.TokyoPeriod().Start
	total := 0
	err = gen.Generate(start, start.AddDate(0, 0, days), func(e cdn.LogEntry) error {
		total++
		return write(&e)
	})
	if err != nil {
		return err
	}
	if err := flush(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "cdngen: wrote %d log entries for %s (%d clients, %d day(s))\n",
		total, ti.Network.Name, clients, days)
	return nil
}
