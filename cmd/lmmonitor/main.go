// Command lmmonitor runs the streaming (online) variant of the pipeline:
// it consumes newline-delimited Atlas traceroute JSON from a file or
// stdin, maintains a sliding window per AS, and prints a live
// classification table at a configurable cadence of stream time — the
// operational mode of a continuously-running last-mile monitor.
//
// Usage:
//
//	atlasgen -isp A -days 8 | lmmonitor -every 48h
//	lmmonitor -in traces.jsonl -rib rib.txt -window 120h
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	lastmile "github.com/last-mile-congestion/lastmile"
	"github.com/last-mile-congestion/lastmile/internal/ioutil"
	"github.com/last-mile-congestion/lastmile/internal/report"
	"github.com/last-mile-congestion/lastmile/internal/stream"
)

func main() {
	var (
		in     = flag.String("in", "-", "traceroute JSONL input (- for stdin)")
		ribIn  = flag.String("rib", "", "optional RIB file for probe->AS mapping")
		window = flag.Duration("window", 15*24*time.Hour, "sliding analysis window")
		every  = flag.Duration("every", 24*time.Hour, "stream-time interval between classification reports")
		sortIn = flag.Bool("sort", true, "sort input by timestamp before feeding the monitor (file dumps are grouped by measurement, not time; disable for genuinely ordered streams)")
	)
	flag.Parse()
	if err := run(*in, *ribIn, *window, *every, *sortIn); err != nil {
		fmt.Fprintln(os.Stderr, "lmmonitor:", err)
		os.Exit(1)
	}
}

func run(in, ribIn string, window, every time.Duration, sortIn bool) error {
	var r io.Reader = os.Stdin
	if in != "-" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer ioutil.CloseQuiet(f)
		r = f
	}
	var rib *lastmile.RIB
	if ribIn != "" {
		f, err := os.Open(ribIn)
		if err != nil {
			return err
		}
		parsed, err := lastmile.ParseRIB(f)
		ioutil.CloseQuiet(f)
		if err != nil {
			return err
		}
		rib = parsed
	}

	monitor := stream.NewMonitor(stream.Options{Window: window})
	feed := func(res *lastmile.Result) error {
		asn := lastmile.ASN(0)
		if rib != nil && res.FromAddr.IsValid() {
			if origin, err := rib.OriginOf(res.FromAddr); err == nil {
				asn = origin
			}
		}
		return monitor.Observe(asn, res)
	}

	var nextReport time.Time
	process := func(res *lastmile.Result) error {
		if err := feed(res); err != nil {
			return err
		}
		if nextReport.IsZero() {
			nextReport = res.Timestamp.Add(every)
			return nil
		}
		if !res.Timestamp.Before(nextReport) {
			if err := printVerdicts(monitor, res.Timestamp); err != nil {
				return err
			}
			nextReport = res.Timestamp.Add(every)
		}
		return nil
	}

	sc := lastmile.NewResultScanner(r)
	if sortIn {
		var buffered []*lastmile.Result
		for sc.Scan() {
			buffered = append(buffered, sc.Result())
		}
		if err := sc.Err(); err != nil {
			return err
		}
		sort.SliceStable(buffered, func(i, j int) bool {
			return buffered[i].Timestamp.Before(buffered[j].Timestamp)
		})
		for _, res := range buffered {
			if err := process(res); err != nil {
				return err
			}
		}
	} else {
		for sc.Scan() {
			if err := process(sc.Result()); err != nil {
				return err
			}
		}
		if err := sc.Err(); err != nil {
			return err
		}
	}
	ingested, dropped := monitor.Stats()
	fmt.Printf("\nend of stream (%d ingested, %d dropped as too late); final state:\n", ingested, dropped)
	return printVerdicts(monitor, time.Time{})
}

func printVerdicts(m *stream.Monitor, at time.Time) error {
	if !at.IsZero() {
		fmt.Printf("\n== %s ==\n", at.UTC().Format(time.RFC3339))
	}
	verdicts := m.ClassifyAll()
	if len(verdicts) == 0 {
		fmt.Println("(no classifiable AS yet — windows warming up)")
		return nil
	}
	tb := report.NewTable("AS", "probes", "class", "daily amp (ms)", "window signal")
	for _, v := range verdicts {
		tb.AddRowf(v.ASN.String(), v.Probes, v.Class.String(),
			fmt.Sprintf("%.2f", v.DailyAmplitude),
			report.Sparkline(report.Downsample(v.Signal.Values, 48), 0))
	}
	return tb.Render(os.Stdout)
}
