// Command lmmonitor runs the streaming (online) variant of the pipeline:
// it consumes newline-delimited Atlas traceroute JSON from a file or
// stdin, maintains a sliding window per AS over the sharded incremental
// delay engine, and prints a live classification table at a configurable
// cadence of stream time — the operational mode of a continuously-running
// last-mile monitor.
//
// On SIGINT or SIGTERM the monitor flushes a final classification report
// and its ingestion statistics before exiting instead of dying
// mid-stream.
//
// Usage:
//
//	atlasgen -isp A -days 8 | lmmonitor -every 48h
//	lmmonitor -in traces.jsonl -rib rib.txt -window 120h -shards 8
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	lastmile "github.com/last-mile-congestion/lastmile"
	"github.com/last-mile-congestion/lastmile/internal/ioutil"
	"github.com/last-mile-congestion/lastmile/internal/report"
	"github.com/last-mile-congestion/lastmile/internal/stream"
)

func main() {
	var (
		in      = flag.String("in", "-", "traceroute JSONL input (- for stdin)")
		ribIn   = flag.String("rib", "", "optional RIB file for probe->AS mapping")
		window  = flag.Duration("window", 15*24*time.Hour, "sliding analysis window")
		every   = flag.Duration("every", 24*time.Hour, "stream-time interval between classification reports")
		sortIn  = flag.Bool("sort", true, "sort input by timestamp before feeding the monitor (file dumps are grouped by measurement, not time; disable for genuinely ordered streams)")
		shards  = flag.Int("shards", 0, "engine lock stripes for concurrent ingestion (0 = GOMAXPROCS; verdicts are identical at any count)")
		workers = flag.Int("workers", 0, "worker goroutines for classification reports (0 = GOMAXPROCS; output is identical at any count)")
	)
	flag.Parse()
	if err := run(*in, *ribIn, *window, *every, *sortIn, *shards, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "lmmonitor:", err)
		os.Exit(1)
	}
}

func run(in, ribIn string, window, every time.Duration, sortIn bool, shards, workers int) error {
	var r io.Reader = os.Stdin
	if in != "-" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer ioutil.CloseQuiet(f)
		r = f
	}
	var rib *lastmile.RIB
	if ribIn != "" {
		f, err := os.Open(ribIn)
		if err != nil {
			return err
		}
		parsed, err := lastmile.ParseRIB(f)
		ioutil.CloseQuiet(f)
		if err != nil {
			return err
		}
		rib = parsed
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	monitor := stream.NewMonitor(stream.Options{Window: window, Shards: shards, Workers: workers})
	feed := func(res *lastmile.Result) error {
		asn := lastmile.ASN(0)
		if rib != nil && res.FromAddr.IsValid() {
			if origin, err := rib.OriginOf(res.FromAddr); err == nil {
				asn = origin
			}
		}
		return monitor.Observe(asn, res)
	}

	var nextReport time.Time
	process := func(res *lastmile.Result) error {
		if err := feed(res); err != nil {
			return err
		}
		if nextReport.IsZero() {
			nextReport = res.Timestamp.Add(every)
			return nil
		}
		if !res.Timestamp.Before(nextReport) {
			if err := printReport(monitor, res.Timestamp); err != nil {
				return err
			}
			nextReport = res.Timestamp.Add(every)
		}
		return nil
	}

	// The scanner feeds a channel so that the processing loop can also
	// watch for termination signals; results is closed when the input is
	// exhausted, with any scan error left in scanErr.
	results := make(chan *lastmile.Result)
	var scanErr error
	go func() {
		defer close(results)
		sc := lastmile.NewResultScanner(r)
		if sortIn {
			var buffered []*lastmile.Result
			for sc.Scan() {
				buffered = append(buffered, sc.Result())
			}
			if scanErr = sc.Err(); scanErr != nil {
				return
			}
			sort.SliceStable(buffered, func(i, j int) bool {
				return buffered[i].Timestamp.Before(buffered[j].Timestamp)
			})
			for _, res := range buffered {
				select {
				case results <- res:
				case <-ctx.Done():
					return
				}
			}
			return
		}
		for sc.Scan() {
			select {
			case results <- sc.Result():
			case <-ctx.Done():
				return
			}
		}
		scanErr = sc.Err()
	}()

	interrupted := false
loop:
	for {
		select {
		case res, ok := <-results:
			if !ok {
				break loop
			}
			if err := process(res); err != nil {
				return err
			}
		case <-ctx.Done():
			interrupted = true
			break loop
		}
	}
	if !interrupted && scanErr != nil {
		return scanErr
	}

	if interrupted {
		fmt.Printf("\ninterrupted; final state:\n")
	} else {
		fmt.Printf("\nend of stream; final state:\n")
	}
	printStats(monitor)
	return printReport(monitor, time.Time{})
}

// printStats renders the ingestion counters and live window gauges so
// operators can see what the window holds in memory.
func printStats(m *stream.Monitor) {
	st := m.Stats()
	fmt.Printf("ingested %d, dropped %d (too late), window: %d AS(es), %d probe(s), %d bin(s), %d sample(s), %d bin(s) evicted\n",
		st.Ingested, st.Dropped, st.ASes, st.Probes, st.Bins, st.Samples, st.EvictedBins)
}

func printReport(m *stream.Monitor, at time.Time) error {
	if !at.IsZero() {
		fmt.Printf("\n== %s ==\n", at.UTC().Format(time.RFC3339))
		printStats(m)
	}
	verdicts, skipped := m.ClassifyAll()
	if len(verdicts) == 0 && len(skipped) == 0 {
		fmt.Println("(no classifiable AS yet — windows warming up)")
		return nil
	}
	if len(verdicts) > 0 {
		tb := report.NewTable("AS", "probes", "class", "daily amp (ms)", "window signal")
		for _, v := range verdicts {
			tb.AddRowf(v.ASN.String(), v.Probes, v.Class.String(),
				fmt.Sprintf("%.2f", v.DailyAmplitude),
				report.Sparkline(report.Downsample(v.Signal.Values, 48), 0))
		}
		if err := tb.Render(os.Stdout); err != nil {
			return err
		}
	}
	for _, s := range skipped {
		fmt.Printf("skipped %s: %v\n", s.ASN, s.Reason)
	}
	return nil
}
