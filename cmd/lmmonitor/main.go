// Command lmmonitor runs the streaming (online) variant of the pipeline:
// it consumes traceroute results from a file or stdin — newline-delimited
// Atlas JSON or the binary wire format, detected automatically — maintains
// a sliding window per AS over the sharded incremental delay engine, and
// prints a live classification table at a configurable cadence of stream
// time — the operational mode of a continuously-running last-mile monitor.
// Wire archives carry their AS attribution in-band; JSON input is
// attributed through the optional RIB.
//
// With -http the monitor also serves an ops endpoint: /metrics
// (Prometheus text), /metrics.json, and /debug/pprof, backed by the
// process-wide telemetry registry the engine and monitor instrument.
// With -metrics a final Prometheus-text snapshot is written at exit.
//
// On SIGINT or SIGTERM the monitor flushes a final classification report
// and its ingestion statistics before exiting instead of dying
// mid-stream. All report output is serialised through one writer, so the
// signal-driven flush can never interleave with a scheduled report; if
// the main loop is stuck mid-ingest, a watchdog forces the flush after a
// grace period.
//
// Usage:
//
//	atlasgen -isp A -days 8 | lmmonitor -every 48h
//	lmmonitor -in traces.jsonl -rib rib.txt -window 120h -shards 8 -http :9090
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"sync"
	"syscall"
	"time"

	lastmile "github.com/last-mile-congestion/lastmile"
	"github.com/last-mile-congestion/lastmile/internal/ioutil"
	"github.com/last-mile-congestion/lastmile/internal/report"
	"github.com/last-mile-congestion/lastmile/internal/serve"
	"github.com/last-mile-congestion/lastmile/internal/stream"
	"github.com/last-mile-congestion/lastmile/internal/telemetry"
)

// flushGrace is how long the SIGINT watchdog waits for the main loop to
// produce the final report before forcing the flush itself.
const flushGrace = 2 * time.Second

func main() {
	var (
		in       = flag.String("in", "-", "traceroute JSONL input (- for stdin)")
		ribIn    = flag.String("rib", "", "optional RIB file for probe->AS mapping")
		window   = flag.Duration("window", 15*24*time.Hour, "sliding analysis window")
		every    = flag.Duration("every", 24*time.Hour, "stream-time interval between classification reports")
		sortIn   = flag.Bool("sort", true, "sort input by timestamp before feeding the monitor (file dumps are grouped by measurement, not time; disable for genuinely ordered streams)")
		shards   = flag.Int("shards", 0, "engine lock stripes for concurrent ingestion (0 = GOMAXPROCS; verdicts are identical at any count)")
		workers  = flag.Int("workers", 0, "worker goroutines for classification reports (0 = GOMAXPROCS; output is identical at any count)")
		httpAddr = flag.String("http", "", "ops endpoint address (e.g. :9090) serving /metrics, /metrics.json, and /debug/pprof")
		metrics  = flag.String("metrics", "", "write a Prometheus-text metrics snapshot to this file at exit (- for stdout)")
		state    = flag.String("state", "", "engine checkpoint file: resume from it at startup if present, snapshot to it on every bin boundary, scheduled report, and at exit (atomic rename, zero data loss on SIGTERM)")
	)
	flag.Parse()

	reg := telemetry.Default()
	if *httpAddr != "" {
		srv, err := serveOps(*httpAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lmmonitor:", err)
			os.Exit(1)
		}
		defer ioutil.CloseQuiet(srv)
	}

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lmmonitor:", err)
			os.Exit(1)
		}
		defer ioutil.CloseQuiet(f)
		r = f
	}
	var rib *lastmile.RIB
	if *ribIn != "" {
		parsed, err := loadRIB(*ribIn)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lmmonitor:", err)
			os.Exit(1)
		}
		rib = parsed
	}

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	cfg := config{
		rib:     rib,
		window:  *window,
		every:   *every,
		sortIn:  *sortIn,
		shards:  *shards,
		workers: *workers,
		metrics: reg,
		state:   *state,
		grace:   flushGrace,
		exit:    os.Exit,
	}
	err := run(ctx, cfg, r, &printer{w: os.Stdout})
	if *metrics != "" {
		if derr := reg.DumpFile(*metrics); err == nil {
			err = derr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lmmonitor:", err)
		os.Exit(1)
	}
}

// loadRIB parses a RIB file for probe->AS attribution.
func loadRIB(path string) (*lastmile.RIB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	parsed, err := lastmile.ParseRIB(f)
	ioutil.CloseQuiet(f)
	if err != nil {
		return nil, err
	}
	return parsed, nil
}

// serveOps starts the ops endpoint: Prometheus text and JSON metric
// exposition plus the pprof profile handlers. The returned closer shuts
// the listener down.
func serveOps(addr string, reg *telemetry.Registry) (io.Closer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: reg.OpsMux()}
	fmt.Fprintf(os.Stderr, "lmmonitor: ops endpoint on http://%s (/metrics, /metrics.json, /debug/pprof)\n", ln.Addr())
	go func() {
		if serr := srv.Serve(ln); serr != nil && serr != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "lmmonitor: ops endpoint:", serr)
		}
	}()
	return srv, nil
}

// printer serialises all monitor output through one mutex-guarded
// writer, so the signal-driven final flush can never interleave with a
// scheduled report mid-table on shared stdout (the regression
// TestPrinterSerialises pins this).
type printer struct {
	mu sync.Mutex
	w  io.Writer
}

// Printf writes one formatted fragment atomically.
func (p *printer) Printf(format string, args ...any) {
	p.mu.Lock()
	defer p.mu.Unlock()
	fmt.Fprintf(p.w, format, args...)
}

// Block runs fn against the locked writer, so a multi-line block (a
// stats header plus a rendered table) is emitted as one unit.
func (p *printer) Block(fn func(io.Writer) error) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return fn(p.w)
}

// arrival is one scanned result with its in-band AS attribution (0 for
// JSON input), owned by the receiver until processed.
type arrival struct {
	asn lastmile.ASN
	res *lastmile.Result
}

// config carries run's knobs; main fills it from flags, tests directly.
type config struct {
	rib             *lastmile.RIB
	window, every   time.Duration
	sortIn          bool
	shards, workers int
	metrics         *telemetry.Registry
	// state is the checkpoint file path; empty disables checkpointing.
	state string
	// grace is the watchdog's wait before it forces the final flush; exit
	// is called if the main loop still has not finished by then.
	grace time.Duration
	exit  func(int)
	// clock is the watchdog's time source; nil means the system clock.
	// Tests inject a serve.FakeClock so the grace period is simulated
	// time, not a wall-clock sleep.
	clock serve.Clock
	// stall, when set, runs at the top of each processed arrival — a test
	// hook for simulating a main loop stuck mid-ingest.
	stall func()
}

// openMonitor builds the monitor, resuming from the checkpoint file
// when a usable one exists: the restored engine carries the window
// contents, watermark, and counters of the killed run, so the resumed
// monitor's verdicts and stats are those of a monitor that never
// stopped. A corrupt checkpoint cold-starts with a logged warning —
// crash recovery must never be the thing that crashes.
func openMonitor(cfg config) (*stream.Monitor, error) {
	opened, err := stream.Open(cfg.state, stream.Options{
		Window:  cfg.window,
		Shards:  cfg.shards,
		Workers: cfg.workers,
		Metrics: cfg.metrics,
	})
	if err != nil {
		return nil, err
	}
	if opened.Warning != nil {
		fmt.Fprintln(os.Stderr, "lmmonitor:", opened.Warning)
	}
	if opened.Resumed {
		fmt.Fprintf(os.Stderr, "lmmonitor: resumed from checkpoint %s\n", cfg.state)
	}
	return opened.Monitor, nil
}

func run(ctx context.Context, cfg config, r io.Reader, out *printer) error {
	monitor, err := openMonitor(cfg)
	if err != nil {
		return err
	}
	// ckpt persists engine state across restarts: once per bin boundary
	// as the stream advances, after every scheduled report, and in the
	// final flush (interrupt, end of stream, or watchdog).
	var ckpt *stream.Checkpointer
	if cfg.state != "" {
		ckpt = stream.NewCheckpointer(monitor, cfg.state)
	}
	// feed attributes one result and hands it to the monitor. Binary
	// wire archives carry the origin AS in-band (asn != 0); JSON input
	// falls back to the RIB, when given.
	feed := func(asn lastmile.ASN, res *lastmile.Result) error {
		if asn == 0 && cfg.rib != nil && res.FromAddr.IsValid() {
			if origin, err := cfg.rib.OriginOf(res.FromAddr); err == nil {
				asn = origin
			}
		}
		return monitor.Observe(asn, res)
	}

	// The final flush runs exactly once no matter who triggers it — the
	// end-of-stream path, the interrupt path, or the watchdog.
	var flushOnce sync.Once
	finalFlush := func(header string) error {
		var err error
		flushOnce.Do(func() {
			// Persist state before reporting, so even a report failure
			// leaves a checkpoint covering everything ingested — the
			// zero-data-loss half of the SIGTERM contract. On the forced
			// watchdog path the loop may be stuck mid-ingest; the snapshot
			// is then best-effort (per-shard locking keeps it structurally
			// valid either way).
			var cerr error
			if ckpt != nil {
				cerr = ckpt.Checkpoint()
			}
			err = out.Block(func(w io.Writer) error {
				fmt.Fprintf(w, "\n%s; final state:\n", header)
				writeStats(monitor, w)
				return writeReport(monitor, w, time.Time{})
			})
			if err == nil {
				err = cerr
			}
		})
		return err
	}

	// Watchdog: if a signal arrives and the main loop does not complete
	// the final flush within the grace period (stuck mid-ingest on a slow
	// or hostile input), force the flush and exit. done is closed when
	// run returns, retiring the watchdog. The grace is measured on the
	// injected clock so tests drive it with simulated time.
	clk := cfg.clock
	if clk == nil {
		clk = serve.SystemClock()
	}
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-done:
			return
		case <-ctx.Done():
		}
		select {
		case <-done:
		case <-clk.After(cfg.grace):
			if err := finalFlush("interrupted (forced flush)"); err != nil {
				fmt.Fprintln(os.Stderr, "lmmonitor:", err)
			}
			if cfg.exit != nil {
				cfg.exit(130)
			}
		}
	}()

	var nextReport time.Time
	process := func(a arrival) error {
		if cfg.stall != nil {
			cfg.stall()
		}
		if err := feed(a.asn, a.res); err != nil {
			return err
		}
		if ckpt != nil {
			// Cheap in the common case: a watermark read and a compare;
			// an actual snapshot only when the stream crossed into a new
			// bin since the last checkpoint.
			if _, err := ckpt.MaybeCheckpoint(); err != nil {
				return err
			}
		}
		if nextReport.IsZero() {
			nextReport = a.res.Timestamp.Add(cfg.every)
			return nil
		}
		if !a.res.Timestamp.Before(nextReport) {
			if err := printReport(monitor, out, a.res.Timestamp); err != nil {
				return err
			}
			if ckpt != nil {
				if err := ckpt.Checkpoint(); err != nil {
					return err
				}
			}
			nextReport = a.res.Timestamp.Add(cfg.every)
		}
		return nil
	}

	// The scanner feeds a channel so that the processing loop can also
	// watch for termination signals; results is closed when the input is
	// exhausted, with any scan error left in scanErr. The scanner reuses
	// its Result between Scan calls, so each arrival carries its own
	// copy: the streaming path recycles copies through a pool (one
	// CopyFrom per result, no steady-state allocation), the sorting path
	// clones, since every result is live until the sort.
	pool := sync.Pool{New: func() any { return new(lastmile.Result) }}
	results := make(chan arrival)
	var scanErr error
	go func() {
		defer close(results)
		sc := lastmile.NewResultScanner(r)
		if cfg.sortIn {
			var buffered []arrival
			for sc.Scan() {
				buffered = append(buffered, arrival{sc.ASN(), sc.Result().Clone()})
			}
			if scanErr = sc.Err(); scanErr != nil {
				return
			}
			sort.SliceStable(buffered, func(i, j int) bool {
				return buffered[i].res.Timestamp.Before(buffered[j].res.Timestamp)
			})
			for _, a := range buffered {
				select {
				case results <- a:
				case <-ctx.Done():
					return
				}
			}
			return
		}
		for sc.Scan() {
			res := pool.Get().(*lastmile.Result)
			res.CopyFrom(sc.Result())
			select {
			case results <- arrival{sc.ASN(), res}:
			case <-ctx.Done():
				return
			}
		}
		scanErr = sc.Err()
	}()

	interrupted := false
loop:
	for {
		select {
		case a, ok := <-results:
			if !ok {
				break loop
			}
			err := process(a)
			pool.Put(a.res)
			if err != nil {
				return err
			}
		case <-ctx.Done():
			interrupted = true
			break loop
		}
	}
	// The feeder also watches ctx and closes results when it fires, so a
	// cancellation can surface here as a closed channel rather than
	// through the ctx case — both selects were ready and Go picked one at
	// random. Re-check ctx so that race never misreports an interrupted
	// run as a clean end of stream.
	if ctx.Err() != nil {
		interrupted = true
	}
	if !interrupted && scanErr != nil {
		return scanErr
	}

	if interrupted {
		return finalFlush("interrupted")
	}
	return finalFlush("end of stream")
}

// writeStats renders the ingestion counters and live window gauges so
// operators can see what the window holds in memory. The caller holds
// the printer lock.
func writeStats(m *stream.Monitor, w io.Writer) {
	st := m.Stats()
	fmt.Fprintf(w, "ingested %d, dropped %d (too late), window: %d AS(es), %d probe(s), %d bin(s), %d sample(s), %d bin(s) evicted\n",
		st.Ingested, st.Dropped, st.ASes, st.Probes, st.Bins, st.Samples, st.EvictedBins)
}

// printReport classifies and renders one scheduled report atomically.
func printReport(m *stream.Monitor, out *printer, at time.Time) error {
	return out.Block(func(w io.Writer) error {
		return writeReport(m, w, at)
	})
}

// writeReport renders one classification report to w; the caller holds
// the printer lock.
func writeReport(m *stream.Monitor, w io.Writer, at time.Time) error {
	if !at.IsZero() {
		fmt.Fprintf(w, "\n== %s ==\n", at.UTC().Format(time.RFC3339))
		writeStats(m, w)
	}
	verdicts, skipped := m.ClassifyAll()
	if len(verdicts) == 0 && len(skipped) == 0 {
		fmt.Fprintln(w, "(no classifiable AS yet — windows warming up)")
		return nil
	}
	if len(verdicts) > 0 {
		tb := report.NewTable("AS", "probes", "class", "daily amp (ms)", "window signal")
		for _, v := range verdicts {
			tb.AddRowf(v.ASN.String(), v.Probes, v.Class.String(),
				fmt.Sprintf("%.2f", v.DailyAmplitude),
				report.Sparkline(report.Downsample(v.Signal.Values, 48), 0))
		}
		if err := tb.Render(w); err != nil {
			return err
		}
	}
	for _, s := range skipped {
		fmt.Fprintf(w, "skipped %s: %v\n", s.ASN, s.Reason)
	}
	return nil
}
