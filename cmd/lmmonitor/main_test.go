package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/netip"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/last-mile-congestion/lastmile/internal/serve"
	"github.com/last-mile-congestion/lastmile/internal/stream"
	"github.com/last-mile-congestion/lastmile/internal/telemetry"
	"github.com/last-mile-congestion/lastmile/internal/traceroute"
)

// TestPrinterSerialises is the regression test for the SIGINT flush
// race: multi-line blocks written through one printer must come out
// contiguous even when other goroutines print concurrently.
func TestPrinterSerialises(t *testing.T) {
	var buf bytes.Buffer
	p := &printer{w: &buf}
	const writers = 8
	const blocks = 50
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for b := 0; b < blocks; b++ {
				if b%2 == 0 {
					if err := p.Block(func(w io.Writer) error {
						for line := 0; line < 3; line++ {
							fmt.Fprintf(w, "block g%d b%d line%d\n", g, b, line)
						}
						return nil
					}); err != nil {
						t.Error(err)
					}
					continue
				}
				p.Printf("single g%d b%d\n", g, b)
			}
		}(g)
	}
	wg.Wait()

	// Every 3-line block must appear as three consecutive output lines.
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	for i, line := range lines {
		if !strings.HasSuffix(line, "line0") {
			continue
		}
		prefix := strings.TrimSuffix(line, "line0")
		if i+2 >= len(lines) || lines[i+1] != prefix+"line1" || lines[i+2] != prefix+"line2" {
			t.Fatalf("block starting at line %d interleaved:\n%s\n%s\n%s",
				i, lines[i], lines[i+1], lines[i+2])
		}
	}
}

var testT0 = time.Date(2019, 9, 1, 0, 0, 0, 0, time.UTC)

// mkTrace builds a 2-hop traceroute with the given last-mile delta.
func mkTrace(probeID int, ts time.Time, deltaMs float64) *traceroute.Result {
	priv := netip.MustParseAddr("192.168.1.1")
	pub := netip.MustParseAddr("203.0.113.1")
	r := &traceroute.Result{
		ProbeID: probeID, MsmID: 5004, Timestamp: ts, AF: 4,
		SrcAddr: netip.MustParseAddr("192.168.1.10"),
		DstAddr: netip.MustParseAddr("198.41.0.4"),
	}
	h1 := traceroute.HopResult{Hop: 1}
	h2 := traceroute.HopResult{Hop: 2}
	for i := 0; i < 3; i++ {
		h1.Replies = append(h1.Replies, traceroute.Reply{From: priv, RTT: 0.5, TTL: 64})
		h2.Replies = append(h2.Replies, traceroute.Reply{From: pub, RTT: 0.5 + deltaMs, TTL: 254})
	}
	r.Hops = []traceroute.HopResult{h1, h2}
	return r
}

// syntheticJSONL renders days of diurnal traceroutes for nProbes as the
// newline-delimited Atlas JSON lmmonitor consumes.
func syntheticJSONL(t *testing.T, nProbes, days int) []byte {
	t.Helper()
	var buf bytes.Buffer
	tw := traceroute.NewWriter(&buf)
	end := testT0.AddDate(0, 0, days)
	for ts := testT0; ts.Before(end); ts = ts.Add(30 * time.Minute) {
		delta := 2.0
		if h := ts.Hour(); h >= 12 && h < 18 {
			delta += 8
		}
		for p := 1; p <= nProbes; p++ {
			if err := tw.Write(mkTrace(p, ts, delta)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRunEndToEnd drives run on a synthetic stream: scheduled reports
// appear at the -every cadence and exactly one final flush follows.
func TestRunEndToEnd(t *testing.T) {
	input := syntheticJSONL(t, 3, 6)
	var buf bytes.Buffer
	cfg := config{
		window:  5 * 24 * time.Hour,
		every:   48 * time.Hour,
		sortIn:  true,
		metrics: telemetry.NewRegistry(),
		grace:   time.Minute,
	}
	if err := run(context.Background(), cfg, bytes.NewReader(input), &printer{w: &buf}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if got := strings.Count(out, "final state:"); got != 1 {
		t.Fatalf("final flush count = %d, want 1\n%s", got, out)
	}
	if !strings.Contains(out, "end of stream") {
		t.Fatalf("missing end-of-stream header:\n%s", out)
	}
	if !strings.Contains(out, "== ") {
		t.Fatalf("no scheduled report in output:\n%s", out)
	}
	if !strings.Contains(out, "ingested ") {
		t.Fatalf("no stats line in output:\n%s", out)
	}
}

// cancelAtEOFReader serves its bytes, then fires cancel on the read
// that would report EOF — a deterministic SIGTERM: the monitor has
// ingested exactly this data when the signal lands.
type cancelAtEOFReader struct {
	data   []byte
	cancel context.CancelFunc
}

func (r *cancelAtEOFReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		r.cancel()
		return 0, io.EOF
	}
	n := copy(p, r.data)
	r.data = r.data[n:]
	return n, nil
}

// TestRunResumeAfterInterrupt pins the -state contract end to end: a
// run killed mid-stream checkpoints everything it ingested, and a
// second run resuming from that file and fed the remainder ends in a
// final state byte-identical to a run that was never interrupted —
// verdicts, signals, and ingestion counters alike.
func TestRunResumeAfterInterrupt(t *testing.T) {
	input := syntheticJSONL(t, 3, 6)
	// Cut at a line boundary so each half is a valid JSONL stream.
	half := bytes.IndexByte(input[len(input)/2:], '\n') + len(input)/2 + 1
	statePath := filepath.Join(t.TempDir(), "state.lmw")

	mkCfg := func(state string) config {
		return config{
			window:  10 * 24 * time.Hour,
			every:   48 * time.Hour,
			sortIn:  false, // stream mode: the checkpoint path under test
			metrics: telemetry.NewRegistry(),
			state:   state,
			grace:   time.Minute, // watchdog must stay out of this test
		}
	}
	finalState := func(out string) string {
		i := strings.LastIndex(out, "final state:")
		if i < 0 {
			t.Fatalf("no final state block:\n%s", out)
		}
		return out[i:]
	}

	// Run 1: interrupted exactly at the half-way line.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var buf1 bytes.Buffer
	err := run(ctx, mkCfg(statePath), &cancelAtEOFReader{data: input[:half], cancel: cancel}, &printer{w: &buf1})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf1.String(), "interrupted") {
		t.Fatalf("run 1 did not report the interrupt:\n%s", buf1.String())
	}
	if _, err := os.Stat(statePath); err != nil {
		t.Fatalf("no checkpoint after interrupt: %v", err)
	}

	// Run 2: resume from the checkpoint, feed the remainder.
	var buf2 bytes.Buffer
	if err := run(context.Background(), mkCfg(statePath), bytes.NewReader(input[half:]), &printer{w: &buf2}); err != nil {
		t.Fatal(err)
	}

	// Control: one uninterrupted run over the full stream.
	var bufU bytes.Buffer
	if err := run(context.Background(), mkCfg(""), bytes.NewReader(input), &printer{w: &bufU}); err != nil {
		t.Fatal(err)
	}

	if got, want := finalState(buf2.String()), finalState(bufU.String()); got != want {
		t.Fatalf("resumed final state differs from uninterrupted run:\n--- resumed\n%s\n--- uninterrupted\n%s", got, want)
	}
}

// TestRunInterruptFlushesOnce pins the fix itself: a cancellation racing
// the stream (with the watchdog grace forced to zero so the forced-flush
// path really runs concurrently) still yields exactly one final report,
// with no interleaved output.
func TestRunInterruptFlushesOnce(t *testing.T) {
	input := syntheticJSONL(t, 3, 6)
	pr, pw := io.Pipe()
	go func() {
		// Dribble the stream, then leave the pipe open: the run can only
		// end via cancellation, never via a too-fast end of stream.
		for len(input) > 0 {
			n := 16 << 10
			if n > len(input) {
				n = len(input)
			}
			if _, err := pw.Write(input[:n]); err != nil {
				return
			}
			input = input[n:]
		}
	}()

	ctx, cancel := context.WithCancel(context.Background())
	var exits []int
	var exitMu sync.Mutex
	// Cancel from inside the processing loop after a fixed number of
	// arrivals: the interrupt lands at a deterministic point mid-stream,
	// with no wall-clock sleep deciding how much was ingested.
	processed := 0
	cfg := config{
		window:  5 * 24 * time.Hour,
		every:   24 * time.Hour,
		sortIn:  false, // stream mode: process as results arrive
		metrics: telemetry.NewRegistry(),
		grace:   0, // watchdog fires immediately on cancel
		stall: func() {
			if processed++; processed == 100 {
				cancel()
			}
		},
		exit: func(code int) {
			exitMu.Lock()
			exits = append(exits, code)
			exitMu.Unlock()
		},
	}
	var buf bytes.Buffer
	out := &printer{w: &buf}
	errc := make(chan error, 1)
	go func() { errc <- run(ctx, cfg, pr, out) }()
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	_ = pw.CloseWithError(nil)

	s := buf.String()
	if got := strings.Count(s, "final state:"); got != 1 {
		t.Fatalf("final flush count = %d, want 1\n%s", got, s)
	}
	if !strings.Contains(s, "interrupted") {
		t.Fatalf("missing interrupted header:\n%s", s)
	}
}

// TestRunWatchdogForcesFlush pins the watchdog path on simulated time: a
// main loop stuck mid-ingest when the signal lands does not block the
// final report — after the grace period (advanced on a fake clock, no
// wall-clock wait) the watchdog forces exactly one flush and exits 130.
func TestRunWatchdogForcesFlush(t *testing.T) {
	input := syntheticJSONL(t, 3, 2)
	clk := serve.NewFakeClock(testT0)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stalled := make(chan struct{})
	release := make(chan struct{})
	var stallOnce sync.Once
	exitc := make(chan int, 1)
	cfg := config{
		window:  5 * 24 * time.Hour,
		every:   24 * time.Hour,
		sortIn:  false,
		metrics: telemetry.NewRegistry(),
		grace:   2 * time.Second,
		clock:   clk,
		stall: func() {
			stallOnce.Do(func() { close(stalled) })
			<-release
		},
		exit: func(code int) { exitc <- code },
	}
	var buf bytes.Buffer
	out := &printer{w: &buf}
	errc := make(chan error, 1)
	go func() { errc <- run(ctx, cfg, bytes.NewReader(input), out) }()

	<-stalled // the loop is wedged inside process
	cancel()  // the signal lands; the flush cannot happen normally
	// The watchdog parks on its grace timer; advancing past it forces
	// the flush and the exit, with the loop still wedged.
	clk.BlockUntil(1)
	clk.Advance(2 * time.Second)
	if code := <-exitc; code != 130 {
		t.Fatalf("forced exit code = %d, want 130", code)
	}

	// Unwedge the loop: run drains out, and the Once makes its own
	// final-flush attempt a no-op — still exactly one report.
	close(release)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if got := strings.Count(s, "final state:"); got != 1 {
		t.Fatalf("final flush count = %d, want 1\n%s", got, s)
	}
	if !strings.Contains(s, "interrupted (forced flush)") {
		t.Fatalf("missing forced-flush header:\n%s", s)
	}
}

// TestRunColdStartsOnCorruptState pins crash recovery at the command
// level: a garbage -state file must not abort the run — it cold-starts,
// processes the stream, and leaves behind a fresh, resumable checkpoint.
func TestRunColdStartsOnCorruptState(t *testing.T) {
	statePath := filepath.Join(t.TempDir(), "state.lmw")
	if err := os.WriteFile(statePath, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	cfg := config{
		window:  5 * 24 * time.Hour,
		every:   48 * time.Hour,
		sortIn:  true,
		metrics: telemetry.NewRegistry(),
		state:   statePath,
		grace:   time.Minute,
	}
	if err := run(context.Background(), cfg, bytes.NewReader(syntheticJSONL(t, 3, 4)), &printer{w: &buf}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "final state:") {
		t.Fatalf("no final report after corrupt-state cold start:\n%s", buf.String())
	}
	// The run replaced the garbage with a checkpoint a new run resumes
	// from cleanly.
	res, err := stream.Open(statePath, stream.Options{})
	if err != nil || res.Warning != nil || !res.Resumed {
		t.Fatalf("checkpoint after cold start: res %+v, err %v, want clean resume", res, err)
	}
	if res.Monitor.Stats().Ingested == 0 {
		t.Fatal("checkpoint carries no ingested data")
	}
}
