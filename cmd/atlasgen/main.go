// Command atlasgen generates a synthetic RIPE Atlas traceroute dataset
// for the Tokyo case-study world, runnable through cmd/lmsurvey,
// cmd/lmmonitor, or any Atlas-compatible tooling. Output is
// newline-delimited Atlas-format JSON by default; -format binary emits
// the compact wire format instead, which decodes an order of magnitude
// faster and carries each probe's origin AS in-band.
//
// Usage:
//
//	atlasgen -isp A -days 2 -out ispa.jsonl
//	atlasgen -isp A -days 2 -format binary -out ispa.lmw
//	atlasgen -isp C -probes 4 | head
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/last-mile-congestion/lastmile/internal/atlas"
	"github.com/last-mile-congestion/lastmile/internal/ioutil"
	"github.com/last-mile-congestion/lastmile/internal/scenario"
	"github.com/last-mile-congestion/lastmile/internal/traceroute"
	"github.com/last-mile-congestion/lastmile/internal/wire"
)

func main() {
	var (
		ispName = flag.String("isp", "A", "Tokyo ISP to generate for: A, B, C or D")
		days    = flag.Int("days", 1, "number of days of traceroutes (starting Sep 19 2019)")
		probes  = flag.Int("probes", 0, "limit the probe count (0 = the ISP's full fleet)")
		seed    = flag.Uint64("seed", 2020, "simulation seed")
		out     = flag.String("out", "-", "output file (- for stdout)")
		format  = flag.String("format", "json", "output format: json (Atlas JSONL) or binary (wire stream)")
		meta    = flag.String("meta", "", "also write probe metadata (Atlas probe-archive JSON) to this file")
	)
	flag.Parse()
	if err := run(*ispName, *days, *probes, *seed, *out, *format, *meta); err != nil {
		fmt.Fprintln(os.Stderr, "atlasgen:", err)
		os.Exit(1)
	}
}

func run(ispName string, days, probeLimit int, seed uint64, out, format, metaOut string) (err error) {
	tk, err := scenario.BuildTokyo(seed, 10)
	if err != nil {
		return err
	}
	var ti *scenario.TokyoISP
	switch strings.ToUpper(ispName) {
	case "A":
		ti = tk.ISPA
	case "B":
		ti = tk.ISPB
	case "C":
		ti = tk.ISPC
	case "D":
		ti = tk.ISPD
	default:
		return fmt.Errorf("unknown ISP %q (want A, B, C or D)", ispName)
	}
	if days < 1 {
		return fmt.Errorf("days must be >= 1")
	}
	probes := ti.Probes
	if probeLimit > 0 && probeLimit < len(probes) {
		probes = probes[:probeLimit]
	}

	var w io.Writer = os.Stdout
	if out != "-" {
		// cerr, not err: a short-declared err here would shadow the
		// named return that CloseJoin records into.
		f, cerr := os.Create(out)
		if cerr != nil {
			return cerr
		}
		defer ioutil.CloseJoin(f, &err)
		w = f
	}

	// Both formats share one write/flush shape; the binary writer
	// attributes each result with its probe's origin AS in-band.
	var (
		write func(p *atlas.Probe, r *traceroute.Result) error
		flush func() error
	)
	switch format {
	case "json":
		tw := traceroute.NewWriter(w)
		write = func(_ *atlas.Probe, r *traceroute.Result) error { return tw.Write(r) }
		flush = tw.Flush
	case "binary":
		ww := wire.NewWriter(w, wire.StreamResults)
		write = func(p *atlas.Probe, r *traceroute.Result) error { return ww.WriteResult(p.ASN, r) }
		flush = ww.Flush
	default:
		return fmt.Errorf("unknown format %q (want json or binary)", format)
	}

	period := scenario.TokyoPeriod()
	start := period.Start
	end := start.AddDate(0, 0, days)
	engine := atlas.NewEngine(seed)
	total := 0
	for _, p := range probes {
		if err := engine.Run(p, start, end, func(r *traceroute.Result) error {
			total++
			return write(p, r)
		}); err != nil {
			return err
		}
	}
	if err := flush(); err != nil {
		return err
	}
	if metaOut != "" {
		if err := writeMetadata(metaOut, probes); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "atlasgen: wrote %d traceroutes for ISP_%s (%d probes, %d day(s))\n",
		total, strings.ToUpper(ispName), len(probes), days)
	return nil
}

// writeMetadata emits the probes' metadata in Atlas probe-archive form so
// lmsurvey can group results by AS without a RIB.
func writeMetadata(path string, probes []*atlas.Probe) (err error) {
	infos := make([]atlas.ProbeInfo, 0, len(probes))
	for _, p := range probes {
		infos = append(infos, atlas.ProbeInfo{
			ID:          p.ID,
			ASNv4:       p.ASN,
			CountryCode: p.CC,
			City:        p.City,
			IsAnchor:    p.IsAnchor,
			Version:     p.Version,
			Status:      "Connected",
		})
	}
	registry, err := atlas.NewRegistry(infos)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer ioutil.CloseJoin(f, &err)
	return registry.WriteRegistry(f)
}
