package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/netip"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/last-mile-congestion/lastmile/internal/serve"
	"github.com/last-mile-congestion/lastmile/internal/traceroute"
)

var testT0 = time.Date(2019, 9, 1, 0, 0, 0, 0, time.UTC)

// writeArchive renders days of diurnal traceroutes for nProbes as a
// newline-delimited Atlas JSON archive file and returns its path.
func writeArchive(t *testing.T, dir string, nProbes, days int) (string, int) {
	t.Helper()
	priv := netip.MustParseAddr("192.168.1.1")
	pub := netip.MustParseAddr("203.0.113.1")
	var buf bytes.Buffer
	tw := traceroute.NewWriter(&buf)
	n := 0
	end := testT0.AddDate(0, 0, days)
	for ts := testT0; ts.Before(end); ts = ts.Add(30 * time.Minute) {
		delta := 2.0
		if h := ts.Hour(); h >= 12 && h < 18 {
			delta += 8
		}
		for p := 1; p <= nProbes; p++ {
			r := &traceroute.Result{
				ProbeID: p, MsmID: 5004, Timestamp: ts, AF: 4,
				SrcAddr: netip.MustParseAddr("192.168.1.10"),
				DstAddr: netip.MustParseAddr("198.41.0.4"),
			}
			h1 := traceroute.HopResult{Hop: 1}
			h2 := traceroute.HopResult{Hop: 2}
			for i := 0; i < 3; i++ {
				h1.Replies = append(h1.Replies, traceroute.Reply{From: priv, RTT: 0.5, TTL: 64})
				h2.Replies = append(h2.Replies, traceroute.Reply{From: pub, RTT: 0.5 + delta, TTL: 254})
			}
			r.Hops = []traceroute.HopResult{h1, h2}
			if err := tw.Write(r); err != nil {
				t.Fatal(err)
			}
			n++
		}
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "archive.jsonl")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path, n
}

func TestFileSourceReadsArchive(t *testing.T) {
	path, n := writeArchive(t, t.TempDir(), 2, 1)
	src, err := openFileSource(serve.Target{Name: "a", ASN: 64500, Source: path})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	got := 0
	for {
		asn, res, err := src.Next(context.Background())
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		// JSONL carries no in-band attribution: the source reports 0 and
		// the daemon falls back to the target's configured ASN.
		if asn != 0 {
			t.Fatalf("JSONL source attributed AS%d in-band", asn)
		}
		if res == nil || res.Timestamp.IsZero() {
			t.Fatalf("result %d malformed: %+v", got, res)
		}
		got++
	}
	if got != n {
		t.Fatalf("read %d results, archive holds %d", got, n)
	}

	// A cancelled context surfaces between results, not as EOF.
	src2, err := openFileSource(serve.Target{Name: "a", Source: path})
	if err != nil {
		t.Fatal(err)
	}
	defer src2.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := src2.Next(ctx); err != context.Canceled {
		t.Fatalf("Next on cancelled ctx = %v, want context.Canceled", err)
	}
}

func TestOpenFileSourceMissingFile(t *testing.T) {
	if _, err := openFileSource(serve.Target{Name: "a", Source: "/nonexistent/archive.jsonl"}); err == nil {
		t.Fatal("want error for missing archive")
	}
}

func TestRunBadConfig(t *testing.T) {
	err := run(context.Background(), nil, filepath.Join(t.TempDir(), "absent.json"), io.Discard, io.Discard)
	if err == nil {
		t.Fatal("want error for missing config file")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"targets": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), nil, bad, io.Discard, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "no targets") {
		t.Fatalf("err = %v, want no-targets rejection", err)
	}
}

// syncBuffer is a bytes.Buffer safe to read while run's goroutine logs.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestRunEndToEnd boots the real binary path — config file, archive
// source, ops listener on an ephemeral port — waits over HTTP for the
// target to finish, drains, and checks the final report.
func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	archive, _ := writeArchive(t, dir, 3, 3)
	cfgPath := filepath.Join(dir, "lmserved.json")
	cfg := fmt.Sprintf(`{
  "http_addr": "127.0.0.1:0",
  "state_path": %q,
  "window": "48h", "bin_width": "30m", "min_traceroutes": 3, "max_lateness": "2h",
  "targets": [{"name": "alpha", "asn": 64500, "source": %q}]
}`, filepath.Join(dir, "state.lmw"), archive)
	if err := os.WriteFile(cfgPath, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out bytes.Buffer
	errw := &syncBuffer{}
	runc := make(chan error, 1)
	go func() { runc <- run(ctx, nil, cfgPath, &out, errw) }()

	// The ephemeral port is only knowable from the startup log line.
	addrRe := regexp.MustCompile(`ops endpoint on http://([^\s]+)`)
	var base string
	deadline := time.Now().Add(30 * time.Second)
	for base == "" {
		if m := addrRe.FindStringSubmatch(errw.String()); m != nil {
			base = "http://" + m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no ops endpoint line in stderr:\n%s", errw.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The health route reads the live target table: finished means every
	// archived result reached the engine.
	for {
		resp, err := http.Get(base + "/api/health")
		if err != nil {
			t.Fatal(err)
		}
		var health struct {
			Targets []struct{ State string } `json:"targets"`
		}
		err = json.NewDecoder(resp.Body).Decode(&health)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(health.Targets) == 1 && health.Targets[0].State == "finished" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("target never finished: %+v", health)
		}
		time.Sleep(5 * time.Millisecond)
	}

	cancel()
	if err := <-runc; err != nil {
		t.Fatalf("run: %v", err)
	}
	report := out.String()
	if !strings.Contains(report, "AS64500") {
		t.Fatalf("final report missing AS64500:\n%s", report)
	}
	if _, err := os.Stat(filepath.Join(dir, "state.lmw")); err != nil {
		t.Fatalf("no final checkpoint: %v", err)
	}
}
