// Command lmserved is the long-running last-mile monitoring daemon: a
// stream.Monitor wrapped in the internal/serve lifecycle — declarative
// config file, per-target ingest with bounded concurrency, SIGHUP/poll
// hot reload with target diffing, bin-boundary checkpoints, and an ops
// HTTP endpoint (/metrics, /debug/pprof, /api/*).
//
// Usage:
//
//	lmserved -config lmserved.json
//
// SIGHUP re-reads the config and applies the target diff; SIGINT or
// SIGTERM drains every target, writes a final checkpoint, and prints
// the final classification report to stdout.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	lastmile "github.com/last-mile-congestion/lastmile"
	"github.com/last-mile-congestion/lastmile/internal/bgp"
	"github.com/last-mile-congestion/lastmile/internal/ioutil"
	"github.com/last-mile-congestion/lastmile/internal/serve"
	"github.com/last-mile-congestion/lastmile/internal/traceroute"
)

func main() {
	cfgPath := flag.String("config", "", "daemon config file (JSON; required)")
	flag.Parse()
	if *cfgPath == "" {
		fmt.Fprintln(os.Stderr, "lmserved: -config is required")
		flag.Usage()
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	hup := make(chan os.Signal, 4)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)

	if err := run(ctx, hup, *cfgPath, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "lmserved:", err)
		os.Exit(1)
	}
}

// run wires a daemon to the process environment: file-backed sources,
// stderr logging, and the ops HTTP listener. It returns after the
// daemon drains and the final report is written to out.
func run(ctx context.Context, hup <-chan os.Signal, cfgPath string, out, errw io.Writer) error {
	d, err := serve.New(cfgPath, serve.Options{
		Open: openFileSource,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(errw, "lmserved: "+format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}

	var srv *http.Server
	if addr := d.HTTPAddr(); addr != "" {
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			return fmt.Errorf("lmserved: listen: %w", err)
		}
		srv = &http.Server{Handler: d.Handler()}
		go func() {
			// Serve exits with ErrServerClosed on the Close below; any
			// other error surfaces in the daemon log.
			if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(errw, "lmserved: http: %v\n", err)
			}
		}()
		fmt.Fprintf(errw, "lmserved: ops endpoint on http://%s\n", ln.Addr())
	}

	runErr := d.Run(ctx, hup)
	if srv != nil {
		// The daemon has drained; in-flight reads of the final snapshot
		// are not worth delaying exit for.
		ioutil.CloseQuiet(srv)
	}
	if err := d.WriteReport(out); err != nil {
		return err
	}
	return runErr
}

// fileSource adapts a result archive file (Atlas JSONL or binary wire,
// optionally gzipped) to the serve.Source interface.
type fileSource struct {
	f  *os.File
	sc lastmile.ResultScanner
}

// openFileSource opens Target.Source as an archive path.
func openFileSource(t serve.Target) (serve.Source, error) {
	f, err := os.Open(t.Source)
	if err != nil {
		return nil, err
	}
	return &fileSource{f: f, sc: lastmile.NewResultScanner(f)}, nil
}

// Next returns the next archived result. The scanner reuses its result
// storage across Scans, which is safe here: the daemon delivers each
// result to the engine before asking for the next. Attribution comes
// from the archive when it carries it in-band (wire); the daemon falls
// back to the target's configured ASN otherwise.
func (s *fileSource) Next(ctx context.Context) (bgp.ASN, *traceroute.Result, error) {
	// File reads are not cancellable mid-call; honour ctx between
	// results, which bounds drain latency to one decode.
	if err := ctx.Err(); err != nil {
		return 0, nil, err
	}
	if !s.sc.Scan() {
		if err := s.sc.Err(); err != nil {
			return 0, nil, err
		}
		return 0, nil, io.EOF
	}
	return bgp.ASN(s.sc.ASN()), s.sc.Result(), nil
}

// Close releases the archive file.
func (s *fileSource) Close() error { return s.f.Close() }
