// Command lmexp regenerates the paper's tables and figures from the
// simulated measurement world.
//
// Usage:
//
//	lmexp -fig 1            # reproduce Figure 1
//	lmexp -fig 5 -clients 4000
//	lmexp -table headline   # reproduce the §3 survey numbers
//	lmexp -all              # everything (slow: full 646-AS surveys)
//	lmexp -all -ases 160 -fleet 60   # reduced-scale smoke run
//	lmexp -fig 3 -workers 8          # explicit fan-out width
//
// Surveys, figure simulations, and ablations fan out over -workers
// goroutines (default GOMAXPROCS). The deterministic keyed-RNG design
// makes the output byte-identical at any worker count; -workers 1
// reproduces the fully serial run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	lastmile "github.com/last-mile-congestion/lastmile"
	"github.com/last-mile-congestion/lastmile/internal/experiments"
)

func main() {
	var (
		fig     = flag.Int("fig", 0, "figure number to reproduce (1-9)")
		table   = flag.String("table", "", "table to reproduce (headline, ablations, v6delay, sensitivity)")
		all     = flag.Bool("all", false, "reproduce every figure and table")
		seed    = flag.Uint64("seed", 2020, "simulation seed")
		ases    = flag.Int("ases", 0, "survey world size (default 646)")
		fleet   = flag.Int("fleet", 0, "fig 1/2/8 fleet size (default 340)")
		clients = flag.Int("clients", 0, "CDN clients per Tokyo ISP (default 2000)")
		perBin  = flag.Int("perbin", 0, "traceroutes per 30-min bin (default 6)")
		saveDir = flag.String("save", "", "directory to persist survey JSON after running them")
		loadDir = flag.String("load", "", "directory to load persisted survey JSON from (skips the measurement step)")
		csvDir  = flag.String("csv", "", "directory to dump the selected figure's data series as CSV")
		workers = flag.Int("workers", 0, "worker goroutines for the survey/simulation fan-out (0 = GOMAXPROCS, 1 = serial; output is identical at any count)")
		metrics = flag.String("metrics", "", "write an end-of-run telemetry snapshot (Prometheus text) to this file (- for stdout)")
	)
	flag.Parse()

	o := experiments.Options{
		Seed:              *seed,
		WorldASes:         *ases,
		FleetSize:         *fleet,
		CDNClients:        *clients,
		TraceroutesPerBin: *perBin,
		Workers:           *workers,
	}
	err := run(o, *fig, *table, *all, *saveDir, *loadDir, *csvDir)
	if *metrics != "" {
		// The process-wide registry carries the dsp cache and worker-pool
		// series accumulated across whatever the run exercised.
		if derr := lastmile.DefaultMetrics().DumpFile(*metrics); derr != nil {
			fmt.Fprintln(os.Stderr, "lmexp: metrics dump:", derr)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lmexp:", err)
		os.Exit(1)
	}
}

// surveySet obtains the survey set: from disk when loadDir is given,
// otherwise by running the surveys (persisting them when saveDir is
// given).
func surveySet(o experiments.Options, saveDir, loadDir string) (*experiments.SurveySet, error) {
	if loadDir != "" {
		return experiments.LoadSurveys(o, loadDir)
	}
	set, err := experiments.RunSurveys(o)
	if err != nil {
		return nil, err
	}
	if saveDir != "" {
		if err := experiments.SaveSurveys(set, saveDir); err != nil {
			return nil, err
		}
	}
	return set, nil
}

// renderable is what every figure result provides; csvWriter is the
// optional CSV dump.
type renderable interface{ Render(io.Writer) error }
type csvWriter interface{ WriteCSV(string) error }

// emit renders r and, when csvDir is set and the result supports it,
// dumps its CSV series.
func emit(w io.Writer, r renderable, csvDir string) error {
	if err := r.Render(w); err != nil {
		return err
	}
	if csvDir == "" {
		return nil
	}
	cw, ok := r.(csvWriter)
	if !ok {
		return nil
	}
	if err := cw.WriteCSV(csvDir); err != nil {
		return err
	}
	fmt.Fprintf(w, "(CSV series written to %s)\n", csvDir)
	return nil
}

func run(o experiments.Options, fig int, table string, all bool, saveDir, loadDir, csvDir string) error {
	w := os.Stdout
	if all {
		return experiments.RenderAll(w, o)
	}
	switch {
	case table == "ablations":
		return experiments.RenderAblations(w, o)
	case table == "sensitivity":
		r, err := experiments.ProbeSensitivity(o)
		if err != nil {
			return err
		}
		return r.Render(w)
	case table == "v6delay":
		r, err := experiments.ExtensionV6Delay(o)
		if err != nil {
			return err
		}
		return r.Render(w)
	case table == "headline":
		set, err := surveySet(o, saveDir, loadDir)
		if err != nil {
			return err
		}
		return experiments.HeadlineFrom(set).Render(w)
	case fig == 1:
		r, err := experiments.Fig1(o)
		if err != nil {
			return err
		}
		return emit(w, r, csvDir)
	case fig == 2:
		r, err := experiments.Fig2(o)
		if err != nil {
			return err
		}
		return emit(w, r, csvDir)
	case fig == 3 || fig == 4:
		set, err := surveySet(o, saveDir, loadDir)
		if err != nil {
			return err
		}
		if fig == 3 {
			return emit(w, experiments.Fig3From(set), csvDir)
		}
		return emit(w, experiments.Fig4From(set), csvDir)
	case fig >= 5 && fig <= 7 || fig == 9:
		ts, err := experiments.RunTokyo(o)
		if err != nil {
			return err
		}
		switch fig {
		case 5:
			return emit(w, experiments.Fig5From(ts), csvDir)
		case 6:
			return emit(w, experiments.Fig6From(ts), csvDir)
		case 7:
			return emit(w, experiments.Fig7From(ts), csvDir)
		default:
			return emit(w, experiments.Fig9From(ts), csvDir)
		}
	case fig == 8:
		r, err := experiments.Fig8(o)
		if err != nil {
			return err
		}
		return emit(w, r, csvDir)
	default:
		return fmt.Errorf("nothing selected: use -fig 1..9, -table headline, or -all")
	}
}
