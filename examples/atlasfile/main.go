// Analyse an Atlas traceroute file: the downstream-user workflow.
//
// Feed any newline-delimited RIPE Atlas traceroute JSON — downloaded from
// the Atlas API, or generated with cmd/atlasgen — and get per-probe
// last-mile statistics plus an AS-level congestion verdict, using only
// the public API.
//
//	go run ./cmd/atlasgen -isp A -days 8 -out /tmp/ispa.jsonl
//	go run ./examples/atlasfile /tmp/ispa.jsonl
package main

import (
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	lastmile "github.com/last-mile-congestion/lastmile"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintf(os.Stderr, "usage: %s <traceroutes.jsonl>\n", os.Args[0])
		os.Exit(2)
	}
	f, err := os.Open(os.Args[1])
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	// Pass 1: buffer per probe, find the time extent.
	byProbe := map[int][]*lastmile.Result{}
	var tMin, tMax time.Time
	noSegment := 0
	sc := lastmile.NewResultScanner(f)
	for sc.Scan() {
		// Clone: the scanner reuses its Result on the next Scan, and
		// pass 2 needs every traceroute live at once.
		r := sc.Result().Clone()
		if _, ok := lastmile.FindSegment(r); !ok {
			noSegment++
		}
		byProbe[r.ProbeID] = append(byProbe[r.ProbeID], r)
		if tMin.IsZero() || r.Timestamp.Before(tMin) {
			tMin = r.Timestamp
		}
		if r.Timestamp.After(tMax) {
			tMax = r.Timestamp
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if len(byProbe) == 0 {
		log.Fatal("no traceroutes found")
	}
	start := tMin.Truncate(lastmile.DefaultBinWidth)
	end := tMax.Add(lastmile.DefaultBinWidth).Truncate(lastmile.DefaultBinWidth)
	fmt.Printf("%d probes, %s .. %s, %d traceroutes without a last-mile segment\n\n",
		len(byProbe), start.Format("2006-01-02 15:04"), end.Format("2006-01-02 15:04"), noSegment)

	// Pass 2: per-probe accumulation.
	var probeIDs []int
	for id := range byProbe {
		probeIDs = append(probeIDs, id)
	}
	sort.Ints(probeIDs)
	var accs []*lastmile.ProbeAccumulator
	for _, id := range probeIDs {
		acc, err := lastmile.NewProbeAccumulator(id, start, end, lastmile.DefaultBinWidth)
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range byProbe[id] {
			if err := acc.Add(r); err != nil {
				log.Fatal(err)
			}
		}
		accs = append(accs, acc)
		med := acc.MedianRTT(lastmile.DefaultMinTraceroutes)
		fmt.Printf("probe %-7d traceroutes=%-5d usable-bins=%d\n",
			id, acc.Traceroutes, med.Len()-med.GapCount())
	}

	// Aggregate and classify.
	signal, n, err := lastmile.PopulationDelay(accs, lastmile.DefaultMinTraceroutes)
	if err != nil {
		log.Fatal(err)
	}
	verdict, err := lastmile.Classify(signal, lastmile.DefaultClassifierOptions())
	if err != nil {
		log.Fatalf("classify: %v (short captures cannot resolve the daily cycle; use >= 4 days)", err)
	}
	fmt.Printf("\npopulation: %d probes -> class %v, daily amplitude %.2f ms, prominent %.4f c/h (daily=%v)\n",
		n, verdict.Class, verdict.DailyAmplitude, verdict.Peak.Freq, verdict.IsDaily)
}
