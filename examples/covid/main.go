// COVID impact survey (§3.2): how many more ASes showed persistent
// last-mile congestion under the April 2020 lockdowns?
//
// The example builds a reduced survey world (the full study monitors 646
// ASes; we default to 200 so the example runs in under a minute), runs
// the September 2019 and April 2020 surveys, and compares reported-AS
// counts and classification mixes — the paper found 55% more congested
// ASes under lockdown.
//
//	go run ./examples/covid
//	go run ./examples/covid -ases 646   # paper scale (slower)
package main

import (
	"flag"
	"fmt"
	"log"

	lastmile "github.com/last-mile-congestion/lastmile"
	"github.com/last-mile-congestion/lastmile/internal/report"
	"github.com/last-mile-congestion/lastmile/internal/scenario"
)

func main() {
	ases := flag.Int("ases", 200, "number of monitored ASes")
	flag.Parse()

	cfg := scenario.DefaultConfig(2020)
	cfg.ASes = *ases
	world, err := scenario.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}

	normal := scenario.LongitudinalPeriods()[5] // 2019-09
	lockdown := scenario.COVIDPeriod()          // 2020-04

	fmt.Printf("surveying %d ASes for %s and %s...\n\n", len(world.ASes), normal.Label, lockdown.Label)
	sep, err := world.RunSurvey(normal)
	if err != nil {
		log.Fatal(err)
	}
	apr, err := world.RunSurvey(lockdown)
	if err != nil {
		log.Fatal(err)
	}

	tb := report.NewTable("period", "monitored", "reported", "Severe", "Mild", "Low")
	for _, s := range []*lastmile.Survey{sep, apr} {
		counts := s.CountByClass()
		tb.AddRowf(s.Period, s.Len(), len(s.ReportedASes()),
			counts[lastmile.Severe], counts[lastmile.Mild], counts[lastmile.Low])
	}
	if err := tb.Render(log.Writer()); err != nil {
		log.Fatal(err)
	}

	before, after := len(sep.ReportedASes()), len(apr.ReportedASes())
	fmt.Printf("\nreported ASes: %d -> %d (%+.0f%%; the paper measured 45 -> 70, +55%%)\n",
		before, after, 100*float64(after-before)/float64(before))

	// Which ASes flipped under lockdown?
	flipped := 0
	for _, asn := range apr.ReportedASes() {
		if res, ok := sep.Results[asn]; !ok || !res.Class.Reported() {
			flipped++
		}
	}
	fmt.Printf("newly congested under lockdown: %d ASes\n", flipped)
}
