// Delay-study guard (§6): protecting latency-based inference from
// persistent last-mile congestion.
//
// The paper's discussion warns that geolocation and other latency studies
// "should avoid making inferences during peak hours and with probes
// affected by persistent last-mile congestion". This example shows the
// full guard workflow on two synthetic ASes — one congested, one clean:
//
//  1. build each probe's queuing-delay series,
//  2. classify the aggregate and bootstrap the verdict's stability (§5's
//     probe-variability caveat, quantified),
//  3. derive the peak-hour mask and apply it to a toy geolocation-style
//     minimum-RTT estimate, showing the bias the mask removes.
//
//	go run ./examples/guard
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	lastmile "github.com/last-mile-congestion/lastmile"
)

const binsPerDay = 48

func main() {
	start := time.Date(2019, 9, 1, 0, 0, 0, 0, time.UTC)
	days := 15

	for _, tc := range []struct {
		name    string
		peakMs  float64
		comment string
	}{
		{"congested-AS", 5.0, "legacy shared infrastructure"},
		{"clean-AS", 0.0, "own fiber plant"},
	} {
		fmt.Printf("== %s (%s) ==\n", tc.name, tc.comment)

		// 1. Per-probe queuing-delay series (8 probes).
		var perProbe []*lastmile.Series
		rng := rand.New(rand.NewSource(42))
		for p := 0; p < 8; p++ {
			s, err := lastmile.NewSeries(start, 30*time.Minute, days*binsPerDay)
			if err != nil {
				log.Fatal(err)
			}
			for i := range s.Values {
				hour := (i / 2) % 24
				v := math.Abs(rng.NormFloat64()) * 0.1
				if hour >= 19 && hour < 23 {
					v += tc.peakMs * (0.8 + 0.4*rng.Float64())
				}
				s.Values[i] = v
			}
			perProbe = append(perProbe, s)
		}

		// 2. Classify + bootstrap.
		signal, err := lastmile.AggregateMedian(perProbe)
		if err != nil {
			log.Fatal(err)
		}
		verdict, err := lastmile.Classify(signal, lastmile.DefaultClassifierOptions())
		if err != nil {
			log.Fatal(err)
		}
		boot, err := lastmile.BootstrapAmplitude(perProbe, lastmile.BootstrapOptions{Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("verdict: %s\n", boot)

		// 3. Guard mask, applied to a latency-inference toy: estimate the
		// "distance" to this AS via minimum observed RTT. Congestion
		// inflates RTT samples taken at peak hours; masking them removes
		// the bias.
		mask, err := lastmile.PeakHourMask(signal, verdict, lastmile.DefaultGuardOptions())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("mask excludes %.0f%% of bins\n", 100*lastmile.MaskedFraction(mask))

		// Latency campaigns average samples taken at arbitrary hours; a
		// congested AS biases that average upward. (The per-bin median
		// used by the *detector* resists this — which is exactly why
		// the paper had to look at the daily pattern, not the level.)
		const baseRTT = 42.0 // ms, the "true" propagation distance
		var naiveSum, guardSum float64
		var naiveN, guardN int
		for i, v := range signal.Values {
			if math.IsNaN(v) {
				continue
			}
			sample := baseRTT + v
			naiveSum += sample
			naiveN++
			if !mask[i] {
				guardSum += sample
				guardN++
			}
		}
		fmt.Printf("geolocation-style mean RTT estimate: naive %.2f ms, guarded %.2f ms (truth %.1f)\n\n",
			naiveSum/float64(naiveN), guardSum/float64(guardN), baseRTT)
	}
}
