// Tokyo case study (§4): three major Japanese ISPs compared end to end.
//
// ISP_A and ISP_B reach subscribers over the carrier's shared legacy
// PPPoE infrastructure; ISP_C runs its own fiber plant. The example
// measures one week of last-mile delay from Greater-Tokyo Atlas probes,
// generates CDN access logs over the same simulated access networks,
// estimates broadband throughput (mobile prefixes excluded, >3 MB cache
// hits only), and cross-references the two with Spearman correlation —
// reproducing Figures 5, 6 and 7.
//
//	go run ./examples/tokyo
package main

import (
	"fmt"
	"log"
	"math"
	"net/netip"
	"sort"
	"time"

	lastmile "github.com/last-mile-congestion/lastmile"
	"github.com/last-mile-congestion/lastmile/internal/cdn"
	"github.com/last-mile-congestion/lastmile/internal/report"
	"github.com/last-mile-congestion/lastmile/internal/scenario"
)

func main() {
	const seed = 2020
	tokyo, err := scenario.BuildTokyo(seed, 400)
	if err != nil {
		log.Fatal(err)
	}
	week := scenario.TokyoPeriod()

	fmt.Println("== Last-mile delay, Sep 19-26 2019, Greater Tokyo ==")
	delays := map[string]*lastmile.Series{}
	for _, ispCase := range []struct {
		name string
		isp  *scenario.TokyoISP
	}{
		{"ISP_A", tokyo.ISPA}, {"ISP_B", tokyo.ISPB}, {"ISP_C", tokyo.ISPC},
	} {
		res, err := scenario.SimulatePopulationDelay(ispCase.isp.Probes, week, 6, seed)
		if err != nil {
			log.Fatal(err)
		}
		delays[ispCase.name] = res.Signal
		cls, err := lastmile.Classify(res.Signal, lastmile.DefaultClassifierOptions())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s %d probes  class=%-6v daily amp=%.2f ms\n  %s\n",
			ispCase.name, res.Probes, cls.Class, cls.DailyAmplitude,
			report.Sparkline(report.Downsample(res.Signal.Values, 64), 6))
	}

	fmt.Println("\n== CDN broadband throughput (Mbps, mobile prefixes excluded) ==")
	// One shared log stream, sliced per AS by longest-prefix match — the
	// way the paper slices one CDN dataset.
	mkEstimator := func(asn lastmile.ASN, binWidth time.Duration) *lastmile.ThroughputEstimator {
		opts := lastmile.DefaultThroughputOptions()
		opts.BinWidth = binWidth
		opts.AF = 4
		opts.Include = func(a netip.Addr) bool {
			origin, err := tokyo.RIB.OriginOf(a)
			return err == nil && origin == asn && !tokyo.MobilePrefixes.Contains(a)
		}
		est, err := lastmile.NewThroughputEstimator(week.Start, week.End, opts)
		if err != nil {
			log.Fatal(err)
		}
		return est
	}
	estA := mkEstimator(scenario.ASNTokyoA, 15*time.Minute)
	estC := mkEstimator(scenario.ASNTokyoC, 15*time.Minute)
	estA30 := mkEstimator(scenario.ASNTokyoA, 30*time.Minute)
	estC30 := mkEstimator(scenario.ASNTokyoC, 30*time.Minute)

	for i, arm := range []*scenario.TokyoISP{tokyo.ISPA, tokyo.ISPC} {
		gen := &cdn.Generator{
			Network: arm.Network, Devices: arm.Devices,
			Clients: arm.CDNClients, RequestsPerClientPerDay: 40,
			DualStackFrac: 0.6, Seed: seed + uint64(i)*1000,
		}
		err := gen.Generate(week.Start, week.End, func(e cdn.LogEntry) error {
			estA.Add(&e)
			estC.Add(&e)
			estA30.Add(&e)
			estC30.Add(&e)
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	thrA, thrC := estA.Series(3), estC.Series(3)
	fmt.Printf("ISP_A  median=%.1f  %s\n", median(thrA.Values),
		report.Sparkline(report.Downsample(thrA.Values, 64), 60))
	fmt.Printf("ISP_C  median=%.1f  %s\n", median(thrC.Values),
		report.Sparkline(report.Downsample(thrC.Values, 64), 60))

	fmt.Println("\n== Delay vs throughput (Spearman) ==")
	rhoA := correlate(delays["ISP_A"], estA30.Series(3))
	rhoC := correlate(delays["ISP_C"], estC30.Series(3))
	fmt.Printf("ISP_A rho = %.2f (paper: -0.6) — congested: delay up, throughput down\n", rhoA)
	fmt.Printf("ISP_C rho = %.2f (paper:  0.0) — own fiber: uncorrelated\n", rhoC)
}

func median(vals []float64) float64 {
	clean := make([]float64, 0, len(vals))
	for _, v := range vals {
		if !math.IsNaN(v) {
			clean = append(clean, v)
		}
	}
	if len(clean) == 0 {
		return math.NaN()
	}
	sort.Float64s(clean)
	return clean[len(clean)/2]
}

func correlate(delay, thr *lastmile.Series) float64 {
	n := delay.Len()
	if thr.Len() < n {
		n = thr.Len()
	}
	rho, err := lastmile.Spearman(delay.Values[:n], thr.Values[:n])
	if err != nil {
		return math.NaN()
	}
	return rho
}
