// Quickstart: the whole pipeline on handcrafted traceroutes.
//
// We synthesise two weeks of traceroutes for three probes in one AS — a
// last mile that queues for six hours every evening — then run the
// paper's §2 methodology end to end: last-mile estimation, per-probe
// median binning, population aggregation, Welch analysis, and
// classification.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"net/netip"
	"os"
	"time"

	lastmile "github.com/last-mile-congestion/lastmile"
)

func main() {
	start := time.Date(2019, 9, 1, 0, 0, 0, 0, time.UTC)
	end := start.AddDate(0, 0, 15)
	rng := rand.New(rand.NewSource(42))

	// 1. Build per-probe accumulators and feed them traceroutes.
	var accs []*lastmile.ProbeAccumulator
	for probe := 1; probe <= 3; probe++ {
		acc, err := lastmile.NewProbeAccumulator(probe, start, end, lastmile.DefaultBinWidth)
		if err != nil {
			log.Fatal(err)
		}
		// Atlas built-ins yield ~24 traceroutes per 30 minutes; 6 are
		// plenty for the median.
		for ts := start; ts.Before(end); ts = ts.Add(5 * time.Minute) {
			if err := acc.Add(trace(probe, ts, rng)); err != nil {
				log.Fatal(err)
			}
		}
		accs = append(accs, acc)
	}

	// 2. Aggregate the population into one queuing-delay signal.
	signal, probes, err := lastmile.PopulationDelay(accs, lastmile.DefaultMinTraceroutes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("aggregated %d probes into %d half-hour bins\n", probes, signal.Len())

	// 3. Classify.
	verdict, err := lastmile.Classify(signal, lastmile.DefaultClassifierOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("classification:     %v\n", verdict.Class)
	fmt.Printf("daily amplitude:    %.2f ms (thresholds: Low >0.5, Mild >1, Severe >3)\n", verdict.DailyAmplitude)
	fmt.Printf("prominent component: %.4f cycles/hour (daily = %.4f) daily=%v\n",
		verdict.Peak.Freq, lastmile.DailyFreq, verdict.IsDaily)

	if verdict.Class == lastmile.None {
		fmt.Println("no persistent last-mile congestion detected")
		os.Exit(0)
	}
	fmt.Println("persistent last-mile congestion detected")
}

// trace fabricates one traceroute: a private home gateway hop and a
// public ISP edge hop whose extra delay spikes every evening.
func trace(probeID int, ts time.Time, rng *rand.Rand) *lastmile.Result {
	gateway := netip.MustParseAddr("192.168.1.1")
	edge := netip.MustParseAddr("203.0.113.1")

	// Base last-mile RTT ~2 ms; 19:00–01:00 adds up to 5 ms of queueing.
	queue := 0.0
	if h := ts.Hour(); h >= 19 || h < 1 {
		queue = max(5*math.Sin(math.Pi*float64((h+5)%24-23+24)/6), 0) // smooth bump
	}
	r := &lastmile.Result{
		ProbeID:   probeID,
		MsmID:     5004,
		Timestamp: ts,
		AF:        4,
		SrcAddr:   netip.MustParseAddr("192.168.1.10"),
		FromAddr:  netip.MustParseAddr("203.0.113.77"),
		DstAddr:   netip.MustParseAddr("198.41.0.4"),
		Proto:     "ICMP",
	}
	h1 := lastmile.HopResult{Hop: 1}
	h2 := lastmile.HopResult{Hop: 2}
	for i := 0; i < 3; i++ {
		lan := 0.4 + rng.Float64()*0.1
		h1.Replies = append(h1.Replies, lastmile.Reply{From: gateway, RTT: lan, TTL: 64})
		h2.Replies = append(h2.Replies, lastmile.Reply{
			From: edge, RTT: lan + 2 + queue + rng.Float64()*0.3, TTL: 254,
		})
	}
	r.Hops = []lastmile.HopResult{h1, h2}
	return r
}
