// Package lastmile detects persistent last-mile congestion from
// traceroute measurements, reproducing the methodology of "Persistent
// Last-mile Congestion: Not so Uncommon" (Fontugne, Shah, Cho — ACM IMC
// 2020).
//
// The pipeline has four stages, each usable on its own:
//
//  1. Parse traceroutes — Atlas-format JSON via ParseAtlasResult /
//     NewResultScanner, or construct Result values directly.
//  2. Estimate last-mile RTT samples per traceroute (EstimateLastMile):
//     the pairwise differences between the last private hop and the first
//     public hop.
//  3. Accumulate per-probe median RTT in 30-minute bins and aggregate a
//     probe population into a queuing-delay signal (NewProbeAccumulator,
//     PopulationDelay).
//  4. Classify the signal (Classify): a Welch periodogram normalised to
//     peak-to-peak amplitude locates the prominent frequency; signals
//     whose prominent component is the daily cycle are classified
//     Severe / Mild / Low by amplitude.
//
// CDN-side validation (§4 of the paper) is available through the
// throughput estimator (NewThroughputEstimator): median per-IP throughput
// of large cache-hit transfers in 15-minute bins, with mobile prefixes
// excluded, and Spearman correlation against the delay signal.
//
// A full synthetic measurement world — the RIPE Atlas platform, access
// networks with shared aggregation devices, and a CDN log stream — lives
// under internal/scenario and internal/experiments and powers the
// reproduction of every figure in the paper; see cmd/lmexp.
package lastmile

import (
	"bufio"
	"io"
	"net/netip"
	"time"

	"github.com/last-mile-congestion/lastmile/internal/apnic"
	"github.com/last-mile-congestion/lastmile/internal/atlas"
	"github.com/last-mile-congestion/lastmile/internal/bgp"
	"github.com/last-mile-congestion/lastmile/internal/cdn"
	"github.com/last-mile-congestion/lastmile/internal/core"
	"github.com/last-mile-congestion/lastmile/internal/dsp"
	lmioutil "github.com/last-mile-congestion/lastmile/internal/ioutil"
	"github.com/last-mile-congestion/lastmile/internal/ipnet"
	lm "github.com/last-mile-congestion/lastmile/internal/lastmile"
	"github.com/last-mile-congestion/lastmile/internal/stats"
	"github.com/last-mile-congestion/lastmile/internal/stream"
	"github.com/last-mile-congestion/lastmile/internal/telemetry"
	"github.com/last-mile-congestion/lastmile/internal/timeseries"
	"github.com/last-mile-congestion/lastmile/internal/traceroute"
	"github.com/last-mile-congestion/lastmile/internal/wire"
)

// --- Traceroute results (RIPE Atlas format) ---

// Result is one traceroute measurement result.
type Result = traceroute.Result

// HopResult groups the probe replies of one TTL.
type HopResult = traceroute.HopResult

// Reply is a single probe reply.
type Reply = traceroute.Reply

// ParseAtlasResult decodes one RIPE Atlas traceroute result JSON object.
func ParseAtlasResult(data []byte) (*Result, error) { return traceroute.ParseAtlas(data) }

// MarshalAtlasResult encodes a result in the RIPE Atlas JSON format.
func MarshalAtlasResult(r *Result) ([]byte, error) { return traceroute.MarshalAtlas(r) }

// ResultScanner streams traceroute results from an archive in either
// supported encoding — newline-delimited Atlas JSON or the binary wire
// format — detected automatically by NewResultScanner.
type ResultScanner interface {
	// Scan advances to the next result. It returns false at end of
	// input or on the first error; check Err.
	Scan() bool
	// Result returns the result decoded by the last successful Scan.
	// The pointer and everything it references are valid until the next
	// Scan call, which reuses the same storage; callers that retain a
	// result across Scans must Clone it (or CopyFrom into their own
	// Result).
	Result() *Result
	// ASN returns the origin AS attributed to the last scanned result
	// in the archive itself. JSON archives carry no attribution, so the
	// JSON scanner always reports 0.
	ASN() ASN
	// Err returns the first error encountered, or nil at clean end of
	// input.
	Err() error
}

// NewResultScanner wraps r for traceroute input, transparently
// decompressing gzip and detecting the encoding by its leading bytes: a
// wire stream signature selects the binary decoder, anything else is
// read as Atlas JSONL.
func NewResultScanner(r io.Reader) ResultScanner {
	rd, isWire := sniffWire(r)
	if isWire {
		return wire.NewScanner(rd)
	}
	return jsonResultScanner{traceroute.NewScanner(rd)}
}

// jsonResultScanner adapts the JSONL scanner, which has no in-band AS
// attribution, to the ResultScanner interface.
type jsonResultScanner struct{ *traceroute.Scanner }

// ASN always reports 0: JSON archives carry no attribution.
func (jsonResultScanner) ASN() ASN { return 0 }

// sniffWire peeks past an optional gzip layer at the first bytes of r
// and reports whether they carry the wire stream signature. The
// returned reader replays the stream from the start.
func sniffWire(r io.Reader) (io.Reader, bool) {
	rd, err := lmioutil.MaybeGzip(r)
	if err != nil {
		// A broken gzip header surfaces as the chosen scanner's first
		// error.
		return errReader{err}, false
	}
	br := bufio.NewReader(rd)
	head, _ := br.Peek(4)
	return br, wire.IsMagic(head)
}

// errReader surfaces a sniff-time error on the first read.
type errReader struct{ err error }

func (e errReader) Read([]byte) (int, error) { return 0, e.err }

// ResultWriter streams results as newline-delimited Atlas JSON.
type ResultWriter = traceroute.Writer

// NewResultWriter wraps w for JSONL traceroute output.
func NewResultWriter(w io.Writer) *ResultWriter { return traceroute.NewWriter(w) }

// WireWriter streams attributed results or CDN log entries in the
// compact binary wire format — the fast, zero-allocation counterpart of
// the JSON and CSV writers. Archives it produces are read back through
// NewResultScanner / NewLogScanner, which detect the format
// automatically.
type WireWriter = wire.Writer

// NewBinaryResultWriter wraps w for binary traceroute output. Each
// result is written with its origin AS, so the archive round-trips the
// attribution that JSON archives must reconstruct from a RIB or probe
// metadata.
func NewBinaryResultWriter(w io.Writer) *WireWriter {
	return wire.NewWriter(w, wire.StreamResults)
}

// NewBinaryLogWriter wraps w for binary CDN access-log output.
func NewBinaryLogWriter(w io.Writer) *WireWriter {
	return wire.NewWriter(w, wire.StreamCDNLog)
}

// --- Last-mile estimation (§2.1) ---

// Segment is the last-mile boundary within a traceroute: last private
// hop, first public hop.
type Segment = lm.Segment

// EstimateLastMile extracts a traceroute's last-mile RTT samples: up to 9
// pairwise (public − private) differences. ok is false when the
// traceroute carries no usable last-mile segment.
func EstimateLastMile(r *Result) (samples []float64, seg Segment, ok bool) {
	return lm.Estimate(r)
}

// FindSegment locates the last-mile segment of a traceroute.
func FindSegment(r *Result) (Segment, bool) { return lm.FindSegment(r) }

// ProbeAccumulator turns one probe's traceroutes into its median-RTT and
// queuing-delay series.
type ProbeAccumulator = lm.ProbeAccumulator

// NewProbeAccumulator creates an accumulator for one probe over
// [start, end) with the given bin width (use DefaultBinWidth).
func NewProbeAccumulator(probeID int, start, end time.Time, binWidth time.Duration) (*ProbeAccumulator, error) {
	return lm.NewProbeAccumulator(probeID, start, end, binWidth)
}

// Binning defaults of the paper's pipeline.
const (
	// DefaultBinWidth is the 30-minute aggregation bin of §2.1.
	DefaultBinWidth = lm.DefaultBinWidth
	// DefaultMinTraceroutes is the per-bin sanity threshold of §2.
	DefaultMinTraceroutes = lm.DefaultMinTraceroutes
)

// PopulationDelay aggregates per-probe accumulators into the population
// queuing-delay signal (median across probes per bin), returning the
// signal and the number of contributing probes.
func PopulationDelay(accs []*ProbeAccumulator, minTraceroutes int) (*Series, int, error) {
	return lm.PopulationDelay(accs, minTraceroutes)
}

// --- Time series ---

// Series is a regularly sampled time series; NaN marks gaps.
type Series = timeseries.Series

// NewSeries returns a Series of n gap values starting at start.
func NewSeries(start time.Time, step time.Duration, n int) (*Series, error) {
	return timeseries.NewSeries(start, step, n)
}

// SubtractMin converts an RTT series into a queuing-delay estimate by
// pinning its minimum at zero.
func SubtractMin(s *Series) (*Series, error) { return timeseries.SubtractMin(s) }

// AggregateMedian combines aligned series by per-bin median.
func AggregateMedian(series []*Series) (*Series, error) {
	return timeseries.AggregateMedian(series)
}

// DayHourProfile folds a series onto a Monday-to-Sunday weekly template.
func DayHourProfile(s *Series) ([]float64, error) { return timeseries.DayHourProfile(s) }

// --- Classification (§2.3) ---

// Class is a persistent-congestion severity class.
type Class = core.Class

// The paper's four classes.
const (
	None   = core.None
	Low    = core.Low
	Mild   = core.Mild
	Severe = core.Severe
)

// DailyFreq is the daily cycle frequency in cycles per hour (1/24).
const DailyFreq = core.DailyFreq

// Thresholds holds the classifier's amplitude cut-offs.
type Thresholds = core.Thresholds

// DefaultThresholds returns the paper's 0.5 / 1 / 3 ms cut-offs.
func DefaultThresholds() Thresholds { return core.DefaultThresholds() }

// ClassifierOptions configures Classify.
type ClassifierOptions = core.ClassifierOptions

// DefaultClassifierOptions returns the paper pipeline's configuration.
func DefaultClassifierOptions() ClassifierOptions { return core.DefaultClassifierOptions() }

// Classification is the detector's verdict on one aggregated signal.
type Classification = core.Classification

// Classify runs the §2.3 detector on an aggregated queuing-delay signal.
func Classify(signal *Series, opts ClassifierOptions) (Classification, error) {
	return core.Classify(signal, opts)
}

// --- Spectral analysis ---

// Periodogram is a Welch spectral estimate calibrated so a sinusoid of
// peak-to-peak amplitude X reads X at its frequency bin.
type Periodogram = dsp.Periodogram

// WelchOptions configures the Welch estimate.
type WelchOptions = dsp.WelchOptions

// WelchDefaults returns the paper pipeline's Welch configuration.
func WelchDefaults() WelchOptions { return dsp.WelchDefaults() }

// Welch estimates the spectrum of xs sampled at sampleRate samples per
// unit time.
func Welch(xs []float64, sampleRate float64, opts WelchOptions) (*Periodogram, error) {
	return dsp.Welch(xs, sampleRate, opts)
}

// --- Surveys (§3) ---

// Survey holds per-AS results for one measurement period.
type Survey = core.Survey

// NewSurvey creates an empty survey for a period label.
func NewSurvey(period string) *Survey { return core.NewSurvey(period) }

// ASResult is one AS's outcome in one period.
type ASResult = core.ASResult

// AttributedResult pairs a traceroute result with its origin AS for a
// batch survey.
type AttributedResult = core.AttributedResult

// SurveyOptions configures RunSurvey.
type SurveyOptions = core.SurveyOptions

// SkippedAS records why an AS present in the input could not be
// classified, so no AS silently vanishes from a report.
type SkippedAS = core.SkippedAS

// ErrNoUsableData is the skip reason for an AS none of whose
// traceroutes carried a usable last-mile segment.
var ErrNoUsableData = core.ErrNoUsableData

// RunSurvey runs the batch pipeline over a completed measurement
// period: it replays the attributed traceroutes through the shared
// incremental delay engine and classifies every AS, returning the
// survey plus the skip reason for each unclassifiable AS. Zero
// Start/End derive the period from the observed timestamps.
func RunSurvey(period string, results []AttributedResult, opts SurveyOptions) (*Survey, []SkippedAS, error) {
	return core.RunSurvey(period, results, opts)
}

// RunSurveySharded is RunSurvey's map-reduce form: the dataset is split
// round-robin across split independent engines, fed in parallel, and
// merged before classification. Per-bin medians are exact order
// statistics, so the survey is bit-identical at any split count.
func RunSurveySharded(period string, results []AttributedResult, split int, opts SurveyOptions) (*Survey, []SkippedAS, error) {
	return core.RunSurveySharded(period, results, split, opts)
}

// ASN is an autonomous system number.
type ASN = bgp.ASN

// RIB is a routing table with longest-prefix match, used to resolve
// probe and client addresses to origin ASes.
type RIB = bgp.RIB

// ParseRIB reads "prefix origin" lines into a RIB.
func ParseRIB(r io.Reader) (*RIB, error) { return bgp.ParseRIB(r) }

// Ranking is an APNIC-style eyeball population ranking.
type Ranking = apnic.Ranking

// ParseRanking reads "asn cc users" lines into a Ranking.
func ParseRanking(r io.Reader) (*Ranking, error) { return apnic.ParseRanking(r) }

// --- CDN throughput validation (§4.2) ---

// LogEntry is one CDN access-log record.
type LogEntry = cdn.LogEntry

// CacheStatus is the CDN cache outcome of a request.
type CacheStatus = cdn.CacheStatus

// Cache outcomes.
const (
	CacheHit  = cdn.Hit
	CacheMiss = cdn.Miss
)

// LogScanner streams CDN access-log entries from an archive in either
// supported encoding — CSV or the binary wire format — detected
// automatically by NewLogScanner.
type LogScanner interface {
	// Scan advances to the next entry. It returns false at end of input
	// or on the first error; check Err.
	Scan() bool
	// Entry returns the entry decoded by the last successful Scan.
	Entry() LogEntry
	// Err returns the first error encountered, or nil at clean end of
	// input.
	Err() error
}

// NewLogScanner streams log entries from the CSV produced by
// NewLogWriter or the binary wire format produced by NewBinaryLogWriter,
// detecting the encoding (and gzip compression) automatically.
func NewLogScanner(r io.Reader) LogScanner {
	rd, isWire := sniffWire(r)
	if isWire {
		return wire.NewLogScanner(rd)
	}
	return cdn.NewScanner(rd)
}

// NewLogWriter streams log entries as CSV.
func NewLogWriter(w io.Writer) *cdn.Writer { return cdn.NewWriter(w) }

// ThroughputOptions configures the throughput estimator.
type ThroughputOptions = cdn.ThroughputOptions

// DefaultThroughputOptions returns the paper's §4.2 filters: >3 MB
// cache hits, 15-minute bins.
func DefaultThroughputOptions() ThroughputOptions { return cdn.DefaultThroughputOptions() }

// ThroughputEstimator aggregates log entries into the median per-IP
// throughput series.
type ThroughputEstimator = cdn.Estimator

// NewThroughputEstimator creates an estimator covering [start, end).
func NewThroughputEstimator(start, end time.Time, opts ThroughputOptions) (*ThroughputEstimator, error) {
	return cdn.NewEstimator(start, end, opts)
}

// PrefixSet is a set of prefixes with longest-prefix-match membership,
// used for the mobile-prefix filter.
type PrefixSet = ipnet.PrefixSet

// IsPrivate reports whether an address belongs to the subscriber side of
// the last mile (RFC 1918, CGNAT, link-local, loopback, ULA).
func IsPrivate(addr netip.Addr) bool { return ipnet.IsPrivate(addr) }

// IsPublic reports whether an address is globally routable unicast.
func IsPublic(addr netip.Addr) bool { return ipnet.IsPublic(addr) }

// Spearman returns Spearman's rank correlation of two paired samples,
// dropping pairs with NaN on either side — the §4.3 delay/throughput
// join.
func Spearman(xs, ys []float64) (float64, error) { return stats.Spearman(xs, ys) }

// --- Probe metadata (Atlas probe archive) ---

// ProbeInfo is one Atlas probe's metadata record.
type ProbeInfo = atlas.ProbeInfo

// ProbeRegistry indexes probe metadata for the paper's selections
// (exclude anchors, group by ASN, filter by city).
type ProbeRegistry = atlas.Registry

// ProbeSelect narrows a probe selection.
type ProbeSelect = atlas.SelectOptions

// ParseProbeRegistry reads probe metadata as a JSON array or JSONL, the
// shapes the Atlas probe archive ships in.
func ParseProbeRegistry(r io.Reader) (*ProbeRegistry, error) { return atlas.ParseRegistry(r) }

// --- Robustness and guard rails ---

// BootstrapOptions configures BootstrapAmplitude.
type BootstrapOptions = core.BootstrapOptions

// BootstrapResult summarises the resampled amplitude distribution.
type BootstrapResult = core.BootstrapResult

// BootstrapAmplitude quantifies probe-population variability (§5): it
// resamples per-probe queuing-delay series with replacement and reports
// a confidence interval on the daily amplitude plus class stability.
func BootstrapAmplitude(perProbe []*Series, opts BootstrapOptions) (*BootstrapResult, error) {
	return core.BootstrapAmplitude(perProbe, opts)
}

// GuardOptions tunes PeakHourMask.
type GuardOptions = core.GuardOptions

// DefaultGuardOptions returns the recommended guard configuration.
func DefaultGuardOptions() GuardOptions { return core.DefaultGuardOptions() }

// PeakHourMask implements §6's recommendation for delay studies: one
// boolean per bin, true where latency-based inference should avoid this
// AS's probes.
func PeakHourMask(signal *Series, cls Classification, opts GuardOptions) ([]bool, error) {
	return core.PeakHourMask(signal, cls, opts)
}

// MaskedFraction returns the share of bins a mask excludes.
func MaskedFraction(mask []bool) float64 { return core.MaskedFraction(mask) }

// --- Streaming (online) monitoring ---

// StreamOptions configures a streaming monitor.
type StreamOptions = stream.Options

// StreamMonitor ingests traceroute results continuously and classifies
// ASes over a sliding window with bounded memory.
type StreamMonitor = stream.Monitor

// StreamVerdict is one AS's online classification.
type StreamVerdict = stream.Verdict

// StreamStats reports a monitor's ingestion counters and live window
// gauges (tracked ASes, probes, resident bins and samples, evicted
// bins).
type StreamStats = stream.Stats

// NewStreamMonitor creates a streaming monitor.
func NewStreamMonitor(opts StreamOptions) *StreamMonitor { return stream.NewMonitor(opts) }

// RestoreStreamMonitor rebuilds a monitor from a state snapshot written
// by StreamMonitor.Snapshot, resuming with the window contents,
// watermark, and counters of the snapshotting monitor — the
// checkpoint/resume path of a long-running monitor. Semantic options
// left zero adopt the snapshot's values; non-zero ones must match it.
func RestoreStreamMonitor(r io.Reader, opts StreamOptions) (*StreamMonitor, error) {
	return stream.RestoreMonitor(r, opts)
}

// StreamCheckpointer periodically snapshots one monitor to a state
// file, atomically, gated on the observation watermark crossing a bin
// boundary. Drive it from the goroutine that feeds the monitor.
type StreamCheckpointer = stream.Checkpointer

// NewStreamCheckpointer returns a checkpointer writing m's snapshots to
// path.
func NewStreamCheckpointer(m *StreamMonitor, path string) *StreamCheckpointer {
	return stream.NewCheckpointer(m, path)
}

// --- Telemetry ---

// MetricsRegistry is a named collection of lock-free counters, gauges,
// and latency histograms with deterministic snapshot ordering. Pass one
// via SurveyOptions.Metrics or StreamOptions.Metrics to observe the
// pipeline's hot paths; expose it with its Prometheus-text or JSON
// handlers. Telemetry is observation-only — wiring a registry never
// changes a verdict.
type MetricsRegistry = telemetry.Registry

// NewMetricsRegistry creates an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return telemetry.NewRegistry() }

// DefaultMetrics returns the process-wide registry that package-level
// subsystems (the dsp plan caches, the parallel worker pool) register
// into.
func DefaultMetrics() *MetricsRegistry { return telemetry.Default() }
