package telemetry

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// boundaryDraw is a quick.Generator producing observation sets whose
// values are drawn from a histogram's own bucket boundaries — the regime
// where nearest-rank bucket quantiles are exact against a sorted slice.
type boundaryDraw struct {
	Bounds []float64
	Values []float64
}

func (boundaryDraw) Generate(r *rand.Rand, size int) reflect.Value {
	nb := 1 + r.Intn(16)
	bounds := make([]float64, nb)
	v := float64(1 + r.Intn(3))
	for i := range bounds {
		bounds[i] = v
		v += float64(1 + r.Intn(5))
	}
	nv := 1 + r.Intn(size*8+1)
	values := make([]float64, nv)
	for i := range values {
		values[i] = bounds[r.Intn(nb)]
	}
	return reflect.ValueOf(boundaryDraw{Bounds: bounds, Values: values})
}

// exactQuantile is the reference: nearest-rank over a sorted copy.
func exactQuantile(values []float64, q float64) float64 {
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	rank := int(math.Ceil(q * float64(len(s))))
	if rank < 1 {
		rank = 1
	}
	return s[rank-1]
}

// TestQuantilePropertyMatchesSort pins the tentpole's exactness claim:
// for observations drawn from the boundary set, histogram p50/p95/p99
// equal the sort-based nearest-rank quantiles bit for bit.
func TestQuantilePropertyMatchesSort(t *testing.T) {
	prop := func(d boundaryDraw) bool {
		h := NewHistogram(d.Bounds)
		for _, v := range d.Values {
			h.Observe(v)
		}
		for _, q := range []float64{0.5, 0.95, 0.99} {
			want := exactQuantile(d.Values, q)
			got := h.Quantile(q)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Logf("q=%v: histogram=%v sort=%v (bounds=%v n=%d)", q, got, want, d.Bounds, len(d.Values))
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestMergePropertyEqualsUnion pins that Merge(a, b) is indistinguishable
// from having observed the union of both observation sets: bucket counts,
// total count, sum, and the three headline quantiles all match exactly
// (integer-valued observations keep the float sums exact).
func TestMergePropertyEqualsUnion(t *testing.T) {
	prop := func(a, b boundaryDraw) bool {
		// Merge requires shared boundaries; reuse a's for both draws.
		bounds := a.Bounds
		clampTo := func(vals []float64) []float64 {
			out := make([]float64, len(vals))
			for i, v := range vals {
				// Remap b's values onto a's boundary set deterministically.
				out[i] = bounds[int(v)%len(bounds)]
			}
			return out
		}
		av := a.Values
		bv := clampTo(b.Values)

		ha := NewHistogram(bounds)
		hb := NewHistogram(bounds)
		hu := NewHistogram(bounds)
		for _, v := range av {
			ha.Observe(v)
			hu.Observe(v)
		}
		for _, v := range bv {
			hb.Observe(v)
			hu.Observe(v)
		}
		if err := ha.Merge(hb); err != nil {
			t.Logf("Merge: %v", err)
			return false
		}
		if ha.Count() != hu.Count() {
			return false
		}
		if math.Float64bits(ha.Sum()) != math.Float64bits(hu.Sum()) {
			t.Logf("Sum: merged=%v union=%v", ha.Sum(), hu.Sum())
			return false
		}
		mc, uc := ha.BucketCounts(), hu.BucketCounts()
		for i := range mc {
			if mc[i] != uc[i] {
				t.Logf("bucket %d: merged=%d union=%d", i, mc[i], uc[i])
				return false
			}
		}
		for _, q := range []float64{0.5, 0.95, 0.99} {
			if math.Float64bits(ha.Quantile(q)) != math.Float64bits(hu.Quantile(q)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
