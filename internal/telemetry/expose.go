package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
)

// BucketCount is one cumulative histogram bucket in a snapshot.
type BucketCount struct {
	// UpperBound is the bucket's inclusive upper boundary; the final
	// bucket's boundary is +Inf.
	UpperBound float64
	// Count is the cumulative count of observations <= UpperBound.
	Count int64
}

// Snapshot is the frozen state of one metric. Counters and gauges carry
// Value; histograms carry Count, Sum, and Buckets.
type Snapshot struct {
	Name string
	// Kind is "counter", "gauge", or "histogram".
	Kind    string
	Value   float64
	Count   int64
	Sum     float64
	Buckets []BucketCount
}

// Snapshot freezes every metric, sorted by name, so two snapshots of the
// same state render byte-identically. Gauge functions are evaluated
// during the snapshot; concurrent observers keep running (each metric is
// read atomically, but the snapshot is not a point-in-time cut across
// metrics — quiesce first when exact cross-metric consistency matters).
func (r *Registry) Snapshot() []Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Snapshot, 0, len(r.counters)+len(r.gauges)+len(r.gaugeFuncs)+len(r.histograms))
	for _, name := range r.namesLocked() {
		switch {
		case r.counters[name] != nil:
			out = append(out, Snapshot{Name: name, Kind: "counter", Value: float64(r.counters[name].Value())})
		case r.gauges[name] != nil:
			out = append(out, Snapshot{Name: name, Kind: "gauge", Value: float64(r.gauges[name].Value())})
		case r.gaugeFuncs[name] != nil:
			out = append(out, Snapshot{Name: name, Kind: "gauge", Value: r.gaugeFuncs[name]()})
		case r.histograms[name] != nil:
			h := r.histograms[name]
			counts := h.BucketCounts()
			bounds := h.bounds
			buckets := make([]BucketCount, len(counts))
			var cum int64
			for i, c := range counts {
				cum += c
				ub := math.Inf(1)
				if i < len(bounds) {
					ub = bounds[i]
				}
				buckets[i] = BucketCount{UpperBound: ub, Count: cum}
			}
			out = append(out, Snapshot{Name: name, Kind: "histogram", Count: h.Count(), Sum: h.Sum(), Buckets: buckets})
		}
	}
	return out
}

// splitName separates an embedded label set from a metric name:
// `x_total{shard="3"}` -> ("x_total", `shard="3"`).
func splitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}

// formatValue renders a float the way Prometheus text exposition does:
// shortest round-trip representation, +Inf/-Inf spelled out.
func formatValue(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// series renders one sample line: name{labels} value.
func series(base, labels, value string) string {
	if labels == "" {
		return base + " " + value + "\n"
	}
	return base + "{" + labels + "} " + value + "\n"
}

// joinLabels appends extra to a possibly empty label string.
func joinLabels(labels, extra string) string {
	if labels == "" {
		return extra
	}
	return labels + "," + extra
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4). Series of one metric family (same base name,
// different embedded label sets) are grouped under a single # TYPE line;
// output is deterministic for a given registry state.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snaps := r.Snapshot()
	// Group label variants of one family: sort by (base, full name).
	sort.SliceStable(snaps, func(i, j int) bool {
		bi, _ := splitName(snaps[i].Name)
		bj, _ := splitName(snaps[j].Name)
		if bi != bj {
			return bi < bj
		}
		return snaps[i].Name < snaps[j].Name
	})
	var sb strings.Builder
	lastBase := ""
	for _, s := range snaps {
		base, labels := splitName(s.Name)
		if base != lastBase {
			fmt.Fprintf(&sb, "# TYPE %s %s\n", base, s.Kind)
			lastBase = base
		}
		switch s.Kind {
		case "histogram":
			for _, b := range s.Buckets {
				le := joinLabels(labels, `le="`+formatValue(b.UpperBound)+`"`)
				sb.WriteString(series(base+"_bucket", le, strconv.FormatInt(b.Count, 10)))
			}
			sb.WriteString(series(base+"_sum", labels, formatValue(s.Sum)))
			sb.WriteString(series(base+"_count", labels, strconv.FormatInt(s.Count, 10)))
		default:
			sb.WriteString(series(base, labels, formatValue(s.Value)))
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// jsonMetric is the stable JSON exposition shape of one metric.
type jsonMetric struct {
	Name    string       `json:"name"`
	Kind    string       `json:"kind"`
	Value   *float64     `json:"value,omitempty"`
	Count   *int64       `json:"count,omitempty"`
	Sum     *float64     `json:"sum,omitempty"`
	Buckets []jsonBucket `json:"buckets,omitempty"`
}

// jsonBucket renders a cumulative bucket; le is a string so +Inf
// survives JSON.
type jsonBucket struct {
	LE    string `json:"le"`
	Count int64  `json:"count"`
}

// WriteJSON renders the registry as a deterministic JSON document:
// {"metrics": [...]} sorted by metric name.
func (r *Registry) WriteJSON(w io.Writer) error {
	snaps := r.Snapshot()
	metrics := make([]jsonMetric, 0, len(snaps))
	for _, s := range snaps {
		m := jsonMetric{Name: s.Name, Kind: s.Kind}
		switch s.Kind {
		case "histogram":
			count, sum := s.Count, s.Sum
			m.Count, m.Sum = &count, &sum
			for _, b := range s.Buckets {
				m.Buckets = append(m.Buckets, jsonBucket{LE: formatValue(b.UpperBound), Count: b.Count})
			}
		default:
			v := s.Value
			m.Value = &v
		}
		metrics = append(metrics, m)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Metrics []jsonMetric `json:"metrics"`
	}{metrics})
}

// Handler serves the registry in Prometheus text format — mount it at
// /metrics on an ops endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// JSONHandler serves the registry as JSON — mount it at /metrics.json.
func (r *Registry) JSONHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := r.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// OpsMux returns the standard ops endpoint of a long-running command:
// /metrics (Prometheus text), /metrics.json, and the /debug/pprof
// profile handlers, all backed by this registry. lmmonitor and lmserved
// mount it as-is; lmserved layers its /api routes on top.
func (r *Registry) OpsMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.Handle("/metrics.json", r.JSONHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
