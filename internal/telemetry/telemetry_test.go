package telemetry

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotonic
	c.Add(0)  // ignored
	if got := c.Value(); got != 5 {
		t.Fatalf("Counter = %d, want 5", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	g.Inc()
	g.Dec()
	g.Dec()
	if got := g.Value(); got != 6 {
		t.Fatalf("Gauge = %d, want 6", got)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total")
	b := r.Counter("x_total")
	if a != b {
		t.Fatal("Counter did not return the same instance for the same name")
	}
	h1 := r.Histogram("lat_seconds", []float64{1, 2})
	h2 := r.Histogram("lat_seconds", []float64{1, 2})
	if h1 != h2 {
		t.Fatal("Histogram did not return the same instance for the same name")
	}
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	fn()
}

func TestRegistryPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total")
	mustPanic(t, "kind mismatch", func() { r.Gauge("x_total") })
	mustPanic(t, "kind mismatch histogram", func() { r.Histogram("x_total", []float64{1}) })
	mustPanic(t, "bad name", func() { r.Counter("9bad") })
	mustPanic(t, "bad name braces", func() { r.Counter(`x{a="1"}{b="2"}`) })
	r.Histogram("h", []float64{1, 2})
	mustPanic(t, "bounds mismatch", func() { r.Histogram("h", []float64{1, 3}) })
	r.Gauge("g")
	mustPanic(t, "GaugeFunc over plain gauge", func() { r.GaugeFunc("g", func() float64 { return 0 }) })
	mustPanic(t, "nil GaugeFunc", func() { r.GaugeFunc("gf", nil) })
}

func TestGaugeFuncLastWins(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("level", func() float64 { return 1 })
	r.GaugeFunc("level", func() float64 { return 2 })
	snaps := r.Snapshot()
	if len(snaps) != 1 || snaps[0].Value != 2 {
		t.Fatalf("snapshot = %+v, want single gauge with value 2", snaps)
	}
}

func TestLabeledNames(t *testing.T) {
	r := NewRegistry()
	r.Counter(`ingest_total{shard="0"}`).Add(3)
	r.Counter(`ingest_total{shard="1"}`).Add(7)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := "# TYPE ingest_total counter\n" +
		"ingest_total{shard=\"0\"} 3\n" +
		"ingest_total{shard=\"1\"} 7\n"
	if sb.String() != want {
		t.Fatalf("WritePrometheus = %q, want %q", sb.String(), want)
	}
}

func TestHistogramObserve(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 9, math.NaN()} {
		h.Observe(v)
	}
	if got := h.Count(); got != 7 {
		t.Fatalf("Count = %d, want 7 (NaN dropped)", got)
	}
	want := []int64{2, 2, 2, 1}
	got := h.BucketCounts()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("BucketCounts = %v, want %v", got, want)
		}
	}
	if s := h.Sum(); math.Float64bits(s) != math.Float64bits(21.0) {
		t.Fatalf("Sum = %v, want 21", s)
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	if q := h.Quantile(0.5); !math.IsNaN(q) {
		t.Fatalf("empty Quantile = %v, want NaN", q)
	}
	h.Observe(1)
	h.Observe(10) // overflow
	if q := h.Quantile(0.5); math.Float64bits(q) != math.Float64bits(1.0) {
		t.Fatalf("p50 = %v, want 1", q)
	}
	if q := h.Quantile(1); !math.IsInf(q, 1) {
		t.Fatalf("p100 = %v, want +Inf (overflow bucket)", q)
	}
	if q := h.Quantile(math.NaN()); !math.IsNaN(q) {
		t.Fatalf("Quantile(NaN) = %v, want NaN", q)
	}
	// Out-of-range q clamps rather than panics.
	if q := h.Quantile(-3); math.IsNaN(q) {
		t.Fatal("Quantile(-3) returned NaN, want clamped value")
	}
}

func TestHistogramMergeMismatch(t *testing.T) {
	a := NewHistogram([]float64{1, 2})
	b := NewHistogram([]float64{1, 3})
	if err := a.Merge(b); err != ErrBoundsMismatch {
		t.Fatalf("Merge error = %v, want ErrBoundsMismatch", err)
	}
}

func TestNewHistogramPanics(t *testing.T) {
	mustPanic(t, "empty bounds", func() { NewHistogram(nil) })
	mustPanic(t, "non-increasing", func() { NewHistogram([]float64{2, 1}) })
	mustPanic(t, "NaN bound", func() { NewHistogram([]float64{1, math.NaN()}) })
	mustPanic(t, "Inf bound", func() { NewHistogram([]float64{1, math.Inf(1)}) })
}

func TestBucketHelpers(t *testing.T) {
	lin := LinearBuckets(1, 2, 3)
	for i, want := range []float64{1, 3, 5} {
		if math.Float64bits(lin[i]) != math.Float64bits(want) {
			t.Fatalf("LinearBuckets = %v", lin)
		}
	}
	exp := ExponentialBuckets(1, 10, 3)
	for i, want := range []float64{1, 10, 100} {
		if math.Float64bits(exp[i]) != math.Float64bits(want) {
			t.Fatalf("ExponentialBuckets = %v", exp)
		}
	}
	mustPanic(t, "LinearBuckets n=0", func() { LinearBuckets(0, 1, 0) })
	mustPanic(t, "ExponentialBuckets factor<=1", func() { ExponentialBuckets(1, 1, 3) })
	// DefLatencyBuckets must be a valid boundary set.
	NewHistogram(DefLatencyBuckets)
}

func TestWritePrometheusHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", []float64{1, 2})
	h.Observe(1)
	h.Observe(1)
	h.Observe(5)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := "# TYPE lat_seconds histogram\n" +
		"lat_seconds_bucket{le=\"1\"} 2\n" +
		"lat_seconds_bucket{le=\"2\"} 2\n" +
		"lat_seconds_bucket{le=\"+Inf\"} 3\n" +
		"lat_seconds_sum 7\n" +
		"lat_seconds_count 3\n"
	if sb.String() != want {
		t.Fatalf("WritePrometheus = %q, want %q", sb.String(), want)
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total").Add(2)
	h := r.Histogram("h_seconds", []float64{1})
	h.Observe(0.5)
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Metrics []struct {
			Name    string   `json:"name"`
			Kind    string   `json:"kind"`
			Value   *float64 `json:"value"`
			Count   *int64   `json:"count"`
			Buckets []struct {
				LE    string `json:"le"`
				Count int64  `json:"count"`
			} `json:"buckets"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("WriteJSON produced invalid JSON: %v\n%s", err, sb.String())
	}
	if len(doc.Metrics) != 2 {
		t.Fatalf("metrics = %d, want 2", len(doc.Metrics))
	}
	if doc.Metrics[0].Name != "c_total" || doc.Metrics[0].Value == nil || *doc.Metrics[0].Value != 2 {
		t.Fatalf("counter metric = %+v", doc.Metrics[0])
	}
	hm := doc.Metrics[1]
	if hm.Kind != "histogram" || hm.Count == nil || *hm.Count != 1 {
		t.Fatalf("histogram metric = %+v", hm)
	}
	if len(hm.Buckets) != 2 || hm.Buckets[1].LE != "+Inf" {
		t.Fatalf("histogram buckets = %+v, want final le=+Inf", hm.Buckets)
	}
}

func TestHandlers(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Handler Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "c_total 1") {
		t.Fatalf("Handler body = %q", rec.Body.String())
	}
	rec = httptest.NewRecorder()
	r.JSONHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics.json", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("JSONHandler Content-Type = %q", ct)
	}
	if !json.Valid(rec.Body.Bytes()) {
		t.Fatalf("JSONHandler body not valid JSON: %q", rec.Body.String())
	}
}

func TestTimerObservesSeconds(t *testing.T) {
	h := NewHistogram([]float64{3600}) // one hour: any real elapsed time lands here
	d := h.Start().Stop()
	if d < 0 {
		t.Fatalf("Timer returned negative duration %v", d)
	}
	if h.Count() != 1 {
		t.Fatalf("Timer did not observe: count = %d", h.Count())
	}
	if got := h.BucketCounts()[0]; got != 1 {
		t.Fatalf("elapsed time not in first bucket: %v", h.BucketCounts())
	}
}

func TestSplitName(t *testing.T) {
	cases := []struct{ in, base, labels string }{
		{"x_total", "x_total", ""},
		{`x_total{shard="3"}`, "x_total", `shard="3"`},
		{`x{a="1",b="2"}`, "x", `a="1",b="2"`},
	}
	for _, c := range cases {
		base, labels := splitName(c.in)
		if base != c.base || labels != c.labels {
			t.Fatalf("splitName(%q) = (%q, %q), want (%q, %q)", c.in, base, labels, c.base, c.labels)
		}
	}
}
