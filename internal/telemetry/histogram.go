package telemetry

import (
	"errors"
	"math"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-boundary distribution: observation i lands in the
// first bucket whose upper boundary is >= the value, with an implicit
// +Inf overflow bucket past the last boundary. All methods are lock-free
// and safe for concurrent use; share by pointer.
//
// Quantiles are exact in the nearest-rank sense over the boundary set:
// Quantile(q) returns the upper boundary of the bucket holding the
// ceil(q*N)-th smallest observation, so when observations themselves are
// boundary values the result equals the sort-based nearest-rank quantile
// exactly (the property tests pin this).
//
// NaN observations are dropped: a NaN latency is a measurement bug, and
// letting it poison Sum would corrupt every derived mean. Sum is exact
// for integer-valued observations (each atomic add is exact), which is
// what the byte-identical snapshot determinism tests rely on; for
// general floats the final bits of Sum depend on observation order, as
// with any float accumulation.
type Histogram struct {
	// bounds are the strictly increasing bucket upper boundaries.
	bounds []float64
	// counts has len(bounds)+1 entries; the last is the overflow bucket.
	counts []atomic.Int64
	count  atomic.Int64
	// sumBits holds math.Float64bits of the running sum, updated by CAS.
	sumBits atomic.Uint64
}

// NewHistogram creates a histogram with the given strictly increasing,
// finite bucket upper boundaries. It panics on an empty, non-monotonic,
// or non-finite boundary set — boundaries are fixed at construction
// time, so a bad set is a programming error.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("telemetry: histogram needs at least one bucket boundary")
	}
	own := make([]float64, len(bounds))
	copy(own, bounds)
	for i, b := range own {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic("telemetry: histogram boundaries must be finite")
		}
		if i > 0 && own[i-1] >= b {
			panic("telemetry: histogram boundaries must be strictly increasing")
		}
	}
	return &Histogram{bounds: own, counts: make([]atomic.Int64, len(own)+1)}
}

// Observe records one value. NaN values are dropped.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	// First boundary >= v; everything past the last boundary overflows.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of recorded observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Bounds returns a copy of the bucket upper boundaries.
func (h *Histogram) Bounds() []float64 {
	out := make([]float64, len(h.bounds))
	copy(out, h.bounds)
	return out
}

// BucketCounts returns the per-bucket (non-cumulative) counts; the last
// entry is the overflow bucket.
func (h *Histogram) BucketCounts() []int64 {
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Quantile returns the nearest-rank q-quantile (q in [0, 1]) resolved to
// a bucket upper boundary: the boundary of the bucket containing the
// ceil(q*N)-th smallest observation. It returns NaN on an empty
// histogram or NaN q, and +Inf when the rank lands in the overflow
// bucket. q outside [0, 1] is clamped.
func (h *Histogram) Quantile(q float64) float64 {
	n := h.count.Load()
	if n == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}

// ErrBoundsMismatch is returned by Merge when the two histograms have
// different bucket boundaries.
var ErrBoundsMismatch = errors.New("telemetry: histogram boundaries differ")

// sameBounds compares boundary sets bitwise (no float ==, so the check
// is total even though valid boundaries are never NaN).
func sameBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// Merge folds o's observations into h. Both histograms must share the
// same boundaries. Merging is equivalent to having observed the union of
// both observation sets: bucket counts and quantiles match exactly, and
// Sum matches exactly whenever the individual sums are exact (integer
// observations). o is read atomically per field but not frozen, so
// merge quiesced histograms for exact results.
func (h *Histogram) Merge(o *Histogram) error {
	if !sameBounds(h.bounds, o.bounds) {
		return ErrBoundsMismatch
	}
	for i := range h.counts {
		h.counts[i].Add(o.counts[i].Load())
	}
	h.count.Add(o.count.Load())
	h.addSum(o.Sum())
	return nil
}

// addSum folds v into the running sum by CAS.
func (h *Histogram) addSum(v float64) {
	if math.IsNaN(v) {
		return
	}
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Timer measures one duration into a histogram, in seconds. Obtain one
// from Histogram.Start; the zero value is not usable.
type Timer struct {
	h     *Histogram
	start time.Time
}

// Start begins timing one operation against h.
func (h *Histogram) Start() Timer { return Timer{h: h, start: time.Now()} }

// Stop records the elapsed time since Start into the histogram, in
// seconds, and returns it.
func (t Timer) Stop() time.Duration {
	d := time.Since(t.start)
	t.h.Observe(d.Seconds())
	return d
}

// DefLatencyBuckets are the default latency boundaries, in seconds: a
// 1-2.5-5 ladder from 1µs to 10s, matching the spread between a shard-map
// hit (~µs) and a full-window classification sweep (~s).
var DefLatencyBuckets = []float64{
	1e-6, 2.5e-6, 5e-6,
	1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5,
	1, 2.5, 5, 10,
}

// LinearBuckets returns n boundaries start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	if n <= 0 || width <= 0 {
		panic("telemetry: LinearBuckets needs n > 0 and width > 0")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExponentialBuckets returns n boundaries start, start*factor, ...
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if n <= 0 || start <= 0 || factor <= 1 {
		panic("telemetry: ExponentialBuckets needs n > 0, start > 0, factor > 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}
