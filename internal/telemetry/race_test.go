package telemetry

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
)

// TestRegistryRaceStress hammers one registry from 8 goroutines —
// registration, counter increments, histogram observations, and full
// snapshots all running concurrently — so `go test -race` can prove the
// registry is data-race free under the access mix the instrumented
// pipeline produces.
func TestRegistryRaceStress(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const iters = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("stress_total")
			g := r.Gauge("stress_level")
			h := r.Histogram("stress_seconds", []float64{1, 2, 4, 8})
			own := r.Counter(fmt.Sprintf(`stress_total{worker="%d"}`, w))
			for i := 0; i < iters; i++ {
				c.Inc()
				own.Inc()
				g.Set(int64(i))
				h.Observe(float64(i % 10))
				if i%251 == 0 {
					// Snapshot + render mid-flight, discarded: the point is
					// the concurrent read path, not the bytes.
					if err := r.WritePrometheus(io.Discard); err != nil {
						t.Error(err)
						return
					}
					if err := r.WriteJSON(io.Discard); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("stress_total").Value(); got != workers*iters {
		t.Fatalf("stress_total = %d, want %d (lost updates)", got, workers*iters)
	}
	if got := r.Histogram("stress_seconds", []float64{1, 2, 4, 8}).Count(); got != workers*iters {
		t.Fatalf("histogram count = %d, want %d", got, workers*iters)
	}
}

// runPartitioned replays a fixed integer workload into a fresh registry
// split across n workers, then renders it. The workload is partitioned
// deterministically (item i -> worker i%n) but executes concurrently.
func runPartitioned(t *testing.T, n int) string {
	t.Helper()
	r := NewRegistry()
	// Pre-register so no goroutine races a first-use registration.
	r.Counter("work_total")
	r.Histogram("work_seconds", []float64{1, 2, 4, 8, 16})
	const items = 4096
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("work_total")
			h := r.Histogram("work_seconds", []float64{1, 2, 4, 8, 16})
			for i := w; i < items; i += n {
				c.Inc()
				h.Observe(float64(i % 20)) // integer values: sums stay exact
			}
		}(w)
	}
	wg.Wait()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// TestSnapshotDeterminismAcrossWorkers pins the byte-identical snapshot
// guarantee: the same integer workload fed through 1 worker and through 8
// concurrent workers renders the exact same Prometheus text.
func TestSnapshotDeterminismAcrossWorkers(t *testing.T) {
	one := runPartitioned(t, 1)
	eight := runPartitioned(t, 8)
	if one != eight {
		t.Fatalf("snapshot differs between workers=1 and workers=8:\n--- 1:\n%s\n--- 8:\n%s", one, eight)
	}
	if !strings.Contains(one, "work_total 4096") {
		t.Fatalf("unexpected snapshot:\n%s", one)
	}
}
