// Package telemetry is the pipeline's stdlib-only metrics subsystem: the
// continuous self-measurement layer a long-running last-mile monitor
// needs to be trusted (ingest latency, eviction churn, stage timings,
// shard imbalance), kept cheap enough to run on every hot path.
//
// Three metric kinds cover the pipeline's needs:
//
//   - Counter: a monotonically increasing count (lock-free, atomic).
//   - Gauge: an instantaneous level that moves both ways (atomic), plus
//     GaugeFunc for levels computed at snapshot time.
//   - Histogram: a fixed-boundary latency/size distribution with exact
//     nearest-rank quantiles over its boundaries (see histogram.go).
//
// Metrics live in a Registry: a named, process-wide (or per-component)
// collection with deterministic snapshot ordering, exposed as Prometheus
// text and JSON by expose.go. Registration is get-or-create by name, so
// components that share a registry share the metric; registration is
// expected once per component at construction time, never on a hot path
// (the lmvet metricsafe checker enforces this).
//
// The contract that makes telemetry safe to wire through the
// deterministic pipeline is that it is observation-only: nothing read
// from a metric may feed back into a classification result. The dettaint
// analyzer encodes this by treating the package as a taint sanitizer —
// the wall-clock reads inside Timer never taint results — and the
// equivalence tests in internal/core and internal/stream pin that
// instrumented runs produce bit-identical verdicts.
package telemetry

import (
	"fmt"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing count. All methods are lock-free
// and safe for concurrent use. Counters must be shared by pointer: the
// zero value works, but a copy would fork the count (metricsafe flags
// by-value transport).
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n, which must be non-negative for the counter to stay
// monotonic; negative deltas are ignored.
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous level that can move both ways. All methods
// are lock-free and safe for concurrent use; share by pointer.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the level.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the level by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds 1.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// nameRE is the accepted metric name shape: a Prometheus-style base name
// optionally followed by one brace-delimited label set, which snapshot
// rendering splits back apart (e.g. `engine_shard_ingest_total{shard="3"}`).
var nameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]+\})?$`)

// Registry is a named collection of metrics with get-or-create
// registration and deterministic (name-sorted) snapshots. It is safe for
// concurrent use. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	gaugeFuncs map[string]func() float64
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		gaugeFuncs: make(map[string]func() float64),
	}
}

// defaultRegistry is the process-wide registry package-level subsystems
// (dsp plan caches, the parallel worker pool) register into.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry. Binaries expose or dump it;
// components with per-instance state (the delay engine) should take a
// registry option instead so tests stay isolated.
func Default() *Registry { return defaultRegistry }

// checkName panics on a malformed metric name. Registration runs at
// component construction time, so a bad name is a programming error, not
// a runtime condition to handle.
func checkName(name string) {
	if !nameRE.MatchString(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
}

// checkFree panics when name is already registered under a different
// kind than want ("counter", "gauge", "histogram").
func (r *Registry) checkFree(name, want string) {
	kinds := map[string]bool{
		"counter":   r.counters[name] != nil,
		"gauge":     r.gauges[name] != nil || r.gaugeFuncs[name] != nil,
		"histogram": r.histograms[name] != nil,
	}
	for kind, present := range kinds {
		if present && kind != want {
			panic(fmt.Sprintf("telemetry: metric %q already registered as a %s", name, kind))
		}
	}
}

// Counter returns the counter registered under name, creating it on
// first use. It panics if name is malformed or already registered as a
// different kind.
func (r *Registry) Counter(name string) *Counter {
	checkName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkFree(name, "counter")
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use. It panics if name is malformed or already registered as a
// different kind.
func (r *Registry) Gauge(name string) *Gauge {
	checkName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkFree(name, "gauge")
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a gauge whose level is computed by fn at snapshot
// time — the fit for levels derived from component state (resident bins,
// window probes) rather than maintained incrementally. Re-registering a
// name replaces the function (last wins), so a rebuilt component simply
// takes over its series. fn must not call back into the registry.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	checkName(name)
	if fn == nil {
		panic(fmt.Sprintf("telemetry: nil GaugeFunc for %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkFree(name, "gauge")
	if r.gauges[name] != nil {
		panic(fmt.Sprintf("telemetry: metric %q already registered as a plain gauge", name))
	}
	r.gaugeFuncs[name] = fn
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket boundaries on first use. It panics if name is
// malformed, registered as a different kind, or registered as a
// histogram with different boundaries.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	checkName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkFree(name, "histogram")
	h := r.histograms[name]
	if h == nil {
		h = NewHistogram(bounds)
		r.histograms[name] = h
		return h
	}
	if !sameBounds(h.bounds, bounds) {
		panic(fmt.Sprintf("telemetry: histogram %q re-registered with different boundaries", name))
	}
	return h
}

// names returns every registered metric name, sorted, while holding no
// lock — callers hold r.mu.
func (r *Registry) namesLocked() []string {
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.gaugeFuncs)+len(r.histograms))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.gaugeFuncs {
		names = append(names, n)
	}
	for n := range r.histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
