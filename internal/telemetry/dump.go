package telemetry

import "os"

// DumpFile writes the registry's Prometheus text snapshot to path, with
// "-" meaning stdout — the end-of-run dump behind the CLIs' -metrics
// flag. The file is truncated first, so repeated runs leave exactly one
// snapshot.
func (r *Registry) DumpFile(path string) error {
	if path == "-" {
		return r.WritePrometheus(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := r.WritePrometheus(f)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}
