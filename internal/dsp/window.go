package dsp

import (
	"math"
	"sync"
)

// Window is a taper applied to each Welch segment before transforming.
type Window int

// Supported window functions.
const (
	// Boxcar applies no taper. Highest leakage, narrowest main lobe.
	Boxcar Window = iota
	// Hann is the raised-cosine window, the default for Welch analysis
	// and the window used by scipy.signal.welch (which the paper's
	// published tooling relies on).
	Hann
	// Hamming is the optimised raised-cosine window with non-zero
	// endpoints.
	Hamming
	// Blackman is a three-term cosine window with very low sidelobes.
	Blackman
)

// String returns the lowercase conventional name of the window.
func (w Window) String() string {
	switch w {
	case Boxcar:
		return "boxcar"
	case Hann:
		return "hann"
	case Hamming:
		return "hamming"
	case Blackman:
		return "blackman"
	default:
		return "unknown"
	}
}

// Coefficients returns the n window coefficients for w using the periodic
// (DFT-even) convention, which is the correct convention for spectral
// averaging.
func (w Window) Coefficients(n int) []float64 {
	c := make([]float64, n)
	if n == 0 {
		return c
	}
	if n == 1 {
		c[0] = 1
		return c
	}
	fn := float64(n)
	for i := range c {
		t := 2 * math.Pi * float64(i) / fn
		switch w {
		case Boxcar:
			c[i] = 1
		case Hann:
			c[i] = 0.5 - 0.5*math.Cos(t)
		case Hamming:
			c[i] = 0.54 - 0.46*math.Cos(t)
		case Blackman:
			c[i] = 0.42 - 0.5*math.Cos(t) + 0.08*math.Cos(2*t)
		default:
			c[i] = 1
		}
	}
	return c
}

type windowKey struct {
	w Window
	n int
}

var coeffCache sync.Map // windowKey -> []float64

// cachedCoefficients returns a shared, read-only coefficient slice for
// (w, n). Welch applies the same taper to every segment of every signal
// it sees, so the coefficients are computed once per (window, length)
// and shared across goroutines. The public Coefficients keeps returning
// a fresh slice because callers are allowed to mutate it.
func (w Window) cachedCoefficients(n int) []float64 {
	key := windowKey{w, n}
	if v, ok := coeffCache.Load(key); ok {
		windowHits.Inc()
		return v.([]float64)
	}
	windowMisses.Inc()
	v, _ := coeffCache.LoadOrStore(key, w.Coefficients(n))
	return v.([]float64)
}

// CoherentGain returns the mean of the window coefficients. A sinusoid at
// an exact bin frequency appears in the windowed DFT with magnitude
// amplitude * n * CG / 2, so CG is what converts raw magnitudes into
// amplitudes.
func CoherentGain(coeffs []float64) float64 {
	if len(coeffs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range coeffs {
		sum += v
	}
	return sum / float64(len(coeffs))
}
