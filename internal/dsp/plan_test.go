package dsp

import (
	"math"
	"testing"
)

// TestRealFFTMatchesFFTReal pins the planner contract: the pooled,
// cache-backed RealFFT must be bit-identical to the one-shot FFTReal for
// both the radix-2 and the Bluestein path. Welch sits on top of this
// identity, so any drift here silently shifts every periodogram.
func TestRealFFTMatchesFFTReal(t *testing.T) {
	for _, n := range []int{1, 2, 8, 64, 96, 100, 192, 337} {
		x := make([]float64, n)
		for i := range x {
			x[i] = math.Sin(0.7*float64(i)) + 0.25*math.Cos(2.9*float64(i))
		}
		want, err := FFTReal(x)
		if err != nil {
			t.Fatalf("n=%d: FFTReal: %v", n, err)
		}
		p := NewRealFFT(n)
		if p.Len() != n {
			t.Fatalf("n=%d: Len() = %d", n, p.Len())
		}
		// Transform twice: the second run reuses the plan's scratch and
		// must not be polluted by the first.
		for round := 0; round < 2; round++ {
			got, err := p.Transform(x)
			if err != nil {
				t.Fatalf("n=%d round %d: Transform: %v", n, round, err)
			}
			if len(got) != len(want) {
				t.Fatalf("n=%d: length %d vs %d", n, len(got), len(want))
			}
			for i := range got {
				if math.Float64bits(real(got[i])) != math.Float64bits(real(want[i])) ||
					math.Float64bits(imag(got[i])) != math.Float64bits(imag(want[i])) {
					t.Fatalf("n=%d round %d bin %d: %v vs %v", n, round, i, got[i], want[i])
				}
			}
		}
	}
}

func TestRealFFTRejectsWrongLength(t *testing.T) {
	p := NewRealFFT(8)
	if _, err := p.Transform(make([]float64, 7)); err == nil {
		t.Fatal("want length-mismatch error")
	}
}

// TestRealFFTPoolReuse covers the sync.Pool entry points: a recycled
// plan of the right length is reused, a wrong-length one is dropped.
func TestRealFFTPoolReuse(t *testing.T) {
	p := getRealFFT(96)
	putRealFFT(p)
	q := getRealFFT(96)
	if q.Len() != 96 {
		t.Fatalf("pooled plan has Len %d", q.Len())
	}
	putRealFFT(q)
	r := getRealFFT(64)
	if r.Len() != 64 {
		t.Fatalf("plan length not honoured: %d", r.Len())
	}
	putRealFFT(r)
}
