package dsp

import "github.com/last-mile-congestion/lastmile/internal/telemetry"

// The dsp caches are package-global (sync.Map / sync.Pool shared across
// every Welch run in the process), so their hit-rate counters register
// into the process-wide default registry at init time. A falling hit
// rate on a deployment means the workload stopped reusing segment
// lengths — the one regression that silently erases the plan-cache wins.
var (
	planPoolHits    = telemetry.Default().Counter("dsp_plan_pool_hits_total")
	planPoolMisses  = telemetry.Default().Counter("dsp_plan_pool_misses_total")
	windowHits      = telemetry.Default().Counter("dsp_window_cache_hits_total")
	windowMisses    = telemetry.Default().Counter("dsp_window_cache_misses_total")
	twiddleHits     = telemetry.Default().Counter("dsp_twiddle_cache_hits_total")
	twiddleMisses   = telemetry.Default().Counter("dsp_twiddle_cache_misses_total")
	bluesteinHits   = telemetry.Default().Counter("dsp_bluestein_cache_hits_total")
	bluesteinMisses = telemetry.Default().Counter("dsp_bluestein_cache_misses_total")
)
