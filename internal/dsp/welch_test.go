package dsp

import (
	"math"
	"math/rand"
	"testing"
)

// makeSine returns n samples of a sinusoid with the given peak-to-peak
// amplitude and frequency (cycles per unit time) sampled at rate samples
// per unit time, offset by dc.
func makeSine(n int, p2p, freq, rate, dc float64) []float64 {
	xs := make([]float64, n)
	amp := p2p / 2
	for i := range xs {
		t := float64(i) / rate
		xs[i] = dc + amp*math.Sin(2*math.Pi*freq*t)
	}
	return xs
}

func TestWelchPeakToPeakCalibration(t *testing.T) {
	// The paper's Fig. 2 y-axis reads directly as average peak-to-peak
	// amplitude. A pure daily sine of p2p 1.0 ms in 30-minute bins
	// (rate = 2 samples/hour) must read ~1.0 at 1/24 cycles/hour.
	const rate = 2.0
	daily := 1.0 / 24.0
	xs := makeSine(720, 1.0, daily, rate, 5.0)
	pg, err := Welch(xs, rate, WelchDefaults())
	if err != nil {
		t.Fatal(err)
	}
	peak, ok := pg.ProminentPeak()
	if !ok {
		t.Fatal("no peak found")
	}
	if math.Abs(peak.Freq-daily) > 1e-9 {
		t.Fatalf("peak frequency = %v, want %v", peak.Freq, daily)
	}
	if math.Abs(peak.P2P-1.0) > 0.02 {
		t.Fatalf("peak p2p = %v, want ~1.0", peak.P2P)
	}
}

func TestWelchCalibrationAcrossWindows(t *testing.T) {
	const rate = 2.0
	daily := 1.0 / 24.0
	xs := makeSine(960, 3.0, daily, rate, 0)
	for _, w := range []Window{Boxcar, Hann, Hamming, Blackman} {
		opts := WelchDefaults()
		opts.Window = w
		pg, err := Welch(xs, rate, opts)
		if err != nil {
			t.Fatal(err)
		}
		peak, ok := pg.ProminentPeak()
		if !ok {
			t.Fatalf("%v: no peak", w)
		}
		if math.Abs(peak.P2P-3.0) > 0.1 {
			t.Fatalf("window %v: p2p = %v, want ~3.0", w, peak.P2P)
		}
	}
}

func TestWelchDCIsRemoved(t *testing.T) {
	const rate = 2.0
	xs := makeSine(720, 0.5, 1.0/24.0, rate, 100.0)
	pg, err := Welch(xs, rate, WelchDefaults())
	if err != nil {
		t.Fatal(err)
	}
	if pg.P2P[0] > 0.01 {
		t.Fatalf("DC bin = %v after detrending, want ~0", pg.P2P[0])
	}
}

func TestWelchNoisyFlatSpectrumHasNoDominantDaily(t *testing.T) {
	// ISP_DE-style signal: white noise only. The daily bin should not
	// stand far above the rest of the spectrum.
	rng := rand.New(rand.NewSource(9))
	xs := make([]float64, 720)
	for i := range xs {
		xs[i] = math.Abs(rng.NormFloat64() * 0.1)
	}
	pg, err := Welch(xs, 2.0, WelchDefaults())
	if err != nil {
		t.Fatal(err)
	}
	dailyAmp, _, ok := pg.AmplitudeAt(1.0 / 24.0)
	if !ok {
		t.Fatal("no daily bin")
	}
	if dailyAmp > 0.5 {
		t.Fatalf("noise signal shows daily amplitude %v", dailyAmp)
	}
}

func TestWelchDetectsDailyInNoise(t *testing.T) {
	// A 2 ms p2p daily pattern buried in 0.3 ms noise must be recovered
	// with roughly the right amplitude.
	rng := rand.New(rand.NewSource(10))
	const rate = 2.0
	xs := makeSine(720, 2.0, 1.0/24.0, rate, 1.0)
	for i := range xs {
		xs[i] += rng.NormFloat64() * 0.3
	}
	pg, err := Welch(xs, rate, WelchDefaults())
	if err != nil {
		t.Fatal(err)
	}
	peak, ok := pg.ProminentPeak()
	if !ok {
		t.Fatal("no peak")
	}
	if math.Abs(peak.Freq-1.0/24.0) > pg.BinWidth()/2 {
		t.Fatalf("peak at %v, want daily", peak.Freq)
	}
	if peak.P2P < 1.5 || peak.P2P > 2.5 {
		t.Fatalf("recovered p2p = %v, want ~2.0", peak.P2P)
	}
}

func TestWelchShortSignalSingleSegment(t *testing.T) {
	xs := makeSine(100, 1.0, 0.1, 2.0, 0)
	pg, err := Welch(xs, 2.0, WelchDefaults())
	if err != nil {
		t.Fatal(err)
	}
	if pg.Segments != 1 {
		t.Fatalf("segments = %d, want 1", pg.Segments)
	}
	if pg.SegmentLength != 100 {
		t.Fatalf("segment length = %d, want 100", pg.SegmentLength)
	}
}

func TestWelchSegmentCount(t *testing.T) {
	// 720 samples, 192 segment, 96 step -> segments at 0,96,...,528 = 6.
	xs := make([]float64, 720)
	pg, err := Welch(xs, 2.0, WelchDefaults())
	if err != nil {
		t.Fatal(err)
	}
	if pg.Segments != 6 {
		t.Fatalf("segments = %d, want 6", pg.Segments)
	}
}

func TestWelchRejectsNaN(t *testing.T) {
	xs := []float64{1, math.NaN(), 3, 4}
	if _, err := Welch(xs, 2.0, WelchDefaults()); err == nil {
		t.Fatal("want error for NaN input")
	}
}

func TestWelchRejectsBadArgs(t *testing.T) {
	if _, err := Welch([]float64{1}, 2.0, WelchDefaults()); err == nil {
		t.Fatal("want error for 1 sample")
	}
	if _, err := Welch([]float64{1, 2}, 0, WelchDefaults()); err == nil {
		t.Fatal("want error for zero sample rate")
	}
	opts := WelchDefaults()
	opts.OverlapFrac = 1.0
	if _, err := Welch([]float64{1, 2, 3}, 2.0, opts); err == nil {
		t.Fatal("want error for overlap >= 1")
	}
	opts = WelchDefaults()
	opts.SegmentLength = 1
	if _, err := Welch([]float64{1, 2, 3}, 2.0, opts); err == nil {
		t.Fatal("want error for segment length 1")
	}
}

func TestWelchFrequencyAxis(t *testing.T) {
	xs := make([]float64, 192)
	pg, err := Welch(xs, 2.0, WelchDefaults())
	if err != nil {
		t.Fatal(err)
	}
	// Bin 4 of a 192-sample segment at 2 samples/hour is 1/24 c/h.
	if math.Abs(pg.Freqs[4]-1.0/24.0) > 1e-12 {
		t.Fatalf("bin 4 = %v, want 1/24", pg.Freqs[4])
	}
	// Nyquist is the last bin.
	if math.Abs(pg.Freqs[len(pg.Freqs)-1]-1.0) > 1e-12 {
		t.Fatalf("nyquist = %v, want 1.0", pg.Freqs[len(pg.Freqs)-1])
	}
}

func TestAmplitudeAtOutOfRange(t *testing.T) {
	xs := make([]float64, 192)
	pg, err := Welch(xs, 2.0, WelchDefaults())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := pg.AmplitudeAt(-0.1); ok {
		t.Fatal("negative frequency should not resolve")
	}
	if _, _, ok := pg.AmplitudeAt(5.0); ok {
		t.Fatal("beyond-Nyquist frequency should not resolve")
	}
	if _, bin, ok := pg.AmplitudeAt(1.0 / 24.0); !ok || bin != 4 {
		t.Fatalf("daily bin = %d ok=%v, want 4", bin, ok)
	}
}

func TestWelchLinearDetrendSuppressesDrift(t *testing.T) {
	// A strong linear drift must not swamp the daily component when
	// linear detrending is on.
	const rate = 2.0
	xs := makeSine(720, 1.0, 1.0/24.0, rate, 0)
	for i := range xs {
		xs[i] += 0.02 * float64(i)
	}
	opts := WelchDefaults()
	opts.LinearDetrend = true
	pg, err := Welch(xs, rate, opts)
	if err != nil {
		t.Fatal(err)
	}
	peak, ok := pg.ProminentPeak()
	if !ok {
		t.Fatal("no peak")
	}
	if math.Abs(peak.Freq-1.0/24.0) > pg.BinWidth()/2 {
		t.Fatalf("peak at %v c/h, drift leaked past detrending", peak.Freq)
	}
}

func TestWindowCoefficients(t *testing.T) {
	for _, w := range []Window{Boxcar, Hann, Hamming, Blackman} {
		c := w.Coefficients(64)
		if len(c) != 64 {
			t.Fatalf("%v: len = %d", w, len(c))
		}
		for i, v := range c {
			if v < -1e-12 || v > 1+1e-12 {
				t.Fatalf("%v: coefficient %d = %v out of [0,1]", w, i, v)
			}
		}
	}
	if c := Hann.Coefficients(1); c[0] != 1 {
		t.Fatalf("Hann(1) = %v", c)
	}
	if c := Hann.Coefficients(0); len(c) != 0 {
		t.Fatalf("Hann(0) = %v", c)
	}
}

func TestWindowPeriodicHann(t *testing.T) {
	// Periodic Hann: w[0] = 0 and w[n/2] = 1.
	c := Hann.Coefficients(64)
	if math.Abs(c[0]) > 1e-12 {
		t.Fatalf("w[0] = %v", c[0])
	}
	if math.Abs(c[32]-1) > 1e-12 {
		t.Fatalf("w[n/2] = %v", c[32])
	}
}

func TestCoherentGain(t *testing.T) {
	if g := CoherentGain(Boxcar.Coefficients(128)); math.Abs(g-1) > 1e-12 {
		t.Fatalf("boxcar CG = %v", g)
	}
	if g := CoherentGain(Hann.Coefficients(128)); math.Abs(g-0.5) > 1e-9 {
		t.Fatalf("hann CG = %v, want 0.5", g)
	}
	if g := CoherentGain(nil); g != 0 {
		t.Fatalf("empty CG = %v", g)
	}
}

func TestWindowString(t *testing.T) {
	names := map[Window]string{Boxcar: "boxcar", Hann: "hann", Hamming: "hamming", Blackman: "blackman", Window(99): "unknown"}
	for w, want := range names {
		if w.String() != want {
			t.Fatalf("%d.String() = %q", w, w.String())
		}
	}
}

func BenchmarkWelch720(b *testing.B) {
	xs := makeSine(720, 1.0, 1.0/24.0, 2.0, 1.0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Welch(xs, 2.0, WelchDefaults()); err != nil {
			b.Fatal(err)
		}
	}
}
