package dsp

import (
	"errors"
	"fmt"
	"math"
)

// WelchOptions configures the Welch periodogram estimate.
type WelchOptions struct {
	// SegmentLength is the number of samples per segment. 0 selects the
	// default of 192 samples — 4 days of 30-minute bins, which places the
	// daily component exactly on bin 4. Signals shorter than the segment
	// length are analysed as a single full-length segment.
	SegmentLength int
	// OverlapFrac is the fraction of each segment shared with the next,
	// in [0, 1). Negative values select the default of 0.5.
	OverlapFrac float64
	// Window is the segment taper. The zero value (Boxcar) is valid but
	// the pipeline uses Hann; WelchDefaults returns Hann.
	Window Window
	// LinearDetrend removes a least-squares line from each segment
	// instead of just the mean, suppressing leakage from slow drifts.
	LinearDetrend bool
}

// WelchDefaults returns the options used by the paper pipeline: 192-sample
// Hann-windowed segments with 50% overlap and constant detrending.
func WelchDefaults() WelchOptions {
	return WelchOptions{SegmentLength: 192, OverlapFrac: 0.5, Window: Hann}
}

// Periodogram is a one-sided Welch spectral estimate whose values are
// calibrated so that a pure sinusoid of peak-to-peak amplitude X reads X at
// its frequency bin. Frequencies are in cycles per unit of the caller's
// sample rate (the pipeline uses cycles per hour).
type Periodogram struct {
	// Freqs holds the bin centre frequencies, Freqs[0] == 0 (DC).
	Freqs []float64
	// P2P holds the average peak-to-peak amplitude per bin, same length
	// as Freqs.
	P2P []float64
	// SampleRate is the rate the signal was sampled at, in samples per
	// unit time.
	SampleRate float64
	// Segments is the number of averaged segments.
	Segments int
	// SegmentLength is the per-segment sample count actually used.
	SegmentLength int
}

// Welch estimates the spectrum of xs sampled at sampleRate samples per unit
// time. xs must be free of NaN (see Interpolate) and contain at least two
// samples.
func Welch(xs []float64, sampleRate float64, opts WelchOptions) (*Periodogram, error) {
	n := len(xs)
	if n < 2 {
		return nil, errors.New("dsp: welch needs at least 2 samples")
	}
	if sampleRate <= 0 || math.IsNaN(sampleRate) {
		return nil, errors.New("dsp: sample rate must be positive")
	}
	for i, v := range xs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("dsp: non-finite sample at index %d (interpolate gaps first)", i)
		}
	}
	segLen := opts.SegmentLength
	if segLen == 0 {
		segLen = 192
	}
	if segLen < 2 {
		return nil, errors.New("dsp: segment length must be >= 2")
	}
	if segLen > n {
		segLen = n
	}
	overlap := opts.OverlapFrac
	if overlap < 0 {
		overlap = 0.5
	}
	if overlap >= 1 {
		return nil, errors.New("dsp: overlap fraction must be < 1")
	}
	step := int(float64(segLen) * (1 - overlap))
	if step < 1 {
		step = 1
	}

	coeffs := opts.Window.cachedCoefficients(segLen)
	sumW := 0.0
	for _, w := range coeffs {
		sumW += w
	}
	if sumW == 0 {
		return nil, errors.New("dsp: window has zero coherent gain")
	}

	nBins := segLen/2 + 1
	avgPower := make([]float64, nBins)
	seg := make([]float64, segLen)
	fft := getRealFFT(segLen)
	defer putRealFFT(fft)
	segments := 0
	for start := 0; start+segLen <= n; start += step {
		copy(seg, xs[start:start+segLen])
		if opts.LinearDetrend {
			DetrendLinear(seg)
		} else {
			DetrendMean(seg)
		}
		for i := range seg {
			seg[i] *= coeffs[i]
		}
		spec, err := fft.Transform(seg)
		if err != nil {
			return nil, err
		}
		for k := 0; k < nBins; k++ {
			re := real(spec[k])
			im := imag(spec[k])
			avgPower[k] += re*re + im*im
		}
		segments++
	}
	if segments == 0 {
		return nil, errors.New("dsp: no complete segment")
	}

	freqs := make([]float64, nBins)
	p2p := make([]float64, nBins)
	for k := 0; k < nBins; k++ {
		freqs[k] = float64(k) * sampleRate / float64(segLen)
		mag := math.Sqrt(avgPower[k] / float64(segments))
		// A sinusoid of amplitude A at bin k has windowed one-sided
		// magnitude A*sumW/2, so amplitude = 2*mag/sumW and
		// peak-to-peak = 4*mag/sumW. DC and (for even segLen) Nyquist
		// are not split across two bins, so they use half the factor.
		factor := 4.0
		if k == 0 || (segLen%2 == 0 && k == nBins-1) {
			factor = 2.0
		}
		p2p[k] = factor * mag / sumW
	}
	return &Periodogram{
		Freqs:         freqs,
		P2P:           p2p,
		SampleRate:    sampleRate,
		Segments:      segments,
		SegmentLength: segLen,
	}, nil
}

// Peak describes the prominent spectral component of a periodogram.
type Peak struct {
	// Freq is the bin centre frequency of the peak.
	Freq float64
	// P2P is the average peak-to-peak amplitude at the peak.
	P2P float64
	// Bin is the bin index within the periodogram.
	Bin int
}

// ProminentPeak returns the non-DC bin with the largest peak-to-peak
// amplitude. It returns false when the periodogram has no non-DC bin.
func (p *Periodogram) ProminentPeak() (Peak, bool) {
	best := -1
	for k := 1; k < len(p.P2P); k++ {
		if best < 0 || p.P2P[k] > p.P2P[best] {
			best = k
		}
	}
	if best < 0 {
		return Peak{}, false
	}
	return Peak{Freq: p.Freqs[best], P2P: p.P2P[best], Bin: best}, true
}

// AmplitudeAt returns the peak-to-peak amplitude of the bin whose centre
// frequency is nearest to freq, along with that bin's index. It returns
// false when the periodogram is empty or freq is outside the spectrum.
func (p *Periodogram) AmplitudeAt(freq float64) (float64, int, bool) {
	if len(p.Freqs) == 0 || freq < 0 || freq > p.Freqs[len(p.Freqs)-1] {
		return 0, 0, false
	}
	binWidth := p.SampleRate / float64(p.SegmentLength)
	k := int(math.Round(freq / binWidth))
	if k >= len(p.P2P) {
		k = len(p.P2P) - 1
	}
	return p.P2P[k], k, true
}

// BinWidth returns the frequency spacing between adjacent bins.
func (p *Periodogram) BinWidth() float64 {
	return p.SampleRate / float64(p.SegmentLength)
}
