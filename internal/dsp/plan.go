package dsp

import (
	"fmt"
	"sync"
)

// RealFFT is a reusable transform plan for real-valued inputs of one
// fixed length. The plan owns every buffer the transform needs, so a
// Transform call allocates nothing: Welch runs one plan across all its
// segments instead of paying a fresh complex buffer (plus, for non
// power-of-two lengths, a fresh chirp and two convolution buffers) per
// segment. The spectrum it computes is bit-identical to FFTReal's.
//
// A plan is not safe for concurrent use; give each goroutine its own
// (the package keeps a pool for exactly that — see getRealFFT).
type RealFFT struct {
	n       int
	cx      []complex128 // staging + output buffer
	scratch []complex128 // chirp-z convolution buffer; nil for powers of two
	plan    *bluesteinPlan
}

// NewRealFFT returns a plan for inputs of length n.
func NewRealFFT(n int) *RealFFT {
	p := &RealFFT{n: n}
	if n <= 0 {
		return p
	}
	p.cx = make([]complex128, n)
	if n&(n-1) != 0 {
		p.plan = bluesteinPlanFor(n, false)
		p.scratch = make([]complex128, p.plan.m)
	}
	return p
}

// Transform computes the full complex spectrum of x, which must have the
// plan's length. The returned slice is internal storage: it is valid
// until the next Transform on the same plan and must not be modified.
//
//lmvet:hotpath
func (p *RealFFT) Transform(x []float64) ([]complex128, error) {
	if p.n <= 0 {
		return nil, ErrEmpty
	}
	if len(x) != p.n {
		return nil, fmt.Errorf("dsp: plan is for length %d, got %d", p.n, len(x)) //lmvet:ignore allocguard length-mismatch error path, never taken by a well-formed caller
	}
	for i, v := range x {
		p.cx[i] = complex(v, 0)
	}
	if p.plan == nil {
		fftRadix2(p.cx, false)
	} else {
		p.plan.execute(p.cx, p.cx, p.scratch)
	}
	return p.cx, nil
}

// Len returns the input length the plan was built for.
func (p *RealFFT) Len() int { return p.n }

var realFFTPool sync.Pool

// getRealFFT returns a plan for length n, reusing a pooled one when its
// length matches. In the pipeline nearly every call uses the default
// Welch segment length, so the hit rate is high; a mismatched pooled
// plan is simply dropped.
func getRealFFT(n int) *RealFFT {
	if v := realFFTPool.Get(); v != nil {
		if p := v.(*RealFFT); p.n == n {
			planPoolHits.Inc()
			return p
		}
	}
	planPoolMisses.Inc()
	return NewRealFFT(n)
}

func putRealFFT(p *RealFFT) { realFFTPool.Put(p) }
