// Package dsp implements the signal processing used to detect persistent
// last-mile congestion: a fast Fourier transform, window functions, and the
// Welch method periodogram whose y-axis is normalised so that the value at
// a frequency bin reads directly as the average peak-to-peak amplitude (in
// milliseconds) of the corresponding sinusoidal component — exactly the
// normalisation used in Figure 2 of the paper.
package dsp

import (
	"errors"
	"math"
	"math/bits"
	"math/cmplx"
	"sync"
)

// ErrEmpty is returned when a transform is requested on an empty input.
var ErrEmpty = errors.New("dsp: empty input")

// FFT returns the discrete Fourier transform of x. The input may have any
// length: power-of-two sizes use an iterative radix-2 Cooley-Tukey
// transform, other sizes use Bluestein's chirp-z algorithm. The input slice
// is not modified.
func FFT(x []complex128) ([]complex128, error) {
	n := len(x)
	if n == 0 {
		return nil, ErrEmpty
	}
	out := make([]complex128, n)
	copy(out, x)
	if n&(n-1) == 0 {
		fftRadix2(out, false)
		return out, nil
	}
	return bluestein(out, false)
}

// IFFT returns the inverse discrete Fourier transform of x, normalised by
// 1/N so that IFFT(FFT(x)) == x.
func IFFT(x []complex128) ([]complex128, error) {
	n := len(x)
	if n == 0 {
		return nil, ErrEmpty
	}
	out := make([]complex128, n)
	copy(out, x)
	if n&(n-1) == 0 {
		fftRadix2(out, true)
	} else {
		var err error
		out, err = bluestein(out, true)
		if err != nil {
			return nil, err
		}
	}
	inv := complex(1/float64(n), 0)
	for i := range out {
		out[i] *= inv
	}
	return out, nil
}

// FFTReal transforms a real-valued signal and returns the full complex
// spectrum of the same length.
func FFTReal(x []float64) ([]complex128, error) {
	if len(x) == 0 {
		return nil, ErrEmpty
	}
	cx := make([]complex128, len(x))
	for i, v := range x {
		cx[i] = complex(v, 0)
	}
	return FFT(cx)
}

// twiddleTables holds the butterfly factors for a radix-2 transform of
// one size, flattened stage by stage (1 + 2 + ... + n/2 = n-1 entries).
// fwd holds the exp(-iθ) factors; inv holds their conjugates, which are
// bit-identical to the exp(+iθ) factors the inverse transform computed
// before caching (cos is even and sin is odd, bit-exactly, in math.Cos
// and math.Sin). Tables are computed once per size and shared read-only
// across goroutines.
type twiddleTables struct {
	fwd, inv []complex128
}

var twiddleCache sync.Map // transform size -> *twiddleTables

func twiddlesFor(n int) *twiddleTables {
	if v, ok := twiddleCache.Load(n); ok { //lmvet:ignore allocguard sync.Map boxes the int key; one word per lookup is the price of the shared read-mostly cache
		twiddleHits.Inc()
		return v.(*twiddleTables)
	}
	twiddleMisses.Inc()
	t := &twiddleTables{ //lmvet:ignore allocguard cache miss: tables are computed once per transform size, then shared
		fwd: make([]complex128, 0, n-1), //lmvet:ignore allocguard once per transform size
		inv: make([]complex128, 0, n-1), //lmvet:ignore allocguard once per transform size
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		// Kept as sign * 2π/size (not -2π/size) so every intermediate
		// matches the pre-cache per-butterfly expression bit for bit.
		step := -1.0 * 2 * math.Pi / float64(size)
		for k := 0; k < half; k++ {
			w := cmplx.Rect(1, step*float64(k))
			t.fwd = append(t.fwd, w) //lmvet:ignore allocguard fills the exact capacity reserved above; field provenance is beyond the intraprocedural lattice
			t.inv = append(t.inv, cmplx.Conj(w)) //lmvet:ignore allocguard fills the exact capacity reserved above
		}
	}
	v, _ := twiddleCache.LoadOrStore(n, t) //lmvet:ignore allocguard boxes the int key once per transform size
	return v.(*twiddleTables)
}

// fftRadix2 computes an in-place iterative radix-2 FFT. len(x) must be a
// power of two. If inverse is true the conjugate transform is computed
// (without the 1/N normalisation).
func fftRadix2(x []complex128, inverse bool) {
	n := len(x)
	if n <= 1 {
		return
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	tables := twiddlesFor(n)
	tw := tables.fwd
	if inverse {
		tw = tables.inv
	}
	pos := 0
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		stage := tw[pos : pos+half]
		pos += half
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * stage[k]
				x[start+k] = a + b
				x[start+k+half] = a - b
			}
		}
	}
}

// bluesteinPlan caches everything about a chirp-z transform that depends
// only on (length, direction): the chirp sequence and the forward FFT of
// the convolution kernel b. Plans are shared read-only across goroutines.
type bluesteinPlan struct {
	// m is the power-of-two convolution length (next power of two at or
	// above 2n-1).
	m     int
	chirp []complex128
	bFFT  []complex128
}

type bluesteinKey struct {
	n       int
	inverse bool
}

var bluesteinCache sync.Map // bluesteinKey -> *bluesteinPlan

func bluesteinPlanFor(n int, inverse bool) *bluesteinPlan {
	key := bluesteinKey{n, inverse}
	if v, ok := bluesteinCache.Load(key); ok {
		bluesteinHits.Inc()
		return v.(*bluesteinPlan)
	}
	bluesteinMisses.Inc()
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// Chirp: c[k] = exp(sign * i*pi*k^2/n). Use k^2 mod 2n to keep the
	// angle argument small and the trigonometry accurate for large k.
	chirp := make([]complex128, n)
	for k := 0; k < n; k++ {
		kk := (int64(k) * int64(k)) % int64(2*n)
		angle := sign * math.Pi * float64(kk) / float64(n)
		chirp[k] = cmplx.Rect(1, angle)
	}
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		conj := cmplx.Conj(chirp[k])
		b[k] = conj
		if k != 0 {
			b[m-k] = conj
		}
	}
	fftRadix2(b, false)
	p := &bluesteinPlan{m: m, chirp: chirp, bFFT: b}
	v, _ := bluesteinCache.LoadOrStore(key, p)
	return v.(*bluesteinPlan)
}

// execute evaluates the chirp-z convolution, writing the transform of x
// (length n) into out. out may alias x. scratch must have length p.m;
// it is fully overwritten, so callers can reuse it across calls.
func (p *bluesteinPlan) execute(out, x, scratch []complex128) {
	n := len(x)
	a := scratch
	for k := 0; k < n; k++ {
		a[k] = x[k] * p.chirp[k]
	}
	for k := n; k < p.m; k++ {
		a[k] = 0
	}
	fftRadix2(a, false)
	for i := range a {
		a[i] *= p.bFFT[i]
	}
	fftRadix2(a, true)
	invM := complex(1/float64(p.m), 0)
	for k := 0; k < n; k++ {
		out[k] = a[k] * invM * p.chirp[k]
	}
}

// bluestein computes the DFT of x for arbitrary length via the chirp-z
// transform, expressing the DFT as a convolution evaluated with a
// power-of-two FFT.
func bluestein(x []complex128, inverse bool) ([]complex128, error) {
	n := len(x)
	plan := bluesteinPlanFor(n, inverse)
	out := make([]complex128, n)
	plan.execute(out, x, make([]complex128, plan.m))
	return out, nil
}

// Interpolate returns a copy of xs in which interior runs of NaN are
// replaced by linear interpolation between the nearest finite neighbours,
// and leading/trailing NaN runs are filled with the nearest finite value.
// It returns an error if xs contains no finite value. Delay signals contain
// gap bins (disconnected probes); the Welch transform requires a gap-free
// signal, so pipelines interpolate first.
func Interpolate(xs []float64) ([]float64, error) {
	out := make([]float64, len(xs))
	copy(out, xs)
	first, last := -1, -1
	for i, v := range out {
		if !math.IsNaN(v) {
			if first < 0 {
				first = i
			}
			last = i
		}
	}
	if first < 0 {
		return nil, errors.New("dsp: signal is all NaN")
	}
	for i := 0; i < first; i++ {
		out[i] = out[first]
	}
	for i := last + 1; i < len(out); i++ {
		out[i] = out[last]
	}
	i := first
	for i <= last {
		if !math.IsNaN(out[i]) {
			i++
			continue
		}
		// Gap run [i, j); out[i-1] and out[j] are finite.
		j := i
		for math.IsNaN(out[j]) {
			j++
		}
		lo, hi := out[i-1], out[j]
		span := float64(j - (i - 1))
		for k := i; k < j; k++ {
			frac := float64(k-(i-1)) / span
			out[k] = lo + (hi-lo)*frac
		}
		i = j + 1
	}
	return out, nil
}

// DetrendMean subtracts the mean from xs in place.
func DetrendMean(xs []float64) {
	if len(xs) == 0 {
		return
	}
	sum := 0.0
	for _, v := range xs {
		sum += v
	}
	mean := sum / float64(len(xs))
	for i := range xs {
		xs[i] -= mean
	}
}

// DetrendLinear removes the least-squares straight-line fit from xs in
// place. Linear detrending suppresses spectral leakage from slow drifts
// into the low-frequency bins where the daily component lives.
func DetrendLinear(xs []float64) {
	n := len(xs)
	if n < 2 {
		DetrendMean(xs)
		return
	}
	// Least squares fit y = a + b*t with t = 0..n-1.
	var sumT, sumY, sumTY, sumTT float64
	for i, v := range xs {
		t := float64(i)
		sumT += t
		sumY += v
		sumTY += t * v
		sumTT += t * t
	}
	fn := float64(n)
	denom := fn*sumTT - sumT*sumT
	if denom == 0 {
		DetrendMean(xs)
		return
	}
	b := (fn*sumTY - sumT*sumY) / denom
	a := (sumY - b*sumT) / fn
	for i := range xs {
		xs[i] -= a + b*float64(i)
	}
}
