// Package dsp implements the signal processing used to detect persistent
// last-mile congestion: a fast Fourier transform, window functions, and the
// Welch method periodogram whose y-axis is normalised so that the value at
// a frequency bin reads directly as the average peak-to-peak amplitude (in
// milliseconds) of the corresponding sinusoidal component — exactly the
// normalisation used in Figure 2 of the paper.
package dsp

import (
	"errors"
	"math"
	"math/bits"
	"math/cmplx"
)

// ErrEmpty is returned when a transform is requested on an empty input.
var ErrEmpty = errors.New("dsp: empty input")

// FFT returns the discrete Fourier transform of x. The input may have any
// length: power-of-two sizes use an iterative radix-2 Cooley-Tukey
// transform, other sizes use Bluestein's chirp-z algorithm. The input slice
// is not modified.
func FFT(x []complex128) ([]complex128, error) {
	n := len(x)
	if n == 0 {
		return nil, ErrEmpty
	}
	out := make([]complex128, n)
	copy(out, x)
	if n&(n-1) == 0 {
		fftRadix2(out, false)
		return out, nil
	}
	return bluestein(out, false)
}

// IFFT returns the inverse discrete Fourier transform of x, normalised by
// 1/N so that IFFT(FFT(x)) == x.
func IFFT(x []complex128) ([]complex128, error) {
	n := len(x)
	if n == 0 {
		return nil, ErrEmpty
	}
	out := make([]complex128, n)
	copy(out, x)
	if n&(n-1) == 0 {
		fftRadix2(out, true)
	} else {
		var err error
		out, err = bluestein(out, true)
		if err != nil {
			return nil, err
		}
	}
	inv := complex(1/float64(n), 0)
	for i := range out {
		out[i] *= inv
	}
	return out, nil
}

// FFTReal transforms a real-valued signal and returns the full complex
// spectrum of the same length.
func FFTReal(x []float64) ([]complex128, error) {
	if len(x) == 0 {
		return nil, ErrEmpty
	}
	cx := make([]complex128, len(x))
	for i, v := range x {
		cx[i] = complex(v, 0)
	}
	return FFT(cx)
}

// fftRadix2 computes an in-place iterative radix-2 FFT. len(x) must be a
// power of two. If inverse is true the conjugate transform is computed
// (without the 1/N normalisation).
func fftRadix2(x []complex128, inverse bool) {
	n := len(x)
	if n <= 1 {
		return
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := sign * 2 * math.Pi / float64(size)
		// w = exp(i*step) computed once per stage; twiddles advance by
		// repeated multiplication, re-derived per block for accuracy.
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				angle := step * float64(k)
				w := cmplx.Rect(1, angle)
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
			}
		}
	}
}

// bluestein computes the DFT of x for arbitrary length via the chirp-z
// transform, expressing the DFT as a convolution evaluated with a
// power-of-two FFT.
func bluestein(x []complex128, inverse bool) ([]complex128, error) {
	n := len(x)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// Chirp: c[k] = exp(sign * i*pi*k^2/n). Use k^2 mod 2n to keep the
	// angle argument small and the trigonometry accurate for large k.
	chirp := make([]complex128, n)
	for k := 0; k < n; k++ {
		kk := (int64(k) * int64(k)) % int64(2*n)
		angle := sign * math.Pi * float64(kk) / float64(n)
		chirp[k] = cmplx.Rect(1, angle)
	}
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	a := make([]complex128, m)
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		a[k] = x[k] * chirp[k]
		conj := cmplx.Conj(chirp[k])
		b[k] = conj
		if k != 0 {
			b[m-k] = conj
		}
	}
	fftRadix2(a, false)
	fftRadix2(b, false)
	for i := range a {
		a[i] *= b[i]
	}
	fftRadix2(a, true)
	invM := complex(1/float64(m), 0)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		out[k] = a[k] * invM * chirp[k]
	}
	return out, nil
}

// Interpolate returns a copy of xs in which interior runs of NaN are
// replaced by linear interpolation between the nearest finite neighbours,
// and leading/trailing NaN runs are filled with the nearest finite value.
// It returns an error if xs contains no finite value. Delay signals contain
// gap bins (disconnected probes); the Welch transform requires a gap-free
// signal, so pipelines interpolate first.
func Interpolate(xs []float64) ([]float64, error) {
	out := make([]float64, len(xs))
	copy(out, xs)
	first, last := -1, -1
	for i, v := range out {
		if !math.IsNaN(v) {
			if first < 0 {
				first = i
			}
			last = i
		}
	}
	if first < 0 {
		return nil, errors.New("dsp: signal is all NaN")
	}
	for i := 0; i < first; i++ {
		out[i] = out[first]
	}
	for i := last + 1; i < len(out); i++ {
		out[i] = out[last]
	}
	i := first
	for i <= last {
		if !math.IsNaN(out[i]) {
			i++
			continue
		}
		// Gap run [i, j); out[i-1] and out[j] are finite.
		j := i
		for math.IsNaN(out[j]) {
			j++
		}
		lo, hi := out[i-1], out[j]
		span := float64(j - (i - 1))
		for k := i; k < j; k++ {
			frac := float64(k-(i-1)) / span
			out[k] = lo + (hi-lo)*frac
		}
		i = j + 1
	}
	return out, nil
}

// DetrendMean subtracts the mean from xs in place.
func DetrendMean(xs []float64) {
	if len(xs) == 0 {
		return
	}
	sum := 0.0
	for _, v := range xs {
		sum += v
	}
	mean := sum / float64(len(xs))
	for i := range xs {
		xs[i] -= mean
	}
}

// DetrendLinear removes the least-squares straight-line fit from xs in
// place. Linear detrending suppresses spectral leakage from slow drifts
// into the low-frequency bins where the daily component lives.
func DetrendLinear(xs []float64) {
	n := len(xs)
	if n < 2 {
		DetrendMean(xs)
		return
	}
	// Least squares fit y = a + b*t with t = 0..n-1.
	var sumT, sumY, sumTY, sumTT float64
	for i, v := range xs {
		t := float64(i)
		sumT += t
		sumY += v
		sumTY += t * v
		sumTT += t * t
	}
	fn := float64(n)
	denom := fn*sumTT - sumT*sumT
	if denom == 0 {
		DetrendMean(xs)
		return
	}
	b := (fn*sumTY - sumT*sumY) / denom
	a := (sumY - b*sumT) / fn
	for i := range xs {
		xs[i] -= a + b*float64(i)
	}
}
