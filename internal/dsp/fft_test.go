package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// dftNaive is an O(n^2) reference DFT.
func dftNaive(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for t := 0; t < n; t++ {
			angle := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			sum += x[t] * cmplx.Rect(1, angle)
		}
		out[k] = sum
	}
	return out
}

func complexClose(a, b []complex128, eps float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if cmplx.Abs(a[i]-b[i]) > eps {
			return false
		}
	}
	return true
}

func randComplex(rng *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func TestFFTEmpty(t *testing.T) {
	if _, err := FFT(nil); err != ErrEmpty {
		t.Fatalf("err = %v, want ErrEmpty", err)
	}
	if _, err := IFFT(nil); err != ErrEmpty {
		t.Fatalf("err = %v, want ErrEmpty", err)
	}
	if _, err := FFTReal(nil); err != ErrEmpty {
		t.Fatalf("err = %v, want ErrEmpty", err)
	}
}

func TestFFTSingle(t *testing.T) {
	out, err := FFT([]complex128{3 + 4i})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 3+4i {
		t.Fatalf("FFT of singleton = %v", out)
	}
}

func TestFFTMatchesNaiveDFTPow2(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{2, 4, 8, 16, 64, 256} {
		x := randComplex(rng, n)
		got, err := FFT(x)
		if err != nil {
			t.Fatal(err)
		}
		want := dftNaive(x)
		if !complexClose(got, want, 1e-8*float64(n)) {
			t.Fatalf("n=%d: FFT does not match naive DFT", n)
		}
	}
}

func TestFFTMatchesNaiveDFTArbitraryN(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{3, 5, 6, 7, 12, 15, 31, 48, 100, 192, 193} {
		x := randComplex(rng, n)
		got, err := FFT(x)
		if err != nil {
			t.Fatal(err)
		}
		want := dftNaive(x)
		if !complexClose(got, want, 1e-7*float64(n)) {
			t.Fatalf("n=%d: Bluestein FFT does not match naive DFT", n)
		}
	}
}

func TestFFTDoesNotMutateInput(t *testing.T) {
	x := []complex128{1, 2, 3, 4, 5} // length 5 exercises Bluestein
	orig := append([]complex128(nil), x...)
	if _, err := FFT(x); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if x[i] != orig[i] {
			t.Fatalf("FFT mutated input at %d", i)
		}
	}
}

func TestIFFTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{1, 2, 3, 8, 17, 64, 100, 192} {
		x := randComplex(rng, n)
		spec, err := FFT(x)
		if err != nil {
			t.Fatal(err)
		}
		back, err := IFFT(spec)
		if err != nil {
			t.Fatal(err)
		}
		if !complexClose(back, x, 1e-8*float64(n)) {
			t.Fatalf("n=%d: IFFT(FFT(x)) != x", n)
		}
	}
}

func TestFFTLinearityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(60)
		x := randComplex(r, n)
		y := randComplex(r, n)
		a := complex(r.NormFloat64(), r.NormFloat64())
		sum := make([]complex128, n)
		for i := range sum {
			sum[i] = a*x[i] + y[i]
		}
		fx, _ := FFT(x)
		fy, _ := FFT(y)
		fsum, _ := FFT(sum)
		for i := range fsum {
			if cmplx.Abs(fsum[i]-(a*fx[i]+fy[i])) > 1e-6*float64(n) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestFFTParsevalProperty(t *testing.T) {
	// Energy in time domain * n equals energy in frequency domain.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(120)
		x := randComplex(rng, n)
		spec, err := FFT(x)
		if err != nil {
			t.Fatal(err)
		}
		var et, ef float64
		for i := range x {
			et += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
			ef += real(spec[i])*real(spec[i]) + imag(spec[i])*imag(spec[i])
		}
		if math.Abs(ef-et*float64(n)) > 1e-6*ef {
			t.Fatalf("n=%d: Parseval violated: time %v freq %v", n, et*float64(n), ef)
		}
	}
}

func TestFFTRealKnownSpectrum(t *testing.T) {
	// x[t] = cos(2*pi*t*k0/n) has spectrum n/2 at bins k0 and n-k0.
	n, k0 := 32, 5
	x := make([]float64, n)
	for t := range x {
		x[t] = math.Cos(2 * math.Pi * float64(t) * float64(k0) / float64(n))
	}
	spec, err := FFTReal(x)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < n; k++ {
		want := 0.0
		if k == k0 || k == n-k0 {
			want = float64(n) / 2
		}
		if math.Abs(cmplx.Abs(spec[k])-want) > 1e-9 {
			t.Fatalf("bin %d: |X| = %v, want %v", k, cmplx.Abs(spec[k]), want)
		}
	}
}

func TestInterpolateInterior(t *testing.T) {
	xs := []float64{1, math.NaN(), math.NaN(), 4}
	out, err := Interpolate(xs)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3, 4}
	for i := range out {
		if math.Abs(out[i]-want[i]) > 1e-12 {
			t.Fatalf("out = %v, want %v", out, want)
		}
	}
}

func TestInterpolateEdges(t *testing.T) {
	xs := []float64{math.NaN(), 2, 4, math.NaN(), math.NaN()}
	out, err := Interpolate(xs)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 2, 4, 4, 4}
	for i := range out {
		if out[i] != want[i] {
			t.Fatalf("out = %v, want %v", out, want)
		}
	}
}

func TestInterpolateAllNaN(t *testing.T) {
	if _, err := Interpolate([]float64{math.NaN(), math.NaN()}); err == nil {
		t.Fatal("want error for all-NaN input")
	}
}

func TestInterpolateNoGaps(t *testing.T) {
	xs := []float64{1, 2, 3}
	out, err := Interpolate(xs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if out[i] != xs[i] {
			t.Fatalf("out = %v", out)
		}
	}
	// Must be a copy.
	out[0] = 99
	if xs[0] != 1 {
		t.Fatal("Interpolate aliased its input")
	}
}

func TestDetrendMean(t *testing.T) {
	xs := []float64{1, 2, 3}
	DetrendMean(xs)
	sum := xs[0] + xs[1] + xs[2]
	if math.Abs(sum) > 1e-12 {
		t.Fatalf("detrended sum = %v", sum)
	}
}

func TestDetrendLinearRemovesRamp(t *testing.T) {
	xs := make([]float64, 50)
	for i := range xs {
		xs[i] = 3 + 0.5*float64(i)
	}
	DetrendLinear(xs)
	for i, v := range xs {
		if math.Abs(v) > 1e-9 {
			t.Fatalf("residual at %d = %v", i, v)
		}
	}
}

func TestDetrendLinearPreservesSine(t *testing.T) {
	// A zero-mean sine on top of a ramp should survive linear detrending
	// nearly intact.
	n := 200
	xs := make([]float64, n)
	pure := make([]float64, n)
	for i := range xs {
		s := math.Sin(2 * math.Pi * float64(i) / 20)
		pure[i] = s
		xs[i] = s + 10 + 0.3*float64(i)
	}
	DetrendLinear(xs)
	for i := range xs {
		if math.Abs(xs[i]-pure[i]) > 0.15 {
			t.Fatalf("detrended[%d] = %v, want ~%v", i, xs[i], pure[i])
		}
	}
}

func TestDetrendEdgeCases(t *testing.T) {
	DetrendMean(nil) // must not panic
	one := []float64{5}
	DetrendLinear(one)
	if one[0] != 0 {
		t.Fatalf("single-sample linear detrend = %v", one)
	}
}

func BenchmarkFFT256(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randComplex(rng, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FFT(x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFFTBluestein192(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	x := randComplex(rng, 192)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FFT(x); err != nil {
			b.Fatal(err)
		}
	}
}
