// Package ioutil provides small I/O helpers shared by the data codecs —
// currently transparent gzip detection, since real Atlas dumps and CDN
// access logs ship compressed.
package ioutil

import (
	"bufio"
	"compress/gzip"
	"io"
)

// gzipMagic is the two-byte gzip header.
var gzipMagic = []byte{0x1f, 0x8b}

// MaybeGzip wraps r with a gzip reader when the stream starts with the
// gzip magic, and returns it unchanged (buffered) otherwise. Callers read
// from the returned reader in both cases.
func MaybeGzip(r io.Reader) (io.Reader, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(2)
	if err != nil {
		// Streams shorter than two bytes cannot be gzip; hand back
		// whatever is there (including an empty stream).
		return br, nil //nolint:nilerr // short input is data, not failure
	}
	if head[0] != gzipMagic[0] || head[1] != gzipMagic[1] {
		return br, nil
	}
	zr, err := gzip.NewReader(br)
	if err != nil {
		return nil, err
	}
	return zr, nil
}
