package ioutil

import (
	"bytes"
	"compress/gzip"
	"io"
	"strings"
	"testing"
)

func TestMaybeGzipPassthrough(t *testing.T) {
	out, err := MaybeGzip(strings.NewReader("plain text"))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(out)
	if err != nil || string(data) != "plain text" {
		t.Fatalf("data = %q, err = %v", data, err)
	}
}

func TestMaybeGzipDecompresses(t *testing.T) {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	zw.Write([]byte("compressed payload"))
	zw.Close()
	out, err := MaybeGzip(&buf)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(out)
	if err != nil || string(data) != "compressed payload" {
		t.Fatalf("data = %q, err = %v", data, err)
	}
}

func TestMaybeGzipShortAndEmpty(t *testing.T) {
	for _, in := range []string{"", "x"} {
		out, err := MaybeGzip(strings.NewReader(in))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(out)
		if string(data) != in {
			t.Fatalf("data = %q, want %q", data, in)
		}
	}
}

func TestMaybeGzipBrokenHeader(t *testing.T) {
	// Gzip magic followed by garbage: the gzip reader must reject it.
	if _, err := MaybeGzip(bytes.NewReader([]byte{0x1f, 0x8b, 0xff, 0x00})); err == nil {
		t.Fatal("want error for corrupt gzip stream")
	}
}
