package ioutil

import "io"

// CloseJoin closes c and, when no earlier error is pending, records the
// close error into *err. Written files must be closed this way: buffered
// data is flushed at Close, so dropping its error can turn a short write
// or a full disk into a silently truncated output file.
//
// Use with a named return value:
//
//	func write(path string) (err error) {
//		f, err := os.Create(path)
//		if err != nil {
//			return err
//		}
//		defer ioutil.CloseJoin(f, &err)
//		...
//	}
func CloseJoin(c io.Closer, err *error) {
	if cerr := c.Close(); cerr != nil && *err == nil {
		*err = cerr
	}
}

// CloseQuiet closes c and explicitly discards the error — appropriate
// only for read-only streams, where everything read has already been
// validated and a close failure cannot lose data.
func CloseQuiet(c io.Closer) {
	_ = c.Close()
}
