// Package isp models access-network operators as parameterised archetypes.
// The paper's case study (§4) contrasts three kinds of eyeball networks:
// ISPs reaching subscribers over the carrier's shared legacy PPPoE
// infrastructure (congestion-prone), ISPs running their own fiber plant
// (stable), and cellular networks (stable, lower rate). Each archetype maps
// to a distribution of netsim.AggregationDevice parameters; severity knobs
// let the scenario generator produce the whole spectrum from pristine to
// severely congested.
package isp

import (
	"errors"
	"fmt"
	"net/netip"

	"github.com/last-mile-congestion/lastmile/internal/bgp"
	"github.com/last-mile-congestion/lastmile/internal/netsim"
)

// Technology is the access technology of a network.
type Technology int

// Access technologies.
const (
	// LegacyPPPoE is FTTH over the carrier's shared legacy network,
	// terminated on carrier PPPoE gear that is expensive to upgrade —
	// the bottleneck the paper identifies in Japan.
	LegacyPPPoE Technology = iota
	// IPoE is FTTH over the carrier network using the newer IPoE
	// gateways (in Japan, the usual IPv6 path).
	IPoE
	// OwnFiber is an ISP-owned FTTH plant (the paper's ISP_C).
	OwnFiber
	// Cable is DOCSIS plant.
	Cable
	// LTE is a cellular network.
	LTE
	// Datacenter is server-grade connectivity (Atlas anchors).
	Datacenter
)

// String names the technology.
func (t Technology) String() string {
	switch t {
	case LegacyPPPoE:
		return "legacy-pppoe"
	case IPoE:
		return "ipoe"
	case OwnFiber:
		return "own-fiber"
	case Cable:
		return "cable"
	case LTE:
		return "lte"
	case Datacenter:
		return "datacenter"
	default:
		return "unknown"
	}
}

// Service is the subscriber population a network serves.
type Service int

// Service kinds.
const (
	// Broadband serves fixed-line subscribers.
	Broadband Service = iota
	// Mobile serves cellular subscribers; CDN analyses filter these
	// prefixes out before computing broadband throughput (§4.2).
	Mobile
	// Hosting serves datacenter equipment.
	Hosting
)

// String names the service.
func (s Service) String() string {
	switch s {
	case Broadband:
		return "broadband"
	case Mobile:
		return "mobile"
	case Hosting:
		return "hosting"
	default:
		return "unknown"
	}
}

// Config parameterises one network (one AS + service arm).
type Config struct {
	// Name is a human label, e.g. "ISP_A".
	Name string
	// ASN is the network's autonomous system.
	ASN bgp.ASN
	// CC is the country code.
	CC string
	// Tech is the access technology.
	Tech Technology
	// Service is the subscriber population.
	Service Service
	// UTCOffset is the local-time offset of the subscriber base.
	UTCOffset float64
	// Prefix is the IPv4 prefix subscribers (and the edge) draw
	// addresses from.
	Prefix netip.Prefix
	// PrefixV6 is the IPv6 subscriber prefix (may be invalid for
	// v4-only networks).
	PrefixV6 netip.Prefix
	// Devices is the number of shared aggregation devices.
	Devices int
	// BaseUtil is device utilisation at zero demand.
	BaseUtil float64
	// PeakUtilMean and PeakUtilSpread describe the distribution of
	// per-device peak utilisation. Means above 1 model persistent
	// saturation.
	PeakUtilMean, PeakUtilSpread float64
	// Queue is the shared-device queue model.
	Queue netsim.QueueModel
	// AccessMbps is the subscriber access rate cap.
	AccessMbps float64
	// EdgeBaseMs is the base RTT from subscriber premises to the first
	// public hop (propagation + CPE + access framing).
	EdgeBaseMs float64
	// COVIDSensitivity scales how strongly lockdown demand shifts this
	// network's utilisation (residential eyeballs ≈ 1, datacenter ≈ 0).
	COVIDSensitivity float64
	// V6BypassesLegacy marks networks where IPv6 rides IPoE and skips
	// the congested PPPoE gear (Appendix C).
	V6BypassesLegacy bool
}

// Validate checks the configuration for consistency.
func (c *Config) Validate() error {
	if c.Name == "" {
		return errors.New("isp: empty name")
	}
	if c.Devices <= 0 {
		return fmt.Errorf("isp: %s: need at least one device", c.Name)
	}
	if !c.Prefix.IsValid() {
		return fmt.Errorf("isp: %s: invalid IPv4 prefix", c.Name)
	}
	if c.BaseUtil < 0 || c.PeakUtilMean < c.BaseUtil {
		return fmt.Errorf("isp: %s: utilisations out of order (base %v, peak %v)", c.Name, c.BaseUtil, c.PeakUtilMean)
	}
	if c.AccessMbps <= 0 {
		return fmt.Errorf("isp: %s: access rate must be positive", c.Name)
	}
	return nil
}

// Network is a validated network whose devices can be instantiated per
// measurement period.
type Network struct {
	Config
}

// New validates cfg and returns the network.
func New(cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Network{Config: cfg}, nil
}

// DeviceSet holds the per-period aggregation devices for both address
// families.
type DeviceSet struct {
	// V4 carries IPv4 subscriber traffic.
	V4 []*netsim.AggregationDevice
	// V6 carries IPv6 traffic: the same devices as V4, unless the
	// network's IPv6 bypasses the legacy gear, in which case V6 holds
	// healthy IPoE devices.
	V6 []*netsim.AggregationDevice
}

// DeviceFor deterministically assigns a subscriber (or probe) id to a
// device of the given address family (4 or 6).
func (ds *DeviceSet) DeviceFor(id uint64, af int) *netsim.AggregationDevice {
	pool := ds.V4
	if af == 6 {
		pool = ds.V6
	}
	if len(pool) == 0 {
		return nil
	}
	return pool[netsim.MixSeed(id, uint64(af))%uint64(len(pool))]
}

// BuildDevices instantiates the network's aggregation devices for one
// measurement period. covidShift in [0, 1] raises demand (via the diurnal
// profile) and utilisation in proportion to the network's
// COVIDSensitivity; seed makes the per-device heterogeneity reproducible.
func (n *Network) BuildDevices(seed uint64, covidShift float64) *DeviceSet {
	shift := covidShift * n.COVIDSensitivity
	profile := netsim.DefaultProfile(n.UTCOffset)
	profile.COVIDShift = shift

	build := func(peakMean, spread float64, salt uint64) []*netsim.AggregationDevice {
		devs := make([]*netsim.AggregationDevice, n.Devices)
		for d := range devs {
			rng := netsim.DerivedRand(seed, uint64(n.ASN), salt, uint64(d))
			peak := netsim.TruncNormal(rng, peakMean, spread, n.BaseUtil+0.01)
			devs[d] = &netsim.AggregationDevice{
				ID:              netsim.MixSeed(uint64(n.ASN), salt, uint64(d)),
				Profile:         profile,
				BaseUtilization: n.BaseUtil,
				PeakUtilization: peak,
				Queue:           n.Queue,
				AccessMbps:      n.AccessMbps,
			}
		}
		return devs
	}

	// Lockdown demand growth on fixed capacity: utilisation scales with
	// the extra traffic. Peak-hour growth around 10% (on top of the much
	// larger daytime growth the profile models) matches what eyeball
	// operators reported in spring 2020 — evening peaks grew modestly
	// while daytime traffic exploded.
	peakMean := n.PeakUtilMean * (1 + 0.06*shift)
	ds := &DeviceSet{}
	ds.V4 = build(peakMean, n.PeakUtilSpread, 4)
	if n.V6BypassesLegacy {
		// IPoE gateways: newer, lightly loaded (Appendix C).
		ipoePeak := 0.55 * (1 + 0.15*shift)
		ds.V6 = build(ipoePeak, 0.05, 6)
	} else {
		ds.V6 = ds.V4
	}
	return ds
}
