package isp

import (
	"net/netip"
	"testing"
	"time"
)

var (
	v4p = netip.MustParsePrefix("20.1.0.0/16")
	v6p = netip.MustParsePrefix("2001:db8:1::/48")
)

func TestTechnologyStrings(t *testing.T) {
	names := map[Technology]string{
		LegacyPPPoE: "legacy-pppoe", IPoE: "ipoe", OwnFiber: "own-fiber",
		Cable: "cable", LTE: "lte", Datacenter: "datacenter", Technology(99): "unknown",
	}
	for tech, want := range names {
		if tech.String() != want {
			t.Errorf("%d = %q, want %q", tech, tech.String(), want)
		}
	}
	snames := map[Service]string{Broadband: "broadband", Mobile: "mobile", Hosting: "hosting", Service(9): "unknown"}
	for s, want := range snames {
		if s.String() != want {
			t.Errorf("%d = %q", s, s.String())
		}
	}
}

func TestConfigValidate(t *testing.T) {
	good := NewOwnFiber("ISP_C", 300, "JP", 9, v4p, v6p)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Name = ""
	if err := bad.Validate(); err == nil {
		t.Error("empty name should fail")
	}
	bad = good
	bad.Devices = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero devices should fail")
	}
	bad = good
	bad.Prefix = netip.Prefix{}
	if err := bad.Validate(); err == nil {
		t.Error("invalid prefix should fail")
	}
	bad = good
	bad.PeakUtilMean = 0.1
	bad.BaseUtil = 0.5
	if err := bad.Validate(); err == nil {
		t.Error("peak below base should fail")
	}
	bad = good
	bad.AccessMbps = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero access rate should fail")
	}
	if _, err := New(bad); err == nil {
		t.Error("New should propagate validation errors")
	}
}

func TestSeverityClamp(t *testing.T) {
	if Severity(-1).clamp() != 0 || Severity(2).clamp() != 1 || Severity(0.5).clamp() != 0.5 {
		t.Fatal("clamp misbehaves")
	}
}

func TestBuildDevicesDeterministic(t *testing.T) {
	n, err := New(NewLegacyPPPoE("ISP_A", 100, "JP", 9, v4p, v6p, 0.9))
	if err != nil {
		t.Fatal(err)
	}
	a := n.BuildDevices(42, 0)
	b := n.BuildDevices(42, 0)
	if len(a.V4) != n.Devices {
		t.Fatalf("devices = %d", len(a.V4))
	}
	for i := range a.V4 {
		if a.V4[i].PeakUtilization != b.V4[i].PeakUtilization {
			t.Fatal("device build not deterministic")
		}
	}
	c := n.BuildDevices(43, 0)
	same := true
	for i := range a.V4 {
		if a.V4[i].PeakUtilization != c.V4[i].PeakUtilization {
			same = false
		}
	}
	if same {
		t.Fatal("different seed should change devices")
	}
}

func TestLegacySevereIsCongestedAtPeak(t *testing.T) {
	n, _ := New(NewLegacyPPPoE("ISP_A", 100, "JP", 9, v4p, v6p, 0.9))
	ds := n.BuildDevices(1, 0)
	peak := time.Date(2019, 9, 19, 12, 0, 0, 0, time.UTC) // 21:00 JST
	off := time.Date(2019, 9, 19, 19, 0, 0, 0, time.UTC)  // 04:00 JST
	congested := 0
	offSum := 0.0
	for _, d := range ds.V4 {
		if d.MeanQueueDelayAt(peak) > 2 {
			congested++
		}
		offSum += d.MeanQueueDelayAt(off)
	}
	if congested < len(ds.V4)/2 {
		t.Fatalf("only %d/%d devices congested at peak", congested, len(ds.V4))
	}
	if offAvg := offSum / float64(len(ds.V4)); offAvg > 1.5 {
		t.Fatalf("mean off-peak delay %v too high", offAvg)
	}
}

func TestOwnFiberStaysFlat(t *testing.T) {
	n, _ := New(NewOwnFiber("ISP_C", 300, "JP", 9, v4p, v6p))
	ds := n.BuildDevices(1, 0)
	peak := time.Date(2019, 9, 19, 12, 0, 0, 0, time.UTC)
	for _, d := range ds.V4 {
		if delay := d.MeanQueueDelayAt(peak); delay > 0.6 {
			t.Fatalf("fiber device peak delay = %v ms", delay)
		}
	}
}

func TestV6BypassesLegacy(t *testing.T) {
	n, _ := New(NewLegacyPPPoE("ISP_A", 100, "JP", 9, v4p, v6p, 1))
	ds := n.BuildDevices(1, 0)
	peak := time.Date(2019, 9, 19, 12, 0, 0, 0, time.UTC)
	v4Delay, v6Delay := 0.0, 0.0
	for i := range ds.V4 {
		v4Delay += ds.V4[i].MeanQueueDelayAt(peak)
	}
	for i := range ds.V6 {
		v6Delay += ds.V6[i].MeanQueueDelayAt(peak)
	}
	v4Delay /= float64(len(ds.V4))
	v6Delay /= float64(len(ds.V6))
	if v6Delay >= v4Delay/3 {
		t.Fatalf("v6 (IPoE) delay %v should be far below v4 (PPPoE) %v", v6Delay, v4Delay)
	}
}

func TestNoBypassSharesDevices(t *testing.T) {
	n, _ := New(NewOwnFiber("ISP_C", 300, "JP", 9, v4p, v6p))
	ds := n.BuildDevices(1, 0)
	if &ds.V4[0] == &ds.V6[0] {
		// Slices share backing: device pointers must be identical.
	}
	for i := range ds.V4 {
		if ds.V4[i] != ds.V6[i] {
			t.Fatal("non-bypass network should share v4/v6 devices")
		}
	}
}

func TestCOVIDShiftRaisesUtilization(t *testing.T) {
	n, _ := New(NewEyeball("ISP_US", 200, "US", -5, v4p, v6p, 0.35))
	normal := n.BuildDevices(1, 0)
	locked := n.BuildDevices(1, 1)
	var nSum, lSum float64
	for i := range normal.V4 {
		nSum += normal.V4[i].PeakUtilization
		lSum += locked.V4[i].PeakUtilization
	}
	if lSum <= nSum*1.05 {
		t.Fatalf("lockdown peak util %v should clearly exceed normal %v", lSum, nSum)
	}
}

func TestDatacenterInsensitiveToCOVID(t *testing.T) {
	n, _ := New(NewDatacenter("anchor-net", 500, "JP", 9, v4p, v6p))
	normal := n.BuildDevices(1, 0)
	locked := n.BuildDevices(1, 1)
	for i := range normal.V4 {
		if normal.V4[i].PeakUtilization != locked.V4[i].PeakUtilization {
			t.Fatal("datacenter should ignore lockdown")
		}
	}
}

func TestDeviceFor(t *testing.T) {
	n, _ := New(NewLegacyPPPoE("ISP_A", 100, "JP", 9, v4p, v6p, 0.5))
	ds := n.BuildDevices(1, 0)
	d1 := ds.DeviceFor(7, 4)
	d2 := ds.DeviceFor(7, 4)
	if d1 == nil || d1 != d2 {
		t.Fatal("DeviceFor must be deterministic")
	}
	// Different subscribers spread across devices.
	seen := map[*struct{}]bool{}
	_ = seen
	distinct := map[uint64]bool{}
	for id := uint64(0); id < 200; id++ {
		distinct[ds.DeviceFor(id, 4).ID] = true
	}
	if len(distinct) < n.Devices/2 {
		t.Fatalf("only %d distinct devices used", len(distinct))
	}
	empty := &DeviceSet{}
	if empty.DeviceFor(1, 4) != nil {
		t.Fatal("empty set should return nil")
	}
}

func TestCellularConsistentThroughput(t *testing.T) {
	n, _ := New(NewCellular("ISP_B_mobile", 201, "JP", 9, v4p, v6p))
	ds := n.BuildDevices(1, 0)
	rng := ds.V4[0]
	peak := time.Date(2019, 9, 19, 12, 0, 0, 0, time.UTC)
	sum := 0.0
	cnt := 200
	r := newTestRand()
	for i := 0; i < cnt; i++ {
		sum += rng.ThroughputAt(peak, r)
	}
	if avg := sum / float64(cnt); avg < 20 {
		t.Fatalf("cellular peak median throughput %v < 20 Mbps", avg)
	}
}
