package isp

import (
	"math/rand"

	"github.com/last-mile-congestion/lastmile/internal/netsim"
)

// newTestRand returns a deterministic PRNG for tests.
func newTestRand() *rand.Rand {
	return netsim.DerivedRand(12345)
}
