package isp

import (
	"net/netip"

	"github.com/last-mile-congestion/lastmile/internal/bgp"
	"github.com/last-mile-congestion/lastmile/internal/netsim"
)

// Severity tunes an archetype's congestion level in [0, 1]: 0 produces a
// comfortably provisioned network, 1 a severely oversubscribed one. The
// scenario generator draws severities to shape the survey's amplitude
// distribution (Fig. 3, bottom).
type Severity float64

// clamp returns s limited to [0, 1].
func (s Severity) clamp() float64 {
	v := float64(s)
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// legacyQueue is the queue model of the carrier's shared PPPoE gear:
// shallow buffers on ossified hardware — delay saturates in the
// millisecond range while throughput collapses with oversubscription,
// which is exactly the combination §4 measures (delays of a few ms
// alongside halved throughput).
func legacyQueue() netsim.QueueModel {
	return netsim.QueueModel{ServiceMs: 0.12, BufferMs: 6.5, JitterFrac: 0.3}
}

// modernQueue is the queue model of well-run FTTH/IPoE gear.
func modernQueue() netsim.QueueModel {
	return netsim.QueueModel{ServiceMs: 0.06, BufferMs: 5, JitterFrac: 0.25}
}

// cellularQueue models LTE schedulers: more jitter, moderate buffers.
func cellularQueue() netsim.QueueModel {
	return netsim.QueueModel{ServiceMs: 0.3, BufferMs: 15, JitterFrac: 0.5}
}

// NewLegacyPPPoE returns a broadband network riding the carrier's legacy
// PPPoE infrastructure. Severity 0 leaves the gear with headroom;
// severity 1 drives peak offered load to ≈2.4× capacity, reproducing the
// halved peak-hour throughput of the paper's ISP_A/ISP_B.
func NewLegacyPPPoE(name string, asn bgp.ASN, cc string, utcOffset float64, prefix, prefixV6 netip.Prefix, sev Severity) Config {
	s := sev.clamp()
	return Config{
		Name: name, ASN: asn, CC: cc,
		Tech: LegacyPPPoE, Service: Broadband,
		UTCOffset: utcOffset,
		Prefix:    prefix, PrefixV6: prefixV6,
		Devices:  24,
		BaseUtil: 0.25 + 0.1*s,
		// Severity sweeps the mean peak utilisation from a healthy 0.7
		// to a severely oversubscribed 2.4.
		PeakUtilMean:     0.7 + 1.7*s,
		PeakUtilSpread:   0.1 + 0.35*s,
		Queue:            legacyQueue(),
		AccessMbps:       52,
		EdgeBaseMs:       1.8,
		COVIDSensitivity: 1,
		V6BypassesLegacy: true,
	}
}

// NewOwnFiber returns a broadband network with its own fiber plant (the
// paper's ISP_C): stable delay and throughput at all hours.
func NewOwnFiber(name string, asn bgp.ASN, cc string, utcOffset float64, prefix, prefixV6 netip.Prefix) Config {
	return Config{
		Name: name, ASN: asn, CC: cc,
		Tech: OwnFiber, Service: Broadband,
		UTCOffset: utcOffset,
		Prefix:    prefix, PrefixV6: prefixV6,
		Devices:          24,
		BaseUtil:         0.2,
		PeakUtilMean:     0.62,
		PeakUtilSpread:   0.08,
		Queue:            modernQueue(),
		AccessMbps:       55,
		EdgeBaseMs:       1.5,
		COVIDSensitivity: 1,
	}
}

// NewEyeball returns a generic broadband eyeball network whose severity
// sets where it lands in the survey's amplitude distribution. Severity 0
// gives an ISP_DE-style flat network; mid severities give the small
// diurnal wiggle of ISP_US; high severities produce Severe reports.
func NewEyeball(name string, asn bgp.ASN, cc string, utcOffset float64, prefix, prefixV6 netip.Prefix, sev Severity) Config {
	s := sev.clamp()
	return Config{
		Name: name, ASN: asn, CC: cc,
		Tech: Cable, Service: Broadband,
		UTCOffset: utcOffset,
		Prefix:    prefix, PrefixV6: prefixV6,
		Devices:          24,
		BaseUtil:         0.22 + 0.08*s,
		PeakUtilMean:     0.55 + 1.1*s,
		PeakUtilSpread:   0.04 + 0.1*s,
		Queue:            legacyQueue(),
		AccessMbps:       48,
		EdgeBaseMs:       2.2,
		COVIDSensitivity: 1,
	}
}

// NewCellular returns a mobile network: consistent performance (the
// paper's mobile baselines hold >20 Mbit/s medians at all hours) at a
// lower access rate.
func NewCellular(name string, asn bgp.ASN, cc string, utcOffset float64, prefix, prefixV6 netip.Prefix) Config {
	return Config{
		Name: name, ASN: asn, CC: cc,
		Tech: LTE, Service: Mobile,
		UTCOffset: utcOffset,
		Prefix:    prefix, PrefixV6: prefixV6,
		Devices:          32,
		BaseUtil:         0.3,
		PeakUtilMean:     0.7,
		PeakUtilSpread:   0.1,
		Queue:            cellularQueue(),
		AccessMbps:       30,
		EdgeBaseMs:       14,
		COVIDSensitivity: 0.3,
	}
}

// NewDatacenter returns hosting-style connectivity for Atlas anchors: no
// shared last-mile bottleneck at all (Appendix B's flat anchor signal).
func NewDatacenter(name string, asn bgp.ASN, cc string, utcOffset float64, prefix, prefixV6 netip.Prefix) Config {
	return Config{
		Name: name, ASN: asn, CC: cc,
		Tech: Datacenter, Service: Hosting,
		UTCOffset: utcOffset,
		Prefix:    prefix, PrefixV6: prefixV6,
		Devices:          4,
		BaseUtil:         0.1,
		PeakUtilMean:     0.3,
		PeakUtilSpread:   0.05,
		Queue:            netsim.QueueModel{ServiceMs: 0.02, BufferMs: 2, JitterFrac: 0.2},
		AccessMbps:       1000,
		EdgeBaseMs:       0.5,
		COVIDSensitivity: 0,
	}
}
