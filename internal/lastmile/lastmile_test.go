package lastmile

import (
	"math"
	"net/netip"
	"testing"
	"time"

	"github.com/last-mile-congestion/lastmile/internal/traceroute"
)

var t0 = time.Date(2019, 9, 19, 0, 0, 0, 0, time.UTC)

// makeTrace builds a traceroute with one private hop at privRTTs and one
// public hop at pubRTTs.
func makeTrace(probeID int, ts time.Time, privRTTs, pubRTTs []float64) *traceroute.Result {
	priv := netip.MustParseAddr("192.168.1.1")
	pub := netip.MustParseAddr("203.0.113.1")
	r := &traceroute.Result{
		ProbeID:   probeID,
		MsmID:     5010,
		Timestamp: ts,
		AF:        4,
		SrcAddr:   netip.MustParseAddr("192.168.1.5"),
		FromAddr:  netip.MustParseAddr("203.0.113.7"),
		DstAddr:   netip.MustParseAddr("193.0.14.129"),
		Proto:     "ICMP",
	}
	h1 := traceroute.HopResult{Hop: 1}
	for _, rtt := range privRTTs {
		h1.Replies = append(h1.Replies, traceroute.Reply{From: priv, RTT: rtt, TTL: 64})
	}
	h2 := traceroute.HopResult{Hop: 2}
	for _, rtt := range pubRTTs {
		h2.Replies = append(h2.Replies, traceroute.Reply{From: pub, RTT: rtt, TTL: 254})
	}
	r.Hops = []traceroute.HopResult{h1, h2}
	return r
}

func TestFindSegment(t *testing.T) {
	r := makeTrace(1, t0, []float64{0.5}, []float64{2.5})
	seg, ok := FindSegment(r)
	if !ok {
		t.Fatal("segment not found")
	}
	if seg.PrivateHop != 0 || seg.PublicHop != 1 {
		t.Fatalf("segment = %+v", seg)
	}
	if seg.PrivateAddr.String() != "192.168.1.1" || seg.PublicAddr.String() != "203.0.113.1" {
		t.Fatalf("segment addrs = %+v", seg)
	}
}

func TestFindSegmentSkipsCGNAT(t *testing.T) {
	// CGNAT hop between home NAT and ISP edge: the private side should be
	// the CGNAT hop (100.64/10 is subscriber-side), the public side the
	// first real public hop.
	r := makeTrace(1, t0, []float64{0.5}, []float64{9.9})
	cgnat := traceroute.HopResult{Hop: 2, Replies: []traceroute.Reply{
		{From: netip.MustParseAddr("100.64.0.1"), RTT: 1.5, TTL: 63},
	}}
	r.Hops[1].Hop = 3
	r.Hops = []traceroute.HopResult{r.Hops[0], cgnat, r.Hops[1]}
	seg, ok := FindSegment(r)
	if !ok {
		t.Fatal("segment not found")
	}
	if seg.PrivateHop != 1 || seg.PublicHop != 2 {
		t.Fatalf("segment = %+v, want CGNAT->public", seg)
	}
}

func TestFindSegmentNoPublic(t *testing.T) {
	r := makeTrace(1, t0, []float64{0.5}, []float64{2.5})
	r.Hops = r.Hops[:1]
	if _, ok := FindSegment(r); ok {
		t.Fatal("no public hop: segment must not be found")
	}
}

func TestFindSegmentFirstHopPublic(t *testing.T) {
	// Datacenter-style host: first hop is already public.
	r := &traceroute.Result{
		ProbeID: 1, Timestamp: t0, AF: 4,
		Hops: []traceroute.HopResult{
			{Hop: 1, Replies: []traceroute.Reply{
				{From: netip.MustParseAddr("203.0.113.1"), RTT: 0.4},
			}},
		},
	}
	if _, ok := FindSegment(r); ok {
		t.Fatal("public first hop: no last mile to measure")
	}
}

func TestFindSegmentTimeoutPrivateHop(t *testing.T) {
	// The private hop times out entirely: no segment.
	r := makeTrace(1, t0, nil, []float64{2.0})
	r.Hops[0].Replies = []traceroute.Reply{{Timeout: true, RTT: math.NaN()}}
	if _, ok := FindSegment(r); ok {
		t.Fatal("timed-out private hop must not form a segment")
	}
}

func TestPairwiseSamplesNineSamples(t *testing.T) {
	r := makeTrace(1, t0, []float64{0.5, 0.6, 0.4}, []float64{2.5, 2.6, 2.4})
	seg, ok := FindSegment(r)
	if !ok {
		t.Fatal("no segment")
	}
	samples := PairwiseSamples(r, seg)
	if len(samples) != 9 {
		t.Fatalf("samples = %d, want 9", len(samples))
	}
	// All diffs near 2.0.
	for _, s := range samples {
		if s < 1.7 || s > 2.3 {
			t.Fatalf("sample %v out of expected range", s)
		}
	}
}

func TestPairwiseSamplesPartialReplies(t *testing.T) {
	r := makeTrace(1, t0, []float64{0.5, 0.6}, []float64{2.5})
	seg, _ := FindSegment(r)
	samples := PairwiseSamples(r, seg)
	if len(samples) != 2 {
		t.Fatalf("samples = %d, want 2", len(samples))
	}
}

func TestPairwiseSamplesIgnoreOtherResponders(t *testing.T) {
	// A load-balanced public hop with two responders: only RTTs from the
	// segment's chosen address count.
	r := makeTrace(1, t0, []float64{0.5}, []float64{2.5})
	r.Hops[1].Replies = append(r.Hops[1].Replies, traceroute.Reply{
		From: netip.MustParseAddr("198.51.100.9"), RTT: 50, TTL: 200,
	})
	seg, _ := FindSegment(r)
	samples := PairwiseSamples(r, seg)
	if len(samples) != 1 {
		t.Fatalf("samples = %v, want 1 from chosen responder", samples)
	}
	if samples[0] != 2.0 {
		t.Fatalf("sample = %v", samples[0])
	}
}

func TestEstimate(t *testing.T) {
	r := makeTrace(1, t0, []float64{0.5, 0.5, 0.5}, []float64{2.5, 2.5, 2.5})
	samples, seg, ok := Estimate(r)
	if !ok || len(samples) != 9 || seg.PublicHop != 1 {
		t.Fatalf("estimate = %v, %+v, %v", samples, seg, ok)
	}
	r2 := makeTrace(1, t0, []float64{0.5}, nil)
	r2.Hops[1].Replies = []traceroute.Reply{{Timeout: true, RTT: math.NaN()}}
	if _, _, ok := Estimate(r2); ok {
		t.Fatal("estimate should fail without public replies")
	}
}

func TestProbeAccumulator(t *testing.T) {
	acc, err := NewProbeAccumulator(7, t0, t0.Add(time.Hour), DefaultBinWidth)
	if err != nil {
		t.Fatal(err)
	}
	// 3 traceroutes in bin 0: passes the sanity check.
	for i := 0; i < 3; i++ {
		ts := t0.Add(time.Duration(i*5) * time.Minute)
		if err := acc.Add(makeTrace(7, ts, []float64{0.5}, []float64{2.5})); err != nil {
			t.Fatal(err)
		}
	}
	// Only 2 in bin 1: discarded.
	for i := 0; i < 2; i++ {
		ts := t0.Add(30*time.Minute + time.Duration(i*5)*time.Minute)
		if err := acc.Add(makeTrace(7, ts, []float64{0.5}, []float64{3.5})); err != nil {
			t.Fatal(err)
		}
	}
	s := acc.MedianRTT(DefaultMinTraceroutes)
	if s.Values[0] != 2.0 {
		t.Fatalf("bin 0 = %v, want 2.0", s.Values[0])
	}
	if !math.IsNaN(s.Values[1]) {
		t.Fatalf("bin 1 = %v, want NaN (sanity check)", s.Values[1])
	}
	if acc.Traceroutes != 5 {
		t.Fatalf("traceroutes = %d", acc.Traceroutes)
	}
}

func TestProbeAccumulatorRejectsForeignProbe(t *testing.T) {
	acc, _ := NewProbeAccumulator(7, t0, t0.Add(time.Hour), DefaultBinWidth)
	if err := acc.Add(makeTrace(8, t0, []float64{0.5}, []float64{2.5})); err == nil {
		t.Fatal("want error for foreign probe result")
	}
}

func TestProbeAccumulatorSkipsUnusable(t *testing.T) {
	acc, _ := NewProbeAccumulator(7, t0, t0.Add(time.Hour), DefaultBinWidth)
	r := makeTrace(7, t0, []float64{0.5}, []float64{2.5})
	r.Hops = r.Hops[:1] // no public hop
	if err := acc.Add(r); err != nil {
		t.Fatal(err)
	}
	if acc.Skipped != 1 || acc.Traceroutes != 0 {
		t.Fatalf("skipped=%d traceroutes=%d", acc.Skipped, acc.Traceroutes)
	}
}

func TestQueuingDelayPinsMinimumAtZero(t *testing.T) {
	acc, _ := NewProbeAccumulator(7, t0, t0.Add(time.Hour), DefaultBinWidth)
	for i := 0; i < 3; i++ {
		acc.Add(makeTrace(7, t0.Add(time.Duration(i)*time.Minute), []float64{0.5}, []float64{2.5}))
		acc.Add(makeTrace(7, t0.Add(30*time.Minute+time.Duration(i)*time.Minute), []float64{0.5}, []float64{4.5}))
	}
	qd, err := acc.QueuingDelay(DefaultMinTraceroutes)
	if err != nil {
		t.Fatal(err)
	}
	if qd.Values[0] != 0 {
		t.Fatalf("quiet bin = %v, want 0", qd.Values[0])
	}
	if qd.Values[1] != 2.0 {
		t.Fatalf("busy bin = %v, want 2.0", qd.Values[1])
	}
}

func TestQueuingDelayNoUsableBins(t *testing.T) {
	acc, _ := NewProbeAccumulator(7, t0, t0.Add(time.Hour), DefaultBinWidth)
	if _, err := acc.QueuingDelay(DefaultMinTraceroutes); err == nil {
		t.Fatal("want error with no data")
	}
}

func TestPopulationDelay(t *testing.T) {
	// 5 probes, all with a 1 ms peak-hour bump; the population median
	// must show the bump.
	var accs []*ProbeAccumulator
	for p := 0; p < 5; p++ {
		acc, _ := NewProbeAccumulator(p, t0, t0.Add(time.Hour), DefaultBinWidth)
		base := 2.0 + 0.1*float64(p)
		for i := 0; i < 3; i++ {
			acc.Add(makeTrace(p, t0.Add(time.Duration(i)*time.Minute), []float64{0.5}, []float64{0.5 + base}))
			acc.Add(makeTrace(p, t0.Add(30*time.Minute+time.Duration(i)*time.Minute), []float64{0.5}, []float64{0.5 + base + 1.0}))
		}
		accs = append(accs, acc)
	}
	agg, n, err := PopulationDelay(accs, DefaultMinTraceroutes)
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("contributing probes = %d", n)
	}
	if agg.Values[0] != 0 || math.Abs(agg.Values[1]-1.0) > 1e-9 {
		t.Fatalf("aggregate = %v", agg.Values)
	}
}

func TestPopulationDelaySkipsEmptyProbes(t *testing.T) {
	good, _ := NewProbeAccumulator(1, t0, t0.Add(time.Hour), DefaultBinWidth)
	for i := 0; i < 3; i++ {
		good.Add(makeTrace(1, t0.Add(time.Duration(i)*time.Minute), []float64{0.5}, []float64{2.5}))
	}
	empty, _ := NewProbeAccumulator(2, t0, t0.Add(time.Hour), DefaultBinWidth)
	agg, n, err := PopulationDelay([]*ProbeAccumulator{good, empty}, DefaultMinTraceroutes)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("contributing = %d, want 1", n)
	}
	if agg == nil {
		t.Fatal("nil aggregate")
	}
}

func TestPopulationDelayEmpty(t *testing.T) {
	if _, _, err := PopulationDelay(nil, 3); err == nil {
		t.Fatal("want error for empty population")
	}
	empty, _ := NewProbeAccumulator(2, t0, t0.Add(time.Hour), DefaultBinWidth)
	if _, _, err := PopulationDelay([]*ProbeAccumulator{empty}, 3); err == nil {
		t.Fatal("want error when no probe contributes")
	}
}

func TestAggregateQueuingDelayEmpty(t *testing.T) {
	if _, err := AggregateQueuingDelay(nil); err == nil {
		t.Fatal("want error")
	}
}
