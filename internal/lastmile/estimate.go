// Package lastmile implements the paper's last-mile RTT estimation (§2.1):
// locating the segment between the last private hop and the first public
// hop of a traceroute, producing the 9 pairwise RTT samples per traceroute,
// binning medians per probe per 30-minute window, and aggregating probe
// populations into the queuing-delay signals the classifier consumes.
package lastmile

import (
	"math"
	"net/netip"

	"github.com/last-mile-congestion/lastmile/internal/ipnet"
	"github.com/last-mile-congestion/lastmile/internal/traceroute"
)

// Segment identifies the last-mile boundary within one traceroute: the
// last hop answering with a private address before the first hop answering
// with a public one.
type Segment struct {
	// PrivateHop and PublicHop are indices into Result.Hops.
	PrivateHop, PublicHop int
	// PrivateAddr and PublicAddr are the reply addresses at those hops.
	PrivateAddr, PublicAddr netip.Addr
}

// FindSegment locates the last-mile segment of r. It returns false when
// the traceroute has no public hop, no private hop before the first public
// hop (e.g. a datacenter host with a public address on its LAN), or no
// usable RTTs on either side.
func FindSegment(r *traceroute.Result) (Segment, bool) {
	pub := -1
	var pubAddr netip.Addr
	for i, h := range r.Hops {
		for _, rep := range h.Replies {
			if !rep.Timeout && ipnet.IsPublic(rep.From) {
				pub = i
				pubAddr = rep.From
				break
			}
		}
		if pub >= 0 {
			break
		}
	}
	if pub <= 0 {
		// Either no public hop at all, or the very first hop is public
		// and there is no private segment to measure.
		return Segment{}, false
	}
	for i := pub - 1; i >= 0; i-- {
		for _, rep := range r.Hops[i].Replies {
			if !rep.Timeout && ipnet.IsPrivate(rep.From) {
				return Segment{
					PrivateHop:  i,
					PublicHop:   pub,
					PrivateAddr: rep.From,
					PublicAddr:  pubAddr,
				}, true
			}
		}
	}
	return Segment{}, false
}

// PairwiseSamples returns the pairwise RTT differences (public − private)
// between every usable reply pair of the segment's two hops — up to 9
// samples per traceroute when both hops answered all three probes (§2.1).
// Negative differences (reply reordering, noise) are kept; the per-bin
// median downstream is the paper's noise filter.
func PairwiseSamples(r *traceroute.Result, seg Segment) []float64 {
	priv := usableRTTs(r, seg.PrivateHop, seg.PrivateAddr)
	pub := usableRTTs(r, seg.PublicHop, seg.PublicAddr)
	if len(priv) == 0 || len(pub) == 0 {
		return nil
	}
	out := make([]float64, 0, len(priv)*len(pub))
	for _, p := range pub {
		for _, q := range priv {
			out = append(out, p-q)
		}
	}
	return out
}

// usableRTTs returns the finite RTTs of hop i restricted to replies from
// addr, so that a hop with mixed responders (load-balanced paths) does not
// blend RTTs of different routers into one estimate.
func usableRTTs(r *traceroute.Result, i int, addr netip.Addr) []float64 {
	if i < 0 || i >= len(r.Hops) {
		return nil
	}
	var out []float64
	for _, rep := range r.Hops[i].Replies {
		if rep.Timeout || rep.From != addr {
			continue
		}
		if math.IsNaN(rep.RTT) || math.IsInf(rep.RTT, 0) || rep.RTT <= 0 {
			continue
		}
		out = append(out, rep.RTT)
	}
	return out
}

// PairwiseFromRTTs returns the pairwise differences (public − private)
// between two sets of raw RTT observations — the same arithmetic as
// PairwiseSamples, exposed for simulation fast paths that draw hop RTTs
// without materialising a full traceroute result.
func PairwiseFromRTTs(privRTTs, pubRTTs []float64) []float64 {
	return PairwiseFromRTTsInto(nil, privRTTs, pubRTTs)
}

// PairwiseFromRTTsInto is PairwiseFromRTTs appending into dst, so hot
// loops can reuse one scratch slice (pass dst[:0]) across traceroutes
// instead of allocating the 9-sample product per call.
func PairwiseFromRTTsInto(dst, privRTTs, pubRTTs []float64) []float64 {
	if len(privRTTs) == 0 || len(pubRTTs) == 0 {
		return nil
	}
	if dst == nil {
		dst = make([]float64, 0, len(privRTTs)*len(pubRTTs))
	}
	for _, p := range pubRTTs {
		for _, q := range privRTTs {
			dst = append(dst, p-q)
		}
	}
	return dst
}

// Estimate extracts the last-mile samples of r in one call. ok is false
// when the traceroute carries no usable last-mile information.
func Estimate(r *traceroute.Result) (samples []float64, seg Segment, ok bool) {
	seg, ok = FindSegment(r)
	if !ok {
		return nil, Segment{}, false
	}
	samples = PairwiseSamples(r, seg)
	if len(samples) == 0 {
		return nil, Segment{}, false
	}
	return samples, seg, true
}
