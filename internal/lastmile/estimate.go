// Package lastmile implements the paper's last-mile RTT estimation (§2.1):
// locating the segment between the last private hop and the first public
// hop of a traceroute, producing the 9 pairwise RTT samples per traceroute,
// binning medians per probe per 30-minute window, and aggregating probe
// populations into the queuing-delay signals the classifier consumes.
package lastmile

import (
	"math"
	"net/netip"

	"github.com/last-mile-congestion/lastmile/internal/ipnet"
	"github.com/last-mile-congestion/lastmile/internal/traceroute"
)

// Segment identifies the last-mile boundary within one traceroute: the
// last hop answering with a private address before the first hop answering
// with a public one.
type Segment struct {
	// PrivateHop and PublicHop are indices into Result.Hops.
	PrivateHop, PublicHop int
	// PrivateAddr and PublicAddr are the reply addresses at those hops.
	PrivateAddr, PublicAddr netip.Addr
}

// FindSegment locates the last-mile segment of r. It returns false when
// the traceroute has no public hop, no private hop before the first public
// hop (e.g. a datacenter host with a public address on its LAN), or no
// usable RTTs on either side.
func FindSegment(r *traceroute.Result) (Segment, bool) {
	pub := -1
	var pubAddr netip.Addr
	for i, h := range r.Hops {
		for _, rep := range h.Replies {
			if !rep.Timeout && ipnet.IsPublic(rep.From) {
				pub = i
				pubAddr = rep.From
				break
			}
		}
		if pub >= 0 {
			break
		}
	}
	if pub <= 0 {
		// Either no public hop at all, or the very first hop is public
		// and there is no private segment to measure.
		return Segment{}, false
	}
	for i := pub - 1; i >= 0; i-- {
		for _, rep := range r.Hops[i].Replies {
			if !rep.Timeout && ipnet.IsPrivate(rep.From) {
				return Segment{
					PrivateHop:  i,
					PublicHop:   pub,
					PrivateAddr: rep.From,
					PublicAddr:  pubAddr,
				}, true
			}
		}
	}
	return Segment{}, false
}

// PairwiseSamples returns the pairwise RTT differences (public − private)
// between every usable reply pair of the segment's two hops — up to 9
// samples per traceroute when both hops answered all three probes (§2.1).
// Negative differences (reply reordering, noise) are kept; the per-bin
// median downstream is the paper's noise filter.
func PairwiseSamples(r *traceroute.Result, seg Segment) []float64 {
	out := PairwiseSamplesInto(nil, r, seg)
	if len(out) == 0 {
		return nil
	}
	return out
}

// PairwiseSamplesInto is PairwiseSamples appending into dst (pass a
// reused scratch as dst[:0]), filtering replies in place rather than
// materialising the per-hop RTT slices — the streaming monitor's
// per-observation path runs through here and must not allocate. When the
// segment has no usable reply pair on either side, dst is returned
// unchanged.
//
//lmvet:hotpath
func PairwiseSamplesInto(dst []float64, r *traceroute.Result, seg Segment) []float64 {
	if seg.PrivateHop < 0 || seg.PrivateHop >= len(r.Hops) ||
		seg.PublicHop < 0 || seg.PublicHop >= len(r.Hops) {
		return dst
	}
	pub := r.Hops[seg.PublicHop].Replies
	priv := r.Hops[seg.PrivateHop].Replies
	for _, p := range pub {
		if !usableRTT(p, seg.PublicAddr) {
			continue
		}
		for _, q := range priv {
			if !usableRTT(q, seg.PrivateAddr) {
				continue
			}
			dst = append(dst, p.RTT-q.RTT) //lmvet:ignore allocguard caller supplies pooled capacity; grows only until the scratch reaches the steady-state 9 samples
		}
	}
	return dst
}

// usableRTT reports whether one reply carries a finite positive RTT from
// the expected responder, so that a hop with mixed responders
// (load-balanced paths) does not blend RTTs of different routers into
// one estimate.
func usableRTT(rep traceroute.Reply, addr netip.Addr) bool {
	if rep.Timeout || rep.From != addr {
		return false
	}
	return !math.IsNaN(rep.RTT) && !math.IsInf(rep.RTT, 0) && rep.RTT > 0
}

// PairwiseFromRTTs returns the pairwise differences (public − private)
// between two sets of raw RTT observations — the same arithmetic as
// PairwiseSamples, exposed for simulation fast paths that draw hop RTTs
// without materialising a full traceroute result.
func PairwiseFromRTTs(privRTTs, pubRTTs []float64) []float64 {
	return PairwiseFromRTTsInto(nil, privRTTs, pubRTTs)
}

// PairwiseFromRTTsInto is PairwiseFromRTTs appending into dst, so hot
// loops can reuse one scratch slice (pass dst[:0]) across traceroutes
// instead of allocating the 9-sample product per call.
func PairwiseFromRTTsInto(dst, privRTTs, pubRTTs []float64) []float64 {
	if len(privRTTs) == 0 || len(pubRTTs) == 0 {
		return nil
	}
	if dst == nil {
		dst = make([]float64, 0, len(privRTTs)*len(pubRTTs))
	}
	for _, p := range pubRTTs {
		for _, q := range privRTTs {
			dst = append(dst, p-q)
		}
	}
	return dst
}

// Estimate extracts the last-mile samples of r in one call. ok is false
// when the traceroute carries no usable last-mile information.
func Estimate(r *traceroute.Result) (samples []float64, seg Segment, ok bool) {
	samples, seg, ok = EstimateInto(nil, r)
	if !ok {
		return nil, Segment{}, false
	}
	return samples, seg, true
}

// EstimateInto is Estimate appending the samples into dst (pass a
// reused scratch as dst[:0]). On ok == false the returned slice is dst
// unchanged in length — callers keep it either way so grown capacity is
// retained across observations.
//
//lmvet:hotpath
func EstimateInto(dst []float64, r *traceroute.Result) (samples []float64, seg Segment, ok bool) {
	seg, ok = FindSegment(r)
	if !ok {
		return dst, Segment{}, false
	}
	samples = PairwiseSamplesInto(dst, r, seg)
	if len(samples) == len(dst) {
		return samples, Segment{}, false
	}
	return samples, seg, true
}
