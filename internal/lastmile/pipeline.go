package lastmile

import (
	"errors"
	"fmt"
	"time"

	"github.com/last-mile-congestion/lastmile/internal/timeseries"
	"github.com/last-mile-congestion/lastmile/internal/traceroute"
)

// DefaultBinWidth is the paper's 30-minute aggregation window,
// deliberately large to filter transient congestion (§2).
const DefaultBinWidth = 30 * time.Minute

// DefaultMinTraceroutes is the paper's per-bin sanity threshold: bins with
// fewer than 3 traceroutes are discarded as probe-disconnection artefacts.
const DefaultMinTraceroutes = 3

// ProbeAccumulator gathers one probe's last-mile samples over a
// measurement period and produces its median-RTT series.
type ProbeAccumulator struct {
	ProbeID int
	binner  *timeseries.MedianBinner
	// Traceroutes counts results that contributed samples.
	Traceroutes int
	// Skipped counts results with no usable last-mile segment.
	Skipped int
}

// NewProbeAccumulator creates an accumulator for one probe covering
// [start, end) with the given bin width (use DefaultBinWidth).
func NewProbeAccumulator(probeID int, start, end time.Time, binWidth time.Duration) (*ProbeAccumulator, error) {
	b, err := timeseries.NewMedianBinner(start, end, binWidth)
	if err != nil {
		return nil, err
	}
	return &ProbeAccumulator{ProbeID: probeID, binner: b}, nil
}

// Add processes one traceroute result. Results from other probes are an
// error; results without a last-mile segment are counted and skipped.
func (a *ProbeAccumulator) Add(r *traceroute.Result) error {
	if r.ProbeID != a.ProbeID {
		return fmt.Errorf("lastmile: result from probe %d fed to accumulator for probe %d", r.ProbeID, a.ProbeID)
	}
	samples, _, ok := Estimate(r)
	if !ok {
		a.Skipped++
		return nil
	}
	a.binner.AddGroup(r.Timestamp, samples)
	a.Traceroutes++
	return nil
}

// AddSamples records one traceroute's worth of pre-computed last-mile
// samples at time t. Simulation fast paths use it to feed the accumulator
// without materialising traceroute results; the samples must come from a
// single traceroute so the per-bin traceroute count stays meaningful.
func (a *ProbeAccumulator) AddSamples(t time.Time, samples []float64) {
	if len(samples) == 0 {
		a.Skipped++
		return
	}
	a.binner.AddGroup(t, samples)
	a.Traceroutes++
}

// MedianRTT returns the per-bin median last-mile RTT series, with bins
// holding fewer than minTraceroutes traceroutes marked as gaps. Pass
// DefaultMinTraceroutes for the paper's behaviour.
func (a *ProbeAccumulator) MedianRTT(minTraceroutes int) *timeseries.Series {
	return a.binner.Series(minTraceroutes)
}

// QueuingDelay returns the probe's queuing-delay estimate: the median-RTT
// series with its per-period minimum subtracted, pinning the quietest bin
// at zero (§2.1). It returns an error when the probe produced no usable
// bins at all.
func (a *ProbeAccumulator) QueuingDelay(minTraceroutes int) (*timeseries.Series, error) {
	return timeseries.SubtractMin(a.MedianRTT(minTraceroutes))
}

// AggregateQueuingDelay combines per-probe queuing-delay series into the
// population signal: the per-bin median across probes. Probes whose
// series could not be computed should already have been dropped by the
// caller. This is the signal Figures 1, 5, and 8 plot and the classifier
// transforms.
func AggregateQueuingDelay(perProbe []*timeseries.Series) (*timeseries.Series, error) {
	if len(perProbe) == 0 {
		return nil, errors.New("lastmile: no probes in population")
	}
	return timeseries.AggregateMedian(perProbe)
}

// PopulationDelay runs the full §2.1 pipeline over a set of probe
// accumulators: per-probe queuing delays, then the population median.
// Probes without any usable bin are skipped; the number of probes that
// contributed is returned. It is an error if no probe contributes.
func PopulationDelay(accs []*ProbeAccumulator, minTraceroutes int) (*timeseries.Series, int, error) {
	var perProbe []*timeseries.Series
	for _, a := range accs {
		qd, err := a.QueuingDelay(minTraceroutes)
		if err != nil {
			continue
		}
		perProbe = append(perProbe, qd)
	}
	if len(perProbe) == 0 {
		return nil, 0, errors.New("lastmile: no probe produced a usable delay series")
	}
	agg, err := AggregateQueuingDelay(perProbe)
	if err != nil {
		return nil, 0, err
	}
	return agg, len(perProbe), nil
}
