package lastmile

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// Property: PairwiseFromRTTs always yields len(priv)*len(pub) samples and
// each sample equals some pub minus some priv.
func TestPairwiseFromRTTsProperty(t *testing.T) {
	f := func(privRaw, pubRaw []float64) bool {
		priv := clampFinite(privRaw, 3)
		pub := clampFinite(pubRaw, 3)
		samples := PairwiseFromRTTs(priv, pub)
		if len(priv) == 0 || len(pub) == 0 {
			return samples == nil
		}
		if len(samples) != len(priv)*len(pub) {
			return false
		}
		k := 0
		for _, p := range pub {
			for _, q := range priv {
				if samples[k] != p-q {
					return false
				}
				k++
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: shifting every RTT by a constant shifts every pairwise sample
// by zero — the estimator is invariant to absolute RTT level, which is
// what makes it a *last-mile* estimator rather than an end-to-end one.
func TestPairwiseShiftInvariance(t *testing.T) {
	f := func(seed int64, shift float64) bool {
		if math.IsNaN(shift) || math.IsInf(shift, 0) {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		priv := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		pub := []float64{1 + rng.Float64(), 1 + rng.Float64(), 1 + rng.Float64()}
		base := PairwiseFromRTTs(priv, pub)
		sp := make([]float64, 3)
		su := make([]float64, 3)
		for i := range priv {
			sp[i] = priv[i] + shift
			su[i] = pub[i] + shift
		}
		shifted := PairwiseFromRTTs(sp, su)
		for i := range base {
			if math.Abs(base[i]-shifted[i]) > 1e-6*math.Max(1, math.Abs(shift)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// clampFinite keeps up to n finite values.
func clampFinite(xs []float64, n int) []float64 {
	var out []float64
	for _, v := range xs {
		if !math.IsNaN(v) && !math.IsInf(v, 0) {
			out = append(out, v)
			if len(out) == n {
				break
			}
		}
	}
	return out
}

// Property: a probe accumulator fed k>=3 identical-delta traceroutes per
// bin recovers exactly that delta in every bin, for any delta > 0.
func TestAccumulatorRecoversDelta(t *testing.T) {
	start := time.Date(2019, 9, 1, 0, 0, 0, 0, time.UTC)
	f := func(rawDelta float64, rawBins uint8) bool {
		delta := math.Mod(math.Abs(rawDelta), 50)
		if math.IsNaN(delta) || delta == 0 {
			delta = 1
		}
		bins := int(rawBins%20) + 1
		end := start.Add(time.Duration(bins) * DefaultBinWidth)
		acc, err := NewProbeAccumulator(1, start, end, DefaultBinWidth)
		if err != nil {
			return false
		}
		for b := 0; b < bins; b++ {
			for k := 0; k < 3; k++ {
				ts := start.Add(time.Duration(b)*DefaultBinWidth + time.Duration(k)*time.Minute)
				acc.AddSamples(ts, []float64{delta, delta, delta})
			}
		}
		med := acc.MedianRTT(DefaultMinTraceroutes)
		for _, v := range med.Values {
			if math.Abs(v-delta) > 1e-12 {
				return false
			}
		}
		qd, err := acc.QueuingDelay(DefaultMinTraceroutes)
		if err != nil {
			return false
		}
		// Constant series: queuing delay is exactly zero everywhere.
		for _, v := range qd.Values {
			if v != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
