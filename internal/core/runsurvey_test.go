package core

import (
	"math"
	"net/netip"
	"testing"
	"time"

	"github.com/last-mile-congestion/lastmile/internal/bgp"
	"github.com/last-mile-congestion/lastmile/internal/traceroute"
)

var surveyT0 = time.Date(2019, 9, 1, 0, 0, 0, 0, time.UTC)

// mkSurveyTrace builds a 2-hop traceroute with the given last-mile delta.
func mkSurveyTrace(probeID int, ts time.Time, deltaMs float64) *traceroute.Result {
	priv := netip.MustParseAddr("192.168.1.1")
	pub := netip.MustParseAddr("203.0.113.1")
	r := &traceroute.Result{
		ProbeID: probeID, MsmID: 5004, Timestamp: ts, AF: 4,
		SrcAddr: netip.MustParseAddr("192.168.1.10"),
		DstAddr: netip.MustParseAddr("198.41.0.4"),
	}
	h1 := traceroute.HopResult{Hop: 1}
	h2 := traceroute.HopResult{Hop: 2}
	for i := 0; i < 3; i++ {
		h1.Replies = append(h1.Replies, traceroute.Reply{From: priv, RTT: 0.5, TTL: 64})
		h2.Replies = append(h2.Replies, traceroute.Reply{From: pub, RTT: 0.5 + deltaMs, TTL: 254})
	}
	r.Hops = []traceroute.HopResult{h1, h2}
	return r
}

// diurnalResults builds days of traceroutes for nProbes of one AS with a
// 6-hour daily bump of bumpMs.
func diurnalResults(asn bgp.ASN, nProbes, days int, bumpMs float64) []AttributedResult {
	var out []AttributedResult
	end := surveyT0.AddDate(0, 0, days)
	for ts := surveyT0; ts.Before(end); ts = ts.Add(10 * time.Minute) {
		delta := 2.0
		if h := ts.Hour(); h >= 12 && h < 18 {
			delta += bumpMs
		}
		for p := 1; p <= nProbes; p++ {
			out = append(out, AttributedResult{ASN: asn, Result: mkSurveyTrace(int(asn)*100+p, ts, delta)})
		}
	}
	return out
}

func TestRunSurveyClassifies(t *testing.T) {
	results := diurnalResults(64500, 4, 8, 5)
	results = append(results, diurnalResults(64501, 3, 8, 0)...)
	survey, skipped, err := RunSurvey("test", results, SurveyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 0 {
		t.Fatalf("skipped = %v", skipped)
	}
	if survey.Len() != 2 {
		t.Fatalf("Len = %d, want 2", survey.Len())
	}
	congested := survey.Results[64500]
	if congested.Class != Severe {
		t.Fatalf("AS64500 class = %v (amp %.2f), want Severe", congested.Class, congested.DailyAmplitude)
	}
	if congested.Probes != 4 {
		t.Fatalf("AS64500 probes = %d", congested.Probes)
	}
	if flat := survey.Results[64501]; flat.Class != None {
		t.Fatalf("AS64501 class = %v, want None", flat.Class)
	}
}

func TestRunSurveySkipReasons(t *testing.T) {
	results := diurnalResults(64500, 3, 8, 4)
	// An AS whose only traceroute has no public hop: wholly unusable.
	broken := mkSurveyTrace(9001, surveyT0, 2)
	broken.Hops = broken.Hops[:1]
	results = append(results, AttributedResult{ASN: 64999, Result: broken})
	// An AS with one traceroute per bin: below the min-traceroutes bar.
	for ts := surveyT0; ts.Before(surveyT0.AddDate(0, 0, 8)); ts = ts.Add(30 * time.Minute) {
		results = append(results, AttributedResult{ASN: 64998, Result: mkSurveyTrace(9002, ts, 2)})
	}
	survey, skipped, err := RunSurvey("test", results, SurveyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if survey.Len() != 1 {
		t.Fatalf("Len = %d, want 1", survey.Len())
	}
	if len(skipped) != 2 {
		t.Fatalf("skipped = %d entries, want 2", len(skipped))
	}
	// Skips come back in ASN order with distinct reasons.
	if skipped[0].ASN != 64998 || skipped[1].ASN != 64999 {
		t.Fatalf("skipped ASNs = %v, %v", skipped[0].ASN, skipped[1].ASN)
	}
	if skipped[1].Reason != ErrNoUsableData {
		t.Fatalf("AS64999 reason = %v", skipped[1].Reason)
	}
	if skipped[0].Reason == nil || skipped[0].Reason == ErrNoUsableData {
		t.Fatalf("AS64998 reason = %v", skipped[0].Reason)
	}
}

func TestRunSurveyWorkerAndShardEquivalence(t *testing.T) {
	results := diurnalResults(64500, 4, 6, 5)
	results = append(results, diurnalResults(64501, 3, 6, 1.5)...)
	results = append(results, diurnalResults(64502, 3, 6, 0)...)
	base, _, err := RunSurvey("eq", results, SurveyOptions{Workers: 1, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []SurveyOptions{
		{Workers: 8, Shards: 1},
		{Workers: 1, Shards: 8},
		{Workers: 8, Shards: 8},
	} {
		got, _, err := RunSurvey("eq", results, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got.Len() != base.Len() {
			t.Fatalf("%+v: Len %d vs %d", cfg, got.Len(), base.Len())
		}
		for asn, want := range base.Results {
			g := got.Results[asn]
			if g == nil {
				t.Fatalf("%+v: AS%v missing", cfg, asn)
			}
			if g.Class != want.Class || g.Probes != want.Probes {
				t.Fatalf("%+v: AS%v verdict {%v,%d} vs {%v,%d}", cfg, asn, g.Class, g.Probes, want.Class, want.Probes)
			}
			if math.Float64bits(g.DailyAmplitude) != math.Float64bits(want.DailyAmplitude) {
				t.Fatalf("%+v: AS%v amplitude %v vs %v", cfg, asn, g.DailyAmplitude, want.DailyAmplitude)
			}
			for i := range want.Signal.Values {
				if math.Float64bits(g.Signal.Values[i]) != math.Float64bits(want.Signal.Values[i]) {
					t.Fatalf("%+v: AS%v signal[%d] %v vs %v", cfg, asn, i, g.Signal.Values[i], want.Signal.Values[i])
				}
			}
		}
	}
}

// TestRunSurveyShardedEquivalence pins the map-reduce contract at the
// survey layer: splitting the replay across K engines and merging must
// reproduce the single-engine survey bit for bit — verdicts, probe
// counts, amplitudes, and full signals — at every split count.
func TestRunSurveyShardedEquivalence(t *testing.T) {
	results := diurnalResults(64500, 4, 6, 5)
	results = append(results, diurnalResults(64501, 3, 6, 1.5)...)
	results = append(results, diurnalResults(64502, 3, 6, 0)...)
	base, baseSkipped, err := RunSurveySharded("eq", results, 1, SurveyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, split := range []int{2, 8, 1 << 20} { // oversized split clamps to len(results)
		got, skipped, err := RunSurveySharded("eq", results, split, SurveyOptions{})
		if err != nil {
			t.Fatalf("split=%d: %v", split, err)
		}
		if got.Len() != base.Len() || len(skipped) != len(baseSkipped) {
			t.Fatalf("split=%d: Len %d vs %d, skipped %d vs %d",
				split, got.Len(), base.Len(), len(skipped), len(baseSkipped))
		}
		for asn, want := range base.Results {
			g := got.Results[asn]
			if g == nil {
				t.Fatalf("split=%d: AS%v missing", split, asn)
			}
			if g.Class != want.Class || g.Probes != want.Probes {
				t.Fatalf("split=%d: AS%v verdict {%v,%d} vs {%v,%d}",
					split, asn, g.Class, g.Probes, want.Class, want.Probes)
			}
			if math.Float64bits(g.DailyAmplitude) != math.Float64bits(want.DailyAmplitude) {
				t.Fatalf("split=%d: AS%v amplitude %v vs %v", split, asn, g.DailyAmplitude, want.DailyAmplitude)
			}
			for i := range want.Signal.Values {
				if math.Float64bits(g.Signal.Values[i]) != math.Float64bits(want.Signal.Values[i]) {
					t.Fatalf("split=%d: AS%v signal[%d] %v vs %v",
						split, asn, i, g.Signal.Values[i], want.Signal.Values[i])
				}
			}
		}
	}
}

func TestRunSurveyPinnedBounds(t *testing.T) {
	results := diurnalResults(64500, 3, 4, 5)
	start := surveyT0
	end := surveyT0.AddDate(0, 0, 4)
	survey, _, err := RunSurvey("pinned", results, SurveyOptions{Start: start, End: end})
	if err != nil {
		t.Fatal(err)
	}
	r := survey.Results[64500]
	if r == nil {
		t.Fatal("AS64500 missing")
	}
	if !r.Signal.Start.Equal(start) {
		t.Fatalf("signal start = %v, want %v", r.Signal.Start, start)
	}
	if got, want := r.Signal.Len(), int(end.Sub(start)/(30*time.Minute)); got != want {
		t.Fatalf("signal len = %d, want %d", got, want)
	}
}

func TestRunSurveyEmptyInput(t *testing.T) {
	if _, _, err := RunSurvey("empty", nil, SurveyOptions{}); err == nil {
		t.Fatal("want error for empty input")
	}
}
