package core

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"github.com/last-mile-congestion/lastmile/internal/timeseries"
)

func surveyWithSignal(t *testing.T) *Survey {
	t.Helper()
	s := NewSurvey("2019-09")
	sig, err := timeseries.NewSeries(time.Date(2019, 9, 1, 0, 0, 0, 0, time.UTC), 30*time.Minute, 4)
	if err != nil {
		t.Fatal(err)
	}
	copy(sig.Values, []float64{0, 1.5, math.NaN(), 0.25})
	res := &ASResult{ASN: 64500, Probes: 7, Signal: sig}
	res.Class = Mild
	res.IsDaily = true
	res.DailyAmplitude = 1.42
	res.Peak.Freq = 1.0 / 24
	res.Peak.P2P = 1.42
	s.Add(res)

	res2 := &ASResult{ASN: 64501, Probes: 3}
	res2.Class = None
	s.Add(res2)
	return s
}

func TestSurveyJSONRoundTrip(t *testing.T) {
	orig := surveyWithSignal(t)
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSurveyJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Period != "2019-09" || back.Len() != 2 {
		t.Fatalf("survey = %s len %d", back.Period, back.Len())
	}
	r := back.Results[64500]
	if r == nil {
		t.Fatal("missing AS64500")
	}
	if r.Class != Mild || !r.IsDaily || r.Probes != 7 {
		t.Fatalf("result = %+v", r)
	}
	if math.Abs(r.DailyAmplitude-1.42) > 1e-12 || math.Abs(r.Peak.Freq-1.0/24) > 1e-12 {
		t.Fatalf("markers = %v %v", r.DailyAmplitude, r.Peak.Freq)
	}
	if r.Signal == nil || r.Signal.Len() != 4 {
		t.Fatal("signal lost")
	}
	if r.Signal.Values[1] != 1.5 {
		t.Fatalf("signal[1] = %v", r.Signal.Values[1])
	}
	if !math.IsNaN(r.Signal.Values[2]) {
		t.Fatal("gap bin must survive as NaN")
	}
	if r.Signal.Step != 30*time.Minute {
		t.Fatalf("step = %v", r.Signal.Step)
	}
	// Signal-less result stays signal-less.
	if back.Results[64501].Signal != nil {
		t.Fatal("AS64501 should have no signal")
	}
}

func TestSurveyJSONIsStable(t *testing.T) {
	// Two serialisations of the same survey are byte-identical (sorted
	// AS order), so survey files diff cleanly.
	s := surveyWithSignal(t)
	var a, b bytes.Buffer
	if err := s.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("serialisation not deterministic")
	}
}

func TestReadSurveyJSONErrors(t *testing.T) {
	cases := []string{
		`{not json`,
		`{"version":9,"period":"x","results":[]}`,
		`{"version":1,"results":[]}`,
		`{"version":1,"period":"x","results":[{"asn":1,"class":"Bogus"}]}`,
	}
	for _, c := range cases {
		if _, err := ReadSurveyJSON(strings.NewReader(c)); err == nil {
			t.Errorf("input %q: want error", c)
		}
	}
}

func TestClassFromString(t *testing.T) {
	for _, c := range []Class{None, Low, Mild, Severe} {
		back, err := classFromString(c.String())
		if err != nil || back != c {
			t.Fatalf("round trip %v: %v %v", c, back, err)
		}
	}
}
