package core

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"github.com/last-mile-congestion/lastmile/internal/timeseries"
)

// probeDelaySeries builds one probe's queuing-delay series with a daily
// sinusoid of the given amplitude plus noise.
func probeDelaySeries(p2p, noise float64, seed int64) *timeseries.Series {
	s, _ := timeseries.NewSeries(time.Date(2019, 9, 1, 0, 0, 0, 0, time.UTC), 30*time.Minute, 720)
	rng := rand.New(rand.NewSource(seed))
	for i := range s.Values {
		hours := float64(i) / 2
		s.Values[i] = p2p/2*(1+math.Sin(2*math.Pi*hours/24)) + math.Abs(rng.NormFloat64())*noise
	}
	return s
}

func TestBootstrapHomogeneousPopulation(t *testing.T) {
	// All probes agree: tight CI, perfect class stability.
	var pop []*timeseries.Series
	for p := 0; p < 10; p++ {
		pop = append(pop, probeDelaySeries(4.0, 0.1, int64(p)))
	}
	r, err := BootstrapAmplitude(pop, BootstrapOptions{Iterations: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Class != Severe {
		t.Fatalf("class = %v", r.Class)
	}
	if r.ClassStability < 0.95 {
		t.Fatalf("stability = %v, want ~1 for homogeneous probes", r.ClassStability)
	}
	if r.CI90High-r.CI90Low > 0.5 {
		t.Fatalf("CI width = %v, want tight", r.CI90High-r.CI90Low)
	}
	if r.CI90Low > r.Amplitude || r.CI90High < r.Amplitude {
		t.Fatalf("point %.2f outside CI [%.2f, %.2f]", r.Amplitude, r.CI90Low, r.CI90High)
	}
}

func TestBootstrapSplitPopulation(t *testing.T) {
	// Half the probes congested, half clean — §5's worry made concrete.
	// The verdict must be visibly unstable compared to the homogeneous
	// case.
	var pop []*timeseries.Series
	for p := 0; p < 4; p++ {
		pop = append(pop, probeDelaySeries(4.0, 0.1, int64(p)))
	}
	for p := 4; p < 8; p++ {
		pop = append(pop, probeDelaySeries(0.0, 0.1, int64(p)))
	}
	r, err := BootstrapAmplitude(pop, BootstrapOptions{Iterations: 200, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r.ClassStability > 0.9 {
		t.Fatalf("stability = %v, want visibly unstable for a split population", r.ClassStability)
	}
	if r.CI90High-r.CI90Low < 0.5 {
		t.Fatalf("CI width = %v, want wide", r.CI90High-r.CI90Low)
	}
}

func TestBootstrapErrors(t *testing.T) {
	if _, err := BootstrapAmplitude(nil, BootstrapOptions{}); err == nil {
		t.Fatal("empty population must error")
	}
	// An all-gap probe cannot be aggregated into a classifiable signal.
	s, _ := timeseries.NewSeries(time.Date(2019, 9, 1, 0, 0, 0, 0, time.UTC), 30*time.Minute, 720)
	if _, err := BootstrapAmplitude([]*timeseries.Series{s}, BootstrapOptions{Iterations: 5}); err == nil {
		t.Fatal("unclassifiable population must error")
	}
}

func TestBootstrapString(t *testing.T) {
	r := &BootstrapResult{Class: Mild, Amplitude: 1.5, CI90Low: 1.2, CI90High: 1.8, ClassStability: 0.87}
	s := r.String()
	if !strings.Contains(s, "Mild") || !strings.Contains(s, "1.50") || !strings.Contains(s, "87%") {
		t.Fatalf("string = %q", s)
	}
}

func TestBootstrapDeterministic(t *testing.T) {
	var pop []*timeseries.Series
	for p := 0; p < 5; p++ {
		pop = append(pop, probeDelaySeries(1.5, 0.3, int64(p)))
	}
	a, err := BootstrapAmplitude(pop, BootstrapOptions{Iterations: 50, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := BootstrapAmplitude(pop, BootstrapOptions{Iterations: 50, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.CI90Low != b.CI90Low || a.CI90High != b.CI90High || a.ClassStability != b.ClassStability {
		t.Fatal("bootstrap not deterministic for equal seeds")
	}
}
