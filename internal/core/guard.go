package core

import (
	"errors"
	"math"

	"github.com/last-mile-congestion/lastmile/internal/timeseries"
)

// §6 of the paper recommends that latency-based inference (geolocation,
// proximity estimation, SLA verification) avoid measurements taken from
// congestion-affected probes during peak hours. PeakHourMask implements
// that recommendation as a reusable primitive: given an AS's aggregated
// queuing-delay signal and its classification, it marks the bins a delay
// study should exclude.

// GuardOptions tunes PeakHourMask.
type GuardOptions struct {
	// DelayThresholdMs marks any bin whose aggregated queuing delay
	// exceeds it. Zero selects half the classifier's Low threshold
	// (0.25 ms with defaults) — inference error grows well before an AS
	// earns a congestion report.
	DelayThresholdMs float64
	// PadBins extends each masked run by this many bins on both sides,
	// covering congestion onset and drain (default 1).
	PadBins int
}

// DefaultGuardOptions returns the recommended configuration.
func DefaultGuardOptions() GuardOptions {
	return GuardOptions{DelayThresholdMs: DefaultThresholds().Low / 2, PadBins: 1}
}

// PeakHourMask returns one boolean per signal bin: true means delay
// measurements from this AS in this bin should not feed latency-based
// inference. Uncongested ASes (class None) yield an all-false mask —
// their fluctuations are noise, not congestion. Gap bins are masked for
// congested ASes (absence of data during congestion windows is itself
// suspect) and unmasked for clean ones.
func PeakHourMask(signal *timeseries.Series, cls Classification, opts GuardOptions) ([]bool, error) {
	if signal == nil || signal.Len() == 0 {
		return nil, errors.New("core: empty signal")
	}
	mask := make([]bool, signal.Len())
	if !cls.Class.Reported() {
		return mask, nil
	}
	threshold := opts.DelayThresholdMs
	if threshold <= 0 {
		threshold = DefaultThresholds().Low / 2
	}
	for i, v := range signal.Values {
		if math.IsNaN(v) || v > threshold {
			mask[i] = true
		}
	}
	pad := opts.PadBins
	if pad < 0 {
		pad = 0
	}
	if pad > 0 {
		padded := make([]bool, len(mask))
		copy(padded, mask)
		for i, m := range mask {
			if !m {
				continue
			}
			for d := -pad; d <= pad; d++ {
				if j := i + d; j >= 0 && j < len(padded) {
					padded[j] = true
				}
			}
		}
		mask = padded
	}
	return mask, nil
}

// MaskedFraction returns the share of bins a mask excludes.
func MaskedFraction(mask []bool) float64 {
	if len(mask) == 0 {
		return 0
	}
	n := 0
	for _, m := range mask {
		if m {
			n++
		}
	}
	return float64(n) / float64(len(mask))
}
