package core

import (
	"math"
	"testing"
	"time"

	"github.com/last-mile-congestion/lastmile/internal/timeseries"
)

func guardSignal(t *testing.T, vals []float64) *timeseries.Series {
	t.Helper()
	s, err := timeseries.NewSeries(time.Date(2019, 9, 1, 0, 0, 0, 0, time.UTC), 30*time.Minute, len(vals))
	if err != nil {
		t.Fatal(err)
	}
	copy(s.Values, vals)
	return s
}

func TestPeakHourMaskCongested(t *testing.T) {
	s := guardSignal(t, []float64{0, 0, 0.1, 2.0, 3.0, 0.1, 0, 0})
	cls := Classification{Class: Mild}
	mask, err := PeakHourMask(s, cls, GuardOptions{DelayThresholdMs: 0.5, PadBins: 0})
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{false, false, false, true, true, false, false, false}
	for i := range want {
		if mask[i] != want[i] {
			t.Fatalf("mask = %v, want %v", mask, want)
		}
	}
}

func TestPeakHourMaskPadding(t *testing.T) {
	s := guardSignal(t, []float64{0, 0, 0, 2.0, 0, 0, 0})
	cls := Classification{Class: Severe}
	mask, err := PeakHourMask(s, cls, GuardOptions{DelayThresholdMs: 0.5, PadBins: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{false, false, true, true, true, false, false}
	for i := range want {
		if mask[i] != want[i] {
			t.Fatalf("mask = %v, want %v", mask, want)
		}
	}
}

func TestPeakHourMaskUncongestedAllClear(t *testing.T) {
	s := guardSignal(t, []float64{0, 5, 0, 5}) // noisy but class None
	mask, err := PeakHourMask(s, Classification{Class: None}, DefaultGuardOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range mask {
		if m {
			t.Fatalf("bin %d masked for an uncongested AS", i)
		}
	}
}

func TestPeakHourMaskGapsAreSuspect(t *testing.T) {
	s := guardSignal(t, []float64{0, math.NaN(), 0})
	mask, err := PeakHourMask(s, Classification{Class: Low}, GuardOptions{DelayThresholdMs: 0.5, PadBins: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !mask[1] {
		t.Fatal("gap bin in a congested AS should be masked")
	}
}

func TestPeakHourMaskDefaults(t *testing.T) {
	// Zero options pick half the Low threshold (0.25 ms).
	s := guardSignal(t, []float64{0.3, 0.2, 0.3, 0.1})
	mask, err := PeakHourMask(s, Classification{Class: Low}, GuardOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !mask[0] {
		t.Fatal("0.3 ms should exceed the default 0.25 ms threshold")
	}
}

func TestPeakHourMaskErrors(t *testing.T) {
	if _, err := PeakHourMask(nil, Classification{}, GuardOptions{}); err == nil {
		t.Fatal("want error for nil signal")
	}
}

func TestMaskedFraction(t *testing.T) {
	if MaskedFraction(nil) != 0 {
		t.Fatal("empty mask")
	}
	if got := MaskedFraction([]bool{true, false, true, false}); got != 0.5 {
		t.Fatalf("fraction = %v", got)
	}
}

func TestGuardEndToEnd(t *testing.T) {
	// A severe daily signal: the mask should cover roughly the peak
	// hours (plus padding) and only them.
	s, err := timeseries.NewSeries(time.Date(2019, 9, 1, 0, 0, 0, 0, time.UTC), 30*time.Minute, 720)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s.Values {
		hour := (i / 2) % 24
		if hour >= 20 && hour < 23 {
			s.Values[i] = 4
		} else {
			s.Values[i] = 0.05
		}
	}
	cls, err := Classify(s, DefaultClassifierOptions())
	if err != nil {
		t.Fatal(err)
	}
	if cls.Class == None {
		t.Fatalf("class = %v", cls.Class)
	}
	mask, err := PeakHourMask(s, cls, DefaultGuardOptions())
	if err != nil {
		t.Fatal(err)
	}
	frac := MaskedFraction(mask)
	// 3 of 24 hours + padding ≈ 12.5%-21%.
	if frac < 0.1 || frac > 0.3 {
		t.Fatalf("masked fraction = %v", frac)
	}
}
