package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"github.com/last-mile-congestion/lastmile/internal/bgp"
	"github.com/last-mile-congestion/lastmile/internal/timeseries"
)

// Survey persistence: surveys serialise to a stable JSON schema so the
// expensive measurement step can run once and the derived figures
// (Fig. 3, Fig. 4, the headline table) re-render from disk — the same
// role as the paper's public results server.

// surveyJSON is the on-disk schema.
type surveyJSON struct {
	// Version guards future schema changes.
	Version int            `json:"version"`
	Period  string         `json:"period"`
	Results []asResultJSON `json:"results"`
}

type asResultJSON struct {
	ASN            uint32      `json:"asn"`
	Probes         int         `json:"probes"`
	Class          string      `json:"class"`
	IsDaily        bool        `json:"daily_prominent"`
	DailyAmplitude float64     `json:"daily_amplitude_ms"`
	PeakFreq       float64     `json:"peak_freq_cph"`
	PeakP2P        float64     `json:"peak_p2p_ms"`
	Signal         *seriesJSON `json:"signal,omitempty"`
}

type seriesJSON struct {
	StartUnix int64 `json:"start_unix"`
	StepSec   int64 `json:"step_sec"`
	// Values holds the bins; gaps are null.
	Values []*float64 `json:"values"`
}

// classFromString is the inverse of Class.String.
func classFromString(s string) (Class, error) {
	switch s {
	case "None":
		return None, nil
	case "Low":
		return Low, nil
	case "Mild":
		return Mild, nil
	case "Severe":
		return Severe, nil
	default:
		return None, fmt.Errorf("core: unknown class %q", s)
	}
}

func seriesToJSON(s *timeseries.Series) *seriesJSON {
	if s == nil {
		return nil
	}
	out := &seriesJSON{
		StartUnix: s.Start.Unix(),
		StepSec:   int64(s.Step / time.Second),
		Values:    make([]*float64, len(s.Values)),
	}
	for i, v := range s.Values {
		if !math.IsNaN(v) {
			val := v
			out.Values[i] = &val
		}
	}
	return out
}

func seriesFromJSON(sj *seriesJSON) (*timeseries.Series, error) {
	if sj == nil {
		return nil, nil
	}
	s, err := timeseries.NewSeries(
		time.Unix(sj.StartUnix, 0).UTC(),
		time.Duration(sj.StepSec)*time.Second,
		len(sj.Values),
	)
	if err != nil {
		return nil, err
	}
	for i, v := range sj.Values {
		if v != nil {
			s.Values[i] = *v
		}
	}
	return s, nil
}

// WriteJSON serialises the survey. Signals are included so figures can
// re-render; classifications are stored as their derived markers (class,
// daily amplitude, prominent peak) — the periodogram itself is
// recomputable from the signal and is not stored.
func (s *Survey) WriteJSON(w io.Writer) error {
	out := surveyJSON{Version: 1, Period: s.Period}
	for _, asn := range s.ASNs() {
		r := s.Results[asn]
		out.Results = append(out.Results, asResultJSON{
			ASN:            uint32(r.ASN),
			Probes:         r.Probes,
			Class:          r.Class.String(),
			IsDaily:        r.IsDaily,
			DailyAmplitude: r.DailyAmplitude,
			PeakFreq:       r.Peak.Freq,
			PeakP2P:        r.Peak.P2P,
			Signal:         seriesToJSON(r.Signal),
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// ReadSurveyJSON deserialises a survey written by WriteJSON.
func ReadSurveyJSON(r io.Reader) (*Survey, error) {
	var sj surveyJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&sj); err != nil {
		return nil, fmt.Errorf("core: survey json: %w", err)
	}
	if sj.Version != 1 {
		return nil, fmt.Errorf("core: unsupported survey schema version %d", sj.Version)
	}
	if sj.Period == "" {
		return nil, errors.New("core: survey json missing period")
	}
	out := NewSurvey(sj.Period)
	for _, rj := range sj.Results {
		cls, err := classFromString(rj.Class)
		if err != nil {
			return nil, err
		}
		signal, err := seriesFromJSON(rj.Signal)
		if err != nil {
			return nil, err
		}
		res := &ASResult{
			ASN:    bgp.ASN(rj.ASN),
			Probes: rj.Probes,
			Signal: signal,
		}
		res.Class = cls
		res.IsDaily = rj.IsDaily
		res.DailyAmplitude = rj.DailyAmplitude
		res.Peak.Freq = rj.PeakFreq
		res.Peak.P2P = rj.PeakP2P
		out.Add(res)
	}
	return out, nil
}
