package core

import (
	"math"
	"testing"

	"github.com/last-mile-congestion/lastmile/internal/telemetry"
)

// TestRunSurveyMetricsEquivalence pins the observation-only contract of
// the survey instrumentation: RunSurvey with a caller-supplied registry
// must produce bit-identical results to a run on its private default
// registry. If a telemetry hook ever perturbs the pipeline, this fails.
func TestRunSurveyMetricsEquivalence(t *testing.T) {
	results := diurnalResults(64500, 4, 6, 5)
	results = append(results, diurnalResults(64501, 3, 6, 0)...)

	base, baseSkipped, err := RunSurvey("eq", results, SurveyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	got, gotSkipped, err := RunSurvey("eq", results, SurveyOptions{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}

	if got.Len() != base.Len() || len(gotSkipped) != len(baseSkipped) {
		t.Fatalf("shape: %d/%d results, %d/%d skipped",
			got.Len(), base.Len(), len(gotSkipped), len(baseSkipped))
	}
	for asn, want := range base.Results {
		g := got.Results[asn]
		if g == nil {
			t.Fatalf("AS%v missing from instrumented run", asn)
		}
		if g.Class != want.Class || g.Probes != want.Probes {
			t.Fatalf("AS%v verdict {%v,%d} vs {%v,%d}", asn, g.Class, g.Probes, want.Class, want.Probes)
		}
		if math.Float64bits(g.DailyAmplitude) != math.Float64bits(want.DailyAmplitude) {
			t.Fatalf("AS%v amplitude %v vs %v", asn, g.DailyAmplitude, want.DailyAmplitude)
		}
		for i := range want.Signal.Values {
			if math.Float64bits(g.Signal.Values[i]) != math.Float64bits(want.Signal.Values[i]) {
				t.Fatalf("AS%v signal[%d] %v vs %v", asn, i, g.Signal.Values[i], want.Signal.Values[i])
			}
		}
	}

	// The shared registry really did observe the run: the survey stage
	// timers and the engine ingest counters it passes through must be
	// populated.
	var feedSeen, ingestSeen bool
	for _, snap := range reg.Snapshot() {
		switch {
		case snap.Name == "survey_feed_seconds" && snap.Count >= 1:
			feedSeen = true
		case snap.Name == `engine_ingest_total{shard="0"}` && snap.Value >= 1:
			ingestSeen = true
		}
	}
	if !feedSeen || !ingestSeen {
		t.Fatalf("shared registry missing survey/engine series (feed=%v ingest=%v)", feedSeen, ingestSeen)
	}
}
