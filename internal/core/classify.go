// Package core implements the paper's persistent-congestion detector
// (§2.3) and the survey bookkeeping built on it (§3): aggregated
// queuing-delay signals are transformed with the Welch method, the
// prominent frequency component is located, and ASes whose prominent
// component is the daily cycle are classified Severe / Mild / Low by the
// average peak-to-peak amplitude of that cycle.
package core

import (
	"errors"
	"fmt"
	"math"

	"github.com/last-mile-congestion/lastmile/internal/dsp"
	"github.com/last-mile-congestion/lastmile/internal/timeseries"
)

// DailyFreq is the frequency of a daily cycle in cycles per hour, the
// x = 1/24 line of Figures 2 and 3.
const DailyFreq = 1.0 / 24.0

// Class is a persistent-congestion severity class.
type Class int

// The paper's four classes (§2.3), ordered by severity.
const (
	// None: no prominent daily pattern, or daily amplitude below the Low
	// threshold.
	None Class = iota
	// Low: prominent daily pattern with amplitude over 0.5 ms.
	Low
	// Mild: prominent daily pattern with amplitude over 1 ms.
	Mild
	// Severe: prominent daily pattern with amplitude over 3 ms.
	Severe
)

// String returns the class name as used in the paper.
func (c Class) String() string {
	switch c {
	case None:
		return "None"
	case Low:
		return "Low"
	case Mild:
		return "Mild"
	case Severe:
		return "Severe"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Reported reports whether the class indicates persistent congestion
// (anything but None); the paper calls such ASes "reported".
func (c Class) Reported() bool { return c != None }

// Thresholds holds the amplitude cut-offs in milliseconds.
type Thresholds struct {
	Low, Mild, Severe float64
}

// DefaultThresholds returns the paper's 0.5 / 1 / 3 ms cut-offs, chosen
// to focus on the tail of the amplitude distribution (≈83% of ASes sit
// below 0.5 ms).
func DefaultThresholds() Thresholds {
	return Thresholds{Low: 0.5, Mild: 1, Severe: 3}
}

// Validate checks that the thresholds are positive, finite, and
// ordered. NaN must be rejected explicitly: NaN fails every ordered
// comparison, so a NaN threshold would otherwise slip through the
// ordering check and silently classify everything as None.
func (t Thresholds) Validate() error {
	if math.IsNaN(t.Low) || math.IsNaN(t.Mild) || math.IsNaN(t.Severe) {
		return fmt.Errorf("core: thresholds must not be NaN, got %+v", t)
	}
	if t.Low <= 0 || t.Mild <= t.Low || t.Severe <= t.Mild {
		return fmt.Errorf("core: thresholds must satisfy 0 < Low < Mild < Severe, got %+v", t)
	}
	return nil
}

// isZero reports whether no threshold was set. Each field is compared to
// the 0 zero-value sentinel individually rather than comparing the whole
// struct with ==, which would be NaN-unsafe; a NaN field reads as "set"
// and is then rejected by Validate.
func (t Thresholds) isZero() bool {
	return t.Low == 0 && t.Mild == 0 && t.Severe == 0
}

// classify maps a daily amplitude to a class. A NaN amplitude fails
// every ordered comparison and deliberately lands on None: an
// uncomputable amplitude must not report congestion (§2.3's thresholds
// only promote an AS on positive evidence).
func (t Thresholds) classify(amp float64, isDaily bool) Class {
	if !isDaily || math.IsNaN(amp) {
		return None
	}
	switch {
	case amp > t.Severe:
		return Severe
	case amp > t.Mild:
		return Mild
	case amp > t.Low:
		return Low
	default:
		return None
	}
}

// ClassifierOptions configures Classify.
type ClassifierOptions struct {
	// Welch configures the spectral estimate; the zero value selects
	// dsp.WelchDefaults.
	Welch dsp.WelchOptions
	// Thresholds are the class cut-offs; the zero value selects
	// DefaultThresholds.
	Thresholds Thresholds
	// MaxGapFrac is the largest fraction of gap bins tolerated before a
	// signal is rejected as too sparse to classify (default 0.5).
	MaxGapFrac float64
}

// DefaultClassifierOptions returns the paper pipeline's configuration.
func DefaultClassifierOptions() ClassifierOptions {
	return ClassifierOptions{
		Welch:      dsp.WelchDefaults(),
		Thresholds: DefaultThresholds(),
		MaxGapFrac: 0.5,
	}
}

// Classification is the detector's verdict on one aggregated signal.
type Classification struct {
	// Class is the severity class.
	Class Class
	// Peak is the prominent (largest non-DC) spectral component.
	Peak dsp.Peak
	// IsDaily reports whether the prominent component is the daily bin.
	IsDaily bool
	// DailyAmplitude is the average peak-to-peak amplitude (ms) at the
	// daily frequency bin, regardless of whether it is prominent. This
	// is what Fig. 3 (bottom) distributes.
	DailyAmplitude float64
	// Periodogram is the underlying Welch estimate (Fig. 2).
	Periodogram *dsp.Periodogram
}

// Classify runs the §2.3 detector on an aggregated queuing-delay signal.
// Gap bins are linearly interpolated before the transform; signals with
// more than MaxGapFrac gaps are rejected.
func Classify(signal *timeseries.Series, opts ClassifierOptions) (Classification, error) {
	if signal == nil || signal.Len() == 0 {
		return Classification{}, errors.New("core: empty signal")
	}
	if opts.Thresholds.isZero() {
		opts.Thresholds = DefaultThresholds()
	}
	if err := opts.Thresholds.Validate(); err != nil {
		return Classification{}, err
	}
	if opts.Welch.SegmentLength == 0 && opts.Welch.Window == dsp.Boxcar {
		opts.Welch = dsp.WelchDefaults()
	}
	maxGap := opts.MaxGapFrac
	if maxGap == 0 {
		maxGap = 0.5
	}
	if frac := float64(signal.GapCount()) / float64(signal.Len()); frac > maxGap {
		return Classification{}, fmt.Errorf("core: %.0f%% of bins are gaps (max %.0f%%)", frac*100, maxGap*100)
	}
	filled, err := dsp.Interpolate(signal.Values)
	if err != nil {
		return Classification{}, err
	}
	pg, err := dsp.Welch(filled, signal.SampleRatePerHour(), opts.Welch)
	if err != nil {
		return Classification{}, err
	}
	peak, ok := pg.ProminentPeak()
	if !ok {
		return Classification{}, errors.New("core: periodogram has no non-DC bin")
	}
	dailyAmp, dailyBin, ok := pg.AmplitudeAt(DailyFreq)
	if !ok {
		return Classification{}, errors.New("core: daily frequency outside spectrum")
	}
	isDaily := peak.Bin == dailyBin
	cls := opts.Thresholds.classify(dailyAmp, isDaily)
	return Classification{
		Class:          cls,
		Peak:           peak,
		IsDaily:        isDaily,
		DailyAmplitude: dailyAmp,
		Periodogram:    pg,
	}, nil
}
