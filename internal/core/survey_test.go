package core

import (
	"math"
	"testing"

	"github.com/last-mile-congestion/lastmile/internal/apnic"
	"github.com/last-mile-congestion/lastmile/internal/bgp"
)

func mkSurvey(period string, classes map[bgp.ASN]Class) *Survey {
	s := NewSurvey(period)
	for asn, c := range classes {
		s.Add(&ASResult{ASN: asn, Probes: 5, Classification: Classification{Class: c}})
	}
	return s
}

func testRanking(t *testing.T) *apnic.Ranking {
	t.Helper()
	r, err := apnic.NewRanking([]apnic.Estimate{
		{ASN: 1, CC: "JP", Users: 10_000_000},
		{ASN: 2, CC: "US", Users: 9_000_000},
		{ASN: 3, CC: "JP", Users: 8_000_000},
		{ASN: 4, CC: "DE", Users: 7_000_000},
		{ASN: 5, CC: "US", Users: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestSurveyCounts(t *testing.T) {
	s := mkSurvey("2019-09", map[bgp.ASN]Class{
		1: Severe, 2: Mild, 3: None, 4: Low, 5: None,
	})
	if s.Len() != 5 {
		t.Fatalf("len = %d", s.Len())
	}
	counts := s.CountByClass()
	if counts[None] != 2 || counts[Severe] != 1 || counts[Mild] != 1 || counts[Low] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	reported := s.ReportedASes()
	if len(reported) != 3 {
		t.Fatalf("reported = %v", reported)
	}
	// Sorted ascending.
	for i := 1; i < len(reported); i++ {
		if reported[i-1] >= reported[i] {
			t.Fatalf("not sorted: %v", reported)
		}
	}
	if got := s.ASNs(); len(got) != 5 || got[0] != 1 {
		t.Fatalf("asns = %v", got)
	}
}

func TestSurveyAddReplaces(t *testing.T) {
	s := NewSurvey("p")
	s.Add(&ASResult{ASN: 1, Classification: Classification{Class: None}})
	s.Add(&ASResult{ASN: 1, Classification: Classification{Class: Severe}})
	if s.Len() != 1 {
		t.Fatalf("len = %d", s.Len())
	}
	if s.Results[1].Class != Severe {
		t.Fatal("second add should replace")
	}
}

func TestBreakdownByBucket(t *testing.T) {
	s := mkSurvey("2019-09", map[bgp.ASN]Class{
		1: Severe, // rank 1  -> bucket 1-10
		2: None,   // rank 2  -> bucket 1-10
		3: Mild,   // rank 3  -> bucket 1-10
		4: None,   // rank 4  -> bucket 1-10
		9: Low,    // unranked -> bucket >10k
	})
	bb := BreakdownByBucket(s, testRanking(t))
	if bb.Totals[apnic.Bucket1to10] != 4 {
		t.Fatalf("bucket 1-10 total = %d", bb.Totals[apnic.Bucket1to10])
	}
	if bb.Counts[apnic.Bucket1to10][Severe] != 1 || bb.Counts[apnic.Bucket1to10][Mild] != 1 {
		t.Fatalf("bucket counts = %v", bb.Counts[apnic.Bucket1to10])
	}
	if bb.Totals[apnic.BucketOver10k] != 1 || bb.Counts[apnic.BucketOver10k][Low] != 1 {
		t.Fatal("unranked AS should land in the >10k bucket")
	}
	if p := bb.Percent(apnic.Bucket1to10, Severe); p != 25 {
		t.Fatalf("percent = %v", p)
	}
	if p := bb.Percent(apnic.Bucket101to1k, Severe); p != 0 {
		t.Fatalf("empty bucket percent = %v", p)
	}
}

func TestBreakdownByCountry(t *testing.T) {
	s1 := mkSurvey("a", map[bgp.ASN]Class{1: Severe, 2: Mild, 3: None, 4: None})
	s2 := mkSurvey("b", map[bgp.ASN]Class{1: Severe, 2: None, 3: Severe, 4: Low})
	gb := BreakdownByCountry([]*Survey{s1, s2}, testRanking(t))
	// JP severe reports: AS1 twice + AS3 once = 3; US: 0; total severe = 3.
	if gb.Severe["JP"] != 3 {
		t.Fatalf("JP severe = %d", gb.Severe["JP"])
	}
	if got := gb.SevereShare("JP"); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("JP severe share = %v", got)
	}
	if gb.Monitored["JP"] != 4 { // AS1+AS3 in two surveys
		t.Fatalf("JP monitored = %d", gb.Monitored["JP"])
	}
	reported, severe := gb.CountriesWithReports()
	// Reported countries: JP (AS1, AS3), US (AS2 in s1), DE (AS4 in s2).
	if reported != 3 {
		t.Fatalf("reported countries = %d", reported)
	}
	if severe != 1 {
		t.Fatalf("severe countries = %d", severe)
	}
}

func TestBreakdownUnknownCountry(t *testing.T) {
	s := mkSurvey("a", map[bgp.ASN]Class{42: Severe})
	gb := BreakdownByCountry([]*Survey{s}, testRanking(t))
	if gb.Severe["??"] != 1 {
		t.Fatalf("unknown country severe = %v", gb.Severe)
	}
}

func TestSevereShareNoSevere(t *testing.T) {
	s := mkSurvey("a", map[bgp.ASN]Class{1: None})
	gb := BreakdownByCountry([]*Survey{s}, testRanking(t))
	if gb.SevereShare("JP") != 0 {
		t.Fatal("no severe reports: share must be 0")
	}
}

func TestChurn(t *testing.T) {
	s1 := mkSurvey("a", map[bgp.ASN]Class{1: Severe, 2: Mild, 3: None})
	s2 := mkSurvey("b", map[bgp.ASN]Class{1: Low, 2: None, 3: None})
	s3 := mkSurvey("c", map[bgp.ASN]Class{1: Mild, 2: None, 3: Low})
	surveys := []*Survey{s1, s2, s3}
	churn := Churn(surveys)
	if churn[1] != 3 || churn[2] != 1 || churn[3] != 1 {
		t.Fatalf("churn = %v", churn)
	}
	if got := ReportedAtLeast(surveys, 2); got != 1 {
		t.Fatalf("reported >= 2 periods: %d, want 1 (AS1)", got)
	}
	if got := ReportedAtLeast(surveys, 1); got != 3 {
		t.Fatalf("reported >= 1: %d", got)
	}
}

func TestAverageReported(t *testing.T) {
	s1 := mkSurvey("a", map[bgp.ASN]Class{1: Severe, 2: Mild})
	s2 := mkSurvey("b", map[bgp.ASN]Class{1: Low})
	avg, err := AverageReported([]*Survey{s1, s2})
	if err != nil {
		t.Fatal(err)
	}
	if avg != 1.5 {
		t.Fatalf("avg = %v", avg)
	}
	if _, err := AverageReported(nil); err != ErrNoSurveys {
		t.Fatalf("err = %v", err)
	}
}
