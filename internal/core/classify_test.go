package core

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/last-mile-congestion/lastmile/internal/timeseries"
)

var t0 = time.Date(2019, 9, 1, 0, 0, 0, 0, time.UTC)

// delaySignal builds a 15-day, 30-minute-bin queuing-delay series with a
// daily sinusoid of the given peak-to-peak amplitude plus noise.
func delaySignal(t *testing.T, p2p, noise float64, seed int64) *timeseries.Series {
	t.Helper()
	s, err := timeseries.NewSeries(t0, 30*time.Minute, 720)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	for i := range s.Values {
		hours := float64(i) / 2
		v := p2p/2*(1+math.Sin(2*math.Pi*hours/24)) + math.Abs(rng.NormFloat64())*noise
		s.Values[i] = v
	}
	return s
}

func TestClassString(t *testing.T) {
	cases := map[Class]string{None: "None", Low: "Low", Mild: "Mild", Severe: "Severe", Class(9): "Class(9)"}
	for c, want := range cases {
		if c.String() != want {
			t.Errorf("%d.String() = %q", c, c.String())
		}
	}
	if None.Reported() || !Severe.Reported() {
		t.Error("Reported misbehaves")
	}
}

func TestThresholdsValidate(t *testing.T) {
	if err := DefaultThresholds().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Thresholds{
		{Low: 0, Mild: 1, Severe: 3},
		{Low: 1, Mild: 0.5, Severe: 3},
		{Low: 0.5, Mild: 1, Severe: 1},
	}
	for _, th := range bad {
		if err := th.Validate(); err == nil {
			t.Errorf("thresholds %+v should be invalid", th)
		}
	}
}

func TestClassifySevere(t *testing.T) {
	s := delaySignal(t, 5.0, 0.2, 1)
	c, err := Classify(s, DefaultClassifierOptions())
	if err != nil {
		t.Fatal(err)
	}
	if c.Class != Severe {
		t.Fatalf("class = %v (amp %v), want Severe", c.Class, c.DailyAmplitude)
	}
	if !c.IsDaily {
		t.Fatal("peak should be daily")
	}
	if c.DailyAmplitude < 3.5 || c.DailyAmplitude > 6.5 {
		t.Fatalf("daily amplitude = %v, want ~5", c.DailyAmplitude)
	}
}

func TestClassifyMild(t *testing.T) {
	s := delaySignal(t, 1.8, 0.1, 2)
	c, err := Classify(s, DefaultClassifierOptions())
	if err != nil {
		t.Fatal(err)
	}
	if c.Class != Mild {
		t.Fatalf("class = %v (amp %v), want Mild", c.Class, c.DailyAmplitude)
	}
}

func TestClassifyLow(t *testing.T) {
	s := delaySignal(t, 0.75, 0.05, 3)
	c, err := Classify(s, DefaultClassifierOptions())
	if err != nil {
		t.Fatal(err)
	}
	if c.Class != Low {
		t.Fatalf("class = %v (amp %v), want Low", c.Class, c.DailyAmplitude)
	}
}

func TestClassifyNoneFlat(t *testing.T) {
	// ISP_DE-style: pure noise, no daily pattern.
	s := delaySignal(t, 0, 0.15, 4)
	c, err := Classify(s, DefaultClassifierOptions())
	if err != nil {
		t.Fatal(err)
	}
	if c.Class != None {
		t.Fatalf("class = %v (amp %v, daily %v), want None", c.Class, c.DailyAmplitude, c.IsDaily)
	}
}

func TestClassifyNoneSubThresholdDaily(t *testing.T) {
	// A clear daily pattern below 0.5 ms is still None.
	s := delaySignal(t, 0.3, 0.02, 5)
	c, err := Classify(s, DefaultClassifierOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !c.IsDaily {
		t.Fatal("0.3 ms daily pattern should still be the prominent peak")
	}
	if c.Class != None {
		t.Fatalf("class = %v, want None below threshold", c.Class)
	}
}

func TestClassifyNonDailyPeriodicity(t *testing.T) {
	// A strong 6-hour cycle: prominent peak is not daily, class None.
	s, _ := timeseries.NewSeries(t0, 30*time.Minute, 720)
	rng := rand.New(rand.NewSource(6))
	for i := range s.Values {
		hours := float64(i) / 2
		s.Values[i] = 2 * (1 + math.Sin(2*math.Pi*hours/6)) / 2
		s.Values[i] += math.Abs(rng.NormFloat64()) * 0.05
	}
	c, err := Classify(s, DefaultClassifierOptions())
	if err != nil {
		t.Fatal(err)
	}
	if c.IsDaily {
		t.Fatal("6-hour cycle must not register as daily")
	}
	if c.Class != None {
		t.Fatalf("class = %v, want None", c.Class)
	}
	if math.Abs(c.Peak.Freq-1.0/6.0) > c.Periodogram.BinWidth()/2 {
		t.Fatalf("peak at %v, want ~1/6 c/h", c.Peak.Freq)
	}
}

func TestClassifyHandlesGaps(t *testing.T) {
	s := delaySignal(t, 4.0, 0.1, 7)
	// Punch 10% gaps.
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 72; i++ {
		s.Values[rng.Intn(len(s.Values))] = math.NaN()
	}
	c, err := Classify(s, DefaultClassifierOptions())
	if err != nil {
		t.Fatal(err)
	}
	if c.Class != Severe {
		t.Fatalf("class = %v, want Severe despite gaps", c.Class)
	}
}

func TestClassifyRejectsTooSparse(t *testing.T) {
	s := delaySignal(t, 4.0, 0.1, 9)
	for i := 0; i < len(s.Values)*3/5; i++ {
		s.Values[i] = math.NaN()
	}
	if _, err := Classify(s, DefaultClassifierOptions()); err == nil {
		t.Fatal("want error for >50% gaps")
	}
}

func TestClassifyEmptyAndInvalid(t *testing.T) {
	if _, err := Classify(nil, DefaultClassifierOptions()); err == nil {
		t.Fatal("want error for nil signal")
	}
	s, _ := timeseries.NewSeries(t0, 30*time.Minute, 0)
	if _, err := Classify(s, DefaultClassifierOptions()); err == nil {
		t.Fatal("want error for empty signal")
	}
	sig := delaySignal(t, 1, 0.1, 10)
	opts := DefaultClassifierOptions()
	opts.Thresholds = Thresholds{Low: 3, Mild: 2, Severe: 1}
	if _, err := Classify(sig, opts); err == nil {
		t.Fatal("want error for unordered thresholds")
	}
}

func TestClassifyZeroOptionsUseDefaults(t *testing.T) {
	s := delaySignal(t, 5.0, 0.2, 11)
	c, err := Classify(s, ClassifierOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Class != Severe {
		t.Fatalf("class = %v with zero options", c.Class)
	}
}

func TestClassifyThresholdBoundaries(t *testing.T) {
	// Amplitude exactly at a threshold stays in the lower class
	// (thresholds are strict "over").
	th := DefaultThresholds()
	if th.classify(0.5, true) != None {
		t.Error("0.5 exactly should be None")
	}
	if th.classify(0.51, true) != Low {
		t.Error("0.51 should be Low")
	}
	if th.classify(1.0, true) != Low {
		t.Error("1.0 exactly should be Low")
	}
	if th.classify(3.0, true) != Mild {
		t.Error("3.0 exactly should be Mild")
	}
	if th.classify(10, false) != None {
		t.Error("non-daily is always None")
	}
}
