package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"time"

	"github.com/last-mile-congestion/lastmile/internal/bgp"
	"github.com/last-mile-congestion/lastmile/internal/engine"
	lm "github.com/last-mile-congestion/lastmile/internal/lastmile"
	"github.com/last-mile-congestion/lastmile/internal/parallel"
	"github.com/last-mile-congestion/lastmile/internal/telemetry"
	"github.com/last-mile-congestion/lastmile/internal/traceroute"
)

// AttributedResult pairs one traceroute result with its origin AS.
// Attribution (RIB longest-prefix match, probe metadata, or a fixed
// mapping) is the caller's concern; the survey only needs the pairing.
type AttributedResult struct {
	ASN    bgp.ASN
	Result *traceroute.Result
}

// SurveyOptions configures RunSurvey.
type SurveyOptions struct {
	// BinWidth is the aggregation bin (default 30 minutes).
	BinWidth time.Duration
	// MinTraceroutes is the per-bin sanity threshold (default 3).
	MinTraceroutes int
	// Start and End bound the measurement period. Zero values are
	// derived from the data: Start floors the earliest timestamp to a
	// bin boundary, End ceils the latest.
	Start, End time.Time
	// Classifier configures the detector; the zero value selects
	// DefaultClassifierOptions.
	Classifier ClassifierOptions
	// Workers bounds the per-AS classification fan-out (default
	// GOMAXPROCS). Results are identical at any worker count.
	Workers int
	// Shards is the engine's lock-stripe count (default 1). Results are
	// identical at any shard count.
	Shards int
	// Metrics is the registry the survey's engine and phase timers
	// register into. Nil means a private registry. Telemetry is
	// observation-only: verdicts are bit-identical with or without it
	// (pinned by TestRunSurveyMetricsEquivalence).
	Metrics *telemetry.Registry
}

// withDefaults fills zero fields.
func (o SurveyOptions) withDefaults() SurveyOptions {
	if o.BinWidth == 0 {
		o.BinWidth = lm.DefaultBinWidth
	}
	if o.MinTraceroutes == 0 {
		o.MinTraceroutes = lm.DefaultMinTraceroutes
	}
	if o.Classifier.MaxGapFrac == 0 {
		o.Classifier = DefaultClassifierOptions()
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Shards <= 0 {
		o.Shards = 1
	}
	return o
}

// SkippedAS records why an AS present in the input produced no survey
// verdict, so a misbehaving AS is observable instead of silently
// vanishing from the report.
type SkippedAS struct {
	ASN    bgp.ASN
	Reason error
}

// ErrNoUsableData marks an AS none of whose traceroutes carried a
// usable last-mile segment.
var ErrNoUsableData = errors.New("no usable last-mile data")

// RunSurvey runs the paper's batch pipeline (§2.1 + §2.3) over one
// completed measurement period: it replays the attributed results
// through the shared incremental delay engine (the same engine the
// streaming monitor drives continuously), then classifies every AS.
// ASes that cannot be classified are returned with their reasons. The
// survey is identical at any Workers and Shards count, and identical to
// streaming the same results through stream.Monitor with a window
// covering the period.
func RunSurvey(period string, results []AttributedResult, opts SurveyOptions) (*Survey, []SkippedAS, error) {
	return RunSurveySharded(period, results, 1, opts)
}

// RunSurveySharded is RunSurvey's map-reduce form: the results are
// split round-robin across K independent engines, fed in parallel, and
// merged (engine.Merge) before classification. Per-bin medians are
// exact order statistics, so the merged engine is observation-for-
// observation equivalent to one engine having seen everything — the
// survey is bit-identical at any split count, which
// TestRunSurveyShardedEquivalence pins for K ∈ {1, 2, 8}. Split is the
// unit of coarse-grained parallelism (and, eventually, of distribution:
// each split's engine state could arrive as a wire snapshot from
// another process); Shards remains the per-engine lock striping.
func RunSurveySharded(period string, results []AttributedResult, split int, opts SurveyOptions) (*Survey, []SkippedAS, error) {
	opts = opts.withDefaults()
	if len(results) == 0 {
		return nil, nil, errors.New("core: no results to survey")
	}
	if split < 1 {
		split = 1
	}
	if split > len(results) {
		split = len(results)
	}

	// Derive the period bounds from the data when not pinned.
	start, end := opts.Start, opts.End
	if start.IsZero() || end.IsZero() {
		tMin, tMax := results[0].Result.Timestamp, results[0].Result.Timestamp
		for _, ar := range results[1:] {
			if ar.Result.Timestamp.Before(tMin) {
				tMin = ar.Result.Timestamp
			}
			if ar.Result.Timestamp.After(tMax) {
				tMax = ar.Result.Timestamp
			}
		}
		if start.IsZero() {
			start = tMin.Truncate(opts.BinWidth)
		}
		if end.IsZero() {
			end = tMax.Add(opts.BinWidth).Truncate(opts.BinWidth)
		}
	}
	if !start.Before(end) {
		return nil, nil, fmt.Errorf("core: survey period start %v does not precede end %v", start, end)
	}
	nBins := int(end.Sub(start) / opts.BinWidth)
	if end.Sub(start)%opts.BinWidth != 0 {
		nBins++
	}

	reg := opts.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}

	// Replay the period through K unbounded engines, each fed every
	// split-th result (deterministic round-robin). Per-bin medians are
	// permutation-invariant, so neither the split nor the feed order
	// matters, and within each engine ingestion still fans out across
	// the lock stripes. All engines share one registry, so the merged
	// Stats report whole-survey totals.
	// Engines register resident-state gauges into the shared registry
	// with last-wins replacement; constructing engine 0 — the merge
	// target that survives the reduce — last keeps those gauges reading
	// the engine that actually holds the merged state.
	engines := make([]*engine.Engine, split)
	for k := split - 1; k >= 0; k-- {
		engines[k] = engine.New(engine.Options{
			BinWidth:       opts.BinWidth,
			MinTraceroutes: opts.MinTraceroutes,
			Shards:         opts.Shards,
			Metrics:        reg,
		})
	}
	feedTimer := reg.Histogram("survey_feed_seconds", telemetry.DefLatencyBuckets).Start()
	err := parallel.ForEach(context.Background(), opts.Workers, len(results), func(i int) error {
		ar := results[i]
		if ar.Result == nil {
			return fmt.Errorf("core: nil result at index %d", i)
		}
		if samples, _, ok := lm.Estimate(ar.Result); ok {
			engines[i%split].Observe(ar.ASN, ar.Result.ProbeID, ar.Result.Timestamp, samples)
		}
		return nil
	})
	feedTimer.Stop()
	if err != nil {
		return nil, nil, err
	}

	// Reduce: fold every split engine into the first. Merge is
	// commutative and associative, so a sequential left fold is as good
	// as any merge tree.
	eng := engines[0]
	mergeTimer := reg.Histogram("survey_merge_seconds", telemetry.DefLatencyBuckets).Start()
	for _, o := range engines[1:] {
		if err := eng.Merge(o); err != nil {
			mergeTimer.Stop()
			return nil, nil, err
		}
	}
	mergeTimer.Stop()

	return classifySurvey(period, eng, results, start, nBins, opts, reg)
}

// classifySurvey runs the §2.3 classification pass over a fed engine
// and assembles the survey — the shared tail of the single-engine and
// map-reduce paths.
func classifySurvey(period string, eng *engine.Engine, results []AttributedResult, start time.Time, nBins int, opts SurveyOptions, reg *telemetry.Registry) (*Survey, []SkippedAS, error) {
	// The AS universe covers every attributed AS, not just those with
	// usable samples, so wholly-unusable ASes surface as skipped.
	seen := make(map[bgp.ASN]bool)
	var universe []bgp.ASN
	for _, ar := range results {
		if !seen[ar.ASN] {
			seen[ar.ASN] = true
			universe = append(universe, ar.ASN)
		}
	}
	sort.Slice(universe, func(i, j int) bool { return universe[i] < universe[j] })
	engineASes := make(map[bgp.ASN]bool)
	for _, asn := range eng.ASNs() {
		engineASes[asn] = true
	}

	type verdict struct {
		result *ASResult
		reason error
	}
	classifyTimer := reg.Histogram("survey_classify_seconds", telemetry.DefLatencyBuckets).Start()
	verdicts, err := parallel.Map(context.Background(), opts.Workers, len(universe), func(i int) (verdict, error) {
		asn := universe[i]
		if !engineASes[asn] {
			return verdict{reason: ErrNoUsableData}, nil
		}
		signal, n, err := eng.Signal(asn, start, nBins)
		if err != nil {
			return verdict{reason: err}, nil
		}
		cls, err := Classify(signal, opts.Classifier)
		if err != nil {
			return verdict{reason: fmt.Errorf("unclassifiable: %w", err)}, nil
		}
		return verdict{result: &ASResult{ASN: asn, Probes: n, Signal: signal, Classification: cls}}, nil
	})
	classifyTimer.Stop()
	if err != nil {
		return nil, nil, err
	}

	survey := NewSurvey(period)
	var skipped []SkippedAS
	for i, v := range verdicts {
		switch {
		case v.result != nil:
			survey.Add(v.result)
		default:
			skipped = append(skipped, SkippedAS{ASN: universe[i], Reason: v.reason})
		}
	}
	return survey, skipped, nil
}
