package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"github.com/last-mile-congestion/lastmile/internal/netsim"
	"github.com/last-mile-congestion/lastmile/internal/timeseries"
)

// §5 of the paper flags that the aggregated verdict hides variability
// between probes: the classifier reports what the *majority* of probes
// see. BootstrapAmplitude quantifies that variability by resampling the
// probe population with replacement and re-running the aggregation +
// detection for each resample, yielding a confidence interval on the
// daily amplitude — and therefore on how solid a class boundary decision
// is for a given deployment size.

// BootstrapOptions configures BootstrapAmplitude.
type BootstrapOptions struct {
	// Iterations is the number of bootstrap resamples (default 200).
	Iterations int
	// Seed drives the resampling.
	Seed uint64
	// Classifier configures the detector for each resample; the zero
	// value selects DefaultClassifierOptions.
	Classifier ClassifierOptions
}

// BootstrapResult summarises the resampled amplitude distribution.
type BootstrapResult struct {
	// Amplitude is the point estimate on the full population.
	Amplitude float64
	// Class is the point-estimate class.
	Class Class
	// CI90Low and CI90High bound the central 90% of the resampled
	// amplitudes.
	CI90Low, CI90High float64
	// ClassStability is the fraction of resamples whose class equals
	// the point-estimate class — low values mean the verdict hangs on
	// which probes happen to be deployed.
	ClassStability float64
	// Iterations actually classified (resamples that fail to classify
	// are skipped).
	Iterations int
}

// String renders the result compactly.
func (r *BootstrapResult) String() string {
	return fmt.Sprintf("%v, amp %.2f ms (90%% CI %.2f-%.2f), class stability %.0f%%",
		r.Class, r.Amplitude, r.CI90Low, r.CI90High, 100*r.ClassStability)
}

// BootstrapAmplitude resamples per-probe queuing-delay series with
// replacement and reports the resulting amplitude and class stability.
// perProbe must hold each probe's queuing-delay series (aligned, as
// produced by the §2.1 pipeline).
func BootstrapAmplitude(perProbe []*timeseries.Series, opts BootstrapOptions) (*BootstrapResult, error) {
	if len(perProbe) == 0 {
		return nil, errors.New("core: no probes to bootstrap")
	}
	if opts.Iterations <= 0 {
		opts.Iterations = 200
	}
	if opts.Classifier.MaxGapFrac == 0 {
		opts.Classifier = DefaultClassifierOptions()
	}

	classifyPopulation := func(pop []*timeseries.Series) (Classification, error) {
		agg, err := timeseries.AggregateMedian(pop)
		if err != nil {
			return Classification{}, err
		}
		return Classify(agg, opts.Classifier)
	}

	point, err := classifyPopulation(perProbe)
	if err != nil {
		return nil, err
	}

	rng := netsim.DerivedRand(opts.Seed, 0xb007)
	amps := make([]float64, 0, opts.Iterations)
	sameClass := 0
	resample := make([]*timeseries.Series, len(perProbe))
	for it := 0; it < opts.Iterations; it++ {
		for i := range resample {
			resample[i] = perProbe[rng.Intn(len(perProbe))]
		}
		cls, err := classifyPopulation(resample)
		if err != nil || math.IsNaN(cls.DailyAmplitude) {
			continue
		}
		amps = append(amps, cls.DailyAmplitude)
		if cls.Class == point.Class {
			sameClass++
		}
	}
	if len(amps) == 0 {
		return nil, errors.New("core: no bootstrap resample classified")
	}
	sort.Float64s(amps)
	lo := amps[int(float64(len(amps)-1)*0.05)]
	hi := amps[int(float64(len(amps)-1)*0.95)]
	return &BootstrapResult{
		Amplitude:      point.DailyAmplitude,
		Class:          point.Class,
		CI90Low:        lo,
		CI90High:       hi,
		ClassStability: float64(sameClass) / float64(len(amps)),
		Iterations:     len(amps),
	}, nil
}
