package core

import (
	"errors"
	"sort"

	"github.com/last-mile-congestion/lastmile/internal/apnic"
	"github.com/last-mile-congestion/lastmile/internal/bgp"
	"github.com/last-mile-congestion/lastmile/internal/timeseries"
)

// ASResult is one AS's outcome in one measurement period.
type ASResult struct {
	ASN bgp.ASN
	// Probes is the number of probes that contributed to the aggregate.
	Probes int
	// Signal is the aggregated queuing-delay series.
	Signal *timeseries.Series
	// Classification is the detector verdict.
	Classification
}

// Survey holds the per-AS results of one measurement period.
type Survey struct {
	// Period labels the measurement period, e.g. "2019-09".
	Period string
	// Results maps each monitored AS to its outcome.
	Results map[bgp.ASN]*ASResult
}

// NewSurvey creates an empty survey for the given period label.
func NewSurvey(period string) *Survey {
	return &Survey{Period: period, Results: make(map[bgp.ASN]*ASResult)}
}

// Add records one AS result, replacing any previous result for the same
// AS.
func (s *Survey) Add(r *ASResult) { s.Results[r.ASN] = r }

// Len returns the number of monitored ASes.
func (s *Survey) Len() int { return len(s.Results) }

// CountByClass tallies ASes per class.
func (s *Survey) CountByClass() map[Class]int {
	out := make(map[Class]int)
	for _, r := range s.Results {
		out[r.Class]++
	}
	return out
}

// ReportedASes returns the ASes classified as congested (not None),
// sorted by ASN for stable output.
func (s *Survey) ReportedASes() []bgp.ASN {
	var out []bgp.ASN
	for asn, r := range s.Results {
		if r.Class.Reported() {
			out = append(out, asn)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ASNs returns every monitored AS, sorted.
func (s *Survey) ASNs() []bgp.ASN {
	out := make([]bgp.ASN, 0, len(s.Results))
	for asn := range s.Results {
		out = append(out, asn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// BucketBreakdown is Fig. 4's content for one period: per APNIC rank
// bucket, the share of that bucket's ASes in each class, in percent.
type BucketBreakdown struct {
	Period string
	// Counts[bucket][class] is the number of ASes.
	Counts [apnic.NumBuckets][4]int
	// Totals[bucket] is the number of monitored ASes in the bucket.
	Totals [apnic.NumBuckets]int
}

// Percent returns the percentage of bucket b's ASes in class c, or 0 when
// the bucket is empty.
func (bb *BucketBreakdown) Percent(b apnic.RankBucket, c Class) float64 {
	if bb.Totals[b] == 0 {
		return 0
	}
	return 100 * float64(bb.Counts[b][c]) / float64(bb.Totals[b])
}

// BreakdownByBucket crosses a survey with an APNIC ranking (Fig. 4).
// ASes missing from the ranking land in the "more than 10k" bucket, as
// APNIC effectively treats invisible ASes.
func BreakdownByBucket(s *Survey, ranking *apnic.Ranking) *BucketBreakdown {
	bb := &BucketBreakdown{Period: s.Period}
	for asn, r := range s.Results {
		rank, ok := ranking.Rank(asn)
		if !ok {
			rank = 0 // buckets as BucketOver10k
		}
		b := apnic.BucketOf(rank)
		bb.Counts[b][r.Class]++
		bb.Totals[b]++
	}
	return bb
}

// GeoBreakdown summarises the geographical distribution of reported ASes
// (§3.2): per country, how many monitored ASes were reported at all and
// how many were Severe.
type GeoBreakdown struct {
	// Monitored, Reported, Severe count ASes per country code.
	Monitored, Reported, Severe map[string]int
}

// BreakdownByCountry crosses one or more surveys with the ranking's
// country attribution. An AS is counted once per survey, matching the
// paper's "18% of Severe reports over the two years" accounting.
func BreakdownByCountry(surveys []*Survey, ranking *apnic.Ranking) *GeoBreakdown {
	gb := &GeoBreakdown{
		Monitored: make(map[string]int),
		Reported:  make(map[string]int),
		Severe:    make(map[string]int),
	}
	for _, s := range surveys {
		for asn, r := range s.Results {
			cc, ok := ranking.Country(asn)
			if !ok {
				cc = "??"
			}
			gb.Monitored[cc]++
			if r.Class.Reported() {
				gb.Reported[cc]++
			}
			if r.Class == Severe {
				gb.Severe[cc]++
			}
		}
	}
	return gb
}

// SevereShare returns country cc's share of all Severe reports, in
// [0, 1].
func (gb *GeoBreakdown) SevereShare(cc string) float64 {
	total := 0
	for _, n := range gb.Severe {
		total += n
	}
	if total == 0 {
		return 0
	}
	return float64(gb.Severe[cc]) / float64(total)
}

// CountriesWithReports returns how many countries have at least one
// reported AS and at least one Severe AS across the surveys.
func (gb *GeoBreakdown) CountriesWithReports() (reported, severe int) {
	seenR := make(map[string]bool)
	seenS := make(map[string]bool)
	for cc, n := range gb.Reported {
		if n > 0 {
			seenR[cc] = true
		}
	}
	for cc, n := range gb.Severe {
		if n > 0 {
			seenS[cc] = true
		}
	}
	return len(seenR), len(seenS)
}

// Churn counts, for each AS reported in at least one survey, the number
// of surveys in which it was reported. The paper: "36 ASes are reported
// for at least half of the measurement periods."
func Churn(surveys []*Survey) map[bgp.ASN]int {
	out := make(map[bgp.ASN]int)
	for _, s := range surveys {
		for _, asn := range s.ReportedASes() {
			out[asn]++
		}
	}
	return out
}

// ReportedAtLeast returns how many ASes were reported in at least k of
// the surveys.
func ReportedAtLeast(surveys []*Survey, k int) int {
	n := 0
	for _, c := range Churn(surveys) {
		if c >= k {
			n++
		}
	}
	return n
}

// ErrNoSurveys is returned by aggregations over empty survey sets.
var ErrNoSurveys = errors.New("core: no surveys")

// AverageReported returns the mean number of reported ASes per survey.
func AverageReported(surveys []*Survey) (float64, error) {
	if len(surveys) == 0 {
		return 0, ErrNoSurveys
	}
	total := 0
	for _, s := range surveys {
		total += len(s.ReportedASes())
	}
	return float64(total) / float64(len(surveys)), nil
}
