package wire

// Frame payload codec for CDN access-log entries (StreamCDNLog).
//
// Payload layout:
//
//	log := unixSec(zigzag) unixNsec(uvarint, < 1e9)
//	       clientIP(addr) bytes(zigzag) durationBits(8 LE)
//	       status(zigzag) cache(0|1)
//
// The same canonicality rules as the result codec apply: minimal
// varints, tagged addresses, byte-exact float bits, cache bytes other
// than 0/1 rejected.

import (
	"encoding/binary"
	"math"
	"time"

	"github.com/last-mile-congestion/lastmile/internal/cdn"
)

// AppendLog appends one log entry to dst as a frame payload (without
// the length prefix) and returns the extended slice.
func AppendLog(dst []byte, e *cdn.LogEntry) []byte {
	dst = appendZigzag(dst, e.Timestamp.Unix())
	dst = appendUvarint(dst, uint64(e.Timestamp.Nanosecond()))
	dst = appendAddr(dst, e.ClientIP)
	dst = appendZigzag(dst, e.Bytes)
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(e.DurationMs))
	dst = appendZigzag(dst, int64(e.Status))
	if e.Cache == cdn.Hit {
		return append(dst, 0)
	}
	return append(dst, 1)
}

// DecodeLogInto decodes one log frame payload into e. The whole payload
// must be consumed (ErrTrailingBytes otherwise). The entry holds no
// references, so decoding allocates nothing.
//
//lmvet:hotpath
func DecodeLogInto(e *cdn.LogEntry, payload []byte) error {
	*e = cdn.LogEntry{}
	b := payload
	sec, b, err := decodeInt64(b)
	if err != nil {
		return err
	}
	u, n, err := uvarint(b)
	if err != nil {
		return err
	}
	if u >= 1e9 || sec > maxUnixSec || sec < -maxUnixSec {
		return ErrBadFrame
	}
	b = b[n:]
	e.Timestamp = time.Unix(sec, int64(u)).UTC()

	if e.ClientIP, b, err = decodeAddr(b); err != nil {
		return err
	}
	if e.Bytes, b, err = decodeInt64(b); err != nil {
		return err
	}
	if len(b) < 8 {
		return ErrShortFrame
	}
	e.DurationMs = math.Float64frombits(binary.LittleEndian.Uint64(b))
	b = b[8:]
	if e.Status, b, err = decodeInt(b); err != nil {
		return err
	}
	if len(b) == 0 {
		return ErrShortFrame
	}
	switch b[0] {
	case 0:
		e.Cache = cdn.Hit
	case 1:
		e.Cache = cdn.Miss
	default:
		return ErrBadFrame
	}
	if len(b) != 1 {
		return ErrTrailingBytes
	}
	return nil
}
