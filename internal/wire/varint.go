package wire

// Canonical LEB128 varints. Encoding is the standard 7-bits-per-byte
// little-endian form; decoding additionally rejects overlong (non-minimal)
// encodings, so every uint64 has exactly one byte representation and the
// codec is bijective — the property the determinism tests and the
// round-trip fuzz rely on.

// maxVarintLen is the longest canonical encoding of a uint64.
const maxVarintLen = 10

// appendUvarint appends v in canonical LEB128 form.
func appendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// zigzag folds a signed value into the unsigned varint space so small
// magnitudes of either sign stay short.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// appendZigzag appends a signed value as a zigzag uvarint.
func appendZigzag(dst []byte, v int64) []byte { return appendUvarint(dst, zigzag(v)) }

// uvarint decodes a canonical uvarint from b, returning the value and
// the number of bytes consumed. Errors: ErrShortFrame when b ends
// mid-varint, ErrOverlongVarint for a non-minimal or >64-bit encoding.
//
//lmvet:hotpath
func uvarint(b []byte) (uint64, int, error) {
	var v uint64
	for i := 0; i < len(b); i++ {
		c := b[i]
		if i == maxVarintLen-1 && c > 1 {
			// The 10th byte may only contribute the top bit of a uint64.
			return 0, 0, ErrOverlongVarint
		}
		if c < 0x80 {
			if c == 0 && i > 0 {
				// A zero continuation byte means the same value had a
				// shorter encoding.
				return 0, 0, ErrOverlongVarint
			}
			return v | uint64(c)<<(7*i), i + 1, nil
		}
		if i == maxVarintLen-1 {
			return 0, 0, ErrOverlongVarint
		}
		v |= uint64(c&0x7f) << (7 * i)
	}
	return 0, 0, ErrShortFrame
}
