package wire

// Frame payload codec for attributed traceroute results (StreamResults).
//
// Payload layout, all varints canonical LEB128:
//
//	result  := asn(uvarint) probeID(zigzag) msmID(zigzag)
//	           unixSec(zigzag) unixNsec(uvarint, < 1e9)
//	           af(zigzag) srcAddr(addr) fromAddr(addr) dstAddr(addr)
//	           protoLen(uvarint) protoBytes
//	           nhops(uvarint) hop*
//	hop     := hopNum(zigzag) nreplies(uvarint) reply*
//	reply   := timeout(0|1) fromAddr(addr) rttBits(8 LE) ttl(zigzag)
//	addr    := 0x00 | 0x04 b[4] | 0x06 b[16]
//
// Float64 bits travel as fixed 8-byte little-endian words, so NaN
// payloads (timeout RTTs) and signed zeros round-trip bit-identically.
// Timestamps normalise to UTC wall-clock (seconds + nanoseconds); IPv6
// zones are not representable and are dropped by the encoder. Every
// byte is checked on decode — non-minimal varints, out-of-range
// nanoseconds, unknown address tags, and timeout bytes other than 0/1
// are rejected — so the codec is bijective: decode(encode(r)) == r and
// encode(decode(b)) == b, properties the wire tests pin with
// testing/quick and the round-trip fuzz target.

import (
	"encoding/binary"
	"math"
	"net/netip"
	"time"

	"github.com/last-mile-congestion/lastmile/internal/bgp"
	"github.com/last-mile-congestion/lastmile/internal/traceroute"
)

// Address tag bytes.
const (
	addrNone byte = 0
	addrV4   byte = 4
	addrV6   byte = 6
)

// maxUnixSec bounds the unix-seconds field of decoded timestamps.
// time.Unix silently wraps its internal epoch for magnitudes near
// MaxInt64, which would break the encode(decode(b)) == b canonicality
// the codec guarantees; ±1<<62 is ±146 billion years, far past any real
// timestamp, and round-trips exactly.
const maxUnixSec = 1 << 62

// AppendResult appends one attributed result to dst as a frame payload
// (without the length prefix) and returns the extended slice. Encoding
// is deterministic: equal inputs produce equal bytes.
func AppendResult(dst []byte, asn bgp.ASN, r *traceroute.Result) []byte {
	dst = appendUvarint(dst, uint64(asn))
	dst = appendZigzag(dst, int64(r.ProbeID))
	dst = appendZigzag(dst, int64(r.MsmID))
	dst = appendZigzag(dst, r.Timestamp.Unix())
	dst = appendUvarint(dst, uint64(r.Timestamp.Nanosecond()))
	dst = appendZigzag(dst, int64(r.AF))
	dst = appendAddr(dst, r.SrcAddr)
	dst = appendAddr(dst, r.FromAddr)
	dst = appendAddr(dst, r.DstAddr)
	dst = appendUvarint(dst, uint64(len(r.Proto)))
	dst = append(dst, r.Proto...)
	dst = appendUvarint(dst, uint64(len(r.Hops)))
	for i := range r.Hops {
		h := &r.Hops[i]
		dst = appendZigzag(dst, int64(h.Hop))
		dst = appendUvarint(dst, uint64(len(h.Replies)))
		for j := range h.Replies {
			rep := &h.Replies[j]
			if rep.Timeout {
				dst = append(dst, 1)
			} else {
				dst = append(dst, 0)
			}
			dst = appendAddr(dst, rep.From)
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(rep.RTT))
			dst = appendZigzag(dst, int64(rep.TTL))
		}
	}
	return dst
}

// appendAddr appends the tagged address encoding. The zone of a zoned
// IPv6 address is not representable and is dropped.
func appendAddr(dst []byte, a netip.Addr) []byte {
	switch {
	case a.Is4():
		b4 := a.As4()
		dst = append(dst, addrV4)
		return append(dst, b4[0], b4[1], b4[2], b4[3])
	case a.IsValid():
		b16 := a.As16()
		dst = append(dst, addrV6)
		return append(dst, b16[:]...)
	}
	return append(dst, addrNone)
}

// DecodeResultInto decodes one result frame payload into r, reusing
// r's hop and reply storage, and returns the attributed origin AS. The
// whole payload must be consumed (ErrTrailingBytes otherwise). On error
// r's contents are unspecified. Steady-state decoding of a stream into
// one reused Result allocates nothing.
//
//lmvet:hotpath
func DecodeResultInto(r *traceroute.Result, payload []byte) (bgp.ASN, error) {
	hops := r.Hops[:0]
	*r = traceroute.Result{Hops: hops}

	b := payload
	u, n, err := uvarint(b)
	if err != nil {
		return 0, err
	}
	if u > math.MaxUint32 {
		return 0, ErrBadFrame
	}
	asn := bgp.ASN(u)
	b = b[n:]

	if r.ProbeID, b, err = decodeInt(b); err != nil {
		return 0, err
	}
	if r.MsmID, b, err = decodeInt(b); err != nil {
		return 0, err
	}
	var sec int64
	if sec, b, err = decodeInt64(b); err != nil {
		return 0, err
	}
	u, n, err = uvarint(b)
	if err != nil {
		return 0, err
	}
	if u >= 1e9 || sec > maxUnixSec || sec < -maxUnixSec {
		return 0, ErrBadFrame
	}
	b = b[n:]
	r.Timestamp = time.Unix(sec, int64(u)).UTC()

	if r.AF, b, err = decodeInt(b); err != nil {
		return 0, err
	}
	if r.SrcAddr, b, err = decodeAddr(b); err != nil {
		return 0, err
	}
	if r.FromAddr, b, err = decodeAddr(b); err != nil {
		return 0, err
	}
	if r.DstAddr, b, err = decodeAddr(b); err != nil {
		return 0, err
	}

	u, n, err = uvarint(b)
	if err != nil {
		return 0, err
	}
	b = b[n:]
	if u > uint64(len(b)) {
		return 0, ErrShortFrame
	}
	r.Proto = traceroute.InternProto(b[:u])
	b = b[u:]

	nhops, n, err := uvarint(b)
	if err != nil {
		return 0, err
	}
	b = b[n:]
	// Each hop costs at least two bytes, so a count beyond the remaining
	// payload is structurally impossible — reject it before looping.
	if nhops > uint64(len(b)) {
		return 0, ErrBadFrame
	}
	for hi := uint64(0); hi < nhops; hi++ {
		h := r.AddHop()
		if h.Hop, b, err = decodeInt(b); err != nil {
			return 0, err
		}
		nreps, n, err := uvarint(b)
		if err != nil {
			return 0, err
		}
		b = b[n:]
		if nreps > uint64(len(b)) {
			return 0, ErrBadFrame
		}
		for ri := uint64(0); ri < nreps; ri++ {
			rep := h.AddReply()
			if len(b) == 0 {
				return 0, ErrShortFrame
			}
			switch b[0] {
			case 0:
			case 1:
				rep.Timeout = true
			default:
				return 0, ErrBadFrame
			}
			b = b[1:]
			if rep.From, b, err = decodeAddr(b); err != nil {
				return 0, err
			}
			if len(b) < 8 {
				return 0, ErrShortFrame
			}
			rep.RTT = math.Float64frombits(binary.LittleEndian.Uint64(b))
			b = b[8:]
			if rep.TTL, b, err = decodeInt(b); err != nil {
				return 0, err
			}
		}
	}
	if len(b) != 0 {
		return 0, ErrTrailingBytes
	}
	return asn, nil
}

// decodeInt64 decodes one zigzag varint and returns the rest of b.
func decodeInt64(b []byte) (int64, []byte, error) {
	u, n, err := uvarint(b)
	if err != nil {
		return 0, nil, err
	}
	return unzigzag(u), b[n:], nil
}

// decodeInt is decodeInt64 narrowed to int.
func decodeInt(b []byte) (int, []byte, error) {
	v, rest, err := decodeInt64(b)
	return int(v), rest, err
}

// decodeAddr decodes one tagged address and returns the rest of b.
func decodeAddr(b []byte) (netip.Addr, []byte, error) {
	if len(b) == 0 {
		return netip.Addr{}, nil, ErrShortFrame
	}
	switch b[0] {
	case addrNone:
		return netip.Addr{}, b[1:], nil
	case addrV4:
		if len(b) < 5 {
			return netip.Addr{}, nil, ErrShortFrame
		}
		return netip.AddrFrom4([4]byte(b[1:5])), b[5:], nil
	case addrV6:
		if len(b) < 17 {
			return netip.Addr{}, nil, ErrShortFrame
		}
		return netip.AddrFrom16([16]byte(b[1:17])), b[17:], nil
	}
	return netip.Addr{}, nil, ErrBadFrame
}
