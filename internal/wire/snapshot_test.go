package wire

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"time"

	"github.com/last-mile-congestion/lastmile/internal/timeseries"
)

// heapFrom replays vs through an IncrementalBin and returns the
// resulting valid two-heap state — snapshot payloads must carry heap
// layouts a real engine can produce, or the decoder's invariant checks
// reject them.
func heapFrom(vs ...float64) (lo, hi []float64) {
	b := &timeseries.IncrementalBin{}
	for _, v := range vs {
		b.Add(v)
	}
	lo, hi, _ = b.Snapshot()
	return lo, hi
}

func sampleSnapshotMeta() *SnapshotMeta {
	return &SnapshotMeta{
		BinWidth:       30 * time.Minute,
		MinTraceroutes: 3,
		Window:         15 * 24 * time.Hour,
		MaxLateness:    time.Hour,
		HasNewest:      true,
		NewestNano:     time.Date(2020, 2, 7, 11, 29, 3, 500, time.UTC).UnixNano(),
		Ingested:       12345,
		Dropped:        17,
		EvictedBins:    890,
	}
}

func sampleSnapshotProbes() []*SnapshotProbe {
	lo1, hi1 := heapFrom(4.5, 2.25, 9, 1.125, 2.25)
	lo2, hi2 := heapFrom(0.5)
	lo3, hi3 := heapFrom(7, 7, 7, 8)
	return []*SnapshotProbe{
		{ASN: 64500, ProbeID: 1, Bins: []SnapshotBin{
			{Key: 1580986800, Groups: 3, Lo: lo1, Hi: hi1},
			{Key: 1580988600, Groups: 1, Lo: lo2, Hi: hi2},
		}},
		{ASN: 64501, ProbeID: -2, Bins: []SnapshotBin{
			{Key: -1800, Groups: 4, Lo: lo3, Hi: hi3},
		}},
		{ASN: 64502, ProbeID: 9, Bins: nil},
	}
}

// buildSnapshotArchive frames the sample snapshot into a byte archive.
func buildSnapshotArchive(t testing.TB) []byte {
	t.Helper()
	var buf bytes.Buffer
	sw := NewSnapshotWriter(&buf)
	if err := sw.WriteMeta(sampleSnapshotMeta()); err != nil {
		t.Fatal(err)
	}
	for _, p := range sampleSnapshotProbes() {
		if err := sw.WriteProbe(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSnapshotStreamRoundTrip(t *testing.T) {
	arch := buildSnapshotArchive(t)
	sc := NewSnapshotScanner(bytes.NewReader(arch))
	meta, err := sc.Meta()
	if err != nil {
		t.Fatal(err)
	}
	if *meta != *sampleSnapshotMeta() {
		t.Fatalf("meta = %+v, want %+v", meta, sampleSnapshotMeta())
	}
	want := sampleSnapshotProbes()
	var got int
	for sc.Scan() {
		p := sc.Probe()
		w := want[got]
		if p.ASN != w.ASN || p.ProbeID != w.ProbeID || len(p.Bins) != len(w.Bins) {
			t.Fatalf("probe %d = {%v %d %d bins}, want {%v %d %d bins}",
				got, p.ASN, p.ProbeID, len(p.Bins), w.ASN, w.ProbeID, len(w.Bins))
		}
		// Re-encoding the decoded frame must reproduce the original
		// payload byte for byte — the encode(decode(b)) == b half of the
		// bijection, per frame.
		if enc, orig := AppendSnapshotProbe(nil, p), AppendSnapshotProbe(nil, w); !bytes.Equal(enc, orig) {
			t.Fatalf("probe %d re-encoded differently:\n in %x\nout %x", got, orig, enc)
		}
		got++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if got != len(want) {
		t.Fatalf("scanned %d probe frames, want %d", got, len(want))
	}
}

func TestSnapshotMetaCanonicalNoWatermark(t *testing.T) {
	m := &SnapshotMeta{BinWidth: time.Second, MinTraceroutes: 1}
	payload := AppendSnapshotMeta(nil, m)
	var back SnapshotMeta
	if err := DecodeSnapshotMetaInto(&back, payload); err != nil {
		t.Fatal(err)
	}
	if back != *m {
		t.Fatalf("round trip: %+v vs %+v", back, m)
	}
	if enc := AppendSnapshotMeta(nil, &back); !bytes.Equal(enc, payload) {
		t.Fatalf("non-canonical meta encoding")
	}
}

func TestSnapshotWriterRequiresMetaFirst(t *testing.T) {
	var buf bytes.Buffer
	sw := NewSnapshotWriter(&buf)
	if err := sw.WriteProbe(sampleSnapshotProbes()[0]); err == nil {
		t.Fatal("probe frame before meta must fail")
	}
	if err := sw.Flush(); err == nil {
		t.Fatal("flushing a snapshot without its meta frame must fail")
	}
	if buf.Len() != 0 {
		t.Fatalf("misused writer emitted %d bytes", buf.Len())
	}
}

func TestSnapshotScannerTruncatedBeforeMeta(t *testing.T) {
	// A header-only snapshot stream is a truncated snapshot: the meta
	// frame is mandatory.
	sc := NewSnapshotScanner(bytes.NewReader(appendHeader(nil, StreamSnapshot)))
	if _, err := sc.Meta(); !errors.Is(err, ErrShortFrame) {
		t.Fatalf("Meta on header-only stream = %v, want ErrShortFrame", err)
	}
	if sc.Scan() {
		t.Fatal("Scan succeeded on header-only stream")
	}
}

func TestSnapshotScannerRejectsSecondMeta(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, StreamSnapshot)
	meta := AppendSnapshotMeta(nil, sampleSnapshotMeta())
	for i := 0; i < 2; i++ {
		if err := w.writeFrame(meta); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	sc := NewSnapshotScanner(bytes.NewReader(buf.Bytes()))
	if sc.Scan() {
		t.Fatal("scanned a meta frame as a probe window")
	}
	if err := sc.Err(); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("err = %v, want ErrBadFrame", err)
	}
}

// TestSnapshotStreamCorruptionTable mutates a valid snapshot archive
// and asserts every corruption maps onto its typed sentinel.
func TestSnapshotStreamCorruptionTable(t *testing.T) {
	arch := buildSnapshotArchive(t)
	mutate := func(mut func([]byte)) []byte {
		b := append([]byte(nil), arch...)
		mut(b)
		return b
	}
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"bad magic", mutate(func(b []byte) { b[0] = 'X' }), ErrBadMagic},
		{"bad version", mutate(func(b []byte) { b[4] = 99 }), ErrVersion},
		{"results stream type", mutate(func(b []byte) { b[5] = StreamResults }), ErrStreamType},
		{"unknown stream type", mutate(func(b []byte) { b[5] = 200 }), ErrStreamType},
		{"truncated header", arch[:4], ErrShortFrame},
		{"truncated mid-frame", arch[:len(arch)-3], ErrShortFrame},
		{"truncated at length", arch[:HeaderLen+1], ErrShortFrame},
		{"oversized length", append(append([]byte(nil), arch[:HeaderLen]...), 0xff, 0xff, 0xff, 0xff, 0x7f), ErrFrameTooLarge},
		{"overlong length", append(append([]byte(nil), arch[:HeaderLen]...), 0x80, 0x00), ErrOverlongVarint},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := NewSnapshotScanner(bytes.NewReader(tc.data))
			for sc.Scan() {
			}
			if err := sc.Err(); !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
		})
	}
}

// snapshotSentinels is the full typed-error contract of the snapshot
// decoders: every rejection must be one of these.
func isTypedWireError(err error) bool {
	for _, s := range []error{
		ErrBadMagic, ErrVersion, ErrStreamType, ErrShortFrame,
		ErrFrameTooLarge, ErrOverlongVarint, ErrTrailingBytes, ErrBadFrame,
	} {
		if errors.Is(err, s) {
			return true
		}
	}
	return false
}

// TestSnapshotPayloadCorruptionExhaustive runs the payload decoders
// over every truncation and every single-byte mutation of the sample
// frames: each must either decode canonically or fail with a typed
// error — never panic, never decode to something that re-encodes
// differently.
func TestSnapshotPayloadCorruptionExhaustive(t *testing.T) {
	payloads := [][]byte{AppendSnapshotMeta(nil, sampleSnapshotMeta())}
	for _, p := range sampleSnapshotProbes() {
		payloads = append(payloads, AppendSnapshotProbe(nil, p))
	}
	check := func(data []byte) {
		t.Helper()
		var m SnapshotMeta
		if err := DecodeSnapshotMetaInto(&m, data); err == nil {
			if enc := AppendSnapshotMeta(nil, &m); !bytes.Equal(enc, data) {
				t.Fatalf("meta decoded non-canonically:\n in %x\nout %x", data, enc)
			}
		} else if !isTypedWireError(err) {
			t.Fatalf("untyped meta decode error on %x: %v", data, err)
		}
		var p SnapshotProbe
		if err := DecodeSnapshotProbeInto(&p, data); err == nil {
			if enc := AppendSnapshotProbe(nil, &p); !bytes.Equal(enc, data) {
				t.Fatalf("probe decoded non-canonically:\n in %x\nout %x", data, enc)
			}
		} else if !isTypedWireError(err) {
			t.Fatalf("untyped probe decode error on %x: %v", data, err)
		}
	}
	for _, payload := range payloads {
		for cut := 0; cut < len(payload); cut++ {
			check(payload[:cut])
		}
		for i := 0; i < len(payload); i++ {
			for _, flip := range []byte{0x01, 0x80, 0xff} {
				b := append([]byte(nil), payload...)
				b[i] ^= flip
				check(b)
			}
		}
	}
}

func TestSnapshotDecodeRejectsBrokenHeapState(t *testing.T) {
	// Hand-build a probe frame whose heap state violates the two-heap
	// partition (lower-half max 9 > upper-half min 1): structurally
	// valid wire bytes, semantically impossible engine state.
	payload := []byte{snapTagProbe}
	payload = appendUvarint(payload, 64500)
	payload = appendZigzag(payload, 1)
	payload = appendUvarint(payload, 1) // one bin
	payload = appendZigzag(payload, 1800)
	payload = appendUvarint(payload, 1) // groups
	payload = appendUvarint(payload, 1) // nlo
	payload = appendUvarint(payload, 1) // nhi
	var w [8]byte
	putFloat := func(v float64) {
		for i, b := range f64bytes(v, w[:]) {
			_ = i
			payload = append(payload, b)
		}
	}
	putFloat(9)
	putFloat(1)
	var p SnapshotProbe
	if err := DecodeSnapshotProbeInto(&p, payload); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("err = %v, want ErrBadFrame", err)
	}
}

// f64bytes renders v as the codec's fixed 8-byte little-endian word.
func f64bytes(v float64, dst []byte) []byte {
	bits := math.Float64bits(v)
	for i := 0; i < 8; i++ {
		dst[i] = byte(bits >> (8 * i))
	}
	return dst[:8]
}

func TestSnapshotDecodeRejectsUnsortedBinKeys(t *testing.T) {
	p := &SnapshotProbe{ASN: 1, ProbeID: 1, Bins: []SnapshotBin{
		{Key: 3600, Groups: 1},
		{Key: 1800, Groups: 1},
	}}
	payload := AppendSnapshotProbe(nil, p)
	var back SnapshotProbe
	if err := DecodeSnapshotProbeInto(&back, payload); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("err = %v, want ErrBadFrame", err)
	}
}

func TestSnapshotDecodeRejectsZeroBinWidth(t *testing.T) {
	m := &SnapshotMeta{BinWidth: 0}
	payload := AppendSnapshotMeta(nil, m)
	var back SnapshotMeta
	if err := DecodeSnapshotMetaInto(&back, payload); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("err = %v, want ErrBadFrame", err)
	}
}

func TestSnapshotDecodeRejectsWrongTag(t *testing.T) {
	meta := AppendSnapshotMeta(nil, sampleSnapshotMeta())
	probe := AppendSnapshotProbe(nil, sampleSnapshotProbes()[0])
	var m SnapshotMeta
	if err := DecodeSnapshotMetaInto(&m, probe); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("meta decoder accepted a probe frame: %v", err)
	}
	var p SnapshotProbe
	if err := DecodeSnapshotProbeInto(&p, meta); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("probe decoder accepted a meta frame: %v", err)
	}
	if err := DecodeSnapshotMetaInto(&m, nil); !errors.Is(err, ErrShortFrame) {
		t.Fatalf("meta decoder on empty payload: %v", err)
	}
	if err := DecodeSnapshotProbeInto(&p, nil); !errors.Is(err, ErrShortFrame) {
		t.Fatalf("probe decoder on empty payload: %v", err)
	}
}

// TestSnapshotScannerReusesStorage pins the valid-until-next-Scan
// contract: steady-state scanning of uniform probe frames allocates
// nothing once buffers reach capacity.
func TestSnapshotScannerReusesStorage(t *testing.T) {
	var buf bytes.Buffer
	sw := NewSnapshotWriter(&buf)
	if err := sw.WriteMeta(sampleSnapshotMeta()); err != nil {
		t.Fatal(err)
	}
	lo, hi := heapFrom(1, 2, 3, 4, 5)
	for i := 0; i < 64; i++ {
		p := &SnapshotProbe{ASN: 64500, ProbeID: i, Bins: []SnapshotBin{{Key: 1800, Groups: 3, Lo: lo, Hi: hi}}}
		if err := sw.WriteProbe(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Flush(); err != nil {
		t.Fatal(err)
	}
	sc := NewSnapshotScanner(bytes.NewReader(buf.Bytes()))
	if _, err := sc.Meta(); err != nil {
		t.Fatal(err)
	}
	// Warm up the reused buffers, then the remaining frames must not
	// allocate in the decode path.
	if !sc.Scan() {
		t.Fatal(sc.Err())
	}
	allocs := testing.AllocsPerRun(50, func() {
		if !sc.Scan() {
			t.Fatal("stream exhausted mid-measurement")
		}
	})
	if allocs > 0 {
		t.Fatalf("steady-state Scan allocates %v times per call", allocs)
	}
}
