package wire

import (
	"bytes"
	"errors"
	"testing"

	"github.com/last-mile-congestion/lastmile/internal/bgp"
	"github.com/last-mile-congestion/lastmile/internal/cdn"
	"github.com/last-mile-congestion/lastmile/internal/traceroute"
)

// FuzzWireRoundTrip fuzzes the decoders at both layers with the same
// input bytes.
//
// Payload layer: any bytes DecodeResultInto or DecodeLogInto accepts
// must re-encode to exactly the input — the encode(decode(b)) == b half
// of the codec's bijection, which only holds because every non-minimal
// varint, out-of-range count, and malformed address tag is rejected.
//
// Stream layer: Scanner and LogScanner must never panic, every frame
// they produce must survive its own round trip, and any terminal error
// must be one of the typed sentinels (usually located by CorruptError).
//
// Seed corpus: the f.Add seeds below plus testdata/fuzz/FuzzWireRoundTrip.
// scripts/check.sh runs a short -fuzz smoke pass over it.
func FuzzWireRoundTrip(f *testing.F) {
	for i, r := range sampleResults() {
		f.Add(AppendResult(nil, bgp.ASN(64500+i), r))
	}
	for _, e := range sampleLogs() {
		f.Add(AppendLog(nil, e))
	}
	// Whole streams: empty, single-frame, and all samples.
	var buf bytes.Buffer
	w := NewWriter(&buf, StreamResults)
	for i, r := range sampleResults() {
		if err := w.WriteResult(bgp.ASN(64500+i), r); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	// Snapshot frames and a whole snapshot stream: the checkpoint codec
	// faces the same adversarial inputs as the archive codecs.
	f.Add(AppendSnapshotMeta(nil, sampleSnapshotMeta()))
	for _, p := range sampleSnapshotProbes() {
		f.Add(AppendSnapshotProbe(nil, p))
	}
	f.Add(buildSnapshotArchive(f))
	f.Add(appendHeader(nil, StreamResults))
	f.Add(appendHeader(nil, StreamCDNLog))
	f.Add(appendHeader(nil, StreamSnapshot))
	f.Add([]byte{0x89, 'L', 'M'})
	// A truncated gzip envelope: the scanners read through MaybeGzip, so
	// a broken compression layer must also surface as a typed error.
	f.Add([]byte{0x1f, 0x8b})

	sentinels := []error{
		ErrBadMagic, ErrVersion, ErrStreamType, ErrShortFrame,
		ErrFrameTooLarge, ErrOverlongVarint, ErrTrailingBytes, ErrBadFrame,
	}
	typed := func(err error) bool {
		for _, s := range sentinels {
			if errors.Is(err, s) {
				return true
			}
		}
		return false
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		// Payload-level canonicality.
		var r traceroute.Result
		if asn, err := DecodeResultInto(&r, data); err == nil {
			if enc := AppendResult(nil, asn, &r); !bytes.Equal(enc, data) {
				t.Fatalf("result payload decoded non-canonically:\n in %x\nout %x", data, enc)
			}
		} else if !typed(err) {
			t.Fatalf("untyped result decode error: %v", err)
		}
		var e cdn.LogEntry
		if err := DecodeLogInto(&e, data); err == nil {
			if enc := AppendLog(nil, &e); !bytes.Equal(enc, data) {
				t.Fatalf("log payload decoded non-canonically:\n in %x\nout %x", data, enc)
			}
		} else if !typed(err) {
			t.Fatalf("untyped log decode error: %v", err)
		}
		var sm SnapshotMeta
		if err := DecodeSnapshotMetaInto(&sm, data); err == nil {
			if enc := AppendSnapshotMeta(nil, &sm); !bytes.Equal(enc, data) {
				t.Fatalf("snapshot meta decoded non-canonically:\n in %x\nout %x", data, enc)
			}
		} else if !typed(err) {
			t.Fatalf("untyped snapshot meta decode error: %v", err)
		}
		var sp SnapshotProbe
		if err := DecodeSnapshotProbeInto(&sp, data); err == nil {
			if enc := AppendSnapshotProbe(nil, &sp); !bytes.Equal(enc, data) {
				t.Fatalf("snapshot probe decoded non-canonically:\n in %x\nout %x", data, enc)
			}
		} else if !typed(err) {
			t.Fatalf("untyped snapshot probe decode error: %v", err)
		}

		// Stream level: never panic, every scanned frame round-trips,
		// every failure is typed.
		sc := NewScanner(bytes.NewReader(data))
		for sc.Scan() {
			enc := AppendResult(nil, sc.ASN(), sc.Result())
			var back traceroute.Result
			if asn, err := DecodeResultInto(&back, enc); err != nil || asn != sc.ASN() {
				t.Fatalf("scanned frame failed its round trip: %v", err)
			}
		}
		if err := sc.Err(); err != nil && !typed(err) {
			t.Fatalf("untyped scanner error: %v", err)
		}
		ls := NewLogScanner(bytes.NewReader(data))
		for ls.Scan() {
		}
		if err := ls.Err(); err != nil && !typed(err) {
			t.Fatalf("untyped log scanner error: %v", err)
		}
		ss := NewSnapshotScanner(bytes.NewReader(data))
		for ss.Scan() {
		}
		if err := ss.Err(); err != nil && !typed(err) {
			t.Fatalf("untyped snapshot scanner error: %v", err)
		}
	})
}
