package wire

// Frame codec for serialized delay-engine state (StreamSnapshot) — the
// checkpoint/restore and map-reduce merge substrate. A snapshot stream
// is the standard wire container (header, length-prefixed frames,
// canonical varints) carrying one meta frame followed by one frame per
// resident (AS, probe) window, every frame tagged by its first byte so
// a frame can never be decoded against the wrong schema:
//
//	snapshot := header meta probe*
//	meta     := 0x00 binWidth(uvarint ns, > 0) minTraceroutes(uvarint)
//	            window(uvarint ns) maxLateness(uvarint ns)
//	            hasNewest(0|1) [newestNano(zigzag)]
//	            ingested(uvarint) dropped(uvarint) evicted(uvarint)
//	probe    := 0x01 asn(uvarint, <= MaxUint32) probeID(zigzag)
//	            nbins(uvarint) bin*
//	bin      := key(zigzag) groups(uvarint) nlo(uvarint) nhi(uvarint)
//	            loBits(8 LE)* hiBits(8 LE)*
//
// Each bin serializes the two-heap median state exactly as the engine
// holds it: the lower-half max-heap and upper-half min-heap backing
// slices, float64 bits as fixed little-endian words. The decoder
// re-validates everything an encoder could only produce from a live
// engine — canonical varints, strictly increasing bin keys, and the
// two-heap invariants via timeseries.ValidateHeapState — so a truncated,
// bit-flipped, or adversarial snapshot surfaces as a typed corruption
// error and can never smuggle a broken heap into a restored engine.
// Within what the validator accepts the codec is bijective, the same
// encode(decode(b)) == b property the result and log codecs pin.

import (
	"encoding/binary"
	"errors"
	"io"
	"math"
	"time"

	"github.com/last-mile-congestion/lastmile/internal/bgp"
	"github.com/last-mile-congestion/lastmile/internal/timeseries"
)

// Snapshot frame tags — the first payload byte of every frame.
const (
	snapTagMeta  byte = 0
	snapTagProbe byte = 1
)

// SnapshotMeta is the snapshot's configuration frame: the engine
// options that define bin semantics, the observation watermark, and the
// monotonic ingestion counters, so a restored engine reports continuous
// operator-visible statistics.
type SnapshotMeta struct {
	// BinWidth, MinTraceroutes, Window, and MaxLateness mirror the
	// engine options the state was accumulated under; a restore into an
	// engine configured differently would silently change verdicts, so
	// restorers must reject mismatches.
	BinWidth       time.Duration
	MinTraceroutes int
	Window         time.Duration
	MaxLateness    time.Duration
	// HasNewest reports whether any observation was ingested; NewestNano
	// is the watermark in unix nanoseconds when it was.
	HasNewest  bool
	NewestNano int64
	// Ingested, Dropped, and EvictedBins carry the engine's monotonic
	// counters across the restart.
	Ingested, Dropped, EvictedBins int64
}

// SnapshotBin is one (probe, bin) cell: the bin-start key (unix
// seconds), the measurement-group count, and the two-heap median state.
type SnapshotBin struct {
	Key    int64
	Groups int
	Lo, Hi []float64
}

// SnapshotProbe is one probe's resident window within one AS. Bins are
// ordered by strictly increasing Key — the canonical frame layout the
// decoder enforces.
type SnapshotProbe struct {
	ASN     bgp.ASN
	ProbeID int
	Bins    []SnapshotBin
}

// AppendSnapshotMeta appends the meta frame payload (without the length
// prefix) to dst. Encoding is deterministic: equal metas produce equal
// bytes.
func AppendSnapshotMeta(dst []byte, m *SnapshotMeta) []byte {
	dst = append(dst, snapTagMeta)
	dst = appendUvarint(dst, uint64(m.BinWidth))
	dst = appendUvarint(dst, uint64(m.MinTraceroutes))
	dst = appendUvarint(dst, uint64(m.Window))
	dst = appendUvarint(dst, uint64(m.MaxLateness))
	if m.HasNewest {
		dst = append(dst, 1)
		dst = appendZigzag(dst, m.NewestNano)
	} else {
		dst = append(dst, 0)
	}
	dst = appendUvarint(dst, uint64(m.Ingested))
	dst = appendUvarint(dst, uint64(m.Dropped))
	dst = appendUvarint(dst, uint64(m.EvictedBins))
	return dst
}

// decodeCount decodes a uvarint that must fit a non-negative int64.
func decodeCount(b []byte) (int64, []byte, error) {
	u, n, err := uvarint(b)
	if err != nil {
		return 0, nil, err
	}
	if u > math.MaxInt64 {
		return 0, nil, ErrBadFrame
	}
	return int64(u), b[n:], nil
}

// DecodeSnapshotMetaInto decodes one meta frame payload into m. The
// whole payload must be consumed.
func DecodeSnapshotMetaInto(m *SnapshotMeta, payload []byte) error {
	*m = SnapshotMeta{}
	if len(payload) == 0 {
		return ErrShortFrame
	}
	if payload[0] != snapTagMeta {
		return ErrBadFrame
	}
	b := payload[1:]
	var v int64
	var err error
	if v, b, err = decodeCount(b); err != nil {
		return err
	}
	if v <= 0 {
		return ErrBadFrame
	}
	m.BinWidth = time.Duration(v)
	if v, b, err = decodeCount(b); err != nil {
		return err
	}
	m.MinTraceroutes = int(v)
	if v, b, err = decodeCount(b); err != nil {
		return err
	}
	m.Window = time.Duration(v)
	if v, b, err = decodeCount(b); err != nil {
		return err
	}
	m.MaxLateness = time.Duration(v)
	if len(b) == 0 {
		return ErrShortFrame
	}
	switch b[0] {
	case 0:
	case 1:
		m.HasNewest = true
	default:
		return ErrBadFrame
	}
	b = b[1:]
	if m.HasNewest {
		if m.NewestNano, b, err = decodeInt64(b); err != nil {
			return err
		}
	}
	if m.Ingested, b, err = decodeCount(b); err != nil {
		return err
	}
	if m.Dropped, b, err = decodeCount(b); err != nil {
		return err
	}
	if m.EvictedBins, b, err = decodeCount(b); err != nil {
		return err
	}
	if len(b) != 0 {
		return ErrTrailingBytes
	}
	return nil
}

// AppendSnapshotProbe appends one probe-window frame payload (without
// the length prefix) to dst. Bins must already be ordered by strictly
// increasing Key and hold valid two-heap state — the layout the engine
// produces and the decoder enforces.
func AppendSnapshotProbe(dst []byte, p *SnapshotProbe) []byte {
	dst = append(dst, snapTagProbe)
	dst = appendUvarint(dst, uint64(p.ASN))
	dst = appendZigzag(dst, int64(p.ProbeID))
	dst = appendUvarint(dst, uint64(len(p.Bins)))
	for i := range p.Bins {
		bin := &p.Bins[i]
		dst = appendZigzag(dst, bin.Key)
		dst = appendUvarint(dst, uint64(bin.Groups))
		dst = appendUvarint(dst, uint64(len(bin.Lo)))
		dst = appendUvarint(dst, uint64(len(bin.Hi)))
		for _, v := range bin.Lo {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
		}
		for _, v := range bin.Hi {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
		}
	}
	return dst
}

// DecodeSnapshotProbeInto decodes one probe-window frame payload into
// p, reusing p's bin and heap storage, and re-validates what a correct
// encoder could only have produced from live engine state: strictly
// increasing bin keys and the two-heap median invariants
// (timeseries.ValidateHeapState — finite samples, balanced halves, heap
// order, disjoint partition). Any violation is ErrBadFrame; on error
// p's contents are unspecified.
func DecodeSnapshotProbeInto(p *SnapshotProbe, payload []byte) error {
	bins := p.Bins[:0]
	*p = SnapshotProbe{Bins: bins}
	if len(payload) == 0 {
		return ErrShortFrame
	}
	if payload[0] != snapTagProbe {
		return ErrBadFrame
	}
	b := payload[1:]
	u, n, err := uvarint(b)
	if err != nil {
		return err
	}
	if u > math.MaxUint32 {
		return ErrBadFrame
	}
	p.ASN = bgp.ASN(u)
	b = b[n:]
	if p.ProbeID, b, err = decodeInt(b); err != nil {
		return err
	}
	nbins, n, err := uvarint(b)
	if err != nil {
		return err
	}
	b = b[n:]
	// Each bin costs at least four bytes (key, groups, two counts), so a
	// count beyond the remaining payload is structurally impossible.
	if nbins > uint64(len(b))/4 {
		return ErrBadFrame
	}
	for bi := uint64(0); bi < nbins; bi++ {
		// Reuse the previous decode's heap storage when the bins slice
		// still has capacity for this cell.
		var lo, hi []float64
		if int(bi) < cap(p.Bins) {
			prev := p.Bins[:bi+1][bi]
			lo, hi = prev.Lo[:0], prev.Hi[:0]
		}
		bin := SnapshotBin{Lo: lo, Hi: hi}
		if bin.Key, b, err = decodeInt64(b); err != nil {
			return err
		}
		if bi > 0 && bin.Key <= p.Bins[bi-1].Key {
			return ErrBadFrame
		}
		var groups int64
		if groups, b, err = decodeCount(b); err != nil {
			return err
		}
		bin.Groups = int(groups)
		nlo, n, err := uvarint(b)
		if err != nil {
			return err
		}
		b = b[n:]
		nhi, n, err := uvarint(b)
		if err != nil {
			return err
		}
		b = b[n:]
		if nlo > uint64(len(b))/8 || nhi > (uint64(len(b))-nlo*8)/8 {
			return ErrShortFrame
		}
		for i := uint64(0); i < nlo; i++ {
			bin.Lo = append(bin.Lo, math.Float64frombits(binary.LittleEndian.Uint64(b))) //lmvet:ignore allocguard heap slices reach steady-state capacity on the first restore pass, then appends reuse it
			b = b[8:]
		}
		for i := uint64(0); i < nhi; i++ {
			bin.Hi = append(bin.Hi, math.Float64frombits(binary.LittleEndian.Uint64(b))) //lmvet:ignore allocguard heap slices reach steady-state capacity on the first restore pass, then appends reuse it
			b = b[8:]
		}
		if err := timeseries.ValidateHeapState(bin.Lo, bin.Hi); err != nil {
			return ErrBadFrame
		}
		p.Bins = append(p.Bins, bin) //lmvet:ignore allocguard bin slice reaches steady-state capacity on the first restore pass
	}
	if len(b) != 0 {
		return ErrTrailingBytes
	}
	return nil
}

// errProbeBeforeMeta marks a snapshot writer misuse: the meta frame
// must open the stream.
var errProbeBeforeMeta = errors.New("wire: snapshot probe frame before meta frame")

// SnapshotWriter frames engine snapshots onto w: exactly one meta frame
// first, then any number of probe-window frames. The encode buffer is
// pooled in the underlying Writer, so snapshotting a large engine
// allocates per largest frame, not per frame.
type SnapshotWriter struct {
	w         *Writer
	wroteMeta bool
}

// NewSnapshotWriter returns a writer producing a StreamSnapshot stream.
func NewSnapshotWriter(w io.Writer) *SnapshotWriter {
	return &SnapshotWriter{w: NewWriter(w, StreamSnapshot)}
}

// WriteMeta writes the mandatory opening meta frame.
func (sw *SnapshotWriter) WriteMeta(m *SnapshotMeta) error {
	sw.wroteMeta = true
	sw.w.buf = AppendSnapshotMeta(sw.w.buf[:0], m)
	return sw.w.writeFrame(sw.w.buf)
}

// WriteProbe writes one probe-window frame. The meta frame must have
// been written first.
func (sw *SnapshotWriter) WriteProbe(p *SnapshotProbe) error {
	if !sw.wroteMeta {
		return errProbeBeforeMeta
	}
	sw.w.buf = AppendSnapshotProbe(sw.w.buf[:0], p)
	return sw.w.writeFrame(sw.w.buf)
}

// Flush flushes buffered output. A snapshot without its meta frame is
// invalid, so Flush before WriteMeta fails rather than emitting a
// stream no reader accepts.
func (sw *SnapshotWriter) Flush() error {
	if !sw.wroteMeta {
		return errProbeBeforeMeta
	}
	return sw.w.Flush()
}

// SnapshotScanner streams a snapshot back: the meta frame via Meta,
// then one probe window per Scan, each decoded into owned storage that
// the next Scan overwrites — the same zero-steady-state-allocation
// discipline as Scanner. Transparently decompresses gzip.
type SnapshotScanner struct {
	f        frameReader
	meta     SnapshotMeta
	probe    SnapshotProbe
	metaRead bool
}

// NewSnapshotScanner wraps r, which must carry a StreamSnapshot wire
// stream (optionally gzip-compressed).
func NewSnapshotScanner(r io.Reader) *SnapshotScanner {
	return &SnapshotScanner{f: newFrameReader(r)}
}

// Meta returns the snapshot's meta frame, reading it on first call. A
// stream that ends before the mandatory meta frame is a truncated
// snapshot (ErrShortFrame).
func (s *SnapshotScanner) Meta() (*SnapshotMeta, error) {
	if s.metaRead {
		return &s.meta, s.f.err
	}
	if s.f.err != nil {
		return nil, s.f.err
	}
	s.metaRead = true
	payload, err := s.f.next(StreamSnapshot)
	if err == io.EOF {
		err = s.f.corruptHere(ErrShortFrame)
	}
	if err == nil {
		if derr := DecodeSnapshotMetaInto(&s.meta, payload); derr != nil {
			err = s.f.corruptHere(derr)
		}
	}
	s.f.err = err
	return &s.meta, err
}

// Scan advances to the next probe-window frame, reading the meta frame
// first if Meta has not been called. It returns false at end of input
// or on the first error; check Err. Each Scan overwrites the window
// returned by Probe.
func (s *SnapshotScanner) Scan() bool {
	if _, err := s.Meta(); err != nil {
		return false
	}
	payload, err := s.f.next(StreamSnapshot)
	if err == io.EOF {
		return false
	}
	if err != nil {
		s.f.err = err
		return false
	}
	if err := DecodeSnapshotProbeInto(&s.probe, payload); err != nil {
		s.f.err = s.f.corruptHere(err)
		return false
	}
	return true
}

// Probe returns the window decoded by the last successful Scan. The
// pointer and everything it references are valid until the next Scan
// call, which reuses the same storage.
func (s *SnapshotScanner) Probe() *SnapshotProbe { return &s.probe }

// Err returns the first error encountered, or nil at clean end of
// input.
func (s *SnapshotScanner) Err() error { return s.f.err }
