package wire

// Streaming access to wire archives: Writer frames results or log
// entries onto any io.Writer through one pooled encode buffer; Scanner
// and LogScanner stream frames back, decoding each into owned storage
// that every Scan overwrites (the zero-allocation replay path); Reader
// gives random access over an io.ReaderAt — an mmap'd archive, an HTTP
// range reader — by scanning the self-delimiting length prefixes into
// an offset index.

import (
	"bufio"
	"fmt"
	"io"

	"github.com/last-mile-congestion/lastmile/internal/bgp"
	"github.com/last-mile-congestion/lastmile/internal/cdn"
	lmioutil "github.com/last-mile-congestion/lastmile/internal/ioutil"
	"github.com/last-mile-congestion/lastmile/internal/traceroute"
)

// Writer frames encoded payloads onto w. The encode buffer is owned by
// the Writer and reused across writes, so steady-state writing
// allocates nothing per frame.
type Writer struct {
	bw          *bufio.Writer
	typ         byte
	buf         []byte // reused payload encode buffer
	pre         []byte // reused length-prefix buffer
	wroteHeader bool
}

// NewWriter returns a Writer producing a stream of the given type
// (StreamResults or StreamCDNLog). The stream header is emitted before
// the first frame — or by Flush, so an empty archive is still a valid
// stream.
func NewWriter(w io.Writer, streamType byte) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, 64*1024), typ: streamType}
}

// writeFrame emits the header (once) and one length-prefixed frame.
func (w *Writer) writeFrame(payload []byte) error {
	if err := w.header(); err != nil {
		return err
	}
	if len(payload) > MaxFrame {
		return ErrFrameTooLarge
	}
	w.pre = appendUvarint(w.pre[:0], uint64(len(payload)))
	if _, err := w.bw.Write(w.pre); err != nil {
		return err
	}
	_, err := w.bw.Write(payload)
	return err
}

func (w *Writer) header() error {
	if w.wroteHeader {
		return nil
	}
	w.wroteHeader = true
	w.pre = appendHeader(w.pre[:0], w.typ)
	_, err := w.bw.Write(w.pre)
	return err
}

// WriteResult appends one attributed result frame. The Writer must
// carry StreamResults.
func (w *Writer) WriteResult(asn bgp.ASN, r *traceroute.Result) error {
	if w.typ != StreamResults {
		return ErrStreamType
	}
	w.buf = AppendResult(w.buf[:0], asn, r)
	return w.writeFrame(w.buf)
}

// WriteLog appends one access-log frame. The Writer must carry
// StreamCDNLog.
func (w *Writer) WriteLog(e *cdn.LogEntry) error {
	if w.typ != StreamCDNLog {
		return ErrStreamType
	}
	w.buf = AppendLog(w.buf[:0], e)
	return w.writeFrame(w.buf)
}

// Flush writes the header if nothing was written yet and flushes
// buffered output. Call it before closing the underlying writer.
func (w *Writer) Flush() error {
	if err := w.header(); err != nil {
		return err
	}
	return w.bw.Flush()
}

// frameReader is the shared streaming state of Scanner and LogScanner:
// buffered input, the reused frame payload buffer, and frame/offset
// accounting for corruption reports.
type frameReader struct {
	br       *bufio.Reader
	buf      []byte
	err      error
	off      int64 // stream offset of the next unread byte
	frameOff int64 // stream offset of the current frame's length prefix
	frame    int   // 0-based index of the current frame
	started  bool
}

func newFrameReader(r io.Reader) frameReader {
	rd, err := lmioutil.MaybeGzip(r)
	if err != nil {
		// A broken gzip envelope means no wire stream is readable at
		// all; surface it as the typed not-a-stream error with the
		// cause in the message.
		return frameReader{err: fmt.Errorf("wire: %w: %v", ErrBadMagic, err)}
	}
	return frameReader{br: bufio.NewReaderSize(rd, 64*1024)}
}

// corruptHere wraps err with the current frame's location.
func (f *frameReader) corruptHere(err error) error {
	return corrupt(f.frame, f.frameOff, err)
}

// readErr converts an underlying read failure mid-stream into the typed
// corruption contract: the readable input ended inside a frame, whether
// by plain truncation or a failing transport (a corrupt gzip layer, an
// I/O error). Non-EOF causes are preserved in the message.
func (f *frameReader) readErr(err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return f.corruptHere(ErrShortFrame)
	}
	return f.corruptHere(fmt.Errorf("%w: %v", ErrShortFrame, err)) //lmvet:ignore allocguard terminal error path: the stream is over
}

// header consumes and validates the stream header on the first frame
// read.
func (f *frameReader) header(want byte) error {
	var hdr [HeaderLen]byte
	n, err := io.ReadFull(f.br, hdr[:])
	f.off += int64(n)
	if err != nil {
		if n >= 4 && IsMagic(hdr[:n]) {
			return f.readErr(err)
		}
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return ErrBadMagic
		}
		return fmt.Errorf("wire: %w: %v", ErrBadMagic, err) //lmvet:ignore allocguard terminal error path: the stream is over
	}
	typ, err := checkHeader(hdr[:])
	if err != nil {
		return err
	}
	if typ != want {
		return ErrStreamType
	}
	return nil
}

// next returns the next frame's payload, valid until the following
// call. io.EOF marks the clean end of the stream; every other error is
// terminal and already wrapped.
func (f *frameReader) next(want byte) ([]byte, error) {
	if !f.started {
		f.started = true
		f.frameOff = f.off
		if err := f.header(want); err != nil {
			return nil, err
		}
	}
	f.frameOff = f.off
	ln, err := f.readUvarint()
	if err != nil {
		return nil, err
	}
	if ln > MaxFrame {
		return nil, f.corruptHere(ErrFrameTooLarge)
	}
	payload, err := f.readPayload(ln)
	if err != nil {
		return nil, err
	}
	f.frame++
	return payload, nil
}

// frameAllocStep bounds how far readPayload grows the frame buffer
// ahead of bytes actually read: a corrupt length prefix declaring a
// near-MaxFrame frame on a truncated stream fails after at most one
// step of over-allocation, not after committing MaxFrame upfront.
const frameAllocStep = 64 * 1024

// readPayload returns the next ln payload bytes in the reused frame
// buffer. The declared length is untrusted input, so the buffer only
// grows (doubling, floor one step) once the bytes backing the previous
// capacity have actually arrived; steady state still reaches the
// stream's largest frame once and then reads allocation-free.
func (f *frameReader) readPayload(ln uint64) ([]byte, error) {
	var got uint64
	for got < ln {
		have := uint64(cap(f.buf))
		if have > ln {
			have = ln
		}
		if got == have { // capacity exhausted by real bytes: grow one step
			next := have + frameAllocStep
			if d := have * 2; d > next {
				next = d
			}
			if next > ln {
				next = ln
			}
			nb := make([]byte, next) //lmvet:ignore allocguard frame buffer grows to the stream's largest frame, then every read reuses it
			copy(nb, f.buf[:got])
			f.buf = nb
			have = next
		}
		n, err := io.ReadFull(f.br, f.buf[got:have])
		f.off += int64(n)
		got += uint64(n)
		if err != nil {
			return nil, f.readErr(err)
		}
	}
	return f.buf[:ln], nil
}

// readUvarint reads one canonical length prefix byte-by-byte. io.EOF at
// the first byte is the clean end of the stream.
func (f *frameReader) readUvarint() (uint64, error) {
	var v uint64
	for i := 0; ; i++ {
		c, err := f.br.ReadByte()
		if err != nil {
			if i == 0 && err == io.EOF {
				return 0, io.EOF
			}
			return 0, f.readErr(err)
		}
		f.off++
		if i == maxVarintLen-1 && c > 1 {
			return 0, f.corruptHere(ErrOverlongVarint)
		}
		if c < 0x80 {
			if c == 0 && i > 0 {
				return 0, f.corruptHere(ErrOverlongVarint)
			}
			return v | uint64(c)<<(7*i), nil
		}
		if i == maxVarintLen-1 {
			return 0, f.corruptHere(ErrOverlongVarint)
		}
		v |= uint64(c&0x7f) << (7 * i)
	}
}

// Scanner streams attributed results from a wire archive, transparently
// decompressing gzip. It owns one Result that every Scan decodes into.
type Scanner struct {
	f   frameReader
	res traceroute.Result
	asn bgp.ASN
}

// NewScanner wraps r, which must carry a StreamResults wire stream
// (optionally gzip-compressed). The header is validated on the first
// Scan.
func NewScanner(r io.Reader) *Scanner {
	return &Scanner{f: newFrameReader(r)}
}

// Scan advances to the next result. It returns false at end of input or
// on the first error; check Err. Each Scan overwrites the Result
// returned by Result.
//
//lmvet:hotpath
func (s *Scanner) Scan() bool {
	if s.f.err != nil {
		return false
	}
	payload, err := s.f.next(StreamResults)
	if err == io.EOF {
		return false
	}
	if err != nil {
		s.f.err = err
		return false
	}
	asn, err := DecodeResultInto(&s.res, payload)
	if err != nil {
		s.f.err = s.f.corruptHere(err)
		return false
	}
	s.asn = asn
	return true
}

// Result returns the result decoded by the last successful Scan. The
// pointer and everything it references are valid until the next Scan
// call, which reuses the same storage; callers that retain a result
// across Scans must Clone it (or CopyFrom into their own Result).
func (s *Scanner) Result() *traceroute.Result { return &s.res }

// ASN returns the origin AS attributed to the last scanned result.
func (s *Scanner) ASN() bgp.ASN { return s.asn }

// Err returns the first error encountered, or nil at clean end of
// input.
func (s *Scanner) Err() error { return s.f.err }

// LogScanner streams CDN access-log entries from a wire archive.
type LogScanner struct {
	f     frameReader
	entry cdn.LogEntry
}

// NewLogScanner wraps r, which must carry a StreamCDNLog wire stream
// (optionally gzip-compressed).
func NewLogScanner(r io.Reader) *LogScanner {
	return &LogScanner{f: newFrameReader(r)}
}

// Scan advances to the next entry. It returns false at end of input or
// on the first error; check Err.
//
//lmvet:hotpath
func (s *LogScanner) Scan() bool {
	if s.f.err != nil {
		return false
	}
	payload, err := s.f.next(StreamCDNLog)
	if err == io.EOF {
		return false
	}
	if err != nil {
		s.f.err = err
		return false
	}
	if err := DecodeLogInto(&s.entry, payload); err != nil {
		s.f.err = s.f.corruptHere(err)
		return false
	}
	return true
}

// Entry returns the entry decoded by the last successful Scan.
func (s *LogScanner) Entry() cdn.LogEntry { return s.entry }

// Err returns the first error encountered, or nil at clean end of
// input.
func (s *LogScanner) Err() error { return s.f.err }

// Reader is random access over an uncompressed wire archive through an
// io.ReaderAt — the mmap-friendly replay path. Frames are
// self-delimiting, so Index recovers every frame boundary in one linear
// scan of the length prefixes, and ResultAt decodes any frame without
// touching the rest of the archive.
type Reader struct {
	r    io.ReaderAt
	size int64
	typ  byte
}

// NewReader validates the stream header and returns a random-access
// reader over the archive's size bytes.
func NewReader(r io.ReaderAt, size int64) (*Reader, error) {
	var hdr [HeaderLen]byte
	if size < HeaderLen {
		if size >= 4 {
			b := hdr[:size]
			if _, err := r.ReadAt(b, 0); err == nil && IsMagic(b) {
				return nil, ErrShortFrame
			}
		}
		return nil, ErrBadMagic
	}
	if _, err := r.ReadAt(hdr[:], 0); err != nil {
		return nil, err
	}
	typ, err := checkHeader(hdr[:])
	if err != nil {
		return nil, err
	}
	return &Reader{r: r, size: size, typ: typ}, nil
}

// StreamType returns the archive's stream-type byte.
func (rd *Reader) StreamType() byte { return rd.typ }

// Index returns the stream offset of every frame's length prefix, in
// order — the seek table for ResultAt. A truncated or corrupt length
// prefix surfaces as a typed error locating the broken frame. A
// header-only archive (zero frames) is valid: Index returns an empty
// table and a nil error.
func (rd *Reader) Index() ([]int64, error) {
	var offs []int64
	off := int64(HeaderLen)
	for off < rd.size {
		ln, n, err := rd.prefixAt(off)
		if err != nil {
			return nil, corrupt(len(offs), off, err)
		}
		if ln > MaxFrame {
			return nil, corrupt(len(offs), off, ErrFrameTooLarge)
		}
		end := off + int64(n) + int64(ln)
		if end > rd.size {
			return nil, corrupt(len(offs), off, ErrShortFrame)
		}
		offs = append(offs, off)
		off = end
	}
	return offs, nil
}

// ResultAt decodes the frame whose length prefix starts at off
// (normally an Index entry) into dst, returning the attributed AS and
// the offset of the next frame. The archive must carry StreamResults.
// Offsets at or past the end of the archive — such as the end offset
// returned for the final frame — fail with a located ErrShortFrame;
// callers iterating a seek table should bound themselves by Index's
// entries rather than probing for the end.
func (rd *Reader) ResultAt(off int64, dst *traceroute.Result) (bgp.ASN, int64, error) {
	if rd.typ != StreamResults {
		return 0, 0, ErrStreamType
	}
	ln, n, err := rd.prefixAt(off)
	if err != nil {
		return 0, 0, corrupt(-1, off, err)
	}
	if ln > MaxFrame {
		return 0, 0, corrupt(-1, off, ErrFrameTooLarge)
	}
	end := off + int64(n) + int64(ln)
	if end > rd.size {
		return 0, 0, corrupt(-1, off, ErrShortFrame)
	}
	payload := make([]byte, ln)
	if _, err := rd.r.ReadAt(payload, off+int64(n)); err != nil {
		return 0, 0, err
	}
	asn, err := DecodeResultInto(dst, payload)
	if err != nil {
		return 0, 0, corrupt(-1, off, err)
	}
	return asn, end, nil
}

// prefixAt decodes the canonical length prefix at off.
func (rd *Reader) prefixAt(off int64) (uint64, int, error) {
	var win [maxVarintLen]byte
	w := win[:]
	if rem := rd.size - off; rem < int64(len(w)) {
		w = w[:rem]
	}
	if _, err := rd.r.ReadAt(w, off); err != nil && err != io.EOF {
		return 0, 0, err
	}
	return uvarint(w)
}
