package wire

import (
	"bytes"
	"compress/gzip"
	"errors"
	"math"
	"math/rand"
	"net/netip"
	"reflect"
	"runtime"
	"testing"
	"testing/quick"
	"time"

	"github.com/last-mile-congestion/lastmile/internal/bgp"
	"github.com/last-mile-congestion/lastmile/internal/cdn"
	"github.com/last-mile-congestion/lastmile/internal/traceroute"
)

// sampleResults covers the codec's shape space: a full v4 traceroute,
// a v6 one with NaN timeout RTTs, an empty result, and a v4-mapped-in-6
// address (tag6 on the wire, since netip keeps it distinct from pure v4).
func sampleResults() []*traceroute.Result {
	full := &traceroute.Result{
		ProbeID:   101,
		MsmID:     5010,
		Timestamp: time.Date(2019, 9, 19, 12, 30, 0, 250, time.UTC),
		AF:        4,
		SrcAddr:   netip.MustParseAddr("192.168.1.10"),
		FromAddr:  netip.MustParseAddr("203.0.113.99"),
		DstAddr:   netip.MustParseAddr("193.0.14.129"),
		Proto:     "ICMP",
		Hops: []traceroute.HopResult{
			{Hop: 1, Replies: []traceroute.Reply{
				{From: netip.MustParseAddr("192.168.1.1"), RTT: 0.52, TTL: 64},
				{Timeout: true, RTT: math.NaN()},
				{From: netip.MustParseAddr("192.168.1.1"), RTT: 0.61, TTL: 64},
			}},
			{Hop: 2, Replies: []traceroute.Reply{
				{From: netip.MustParseAddr("203.0.113.1"), RTT: 12.75, TTL: 254},
			}},
			{Hop: 3},
		},
	}
	v6 := &traceroute.Result{
		ProbeID:   -7,
		MsmID:     6010,
		Timestamp: time.Unix(1568894400, 999999999).UTC(),
		AF:        6,
		SrcAddr:   netip.MustParseAddr("2001:db8::5"),
		DstAddr:   netip.MustParseAddr("2001:db8::1"),
		Proto:     "UDP",
		Hops: []traceroute.HopResult{
			{Hop: 1, Replies: []traceroute.Reply{
				{Timeout: true, RTT: math.NaN()},
				{From: netip.MustParseAddr("2001:db8::1"), RTT: 0.7, TTL: 64},
			}},
		},
	}
	mapped := &traceroute.Result{
		Timestamp: time.Unix(0, 0).UTC(),
		FromAddr:  netip.AddrFrom16(netip.MustParseAddr("::ffff:1.2.3.4").As16()),
		Proto:     "weird/proto",
	}
	empty := &traceroute.Result{Timestamp: time.Unix(0, 0).UTC()}
	return []*traceroute.Result{full, v6, mapped, empty}
}

func sampleLogs() []*cdn.LogEntry {
	return []*cdn.LogEntry{
		{
			Timestamp:  time.Date(2019, 9, 19, 0, 15, 0, 0, time.UTC),
			ClientIP:   netip.MustParseAddr("203.98.0.17"),
			Bytes:      5 << 20,
			DurationMs: 812.5,
			Status:     200,
			Cache:      cdn.Hit,
		},
		{
			Timestamp:  time.Unix(1568894400, 123456789).UTC(),
			ClientIP:   netip.MustParseAddr("2001:db8::99"),
			Bytes:      -1,
			DurationMs: math.Inf(1),
			Status:     304,
			Cache:      cdn.Miss,
		},
		{Timestamp: time.Unix(0, 0).UTC()},
	}
}

// resultEqual compares results field by field, comparing RTTs by bit
// pattern (NaN payloads must survive) and treating nil and empty slices
// as equal.
func resultEqual(a, b *traceroute.Result) bool {
	if a.ProbeID != b.ProbeID || a.MsmID != b.MsmID || a.AF != b.AF ||
		!a.Timestamp.Equal(b.Timestamp) || a.Proto != b.Proto ||
		a.SrcAddr != b.SrcAddr || a.FromAddr != b.FromAddr || a.DstAddr != b.DstAddr {
		return false
	}
	if len(a.Hops) != len(b.Hops) {
		return false
	}
	for i := range a.Hops {
		ha, hb := &a.Hops[i], &b.Hops[i]
		if ha.Hop != hb.Hop || len(ha.Replies) != len(hb.Replies) {
			return false
		}
		for j := range ha.Replies {
			ra, rb := &ha.Replies[j], &hb.Replies[j]
			if ra.Timeout != rb.Timeout || ra.From != rb.From || ra.TTL != rb.TTL ||
				math.Float64bits(ra.RTT) != math.Float64bits(rb.RTT) {
				return false
			}
		}
	}
	return true
}

func logEqual(a, b *cdn.LogEntry) bool {
	return a.Timestamp.Equal(b.Timestamp) && a.ClientIP == b.ClientIP &&
		a.Bytes == b.Bytes && a.Status == b.Status && a.Cache == b.Cache &&
		math.Float64bits(a.DurationMs) == math.Float64bits(b.DurationMs)
}

func TestResultPayloadBijection(t *testing.T) {
	var reused traceroute.Result
	for i, r := range sampleResults() {
		asn := bgp.ASN(64500 + i)
		enc := AppendResult(nil, asn, r)
		gotASN, err := DecodeResultInto(&reused, enc)
		if err != nil {
			t.Fatalf("sample %d: decode: %v", i, err)
		}
		if gotASN != asn {
			t.Fatalf("sample %d: asn %d -> %d", i, asn, gotASN)
		}
		if !resultEqual(r, &reused) {
			t.Fatalf("sample %d: decode(encode(r)) != r:\n%+v\n%+v", i, r, &reused)
		}
		enc2 := AppendResult(nil, gotASN, &reused)
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("sample %d: encode(decode(b)) != b:\n%x\n%x", i, enc, enc2)
		}
	}
}

func TestLogPayloadBijection(t *testing.T) {
	var reused cdn.LogEntry
	for i, e := range sampleLogs() {
		enc := AppendLog(nil, e)
		if err := DecodeLogInto(&reused, enc); err != nil {
			t.Fatalf("sample %d: decode: %v", i, err)
		}
		if !logEqual(e, &reused) {
			t.Fatalf("sample %d: decode(encode(e)) != e:\n%+v\n%+v", i, e, &reused)
		}
		enc2 := AppendLog(nil, &reused)
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("sample %d: encode(decode(b)) != b", i)
		}
	}
}

// TestDecodeReuseNoStaleState decodes a large result then a small one
// into the same Result: nothing from the first decode may leak into the
// second.
func TestDecodeReuseNoStaleState(t *testing.T) {
	samples := sampleResults()
	big, small := samples[0], samples[3]
	var r traceroute.Result
	if _, err := DecodeResultInto(&r, AppendResult(nil, 1, big)); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeResultInto(&r, AppendResult(nil, 2, small)); err != nil {
		t.Fatal(err)
	}
	if !resultEqual(small, &r) {
		t.Fatalf("stale state after reuse: %+v", &r)
	}
}

// randAddr generates none / v4 / v6 / v4-mapped-in-6 with equal odds.
func randAddr(rng *rand.Rand) netip.Addr {
	switch rng.Intn(4) {
	case 0:
		return netip.Addr{}
	case 1:
		var b [4]byte
		rng.Read(b[:])
		return netip.AddrFrom4(b)
	case 2:
		var b [16]byte
		rng.Read(b[:])
		return netip.AddrFrom16(b)
	default:
		var b [16]byte
		b[10], b[11] = 0xff, 0xff
		rng.Read(b[12:])
		return netip.AddrFrom16(b)
	}
}

func randResult(rng *rand.Rand) *traceroute.Result {
	r := &traceroute.Result{
		ProbeID:   int(int32(rng.Uint32())),
		MsmID:     int(int32(rng.Uint32())),
		Timestamp: time.Unix(rng.Int63n(1<<40)-(1<<39), rng.Int63n(1e9)).UTC(),
		AF:        rng.Intn(7),
		SrcAddr:   randAddr(rng),
		FromAddr:  randAddr(rng),
		DstAddr:   randAddr(rng),
		Proto:     [...]string{"", "ICMP", "UDP", "TCP", "X"}[rng.Intn(5)],
	}
	for h := rng.Intn(5); h > 0; h-- {
		hop := traceroute.HopResult{Hop: rng.Intn(64) - 1}
		for n := rng.Intn(4); n > 0; n-- {
			rep := traceroute.Reply{TTL: rng.Intn(256)}
			if rng.Intn(3) == 0 {
				rep.Timeout = true
				rep.RTT = math.NaN()
			} else {
				rep.From = randAddr(rng)
				rep.RTT = rng.NormFloat64() * 10
			}
			hop.Replies = append(hop.Replies, rep)
		}
		r.Hops = append(r.Hops, hop)
	}
	return r
}

// TestQuickResultRoundTrip pins both halves of the bijection on random
// results: decode(encode(r)) == r and encode(decode(b)) == b.
func TestQuickResultRoundTrip(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 2000,
		Values: func(args []reflect.Value, rng *rand.Rand) {
			args[0] = reflect.ValueOf(randResult(rng))
			args[1] = reflect.ValueOf(bgp.ASN(rng.Uint32()))
		},
	}
	prop := func(r *traceroute.Result, asn bgp.ASN) bool {
		enc := AppendResult(nil, asn, r)
		var got traceroute.Result
		gotASN, err := DecodeResultInto(&got, enc)
		if err != nil || gotASN != asn || !resultEqual(r, &got) {
			return false
		}
		return bytes.Equal(enc, AppendResult(nil, gotASN, &got))
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// buildArchive frames the samples with distinct ASNs.
func buildArchive(t *testing.T) ([]byte, []*traceroute.Result) {
	t.Helper()
	samples := sampleResults()
	var buf bytes.Buffer
	w := NewWriter(&buf, StreamResults)
	for i, r := range samples {
		if err := w.WriteResult(bgp.ASN(64500+i), r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), samples
}

func TestWriterScannerRoundTrip(t *testing.T) {
	archive, samples := buildArchive(t)
	if !IsMagic(archive) {
		t.Fatal("archive does not start with the wire magic")
	}

	scanAll := func(t *testing.T, sc *Scanner) {
		t.Helper()
		for i, want := range samples {
			if !sc.Scan() {
				t.Fatalf("Scan stopped at %d: %v", i, sc.Err())
			}
			if sc.ASN() != bgp.ASN(64500+i) {
				t.Fatalf("frame %d: asn %d", i, sc.ASN())
			}
			if !resultEqual(want, sc.Result()) {
				t.Fatalf("frame %d: %+v != %+v", i, sc.Result(), want)
			}
		}
		if sc.Scan() {
			t.Fatal("extra frame")
		}
		if err := sc.Err(); err != nil {
			t.Fatalf("clean stream ended with error: %v", err)
		}
	}

	t.Run("plain", func(t *testing.T) {
		scanAll(t, NewScanner(bytes.NewReader(archive)))
	})
	t.Run("gzip", func(t *testing.T) {
		var gz bytes.Buffer
		zw := gzip.NewWriter(&gz)
		if _, err := zw.Write(archive); err != nil {
			t.Fatal(err)
		}
		if err := zw.Close(); err != nil {
			t.Fatal(err)
		}
		scanAll(t, NewScanner(bytes.NewReader(gz.Bytes())))
	})
}

func TestLogWriterScannerRoundTrip(t *testing.T) {
	logs := sampleLogs()
	var buf bytes.Buffer
	w := NewWriter(&buf, StreamCDNLog)
	for _, e := range logs {
		if err := w.WriteLog(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	sc := NewLogScanner(bytes.NewReader(buf.Bytes()))
	for i, want := range logs {
		if !sc.Scan() {
			t.Fatalf("Scan stopped at %d: %v", i, sc.Err())
		}
		got := sc.Entry()
		if !logEqual(want, &got) {
			t.Fatalf("frame %d: %+v != %+v", i, got, want)
		}
	}
	if sc.Scan() || sc.Err() != nil {
		t.Fatalf("trailing frame or error: %v", sc.Err())
	}
}

// TestEmptyStream: a flushed writer with no frames is a valid archive.
func TestEmptyStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, StreamResults)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != HeaderLen {
		t.Fatalf("empty stream is %d bytes", buf.Len())
	}
	sc := NewScanner(bytes.NewReader(buf.Bytes()))
	if sc.Scan() {
		t.Fatal("scanned a frame from an empty stream")
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("empty stream: %v", err)
	}
}

// TestStreamTypeGates: writers refuse frames of the other schema, and
// scanners refuse streams of the other type.
func TestStreamTypeGates(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, StreamResults)
	if err := w.WriteLog(sampleLogs()[0]); !errors.Is(err, ErrStreamType) {
		t.Fatalf("WriteLog on a results writer: %v", err)
	}
	lw := NewWriter(&buf, StreamCDNLog)
	if err := lw.WriteResult(1, sampleResults()[0]); !errors.Is(err, ErrStreamType) {
		t.Fatalf("WriteResult on a log writer: %v", err)
	}

	archive, _ := buildArchive(t)
	ls := NewLogScanner(bytes.NewReader(archive))
	if ls.Scan() {
		t.Fatal("log scanner accepted a results stream")
	}
	if !errors.Is(ls.Err(), ErrStreamType) {
		t.Fatalf("want ErrStreamType, got %v", ls.Err())
	}
}

func TestReaderIndexAndResultAt(t *testing.T) {
	archive, samples := buildArchive(t)
	rd, err := NewReader(bytes.NewReader(archive), int64(len(archive)))
	if err != nil {
		t.Fatal(err)
	}
	if rd.StreamType() != StreamResults {
		t.Fatalf("stream type %d", rd.StreamType())
	}
	offs, err := rd.Index()
	if err != nil {
		t.Fatal(err)
	}
	if len(offs) != len(samples) {
		t.Fatalf("index has %d frames, want %d", len(offs), len(samples))
	}
	// Random access, in reverse, each frame decoded independently.
	var r traceroute.Result
	for i := len(offs) - 1; i >= 0; i-- {
		asn, next, err := rd.ResultAt(offs[i], &r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if asn != bgp.ASN(64500+i) || !resultEqual(samples[i], &r) {
			t.Fatalf("frame %d mismatch", i)
		}
		if i+1 < len(offs) && next != offs[i+1] {
			t.Fatalf("frame %d: next offset %d, want %d", i, next, offs[i+1])
		}
		if i == len(offs)-1 && next != int64(len(archive)) {
			t.Fatalf("last frame: next offset %d, want stream end %d", next, len(archive))
		}
	}
}

// TestReaderZeroFrames pins the documented header-only contract: an
// archive with no frames indexes to an empty seek table without error,
// and probing ResultAt at the archive's end offset fails with a located
// ErrShortFrame rather than fabricating a frame.
func TestReaderZeroFrames(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, StreamResults)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	rd, err := NewReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	offs, err := rd.Index()
	if err != nil {
		t.Fatalf("Index on zero-frame archive: %v", err)
	}
	if len(offs) != 0 {
		t.Fatalf("Index on zero-frame archive found %d frames", len(offs))
	}
	var r traceroute.Result
	if _, _, err := rd.ResultAt(int64(buf.Len()), &r); !errors.Is(err, ErrShortFrame) {
		t.Fatalf("ResultAt at end offset = %v, want ErrShortFrame", err)
	}
}

func TestReaderErrors(t *testing.T) {
	archive, _ := buildArchive(t)

	if _, err := NewReader(bytes.NewReader([]byte("{\"fw\":5020}")), 11); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("JSON input: %v", err)
	}
	if _, err := NewReader(bytes.NewReader(archive[:5]), 5); !errors.Is(err, ErrShortFrame) {
		t.Fatalf("mid-header truncation: %v", err)
	}

	// Truncating mid-payload breaks Index with a located error.
	rd, err := NewReader(bytes.NewReader(archive[:len(archive)-3]), int64(len(archive)-3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rd.Index(); !errors.Is(err, ErrShortFrame) {
		t.Fatalf("truncated archive Index: %v", err)
	}
	var ce *CorruptError
	if _, err := rd.Index(); !errors.As(err, &ce) {
		t.Fatalf("truncation not located: %v", err)
	}

	// A log stream refuses ResultAt.
	var buf bytes.Buffer
	lw := NewWriter(&buf, StreamCDNLog)
	if err := lw.Flush(); err != nil {
		t.Fatal(err)
	}
	lrd, err := NewReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	var r traceroute.Result
	if _, _, err := lrd.ResultAt(HeaderLen, &r); !errors.Is(err, ErrStreamType) {
		t.Fatalf("ResultAt on a log stream: %v", err)
	}
}

// TestStreamCorruptionTable pins the typed error for each class of
// stream-level damage.
func TestStreamCorruptionTable(t *testing.T) {
	archive, _ := buildArchive(t)
	mutate := func(f func(b []byte) []byte) []byte {
		b := append([]byte(nil), archive...)
		return f(b)
	}
	cases := []struct {
		name string
		in   []byte
		want error
	}{
		{"empty input", nil, ErrBadMagic},
		{"not wire at all", []byte(`{"fw":5020}`), ErrBadMagic},
		{"magic bit flipped", mutate(func(b []byte) []byte { b[0] ^= 0x01; return b }), ErrBadMagic},
		{"unknown version", mutate(func(b []byte) []byte { b[4] = 99; return b }), ErrVersion},
		{"wrong stream type", mutate(func(b []byte) []byte { b[5] = StreamCDNLog; return b }), ErrStreamType},
		{"header truncated", archive[:5], ErrShortFrame},
		{"length prefix truncated", archive[:HeaderLen+1], ErrShortFrame},
		{"payload truncated", archive[:len(archive)-2], ErrShortFrame},
		{"overlong length prefix", mutate(func(b []byte) []byte {
			// Rewrite the first frame's 1-byte length prefix as an
			// overlong 2-byte encoding of the same value.
			n := b[HeaderLen]
			out := append(b[:HeaderLen:HeaderLen], n|0x80, 0x00)
			return append(out, b[HeaderLen+1:]...)
		}), ErrOverlongVarint},
		{"frame beyond size limit", mutate(func(b []byte) []byte {
			return appendUvarint(b[:HeaderLen:HeaderLen], MaxFrame+1)
		}), ErrFrameTooLarge},
		{"frame payload with trailing bytes", mutate(func(b []byte) []byte {
			// Grow the first frame's length by one so the decoder sees a
			// stray byte after a clean payload.
			rest := append([]byte{0x00}, b[HeaderLen+1+int(b[HeaderLen]):]...)
			out := append(b[:HeaderLen:HeaderLen], b[HeaderLen]+1)
			out = append(out, b[HeaderLen+1:HeaderLen+1+int(b[HeaderLen])]...)
			return append(out, rest...)
		}), ErrTrailingBytes},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := NewScanner(bytes.NewReader(tc.in))
			for sc.Scan() {
			}
			if !errors.Is(sc.Err(), tc.want) {
				t.Fatalf("want %v, got %v", tc.want, sc.Err())
			}
		})
	}
}

// TestPayloadCorruptionExhaustive decodes every prefix of every valid
// payload and a single-byte mutation at every position: all must fail or
// succeed with a typed result, never panic, and every truncation must
// fail (no payload has a valid proper prefix that consumes all bytes).
func TestPayloadCorruptionExhaustive(t *testing.T) {
	var r traceroute.Result
	for si, sample := range sampleResults() {
		payload := AppendResult(nil, 64500, sample)
		for i := 0; i < len(payload); i++ {
			if _, err := DecodeResultInto(&r, payload[:i]); err == nil {
				t.Fatalf("sample %d: truncation to %d bytes decoded cleanly", si, i)
			}
		}
		for i := 0; i < len(payload); i++ {
			for _, delta := range []byte{0x01, 0x80, 0xff} {
				b := append([]byte(nil), payload...)
				b[i] ^= delta
				// Must not panic; a surviving decode must re-encode
				// canonically.
				if asn, err := DecodeResultInto(&r, b); err == nil {
					if enc := AppendResult(nil, asn, &r); !bytes.Equal(enc, b) {
						t.Fatalf("sample %d: mutated payload decoded non-canonically (byte %d ^ %#x)", si, i, delta)
					}
				}
			}
		}
	}
	var e cdn.LogEntry
	for si, sample := range sampleLogs() {
		payload := AppendLog(nil, sample)
		for i := 0; i < len(payload); i++ {
			if err := DecodeLogInto(&e, payload[:i]); err == nil {
				t.Fatalf("log sample %d: truncation to %d bytes decoded cleanly", si, i)
			}
		}
	}
}

// TestDecodeResultErrorTable pins typed errors for structurally invalid
// frame bodies.
func TestDecodeResultErrorTable(t *testing.T) {
	valid := AppendResult(nil, 64500, sampleResults()[0])
	cases := []struct {
		name string
		in   []byte
		want error
	}{
		{"empty payload", nil, ErrShortFrame},
		{"asn beyond uint32", appendUvarint(nil, 1<<33), ErrBadFrame},
		{"overlong asn varint", []byte{0x80, 0x00}, ErrOverlongVarint},
		{"nanoseconds out of range", func() []byte {
			b := appendUvarint(nil, 64500)       // asn
			b = appendZigzag(b, 0)               // probeID
			b = appendZigzag(b, 0)               // msmID
			b = appendZigzag(b, 0)               // sec
			return appendUvarint(b, uint64(1e9)) // nsec: out of range
		}(), ErrBadFrame},
		{"unix seconds out of range", func() []byte {
			b := appendUvarint(nil, 64500)
			b = appendZigzag(b, 0)
			b = appendZigzag(b, 0)
			b = appendZigzag(b, maxUnixSec+1)
			return appendUvarint(b, 0)
		}(), ErrBadFrame},
		{"trailing bytes", append(append([]byte(nil), valid...), 0x00), ErrTrailingBytes},
	}
	var r traceroute.Result
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodeResultInto(&r, tc.in); !errors.Is(err, tc.want) {
				t.Fatalf("want %v, got %v", tc.want, err)
			}
		})
	}
}

// TestVarintCanonicality: every canonical encoding decodes to itself and
// overlong forms are rejected.
func TestVarintCanonicality(t *testing.T) {
	for _, v := range []uint64{0, 1, 127, 128, 1 << 14, 1<<64 - 1} {
		enc := appendUvarint(nil, v)
		got, n, err := uvarint(enc)
		if err != nil || got != v || n != len(enc) {
			t.Fatalf("uvarint(%d): got %d (%d bytes), err %v", v, got, n, err)
		}
	}
	for _, b := range [][]byte{
		{0x80, 0x00}, // overlong zero
		{0xff, 0x00}, // zero continuation
		{0x80},       // truncated
		{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x02}, // 65-bit
	} {
		if _, _, err := uvarint(b); err == nil {
			t.Fatalf("uvarint(%x) decoded cleanly", b)
		}
	}
	for _, v := range []int64{0, -1, 1, math.MinInt64, math.MaxInt64} {
		if got := unzigzag(zigzag(v)); got != v {
			t.Fatalf("zigzag(%d) round-trips to %d", v, got)
		}
	}
}

// TestHugeDeclaredLengthFailsCheaply pins the allocation cap on
// untrusted length prefixes: a corrupt stream declaring a MaxFrame-sized
// frame backed by three real bytes must fail with ErrShortFrame after
// allocating no more than one growth step — not after committing 16MiB
// to a length the stream cannot back.
func TestHugeDeclaredLengthFailsCheaply(t *testing.T) {
	var sb bytes.Buffer
	w := NewWriter(&sb, StreamResults)
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	raw := appendUvarint(sb.Bytes(), MaxFrame) // declared: the maximum
	raw = append(raw, 0x01, 0x02, 0x03)        // real payload: 3 bytes

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	sc := NewScanner(bytes.NewReader(raw))
	if sc.Scan() {
		t.Fatal("Scan succeeded on a truncated huge frame")
	}
	runtime.ReadMemStats(&after)
	if !errors.Is(sc.Err(), ErrShortFrame) {
		t.Fatalf("Err = %v, want ErrShortFrame", sc.Err())
	}
	if grew := after.TotalAlloc - before.TotalAlloc; grew > 1<<20 {
		t.Errorf("failing on a %d-byte declared length allocated %d bytes; the stepwise cap should keep it under 1MiB", MaxFrame, grew)
	}
}

// TestReadPayloadGrowth pins the growth schedule: large genuine frames
// still round-trip through the stepwise buffer (exercising the
// copy-on-grow path across several doublings), and a second scan of the
// same stream reuses the grown buffer.
func TestReadPayloadGrowth(t *testing.T) {
	big := &traceroute.Result{
		ProbeID:   7,
		MsmID:     5010,
		Timestamp: time.Unix(1568889000, 0).UTC(),
		AF:        4,
		SrcAddr:   netip.MustParseAddr("192.0.2.1"),
		FromAddr:  netip.MustParseAddr("203.0.113.99"),
		DstAddr:   netip.MustParseAddr("198.51.100.9"),
		Proto:     "UDP",
	}
	from := netip.MustParseAddr("203.0.113.7")
	for h := 0; h < 2048; h++ {
		hop := traceroute.HopResult{Hop: h + 1}
		for r := 0; r < 16; r++ {
			hop.Replies = append(hop.Replies, traceroute.Reply{From: from, RTT: float64(r) + 0.25, TTL: 64})
		}
		big.Hops = append(big.Hops, hop)
	}

	var sb bytes.Buffer
	w := NewWriter(&sb, StreamResults)
	for i := 0; i < 2; i++ {
		if err := w.WriteResult(64496, big); err != nil {
			t.Fatalf("WriteResult %d: %v", i, err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	sc := NewScanner(bytes.NewReader(sb.Bytes()))
	for i := 0; i < 2; i++ {
		if !sc.Scan() {
			t.Fatalf("Scan %d failed: %v", i, sc.Err())
		}
		if got := sc.Result(); !reflect.DeepEqual(got, big) {
			t.Fatalf("Scan %d: result corrupted across buffer growth (%d hops vs %d)", i, len(got.Hops), len(big.Hops))
		}
	}
	if sc.Scan() || sc.Err() != nil {
		t.Fatalf("stream should end cleanly, err %v", sc.Err())
	}
}
