// Package wire implements the compact binary wire format for attributed
// traceroute results — the zero-allocation ingest path that lets archive
// replay run as fast as the delay engine instead of being bounded by
// encoding/json.
//
// A wire stream is a fixed header followed by length-prefixed frames:
//
//	stream  := header frame*
//	header  := magic(4) version(1) streamType(1)
//	frame   := uvarint(len(payload)) payload
//
// The header magic is {0x89 'L' 'M' 'W'}: the high first byte keeps a
// wire stream from ever being mistaken for JSON, CSV, or a gzip stream,
// mirroring PNG's signature trick. Frames are self-delimiting, so a
// reader can skip a frame without decoding it — that is what makes the
// format mmap/io.ReaderAt-friendly (see Reader): an index over frame
// offsets is one linear scan of the length prefixes, and replay can
// seek to any frame boundary.
//
// All integers are canonical LEB128 varints (uvarint for counts and
// unsigned values, zigzag for signed ones); float64 bits travel as
// 8-byte little-endian fixed words so NaN payloads and signed zeros
// round-trip bit-identically. Canonical means minimal: a decoder
// rejects overlong encodings, so every value has exactly one byte
// representation and encoding is deterministic — encode(decode(b)) == b
// and decode(encode(r)) == r, which the codec fuzz and quick.Check
// properties pin.
//
// Versioning: the version byte covers the whole stream. Readers reject
// versions they do not know (ErrVersion) rather than guessing; adding
// fields to a frame is a version bump, not an in-place extension. The
// stream-type byte namespaces independent framings over the same
// container (traceroute results, CDN access logs) so a reader never
// silently decodes the wrong schema (ErrStreamType).
//
// Decoding is allocation-free in steady state: DecodeResultInto decodes
// into a caller-owned Result, reusing its hop and reply storage, and
// Scanner owns one Result that each Scan overwrites — the same
// EstimateInto/sync.Pool discipline the engine hot path uses, enforced
// statically by allocguard through the //lmvet:hotpath annotations on
// the decode roots and dynamically by the ingest benchmark gate.
package wire

import (
	"errors"
	"fmt"
)

// Header layout.
const (
	// Version is the current stream format version.
	Version = 1

	// StreamResults is the stream type carrying attributed traceroute
	// results (one AttributedResult per frame).
	StreamResults byte = 1
	// StreamCDNLog is the stream type carrying CDN access-log entries.
	StreamCDNLog byte = 2
	// StreamSnapshot is the stream type carrying serialized delay-engine
	// state: one meta frame (engine configuration, watermark, monotonic
	// counters) followed by one frame per resident (AS, probe) window.
	StreamSnapshot byte = 3

	// HeaderLen is the byte length of the stream header.
	HeaderLen = 6

	// MaxFrame bounds a single frame's payload. A traceroute result is
	// a few hundred bytes; the bound exists so a corrupt length prefix
	// cannot make a reader buffer gigabytes.
	MaxFrame = 1 << 24
)

// Magic is the 4-byte stream signature.
var Magic = [4]byte{0x89, 'L', 'M', 'W'}

// Frame-level corruption errors. Every malformed input maps onto one of
// these typed sentinels (usually wrapped in a *CorruptError carrying the
// frame index and byte offset), never a panic and never a silent
// truncation.
var (
	// ErrBadMagic marks input that is not a wire stream at all.
	ErrBadMagic = errors.New("wire: bad magic (not a lastmile wire stream)")
	// ErrVersion marks a wire stream with an unsupported version byte.
	ErrVersion = errors.New("wire: unsupported stream version")
	// ErrStreamType marks a wire stream carrying a different schema than
	// the reader expects.
	ErrStreamType = errors.New("wire: unexpected stream type")
	// ErrShortFrame marks a stream that ends mid-header, mid-length, or
	// mid-payload — a truncated archive.
	ErrShortFrame = errors.New("wire: short frame (truncated stream)")
	// ErrFrameTooLarge marks a length prefix beyond MaxFrame.
	ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")
	// ErrOverlongVarint marks a non-canonical (non-minimal) varint.
	ErrOverlongVarint = errors.New("wire: overlong varint")
	// ErrTrailingBytes marks payload bytes left over after a frame
	// decoded cleanly — two frames glued together or a corrupt length.
	ErrTrailingBytes = errors.New("wire: trailing bytes after frame payload")
	// ErrBadFrame marks a structurally invalid frame body (bad address
	// tag, count overflow, bad proto tag).
	ErrBadFrame = errors.New("wire: malformed frame")
)

// CorruptError locates a frame-level decode failure: which frame (0-based)
// and at which byte offset within the stream the reader gave up. It wraps
// one of the sentinel errors above.
type CorruptError struct {
	// Frame is the 0-based index of the frame being decoded.
	Frame int
	// Offset is the stream byte offset where decoding stopped making
	// sense (the frame's length prefix for framing errors).
	Offset int64
	// Err is the underlying typed error.
	Err error
}

// Error renders the location and cause.
func (e *CorruptError) Error() string {
	return fmt.Sprintf("wire: frame %d (offset %d): %v", e.Frame, e.Offset, e.Err)
}

// Unwrap exposes the sentinel for errors.Is.
func (e *CorruptError) Unwrap() error { return e.Err }

// corrupt wraps err with frame/offset context. Kept out of line so the
// hot decode loop only pays for it on the terminal error path.
func corrupt(frame int, off int64, err error) error {
	return &CorruptError{Frame: frame, Offset: off, Err: err} //lmvet:ignore allocguard terminal error path: the stream is over
}

// appendHeader appends the 6-byte stream header for the given type.
func appendHeader(dst []byte, streamType byte) []byte {
	dst = append(dst, Magic[0], Magic[1], Magic[2], Magic[3], Version, streamType)
	return dst
}

// checkHeader validates a stream header and returns its stream type.
func checkHeader(h []byte) (byte, error) {
	if len(h) < HeaderLen {
		return 0, ErrShortFrame
	}
	if h[0] != Magic[0] || h[1] != Magic[1] || h[2] != Magic[2] || h[3] != Magic[3] {
		return 0, ErrBadMagic
	}
	if h[4] != Version {
		return 0, ErrVersion
	}
	return h[5], nil
}

// IsMagic reports whether b begins with the wire stream signature —
// the sniff the format auto-detecting scanners use.
func IsMagic(b []byte) bool {
	return len(b) >= 4 && b[0] == Magic[0] && b[1] == Magic[1] && b[2] == Magic[2] && b[3] == Magic[3]
}
