package scenario

import (
	"math"
	"testing"

	"github.com/last-mile-congestion/lastmile/internal/atlas"
	"github.com/last-mile-congestion/lastmile/internal/lastmile"
	"github.com/last-mile-congestion/lastmile/internal/stats"
)

// medianOf returns the median of the non-NaN values (test helper).
func medianOf(vals []float64) float64 {
	return stats.MedianIgnoringNaN(vals)
}

// newTestEngine builds an Atlas engine for scenario tests.
func newTestEngine(seed uint64) *atlas.Engine {
	return atlas.NewEngine(seed)
}

func buildTokyo(t *testing.T) *Tokyo {
	t.Helper()
	tk, err := BuildTokyo(42, 200)
	if err != nil {
		t.Fatal(err)
	}
	return tk
}

func TestTokyoShape(t *testing.T) {
	tk := buildTokyo(t)
	if len(tk.ISPA.Probes) != 8 || len(tk.ISPB.Probes) != 5 || len(tk.ISPC.Probes) != 8 {
		t.Fatalf("probe counts = %d/%d/%d, want 8/5/8 (§4)",
			len(tk.ISPA.Probes), len(tk.ISPB.Probes), len(tk.ISPC.Probes))
	}
	if len(tk.ISPD.Probes) != 6 {
		t.Fatalf("ISP_D probes = %d, want 6", len(tk.ISPD.Probes))
	}
	if tk.ISPDAnchor == nil || !tk.ISPDAnchor.IsAnchor {
		t.Fatal("missing anchor")
	}
	// ISP_A mobile is a different AS; ISP_B/C mobile share the broadband
	// AS.
	if tk.ISPAMobile.Network.ASN == tk.ISPA.Network.ASN {
		t.Fatal("ISP_A mobile must be a separate AS (§4.2)")
	}
	if tk.ISPBMobile.Network.ASN != tk.ISPB.Network.ASN {
		t.Fatal("ISP_B mobile shares the broadband AS")
	}
	if tk.MobilePrefixes.Len() != 6 {
		t.Fatalf("mobile prefixes = %d, want 3 v4 + 3 v6", tk.MobilePrefixes.Len())
	}
	// Mobile prefixes cover mobile clients but not broadband ones.
	if !tk.MobilePrefixes.Contains(tk.ISPAMobile.Network.Prefix.Addr().Next()) {
		t.Fatal("mobile prefix not covered")
	}
	if tk.MobilePrefixes.Contains(tk.ISPA.Network.Prefix.Addr().Next()) {
		t.Fatal("broadband prefix wrongly covered by mobile set")
	}
}

func TestTokyoProbesInGreaterTokyo(t *testing.T) {
	tk := buildTokyo(t)
	valid := map[string]bool{"Tokyo": true, "Yokohama": true, "Chiba": true, "Saitama": true}
	for _, p := range tk.ISPA.Probes {
		if !valid[p.City] {
			t.Fatalf("probe city %q outside Greater Tokyo", p.City)
		}
		if p.CC != "JP" {
			t.Fatal("probe not in JP")
		}
	}
}

// tokyoSignal aggregates one Tokyo ISP's probes over the case-study week.
func tokyoSignal(t *testing.T, tk *Tokyo, ti *TokyoISP) []float64 {
	t.Helper()
	p := TokyoPeriod()
	var accs []*lastmile.ProbeAccumulator
	for _, probe := range ti.Probes {
		acc, err := SimulateProbeDelay(probe, p, 6, tk.Seed)
		if err != nil {
			t.Fatal(err)
		}
		accs = append(accs, acc)
	}
	agg, _, err := lastmile.PopulationDelay(accs, lastmile.DefaultMinTraceroutes)
	if err != nil {
		t.Fatal(err)
	}
	return agg.Values
}

func TestTokyoDelayContrast(t *testing.T) {
	// §4.1: ISP_A and ISP_B show clear peak-hour delay; ISP_C stays an
	// order of magnitude lower.
	tk := buildTokyo(t)
	maxOf := func(vals []float64) float64 {
		m := 0.0
		for _, v := range vals {
			if !math.IsNaN(v) && v > m {
				m = v
			}
		}
		return m
	}
	aMax := maxOf(tokyoSignal(t, tk, tk.ISPA))
	bMax := maxOf(tokyoSignal(t, tk, tk.ISPB))
	cMax := maxOf(tokyoSignal(t, tk, tk.ISPC))
	if aMax < 2 || bMax < 1.5 {
		t.Fatalf("legacy ISPs not congested: A=%.2f B=%.2f", aMax, bMax)
	}
	if cMax > aMax/5 {
		t.Fatalf("ISP_C max %.2f not an order below ISP_A %.2f", cMax, aMax)
	}
}

func TestTokyoAnchorVsProbes(t *testing.T) {
	// Appendix B: ISP_D probes congested, anchor flat.
	tk := buildTokyo(t)
	p := TokyoPeriod()
	probeVals := tokyoSignal(t, tk, tk.ISPD)
	anchorAcc, err := SimulateProbeDelay(tk.ISPDAnchor, p, 6, tk.Seed)
	if err != nil {
		t.Fatal(err)
	}
	anchorQD, err := anchorAcc.QueuingDelay(3)
	if err != nil {
		t.Fatal(err)
	}
	probeMax, anchorMax := 0.0, 0.0
	for _, v := range probeVals {
		if !math.IsNaN(v) && v > probeMax {
			probeMax = v
		}
	}
	for _, v := range anchorQD.Values {
		if !math.IsNaN(v) && v > anchorMax {
			anchorMax = v
		}
	}
	if probeMax < 1.5 {
		t.Fatalf("ISP_D probes max delay %.2f, want congestion", probeMax)
	}
	if anchorMax > 1 {
		t.Fatalf("anchor max delay %.2f, want flat", anchorMax)
	}
}

func TestTokyoDeterministic(t *testing.T) {
	a := buildTokyo(t)
	b := buildTokyo(t)
	for i := range a.ISPA.Probes {
		if a.ISPA.Probes[i].PublicAddr != b.ISPA.Probes[i].PublicAddr {
			t.Fatal("Tokyo world not deterministic")
		}
	}
	if a.ISPA.Devices.V4[0].PeakUtilization != b.ISPA.Devices.V4[0].PeakUtilization {
		t.Fatal("devices not deterministic")
	}
}

func TestTokyoRIB(t *testing.T) {
	tk := buildTokyo(t)
	asn, err := tk.RIB.OriginOf(tk.ISPA.Probes[0].PublicAddr)
	if err != nil || asn != ASNTokyoA {
		t.Fatalf("RIB lookup = %v, %v", asn, err)
	}
	asn, err = tk.RIB.OriginOf(tk.ISPBMobile.Network.Prefix.Addr().Next())
	if err != nil || asn != ASNTokyoB {
		t.Fatalf("mobile prefix lookup = %v, %v", asn, err)
	}
}

func TestTokyoDefaultClients(t *testing.T) {
	tk, err := BuildTokyo(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tk.ISPA.CDNClients != 2000 {
		t.Fatalf("default clients = %d", tk.ISPA.CDNClients)
	}
}
