package scenario

import (
	"net/netip"
	"testing"

	"github.com/last-mile-congestion/lastmile/internal/core"
	"github.com/last-mile-congestion/lastmile/internal/ipnet"
	"github.com/last-mile-congestion/lastmile/internal/lastmile"
)

func TestPeriods(t *testing.T) {
	long := LongitudinalPeriods()
	if len(long) != 6 {
		t.Fatalf("longitudinal periods = %d", len(long))
	}
	labels := []string{"2018-03", "2018-06", "2018-09", "2019-03", "2019-06", "2019-09"}
	for i, p := range long {
		if p.Label != labels[i] {
			t.Errorf("period %d = %q, want %q", i, p.Label, labels[i])
		}
		if p.Days() != 15 {
			t.Errorf("period %s spans %d days, want 15", p.Label, p.Days())
		}
		if p.COVIDShift != 0 {
			t.Errorf("period %s has COVID shift", p.Label)
		}
	}
	covid := COVIDPeriod()
	if covid.Label != "2020-04" || covid.COVIDShift != 1 {
		t.Fatalf("covid period = %+v", covid)
	}
	if len(AllPeriods()) != 7 {
		t.Fatalf("all periods = %d", len(AllPeriods()))
	}
	tokyo := TokyoPeriod()
	if tokyo.Days() != 8 {
		t.Fatalf("tokyo period days = %d, want 8 (Sep 19-26)", tokyo.Days())
	}
}

func TestPeriodIndexDistinct(t *testing.T) {
	seen := map[uint64]string{}
	for _, p := range AllPeriods() {
		idx := PeriodIndex(p)
		if prev, dup := seen[idx]; dup {
			t.Fatalf("periods %s and %s share index %d", prev, p.Label, idx)
		}
		seen[idx] = p.Label
	}
}

func TestPrefixAllocator(t *testing.T) {
	a := &prefixAllocator{}
	seen := map[netip.Prefix]bool{}
	for i := 0; i < 700; i++ {
		p, err := a.NextV4()
		if err != nil {
			t.Fatal(err)
		}
		if seen[p] {
			t.Fatalf("duplicate prefix %v", p)
		}
		seen[p] = true
		if p.Bits() != 16 {
			t.Fatalf("prefix %v not a /16", p)
		}
		if ipnet.IsPrivate(p.Addr()) {
			t.Fatalf("allocated private prefix %v", p)
		}
		first := p.Addr().As4()[0]
		if reserved8(int(first)) {
			t.Fatalf("allocated reserved space %v", p)
		}
	}
	for i := 0; i < 700; i++ {
		p, err := a.NextV6()
		if err != nil {
			t.Fatal(err)
		}
		if seen[p] {
			t.Fatalf("duplicate v6 prefix %v", p)
		}
		seen[p] = true
		if p.Bits() != 48 {
			t.Fatalf("prefix %v not a /48", p)
		}
	}
}

func TestCountryListSize(t *testing.T) {
	if len(countries) != 98 {
		t.Fatalf("countries = %d, want 98 (§3)", len(countries))
	}
	seen := map[string]bool{}
	for _, cc := range countries {
		if len(cc) != 2 {
			t.Fatalf("bad country code %q", cc)
		}
		if seen[cc] {
			t.Fatalf("duplicate country %q", cc)
		}
		seen[cc] = true
	}
}

// smallWorld builds a reduced world that still contains every archetype.
func smallWorld(t *testing.T) *World {
	t.Helper()
	cfg := DefaultConfig(42)
	cfg.ASes = 100
	w, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestBuildWorldShape(t *testing.T) {
	w := smallWorld(t)
	if len(w.ASes) != 100 {
		t.Fatalf("ASes = %d", len(w.ASes))
	}
	if w.Ranking == nil || w.RIB == nil {
		t.Fatal("missing ranking or RIB")
	}
	// Every AS resolves through the RIB.
	for _, a := range w.ASes {
		asn, err := w.RIB.OriginOf(a.Network.Prefix.Addr().Next())
		if err != nil || asn != a.Network.ASN {
			t.Fatalf("%s: RIB lookup = %v, %v", a.Network.Name, asn, err)
		}
		if _, ok := w.Ranking.Rank(a.Network.ASN); !ok {
			t.Fatalf("%s missing from ranking", a.Network.Name)
		}
		if a.BaseProbes < 3 {
			t.Fatalf("%s has %d probes (<3)", a.Network.Name, a.BaseProbes)
		}
	}
	// Archetype counts are exact for the reported classes.
	counts := map[archetype]int{}
	for _, a := range w.ASes {
		counts[a.Archetype]++
	}
	if counts[archSevere] != severeCount || counts[archMildHigh] != mildHighCount ||
		counts[archMild] != mildCount || counts[archLow] != lowCount ||
		counts[archNearMiss] != nearMissCount {
		t.Fatalf("archetype counts = %v", counts)
	}
}

func TestBuildWorldJapanPlacement(t *testing.T) {
	w := smallWorld(t)
	jpSevere, jpNearMiss := 0, 0
	for _, a := range w.ASes {
		if a.Network.CC != "JP" {
			continue
		}
		switch a.Archetype {
		case archSevere:
			jpSevere++
		case archNearMiss:
			jpNearMiss++
		}
	}
	if jpSevere != 3 {
		t.Fatalf("JP severe ASes = %d, want 3 (§3.2: constantly reported)", jpSevere)
	}
	if jpNearMiss < 2 {
		t.Fatalf("JP near-miss ASes = %d, want >= 2 (sometimes-reported)", jpNearMiss)
	}
}

func TestBuildWorldDeterministic(t *testing.T) {
	a := smallWorld(t)
	b := smallWorld(t)
	for i := range a.ASes {
		if a.ASes[i].BaseSeverity != b.ASes[i].BaseSeverity ||
			a.ASes[i].Network.CC != b.ASes[i].Network.CC ||
			a.ASes[i].BaseProbes != b.ASes[i].BaseProbes {
			t.Fatalf("AS %d differs between identical builds", i)
		}
	}
}

func TestBuildWorldErrors(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.ASes = 20
	if _, err := Build(cfg); err == nil {
		t.Fatal("want error for too few ASes")
	}
}

func TestProbesForGrowsOverTime(t *testing.T) {
	w := smallWorld(t)
	early, late := 0, 0
	for _, a := range w.ASes[:20] {
		p1, err := w.ProbesFor(a, LongitudinalPeriods()[0])
		if err != nil {
			t.Fatal(err)
		}
		p2, err := w.ProbesFor(a, COVIDPeriod())
		if err != nil {
			t.Fatal(err)
		}
		early += len(p1)
		late += len(p2)
	}
	if late <= early {
		t.Fatalf("deployment did not grow: %d -> %d", early, late)
	}
}

func TestProbesWiredIntoWorld(t *testing.T) {
	w := smallWorld(t)
	a := w.ASes[0]
	probes, err := w.ProbesFor(a, LongitudinalPeriods()[5])
	if err != nil {
		t.Fatal(err)
	}
	if len(probes) == 0 {
		t.Fatal("no probes")
	}
	ids := map[int]bool{}
	for _, p := range probes {
		if ids[p.ID] {
			t.Fatalf("duplicate probe ID %d", p.ID)
		}
		ids[p.ID] = true
		if p.ASN != a.Network.ASN {
			t.Fatal("probe in wrong AS")
		}
		if !a.Network.Prefix.Contains(p.PublicAddr) {
			t.Fatalf("probe public address %v outside AS prefix", p.PublicAddr)
		}
		if !ipnet.IsPrivate(p.GatewayAddr) || !ipnet.IsPublic(p.EdgeAddr) {
			t.Fatal("probe last-mile boundary addresses are wrong")
		}
		asn, err := w.RIB.OriginOf(p.PublicAddr)
		if err != nil || asn != a.Network.ASN {
			t.Fatalf("probe %d does not resolve to its AS via RIB", p.ID)
		}
	}
}

func TestSimulateProbeDelayFeedsPipeline(t *testing.T) {
	w := smallWorld(t)
	p := LongitudinalPeriods()[5]
	// Find a severe AS: its signal must classify Severe.
	var severe *ASInfo
	for _, a := range w.ASes {
		if a.Archetype == archSevere {
			severe = a
			break
		}
	}
	sig, n, err := w.ASSignal(severe, p)
	if err != nil {
		t.Fatal(err)
	}
	if n < 3 {
		t.Fatalf("contributing probes = %d", n)
	}
	if sig.Len() != 720 {
		t.Fatalf("signal bins = %d, want 720 (15 days of 30-min bins)", sig.Len())
	}
	cls, err := core.Classify(sig, core.DefaultClassifierOptions())
	if err != nil {
		t.Fatal(err)
	}
	if cls.Class != core.Severe {
		t.Fatalf("severe AS classified %v (amp %.2f)", cls.Class, cls.DailyAmplitude)
	}
	if !cls.IsDaily {
		t.Fatal("severe AS peak should be daily")
	}
}

func TestFlatASClassifiesNone(t *testing.T) {
	w := smallWorld(t)
	p := LongitudinalPeriods()[5]
	var flat *ASInfo
	for _, a := range w.ASes {
		if a.Archetype == archFlat {
			flat = a
			break
		}
	}
	sig, _, err := w.ASSignal(flat, p)
	if err != nil {
		t.Fatal(err)
	}
	cls, err := core.Classify(sig, core.DefaultClassifierOptions())
	if err != nil {
		t.Fatal(err)
	}
	if cls.Class != core.None {
		t.Fatalf("flat AS classified %v (amp %.2f)", cls.Class, cls.DailyAmplitude)
	}
}

func TestSimulateProbeDelayDeterministic(t *testing.T) {
	w := smallWorld(t)
	p := LongitudinalPeriods()[0]
	probes, err := w.ProbesFor(w.ASes[0], p)
	if err != nil {
		t.Fatal(err)
	}
	a1, err := SimulateProbeDelay(probes[0], p, 4, w.Seed)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := SimulateProbeDelay(probes[0], p, 4, w.Seed)
	if err != nil {
		t.Fatal(err)
	}
	s1 := a1.MedianRTT(3)
	s2 := a2.MedianRTT(3)
	for i := range s1.Values {
		v1, v2 := s1.Values[i], s2.Values[i]
		if v1 != v2 && !(v1 != v1 && v2 != v2) { // NaN-safe compare
			t.Fatalf("bin %d differs: %v vs %v", i, v1, v2)
		}
	}
	if a1.Traceroutes == 0 {
		t.Fatal("no traceroutes simulated")
	}
}

func TestFastPathMatchesFullTraceroutePath(t *testing.T) {
	// The fast path and the full Trace+Estimate path must produce
	// statistically indistinguishable per-bin medians for the same
	// probe. Compare period medians of the two estimates.
	w := smallWorld(t)
	p := Period{Label: "mini", Start: LongitudinalPeriods()[5].Start,
		End: LongitudinalPeriods()[5].Start.AddDate(0, 0, 2)}
	probes, err := w.ProbesFor(w.ASes[0], p)
	if err != nil {
		t.Fatal(err)
	}
	probe := probes[0]

	fast, err := SimulateProbeDelay(probe, p, 6, w.Seed)
	if err != nil {
		t.Fatal(err)
	}
	fastQD, err := fast.QueuingDelay(3)
	if err != nil {
		t.Fatal(err)
	}

	// Full path through the Atlas engine.
	full, err := lastmile.NewProbeAccumulator(probe.ID, p.Start, p.End, lastmile.DefaultBinWidth)
	if err != nil {
		t.Fatal(err)
	}
	eng := newTestEngine(w.Seed)
	if err := eng.Run(probe, p.Start, p.End, full.Add); err != nil {
		t.Fatal(err)
	}
	fullQD, err := full.QueuingDelay(3)
	if err != nil {
		t.Fatal(err)
	}

	// Compare the medians of the two queuing-delay distributions.
	fm := medianOf(fastQD.Values)
	um := medianOf(fullQD.Values)
	if diff := fm - um; diff > 0.3 || diff < -0.3 {
		t.Fatalf("fast path median %v vs full path %v", fm, um)
	}
}
