package scenario

import (
	"context"
	"fmt"
	"net/netip"
	"sync"
	"time"

	"github.com/last-mile-congestion/lastmile/internal/atlas"
	"github.com/last-mile-congestion/lastmile/internal/core"
	"github.com/last-mile-congestion/lastmile/internal/ipnet"
	"github.com/last-mile-congestion/lastmile/internal/isp"
	"github.com/last-mile-congestion/lastmile/internal/lastmile"
	"github.com/last-mile-congestion/lastmile/internal/netsim"
	"github.com/last-mile-congestion/lastmile/internal/parallel"
	"github.com/last-mile-congestion/lastmile/internal/timeseries"
)

// periodSeverity returns the AS's effective severity for a period: the
// base severity plus a small per-period wobble, which makes borderline
// ASes flip classes across periods and produces the churn §3.1 reports.
func (w *World) periodSeverity(a *ASInfo, p Period) isp.Severity {
	rng := netsim.DerivedRand(w.Seed, uint64(a.Network.ASN), PeriodIndex(p), 0x5e7)
	return isp.Severity(float64(a.BaseSeverity) + rng.NormFloat64()*0.02)
}

// NetworkFor instantiates the AS's network at its per-period severity.
func (w *World) NetworkFor(a *ASInfo, p Period) (*isp.Network, error) {
	return isp.New(a.buildCfg(w.periodSeverity(a, p)))
}

// ProbesFor builds the AS's active probe fleet for a period. Deployment
// grows over time (Atlas grew steadily through 2018–2020), so later
// periods activate more of the AS's probe slots. Devices are built per
// period from the per-period network.
func (w *World) ProbesFor(a *ASInfo, p Period) ([]*atlas.Probe, error) {
	network, err := w.NetworkFor(a, p)
	if err != nil {
		return nil, err
	}
	devices := network.BuildDevices(netsim.MixSeed(w.Seed, PeriodIndex(p)), p.COVIDShift)
	ordinal := periodOrdinal(p)
	activeProb := min(0.78+0.03*float64(ordinal), 0.98)
	var probes []*atlas.Probe
	for slot := 0; slot < a.BaseProbes; slot++ {
		slotRng := netsim.DerivedRand(w.Seed, uint64(a.Network.ASN), uint64(slot), 0xdeb)
		if slotRng.Float64() > activeProb {
			continue
		}
		probe, err := w.buildProbe(a, network, devices, slot, slotRng)
		if err != nil {
			return nil, err
		}
		probes = append(probes, probe)
	}
	return probes, nil
}

// buildProbe wires one probe slot into the simulated network.
func (w *World) buildProbe(a *ASInfo, network *isp.Network, devices *isp.DeviceSet, slot int, rng interface{ Intn(int) int }) (*atlas.Probe, error) {
	id := a.Index*1000 + slot + 10000
	pub, err := ipnet.HostAt(network.Prefix, uint64(5000+slot*13))
	if err != nil {
		return nil, fmt.Errorf("scenario: %s: %w", network.Name, err)
	}
	dev := devices.DeviceFor(uint64(id), 4)
	edgeIdx := uint64(2)
	if dev != nil {
		edgeIdx = 2 + dev.ID%200
	}
	edge, err := ipnet.HostAt(network.Prefix, edgeIdx)
	if err != nil {
		return nil, err
	}
	coreAddr, err := ipnet.HostAt(network.Prefix, 65000)
	if err != nil {
		return nil, err
	}
	version := 3
	availability := 0.985
	// Roughly a fifth of the fleet is older v1/v2 hardware (§2).
	switch rng.Intn(10) {
	case 0:
		version, availability = 1, 0.93
	case 1:
		version, availability = 2, 0.95
	}
	// A quarter of probes sit behind Wi-Fi or busy home LANs whose
	// millisecond-scale noise drowns weak diurnal signals.
	extraNoise := 0.02 * float64(rng.Intn(5))
	if rng.Intn(4) == 0 {
		extraNoise = 0.6 + float64(rng.Intn(150))/100
	}
	return &atlas.Probe{
		ID:           id,
		Version:      version,
		ASN:          network.ASN,
		CC:           network.CC,
		PublicAddr:   pub,
		LANAddr:      netip.AddrFrom4([4]byte{192, 168, 1, 10}),
		GatewayAddr:  netip.AddrFrom4([4]byte{192, 168, 1, 1}),
		EdgeAddr:     edge,
		CoreAddr:     coreAddr,
		Device:       dev,
		EdgeBaseMs:   network.EdgeBaseMs,
		ExtraNoiseMs: extraNoise,
		Availability: availability,
	}, nil
}

// periodOrdinal orders the standard periods for deployment growth.
func periodOrdinal(p Period) int {
	switch p.Label {
	case "2018-03":
		return 0
	case "2018-06":
		return 1
	case "2018-09":
		return 2
	case "2019-03":
		return 3
	case "2019-06":
		return 4
	case "2019-09", "2019-09-tokyo":
		return 5
	case "2020-04":
		return 7
	default:
		return 4
	}
}

// probeScratch is the per-worker reusable state of the probe fast path:
// one re-keyable PRNG stream and one pairwise-sample buffer, pooled so
// the per-(bin, traceroute) inner loop allocates nothing.
type probeScratch struct {
	stream  *netsim.Stream
	samples []float64
}

var probeScratchPool = sync.Pool{
	New: func() any {
		return &probeScratch{stream: netsim.NewStream(), samples: make([]float64, 0, 9)}
	},
}

// SimulateProbeDelay runs the fast-path delay measurement for one probe
// over a period: per 30-minute bin, TraceroutesPerBin truncated
// traceroutes over the probe's last-mile route, each contributing 9
// pairwise samples, exactly as the full Atlas engine + estimator would.
func SimulateProbeDelay(probe *atlas.Probe, p Period, perBin int, seed uint64) (*lastmile.ProbeAccumulator, error) {
	acc, err := lastmile.NewProbeAccumulator(probe.ID, p.Start, p.End, lastmile.DefaultBinWidth)
	if err != nil {
		return nil, err
	}
	route := probe.LastMileRoute()
	scratch := probeScratchPool.Get().(*probeScratch)
	defer probeScratchPool.Put(scratch)
	rng := scratch.stream
	var priv, pub [3]float64
	for binStart := p.Start; binStart.Before(p.End); binStart = binStart.Add(lastmile.DefaultBinWidth) {
		if !probe.OnlineAtStream(binStart, seed, rng) {
			continue
		}
		binUnix := uint64(binStart.Unix())
		for k := 0; k < perBin; k++ {
			rng.Derive(seed, uint64(probe.ID), binUnix, uint64(k))
			at := binStart.Add(time.Duration(rng.Int63n(int64(lastmile.DefaultBinWidth))))
			okAll := true
			for i := 0; i < 3; i++ {
				v, ok, err := route.RTT(0, at, rng.Rand)
				if err != nil {
					return nil, err
				}
				if !ok {
					okAll = false
					break
				}
				priv[i] = v
			}
			if !okAll {
				continue
			}
			for i := 0; i < 3; i++ {
				v, ok, err := route.RTT(1, at, rng.Rand)
				if err != nil {
					return nil, err
				}
				if !ok {
					okAll = false
					break
				}
				pub[i] = v
			}
			if !okAll {
				continue
			}
			// The accumulator copies the group, so the scratch buffer is
			// free for the next traceroute.
			acc.AddSamples(at, lastmile.PairwiseFromRTTsInto(scratch.samples[:0], priv[:], pub[:]))
		}
	}
	return acc, nil
}

// PerProbeDelays measures one AS for a period and returns each probe's
// queuing-delay series — the input for aggregation and for the §5
// probe-variability bootstrap. Probes without a usable baseline are
// skipped. Probes are measured on w.Workers workers; each probe's draws
// are keyed by its ID, and results come back in probe order, so the
// series list is identical at any worker count.
func (w *World) PerProbeDelays(a *ASInfo, p Period) ([]*timeseries.Series, error) {
	probes, err := w.ProbesFor(a, p)
	if err != nil {
		return nil, err
	}
	if len(probes) < 3 {
		return nil, fmt.Errorf("scenario: %s has %d active probes (<3)", a.Network.Name, len(probes))
	}
	series, err := parallel.Map(context.Background(), w.Workers, len(probes), func(i int) (*timeseries.Series, error) {
		acc, err := SimulateProbeDelay(probes[i], p, w.TraceroutesPerBin, w.Seed)
		if err != nil {
			return nil, err
		}
		qd, err := acc.QueuingDelay(lastmile.DefaultMinTraceroutes)
		if err != nil {
			return nil, nil // probe below the sanity bar; skipped
		}
		return qd, nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]*timeseries.Series, 0, len(series))
	for _, qd := range series {
		if qd != nil {
			out = append(out, qd)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("scenario: %s produced no usable probe series", a.Network.Name)
	}
	return out, nil
}

// ASSignal computes one AS's aggregated queuing-delay signal for a
// period, returning the signal and the number of contributing probes.
func (w *World) ASSignal(a *ASInfo, p Period) (*timeseries.Series, int, error) {
	perProbe, err := w.PerProbeDelays(a, p)
	if err != nil {
		return nil, 0, err
	}
	agg, err := lastmile.AggregateQueuingDelay(perProbe)
	if err != nil {
		return nil, 0, err
	}
	return agg, len(perProbe), nil
}

// RunSurvey measures and classifies every AS for one period (§3). ASes
// with fewer than 3 active probes, or whose signal cannot be classified,
// are skipped — mirroring the paper's monitoring bar. ASes are measured
// on w.Workers workers; every stochastic draw is keyed by (seed, ASN,
// period) and results are added in AS order, so the survey is identical
// at any worker count.
func (w *World) RunSurvey(p Period) (*core.Survey, error) {
	survey := core.NewSurvey(p.Label)
	opts := core.DefaultClassifierOptions()
	results, err := parallel.Map(context.Background(), w.Workers, len(w.ASes), func(i int) (*core.ASResult, error) {
		a := w.ASes[i]
		signal, n, err := w.ASSignal(a, p)
		if err != nil {
			return nil, nil // below the monitoring bar this period
		}
		cls, err := core.Classify(signal, opts)
		if err != nil {
			return nil, nil
		}
		return &core.ASResult{
			ASN:            a.Network.ASN,
			Probes:         n,
			Signal:         signal,
			Classification: cls,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range results {
		if r != nil {
			survey.Add(r)
		}
	}
	if survey.Len() == 0 {
		return nil, fmt.Errorf("scenario: survey %s classified no AS", p.Label)
	}
	return survey, nil
}
