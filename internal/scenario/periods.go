// Package scenario generates the synthetic measurement world the
// reproduction runs on: 646 ASes across 98 countries with probes,
// prefixes, eyeball populations, and congestion archetypes shaped so the
// survey-level distributions match the paper's (≈90% None, ≈47 reported
// ASes per period, +≈55% reported under COVID, Japan leading the Severe
// share). It also builds the Tokyo case study of §4.
package scenario

import "time"

// Period is one measurement period.
type Period struct {
	// Label names the period as the paper does, e.g. "2019-09".
	Label string
	// Start and End bound the traceroute collection (UTC).
	Start, End time.Time
	// COVIDShift is the lockdown intensity in [0, 1]: 0 for 2018/2019
	// periods, 1 for April 2020.
	COVIDShift float64
}

// Days returns the period length in days.
func (p Period) Days() int {
	return int(p.End.Sub(p.Start) / (24 * time.Hour))
}

// longitudinal labels the six 2018–2019 periods.
func mkPeriod(year, month int, covid float64) Period {
	start := time.Date(year, time.Month(month), 1, 0, 0, 0, 0, time.UTC)
	return Period{
		Label:      start.Format("2006-01"),
		Start:      start,
		End:        start.AddDate(0, 0, 15),
		COVIDShift: covid,
	}
}

// LongitudinalPeriods returns the six 1st–15th March/June/September
// periods of 2018 and 2019 used for the longitudinal analysis (§2).
func LongitudinalPeriods() []Period {
	return []Period{
		mkPeriod(2018, 3, 0), mkPeriod(2018, 6, 0), mkPeriod(2018, 9, 0),
		mkPeriod(2019, 3, 0), mkPeriod(2019, 6, 0), mkPeriod(2019, 9, 0),
	}
}

// COVIDPeriod returns the 1st–15th April 2020 lockdown period.
func COVIDPeriod() Period { return mkPeriod(2020, 4, 1) }

// AllPeriods returns the six longitudinal periods followed by the COVID
// period — the eight measurement periods of the study minus the Tokyo
// case-study week.
func AllPeriods() []Period {
	return append(LongitudinalPeriods(), COVIDPeriod())
}

// TokyoPeriod returns the CDN/traceroute overlap week of §4:
// September 19th–26th, 2019.
func TokyoPeriod() Period {
	return Period{
		Label:      "2019-09-tokyo",
		Start:      time.Date(2019, 9, 19, 0, 0, 0, 0, time.UTC),
		End:        time.Date(2019, 9, 27, 0, 0, 0, 0, time.UTC),
		COVIDShift: 0,
	}
}

// PeriodIndex returns a stable small integer for seeding per-period
// randomness, derived from the period start.
func PeriodIndex(p Period) uint64 {
	return uint64(p.Start.Year())*100 + uint64(p.Start.Month())
}
