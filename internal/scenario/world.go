package scenario

import (
	"fmt"
	"math/rand"

	"github.com/last-mile-congestion/lastmile/internal/apnic"
	"github.com/last-mile-congestion/lastmile/internal/bgp"
	"github.com/last-mile-congestion/lastmile/internal/isp"
	"github.com/last-mile-congestion/lastmile/internal/netsim"
)

// Config parameterises the synthetic survey world.
type Config struct {
	// Seed drives all randomness.
	Seed uint64
	// ASes is the number of monitored ASes (default 646, as in §3).
	ASes int
	// MaxProbesPerAS caps per-AS probe deployment; large eyeballs are
	// truncated to keep survey runtime bounded (statistically the
	// population median stabilises long before 30 probes).
	MaxProbesPerAS int
	// TraceroutesPerBin is the simulated traceroute cadence per
	// 30-minute bin. Atlas's built-ins give 24; the survey defaults to
	// 6, which preserves per-bin medians while cutting runtime 4×.
	// Clamped to at least 3 so the paper's sanity filter stays active.
	TraceroutesPerBin int
	// Workers bounds the worker pool RunSurvey and PerProbeDelays fan
	// out on. Values <= 1 run serially. Because every stochastic draw is
	// keyed by (seed, entity, time) and results are delivered in input
	// order, any worker count produces bit-identical output.
	Workers int
}

// DefaultConfig returns the paper-scale world.
func DefaultConfig(seed uint64) Config {
	return Config{Seed: seed, ASes: 646, MaxProbesPerAS: 30, TraceroutesPerBin: 6}
}

// archetype tags how an AS's severity was drawn, for reporting and for
// the COVID flip accounting.
type archetype int

const (
	archFlat archetype = iota
	archWeakDaily
	archNearMiss
	archLow
	archMild
	archMildHigh
	archSevere
)

// String names the archetype.
func (a archetype) String() string {
	switch a {
	case archFlat:
		return "flat"
	case archWeakDaily:
		return "weak-daily"
	case archNearMiss:
		return "near-miss"
	case archLow:
		return "low"
	case archMild:
		return "mild"
	case archMildHigh:
		return "mild-high"
	case archSevere:
		return "severe"
	default:
		return "unknown"
	}
}

// ASInfo is one monitored AS in the world.
type ASInfo struct {
	// Index is the AS's position in World.ASes.
	Index int
	// Network is the access network (per-period devices are built from
	// it).
	Network *isp.Network
	// BaseSeverity is the congestion severity the AS was assigned;
	// per-period severity wobbles around it.
	BaseSeverity isp.Severity
	// Archetype records which band the severity was drawn from.
	Archetype archetype
	// BaseProbes is the nominal probe deployment.
	BaseProbes int
	// Users is the APNIC-style eyeball estimate.
	Users int64
	// buildCfg rebuilds the network config at a given severity, used
	// for per-period wobble.
	buildCfg func(isp.Severity) isp.Config
}

// World is the generated survey world.
type World struct {
	Config
	// ASes holds the monitored networks.
	ASes []*ASInfo
	// Ranking is the APNIC-style eyeball ranking (monitored ASes plus
	// background filler so rank buckets beyond the monitored set are
	// populated).
	Ranking *apnic.Ranking
	// RIB maps addresses back to ASNs.
	RIB *bgp.RIB
}

// Severity band constants. The bands are calibrated against the detector:
// the generic eyeball archetype maps severity s to peak device utilisation
// 0.55 + 1.1·s, and the M/M/1-with-6.5ms-buffer queue turns that into the
// aggregated daily amplitude the classifier thresholds at 0.5/1/3 ms.
// Counts are set so a 646-AS world reproduces the paper's survey numbers
// (≈47 reported per period; +55% under COVID; Fig. 3's 83/7/6/4 split of
// daily amplitudes).
const (
	severeCount   = 11
	mildHighCount = 14 // straddle the Mild/Severe boundary across periods
	mildCount     = 6
	lowCount      = 18
	nearMissCount = 18   // flip into Low/Mild mainly under COVID
	weakDailyFrac = 0.55 // of the remaining ASes: tiny but dominant daily
)

// severityBand returns the severity range of an archetype.
func severityBand(a archetype) (lo, hi float64) {
	switch a {
	case archSevere:
		return 0.46, 0.75
	case archMildHigh:
		return 0.435, 0.46
	case archMild:
		return 0.37, 0.40
	case archLow:
		return 0.29, 0.335
	case archNearMiss:
		return 0.262, 0.283
	case archWeakDaily:
		return 0.06, 0.18
	default:
		return 0, 0.05
	}
}

// countries is the monitored-country list (98 entries, §3). Ordering
// matters: assignment weights fall with the index, reflecting Atlas's
// deployment bias toward Europe and North America.
var countries = []string{
	"DE", "US", "FR", "GB", "NL", "RU", "IT", "JP", "CZ", "SE",
	"CH", "BE", "PL", "CA", "AT", "ES", "FI", "AU", "DK", "NO",
	"UA", "GR", "RO", "BG", "PT", "IE", "HU", "SK", "NZ", "BR",
	"ZA", "IN", "SG", "HK", "TW", "KR", "ID", "TH", "MY", "PH",
	"VN", "TR", "IL", "AE", "SA", "EG", "MA", "TN", "KE", "NG",
	"AR", "CL", "CO", "MX", "PE", "UY", "EC", "VE", "CR", "PA",
	"SI", "HR", "RS", "BA", "MK", "AL", "LT", "LV", "EE", "BY",
	"MD", "GE", "AM", "AZ", "KZ", "UZ", "KG", "MN", "NP", "BD",
	"LK", "PK", "IR", "IQ", "JO", "LB", "CY", "MT", "LU", "IS",
	"LI", "MC", "AD", "SM", "GI", "FO", "GL", "BM",
}

// Build generates the world for cfg.
func Build(cfg Config) (*World, error) {
	if cfg.ASes <= 0 {
		cfg.ASes = 646
	}
	if cfg.MaxProbesPerAS <= 0 {
		cfg.MaxProbesPerAS = 30
	}
	if cfg.TraceroutesPerBin < 3 {
		cfg.TraceroutesPerBin = 6
	}
	minimum := severeCount + mildHighCount + mildCount + lowCount + nearMissCount
	if cfg.ASes < minimum+10 {
		return nil, fmt.Errorf("scenario: need at least %d ASes, got %d", minimum+10, cfg.ASes)
	}
	w := &World{Config: cfg}
	rng := netsim.DerivedRand(cfg.Seed, worldSalt)

	// 1. Draw archetypes. Fixed counts for the reported classes, then
	// weak-daily vs flat for the remainder.
	arch := make([]archetype, 0, cfg.ASes)
	for i := 0; i < severeCount; i++ {
		arch = append(arch, archSevere)
	}
	for i := 0; i < mildHighCount; i++ {
		arch = append(arch, archMildHigh)
	}
	for i := 0; i < mildCount; i++ {
		arch = append(arch, archMild)
	}
	for i := 0; i < lowCount; i++ {
		arch = append(arch, archLow)
	}
	for i := 0; i < nearMissCount; i++ {
		arch = append(arch, archNearMiss)
	}
	for len(arch) < cfg.ASes {
		if rng.Float64() < weakDailyFrac {
			arch = append(arch, archWeakDaily)
		} else {
			arch = append(arch, archFlat)
		}
	}

	// 2. Assign countries. Reported-class ASes are deliberately placed:
	// Japan gets 3 Severe + 2 MildHigh (the paper's "5 of the top 10
	// monitored Japanese ASes reported, 3 constantly"), the U.S. one
	// Severe and a couple of Mild, and the rest spread across distinct
	// countries so ≈50 countries see at least one report.
	cc := assignCountries(arch, rng)

	// 3. Build networks, users and probes.
	alloc := &prefixAllocator{}
	var estimates []apnic.Estimate
	rib := &bgp.RIB{}
	for i := 0; i < cfg.ASes; i++ {
		a := arch[i]
		lo, hi := severityBand(a)
		sev := isp.Severity(lo + rng.Float64()*(hi-lo))
		asn := bgp.ASN(64500 + i)
		country := cc[i]
		v4, err := alloc.NextV4()
		if err != nil {
			return nil, err
		}
		v6, err := alloc.NextV6()
		if err != nil {
			return nil, err
		}
		utc := utcOffsetFor(country)
		name := fmt.Sprintf("AS%d-%s-%s", uint32(asn), country, a)
		var buildCfg func(isp.Severity) isp.Config
		switch {
		case country == "JP" && a >= archLow:
			// Japanese congestion rides the legacy PPPoE plant (§4).
			buildCfg = func(s isp.Severity) isp.Config {
				return isp.NewLegacyPPPoE(name, asn, country, utc, v4, v6, jpLegacySeverity(s))
			}
		case a == archFlat:
			// Flat ASes have genuinely demand-insensitive last miles:
			// well-provisioned gear whose residual diurnal wiggle sits
			// below the measurement noise floor, so their prominent
			// frequency is noise-driven and spreads across the
			// spectrum (Fig. 3, top).
			buildCfg = func(s isp.Severity) isp.Config {
				cfg := isp.NewEyeball(name, asn, country, utc, v4, v6, s)
				cfg.PeakUtilMean = 0.45
				cfg.Queue.ServiceMs = 0.05
				return cfg
			}
		default:
			buildCfg = func(s isp.Severity) isp.Config {
				return isp.NewEyeball(name, asn, country, utc, v4, v6, s)
			}
		}
		network, err := isp.New(buildCfg(sev))
		if err != nil {
			return nil, err
		}
		probes := drawProbeCount(a, rng, cfg.MaxProbesPerAS)
		users := drawUsers(a, i, rng)
		w.ASes = append(w.ASes, &ASInfo{
			Index:        i,
			Network:      network,
			BaseSeverity: sev,
			Archetype:    a,
			BaseProbes:   probes,
			Users:        users,
			buildCfg:     buildCfg,
		})
		estimates = append(estimates, apnic.Estimate{ASN: asn, CC: country, Users: users})
		if err := rib.Announce(v4, asn); err != nil {
			return nil, err
		}
		if err := rib.Announce(v6, asn); err != nil {
			return nil, err
		}
	}

	// 4. Background filler ASes so ranking buckets beyond the monitored
	// set are populated (ranks past 10k exist in APNIC's view).
	const filler = 14000
	for i := 0; i < filler; i++ {
		users := int64(200_000_000 / (float64(i) + 20))
		users = int64(float64(users) * (0.5 + rng.Float64()))
		estimates = append(estimates, apnic.Estimate{
			ASN:   bgp.ASN(100_000 + i),
			CC:    countries[rng.Intn(len(countries))],
			Users: users,
		})
	}
	ranking, err := apnic.NewRanking(estimates)
	if err != nil {
		return nil, err
	}
	w.Ranking = ranking
	w.RIB = rib
	return w, nil
}

// worldSalt separates world-construction randomness from the measurement
// randomness derived from the same seed.
const worldSalt = 0x1d0c0de

// assignCountries places each AS in a country. Reported-class ASes are
// deliberately distributed (Japan-heavy Severe share per §3.2); the rest
// follow Atlas's deployment bias encoded in the countries ordering.
func assignCountries(arch []archetype, rng *rand.Rand) []string {
	cc := make([]string, len(arch))
	// Deliberate placements, consumed in order per archetype.
	placements := map[archetype][]string{
		archSevere: {"JP", "JP", "JP", "US", "BR", "IN", "TR", "AR", "PH", "EG", "ID"},
		archMildHigh: {"US", "IT", "GR", "ZA", "CO", "VN", "RO", "MY", "TH", "CL",
			"PK", "UA", "KE", "RS"},
		archMild: {"GB", "ES", "PL", "MA", "HU", "PT"},
		archLow: {"US", "FR", "AU", "CA", "MX", "LK", "NG", "BG",
			"HR", "GE", "BD", "PE", "TN", "KZ", "UY", "SI"},
		// Japan's two borderline ASes sit just under the Low threshold:
		// reported in some normal periods, reliably reported under
		// COVID — together with the three Severe ones this yields the
		// paper's "5 of the top 10 monitored Japanese ASes reported at
		// least once, 3 constantly".
		archNearMiss: {"JP", "JP"},
	}
	used := map[archetype]int{}
	// Weighted draw for everything else: weight decays with country
	// index, leaving a long tail of singleton countries.
	weights := make([]float64, len(countries))
	total := 0.0
	for i := range countries {
		weights[i] = 12.0 / (float64(i) + 4)
		total += weights[i]
	}
	draw := func() string {
		x := rng.Float64() * total
		for i, w := range weights {
			x -= w
			if x <= 0 {
				return countries[i]
			}
		}
		return countries[len(countries)-1]
	}
	// Near-miss ASes spread across distinct countries so the COVID wave
	// of new reports is geographically broad.
	nearMissIdx := 0
	for i, a := range arch {
		if list, ok := placements[a]; ok && used[a] < len(list) {
			cc[i] = list[used[a]]
			used[a]++
			continue
		}
		if a == archNearMiss {
			cc[i] = countries[(7*nearMissIdx+11)%len(countries)]
			nearMissIdx++
			continue
		}
		cc[i] = draw()
	}
	return cc
}

// utcOffsetFor maps a country to a representative UTC offset for its
// subscribers' diurnal cycle.
func utcOffsetFor(cc string) float64 {
	switch cc {
	case "JP", "KR":
		return 9
	case "CN", "TW", "HK", "SG", "MY", "PH", "AU":
		return 8
	case "ID", "TH", "VN", "MN":
		return 7
	case "BD", "KZ", "KG":
		return 6
	case "PK", "UZ":
		return 5
	case "IN", "LK", "NP":
		return 5.5
	case "AE", "GE", "AM", "AZ":
		return 4
	case "RU", "TR", "SA", "IQ", "KE", "BY", "MD", "IR":
		return 3
	case "GR", "RO", "BG", "UA", "FI", "EE", "LV", "LT", "IL", "JO", "LB", "CY", "EG", "ZA":
		return 2
	case "GB", "IE", "PT", "MA", "TN", "NG", "IS", "FO", "GI":
		return 0
	case "BR", "AR", "UY", "GL":
		return -3
	case "CL", "VE", "BM":
		return -4
	case "US", "CA", "PE", "CO", "EC", "PA", "MX", "CR":
		return -5
	case "NZ":
		return 12
	default:
		return 1 // central Europe
	}
}

// jpLegacySeverity rescales the generic severity band onto the legacy
// PPPoE archetype, whose severity→utilisation mapping is steeper
// (0.7 + 1.7·s versus 0.55 + 1.1·s): solve for the severity that yields
// the same peak utilisation.
func jpLegacySeverity(s isp.Severity) isp.Severity {
	util := 0.55 + 1.1*float64(s)
	return isp.Severity((util - 0.7) / 1.7)
}

// drawProbeCount draws a per-AS probe deployment: every monitored AS has
// at least 3 probes (the survey's inclusion bar), large eyeballs more,
// capped at maxProbes.
func drawProbeCount(a archetype, rng *rand.Rand, maxProbes int) int {
	n := 3 + int(netsim.Lognormal(rng, 1.0, 0.9))
	if a >= archLow {
		// Reported ASes are predominantly large eyeballs with bigger
		// deployments.
		n += 4 + rng.Intn(8)
	}
	if n > maxProbes {
		n = maxProbes
	}
	return n
}

// drawUsers draws the APNIC-style user estimate. Reported-class ASes are
// large eyeballs (the paper's Fig. 4: congestion concentrates in the top
// 1000), the rest follow a heavy-tailed spread.
func drawUsers(a archetype, i int, rng *rand.Rand) int64 {
	switch {
	case a >= archMild:
		// Large eyeballs, but spread across the top ~2000 ranks rather
		// than only the top 100 (Fig. 4 shows congestion down through
		// the 101-1k bucket).
		return int64(300_000 + rng.Intn(30_000_000))
	case a >= archNearMiss:
		return int64(150_000 + rng.Intn(8_000_000))
	default:
		u := min(netsim.Lognormal(rng, 11, 2.2), 40_000_000) // median ≈ 60k users
		return int64(u) + 50
	}
}
