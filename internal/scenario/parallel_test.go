package scenario

import (
	"math"
	"testing"
)

// TestRunSurveyParallelMatchesSerial is the package-level determinism
// contract: the same world surveyed on one worker and on many workers
// must produce bit-identical per-AS results. Run under -race it also
// stresses the multi-worker survey path end to end.
func TestRunSurveyParallelMatchesSerial(t *testing.T) {
	build := func(workers int) *World {
		cfg := DefaultConfig(42)
		cfg.ASes = 100
		cfg.Workers = workers
		w, err := Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	serial, parallel := build(1), build(8)
	p := LongitudinalPeriods()[5]
	a, err := serial.RunSurvey(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := parallel.RunSurvey(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("AS count differs: serial %d, parallel %d", a.Len(), b.Len())
	}
	for asn, ra := range a.Results {
		rb := b.Results[asn]
		if rb == nil {
			t.Fatalf("AS%v present serially, missing in parallel run", asn)
		}
		if ra.Probes != rb.Probes || ra.Class != rb.Class {
			t.Fatalf("AS%v verdict differs: serial {probes %d, %v}, parallel {probes %d, %v}",
				asn, ra.Probes, ra.Class, rb.Probes, rb.Class)
		}
		// Signals carry NaN gap bins; compare bit patterns, not values.
		if len(ra.Signal.Values) != len(rb.Signal.Values) {
			t.Fatalf("AS%v signal length differs", asn)
		}
		for i := range ra.Signal.Values {
			if math.Float64bits(ra.Signal.Values[i]) != math.Float64bits(rb.Signal.Values[i]) {
				t.Fatalf("AS%v signal bin %d differs: %v vs %v",
					asn, i, ra.Signal.Values[i], rb.Signal.Values[i])
			}
		}
	}
}
