package scenario

import (
	"fmt"
	"net/netip"
)

// prefixAllocator hands out non-overlapping synthetic prefixes for the
// simulated world: IPv4 /16s walked through unicast space skipping
// special-purpose /8s, and IPv6 /48s under a single documentation-style
// /32.
type prefixAllocator struct {
	next4 int
	next6 int
}

// reserved8 lists first octets the allocator must never use: private,
// loopback, CGNAT, link-local, multicast and the simulator's own
// measurement-target ranges.
func reserved8(octet int) bool {
	switch {
	case octet == 0 || octet == 10 || octet == 100 || octet == 127:
		return true
	case octet == 169 || octet == 172 || octet == 192 || octet == 198 || octet == 193:
		return true
	case octet >= 224:
		return true
	default:
		return false
	}
}

// NextV4 returns the next free IPv4 /16.
func (a *prefixAllocator) NextV4() (netip.Prefix, error) {
	for {
		hi := 20 + a.next4/256
		lo := a.next4 % 256
		if hi > 223 {
			return netip.Prefix{}, fmt.Errorf("scenario: IPv4 prefix space exhausted after %d allocations", a.next4)
		}
		a.next4++
		if reserved8(hi) {
			// Skip the whole /8.
			a.next4 += 255 - lo
			continue
		}
		return netip.PrefixFrom(netip.AddrFrom4([4]byte{byte(hi), byte(lo), 0, 0}), 16), nil
	}
}

// NextV6 returns the next free IPv6 /48 under 2001:db8::/32.
func (a *prefixAllocator) NextV6() (netip.Prefix, error) {
	if a.next6 > 0xffff {
		return netip.Prefix{}, fmt.Errorf("scenario: IPv6 prefix space exhausted")
	}
	b := [16]byte{0x20, 0x01, 0x0d, 0xb8}
	b[4] = byte(a.next6 >> 8)
	b[5] = byte(a.next6)
	a.next6++
	return netip.PrefixFrom(netip.AddrFrom16(b), 48), nil
}
