package scenario

import (
	"context"
	"fmt"
	"net/netip"

	"github.com/last-mile-congestion/lastmile/internal/atlas"
	"github.com/last-mile-congestion/lastmile/internal/ipnet"
	"github.com/last-mile-congestion/lastmile/internal/isp"
	"github.com/last-mile-congestion/lastmile/internal/lastmile"
	"github.com/last-mile-congestion/lastmile/internal/netsim"
	"github.com/last-mile-congestion/lastmile/internal/parallel"
	"github.com/last-mile-congestion/lastmile/internal/timeseries"
)

// BuildFleet deploys n IPv4 probes into a network for standalone
// experiments (the Fig. 1/2 ISP_DE vs ISP_US comparison and the Fig. 8
// anchor study build their fleets directly rather than through a survey
// world). Probe IDs start at idBase. A fraction of the fleet is older
// v1/v2 hardware, as on the real platform.
func BuildFleet(network *isp.Network, devices *isp.DeviceSet, n int, idBase int, seed uint64) ([]*atlas.Probe, error) {
	return BuildFleetAF(network, devices, n, idBase, seed, 4)
}

// BuildFleetAF is BuildFleet with an explicit address family. IPv6 probes
// measure the network's IPv6 path: ULA home addressing and the V6 device
// set, which for legacy-PPPoE networks is the uncongested IPoE plant —
// the delay-side counterpart of the paper's Appendix C.
func BuildFleetAF(network *isp.Network, devices *isp.DeviceSet, n int, idBase int, seed uint64, af int) ([]*atlas.Probe, error) {
	if af != 4 && af != 6 {
		return nil, fmt.Errorf("scenario: bad address family %d", af)
	}
	prefix := network.Prefix
	if af == 6 {
		if !network.PrefixV6.IsValid() {
			return nil, fmt.Errorf("scenario: %s has no IPv6 prefix", network.Name)
		}
		prefix = network.PrefixV6
	}
	probes := make([]*atlas.Probe, 0, n)
	for slot := 0; slot < n; slot++ {
		id := idBase + slot
		pub, err := ipnet.HostAt(prefix, uint64(5000+slot*13))
		if err != nil {
			return nil, fmt.Errorf("scenario: %s: %w", network.Name, err)
		}
		dev := devices.DeviceFor(uint64(id), af)
		edgeIdx := uint64(2)
		if dev != nil {
			edgeIdx = 2 + dev.ID%200
		}
		edge, err := ipnet.HostAt(prefix, edgeIdx)
		if err != nil {
			return nil, err
		}
		coreAddr, err := ipnet.HostAt(prefix, 65000)
		if err != nil {
			return nil, err
		}
		rng := netsim.DerivedRand(seed, uint64(id), 0xf1ee7)
		version, availability := 3, 0.985
		switch rng.Intn(10) {
		case 0:
			version, availability = 1, 0.93
		case 1:
			version, availability = 2, 0.95
		}
		// A quarter of the fleet sits behind noisy home networks; see
		// Probe.ExtraNoiseMs.
		extraNoise := 0.02 * float64(rng.Intn(5))
		if rng.Intn(4) == 0 {
			extraNoise = 0.6 + float64(rng.Intn(150))/100
		}
		lan := netip.AddrFrom4([4]byte{192, 168, 1, 10})
		gateway := netip.AddrFrom4([4]byte{192, 168, 1, 1})
		if af == 6 {
			// ULA home addressing: the estimator treats fc00::/7 as
			// the subscriber side (ipnet.IsPrivate).
			lan = netip.MustParseAddr("fd00::10")
			gateway = netip.MustParseAddr("fd00::1")
		}
		probes = append(probes, &atlas.Probe{
			ID:           id,
			Version:      version,
			ASN:          network.ASN,
			CC:           network.CC,
			PublicAddr:   pub,
			LANAddr:      lan,
			GatewayAddr:  gateway,
			EdgeAddr:     edge,
			CoreAddr:     coreAddr,
			Device:       dev,
			EdgeBaseMs:   network.EdgeBaseMs,
			ExtraNoiseMs: extraNoise,
			Availability: availability,
		})
	}
	return probes, nil
}

// FleetSizeFor scales a nominal fleet size to a period, reproducing the
// platform's deployment growth (Fig. 1's per-period probe counts).
func FleetSizeFor(nominal int, p Period) int {
	frac := min(0.82+0.028*float64(periodOrdinal(p)), 1)
	n := max(int(float64(nominal)*frac), 3)
	return n
}

// PopulationResult is the aggregated outcome of measuring a probe fleet.
type PopulationResult struct {
	// Signal is the aggregated queuing-delay series.
	Signal *timeseries.Series
	// Probes is the number of probes that contributed usable data.
	Probes int
}

// SimulatePopulationDelay runs the fast-path measurement for a whole
// fleet and aggregates it (§2.1), returning the aggregated queuing delay
// and the number of contributing probes.
func SimulatePopulationDelay(probes []*atlas.Probe, p Period, perBin int, seed uint64) (*PopulationResult, error) {
	return SimulatePopulationDelayWorkers(probes, p, perBin, seed, 1)
}

// SimulatePopulationDelayWorkers is SimulatePopulationDelay on a bounded
// worker pool. Each probe's draws are keyed by its ID and accumulators
// come back in probe order, so the result is identical at any worker
// count.
func SimulatePopulationDelayWorkers(probes []*atlas.Probe, p Period, perBin int, seed uint64, workers int) (*PopulationResult, error) {
	accs, err := parallel.Map(context.Background(), workers, len(probes), func(i int) (*lastmile.ProbeAccumulator, error) {
		return SimulateProbeDelay(probes[i], p, perBin, seed)
	})
	if err != nil {
		return nil, err
	}
	signal, n, err := lastmile.PopulationDelay(accs, lastmile.DefaultMinTraceroutes)
	if err != nil {
		return nil, err
	}
	return &PopulationResult{Signal: signal, Probes: n}, nil
}
