package scenario

import (
	"fmt"
	"net/netip"

	"github.com/last-mile-congestion/lastmile/internal/atlas"
	"github.com/last-mile-congestion/lastmile/internal/bgp"
	"github.com/last-mile-congestion/lastmile/internal/ipnet"
	"github.com/last-mile-congestion/lastmile/internal/isp"
	"github.com/last-mile-congestion/lastmile/internal/netsim"
)

// TokyoISP is one network of the §4 case study, with its probe fleet and
// (for broadband arms) a CDN client population.
type TokyoISP struct {
	// Network is the access network.
	Network *isp.Network
	// Devices are the case-study week's device instances.
	Devices *isp.DeviceSet
	// Probes are the Greater-Tokyo Atlas probes (empty for mobile arms,
	// which host no probes in the study).
	Probes []*atlas.Probe
	// CDNClients is the client population size for log generation.
	CDNClients int
}

// Tokyo is the §4 (and Appendix B/C) case-study world.
type Tokyo struct {
	// Seed drives all randomness.
	Seed uint64
	// ISPA and ISPB ride the legacy PPPoE infrastructure; ISPC owns its
	// fiber plant.
	ISPA, ISPB, ISPC *TokyoISP
	// ISPAMobile is ISP_A's cellular arm (a different AS, as §4.2
	// notes); ISPBMobile and ISPCMobile share their broadband AS but
	// use dedicated mobile prefixes.
	ISPAMobile, ISPBMobile, ISPCMobile *TokyoISP
	// ISPD is the Appendix B network: legacy-dependent broadband with
	// both probes and an anchor.
	ISPD *TokyoISP
	// ISPDAnchor is the datacenter-hosted anchor inside ISP_D.
	ISPDAnchor *atlas.Probe
	// MobilePrefixes aggregates the published mobile prefixes
	// (Appendix A) for CDN filtering.
	MobilePrefixes *ipnet.PrefixSet
	// RIB resolves client addresses to the case-study ASes.
	RIB *bgp.RIB
}

// Case-study ASNs (synthetic).
const (
	ASNTokyoA       bgp.ASN = 65101
	ASNTokyoB       bgp.ASN = 65102
	ASNTokyoC       bgp.ASN = 65103
	ASNTokyoAMobile bgp.ASN = 65111 // separate AS for ISP_A's mobile arm
	ASNTokyoD       bgp.ASN = 65104
)

// Severities for the Tokyo legacy ISPs, calibrated so aggregated delays
// peak in the 2–6 ms band of Fig. 5 while CDN throughput halves (Fig. 6).
// Peak device utilisation for the legacy archetype is 0.7 + 1.7·s, so
// these severities put the evening peak at ≈1.3× (ISP_A), ≈1.2× (ISP_B)
// and ≈1.25× (ISP_D) capacity: congested only during the evening hours,
// with the cubic overload-throughput law halving peak-hour throughput.
const (
	tokyoSeverityA = isp.Severity(0.35)
	tokyoSeverityB = isp.Severity(0.30)
	tokyoSeverityD = isp.Severity(0.32)
)

// BuildTokyo constructs the case-study world. cdnClients sets the client
// population per broadband ISP (the paper had ≈150k across ISPs; a few
// thousand reproduce the medians); 0 selects 2000.
func BuildTokyo(seed uint64, cdnClients int) (*Tokyo, error) {
	if cdnClients <= 0 {
		cdnClients = 2000
	}
	t := &Tokyo{Seed: seed, RIB: &bgp.RIB{}}

	mk := func(cfg isp.Config, probes int, clients int, anchored bool) (*TokyoISP, error) {
		network, err := isp.New(cfg)
		if err != nil {
			return nil, err
		}
		devices := network.BuildDevices(netsim.MixSeed(seed, uint64(cfg.ASN)), 0)
		ti := &TokyoISP{Network: network, Devices: devices, CDNClients: clients}
		for slot := 0; slot < probes; slot++ {
			probe, err := tokyoProbe(network, devices, slot, false)
			if err != nil {
				return nil, err
			}
			ti.Probes = append(ti.Probes, probe)
		}
		if err := t.RIB.Announce(cfg.Prefix, cfg.ASN); err != nil {
			return nil, err
		}
		if cfg.PrefixV6.IsValid() {
			if err := t.RIB.Announce(cfg.PrefixV6, cfg.ASN); err != nil {
				return nil, err
			}
		}
		_ = anchored
		return ti, nil
	}

	var err error
	// Broadband arms. Prefixes sit in the same synthetic space as the
	// survey world but outside its allocation range.
	t.ISPA, err = mk(isp.NewLegacyPPPoE("ISP_A", ASNTokyoA, "JP", 9,
		netip.MustParsePrefix("203.96.0.0/16"), netip.MustParsePrefix("2001:db8:fa00::/48"),
		tokyoSeverityA), 8, cdnClients, false)
	if err != nil {
		return nil, err
	}
	t.ISPB, err = mk(isp.NewLegacyPPPoE("ISP_B", ASNTokyoB, "JP", 9,
		netip.MustParsePrefix("203.97.0.0/16"), netip.MustParsePrefix("2001:db8:fb00::/48"),
		tokyoSeverityB), 5, cdnClients*5/8, false)
	if err != nil {
		return nil, err
	}
	t.ISPC, err = mk(isp.NewOwnFiber("ISP_C", ASNTokyoC, "JP", 9,
		netip.MustParsePrefix("203.98.0.0/16"), netip.MustParsePrefix("2001:db8:fc00::/48")),
		8, cdnClients, false)
	if err != nil {
		return nil, err
	}

	// Mobile arms. ISP_A's runs in its own AS; ISP_B's and ISP_C's live
	// inside the broadband AS under dedicated (published) prefixes.
	t.ISPAMobile, err = mk(isp.NewCellular("ISP_A_mobile", ASNTokyoAMobile, "JP", 9,
		netip.MustParsePrefix("203.99.0.0/16"), netip.MustParsePrefix("2001:db8:fd00::/48")),
		0, cdnClients/2, false)
	if err != nil {
		return nil, err
	}
	t.ISPBMobile, err = mk(isp.NewCellular("ISP_B_mobile", ASNTokyoB, "JP", 9,
		netip.MustParsePrefix("203.100.0.0/16"), netip.MustParsePrefix("2001:db8:fe00::/48")),
		0, cdnClients/2, false)
	if err != nil {
		return nil, err
	}
	t.ISPCMobile, err = mk(isp.NewCellular("ISP_C_mobile", ASNTokyoC, "JP", 9,
		netip.MustParsePrefix("203.101.0.0/16"), netip.MustParsePrefix("2001:db8:ff00::/48")),
		0, cdnClients/2, false)
	if err != nil {
		return nil, err
	}

	// Appendix B: ISP_D with probes and an anchor.
	t.ISPD, err = mk(isp.NewLegacyPPPoE("ISP_D", ASNTokyoD, "JP", 9,
		netip.MustParsePrefix("203.102.0.0/16"), netip.MustParsePrefix("2001:db8:f900::/48"),
		tokyoSeverityD), 6, 0, true)
	if err != nil {
		return nil, err
	}
	anchorNet, err := isp.New(isp.NewDatacenter("ISP_D_anchor", ASNTokyoD, "JP", 9,
		netip.MustParsePrefix("203.102.0.0/16"), netip.MustParsePrefix("2001:db8:f900::/48")))
	if err != nil {
		return nil, err
	}
	anchorDevs := anchorNet.BuildDevices(netsim.MixSeed(seed, uint64(ASNTokyoD), 0xa), 0)
	t.ISPDAnchor, err = tokyoProbe(anchorNet, anchorDevs, 999, true)
	if err != nil {
		return nil, err
	}

	// Appendix A: published mobile prefixes.
	t.MobilePrefixes = &ipnet.PrefixSet{}
	for _, p := range []string{
		"203.99.0.0/16", "203.100.0.0/16", "203.101.0.0/16",
		"2001:db8:fd00::/48", "2001:db8:fe00::/48", "2001:db8:ff00::/48",
	} {
		if err := t.MobilePrefixes.AddString(p); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// tokyoProbe builds one Greater-Tokyo probe (or anchor) in a network.
func tokyoProbe(network *isp.Network, devices *isp.DeviceSet, slot int, anchor bool) (*atlas.Probe, error) {
	id := int(uint32(network.ASN))*100 + slot
	pub, err := ipnet.HostAt(network.Prefix, uint64(5000+slot*13))
	if err != nil {
		return nil, fmt.Errorf("scenario: %s: %w", network.Name, err)
	}
	dev := devices.DeviceFor(uint64(id), 4)
	edgeIdx := uint64(2)
	if dev != nil {
		edgeIdx = 2 + dev.ID%200
	}
	edge, err := ipnet.HostAt(network.Prefix, edgeIdx)
	if err != nil {
		return nil, err
	}
	coreAddr, err := ipnet.HostAt(network.Prefix, 65000)
	if err != nil {
		return nil, err
	}
	cities := []string{"Tokyo", "Yokohama", "Chiba", "Saitama"}
	return &atlas.Probe{
		ID:           id,
		Version:      3,
		IsAnchor:     anchor,
		ASN:          network.ASN,
		CC:           "JP",
		City:         cities[slot%len(cities)],
		PublicAddr:   pub,
		LANAddr:      netip.AddrFrom4([4]byte{192, 168, 1, 10}),
		GatewayAddr:  netip.AddrFrom4([4]byte{192, 168, 1, 1}),
		EdgeAddr:     edge,
		CoreAddr:     coreAddr,
		Device:       dev,
		EdgeBaseMs:   network.EdgeBaseMs,
		Availability: 0.99,
	}, nil
}
