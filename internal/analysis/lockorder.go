package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// LockOrderAnalyzer builds a lock-acquisition-order graph across every
// sync.Mutex/sync.RWMutex class in the module — the engine's striped
// shard locks, the telemetry registry mutex, the monitor's printer lock
// — and reports two defect classes:
//
//   - a cycle in the order graph: two call paths that acquire the same
//     locks in opposite orders can deadlock under concurrency even
//     though every individual path is correct;
//   - a telemetry call (histogram observation, timer, registry
//     get-or-create) made while a hot-path lock is held, outside the
//     sampled-tick pattern (`if sampled { ... }`) the engine uses to
//     keep instrumentation off the per-observation critical section.
//     Counter and Gauge operations are exempt — they are single atomic
//     adds.
//
// Lock classes are keyed structurally, (package, type, field) for field
// mutexes and (package, var) for package-level ones, so every instance
// of a striped lock (each engine shard) is one class. Edges come from
// three sources: a lock acquired while another is held in the same
// body, a call made while a lock is held (the callee's transitive
// acquire set), and callbacks invoked under a lock — a function value
// passed to a callee that acquires L induces L → acquires(callback),
// which is how the registry's GaugeFunc snapshot evaluation and the
// printer's Block are modelled despite being dynamic calls.
//
// The TryLock-then-Lock contention idiom (`if !mu.TryLock() { ...;
// mu.Lock() }`) is recognised: the failed TryLock does not hold the
// lock inside the if body, so the contention counter there is not "under
// the lock".
var LockOrderAnalyzer = &Analyzer{
	Name:      "lockorder",
	Doc:       "builds the lock-acquisition-order graph (shard stripes, registry, printer) and reports cycles and unsampled telemetry under hot locks",
	RunModule: runLockOrder,
}

// lockEvent is one position-ordered occurrence inside a function body.
type lockEvent struct {
	pos  token.Pos
	kind int // evAcquire, evRelease, evCall, evTelemetry
	// class is the lock class for acquire/release.
	class string
	// callee is the static callee for evCall.
	callee *FuncNode
	// callbacks are function-valued arguments at an evCall site.
	callbacks []ast.Expr
	// desc names the telemetry call for evTelemetry.
	desc string
	// guarded marks events inside an `if sampled { ... }` block.
	guarded bool
}

const (
	evAcquire = iota
	evRelease
	evCall
	evTelemetry
)

// lockedge is one order edge with its witness position.
type lockEdge struct {
	from, to string
	pos      token.Pos
}

func runLockOrder(mp *ModulePass) error {
	prog := mp.Prog
	lo := &lockOrder{
		prog:     prog,
		acquires: make(map[*FuncNode]map[string]bool),
		visiting: make(map[*FuncNode]bool),
		edges:    make(map[[2]string]token.Pos),
	}

	for _, node := range prog.Nodes() {
		lo.scanFunction(mp, node)
	}

	lo.reportCycles(mp)
	return nil
}

// lockOrder carries the module-wide analysis state.
type lockOrder struct {
	prog *Program
	// acquires memoises the transitive may-acquire set per function.
	acquires map[*FuncNode]map[string]bool
	visiting map[*FuncNode]bool
	// edges maps (from, to) to the first witness position.
	edges map[[2]string]token.Pos
}

// addEdge records an order edge, keeping the first witness and skipping
// self-edges (re-acquiring the same class is the TryLock idiom, not an
// order violation this analyzer models).
func (lo *lockOrder) addEdge(from, to string, pos token.Pos) {
	if from == to {
		return
	}
	k := [2]string{from, to}
	if _, ok := lo.edges[k]; !ok {
		lo.edges[k] = pos
	}
}

// scanFunction simulates node's body as a position-ordered event
// sequence, emitting order edges and telemetry-under-lock findings.
func (lo *lockOrder) scanFunction(mp *ModulePass, node *FuncNode) {
	events := lo.collectLockEvents(node, false)
	if len(events) == 0 {
		return
	}
	var held []string
	holding := func(c string) bool {
		for _, h := range held {
			if h == c {
				return true
			}
		}
		return false
	}
	for _, ev := range events {
		switch ev.kind {
		case evAcquire:
			if holding(ev.class) {
				continue
			}
			for _, h := range held {
				lo.addEdge(h, ev.class, ev.pos)
			}
			held = append(held, ev.class)
		case evRelease:
			for i, h := range held {
				if h == ev.class {
					held = append(held[:i], held[i+1:]...)
					break
				}
			}
		case evCall:
			if len(held) > 0 && ev.callee != nil {
				for c := range lo.funcAcquires(ev.callee) {
					for _, h := range held {
						lo.addEdge(h, c, ev.pos)
					}
				}
			}
			// Callback-under-lock: a function value handed to a callee
			// that acquires L runs (possibly later) with L held.
			if ev.callee != nil && len(ev.callbacks) > 0 {
				calleeLocks := lo.funcAcquires(ev.callee)
				if len(calleeLocks) > 0 {
					for _, cb := range ev.callbacks {
						for a := range lo.exprAcquires(node, cb) {
							for l := range calleeLocks {
								lo.addEdge(l, a, ev.pos)
							}
						}
					}
				}
			}
		case evTelemetry:
			if ev.guarded {
				continue
			}
			for _, h := range held {
				if hotLockClass(mp.Cfg, h) && mp.requested(node.Pkg) {
					mp.Reportf(ev.pos,
						"telemetry call %s under hot lock %s outside the sampled-tick guard; wrap in `if sampled { ... }` or move it off the critical section",
						ev.desc, h)
					break
				}
			}
		}
	}
}

// hotLockClass reports whether class matches the configured hot-path
// lock set (substring match, like analyzer scoping).
func hotLockClass(cfg Config, class string) bool {
	for _, s := range cfg.HotPathLocks {
		if strings.Contains(class, s) {
			return true
		}
	}
	return false
}

// funcAcquires returns the transitive set of lock classes node may
// acquire: direct acquires anywhere in its body (function literals
// included — a closure may run with its creator's locks live) plus its
// static callees'. Cycles in the call graph are cut by the visiting set.
func (lo *lockOrder) funcAcquires(node *FuncNode) map[string]bool {
	if s, ok := lo.acquires[node]; ok {
		return s
	}
	if lo.visiting[node] {
		return nil
	}
	lo.visiting[node] = true
	defer delete(lo.visiting, node)

	out := make(map[string]bool)
	for _, ev := range lo.collectLockEvents(node, true) {
		if ev.kind == evAcquire {
			out[ev.class] = true
		}
	}
	for _, e := range node.Calls {
		for c := range lo.funcAcquires(e.Callee) {
			out[c] = true
		}
	}
	lo.acquires[node] = out
	return out
}

// exprAcquires resolves the may-acquire set of a function-valued
// expression: a literal's body (direct acquires plus its static
// callees'), or a referenced function/method's transitive set.
func (lo *lockOrder) exprAcquires(node *FuncNode, e ast.Expr) map[string]bool {
	info := node.Pkg.Info
	out := make(map[string]bool)
	switch e := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		for _, ev := range lo.collectEventsIn(node, e.Body, true) {
			if ev.kind == evAcquire {
				out[ev.class] = true
			}
		}
		ast.Inspect(e.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if fn := StaticCallee(info, call); fn != nil {
					if callee, ok := lo.prog.Funcs[fn]; ok {
						for c := range lo.funcAcquires(callee) {
							out[c] = true
						}
					}
				}
			}
			return true
		})
	default:
		if fn := funcValueOf(info, e); fn != nil {
			if callee, ok := lo.prog.Funcs[fn]; ok {
				for c := range lo.funcAcquires(callee) {
					out[c] = true
				}
			}
		}
	}
	return out
}

// funcValueOf resolves a function-typed value expression (method value,
// named function reference) to its object.
func funcValueOf(info *types.Info, e ast.Expr) *types.Func {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[e].(*types.Func); ok {
			return fn.Origin()
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok && sel != nil {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn.Origin()
			}
			return nil
		}
		if fn, ok := info.Uses[e.Sel].(*types.Func); ok {
			return fn.Origin()
		}
	}
	return nil
}

// collectLockEvents gathers node's events in position order.
// includeLits also descends into function literals (for may-acquire
// sets); the linear simulation excludes them, since a literal's body
// runs at an unknown time.
func (lo *lockOrder) collectLockEvents(node *FuncNode, includeLits bool) []lockEvent {
	return lo.collectEventsIn(node, node.Decl.Body, includeLits)
}

func (lo *lockOrder) collectEventsIn(node *FuncNode, body ast.Node, includeLits bool) []lockEvent {
	info := node.Pkg.Info
	var events []lockEvent

	// Pre-pass: the body ranges of `if sampled { ... }` guards.
	type posRange struct{ lo, hi token.Pos }
	var guards []posRange
	ast.Inspect(body, func(n ast.Node) bool {
		if ifs, ok := n.(*ast.IfStmt); ok {
			if id, ok := ast.Unparen(ifs.Cond).(*ast.Ident); ok && id.Name == "sampled" {
				guards = append(guards, posRange{ifs.Body.Pos(), ifs.Body.End()})
			}
		}
		return true
	})
	guarded := func(p token.Pos) bool {
		for _, g := range guards {
			if g.lo <= p && p < g.hi {
				return true
			}
		}
		return false
	}

	// negTryLock matches `if !x.TryLock() { ... }`: the acquire takes
	// effect after the if statement, not inside its body.
	negTry := make(map[*ast.CallExpr]token.Pos)
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		un, ok := ast.Unparen(ifs.Cond).(*ast.UnaryExpr)
		if !ok || un.Op != token.NOT {
			return true
		}
		if call, ok := ast.Unparen(un.X).(*ast.CallExpr); ok {
			if _, name, ok := lockMethod(info, call); ok && strings.HasPrefix(name, "Try") {
				negTry[call] = ifs.End()
			}
		}
		return true
	})

	var deferred = make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			deferred[d.Call] = true
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return includeLits
		case *ast.CallExpr:
			if class, name, ok := lockMethod(info, n); ok {
				switch name {
				case "Lock", "RLock", "TryLock", "TryRLock":
					pos := n.Pos()
					if p, neg := negTry[n]; neg {
						pos = p
					}
					events = append(events, lockEvent{pos: pos, kind: evAcquire, class: class})
				case "Unlock", "RUnlock":
					if !deferred[n] {
						events = append(events, lockEvent{pos: n.Pos(), kind: evRelease, class: class})
					}
				}
				return true
			}
			if desc, ok := telemetryCall(info, n); ok {
				events = append(events, lockEvent{pos: n.Pos(), kind: evTelemetry, desc: desc, guarded: guarded(n.Pos())})
			}
			var callee *FuncNode
			if fn := StaticCallee(info, n); fn != nil {
				callee = lo.prog.Funcs[fn]
			}
			var cbs []ast.Expr
			for _, arg := range n.Args {
				if isFuncValued(info, arg) {
					cbs = append(cbs, arg)
				}
			}
			if callee != nil || len(cbs) > 0 {
				events = append(events, lockEvent{pos: n.Pos(), kind: evCall, callee: callee, callbacks: cbs})
			}
		}
		return true
	})

	sort.SliceStable(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	return events
}

// isFuncValued reports whether arg is a function literal, a method
// value, or a named function reference.
func isFuncValued(info *types.Info, arg ast.Expr) bool {
	if _, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
		return true
	}
	return funcValueOf(info, arg) != nil
}

// lockMethod matches a call to a sync.Mutex / sync.RWMutex method and
// returns the receiver's lock class and the method name.
func lockMethod(info *types.Info, call *ast.CallExpr) (class, name string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	selection, isMethod := info.Selections[sel]
	if !isMethod || selection == nil {
		return "", "", false
	}
	fn, isFn := selection.Obj().(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", "", false
	}
	rn := recvTypeName(recv.Type())
	if rn != "Mutex" && rn != "RWMutex" {
		return "", "", false
	}
	return lockClassOf(info, sel.X), fn.Name(), true
}

// lockClassOf derives the structural class name of a lock expression:
// "pkg.Type.field" for field mutexes, "pkg.var" for package-level vars,
// and a typed fallback otherwise.
func lockClassOf(info *types.Info, x ast.Expr) string {
	switch x := ast.Unparen(x).(type) {
	case *ast.SelectorExpr:
		// owner.field — key by the owner's named type.
		field := x.Sel.Name
		t := typeOf(info, x.X)
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok && n.Obj().Pkg() != nil {
			return n.Obj().Pkg().Name() + "." + n.Obj().Name() + "." + field
		}
		return "?." + field
	case *ast.Ident:
		if v, ok := info.ObjectOf(x).(*types.Var); ok && v.Pkg() != nil {
			if v.Parent() == v.Pkg().Scope() {
				return v.Pkg().Name() + "." + v.Name()
			}
			return v.Pkg().Name() + ".(local)." + v.Name()
		}
	}
	// Embedded mutex: pkg.Type itself.
	t := typeOf(info, x)
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok && n.Obj().Pkg() != nil {
		return n.Obj().Pkg().Name() + "." + n.Obj().Name()
	}
	return "?"
}

// telemetryCall matches method calls into the telemetry package whose
// receivers are not the lock-free atomic kinds: Histogram observations,
// Timer start/stop, and Registry get-or-create all do work (CAS loops,
// wall-clock reads, map lookups under the registry mutex) that belongs
// outside a hot critical section unless sampled.
func telemetryCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false
	}
	selection, isMethod := info.Selections[sel]
	if !isMethod || selection == nil {
		return "", false
	}
	fn, isFn := selection.Obj().(*types.Func)
	if !isFn || fn.Pkg() == nil {
		return "", false
	}
	path := fn.Pkg().Path()
	if path != "telemetry" && !strings.HasSuffix(path, "/telemetry") {
		return "", false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", false
	}
	switch recvTypeName(recv.Type()) {
	case "Histogram", "Timer", "Registry":
		return recvTypeName(recv.Type()) + "." + fn.Name(), true
	}
	return "", false
}

// reportCycles finds strongly connected components of the order graph
// and reports each cycle once, with the witness positions of its edges.
func (lo *lockOrder) reportCycles(mp *ModulePass) {
	adj := make(map[string][]string)
	nodes := make(map[string]bool)
	for k := range lo.edges {
		adj[k[0]] = append(adj[k[0]], k[1])
		nodes[k[0]], nodes[k[1]] = true, true
	}
	var names []string
	for n := range nodes {
		names = append(names, n)
	}
	sort.Strings(names)
	for n := range adj {
		sort.Strings(adj[n])
	}

	// Tarjan's SCC, deterministic by sorted roots and neighbours.
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	next := 0
	var sccs [][]string
	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			if len(scc) > 1 {
				sccs = append(sccs, scc)
			}
		}
	}
	for _, n := range names {
		if _, seen := index[n]; !seen {
			strongconnect(n)
		}
	}

	for _, scc := range sccs {
		sort.Strings(scc)
		// Render the cycle as the sorted class ring and list each
		// intra-SCC edge with its witness position.
		inSCC := make(map[string]bool, len(scc))
		for _, c := range scc {
			inSCC[c] = true
		}
		var parts []string
		var first token.Pos
		var keys [][2]string
		for k := range lo.edges {
			if inSCC[k[0]] && inSCC[k[1]] {
				keys = append(keys, k)
			}
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i][0] != keys[j][0] {
				return keys[i][0] < keys[j][0]
			}
			return keys[i][1] < keys[j][1]
		})
		for _, k := range keys {
			pos := lo.edges[k]
			p := lo.prog.Fset.Position(pos)
			parts = append(parts, fmt.Sprintf("%s → %s at %s:%d", k[0], k[1], filepath.Base(p.Filename), p.Line))
			if first == token.NoPos {
				first = pos
			}
		}
		mp.Reportf(first, "lock order cycle between %s (potential deadlock): %s; acquire these locks in one global order",
			strings.Join(scc, ", "), strings.Join(parts, "; "))
	}
}
