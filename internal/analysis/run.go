package analysis

import "strings"

// Config selects which analyzers run and where their findings apply.
type Config struct {
	// Enabled maps analyzer name -> on/off. A nil map enables every
	// analyzer; a present-but-false entry disables one.
	Enabled map[string]bool
	// Scope maps analyzer name -> import-path substrings the analyzer is
	// confined to. Analyzers without an entry apply everywhere.
	Scope map[string][]string
}

// DefaultConfig returns the repo's lmvet policy: every analyzer on,
// detguard confined to the deterministic simulation packages, and
// errclose confined to the ingest/report paths and the binaries.
func DefaultConfig() Config {
	return Config{
		Scope: map[string][]string{
			"detguard": {
				"internal/netsim",
				"internal/scenario",
				"internal/dsp",
			},
			"errclose": {
				"internal/ioutil",
				"internal/traceroute",
				"internal/report",
				"/cmd/",
			},
		},
	}
}

// enabled reports whether the named analyzer should run at all.
func (c Config) enabled(name string) bool {
	if c.Enabled == nil {
		return true
	}
	on, ok := c.Enabled[name]
	return !ok || on
}

// inScope reports whether the analyzer applies to the package path.
func (c Config) inScope(name, pkgPath string) bool {
	subs := c.Scope[name]
	if len(subs) == 0 {
		return true
	}
	for _, s := range subs {
		if strings.Contains(pkgPath, s) {
			return true
		}
	}
	return false
}

// RunSuite loads every package directory and applies the configured
// analyzers, returning all findings sorted by position. Load and
// type-check failures abort the run.
func RunSuite(l *Loader, dirs []string, cfg Config) ([]Diagnostic, error) {
	var all []Diagnostic
	for _, dir := range dirs {
		pkg, err := l.Load(dir)
		if err != nil {
			return nil, err
		}
		for _, a := range All() {
			if !cfg.enabled(a.Name) || !cfg.inScope(a.Name, pkg.Path) {
				continue
			}
			diags, err := RunAnalyzer(a, pkg)
			if err != nil {
				return nil, err
			}
			all = append(all, diags...)
		}
	}
	sortDiagnostics(all)
	return all, nil
}
