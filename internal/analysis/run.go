package analysis

import (
	"context"
	"strings"

	"github.com/last-mile-congestion/lastmile/internal/parallel"
)

// Config selects which analyzers run, where their findings apply, and how
// the suite executes.
type Config struct {
	// Enabled maps analyzer name -> on/off. A nil map enables every
	// analyzer; a present-but-false entry disables one.
	Enabled map[string]bool
	// Scope maps analyzer name -> import-path substrings the analyzer is
	// confined to. Analyzers without an entry apply everywhere. Scope
	// applies to per-package analyzers; module-wide analyzers see the
	// whole program and confine their reporting themselves (see
	// TaintSinks).
	Scope map[string][]string
	// Severity overrides an analyzer's default finding severity by name.
	Severity map[string]Severity
	// Workers bounds how many packages are analyzed concurrently;
	// <= 1 analyzes serially. Results are merged in deterministic order
	// either way (the worker pool returns input-order results), so
	// parallel and serial runs emit byte-identical output.
	Workers int
	// TaintSinks are the import-path substrings whose exported entry
	// points the dettaint analyzer treats as sinks.
	TaintSinks []string
	// HotPathLocks are lock-class substrings (see lockorder's structural
	// "pkg.Type.field" naming) treated as hot-path critical sections:
	// telemetry calls while one is held must sit inside the sampled-tick
	// guard.
	HotPathLocks []string
}

// DefaultConfig returns the repo's lmvet policy: every analyzer on,
// detguard confined to the deterministic simulation packages, errclose
// confined to the ingest/report paths and the binaries, and dettaint
// guarding the exported surface of every package that feeds the
// EXPERIMENTS.md artifacts.
func DefaultConfig() Config {
	return Config{
		Scope: map[string][]string{
			"detguard": {
				"internal/netsim",
				"internal/scenario",
				"internal/dsp",
			},
			"errclose": {
				"internal/ioutil",
				"internal/traceroute",
				"internal/report",
				"/cmd/",
			},
		},
		TaintSinks: []string{
			"internal/netsim",
			"internal/scenario",
			"internal/dsp",
			"internal/experiments",
		},
		HotPathLocks: []string{
			"engine.shard.mu",
		},
	}
}

// enabled reports whether the named analyzer should run at all.
func (c Config) enabled(name string) bool {
	if c.Enabled == nil {
		return true
	}
	on, ok := c.Enabled[name]
	return !ok || on
}

// inScope reports whether the analyzer applies to the package path.
func (c Config) inScope(name, pkgPath string) bool {
	subs := c.Scope[name]
	if len(subs) == 0 {
		return true
	}
	for _, s := range subs {
		if strings.Contains(pkgPath, s) {
			return true
		}
	}
	return false
}

// severityOf resolves the effective severity for an analyzer name:
// the configured override, else the analyzer's default, else error.
func (c Config) severityOf(name string) Severity {
	if s, ok := c.Severity[name]; ok {
		return s
	}
	if a := Lookup(name); a != nil && a.Severity != "" {
		return a.Severity
	}
	return SeverityError
}

// RunSuite loads every package directory and applies the configured
// analyzers, returning all findings sorted by position. Load and
// type-check failures abort the run.
//
// Execution: loading and type-checking are serial (the loader's caches
// are shared), then the per-package analyzers fan out over packages on
// cfg.Workers goroutines via the internal/parallel pool, whose
// input-order result delivery keeps output deterministic. Module-wide
// analyzers (dettaint) then run once over the full loaded program.
// Finally lmvet:ignore suppressions are applied and severities stamped.
func RunSuite(l *Loader, dirs []string, cfg Config) ([]Diagnostic, error) {
	pkgs := make([]*Package, len(dirs))
	for i, dir := range dirs {
		pkg, err := l.Load(dir)
		if err != nil {
			return nil, err
		}
		pkgs[i] = pkg
	}

	var perPkg, moduleWide []*Analyzer
	for _, a := range All() {
		if !cfg.enabled(a.Name) {
			continue
		}
		if a.RunModule != nil {
			moduleWide = append(moduleWide, a)
		} else {
			perPkg = append(perPkg, a)
		}
	}

	// Analyzer passes are read-only over the type-checked packages and
	// the shared (internally locked) FileSet, so packages analyze
	// concurrently; parallel.Map returns per-package results in input
	// order, which the final position sort then makes order-independent.
	perPkgDiags, err := parallel.Map(context.Background(), cfg.Workers, len(pkgs),
		func(i int) ([]Diagnostic, error) {
			var out []Diagnostic
			for _, a := range perPkg {
				if !cfg.inScope(a.Name, pkgs[i].Path) {
					continue
				}
				diags, err := RunAnalyzer(a, pkgs[i])
				if err != nil {
					return nil, err
				}
				out = append(out, diags...)
			}
			return out, nil
		})
	if err != nil {
		return nil, err
	}
	var all []Diagnostic
	for _, ds := range perPkgDiags {
		all = append(all, ds...)
	}

	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}
	loaded := l.Loaded()
	ignores, malformed := buildIgnoreIndex(loaded, known)

	if len(moduleWide) > 0 {
		prog := BuildProgram(l.Fset(), loaded)
		requested := make(map[string]bool, len(pkgs))
		for _, p := range pkgs {
			requested[p.Path] = true
		}
		for _, a := range moduleWide {
			var diags []Diagnostic
			mp := &ModulePass{
				Prog:          prog,
				Cfg:           cfg,
				analyzer:      a,
				diags:         &diags,
				requestedPkgs: requested,
				ignores:       ignores,
			}
			if err := a.RunModule(mp); err != nil {
				return nil, err
			}
			all = append(all, diags...)
		}
	}

	all = ignores.filter(all)
	for i := range all {
		if all[i].Severity == "" {
			all[i].Severity = string(cfg.severityOf(all[i].Analyzer))
		}
	}
	all = append(all, malformed...)
	sortDiagnostics(all)
	return all, nil
}
