package analysis

import (
	"go/ast"
	"go/types"
)

// ErrCloseAnalyzer flags statement-position calls to Close, Flush, Sync,
// and Write that return an error nobody reads, including `defer
// f.Close()` on the same methods.
//
// Rationale: on the ingest side a gzip reader's Close surfaces checksum
// corruption, and on the report side buffered writers only surface
// short-write and ENOSPC errors at Flush/Close — dropping them means a
// survey run can emit a truncated CSV and still exit 0. An explicit
// `_ = f.Close()` is accepted as a documented decision.
var ErrCloseAnalyzer = &Analyzer{
	Name: "errclose",
	Doc:  "flags dropped errors from Close/Flush/Sync/Write calls",
	Run:  runErrClose,
}

// errCloseMethods are the flushing/teardown methods whose errors carry
// data-integrity information.
var errCloseMethods = map[string]bool{
	"Close": true, "Flush": true, "Sync": true, "Write": true,
}

func runErrClose(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkDroppedErr(pass, call, "")
				}
			case *ast.DeferStmt:
				checkDroppedErr(pass, n.Call, "defer ")
			case *ast.GoStmt:
				checkDroppedErr(pass, n.Call, "go ")
			}
			return true
		})
	}
	return nil
}

func checkDroppedErr(pass *Pass, call *ast.CallExpr, prefix string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !errCloseMethods[sel.Sel.Name] {
		return
	}
	// Only method calls: selection must be a method value.
	selection, ok := pass.Info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return
	}
	sig, ok := selection.Type().(*types.Signature)
	if !ok || !returnsError(sig) {
		return
	}
	pass.Reportf(call.Pos(), "%s%s.%s returns an error that is dropped; handle it or discard explicitly with _ =", prefix, types.ExprString(sel.X), sel.Sel.Name)
}

// returnsError reports whether the signature's last result is error.
func returnsError(sig *types.Signature) bool {
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	last := res.At(res.Len() - 1).Type()
	named, ok := last.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}
