package analysis

import (
	"strings"
	"testing"
)

// buildFixtureProgram loads the dettaint fixture tree and builds its call
// graph.
func buildFixtureProgram(t *testing.T) *Program {
	t.Helper()
	l, dirs := detTaintFixtureDirs(t)
	for _, dir := range dirs {
		if _, err := l.Load(dir); err != nil {
			t.Fatalf("Load(%s): %v", dir, err)
		}
	}
	return BuildProgram(l.Fset(), l.Loaded())
}

// findNode locates a graph node by package-path suffix and display name
// fragment.
func findNode(t *testing.T, prog *Program, pkgSuffix, display string) *FuncNode {
	t.Helper()
	for _, n := range prog.Nodes() {
		if strings.HasSuffix(n.Pkg.Path, pkgSuffix) && n.DisplayName() == display {
			return n
		}
	}
	t.Fatalf("no node %q in packages ending %q", display, pkgSuffix)
	return nil
}

func calls(from, to *FuncNode) bool {
	for _, e := range from.Calls {
		if e.Callee == to {
			return true
		}
	}
	return false
}

// TestCallGraphEdges pins the static edges the taint engine depends on:
// cross-package function calls, two-deep chains, and method calls
// resolved through concrete receiver types.
func TestCallGraphEdges(t *testing.T) {
	prog := buildFixtureProgram(t)

	entry := findNode(t, prog, "internal/experiments", "experiments.TaintedClock")
	stamp := findNode(t, prog, "dettaint/helper", "helper.Stamp")
	unix := findNode(t, prog, "helper/clock", "clock.Unix")
	if !calls(entry, stamp) {
		t.Error("missing edge experiments.TaintedClock -> helper.Stamp")
	}
	if !calls(stamp, unix) {
		t.Error("missing edge helper.Stamp -> clock.Unix")
	}

	// Method call through a concrete pointer receiver.
	method := findNode(t, prog, "internal/experiments", "experiments.TaintedMethod")
	flatten := findNode(t, prog, "dettaint/helper", "helper.(*Sampler).Flatten")
	if !calls(method, flatten) {
		t.Error("missing method edge experiments.TaintedMethod -> helper.(*Sampler).Flatten")
	}

	// Incoming edges mirror outgoing ones.
	found := false
	for _, e := range stamp.CalledBy {
		if e.Caller == entry {
			found = true
		}
	}
	if !found {
		t.Error("helper.Stamp.CalledBy missing experiments.TaintedClock")
	}
}

// TestCallGraphDeterministicOrder checks node order is stable across
// rebuilds — the property every witness chain and diagnostic order rests
// on.
func TestCallGraphDeterministicOrder(t *testing.T) {
	names := func(prog *Program) []string {
		var out []string
		for _, n := range prog.Nodes() {
			out = append(out, n.Pkg.Path+"."+n.DisplayName())
		}
		return out
	}
	a := names(buildFixtureProgram(t))
	b := names(buildFixtureProgram(t))
	if len(a) == 0 {
		t.Fatal("empty call graph")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("node order differs at %d: %q vs %q", i, a[i], b[i])
		}
	}
}
