package analysis

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// concFixtureDirs resolves one concurrency fixture tree (goleak,
// chanprotocol, or ctxflow) plus its helper subpackages.
func concFixtureDirs(t *testing.T, name string, subs ...string) (*Loader, []string) {
	t.Helper()
	root := filepath.Join("testdata", "src", name)
	l, err := NewLoader(root)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	dirs := []string{root}
	for _, s := range subs {
		dirs = append(dirs, filepath.Join(root, s))
	}
	return l, dirs
}

// onlyAnalyzer enables just the named analyzer.
func onlyAnalyzer(name string) Config {
	cfg := DefaultConfig()
	cfg.Enabled = make(map[string]bool)
	for _, a := range All() {
		cfg.Enabled[a.Name] = a.Name == name
	}
	return cfg
}

// TestGoLeakGolden drives goleak over its fixture: abandoned sends and
// receives (direct and through pump helpers), select-abandonment,
// unjoined spawn loops, and non-terminating wait-loops are flagged at
// the spawn site; the WaitGroup, collector, buffered, pipeline, and
// suppressed shapes stay silent.
func TestGoLeakGolden(t *testing.T) {
	l, dirs := concFixtureDirs(t, "goleak", "pump")
	diags, err := RunSuite(l, dirs, onlyAnalyzer("goleak"))
	if err != nil {
		t.Fatalf("RunSuite: %v", err)
	}
	checkWants(t, l.Loaded(), diags)
}

// TestGoLeakWitnessDetail pins the interprocedural witness chain: the
// blocking send two calls deep is reported at the spawn site with the
// full pump.Fill ← pump.push chain and the send's position.
func TestGoLeakWitnessDetail(t *testing.T) {
	l, dirs := concFixtureDirs(t, "goleak", "pump")
	diags, err := RunSuite(l, dirs, onlyAnalyzer("goleak"))
	if err != nil {
		t.Fatalf("RunSuite: %v", err)
	}
	var msg string
	for _, d := range diags {
		if strings.Contains(d.Message, "pump.Fill") {
			msg = d.Message
		}
	}
	if msg == "" {
		t.Fatalf("no pump.Fill diagnostic in %d findings", len(diags))
	}
	want := "goroutine can leak: it blocks sending on ch at " +
		"pump.Fill ← pump.push (pump.go:13) and no receive on ch is reachable on any path; " +
		"receive from it, buffer it, or select with a cancellation arm"
	if msg != want {
		t.Errorf("witness message:\n got %q\nwant %q", msg, want)
	}
}

// TestChanProtocolGolden drives chanprotocol over its fixture: double
// close, send-after-close (direct and via helper parameter effects),
// close-in-loop, close-by-non-sender, and the lmmonitor-shaped
// default-poll drop are flagged; sender-side close, joined close,
// done-broadcast, and re-polling loops stay silent.
func TestChanProtocolGolden(t *testing.T) {
	l, dirs := concFixtureDirs(t, "chanprotocol", "helper")
	diags, err := RunSuite(l, dirs, onlyAnalyzer("chanprotocol"))
	if err != nil {
		t.Fatalf("RunSuite: %v", err)
	}
	checkWants(t, l.Loaded(), diags)
}

// TestChanProtocolWitnessDetail pins the via-callee witness: the send
// hidden inside helper.Push is reported at the call with the close
// position and the chain to the send.
func TestChanProtocolWitnessDetail(t *testing.T) {
	l, dirs := concFixtureDirs(t, "chanprotocol", "helper")
	diags, err := RunSuite(l, dirs, onlyAnalyzer("chanprotocol"))
	if err != nil {
		t.Fatalf("RunSuite: %v", err)
	}
	var msg string
	for _, d := range diags {
		if strings.Contains(d.Message, "helper.Push") {
			msg = d.Message
		}
	}
	if msg == "" {
		t.Fatalf("no helper.Push diagnostic in %d findings", len(diags))
	}
	want := "call can send on ch after it was closed at proto.go:40: " +
		"helper.Push ← send (helper.go:13); a send on a closed channel panics"
	if msg != want {
		t.Errorf("witness message:\n got %q\nwant %q", msg, want)
	}
}

// TestCtxFlowGolden drives ctxflow over its fixture: unused ctx
// parameters in blocking functions and Background/TODO calls severing
// an in-scope chain are flagged; threaded, passed-through, pure, and
// root-scope functions stay silent.
func TestCtxFlowGolden(t *testing.T) {
	l, dirs := concFixtureDirs(t, "ctxflow", "remote")
	diags, err := RunSuite(l, dirs, onlyAnalyzer("ctxflow"))
	if err != nil {
		t.Fatalf("RunSuite: %v", err)
	}
	checkWants(t, l.Loaded(), diags)
}

// TestCtxFlowMessageDetail pins the severed-chain message shape.
func TestCtxFlowMessageDetail(t *testing.T) {
	l, dirs := concFixtureDirs(t, "ctxflow", "remote")
	diags, err := RunSuite(l, dirs, onlyAnalyzer("ctxflow"))
	if err != nil {
		t.Fatalf("RunSuite: %v", err)
	}
	var msg string
	for _, d := range diags {
		if strings.Contains(d.Message, "context.Background") {
			msg = d.Message
		}
	}
	if msg == "" {
		t.Fatalf("no context.Background diagnostic in %d findings", len(diags))
	}
	want := "context.Background passed to remote.Ping while ctx is in scope: " +
		"the cancellation chain is severed and the callee outlives the caller's deadline; " +
		"pass ctx through instead"
	if msg != want {
		t.Errorf("severed-chain message:\n got %q\nwant %q", msg, want)
	}
}

// TestConcSeverityStamped checks the three concurrency analyzers default
// to error severity and honour per-run overrides.
func TestConcSeverityStamped(t *testing.T) {
	l, dirs := concFixtureDirs(t, "goleak", "pump")
	diags, err := RunSuite(l, dirs, onlyAnalyzer("goleak"))
	if err != nil {
		t.Fatalf("RunSuite: %v", err)
	}
	if len(diags) == 0 {
		t.Fatal("no diagnostics")
	}
	for _, d := range diags {
		if d.Severity != string(SeverityError) {
			t.Errorf("%s: severity = %q, want error", d, d.Severity)
		}
	}

	l2, dirs2 := concFixtureDirs(t, "goleak", "pump")
	cfg := onlyAnalyzer("goleak")
	cfg.Severity = map[string]Severity{"goleak": SeverityWarn}
	diags2, err := RunSuite(l2, dirs2, cfg)
	if err != nil {
		t.Fatalf("RunSuite: %v", err)
	}
	for _, d := range diags2 {
		if d.Severity != string(SeverityWarn) {
			t.Errorf("%s: severity = %q, want warn override", d, d.Severity)
		}
	}
}

// TestConcWorkerEquivalence pins the determinism contract for the
// concurrency analyzers across all three fixture trees at once: the
// Workers=8 diagnostic stream is identical to the serial run.
func TestConcWorkerEquivalence(t *testing.T) {
	dirs := []string{
		filepath.Join("testdata", "src", "goleak"),
		filepath.Join("testdata", "src", "goleak", "pump"),
		filepath.Join("testdata", "src", "chanprotocol"),
		filepath.Join("testdata", "src", "chanprotocol", "helper"),
		filepath.Join("testdata", "src", "ctxflow"),
		filepath.Join("testdata", "src", "ctxflow", "remote"),
	}
	run := func(workers int) []Diagnostic {
		l, err := NewLoader(dirs[0])
		if err != nil {
			t.Fatalf("NewLoader: %v", err)
		}
		cfg := DefaultConfig()
		cfg.Workers = workers
		diags, err := RunSuite(l, dirs, cfg)
		if err != nil {
			t.Fatalf("RunSuite(workers=%d): %v", workers, err)
		}
		return diags
	}
	serial := run(1)
	parallelRun := run(8)
	if !reflect.DeepEqual(serial, parallelRun) {
		t.Errorf("parallel diagnostics differ from serial:\nserial:   %v\nparallel: %v", serial, parallelRun)
	}
	if len(serial) == 0 {
		t.Error("fixture produced no diagnostics; equivalence check is vacuous")
	}
}

// TestParamEffectsSummaries unit-tests the goflow interprocedural layer
// directly: transitive send/recv/close effects on channel parameters,
// with the in-between hop preserved for the witness chain.
func TestParamEffectsSummaries(t *testing.T) {
	l, err := NewLoader(filepath.Join("testdata", "src", "goleak"))
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	for _, dir := range []string{
		filepath.Join("testdata", "src", "goleak"),
		filepath.Join("testdata", "src", "goleak", "pump"),
	} {
		if _, err := l.Load(dir); err != nil {
			t.Fatalf("Load(%s): %v", dir, err)
		}
	}
	prog := BuildProgram(l.Fset(), l.Loaded())
	ci := concInfoOf(prog)

	find := func(display string) *FuncNode {
		t.Helper()
		for _, n := range prog.Nodes() {
			if n.DisplayName() == display {
				return n
			}
		}
		t.Fatalf("no node %q in program", display)
		return nil
	}

	fill := find("pump.Fill")
	pe := ci.paramEffects(fill)
	if len(pe) != 2 {
		t.Fatalf("pump.Fill: %d param effects, want 2", len(pe))
	}
	if pe[0].bits&effSend == 0 {
		t.Errorf("pump.Fill param 0: bits %b missing effSend", pe[0].bits)
	}
	if pe[0].bits&effUnknown != 0 {
		t.Errorf("pump.Fill param 0: bits %b unexpectedly unknown", pe[0].bits)
	}
	if pe[1].bits != 0 {
		t.Errorf("pump.Fill param 1 (non-channel): bits %b, want 0", pe[1].bits)
	}

	drain := find("pump.Drain")
	pe = ci.paramEffects(drain)
	if len(pe) != 1 || pe[0].bits&effRecv == 0 {
		t.Errorf("pump.Drain param 0: effects %+v, want effRecv", pe)
	}

	// The chain through Fill names the intermediate hop and lands on the
	// send inside push.
	names, pos := ci.effChain(fill, 0, effSend)
	if got := strings.Join(names, " ← "); got != "pump.Fill ← pump.push" {
		t.Errorf("effChain names = %q, want %q", got, "pump.Fill ← pump.push")
	}
	if p := prog.Fset.Position(pos); filepath.Base(p.Filename) != "pump.go" || p.Line != 13 {
		t.Errorf("effChain pos = %v, want pump.go:13", p)
	}
}
