package analysis

import (
	"path/filepath"
	"sort"
	"testing"
)

// buildEdgeFixtureProgram loads the callgraph fixture and builds its
// graph.
func buildEdgeFixtureProgram(t *testing.T) *Program {
	t.Helper()
	dir := filepath.Join("testdata", "src", "callgraph")
	l, err := NewLoader(dir)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	if _, err := l.Load(dir); err != nil {
		t.Fatalf("Load(%s): %v", dir, err)
	}
	return BuildProgram(l.Fset(), l.Loaded())
}

// edgeNames renders an edge list as sorted callee display names.
func edgeNames(edges []Edge) []string {
	var out []string
	for _, e := range edges {
		out = append(out, e.Callee.DisplayName())
	}
	sort.Strings(out)
	return out
}

func wantEdges(t *testing.T, what string, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s = %v, want %v", what, got, want)
		return
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("%s = %v, want %v", what, got, want)
			return
		}
	}
}

// TestCallGraphEdgeSets pins the exact call- and reference-edge sets of
// the fixture: direct calls and deferred-closure calls land in Calls;
// method values and function idents used as values land in Refs; a
// callee expression is never double-counted as a reference; and
// interface-method dispatch produces no edge of either kind.
func TestCallGraphEdgeSets(t *testing.T) {
	prog := buildEdgeFixtureProgram(t)
	node := func(display string) *FuncNode { return findNode(t, prog, "src/callgraph", display) }

	direct := node("callgraph.direct")
	wantEdges(t, "direct.Calls", edgeNames(direct.Calls),
		[]string{"callgraph.(*thing).M", "callgraph.other", "callgraph.target"})
	wantEdges(t, "direct.Refs", edgeNames(direct.Refs), nil)

	mv := node("callgraph.methodValue")
	wantEdges(t, "methodValue.Calls", edgeNames(mv.Calls), []string{"callgraph.ref"})
	wantEdges(t, "methodValue.Refs", edgeNames(mv.Refs),
		[]string{"callgraph.(*thing).M", "callgraph.(thing).V", "callgraph.target"})

	dc := node("callgraph.deferredClosure")
	wantEdges(t, "deferredClosure.Calls", edgeNames(dc.Calls),
		[]string{"callgraph.refs", "callgraph.target"})
	wantEdges(t, "deferredClosure.Refs", edgeNames(dc.Refs), []string{"callgraph.other"})

	dyn := node("callgraph.dynamic")
	wantEdges(t, "dynamic.Calls", edgeNames(dyn.Calls), nil)
	wantEdges(t, "dynamic.Refs", edgeNames(dyn.Refs), nil)

	cnr := node("callgraph.calledNotReferenced")
	wantEdges(t, "calledNotReferenced.Calls", edgeNames(cnr.Calls), []string{"callgraph.target"})
	wantEdges(t, "calledNotReferenced.Refs", edgeNames(cnr.Refs), nil)
}

// TestCallGraphRefsDeterministic pins reference-edge order across
// rebuilds, the property allocguard's BFS seed order rests on.
func TestCallGraphRefsDeterministic(t *testing.T) {
	refs := func() []string {
		prog := buildEdgeFixtureProgram(t)
		var out []string
		for _, n := range prog.Nodes() {
			for _, e := range n.Refs {
				out = append(out, n.DisplayName()+"->"+e.Callee.DisplayName())
			}
		}
		return out
	}
	a, b := refs(), refs()
	if len(a) == 0 {
		t.Fatal("fixture produced no reference edges")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("ref edge order differs at %d: %q vs %q", i, a[i], b[i])
		}
	}
}
