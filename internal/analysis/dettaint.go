package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// DetTaintAnalyzer propagates nondeterminism taint interprocedurally over
// the module call graph and reports every exported entry point of the
// deterministic pipeline packages that can reach a nondeterminism source.
// detguard catches a time.Now written directly inside internal/netsim;
// dettaint catches the same call hidden two helpers deep in an unscoped
// utility package, because what must hold is a property of the whole call
// chain feeding the EXPERIMENTS.md artifacts, not of one file.
//
// Taint kinds and their sources:
//
//   - clock: time.Now, time.Since, time.Until
//   - rand: the package-level math/rand and math/rand/v2 functions backed
//     by the shared global seed
//   - env: os.Getenv, os.LookupEnv, os.Environ
//   - maporder: ranging over a map while appending to a slice in a
//     function that never canonicalises with a sort
//
// Sanitizers stop propagation: the keyed netsim.Stream API (DerivedRand,
// MixSeed, NewStream, Stream.Derive) is trusted by fiat — taint never
// escapes those declarations — and a caller that sorts blocks maporder
// taint flowing up from its callees (clock/rand/env taint still flows; a
// sort cannot un-read a wall clock). A source whose line carries an
// "lmvet:ignore dettaint <reason>" directive seeds no taint at all.
//
// Sinks are the exported functions and methods of the packages named by
// Config.TaintSinks. Each finding is reported at the sink's declaration
// with a witness call chain (sink ← f ← g ← source) and the source
// position, so the fix site is explicit.
var DetTaintAnalyzer = &Analyzer{
	Name:      "dettaint",
	Doc:       "propagates nondeterminism taint (clock, global rand, env, map order) through the call graph to exported pipeline entry points",
	RunModule: runDetTaint,
}

// taintKind enumerates the independent flavours of nondeterminism tracked.
type taintKind int

const (
	taintClock taintKind = iota
	taintRand
	taintEnv
	taintMapOrder
	numTaintKinds
)

// advice is the fix guidance appended to a finding of each kind.
var taintAdvice = [numTaintKinds]string{
	taintClock:    "thread a clock or timestamp parameter in explicitly",
	taintRand:     "draw from a keyed netsim.Stream or an explicitly seeded *rand.Rand",
	taintEnv:      "plumb configuration through parameters",
	taintMapOrder: "sort before accumulating",
}

// taintSource describes a direct nondeterminism source in a function body.
type taintSource struct {
	kind taintKind
	desc string // e.g. "time.Now", "unsorted map iteration"
	pos  token.Pos
}

// taintWitness records how taint reached a function: either a direct
// source in its own body (src != nil) or a call edge to a tainted callee.
type taintWitness struct {
	src  *taintSource
	from *FuncNode
}

func runDetTaint(mp *ModulePass) error {
	prog := mp.Prog

	// sortsMemo caches the per-function sort-canonicalisation check; it is
	// both an intraprocedural maporder sanitizer (inside directSources) and
	// an interprocedural one (blocking propagation into sorting callers).
	sortsMemo := make(map[*FuncNode]bool)
	sorts := func(n *FuncNode) bool {
		v, ok := sortsMemo[n]
		if !ok {
			v = funcCallsSort(n.Decl)
			sortsMemo[n] = v
		}
		return v
	}

	// Seed: direct sources per function, in deterministic node order.
	var taint [numTaintKinds]map[*FuncNode]taintWitness
	var queues [numTaintKinds][]*FuncNode
	for k := range taint {
		taint[k] = make(map[*FuncNode]taintWitness)
	}
	for _, node := range prog.Nodes() {
		if isTaintSanitizer(node) {
			continue
		}
		for _, src := range directTaintSources(mp, node, sorts(node)) {
			if _, dup := taint[src.kind][node]; dup {
				continue
			}
			s := src
			taint[src.kind][node] = taintWitness{src: &s}
			queues[src.kind] = append(queues[src.kind], node)
		}
	}

	// Propagate each kind up the call graph, breadth-first, so witness
	// chains are shortest paths. Queue and edge order are deterministic,
	// so ties break identically run to run.
	for k := taintKind(0); k < numTaintKinds; k++ {
		queue := queues[k]
		for len(queue) > 0 {
			g := queue[0]
			queue = queue[1:]
			for _, e := range g.CalledBy {
				f := e.Caller
				if _, seen := taint[k][f]; seen {
					continue
				}
				if isTaintSanitizer(f) {
					continue
				}
				if k == taintMapOrder && sorts(f) {
					continue // the caller canonicalises order
				}
				taint[k][f] = taintWitness{from: g}
				queue = append(queue, f)
			}
		}
	}

	// Report tainted sinks.
	for _, node := range prog.Nodes() {
		if !mp.requested(node.Pkg) || !isTaintSink(node, mp.Cfg.TaintSinks) {
			continue
		}
		for k := taintKind(0); k < numTaintKinds; k++ {
			w, ok := taint[k][node]
			if !ok {
				continue
			}
			chain, src := witnessChain(node, w, taint[k])
			pos := prog.Fset.Position(src.pos)
			mp.Reportf(node.Decl.Name.Pos(),
				"exported entry point %s reaches %s: %s (%s:%d); %s",
				node.Func.Name(), src.desc, chain,
				filepath.Base(pos.Filename), pos.Line, taintAdvice[k])
		}
	}
	return nil
}

// witnessChain walks the witness links from a tainted sink down to the
// direct source and renders "sink ← f ← g ← source".
func witnessChain(node *FuncNode, w taintWitness, taint map[*FuncNode]taintWitness) (string, *taintSource) {
	names := []string{node.DisplayName()}
	for w.src == nil {
		node = w.from
		names = append(names, node.DisplayName())
		w = taint[node]
	}
	return strings.Join(names, " ← ") + " ← " + w.src.desc, w.src
}

// directTaintSources scans one declaration for nondeterminism sources.
// Sources on lines carrying an "lmvet:ignore dettaint" directive are
// skipped — the author has accepted them, so nothing downstream taints.
func directTaintSources(mp *ModulePass, node *FuncNode, sorts bool) []taintSource {
	var out []taintSource
	info := node.Pkg.Info
	suppressed := func(pos token.Pos) bool {
		p := mp.Prog.Fset.Position(pos)
		return mp.ignores.suppresses(Diagnostic{Analyzer: "dettaint", Pos: p})
	}
	add := func(kind taintKind, desc string, pos token.Pos) {
		if !suppressed(pos) {
			out = append(out, taintSource{kind: kind, desc: desc, pos: pos})
		}
	}
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			pkgPath, name, ok := resolvePkgFunc(info, n)
			if !ok {
				return true
			}
			switch {
			case pkgPath == "time" && (name == "Now" || name == "Since" || name == "Until"):
				add(taintClock, "time."+name, n.Pos())
			case (pkgPath == "math/rand" || pkgPath == "math/rand/v2") && globalRandFuncs[name]:
				add(taintRand, "global "+pkgPath+"."+name, n.Pos())
			case pkgPath == "os" && (name == "Getenv" || name == "LookupEnv" || name == "Environ"):
				add(taintEnv, "os."+name, n.Pos())
			}
		case *ast.RangeStmt:
			if !sorts && mapRangeAppends(info, n) {
				add(taintMapOrder, "unsorted map iteration", n.Pos())
			}
		}
		return true
	})
	return out
}

// isTaintSanitizer reports whether the declaration is deterministic by
// construction, so taint never propagates out of it. Two APIs qualify:
// the keyed netsim randomness API (all draws derive from (seed, entity,
// time) tuples) and the telemetry package (observation-only by contract —
// the wall-clock reads inside its timers feed metrics, never results, a
// guarantee the core/stream metrics-equivalence tests pin bit-for-bit).
func isTaintSanitizer(n *FuncNode) bool {
	path := n.Pkg.Path
	if path == "telemetry" || strings.HasSuffix(path, "/telemetry") {
		return true
	}
	if path != "netsim" && !strings.HasSuffix(path, "/netsim") {
		return false
	}
	switch n.Func.Name() {
	case "DerivedRand", "MixSeed", "NewStream":
		return n.Decl.Recv == nil
	case "Derive":
		return n.Decl.Recv != nil
	}
	return false
}

// isTaintSink reports whether the node is an exported entry point of a
// sink package: an exported function, or an exported method on an exported
// receiver type, in a package whose import path contains one of the
// configured substrings.
func isTaintSink(n *FuncNode, sinkPkgs []string) bool {
	inSink := false
	for _, s := range sinkPkgs {
		if strings.Contains(n.Pkg.Path, s) {
			inSink = true
			break
		}
	}
	if !inSink || !n.Decl.Name.IsExported() {
		return false
	}
	if n.Decl.Recv != nil {
		recv := n.Func.Type().(*types.Signature).Recv()
		name := recvTypeName(recv.Type())
		if name != "" && !token.IsExported(name) {
			return false
		}
	}
	return true
}

// recvTypeName extracts the named type behind a receiver type, "" if none.
func recvTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}
