package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// FloatCmpAnalyzer flags NaN-unsafe float comparisons: == and != between
// floating-point operands, equality on structs or arrays that contain
// float fields, and float-keyed maps.
//
// Rationale: the classifier works on millisecond medians where gap bins
// are NaN. NaN != NaN, so an equality test silently misroutes every gap
// sample, and a float map key turns each NaN into a distinct,
// unreachable entry. The one permitted idiom is comparison against the
// constant 0 used as a "field not set" sentinel (NaN == 0 is false, so a
// NaN input behaves like "set", which is the conservative direction).
var FloatCmpAnalyzer = &Analyzer{
	Name: "floatcmp",
	Doc:  "flags ==/!= on float operands, float-containing structs, and float map keys",
	Run:  runFloatCmp,
}

func runFloatCmp(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkFloatEq(pass, n)
			case *ast.MapType:
				if t := pass.TypeOf(n.Key); isFloat(t) || containsFloat(t) {
					pass.Reportf(n.Key.Pos(), "map keyed by float type %s: NaN keys are unequal to themselves and unretrievable", types.TypeString(t, types.RelativeTo(pass.Pkg)))
				}
			}
			return true
		})
	}
	return nil
}

func checkFloatEq(pass *Pass, cmp *ast.BinaryExpr) {
	if cmp.Op != token.EQL && cmp.Op != token.NEQ {
		return
	}
	// Whole-expression constants are folded at compile time; NaN cannot
	// occur.
	if tv, ok := pass.Info.Types[cmp]; ok && tv.Value != nil {
		return
	}
	xt, yt := pass.TypeOf(cmp.X), pass.TypeOf(cmp.Y)
	switch {
	case isFloat(xt) || isFloat(yt):
		if isZeroConst(pass, cmp.X) || isZeroConst(pass, cmp.Y) {
			return // zero-value sentinel check, NaN-safe in the conservative direction
		}
		pass.Reportf(cmp.OpPos, "float comparison with %s is NaN-unsafe; use an epsilon or math.IsNaN guard", cmp.Op)
	case containsFloat(xt) || containsFloat(yt):
		pass.Reportf(cmp.OpPos, "%s on %s compares float fields with ==, which is NaN-unsafe; compare fields explicitly", cmp.Op, typeName(pass, xt, yt))
	}
}

// isZeroConst reports whether e is a compile-time constant equal to 0.
func isZeroConst(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	if tv.Value.Kind() != constant.Int && tv.Value.Kind() != constant.Float {
		return false
	}
	return constant.Sign(tv.Value) == 0
}

func typeName(pass *Pass, xt, yt types.Type) string {
	t := xt
	if t == nil || !containsFloat(t) {
		t = yt
	}
	if t == nil {
		return "composite"
	}
	return types.TypeString(t, types.RelativeTo(pass.Pkg))
}
