package analysis

import (
	"encoding/json"
	"io"
	"path/filepath"
)

// SARIF 2.1.0 output, the interchange format CI annotation surfaces
// (GitHub code scanning, VS Code SARIF viewers) consume. The document is
// the minimal valid subset: one run, the analyzer suite as the rule
// table, one result per diagnostic with a physical location relative to
// the module root (%SRCROOT%).

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool                sarifTool                `json:"tool"`
	OriginalURIBaseIDs  map[string]sarifArtifact `json:"originalUriBaseIds,omitempty"`
	Results             []sarifResult            `json:"results"`
	ColumnKind          string                   `json:"columnKind"`
	DefaultSourceLocale string                   `json:"defaultSourceLanguage,omitempty"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF encodes the diagnostics as a SARIF 2.1.0 log. moduleDir
// anchors %SRCROOT%-relative artifact URIs.
func WriteSARIF(w io.Writer, diags []Diagnostic, moduleDir string) error {
	ruleIndex := make(map[string]int)
	var rules []sarifRule
	addRule := func(id, doc string) {
		if _, ok := ruleIndex[id]; ok {
			return
		}
		ruleIndex[id] = len(rules)
		rules = append(rules, sarifRule{ID: id, ShortDescription: sarifMessage{Text: doc}})
	}
	for _, a := range All() {
		addRule(a.Name, a.Doc)
	}
	// Driver-level findings (malformed lmvet:ignore directives) carry
	// analyzer names outside the suite; give them rules too.
	for _, d := range diags {
		addRule(d.Analyzer, "lmvet driver diagnostic")
	}

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		level := "error"
		if d.Severity == string(SeverityWarn) {
			level = "warning"
		}
		results = append(results, sarifResult{
			RuleID:    d.Analyzer,
			RuleIndex: ruleIndex[d.Analyzer],
			Level:     level,
			Message:   sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifact{
						URI:       relPath(moduleDir, d.Pos.Filename),
						URIBaseID: "%SRCROOT%",
					},
					Region: sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:           "lmvet",
				InformationURI: "https://github.com/last-mile-congestion/lastmile",
				Rules:          rules,
			}},
			OriginalURIBaseIDs: map[string]sarifArtifact{
				"%SRCROOT%": {URI: "file://" + filepath.ToSlash(moduleDir) + "/"},
			},
			Results:    results,
			ColumnKind: "utf16CodeUnits",
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
