package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// checkFlowSrc type-checks an import-free snippet and returns the
// FuncFlow of the named function plus the shared type info.
func checkFlowSrc(t *testing.T, src, fnName string) (*FuncFlow, *types.Info, *ast.FuncDecl) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "flow.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{}
	if _, err := conf.Check("flow", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == fnName {
			return BuildFuncFlow(info, fd), info, fd
		}
	}
	t.Fatalf("no function %q in snippet", fnName)
	return nil, nil, nil
}

// localOf finds a variable by name among the function's defs/params.
func localOf(t *testing.T, flow *FuncFlow, info *types.Info, fd *ast.FuncDecl, name string) *types.Var {
	t.Helper()
	var found *types.Var
	ast.Inspect(fd, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || id.Name != name {
			return true
		}
		if v, ok := info.Defs[id].(*types.Var); ok {
			found = v
		}
		return true
	})
	if found == nil {
		t.Fatalf("no variable %q in %s", name, fd.Name.Name)
	}
	return found
}

func TestHasHotPathDirective(t *testing.T) {
	src := `package flow

// Hot is annotated.
//
//lmvet:hotpath
func Hot() {}

// Cold mentions lmvet:hotpath in prose but carries no directive line,
// and an ignore directive is not a hotpath one.
//lmvet:ignore floatcmp not a hotpath marker
func Cold() {}
`
	_, _, hot := checkFlowSrc(t, src, "Hot")
	if !HasHotPathDirective(hot) {
		t.Error("Hot: directive not detected")
	}
	_, _, cold := checkFlowSrc(t, src, "Cold")
	if HasHotPathDirective(cold) {
		t.Error("Cold: false directive detection")
	}
}

// TestEscapeLattice drives each sink class: returns and closure
// captures reach heap, call arguments reach arg, frame-local values
// stay none, and aliasing propagates the class backwards.
func TestEscapeLattice(t *testing.T) {
	src := `package flow

func use(p *int) {}

var published *int

func f(n int) *int {
	local := new(int)   // stays local until aliased below
	arg := new(int)     // flows into a call
	kept := new(int)    // never leaves
	ret := local        // alias of local; returned
	use(arg)
	_ = kept
	cap1 := new(int)
	go func() { _ = cap1 }()
	pub := new(int)
	published = pub
	return ret
}
`
	flow, info, fd := checkFlowSrc(t, src, "f")
	cases := []struct {
		name string
		want EscapeClass
	}{
		{"local", EscHeap}, // via the ret alias
		{"arg", EscArg},
		{"kept", EscNone},
		{"ret", EscHeap},
		{"cap1", EscHeap},
		{"pub", EscHeap}, // stored into a package-level var
	}
	for _, c := range cases {
		v := localOf(t, flow, info, fd, c.name)
		if got := flow.Escape(v); got != c.want {
			t.Errorf("Escape(%s) = %s, want %s", c.name, got, c.want)
		}
	}
	if n := localOf(t, flow, info, fd, "n"); !flow.IsParam(n) {
		t.Error("n not classified as a parameter")
	}
}

// TestProvenance drives the def-chain resolution: make with and without
// capacity, reslices, parameters, self-append preservation, and the
// conflicting-defs degradation.
func TestProvenance(t *testing.T) {
	src := `package flow

func g(param []int, pick bool) []int {
	sized := make([]int, 0, 8)
	sized = append(sized, 1) // self-append keeps make(cap)
	unsized := make([]int, 4)
	scratch := param[:0]
	lit := []int{1, 2}
	either := sized
	if pick {
		either = lit
	}
	_ = unsized
	_ = scratch
	return either
}
`
	flow, info, fd := checkFlowSrc(t, src, "g")
	expr := func(name string) ast.Expr {
		var id *ast.Ident
		ast.Inspect(fd, func(n ast.Node) bool {
			if e, ok := n.(*ast.Ident); ok && e.Name == name && info.Uses[e] != nil && id == nil {
				id = e
			}
			return true
		})
		if id == nil {
			t.Fatalf("no use of %q", name)
		}
		return id
	}
	cases := []struct {
		name string
		want Provenance
	}{
		{"sized", ProvMakeCap},
		{"unsized", ProvMakeNoCap},
		{"scratch", ProvReslice},
		{"param", ProvParam},
		{"lit", ProvComposite},
		{"either", ProvUnknown}, // sized vs lit: conflicting defs
	}
	for _, c := range cases {
		if got := flow.ProvenanceOf(expr(c.name)); got != c.want {
			t.Errorf("ProvenanceOf(%s) = %s, want %s", c.name, got, c.want)
		}
	}
}

// TestDefUseChains pins the def and use bookkeeping the analyzers
// resolve provenance through.
func TestDefUseChains(t *testing.T) {
	src := `package flow

func h() int {
	x := 1
	x = 2
	y := x + x
	return y
}
`
	flow, info, fd := checkFlowSrc(t, src, "h")
	x := localOf(t, flow, info, fd, "x")
	if got := len(flow.Defs(x)); got != 2 {
		t.Errorf("len(Defs(x)) = %d, want 2", got)
	}
	// Three uses: the plain-assignment LHS counts as a use in
	// types.Info.Uses, plus the two reads in x + x.
	if got := len(flow.Uses(x)); got != 3 {
		t.Errorf("len(Uses(x)) = %d, want 3", got)
	}
	y := localOf(t, flow, info, fd, "y")
	if got := len(flow.Defs(y)); got != 1 {
		t.Errorf("len(Defs(y)) = %d, want 1", got)
	}
}
