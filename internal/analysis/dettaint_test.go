package analysis

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// detTaintFixtureDirs are the package directories of the multi-package
// dettaint golden fixture, in the order RunSuite receives them.
func detTaintFixtureDirs(t *testing.T) (*Loader, []string) {
	t.Helper()
	root := filepath.Join("testdata", "src", "dettaint")
	l, err := NewLoader(root)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	dirs := []string{
		filepath.Join(root, "helper"),
		filepath.Join(root, "helper", "clock"),
		filepath.Join(root, "internal", "experiments"),
		filepath.Join(root, "internal", "netsim"),
	}
	return l, dirs
}

// detTaintOnly enables just the dettaint analyzer with the repo's default
// sink selection.
func detTaintOnly() Config {
	cfg := DefaultConfig()
	cfg.Enabled = make(map[string]bool)
	for _, a := range All() {
		cfg.Enabled[a.Name] = a.Name == "dettaint"
	}
	return cfg
}

// TestDetTaintGolden drives the taint engine over the multi-package
// fixture and asserts the witness-chain diagnostics via // want comments:
// tainted chains (through helpers, methods, and directly) are flagged
// with their full sink ← f ← g ← source chain, while sanitized chains
// (keyed netsim API, sort canonicalisation, inline suppressions,
// unexported functions) stay silent.
func TestDetTaintGolden(t *testing.T) {
	l, dirs := detTaintFixtureDirs(t)
	diags, err := RunSuite(l, dirs, detTaintOnly())
	if err != nil {
		t.Fatalf("RunSuite: %v", err)
	}
	checkWants(t, l.Loaded(), diags)
}

// TestDetTaintWitnessDetail pins the exact shape of one witness message:
// chain order, source position, and advice.
func TestDetTaintWitnessDetail(t *testing.T) {
	l, dirs := detTaintFixtureDirs(t)
	diags, err := RunSuite(l, dirs, detTaintOnly())
	if err != nil {
		t.Fatalf("RunSuite: %v", err)
	}
	var msg string
	for _, d := range diags {
		if strings.Contains(d.Message, "entry point TaintedClock ") {
			msg = d.Message
		}
	}
	if msg == "" {
		t.Fatalf("no TaintedClock diagnostic in %d findings", len(diags))
	}
	want := "exported entry point TaintedClock reaches time.Now: " +
		"experiments.TaintedClock ← helper.Stamp ← clock.Unix ← time.Now (clock.go:9); " +
		"thread a clock or timestamp parameter in explicitly"
	if msg != want {
		t.Errorf("witness message:\n got %q\nwant %q", msg, want)
	}
}

// TestDetTaintSeverityStamped checks findings carry the error severity by
// default and honour per-run overrides.
func TestDetTaintSeverityStamped(t *testing.T) {
	l, dirs := detTaintFixtureDirs(t)
	diags, err := RunSuite(l, dirs, detTaintOnly())
	if err != nil {
		t.Fatalf("RunSuite: %v", err)
	}
	if len(diags) == 0 {
		t.Fatal("no diagnostics")
	}
	for _, d := range diags {
		if d.Severity != string(SeverityError) {
			t.Errorf("%s: severity = %q, want error", d, d.Severity)
		}
	}

	l2, dirs2 := detTaintFixtureDirs(t)
	cfg := detTaintOnly()
	cfg.Severity = map[string]Severity{"dettaint": SeverityWarn}
	diags2, err := RunSuite(l2, dirs2, cfg)
	if err != nil {
		t.Fatalf("RunSuite: %v", err)
	}
	for _, d := range diags2 {
		if d.Severity != string(SeverityWarn) {
			t.Errorf("%s: severity = %q, want warn override", d, d.Severity)
		}
	}
}

// TestRunSuiteWorkerEquivalence pins the determinism contract of the
// parallel driver: the diagnostic stream at Workers=8 is identical to the
// serial run, package by package, message by message.
func TestRunSuiteWorkerEquivalence(t *testing.T) {
	run := func(workers int) []Diagnostic {
		l, dirs := detTaintFixtureDirs(t)
		cfg := DefaultConfig() // every analyzer, scopes included
		cfg.Workers = workers
		diags, err := RunSuite(l, dirs, cfg)
		if err != nil {
			t.Fatalf("RunSuite(workers=%d): %v", workers, err)
		}
		return diags
	}
	serial := run(1)
	parallelRun := run(8)
	if !reflect.DeepEqual(serial, parallelRun) {
		t.Errorf("parallel diagnostics differ from serial:\nserial:   %v\nparallel: %v", serial, parallelRun)
	}
	if len(serial) == 0 {
		t.Error("fixture produced no diagnostics; equivalence check is vacuous")
	}
}
