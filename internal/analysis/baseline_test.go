package analysis

import (
	"go/token"
	"path/filepath"
	"strings"
	"testing"
)

func baselineDiag(analyzer, file, message string) Diagnostic {
	return Diagnostic{
		Analyzer: analyzer,
		Message:  message,
		Pos:      token.Position{Filename: file, Line: 10},
	}
}

func TestBaselineExactMatch(t *testing.T) {
	moduleDir := filepath.FromSlash("/mod")
	body := "# comment\n\nfloatcmp\tinternal/dsp/fft.go\tfloat equality on spectra\n"
	b, err := ParseBaseline(strings.NewReader(body))
	if err != nil {
		t.Fatalf("ParseBaseline: %v", err)
	}
	if b.Len() != 1 {
		t.Fatalf("Len = %d, want 1", b.Len())
	}
	d := baselineDiag("floatcmp", filepath.FromSlash("/mod/internal/dsp/fft.go"), "float equality on spectra")
	if !b.Matches(d, moduleDir) {
		t.Error("exact entry did not match")
	}
	d.Message = "different message"
	if b.Matches(d, moduleDir) {
		t.Error("different message matched")
	}
	d.Message = "float equality on spectra"
	d.Analyzer = "allocguard"
	if b.Matches(d, moduleDir) {
		t.Error("different analyzer matched")
	}
}

// TestBaselineSurvivesFileMove is the regression test for the
// directory-fallback rule: renaming a file within its package must not
// resurrect its accepted findings, while the same message in a sibling
// package must stay unmatched.
func TestBaselineSurvivesFileMove(t *testing.T) {
	moduleDir := filepath.FromSlash("/mod")
	body := "allocguard\tinternal/dsp/fft.go\thot path allocates: twiddle cache\n"
	b, err := ParseBaseline(strings.NewReader(body))
	if err != nil {
		t.Fatalf("ParseBaseline: %v", err)
	}
	moved := baselineDiag("allocguard",
		filepath.FromSlash("/mod/internal/dsp/twiddle.go"),
		"hot path allocates: twiddle cache")
	if !b.Matches(moved, moduleDir) {
		t.Error("finding did not survive a file move within its package")
	}
	otherPkg := baselineDiag("allocguard",
		filepath.FromSlash("/mod/internal/engine/engine.go"),
		"hot path allocates: twiddle cache")
	if b.Matches(otherPkg, moduleDir) {
		t.Error("finding leaked across packages via the directory fallback")
	}
	otherAnalyzer := moved
	otherAnalyzer.Analyzer = "lockorder"
	if b.Matches(otherAnalyzer, moduleDir) {
		t.Error("directory fallback ignored the analyzer field")
	}
}

func TestBaselineFilterSplit(t *testing.T) {
	moduleDir := filepath.FromSlash("/mod")
	body := "lockorder\tinternal/engine/engine.go\tsweep timer under shard lock\n"
	b, err := ParseBaseline(strings.NewReader(body))
	if err != nil {
		t.Fatalf("ParseBaseline: %v", err)
	}
	accepted := baselineDiag("lockorder",
		filepath.FromSlash("/mod/internal/engine/sweep.go"), // moved file, same package
		"sweep timer under shard lock")
	fresh := baselineDiag("lockorder",
		filepath.FromSlash("/mod/internal/engine/engine.go"),
		"a brand-new finding")
	kept, baselined := b.Filter([]Diagnostic{accepted, fresh}, moduleDir)
	if len(baselined) != 1 || baselined[0].Message != "sweep timer under shard lock" {
		t.Errorf("baselined = %+v, want the accepted finding", baselined)
	}
	if len(kept) != 1 || kept[0].Message != "a brand-new finding" {
		t.Errorf("kept = %+v, want the fresh finding", kept)
	}
}

// TestBaselineRoundTrip pins that FormatBaseline output parses back into
// a baseline that accepts the findings it was generated from.
func TestBaselineRoundTrip(t *testing.T) {
	moduleDir := filepath.FromSlash("/mod")
	ds := []Diagnostic{
		baselineDiag("allocguard", filepath.FromSlash("/mod/internal/dsp/fft.go"), "msg one"),
		baselineDiag("floatcmp", filepath.FromSlash("/mod/internal/lastmile/estimate.go"), "msg two"),
		baselineDiag("allocguard", filepath.FromSlash("/mod/internal/dsp/fft.go"), "msg one"), // duplicate
	}
	body := FormatBaseline(ds, moduleDir)
	b, err := ParseBaseline(strings.NewReader(body))
	if err != nil {
		t.Fatalf("ParseBaseline(FormatBaseline(...)): %v", err)
	}
	if b.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (deduplicated)", b.Len())
	}
	for _, d := range ds {
		if !b.Matches(d, moduleDir) {
			t.Errorf("round-tripped baseline rejects %q", d.Message)
		}
	}
}
