package analysis

import (
	"go/token"
	"go/types"
)

// CtxFlowAnalyzer checks that an accepted context.Context actually
// governs the function's blocking behaviour:
//
//   - a named ctx parameter that is never read — not consulted
//     (Done/Err/Deadline), not passed to any callee — in a function that
//     blocks: a plain channel send or receive, a no-default select, a
//     range over a channel, or a call into an in-program callee that
//     itself takes a Context. Cancelling the caller then never unblocks
//     this function; the parameter is a promise the body does not keep;
//   - context.Background() or context.TODO() passed to a callee while
//     the function's own ctx parameter is in scope — the cancellation
//     chain is severed exactly where it was meant to be threaded.
//
// Methods that accept ctx purely to satisfy an interface can suppress
// with `//lmvet:ignore ctxflow <reason>`, per the suite's
// justify-or-fix policy.
var CtxFlowAnalyzer = &Analyzer{
	Name:      "ctxflow",
	Doc:       "finds context.Context parameters never threaded into blocking work, and context.Background() calls that sever an in-scope cancellation chain",
	RunModule: runCtxFlow,
}

func runCtxFlow(mp *ModulePass) error {
	ci := concInfoOf(mp.Prog)
	for _, node := range mp.Prog.Nodes() {
		if !mp.requested(node.Pkg) {
			continue
		}
		fc := ci.funcs[node]
		if fc == nil || fc.ctx.param == nil {
			continue
		}
		if !fc.ctx.used {
			if desc, pos, ok := blockingEvidence(fc); ok {
				mp.Reportf(fc.ctx.param.Pos(),
					"context parameter %s is never used, but the function blocks: %s at %s proceeds without cancellation; thread %s into the blocking op (a ctx.Done() arm or the callee) or drop the parameter",
					fc.ctx.param.Name(), desc, posLabel(mp, pos), fc.ctx.param.Name())
			}
		}
		for _, bg := range fc.ctx.bg {
			mp.Reportf(bg.pos,
				"%s passed to %s while %s is in scope: the cancellation chain is severed and the callee outlives the caller's deadline; pass %s through instead",
				bg.src, bg.callee, fc.ctx.param.Name(), fc.ctx.param.Name())
		}
	}
	return nil
}

// blockingEvidence finds the first (source-order) blocking operation in
// the function: a plain send/recv/range, a select with no default arm,
// or a call to an in-program callee that accepts a Context.
func blockingEvidence(fc *funcConc) (string, token.Pos, bool) {
	type candidate struct {
		desc string
		pos  token.Pos
	}
	var best *candidate
	consider := func(desc string, pos token.Pos) {
		if best == nil || pos < best.pos {
			best = &candidate{desc: desc, pos: pos}
		}
	}
	for k := range fc.ops {
		op := &fc.ops[k]
		if op.sel != nil {
			continue // counted through the select summary
		}
		switch op.kind {
		case opSend:
			consider("a blocking send on "+op.class, op.pos)
		case opRecv:
			consider("a blocking receive from "+op.class, op.pos)
		case opRangeRecv:
			consider("a blocking range over "+op.class, op.pos)
		}
	}
	for _, ss := range fc.sels {
		if !ss.hasDefault {
			consider("a blocking select", ss.sel.Pos())
		}
	}
	for _, e := range fc.node.Calls {
		if calleeTakesContext(e.Callee) {
			consider("a call to "+e.Callee.DisplayName()+" (which accepts a Context)", e.Pos)
		}
	}
	if best == nil {
		return "", token.NoPos, false
	}
	return best.desc, best.pos, true
}

// calleeTakesContext reports whether the callee's signature includes a
// context.Context parameter.
func calleeTakesContext(n *FuncNode) bool {
	sig := n.Func.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}
