package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the package's import path (module path + relative dir).
	Path string
	// Dir is the absolute directory the package was loaded from.
	Dir string
	// Fset is shared across every package of one Loader.
	Fset *token.FileSet
	// Files are the parsed non-test source files, sorted by file name.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info holds the type-checker's fact tables.
	Info *types.Info
}

// Loader loads and type-checks packages from a Go module using only the
// standard library: module-internal imports are resolved by recursively
// loading their directories, and standard-library imports are
// type-checked from GOROOT source via go/importer's "source" importer.
// Vendored or external module dependencies are not supported — the
// module is dependency-free by design, and the loader enforces that.
type Loader struct {
	// ModuleDir is the absolute path of the module root (the directory
	// holding go.mod).
	ModuleDir string
	// ModulePath is the module path declared in go.mod.
	ModulePath string
	// IncludeTests also parses _test.go files (in-package tests only).
	IncludeTests bool

	fset  *token.FileSet
	std   types.ImporterFrom
	cache map[string]*Package
	// loading guards against import cycles.
	loading map[string]bool
}

// NewLoader creates a loader for the module containing dir, walking
// upward until a go.mod is found.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod found above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModuleDir:  root,
		ModulePath: modPath,
		fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		cache:      make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Loaded returns every module-local package the loader has type-checked
// so far — the requested directories plus all module-internal
// dependencies they pulled in — sorted by import path. Module-wide
// analyses build their call graph over this set so taint can flow
// through packages that were loaded only as dependencies.
func (l *Loader) Loaded() []*Package {
	pkgs := make([]*Package, 0, len(l.cache))
	for _, p := range l.cache {
		pkgs = append(pkgs, p)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs
}

// ResolvePatterns expands package patterns relative to base into package
// directories. Supported forms: "./..." (and "dir/..."), plain relative
// or absolute directories. Directories named testdata, hidden
// directories, and directories with no buildable .go files are skipped
// during "..." expansion.
func (l *Loader) ResolvePatterns(base string, patterns []string) ([]string, error) {
	var dirs []string
	seen := make(map[string]bool)
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		if root, ok := strings.CutSuffix(pat, "..."); ok {
			root = strings.TrimSuffix(root, "/")
			if root == "" || root == "." {
				root = base
			} else if !filepath.IsAbs(root) {
				root = filepath.Join(base, root)
			}
			err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				if hasGoFiles(path) {
					add(path)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		dir := pat
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(base, dir)
		}
		if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
			return nil, fmt.Errorf("analysis: not a package directory: %s", pat)
		}
		add(dir)
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if e.Type().IsRegular() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// Load parses and type-checks the package in dir.
func (l *Loader) Load(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if pkg, ok := l.cache[abs]; ok {
		return pkg, nil
	}
	if l.loading[abs] {
		return nil, fmt.Errorf("analysis: import cycle through %s", abs)
	}
	l.loading[abs] = true
	defer delete(l.loading, abs)

	entries, err := os.ReadDir(abs)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		name := e.Name()
		if !e.Type().IsRegular() || !strings.HasSuffix(name, ".go") {
			continue
		}
		if !l.IncludeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	pkgName := ""
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(abs, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		// External test packages (package foo_test) form a separate
		// compilation unit; keep the primary package only.
		if strings.HasSuffix(f.Name.Name, "_test") {
			continue
		}
		if pkgName == "" {
			pkgName = f.Name.Name
		}
		if f.Name.Name != pkgName {
			return nil, fmt.Errorf("analysis: %s: conflicting package names %s and %s", abs, pkgName, f.Name.Name)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no buildable Go files in %s", abs)
	}

	path := l.importPathFor(abs)
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: (*loaderImporter)(l)}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	pkg := &Package{
		Path:  path,
		Dir:   abs,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.cache[abs] = pkg
	return pkg, nil
}

// importPathFor derives an import path for an absolute package dir.
func (l *Loader) importPathFor(abs string) string {
	rel, err := filepath.Rel(l.ModuleDir, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(abs)
	}
	if rel == "." {
		return l.ModulePath
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel)
}

// loaderImporter adapts Loader to types.Importer: module-internal import
// paths load recursively from source, everything else goes to the
// GOROOT source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		pkg, err := l.Load(filepath.Join(l.ModuleDir, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}
