package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolSafeAnalyzer vets hand-rolled goroutine fan-out against the
// worker-pool discipline internal/parallel encodes: a goroutine's share
// of the work is identified either by arguments evaluated at spawn time
// or by indices it receives itself (for i := range ch). Two patterns
// break that discipline and corrupt results without failing any
// single-run test:
//
//   - a `go func(){...}()` closure that reads an enclosing loop
//     variable, racing the spawner's next iteration (and, even with
//     per-iteration loop scoping, hiding which iteration the goroutine
//     serves);
//   - a write to a shared slice or map element, s[i] = v, where both
//     the container and every variable in the index were declared
//     outside the closure — nothing ties the write to this goroutine's
//     lane, so two workers can target the same element.
//
// Writes indexed by closure-local variables (the pool pattern) or by
// constants (one goroutine per fixed slot) pass.
var PoolSafeAnalyzer = &Analyzer{
	Name: "poolsafe",
	Doc:  "flags goroutine closures capturing loop variables or writing shared elements at outside-computed indices",
	// The shared-index heuristic is pattern-based and cannot see every
	// synchronisation scheme, so its findings warn rather than fail.
	Severity: SeverityWarn,
	Run:      runPoolSafe,
}

func runPoolSafe(pass *Pass) error {
	for _, f := range pass.Files {
		loopVars := loopVarObjects(pass, f)
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
				checkGoClosure(pass, loopVars, lit)
			}
			return true
		})
	}
	return nil
}

// loopVarObjects collects every variable declared by a for/range
// statement in the file.
func loopVarObjects(pass *Pass, f *ast.File) map[types.Object]bool {
	vars := make(map[types.Object]bool)
	define := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.Info.Defs[id]; obj != nil {
				vars[obj] = true
			}
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.RangeStmt:
			if s.Key != nil {
				define(s.Key)
			}
			if s.Value != nil {
				define(s.Value)
			}
		case *ast.ForStmt:
			if init, ok := s.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
				for _, lhs := range init.Lhs {
					define(lhs)
				}
			}
		}
		return true
	})
	return vars
}

// checkGoClosure inspects one go-statement closure body for captured
// loop variables and for shared-element writes at outside indices.
func checkGoClosure(pass *Pass, loopVars map[types.Object]bool, lit *ast.FuncLit) {
	reported := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			obj := pass.Info.Uses[n]
			if obj != nil && loopVars[obj] && !declaredInside(obj, lit) && !reported[obj] {
				reported[obj] = true
				pass.Reportf(n.Pos(), "goroutine closure captures loop variable %s; pass it as an argument or receive work from a channel", n.Name)
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkSharedIndexWrite(pass, lit, lhs)
			}
		case *ast.IncDecStmt:
			checkSharedIndexWrite(pass, lit, n.X)
		}
		return true
	})
}

// checkSharedIndexWrite flags lhs when it writes an element of an
// outside-declared slice or map through an index computed entirely from
// outside-declared variables.
func checkSharedIndexWrite(pass *Pass, lit *ast.FuncLit, lhs ast.Expr) {
	idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
	if !ok {
		return
	}
	base, ok := ast.Unparen(idx.X).(*ast.Ident)
	if !ok {
		return
	}
	obj := pass.Info.Uses[base]
	if obj == nil || declaredInside(obj, lit) {
		return
	}
	t := pass.TypeOf(idx.X)
	if t == nil {
		return
	}
	var kind string
	switch t.Underlying().(type) {
	case *types.Slice:
		kind = "slice"
	case *types.Map:
		kind = "map"
	default:
		return
	}
	inside, outside := indexVarOrigins(pass, lit, idx.Index)
	if inside || !outside {
		// Closure-local variables in the index mean the goroutine picked
		// its own lane; a pure-constant index means one fixed slot.
		return
	}
	pass.Reportf(lhs.Pos(), "write to shared %s %s at an index computed outside the goroutine; receive indices inside the worker (for i := range ch) or pass them as arguments", kind, base.Name)
}

// indexVarOrigins reports whether the index expression mentions
// variables declared inside and/or outside the closure.
func indexVarOrigins(pass *Pass, lit *ast.FuncLit, index ast.Expr) (inside, outside bool) {
	ast.Inspect(index, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := pass.Info.Uses[id].(*types.Var); ok {
			if declaredInside(v, lit) {
				inside = true
			} else {
				outside = true
			}
		}
		return true
	})
	return inside, outside
}

// declaredInside reports whether obj's declaration lies within the
// closure, parameters included.
func declaredInside(obj types.Object, lit *ast.FuncLit) bool {
	return obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End()
}
