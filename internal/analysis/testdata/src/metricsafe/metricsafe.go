// Package metricsafe is the golden fixture for the metricsafe analyzer.
// It imports the real telemetry package so the checks run against the
// exact types the pipeline uses.
package metricsafe

import (
	"github.com/last-mile-congestion/lastmile/internal/telemetry"
)

// badLoopRegistration re-resolves the counter on every iteration: each
// pass pays the registry lock and map lookup.
func badLoopRegistration(r *telemetry.Registry, n int) {
	for i := 0; i < n; i++ {
		r.Counter("iterations_total").Inc() // want "metric registration (Counter) inside a loop"
	}
}

// badRangeRegistration does the same over a range statement, through the
// default registry accessor.
func badRangeRegistration(values []float64) {
	for _, v := range values {
		telemetry.Default().Histogram("vals", []float64{1, 2}).Observe(v) // want "metric registration (Histogram) inside a loop"
	}
}

// badNestedLoop registers several levels down.
func badNestedLoop(r *telemetry.Registry) {
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if i == j {
				r.Gauge("depth").Set(int64(j)) // want "metric registration (Gauge) inside a loop"
			}
		}
	}
}

// goodHoisted resolves once and updates the returned pointer in the loop
// — the pattern the analyzer pushes toward.
func goodHoisted(r *telemetry.Registry, n int) {
	c := r.Counter("iterations_total")
	for i := 0; i < n; i++ {
		c.Inc()
	}
}

// goodLoopCallback defines a GaugeFunc callback inside a loop; the
// registration itself is outside any loop, and the callback body is not
// loop context.
func goodLoopCallback(r *telemetry.Registry, names []string) {
	fns := make([]func() float64, 0, len(names))
	for range names {
		fns = append(fns, func() float64 { return 1 })
	}
	if len(fns) > 0 {
		r.GaugeFunc("level", fns[0])
	}
}

// badGaugeFuncInLoop registers a callback per name — the registration
// runs in the loop even though the callback does not.
func badGaugeFuncInLoop(r *telemetry.Registry, names []string) {
	for range names {
		r.GaugeFunc("level", func() float64 { return 1 }) // want "metric registration (GaugeFunc) inside a loop"
	}
}

// badValueParam transports a counter by value, forking its atomic state.
func badValueParam(c telemetry.Counter) { // want "parameter of type telemetry.Counter copies telemetry metric state by value"
	c.Inc()
}

// holder embeds metric state by value, so passing it by value is a copy.
type holder struct {
	hits telemetry.Counter
}

func badStructParam(h holder) int64 { // want "parameter of type holder copies telemetry metric state by value"
	return h.hits.Value()
}

// badValueResult returns a gauge by value.
func badValueResult() (g telemetry.Gauge) { // want "result of type telemetry.Gauge copies telemetry metric state by value"
	return
}

// badDeref copies a counter out of its pointer.
func badDeref(c *telemetry.Counter) int64 {
	cp := *c // want "dereferencing a *telemetry.Counter copies its atomic state"
	return cp.Value()
}

// goodPointerParam is the sanctioned shape: metric state by pointer, and
// mentioning the pointer type is not a dereference.
func goodPointerParam(c *telemetry.Counter, h *telemetry.Histogram) *telemetry.Counter {
	c.Inc()
	h.Observe(1)
	return c
}

// goodHolder shares the struct behind a pointer.
func goodHolder(h *holder) {
	h.hits.Inc()
}
