// Package detguard is the golden fixture for the detguard analyzer.
package detguard

import (
	"math/rand"
	"os"
	"sort"
	"time"
)

func badWallClock() int64 {
	return time.Now().Unix() // want "time.Now in a deterministic package"
}

func badElapsed(start time.Time) time.Duration {
	return time.Since(start) // want "time.Since in a deterministic package"
}

func badDeadline(t time.Time) time.Duration {
	return time.Until(t) // want "time.Until in a deterministic package"
}

func badEnvRead() string {
	return os.Getenv("LM_SEED") // want "os.Getenv in a deterministic package"
}

func badEnvLookup() bool {
	_, ok := os.LookupEnv("LM_SEED") // want "os.LookupEnv in a deterministic package"
	return ok
}

func badGlobalRand() float64 {
	return rand.Float64() // want "global math/rand.Float64"
}

func badGlobalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "global math/rand.Shuffle"
}

func badMapOrder(m map[string]int) []string {
	var keys []string
	for k := range m { // want "appending during map iteration"
		keys = append(keys, k)
	}
	return keys
}

func cleanSeededRand(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

func cleanSortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func cleanReduction(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

func cleanExplicitTime(t time.Time) int64 {
	return t.Unix()
}
