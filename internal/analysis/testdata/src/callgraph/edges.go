// Package callgraph is the golden fixture for the call graph's edge
// semantics: which constructs produce call edges, which produce
// reference edges, and which deliberately produce neither. The
// edge-set assertions live in callgraph_edge_test.go.
package callgraph

// target and friends are the edge destinations.
func target()        {}
func other()         {}
func ref(fn func())  { fn() }
func refs(fn func()) { fn() }

type thing struct{ n int }

// M is resolved both as a direct method call and as a method value.
func (t *thing) M() { t.n++ }

// V is a value-receiver method taken as a method value.
func (t thing) V() int { return t.n }

type doer interface{ Do() }

// impl satisfies doer; Do must gain no edge from dynamic dispatch.
type impl struct{}

func (impl) Do() {}

// direct calls produce call edges: function, method, and a call inside
// a deferred closure (attributed to the enclosing declaration).
func direct(t *thing) {
	target()
	t.M()
	defer func() {
		other()
	}()
}

// methodValue takes t.M and len-style function idents as values:
// reference edges, not call edges.
func methodValue(t *thing) {
	ref(t.M)
	f := target
	_ = f
	v := t.V
	_ = v
}

// deferredClosure defers a capturing closure whose body calls target:
// still a call edge from deferredClosure, plus a reference edge for the
// function value handed to refs.
func deferredClosure() {
	defer func() {
		target()
	}()
	refs(other)
}

// dynamic calls through an interface produce no edge at all: the callee
// set is unknowable statically and the graph under-approximates.
func dynamic(d doer) {
	d.Do()
}

// calledNotReferenced pins the exclusion rule: a call's callee
// expression is not double-counted as a reference.
func calledNotReferenced() {
	target()
}
