// Package locks is the golden fixture for the lockorder analyzer: lock
// classes are keyed structurally (locks.alpha.mu, locks.shard.mu), so
// every instance of a type's mutex is one graph node. The fixture pins
// one direct cycle, one cycle closed through a callback run under a
// lock, the TryLock contention idiom, and the sampled-tick telemetry
// contract on the hot shard lock.
package locks

import (
	"sync"

	"github.com/last-mile-congestion/lastmile/internal/analysis/testdata/src/lockorder/telemetry"
)

type alpha struct{ mu sync.Mutex }
type beta struct{ mu sync.Mutex }
type gamma struct{ mu sync.Mutex }
type delta struct{ mu sync.Mutex }
type epsilon struct{ mu sync.Mutex }

var (
	va alpha
	vb beta
	vg gamma
	vd delta
	ve epsilon
)

// lockAB acquires alpha then beta; together with lockBA's reversed
// order this closes the fixture's direct deadlock cycle. The report
// lands on the first edge's witness site.
func lockAB() {
	va.mu.Lock()
	vb.mu.Lock() // want "lock order cycle between locks.alpha.mu, locks.beta.mu"
	vb.mu.Unlock()
	va.mu.Unlock()
}

// lockBA is the opposing path of the cycle.
func lockBA() {
	vb.mu.Lock()
	va.mu.Lock()
	va.mu.Unlock()
	vb.mu.Unlock()
}

// lockGamma acquires gamma on behalf of callers.
func lockGamma() {
	vg.mu.Lock()
	defer vg.mu.Unlock()
}

// callUnder holds alpha across a call into lockGamma: the interprocedural
// edge alpha → gamma is recorded but stays acyclic, so no finding.
func callUnder() {
	va.mu.Lock()
	defer va.mu.Unlock()
	lockGamma()
}

// withDelta runs fn with delta held — the registry GaugeFunc /
// printer.Block shape. The callback's acquires happen under delta even
// though the call through fn is dynamic.
func withDelta(fn func()) {
	vd.mu.Lock()
	defer vd.mu.Unlock()
	fn()
}

// callbackUnder contributes the delta → epsilon edge through the
// callback; lockED's epsilon → delta closes the second cycle.
func callbackUnder() {
	withDelta(func() { // want "lock order cycle between locks.delta.mu, locks.epsilon.mu"
		ve.mu.Lock()
		ve.mu.Unlock()
	})
}

// lockED is the opposing path of the callback cycle.
func lockED() {
	ve.mu.Lock()
	vd.mu.Lock()
	vd.mu.Unlock()
	ve.mu.Unlock()
}

type table struct{ mu sync.RWMutex }

var vt table

// readThenAlpha: read locks order like write locks; table → alpha stays
// acyclic and silent.
func readThenAlpha() int {
	vt.mu.RLock()
	va.mu.Lock()
	va.mu.Unlock()
	vt.mu.RUnlock()
	return 0
}

// shard mirrors the engine's striped ingest lock; the test configures
// HotPathLocks to {"locks.shard.mu"}.
type shard struct {
	mu       sync.Mutex
	tick     int
	n        int
	lat      *telemetry.Histogram
	ingested *telemetry.Counter
}

var sh shard

var contention = &telemetry.Counter{}

// observeBad times every observation under the shard lock — the
// contract violation the analyzer exists to catch.
func observeBad(v float64) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.n++
	sh.lat.Observe(v) // want "telemetry call Histogram.Observe under hot lock locks.shard.mu"
}

// observeGood follows the engine's contract: the failed TryLock counts
// contention while NOT holding the lock, atomic counters are exempt
// anywhere, and histogram work sits behind the sampled-tick guard.
func observeGood(v float64) {
	if !sh.mu.TryLock() {
		contention.Inc()
		sh.mu.Lock()
	}
	defer sh.mu.Unlock()
	sh.tick++
	sampled := sh.tick&7 == 0
	if sampled {
		sh.lat.Observe(v)
	}
	sh.n++
	sh.ingested.Inc()
}

// observeSuppressed shows an accepted amortised exception via the shared
// lmvet:ignore machinery.
func observeSuppressed(v float64) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.lat.Observe(v) //lmvet:ignore lockorder fixture demonstration of an accepted amortised timing
}
