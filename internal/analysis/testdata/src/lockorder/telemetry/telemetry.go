// Package telemetry mirrors the real registry's shape for the lockorder
// fixture: Histogram observations and Timers are governed under hot
// locks, Counters are single atomic adds and exempt.
package telemetry

import "sync/atomic"

// Counter is a lock-free atomic counter.
type Counter struct{ n atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Histogram records observations.
type Histogram struct{ sum atomic.Int64 }

// Observe records one value.
func (h *Histogram) Observe(v float64) { h.sum.Add(int64(v)) }

// Start begins a timed section.
func (h *Histogram) Start() Timer { return Timer{h: h} }

// Timer measures one section; Stop records it.
type Timer struct{ h *Histogram }

// Stop records the elapsed section.
func (t Timer) Stop() { t.h.Observe(1) }
