// Package nanguard is the golden fixture for the nanguard analyzer.
package nanguard

import (
	"math"
	"sort"
)

func badSort(xs []float64) {
	sort.Float64s(xs) // want "sort.Float64s on a float slice"
}

func badSortSlice(xs []float64) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] }) // want "float less-func"
}

func badMinReduction(xs []float64) float64 {
	m := xs[0]
	for _, v := range xs[1:] {
		if v < m { // want "min/max reduction"
			m = v
		}
	}
	return m
}

func badMaxReduction(xs []float64) float64 {
	m := xs[0]
	for _, v := range xs[1:] {
		if v > m { // want "min/max reduction"
			m = v
		}
	}
	return m
}

func cleanFilteredSort(xs []float64) []float64 {
	clean := make([]float64, 0, len(xs))
	for _, v := range xs {
		if !math.IsNaN(v) {
			clean = append(clean, v)
		}
	}
	sort.Float64s(clean)
	return clean
}

func cleanGuardedMin(xs []float64) float64 {
	m := math.NaN()
	for _, v := range xs {
		if math.IsNaN(m) || v < m {
			m = v
		}
	}
	return m
}

func cleanIntSort(xs []int) int {
	sort.Ints(xs)
	m := xs[0]
	for _, v := range xs {
		if v < m {
			m = v
		}
	}
	return m
}

func cleanHelperDelegation(xs []float64) []float64 {
	return dropNaN(xs)
}

func dropNaN(xs []float64) []float64 {
	out := xs[:0]
	for _, v := range xs {
		if !math.IsNaN(v) {
			out = append(out, v)
		}
	}
	return out
}
