// Package poolsafe is the golden fixture for the poolsafe analyzer.
package poolsafe

import "sync"

func compute(i int) int { return i * i }

// badLoopCapture reads the range variable from inside the goroutine.
func badLoopCapture(items []int) {
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			compute(it) // want "captures loop variable it"
		}()
	}
	wg.Wait()
}

// badThreeClauseCapture captures the classic for-loop counter.
func badThreeClauseCapture(n int) {
	for i := 0; i < n; i++ {
		go func() {
			compute(i) // want "captures loop variable i"
		}()
	}
}

// badSharedIndexWrite both captures the loop variable and writes the
// shared result slice through it.
func badSharedIndexWrite(out []int) {
	for i := range out {
		go func() {
			out[i] = compute(i) // want "captures loop variable i" want "write to shared slice out"
		}()
	}
}

// badOuterIndexWrite writes through a non-loop variable that lives
// outside the closure: nothing ties the write to this goroutine.
func badOuterIndexWrite(out []int, next int) {
	go func() {
		out[next] = 1 // want "write to shared slice out"
	}()
}

// badSharedMapWrite targets a map: concurrent writes corrupt it even
// when the keys differ.
func badSharedMapWrite(m map[int]int, k int) {
	go func() {
		m[k] = 1 // want "write to shared map m"
	}()
}

// cleanWorkerPool is the sanctioned pattern: workers receive their
// indices from a channel, so the index variable is closure-local.
func cleanWorkerPool(out []int, workers int) {
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = compute(i)
			}
		}()
	}
	for i := range out {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// cleanArgPass evaluates the loop variable at spawn time.
func cleanArgPass(out []int) {
	var wg sync.WaitGroup
	for i := range out {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = compute(i)
		}(i)
	}
	wg.Wait()
}

// cleanFixedSlots gives each goroutine its own constant slot.
func cleanFixedSlots(out []int) {
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		out[0] = compute(0)
	}()
	go func() {
		defer wg.Done()
		out[1] = compute(1)
	}()
	wg.Wait()
}

// cleanLocalSlice appends to a closure-local buffer; no sharing.
func cleanLocalSlice() {
	go func() {
		local := make([]int, 4)
		for i := range local {
			local[i] = compute(i)
		}
	}()
}
