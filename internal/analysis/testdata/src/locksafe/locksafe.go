// Package locksafe is the golden fixture for the locksafe analyzer.
package locksafe

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
	m  map[string]int
}

type wrapper struct {
	c counter
}

func badParam(c counter) int { // want "parameter of type counter passes a lock by value"
	return c.n
}

func badNested(w wrapper) int { // want "parameter of type wrapper passes a lock by value"
	return w.c.n
}

func badResult() (c counter) { // want "result of type counter passes a lock by value"
	return
}

func (c counter) badReceiver() int { // want "receiver of type counter passes a lock by value"
	return c.n
}

func (c *counter) badUnguardedWrite() {
	c.n++ // want "write to c.n without holding"
}

func (c *counter) badUnguardedMapWrite(k string) {
	c.m[k] = 1 // want "write to c.m without holding"
}

type rwCounter struct {
	mu sync.RWMutex
	n  int
}

func (r *rwCounter) badWriteUnderRLock() {
	r.mu.RLock()
	defer r.mu.RUnlock()
	r.n = 1 // want "under RLock"
}

func (c *counter) cleanGuardedWrite() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

func (c *counter) bumpLocked() {
	c.n++
}

func (r *rwCounter) cleanReadUnderRLock() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.n
}

func cleanPointerParam(c *counter) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}
