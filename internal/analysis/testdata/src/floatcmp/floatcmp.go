// Package floatcmp is the golden fixture for the floatcmp analyzer.
package floatcmp

type thresholds struct{ lo, hi float64 }

type nested struct{ t thresholds }

func badEqual(a, b float64) bool {
	return a == b // want "float comparison"
}

func badNotEqual(a, b float64) bool {
	return a != b // want "float comparison"
}

func badConstCompare(amp float64) bool {
	return amp == 3.0 // want "float comparison"
}

func badStruct(t, u thresholds) bool {
	return t == u // want "compares float fields"
}

func badNested(n, m nested) bool {
	return n != m // want "compares float fields"
}

var badMap map[float64]int // want "map keyed by float"

func badMapMake() any {
	return make(map[float64]bool) // want "map keyed by float"
}

func cleanZeroSentinel(frac float64) float64 {
	if frac == 0 {
		frac = 0.5
	}
	return frac
}

func cleanEpsilon(a, b float64) bool {
	const eps = 1e-9
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < eps
}

func cleanInts(n, m int) bool {
	return n == m
}

func cleanOrdered(a, b float64) bool {
	return a < b
}
