// Package chanprotocol is the golden fixture for the chanprotocol
// analyzer: ownership-protocol violations and the clean idioms they are
// distinguished from.
package chanprotocol

import (
	"sync"

	"github.com/last-mile-congestion/lastmile/internal/analysis/testdata/src/chanprotocol/helper"
)

func work(n int) int { return n * n }

// DoubleClose closes twice on one linear path: a guaranteed panic.
func DoubleClose() {
	ch := make(chan int, 1)
	ch <- 1
	close(ch)
	close(ch) // want "second close of ch"
}

// SendAfterClose sends on a channel already closed on the same path.
func SendAfterClose() {
	ch := make(chan int, 1)
	close(ch)
	ch <- 1 // want "send on ch after it was closed"
}

// DoubleCloseViaHelper reaches the second close through a callee that
// closes its parameter; the report carries the chain.
func DoubleCloseViaHelper() {
	ch := make(chan int)
	close(ch)
	helper.Finish(ch) // want "helper.Finish ← close"
}

// SendAfterCloseViaHelper hides the fatal send inside the callee.
func SendAfterCloseViaHelper() {
	ch := make(chan int)
	close(ch)
	helper.Push(ch, 1) // want "helper.Push ← send"
}

// CloseInLoop panics on the second iteration: the channel was made once,
// outside the loop.
func CloseInLoop(batches [][]int) {
	done := make(chan struct{})
	for range batches {
		close(done) // want "closed inside a loop"
	}
}

// CleanCloseInLoopPerIteration makes the channel inside the loop, so
// each iteration closes a fresh one.
func CleanCloseInLoopPerIteration(batches [][]int) {
	for range batches {
		done := make(chan struct{})
		close(done)
	}
}

// CloseByNonSender closes from the consumer side while the producer
// goroutine may still be sending: the race panics.
func CloseByNonSender() int {
	ch := make(chan int)
	go func() {
		for i := 0; i < 3; i++ {
			ch <- i
		}
	}()
	v := <-ch
	close(ch) // want "by a non-sender"
	return v
}

// CleanSenderClose is the fix: the sending goroutine owns the close.
func CleanSenderClose() int {
	ch := make(chan int)
	go func() {
		for i := 0; i < 3; i++ {
			ch <- i
		}
		close(ch)
	}()
	sum := 0
	for v := range ch {
		sum += v
	}
	return sum
}

// CleanJoinedClose closes from a collector goroutine, but only after
// WaitGroup.Wait has joined every sender — the fan-in idiom.
func CleanJoinedClose(jobs []int) int {
	var wg sync.WaitGroup
	ch := make(chan int, len(jobs))
	for _, j := range jobs {
		wg.Add(1)
		j := j
		go func() {
			defer wg.Done()
			ch <- work(j)
		}()
	}
	go func() {
		wg.Wait()
		close(ch)
	}()
	total := 0
	for v := range ch {
		total += v
	}
	return total
}

// CleanDoneBroadcast closes a channel nothing sends on: the broadcast
// idiom, explicitly out of scope for close-by-non-sender.
func CleanDoneBroadcast() chan struct{} {
	done := make(chan struct{})
	go func() {
		<-done
	}()
	close(done)
	return done
}

// PollAwayCompletion reproduces the fixed lmmonitor interrupt race: a
// final non-blocking poll whose default arm returns, dropping a
// completion signal that lands after the poll.
func PollAwayCompletion(results chan int) (int, bool) {
	select { // want "drop the completion signal on results"
	case v, ok := <-results:
		return v, ok
	default:
		return 0, true
	}
}

// CleanPollLoop re-polls: an empty default inside a loop sees the close
// on the next iteration, so nothing is dropped.
func CleanPollLoop(results chan int) int {
	total := 0
	for i := 0; i < 10; i++ {
		select {
		case v, ok := <-results:
			if !ok {
				return total
			}
			total += v
		default:
		}
	}
	return total
}

// CleanBlockingCompletion consumes the completion signal with a
// blocking select — the shape the lmmonitor fix landed on.
func CleanBlockingCompletion(results chan int, quit chan struct{}) (int, bool) {
	select {
	case v, ok := <-results:
		return v, ok
	case <-quit:
		return 0, false
	}
}
