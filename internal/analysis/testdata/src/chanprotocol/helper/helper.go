// Package helper is the chanprotocol fixture's callee layer: channel
// ownership transferred through a parameter, so the protocol reports in
// the parent package must carry the witness chain.
package helper

// Finish closes its argument — close ownership handed in.
func Finish(ch chan int) {
	close(ch)
}

// Push forwards one value, blocking until received.
func Push(ch chan int, v int) {
	ch <- v
}
