// Package errclose is the golden fixture for the errclose analyzer.
package errclose

type sink struct{}

func (sink) Close() error                { return nil }
func (sink) Flush() error                { return nil }
func (sink) Sync() error                 { return nil }
func (sink) Write(p []byte) (int, error) { return len(p), nil }
func (sink) Name() string                { return "sink" }

type quiet struct{}

func (quiet) Close() {}

func badStatements(s sink) {
	s.Flush() // want "s.Flush returns an error that is dropped"
	s.Close() // want "s.Close returns an error that is dropped"
	s.Write(nil) // want "s.Write returns an error that is dropped"
}

func badDefer(s sink) {
	defer s.Close() // want "defer s.Close returns an error that is dropped"
	s.Sync() // want "s.Sync returns an error that is dropped"
}

func badInsideClosure(s sink) {
	defer func() {
		s.Close() // want "s.Close returns an error that is dropped"
	}()
}

func cleanHandled(s sink) error {
	if err := s.Flush(); err != nil {
		return err
	}
	if _, err := s.Write(nil); err != nil {
		return err
	}
	return s.Close()
}

func cleanExplicitDiscard(s sink) {
	defer func() { _ = s.Close() }()
	_ = s.Name()
}

func cleanNoError(q quiet) {
	q.Close()
	defer q.Close()
}
