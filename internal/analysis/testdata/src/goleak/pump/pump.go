// Package pump is the goleak fixture's helper layer: the blocking send
// lives two calls deep here, so the spawn-site diagnostic in the parent
// package must carry the interprocedural witness chain.
package pump

// Fill forwards the seed into out through one more hop.
func Fill(out chan int, seed int) {
	push(out, seed)
}

// push blocks until someone receives.
func push(out chan int, v int) {
	out <- v
}

// Drain receives one value — the counterpart effect used by the clean
// interprocedural case.
func Drain(in chan int) int {
	return <-in
}
