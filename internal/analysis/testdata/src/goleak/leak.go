// Package goleak is the golden fixture for the goleak analyzer: each
// function is one spawn shape, leaky or clean, and the want comments pin
// the spawn-site diagnostics.
package goleak

import (
	"context"
	"sync"

	"github.com/last-mile-congestion/lastmile/internal/analysis/testdata/src/goleak/pump"
)

func compute() int { return 42 }

func work(n int) int { return n * n }

// LeakSendNoReceiver is the classic abandoned sender: nothing ever
// receives on ch, so the goroutine blocks forever.
func LeakSendNoReceiver() {
	ch := make(chan int)
	go func() { // want "blocks sending on ch"
		ch <- 1
	}()
}

// LeakRecvNoSender is the mirror image: nothing sends or closes.
func LeakRecvNoSender() {
	ch := make(chan int)
	go func() { // want "blocks receiving on ch"
		_ = <-ch
	}()
}

// LeakThroughHelper hides the blocking send two calls deep in another
// package; the report must carry the interprocedural witness chain.
func LeakThroughHelper() {
	ch := make(chan int)
	go pump.Fill(ch, 7) // want "pump.Fill ← pump.push"
}

// LeakAbandonedBySelect has a counterpart receive, but it sits in a
// two-arm select outside a loop: the ctx arm can win and abandon the
// sender forever.
func LeakAbandonedBySelect(ctx context.Context) int {
	ch := make(chan int)
	go func() { // want "sits in a select that can take another arm"
		ch <- compute()
	}()
	select {
	case v := <-ch:
		return v
	case <-ctx.Done():
		return -1
	}
}

// CleanBuffered is the fix for LeakAbandonedBySelect: the buffer gives
// the sender somewhere to put the value even when the select bails.
func CleanBuffered(ctx context.Context) int {
	ch := make(chan int, 1)
	go func() {
		ch <- compute()
	}()
	select {
	case v := <-ch:
		return v
	case <-ctx.Done():
		return -1
	}
}

// CleanPipeline is the producer/range-drain idiom: every send has the
// range receive as its counterpart.
func CleanPipeline() int {
	ch := make(chan int)
	go func() {
		for i := 0; i < 4; i++ {
			ch <- i
		}
		close(ch)
	}()
	sum := 0
	for v := range ch {
		sum += v
	}
	return sum
}

// CleanHelperDrained passes the channel to a receiving helper, so the
// interprocedural effect summary finds the counterpart.
func CleanHelperDrained() int {
	ch := make(chan int)
	go func() {
		ch <- compute()
	}()
	return pump.Drain(ch)
}

// LeakSpawnLoop fans out without any bounding join: no WaitGroup, no
// collecting channel, no semaphore.
func LeakSpawnLoop(jobs []int) {
	for _, j := range jobs {
		j := j
		go func() { // want "spawned in a loop with no bounding join"
			work(j)
		}()
	}
}

// CleanSpawnLoopWaitGroup bounds the loop with the Add/Done/Wait
// discipline.
func CleanSpawnLoopWaitGroup(jobs []int) {
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		j := j
		go func() {
			defer wg.Done()
			work(j)
		}()
	}
	wg.Wait()
}

// CleanCollector bounds the loop through the results channel: the
// spawner drains exactly one value per spawn.
func CleanCollector(jobs []int) int {
	results := make(chan int)
	for _, j := range jobs {
		j := j
		go func() {
			results <- work(j)
		}()
	}
	total := 0
	for range jobs {
		total += <-results
	}
	return total
}

// LeakWaitLoop spins forever: the select has no arm that returns or
// breaks, so the goroutine never ends even after ticks goes quiet.
func LeakWaitLoop(ticks chan int, sink func(int)) {
	go func() {
		for { // want "wait-loop never terminates"
			select {
			case v := <-ticks:
				sink(v)
			}
		}
	}()
}

// CleanWaitLoop has the cancellation arm the rule asks for.
func CleanWaitLoop(ctx context.Context, ticks chan int, sink func(int)) {
	go func() {
		for {
			select {
			case v := <-ticks:
				sink(v)
			case <-ctx.Done():
				return
			}
		}
	}()
}

// SuppressedLeak documents an accepted leak via the ignore directive;
// the suite must drop the finding, so no want here.
func SuppressedLeak() {
	ch := make(chan int)
	go func() { //lmvet:ignore goleak fixture documents the suppression path
		ch <- 1
	}()
}
