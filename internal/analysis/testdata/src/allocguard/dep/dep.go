// Package dep is the allocguard fixture's dependency package: its
// functions join the hot set across the package boundary, and findings
// here carry the cross-package witness chain.
package dep

var sink any

// Note is reached from the fixture root in the parent package.
func Note(n int) {
	sink = n // want "allocguard.Ingest ← dep.Note" want "boxes int into"
}
