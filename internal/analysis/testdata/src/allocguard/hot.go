// Package allocguard is the golden fixture for the allocguard analyzer:
// //lmvet:hotpath roots whose statically reachable set — through call
// edges and function-value references alike — must stay allocation-free.
// The "want" comments assert the witness-chain diagnostics.
package allocguard

import "github.com/last-mile-congestion/lastmile/internal/analysis/testdata/src/allocguard/dep"

// sink and global give escape sinks the fixture can publish into.
var sink any

type state struct{ n int }

var global *state

// Ingest is an annotated root; the analyzer follows its static calls
// (record, dep.Note) and its function-value references (helperValue).
//
//lmvet:hotpath
func Ingest(vs []int, buf []int) []int {
	for _, v := range vs {
		buf = append(buf, v) // want "append beyond provable capacity"
	}
	record(vs[0])
	dep.Note(len(vs))
	h := helperValue
	_ = h
	return buf
}

// record is hot by reachability; boxing a concrete int into the
// interface sink allocates.
func record(v int) {
	sink = v // want "allocguard.Ingest ← allocguard.record" want "boxes int into"
}

// helperValue is never called from the hot set, only referenced as a
// value in Ingest; the Refs edge still pulls it in.
func helperValue() {
	m := map[string]int{} // want "allocguard.Ingest ← allocguard.helperValue" want "map literal allocates"
	_ = m
}

// Clean is annotated and must stay silent: the reslice provenance of
// buf covers the self-append, and summing borrows nothing.
//
//lmvet:hotpath
func Clean(vs []int, scratch []int) int {
	buf := scratch[:0]
	for _, v := range vs {
		buf = append(buf, v)
	}
	s := 0
	for _, v := range buf {
		s += v
	}
	return s
}

// Sized demonstrates the capacity-provenance rule: the make itself is an
// allocation site, but appends within the reserved capacity are not.
//
//lmvet:hotpath
func Sized(n int) int {
	buf := make([]int, 0, 8) // want "make([]int) allocates"
	for i := 0; i < n && i < 8; i++ {
		buf = append(buf, i)
	}
	return len(buf)
}

// Closures: a capture-free literal is hoistable and silent; a capturing
// one materialises a closure object.
//
//lmvet:hotpath
func Closures(n int) func() int {
	f := func() int { return 42 }
	g := func() int { return n } // want "closure capturing n allocates"
	_ = f
	return g
}

func describe(args ...any) int { return len(args) }

// Convert: variadic materialisation, per-argument boxing, and the
// []byte→string copy.
//
//lmvet:hotpath
func Convert(bs []byte, n int) string {
	describe(n)       // want "boxes int into" want "variadic call allocates"
	return string(bs) // want "[]byte→string conversion allocates"
}

// Spread passes an existing slice through; no new backing array, no
// per-element boxing.
//
//lmvet:hotpath
func Spread(args []any) int {
	return describe(args...)
}

// Escapes publishes the literal's address into a package-level var, so
// the escape lattice answers heap.
//
//lmvet:hotpath
func Escapes(n int) {
	s := &state{n: n} // want "escaping &composite literal allocates"
	global = s
}

// StaysLocal keeps the literal's address within the frame: provably
// stack-allocatable, silent.
//
//lmvet:hotpath
func StaysLocal(n int) int {
	s := &state{n: n}
	s.n++
	return s.n
}

// Suppressed demonstrates that inline suppressions silence hot-path
// findings through the shared lmvet:ignore machinery.
//
//lmvet:hotpath
func Suppressed() {
	//lmvet:ignore allocguard fixture demonstration of an accepted amortised allocation
	sink = 1
}

type noter interface{ Note() }

// Dynamic pins the deliberate under-approximation: an interface-method
// call has no static callee, so nothing past it joins the hot set.
//
//lmvet:hotpath
func Dynamic(n noter) {
	n.Note()
}

// coldAlloc is unreachable from every annotated root and may allocate
// freely.
func coldAlloc() []int {
	return append([]int{}, 1, 2, 3)
}
