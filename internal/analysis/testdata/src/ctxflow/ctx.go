// Package ctxflow is the golden fixture for the ctxflow analyzer:
// context parameters that do or do not govern the function's blocking
// behaviour.
package ctxflow

import (
	"context"

	"github.com/last-mile-congestion/lastmile/internal/analysis/testdata/src/ctxflow/remote"
)

// DropCtxSelect accepts ctx, then blocks on a select with no
// cancellation arm. Cancelling the caller never unblocks it.
func DropCtxSelect(ctx context.Context, in chan int) int { // want "context parameter ctx is never used"
	select {
	case v := <-in:
		return v
	}
}

// DropCtxRecv blocks on a bare receive with ctx idle.
func DropCtxRecv(ctx context.Context, in chan int) int { // want "a blocking receive from in"
	return <-in
}

// DropCtxSend blocks on a bare send with ctx idle.
func DropCtxSend(ctx context.Context, out chan int, v int) { // want "a blocking send on out"
	out <- v
}

// SeveredChain accepts ctx and hands the callee a fresh Background:
// both the unused parameter and the severed chain are reported.
func SeveredChain(ctx context.Context, addr string) error { // want "never used"
	return remote.Ping(context.Background(), addr) // want "context.Background passed to remote.Ping"
}

// SeveredTODO is the TODO variant of the same severing.
func SeveredTODO(ctx context.Context, addr string) error {
	if err := remote.Ping(ctx, addr); err != nil {
		return err
	}
	return remote.Ping(context.TODO(), addr) // want "context.TODO passed to remote.Ping"
}

// CleanThreaded consults ctx in the select: cancellation works.
func CleanThreaded(ctx context.Context, in chan int) int {
	select {
	case v := <-in:
		return v
	case <-ctx.Done():
		return -1
	}
}

// CleanPassthrough forwards ctx to the blocking callee.
func CleanPassthrough(ctx context.Context, addr string) error {
	return remote.Ping(ctx, addr)
}

// CleanPureCtx ignores ctx but never blocks — not this analyzer's
// business (govet-style unused-parameter checks live elsewhere).
func CleanPureCtx(ctx context.Context, a, b int) int {
	return a + b
}

// CleanRoot has no ctx parameter in scope, so starting a fresh
// Background chain here is legitimate.
func CleanRoot(addr string) error {
	return remote.Ping(context.Background(), addr)
}
