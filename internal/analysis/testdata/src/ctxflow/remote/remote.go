// Package remote is the ctxflow fixture's callee layer: a blocking,
// Context-accepting API that callers are supposed to thread their ctx
// into.
package remote

import "context"

// Ping blocks until the context cancels — the fixture stand-in for a
// network call.
func Ping(ctx context.Context, addr string) error {
	<-ctx.Done()
	_ = addr
	return ctx.Err()
}
