// Package clock is the dettaint fixture's deepest layer: wall-clock
// sources two calls removed from the sink package.
package clock

import "time"

// Unix is a clock taint source.
func Unix() int64 {
	return time.Now().Unix()
}

// Span is a clock taint source via time.Since.
func Span(start time.Time) time.Duration {
	return time.Since(start)
}

// Bench reads the wall clock, but the source line carries an inline
// suppression, so no taint seeds here and callers stay clean.
func Bench() int64 {
	return time.Now().UnixNano() //lmvet:ignore dettaint fixture: telemetry timing is display-only
}
