// Package helper is the dettaint fixture's middle layer: nothing here is
// a sink, but taint must flow through these functions to the exported
// entry points of the fixture's internal/experiments package.
package helper

import (
	"math/rand"
	"os"
	"sort"
	"time"

	"github.com/last-mile-congestion/lastmile/internal/analysis/testdata/src/dettaint/helper/clock"
	"github.com/last-mile-congestion/lastmile/internal/analysis/testdata/src/dettaint/internal/netsim"
)

// Stamp propagates clock taint from the deeper layer.
func Stamp() int64 {
	return clock.Unix()
}

// Span propagates time.Since taint.
func Span(start time.Time) time.Duration {
	return clock.Span(start)
}

// Region is an env taint source.
func Region() string {
	return os.Getenv("LM_REGION")
}

// Jitter is a global-rand taint source.
func Jitter() float64 {
	return rand.Float64()
}

// Collect is a maporder taint source: it accumulates in map iteration
// order and never sorts.
func Collect(m map[string]float64) []float64 {
	var out []float64
	for _, v := range m {
		out = append(out, v)
	}
	return out
}

// SortedKeys accumulates during map iteration but canonicalises with a
// sort, so it seeds no taint.
func SortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Draw uses the keyed netsim API; the sanitizer keeps it clean.
func Draw(seed uint64) float64 {
	return netsim.DerivedRand(seed).Float64()
}

// Bench calls a clock read whose source line is inline-suppressed, so it
// carries no taint.
func Bench() int64 {
	return clock.Bench()
}

// Sampler exercises method-call edges in the call graph.
type Sampler struct {
	vals map[string]float64
}

// NewSampler builds a sampler over the given values.
func NewSampler(vals map[string]float64) *Sampler {
	return &Sampler{vals: vals}
}

// Flatten is a maporder taint source reached through a method call.
func (s *Sampler) Flatten() []float64 {
	var out []float64
	for _, v := range s.vals {
		out = append(out, v)
	}
	return out
}
