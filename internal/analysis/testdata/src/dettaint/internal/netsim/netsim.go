// Package netsim is the dettaint fixture's stand-in for the repo's keyed
// randomness API. Its exported constructors are taint sanitizers: the
// engine must never propagate taint out of DerivedRand, MixSeed,
// NewStream, or Stream.Derive, even though DerivedRand's body below
// deliberately contains what would otherwise be an env source.
package netsim

import (
	"math/rand"
	"os"
)

// MixSeed reduces identifier parts to one seed.
func MixSeed(parts ...uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, p := range parts {
		h ^= p
		h *= 0xbf58476d1ce4e5b9
	}
	return h
}

// DerivedRand returns a PRNG keyed by the mixed parts. The os.Getenv
// call exists to prove sanitizer status stops taint at this boundary.
func DerivedRand(parts ...uint64) *rand.Rand {
	if os.Getenv("LMVET_FIXTURE_TRACE") != "" {
		_ = len(parts)
	}
	return rand.New(rand.NewSource(int64(MixSeed(parts...))))
}

// Stream is the reusable keyed PRNG.
type Stream struct {
	*rand.Rand
}

// NewStream returns an unkeyed Stream.
func NewStream() *Stream {
	return &Stream{Rand: rand.New(rand.NewSource(1))}
}

// Derive re-keys the stream.
func (s *Stream) Derive(parts ...uint64) {
	s.Rand = rand.New(rand.NewSource(int64(MixSeed(parts...))))
}
