// Package experiments is the dettaint fixture's sink package: its
// exported functions are the entry points the taint engine guards. The
// "want" comments assert the witness chains the analyzer must print.
package experiments

import (
	"math/rand"
	"sort"
	"time"

	"github.com/last-mile-congestion/lastmile/internal/analysis/testdata/src/dettaint/helper"
	"github.com/last-mile-congestion/lastmile/internal/analysis/testdata/src/dettaint/internal/netsim"
)

// TaintedClock reaches time.Now through two helper layers.
func TaintedClock() int64 { // want "reaches time.Now: experiments.TaintedClock ← helper.Stamp ← clock.Unix ← time.Now"
	return helper.Stamp()
}

// TaintedSince reaches time.Since.
func TaintedSince(start time.Time) time.Duration { // want "reaches time.Since: experiments.TaintedSince ← helper.Span ← clock.Span ← time.Since"
	return helper.Span(start)
}

// TaintedEnv reaches an ambient environment read.
func TaintedEnv() string { // want "reaches os.Getenv: experiments.TaintedEnv ← helper.Region ← os.Getenv"
	return helper.Region()
}

// TaintedRand reaches the globally seeded math/rand.
func TaintedRand() float64 { // want "reaches global math/rand.Float64: experiments.TaintedRand ← helper.Jitter ← global math/rand.Float64"
	return helper.Jitter()
}

// TaintedOrder accumulates in map-iteration order via a helper and never
// sorts.
func TaintedOrder(m map[string]float64) []float64 { // want "reaches unsorted map iteration: experiments.TaintedOrder ← helper.Collect ← unsorted map iteration"
	return helper.Collect(m)
}

// TaintedMethod reaches a maporder source through a method call, proving
// receiver-resolved edges.
func TaintedMethod(s *helper.Sampler) []float64 { // want "experiments.TaintedMethod ← helper.(*Sampler).Flatten ← unsorted map iteration"
	return s.Flatten()
}

// TaintedDirect is itself the source: the chain has a single link.
func TaintedDirect(xs []int) { // want "reaches global math/rand.Shuffle: experiments.TaintedDirect ← global math/rand.Shuffle"
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// TaintedBoth reaches two kinds of nondeterminism; both are reported.
func TaintedBoth() string { // want "experiments.TaintedBoth ← helper.Stamp ← clock.Unix ← time.Now" want "experiments.TaintedBoth ← helper.Region ← os.Getenv"
	_ = helper.Stamp()
	return helper.Region()
}

// CleanSorted consumes a maporder-tainted helper but canonicalises with
// a sort, which blocks maporder propagation at this caller.
func CleanSorted(m map[string]float64) []float64 {
	vs := helper.Collect(m)
	sort.Float64s(vs)
	return vs
}

// CleanKeys uses a helper that sorts internally.
func CleanKeys(m map[string]float64) []string {
	return helper.SortedKeys(m)
}

// CleanDraw stays inside the keyed randomness API.
func CleanDraw() float64 {
	return helper.Draw(7)
}

// CleanSanitized calls the sanitizer directly; the env read inside
// DerivedRand must not escape it.
func CleanSanitized() float64 {
	return netsim.DerivedRand(11).Float64()
}

// CleanIgnoredSource depends on a clock read whose source line carries an
// inline suppression, so no taint arrives here.
func CleanIgnoredSource() int64 {
	return helper.Bench()
}

// IgnoredEntry is tainted, but the accepted finding is suppressed at the
// declaration with a trailing directive.
func IgnoredEntry() int64 { //lmvet:ignore dettaint fixture: accepted entry-point suppression
	return helper.Stamp()
}

//lmvet:ignore dettaint fixture: standalone directive covers the next line
func IgnoredAbove() float64 {
	return helper.Jitter()
}

// unexportedEntry is tainted but not exported, so it is not a sink.
func unexportedEntry() int64 {
	return helper.Stamp()
}
