package analysis

import (
	"go/ast"
	"go/types"
)

// DetGuardAnalyzer flags nondeterminism in packages that must be
// bit-for-bit reproducible: wall-clock reads, the globally seeded
// math/rand generator, and map iteration whose order leaks into output.
//
// Rationale: the simulation and scenario packages regenerate every
// figure in EXPERIMENTS.md from fixed seeds; a single time.Now, global
// rand call, or order-dependent map walk makes those artifacts
// unreproducible and poisons golden-file comparisons. lmvet scopes this
// analyzer to the deterministic packages (internal/netsim,
// internal/scenario, internal/dsp) via its configuration.
var DetGuardAnalyzer = &Analyzer{
	Name: "detguard",
	Doc:  "flags time.Now, global math/rand, and order-dependent map iteration in deterministic packages",
	Run:  runDetGuard,
}

// globalRandFuncs are the math/rand package-level functions backed by the
// shared, globally seeded source.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true, "Seed": true,
	"Read": true, "N": true,
}

func runDetGuard(pass *Pass) error {
	for _, fd := range funcDecls(pass) {
		sorts := funcCallsSort(fd)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkNondetCall(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, n, sorts)
			}
			return true
		})
	}
	return nil
}

func checkNondetCall(pass *Pass, call *ast.CallExpr) {
	pkgPath, name, ok := pkgFunc(pass, call)
	if !ok {
		return
	}
	switch {
	case pkgPath == "time" && name == "Now":
		pass.Reportf(call.Pos(), "time.Now in a deterministic package; thread a clock or timestamp in explicitly")
	case (pkgPath == "math/rand" || pkgPath == "math/rand/v2") && globalRandFuncs[name]:
		pass.Reportf(call.Pos(), "global %s.%s uses the shared seed; use an explicitly seeded *rand.Rand", pkgPath, name)
	}
}

// funcCallsSort reports whether fd calls into package sort or slices'
// sort helpers, or any function whose name starts with "Sort" or ends
// with "Sorted" — evidence the author canonicalises iteration order.
func funcCallsSort(fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := calleeName(call)
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok && (id.Name == "sort" || id.Name == "slices") {
				found = true
				return false
			}
		}
		if len(name) >= 4 && (name[:4] == "Sort" || name[:4] == "sort") {
			found = true
			return false
		}
		if len(name) >= 6 && name[len(name)-6:] == "Sorted" {
			found = true
			return false
		}
		return true
	})
	return found
}

// checkMapRange flags ranging over a map while appending to a slice in a
// function that never sorts: the accumulated order differs run to run.
// Pure reductions (sums, counters, deletes) are order-independent and
// not flagged.
func checkMapRange(pass *Pass, rng *ast.RangeStmt, funcSorts bool) {
	if funcSorts {
		return
	}
	t := pass.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	appends := false
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
				if _, isBuiltin := pass.Info.ObjectOf(id).(*types.Builtin); isBuiltin {
					appends = true
					return false
				}
			}
		}
		return true
	})
	if appends {
		pass.Reportf(rng.Pos(), "appending during map iteration without sorting; element order differs between runs")
	}
}
