package analysis

import (
	"go/ast"
	"go/types"
)

// DetGuardAnalyzer flags nondeterminism in packages that must be
// bit-for-bit reproducible: wall-clock reads (time.Now, time.Since,
// time.Until), the globally seeded math/rand generator, ambient
// environment reads (os.Getenv and friends), and map iteration whose
// order leaks into output.
//
// Rationale: the simulation and scenario packages regenerate every
// figure in EXPERIMENTS.md from fixed seeds; a single time.Now, global
// rand call, environment read, or order-dependent map walk makes those
// artifacts unreproducible and poisons golden-file comparisons. lmvet
// scopes this analyzer to the deterministic packages (internal/netsim,
// internal/scenario, internal/dsp) via its configuration; the dettaint
// analyzer extends the same contract interprocedurally to everything
// those packages call.
var DetGuardAnalyzer = &Analyzer{
	Name: "detguard",
	Doc:  "flags wall-clock reads, global math/rand, os.Getenv, and order-dependent map iteration in deterministic packages",
	Run:  runDetGuard,
}

// globalRandFuncs are the math/rand package-level functions backed by the
// shared, globally seeded source.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true, "Seed": true,
	"Read": true, "N": true,
}

func runDetGuard(pass *Pass) error {
	for _, fd := range funcDecls(pass) {
		sorts := funcCallsSort(fd)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkNondetCall(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, n, sorts)
			}
			return true
		})
	}
	return nil
}

func checkNondetCall(pass *Pass, call *ast.CallExpr) {
	pkgPath, name, ok := pkgFunc(pass, call)
	if !ok {
		return
	}
	switch {
	case pkgPath == "time" && (name == "Now" || name == "Since" || name == "Until"):
		pass.Reportf(call.Pos(), "time.%s in a deterministic package; thread a clock or timestamp in explicitly", name)
	case (pkgPath == "math/rand" || pkgPath == "math/rand/v2") && globalRandFuncs[name]:
		pass.Reportf(call.Pos(), "global %s.%s uses the shared seed; use an explicitly seeded *rand.Rand", pkgPath, name)
	case pkgPath == "os" && (name == "Getenv" || name == "LookupEnv" || name == "Environ"):
		pass.Reportf(call.Pos(), "os.%s in a deterministic package; plumb configuration through parameters", name)
	}
}

// funcCallsSort reports whether fd calls into package sort or slices'
// sort helpers, or any function whose name starts with "Sort" or ends
// with "Sorted" — evidence the author canonicalises iteration order.
func funcCallsSort(fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := calleeName(call)
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok && (id.Name == "sort" || id.Name == "slices") {
				found = true
				return false
			}
		}
		if len(name) >= 4 && (name[:4] == "Sort" || name[:4] == "sort") {
			found = true
			return false
		}
		if len(name) >= 6 && name[len(name)-6:] == "Sorted" {
			found = true
			return false
		}
		return true
	})
	return found
}

// checkMapRange flags ranging over a map while appending to a slice in a
// function that never sorts: the accumulated order differs run to run.
// Pure reductions (sums, counters, deletes) are order-independent and
// not flagged.
func checkMapRange(pass *Pass, rng *ast.RangeStmt, funcSorts bool) {
	if funcSorts {
		return
	}
	if mapRangeAppends(pass.Info, rng) {
		pass.Reportf(rng.Pos(), "appending during map iteration without sorting; element order differs between runs")
	}
}

// mapRangeAppends reports whether rng iterates a map while appending to a
// slice — the accumulation pattern whose element order differs run to run.
// Shared by detguard (intraprocedural, with the enclosing function's sort
// check applied by the caller) and dettaint (as a maporder taint source).
func mapRangeAppends(info *types.Info, rng *ast.RangeStmt) bool {
	t := typeOf(info, rng.X)
	if t == nil {
		return false
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return false
	}
	appends := false
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
				if _, isBuiltin := info.ObjectOf(id).(*types.Builtin); isBuiltin {
					appends = true
					return false
				}
			}
		}
		return true
	})
	return appends
}
