package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// LockSafeAnalyzer flags lock misuse around the concurrent monitor:
// lock-containing structs transported by value (the copy and the
// original guard different data with unrelated mutexes), and methods
// that write guarded fields without holding the guarding mutex, or
// while holding only its read half.
//
// The "Locked" suffix convention is honoured: a method named
// evictLocked documents that its caller holds the lock and is exempt
// from the write check.
var LockSafeAnalyzer = &Analyzer{
	Name: "locksafe",
	Doc:  "flags by-value lock copies and unguarded writes to mutex-protected fields",
	Run:  runLockSafe,
}

func runLockSafe(pass *Pass) error {
	for _, fd := range funcDecls(pass) {
		checkLockCopies(pass, fd)
		checkGuardedWrites(pass, fd)
	}
	return nil
}

// checkLockCopies flags receivers, parameters, and results whose type
// contains a sync primitive but is not behind a pointer.
func checkLockCopies(pass *Pass, fd *ast.FuncDecl) {
	check := func(fl *ast.FieldList, kind string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := pass.TypeOf(field.Type)
			if t == nil {
				continue
			}
			if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
				continue
			}
			if containsLock(t) {
				pass.Reportf(field.Type.Pos(), "%s of type %s passes a lock by value; use a pointer", kind, types.TypeString(t, types.RelativeTo(pass.Pkg)))
			}
		}
	}
	check(fd.Recv, "receiver")
	if fd.Type != nil {
		check(fd.Type.Params, "parameter")
		check(fd.Type.Results, "result")
	}
}

// checkGuardedWrites flags assignments to fields of a mutex-bearing
// receiver in methods that never acquire the receiver's mutex (or that
// hold only RLock while writing).
func checkGuardedWrites(pass *Pass, fd *ast.FuncDecl) {
	recvObj, mutexFields := mutexReceiver(pass, fd)
	if recvObj == nil || len(mutexFields) == 0 {
		return
	}
	if name := fd.Name.Name; strings.HasSuffix(name, "Locked") || strings.HasSuffix(name, "locked") {
		return
	}
	locked, rlocked := receiverLockCalls(pass, fd, recvObj, mutexFields)
	if locked {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				reportUnguardedWrite(pass, lhs, recvObj, mutexFields, rlocked)
			}
		case *ast.IncDecStmt:
			reportUnguardedWrite(pass, n.X, recvObj, mutexFields, rlocked)
		}
		return true
	})
}

// mutexReceiver returns the object of fd's pointer receiver and the
// names of the receiver struct's sync.Mutex / sync.RWMutex fields.
func mutexReceiver(pass *Pass, fd *ast.FuncDecl) (types.Object, map[string]bool) {
	if fd.Recv == nil || len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
		return nil, nil
	}
	ident := fd.Recv.List[0].Names[0]
	obj := pass.Info.Defs[ident]
	if obj == nil {
		return nil, nil
	}
	t := obj.Type()
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return nil, nil
	}
	fields := make(map[string]bool)
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if named, ok := f.Type().(*types.Named); ok {
			o := named.Obj()
			if o.Pkg() != nil && o.Pkg().Path() == "sync" && (o.Name() == "Mutex" || o.Name() == "RWMutex") {
				fields[f.Name()] = true
			}
		}
	}
	return obj, fields
}

// receiverLockCalls reports whether fd calls Lock (or RLock) on one of
// the receiver's mutex fields.
func receiverLockCalls(pass *Pass, fd *ast.FuncDecl, recv types.Object, mutexFields map[string]bool) (locked, rlocked bool) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
		if !ok || !mutexFields[inner.Sel.Name] {
			return true
		}
		if id, ok := ast.Unparen(inner.X).(*ast.Ident); !ok || pass.Info.Uses[id] != recv {
			return true
		}
		switch sel.Sel.Name {
		case "Lock":
			locked = true
		case "RLock":
			rlocked = true
		}
		return true
	})
	return locked, rlocked
}

// reportUnguardedWrite flags lhs when it writes through a non-mutex
// field of recv.
func reportUnguardedWrite(pass *Pass, lhs ast.Expr, recv types.Object, mutexFields map[string]bool, rlocked bool) {
	sel := rootSelector(lhs)
	if sel == nil || mutexFields[sel.Sel.Name] {
		return
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok || pass.Info.Uses[id] != recv {
		return
	}
	if rlocked {
		pass.Reportf(lhs.Pos(), "write to %s.%s under RLock; writers must hold the full lock", id.Name, sel.Sel.Name)
		return
	}
	pass.Reportf(lhs.Pos(), "write to %s.%s without holding %s's mutex; lock, or suffix the method name with Locked", id.Name, sel.Sel.Name, id.Name)
}

// rootSelector unwraps index, star, and selector chains down to the
// innermost selector whose X could be the receiver: m.probes[k] -> m.probes,
// m.state.count -> m.state.
func rootSelector(e ast.Expr) *ast.SelectorExpr {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			if _, ok := ast.Unparen(x.X).(*ast.Ident); ok {
				return x
			}
			e = x.X
		default:
			return nil
		}
	}
}
