package analysis

import (
	"fmt"
	"path/filepath"
	"regexp"
	"testing"
)

// wantRE matches the golden expectation syntax: // want "substring",
// with several quoted substrings per comment allowed.
var wantRE = regexp.MustCompile(`want "([^"]+)"`)

// testGolden loads the fixture package in testdata/src/<name> and checks
// the analyzer's diagnostics against the // want comments: every want
// must be matched by a diagnostic on its line, and every diagnostic must
// be covered by a want.
func testGolden(t *testing.T, a *Analyzer, name string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	l, err := NewLoader(dir)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := l.Load(dir)
	if err != nil {
		t.Fatalf("Load(%s): %v", dir, err)
	}
	diags, err := RunAnalyzer(a, pkg)
	if err != nil {
		t.Fatalf("RunAnalyzer: %v", err)
	}
	checkWants(t, []*Package{pkg}, diags)
}

// checkWants compares diagnostics against the // want comments across all
// fixture packages: every want must be matched by a diagnostic on its
// line, and every diagnostic must be covered by a want.
func checkWants(t *testing.T, pkgs []*Package, diags []Diagnostic) {
	t.Helper()
	type lineKey struct {
		file string
		line int
	}
	wants := make(map[lineKey][]string)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					for _, m := range wantRE.FindAllStringSubmatch(c.Text, -1) {
						pos := pkg.Fset.Position(c.Pos())
						k := lineKey{filepath.Base(pos.Filename), pos.Line}
						wants[k] = append(wants[k], m[1])
					}
				}
			}
		}
	}

	matched := make(map[lineKey][]bool)
	for k, subs := range wants {
		matched[k] = make([]bool, len(subs))
	}
	for _, d := range diags {
		k := lineKey{filepath.Base(d.Pos.Filename), d.Pos.Line}
		ok := false
		for i, sub := range wants[k] {
			if regexp.MustCompile(regexp.QuoteMeta(sub)).MatchString(d.Message) {
				matched[k][i] = true
				ok = true
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for k, subs := range wants {
		for i, sub := range subs {
			if !matched[k][i] {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, sub)
			}
		}
	}
	if t.Failed() {
		for _, d := range diags {
			fmt.Println("  got:", d)
		}
	}
}

func TestFloatCmpGolden(t *testing.T)   { testGolden(t, FloatCmpAnalyzer, "floatcmp") }
func TestNaNGuardGolden(t *testing.T)   { testGolden(t, NaNGuardAnalyzer, "nanguard") }
func TestDetGuardGolden(t *testing.T)   { testGolden(t, DetGuardAnalyzer, "detguard") }
func TestLockSafeGolden(t *testing.T)   { testGolden(t, LockSafeAnalyzer, "locksafe") }
func TestErrCloseGolden(t *testing.T)   { testGolden(t, ErrCloseAnalyzer, "errclose") }
func TestPoolSafeGolden(t *testing.T)   { testGolden(t, PoolSafeAnalyzer, "poolsafe") }
func TestMetricSafeGolden(t *testing.T) { testGolden(t, MetricSafeAnalyzer, "metricsafe") }
