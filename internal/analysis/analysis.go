// Package analysis implements lmvet, a repo-specific static-analysis
// suite for the last-mile congestion pipeline. It is built purely on the
// standard library's go/ast, go/parser, and go/types packages — no
// external analysis framework — so the module stays dependency-free.
//
// The defect classes it targets are the ones that corrupt a
// millisecond-scale congestion classifier without failing any test:
// NaN-unsafe float comparisons (floatcmp), NaN propagation through sorts
// and min/max reductions (nanguard), nondeterminism in the simulation
// packages that must reproduce EXPERIMENTS.md bit-for-bit (detguard),
// lock misuse in the concurrent streaming monitor (locksafe),
// goroutine fan-out that bypasses the worker-pool index discipline
// (poolsafe), dropped Close/Flush/Write errors on the
// ingest/report paths (errclose), and telemetry misuse that would put
// registry lookups on hot paths or fork atomic metric state
// (metricsafe), hidden allocations on //lmvet:hotpath-annotated ingest
// paths (allocguard), lock-acquisition-order cycles or unsampled
// telemetry under hot locks (lockorder), and — over the goflow
// concurrency-lifecycle summaries — goroutines that can outlive their
// spawner (goleak), channel ownership-protocol violations like close by
// a non-sender or a default-polled completion signal (chanprotocol), and
// context.Context parameters never threaded into blocking work
// (ctxflow).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Pass carries one loaded, type-checked package through an analyzer.
type Pass struct {
	// Fset resolves token positions for every file of the package.
	Fset *token.FileSet
	// Files are the package's parsed non-test files.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds the type-checker's fact tables for Files.
	Info *types.Info

	analyzer *Analyzer
	diags    *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// ModulePass carries the whole-program view through a module-wide
// analyzer (one with RunModule set): every loaded package plus the static
// call graph over them.
type ModulePass struct {
	// Prog is the call graph over every package the loader pulled in.
	Prog *Program
	// Cfg is the suite configuration (sink package selection, scoping).
	Cfg Config

	analyzer      *Analyzer
	diags         *[]Diagnostic
	requestedPkgs map[string]bool
	ignores       *ignoreIndex
}

// Reportf records a diagnostic at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.analyzer.Name,
		Pos:      p.Prog.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// requested reports whether pkg was one of the directories the suite was
// asked to analyze (rather than a dependency pulled in for the graph).
// Module analyzers report findings only into requested packages.
func (p *ModulePass) requested(pkg *Package) bool {
	return p.requestedPkgs[pkg.Path]
}

// TypeOf returns the type of expression e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.Info.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// Severity ranks a finding for exit-code purposes: errors fail the run,
// warnings are reported but do not.
type Severity string

const (
	// SeverityError findings fail the lmvet run (exit code 1).
	SeverityError Severity = "error"
	// SeverityWarn findings are printed but do not affect the exit code.
	SeverityWarn Severity = "warn"
)

// Analyzer is one named check over a package or over the whole module.
type Analyzer struct {
	// Name is the flag-friendly identifier (e.g. "floatcmp").
	Name string
	// Doc is a one-line description shown by lmvet -help.
	Doc string
	// Severity is the default severity of this analyzer's findings; the
	// zero value means SeverityError. Config.Severity overrides per run.
	Severity Severity
	// Run inspects one package and reports findings via pass.Reportf.
	// Exactly one of Run and RunModule is set.
	Run func(pass *Pass) error
	// RunModule inspects the whole loaded module at once — analyzers that
	// need the cross-package call graph (dettaint) set this instead of Run.
	RunModule func(pass *ModulePass) error
}

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	Severity string         `json:"severity"`
	Message  string         `json:"message"`
}

// String formats the diagnostic in the canonical file:line:col style.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// All returns every analyzer in the suite, sorted by name.
func All() []*Analyzer {
	as := []*Analyzer{
		FloatCmpAnalyzer,
		NaNGuardAnalyzer,
		DetGuardAnalyzer,
		DetTaintAnalyzer,
		LockSafeAnalyzer,
		ErrCloseAnalyzer,
		PoolSafeAnalyzer,
		MetricSafeAnalyzer,
		AllocGuardAnalyzer,
		LockOrderAnalyzer,
		GoLeakAnalyzer,
		ChanProtocolAnalyzer,
		CtxFlowAnalyzer,
	}
	sort.Slice(as, func(i, j int) bool { return as[i].Name < as[j].Name })
	return as
}

// Lookup returns the analyzer with the given name, or nil.
func Lookup(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// RunAnalyzer applies one per-package analyzer to one loaded package and
// returns its diagnostics sorted by position. Module-wide analyzers (Run
// nil) yield nothing here; they run through RunSuite.
func RunAnalyzer(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	if a.Run == nil {
		return nil, nil
	}
	var diags []Diagnostic
	pass := &Pass{
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		analyzer: a,
		diags:    &diags,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
	}
	sortDiagnostics(diags)
	return diags, nil
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
