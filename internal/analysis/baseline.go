package analysis

import (
	"bufio"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strings"
)

// Baseline is a checked-in set of accepted findings. Entries match on
// analyzer, module-relative file, and message — deliberately not on line
// numbers, so unrelated edits above an accepted finding do not churn the
// file. An empty baseline accepts nothing; the repo's lmvet.baseline is
// expected to stay empty, existing so the comparison machinery is always
// exercised and a future accepted finding has a place to live.
type Baseline struct {
	entries map[baselineKey]bool
	// dirEntries is the fallback index keyed on the entry's directory
	// instead of its file, so a finding still matches after the file it
	// lives in is renamed within its package.
	dirEntries map[baselineKey]bool
}

type baselineKey struct {
	analyzer string
	file     string
	message  string
}

// dirKey rewrites a key's file field to its slash-form directory.
func dirKey(k baselineKey) baselineKey {
	k.file = filepath.ToSlash(filepath.Dir(k.file))
	return k
}

// baselineSep separates the three fields of one entry line.
const baselineSep = "\t"

// ParseBaseline reads a baseline file: one tab-separated
// "analyzer<TAB>file<TAB>message" entry per line, with blank lines and
// #-comments skipped.
func ParseBaseline(r io.Reader) (*Baseline, error) {
	b := &Baseline{
		entries:    make(map[baselineKey]bool),
		dirEntries: make(map[baselineKey]bool),
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), "\r\n")
		if strings.TrimSpace(line) == "" || strings.HasPrefix(strings.TrimSpace(line), "#") {
			continue
		}
		parts := strings.SplitN(line, baselineSep, 3)
		if len(parts) != 3 {
			return nil, fmt.Errorf("baseline line %d: want analyzer<TAB>file<TAB>message, got %q", lineNo, line)
		}
		k := baselineKey{parts[0], filepath.ToSlash(parts[1]), parts[2]}
		b.entries[k] = true
		b.dirEntries[dirKey(k)] = true
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b, nil
}

// Len returns the number of accepted entries.
func (b *Baseline) Len() int { return len(b.entries) }

// Matches reports whether d is accepted by the baseline. moduleDir
// anchors the relative path the baseline stores. An exact
// analyzer+file+message match wins; failing that, the entry still
// matches if an accepted finding with the same analyzer and message
// lives in the same directory — so moving a file within its package
// does not resurrect its accepted findings.
func (b *Baseline) Matches(d Diagnostic, moduleDir string) bool {
	k := baselineKey{d.Analyzer, relPath(moduleDir, d.Pos.Filename), d.Message}
	if b.entries[k] {
		return true
	}
	return b.dirEntries[dirKey(k)]
}

// Filter splits diagnostics into kept (new) and baselined (accepted).
func (b *Baseline) Filter(ds []Diagnostic, moduleDir string) (kept, baselined []Diagnostic) {
	for _, d := range ds {
		if b.Matches(d, moduleDir) {
			baselined = append(baselined, d)
		} else {
			kept = append(kept, d)
		}
	}
	return kept, baselined
}

// FormatBaseline renders diagnostics as a baseline file body, entries
// deduplicated and sorted for stable diffs.
func FormatBaseline(ds []Diagnostic, moduleDir string) string {
	var sb strings.Builder
	sb.WriteString("# lmvet baseline — accepted findings.\n")
	sb.WriteString("# One entry per line: analyzer<TAB>file<TAB>message (line numbers\n")
	sb.WriteString("# intentionally omitted). Regenerate with: lmvet -baseline <path> -write-baseline ./...\n")
	seen := make(map[string]bool)
	var lines []string
	for _, d := range ds {
		line := d.Analyzer + baselineSep + relPath(moduleDir, d.Pos.Filename) + baselineSep + d.Message
		if !seen[line] {
			seen[line] = true
			lines = append(lines, line)
		}
	}
	sort.Strings(lines)
	for _, line := range lines {
		sb.WriteString(line)
		sb.WriteString("\n")
	}
	return sb.String()
}

// relPath renders file relative to moduleDir with forward slashes,
// falling back to the absolute path outside the module.
func relPath(moduleDir, file string) string {
	if moduleDir != "" {
		if rel, err := filepath.Rel(moduleDir, file); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(file)
}
