package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ChanProtocolAnalyzer enforces the channel ownership protocol over the
// goflow summaries: the sender owns the close, a channel closes once,
// nothing sends after close, and completion signals are consumed, not
// polled away. Four rules:
//
//   - close by non-sender: a scope (the spawner's flow or one goroutine)
//     closes a channel whose sends all happen in other scopes, without
//     first joining them (WaitGroup.Wait in the closing scope). A send
//     racing the close panics. Closes of channels nothing sends on are
//     the done-broadcast idiom and stay silent;
//   - double close: two unconditional closes of the same channel in one
//     linear scope, a close inside a loop the channel was made outside
//     of, or a close followed by a call to a callee that closes its
//     parameter (reported with the witness chain);
//   - send after close: an unconditional send (direct, or via a callee's
//     parameter effects) positioned after an unconditional close in the
//     same scope — a guaranteed panic. Deferred closes run at scope exit
//     and cannot precede body sends;
//   - select-default completion drop: a select with a default arm and a
//     comma-ok receive case — the shape of the fixed lmmonitor race. If
//     the completion close lands after the poll, the default arm runs
//     instead and the signal is lost; fatal when the default body exits
//     or the select never re-polls (outside a loop).
//
// The linear rules only trust unconditional, straight-line events —
// branch-dependent closes are the author's protocol to get right — so
// every report here is a guaranteed-order defect, not a maybe.
var ChanProtocolAnalyzer = &Analyzer{
	Name:      "chanprotocol",
	Doc:       "enforces channel ownership: close by the sender only, close once, never send after close, never default-poll away a completion signal",
	RunModule: runChanProtocol,
}

func runChanProtocol(mp *ModulePass) error {
	ci := concInfoOf(mp.Prog)
	for _, node := range mp.Prog.Nodes() {
		if !mp.requested(node.Pkg) {
			continue
		}
		fc := ci.funcs[node]
		if fc == nil {
			continue
		}
		checkLinearProtocol(mp, ci, fc)
		checkCloseOwnership(mp, ci, fc)
		checkSelectDefaultDrop(mp, fc)
	}
	return nil
}

// simScope returns the linear-simulation scope key for an op: nil for
// the declaration's own flow, the literal for ops directly inside a
// spawned literal, and notLinear for ops in non-spawned literals (their
// execution time is unknown).
var notLinear = new(ast.FuncLit)

func simScope(op *chanOp) *ast.FuncLit {
	if op.lit == nil {
		return nil
	}
	if op.lit == op.goLit {
		return op.lit
	}
	return notLinear
}

// trackable reports whether ch has stable identity for protocol rules:
// made locally or received as a parameter, and never escaped.
func trackable(fc *funcConc, ch *types.Var) bool {
	if ch == nil || fc.escaped[ch] {
		return false
	}
	if fc.madeAt[ch] != nil {
		return true
	}
	sig := fc.node.Func.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i) == ch {
			return true
		}
	}
	return false
}

// checkLinearProtocol runs the position-ordered simulation per scope:
// double close, close-in-loop, and send-after-close.
func checkLinearProtocol(mp *ModulePass, ci *concInfo, fc *funcConc) {
	type closeState struct {
		op    *chanOp
		chain string // witness chain when the close came via a callee
	}
	closed := make(map[*ast.FuncLit]map[*types.Var]closeState)
	stateFor := func(scope *ast.FuncLit) map[*types.Var]closeState {
		m := closed[scope]
		if m == nil {
			m = make(map[*types.Var]closeState)
			closed[scope] = m
		}
		return m
	}

	for k := range fc.ops {
		op := &fc.ops[k]
		if !trackable(fc, op.ch) {
			continue
		}
		scope := simScope(op)
		if scope == notLinear {
			continue
		}
		st := stateFor(scope)

		switch op.kind {
		case opClose:
			if op.loop != nil {
				made := fc.madeAt[op.ch]
				if made == nil || made.loop != op.loop {
					mp.Reportf(op.pos,
						"channel %s is closed inside a loop but made outside it: the second iteration closes a closed channel and panics; make the channel per iteration or close it after the loop",
						op.ch.Name())
				}
			}
			if !op.uncond || op.deferred {
				continue
			}
			if prev, dup := st[op.ch]; dup {
				mp.Reportf(op.pos,
					"second close of %s: already closed at %s%s; closing a closed channel panics — close exactly once, from one owner",
					op.ch.Name(), posLabel(mp, prev.op.pos), prev.chain)
				continue
			}
			st[op.ch] = closeState{op: op}
		case opSend:
			if op.sel != nil || !op.uncond {
				continue
			}
			if prev, ok := st[op.ch]; ok {
				mp.Reportf(op.pos,
					"send on %s after it was closed at %s%s: a send on a closed channel panics; send before closing, or hand ownership of the close to the sender",
					op.ch.Name(), posLabel(mp, prev.op.pos), prev.chain)
			}
		case opPass:
			if !op.uncond {
				continue
			}
			pe := ci.paramEffects(op.callee)
			if op.argIdx >= len(pe) {
				continue
			}
			bits := pe[op.argIdx].bits
			if prev, ok := st[op.ch]; ok && bits&effAnySend != 0 {
				bit := effSend
				if bits&effSend == 0 {
					bit = effSelectSend
				}
				names, pos := ci.effChain(op.callee, op.argIdx, bit)
				mp.Reportf(op.pos,
					"call can send on %s after it was closed at %s: %s ← send (%s); a send on a closed channel panics",
					op.ch.Name(), posLabel(mp, prev.op.pos), strings.Join(names, " ← "), posLabel(mp, pos))
			}
			if bits&effClose != 0 {
				if prev, dup := st[op.ch]; dup {
					names, pos := ci.effChain(op.callee, op.argIdx, effClose)
					mp.Reportf(op.pos,
						"call closes %s again: already closed at %s; %s ← close (%s); closing a closed channel panics",
						op.ch.Name(), posLabel(mp, prev.op.pos), strings.Join(names, " ← "), posLabel(mp, pos))
				} else {
					names, _ := ci.effChain(op.callee, op.argIdx, effClose)
					st[op.ch] = closeState{op: op, chain: " via " + strings.Join(names, " ← ")}
				}
			}
		}
	}
}

// checkCloseOwnership implements close-by-non-sender across scopes.
func checkCloseOwnership(mp *ModulePass, ci *concInfo, fc *funcConc) {
	for _, ch := range fc.vars {
		if !trackable(fc, ch) {
			continue
		}
		// Partition sends and closes by goroutine scope (goLit: nil means
		// the spawner side, literals are individual goroutines).
		sendScopes := make(map[*ast.FuncLit]bool)
		var firstSend *chanOp
		var sendChain string
		var closes []*chanOp
		closeChains := make(map[*chanOp]string)
		for k := range fc.ops {
			op := &fc.ops[k]
			if op.ch != ch {
				continue
			}
			switch op.kind {
			case opSend:
				sendScopes[op.goLit] = true
				if firstSend == nil {
					firstSend = op
				}
			case opClose:
				closes = append(closes, op)
			case opPass:
				pe := ci.paramEffects(op.callee)
				if op.argIdx >= len(pe) {
					continue
				}
				bits := pe[op.argIdx].bits
				if bits&effAnySend != 0 {
					sendScopes[op.goLit] = true
					if firstSend == nil {
						firstSend = op
						bit := effSend
						if bits&effSend == 0 {
							bit = effSelectSend
						}
						names, _ := ci.effChain(op.callee, op.argIdx, bit)
						sendChain = " via " + strings.Join(names, " ← ")
					}
				}
				if bits&effClose != 0 {
					closes = append(closes, op)
					names, _ := ci.effChain(op.callee, op.argIdx, effClose)
					closeChains[op] = " via " + strings.Join(names, " ← ")
				}
			}
		}
		if len(sendScopes) == 0 {
			continue // close-only channels are the done-broadcast idiom
		}
		for _, cl := range closes {
			if sendScopes[cl.goLit] {
				continue // the closing scope also sends: sender-side close
			}
			if joinedBeforeClose(fc, cl) {
				continue // close happens after WaitGroup.Wait: senders done
			}
			mp.Reportf(cl.pos,
				"close(%s)%s by a non-sender: sends happen in another goroutine (%s%s); a send racing this close panics — close from the sending side, or join the senders (WaitGroup.Wait) before closing",
				ch.Name(), closeChains[cl], posLabel(mp, firstSend.pos), sendChain)
		}
	}
}

// joinedBeforeClose reports whether the closing scope waits on a
// WaitGroup before the close executes — the collector idiom
// `go func(){ wg.Wait(); close(ch) }()` or a Wait preceding the close in
// the spawner. A deferred close runs at scope exit, after any Wait.
func joinedBeforeClose(fc *funcConc, cl *chanOp) bool {
	for _, w := range fc.wgs {
		if w.name != "Wait" || w.goLit != cl.goLit {
			continue
		}
		if cl.deferred || w.pos < cl.pos {
			return true
		}
	}
	return false
}

// checkSelectDefaultDrop implements the lmmonitor-race rule.
func checkSelectDefaultDrop(mp *ModulePass, fc *funcConc) {
	for _, ss := range fc.sels {
		if !ss.hasDefault || !ss.commaOkRecv {
			continue
		}
		if !ss.defaultExits && ss.inLoop {
			continue // an empty default in a loop re-polls next iteration
		}
		ch := "the channel"
		if ss.commaOkChan != nil {
			ch = ss.commaOkChan.Name()
		}
		mp.Reportf(ss.sel.Pos(),
			"select with a default arm can drop the completion signal on %s: a close or send landing after this poll is never consumed and the end-of-stream is misread (the lmmonitor interrupt-race shape); remove the default arm or drain %s before exiting",
			ch, ch)
	}
}
