package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// This file is the intraprocedural dataflow layer the module-wide
// allocation and lock-order analyzers build on: per-function def-use
// chains, value provenance, and a conservative escape lattice — all
// computed over go/ast + go/types with no SSA form, consistent with the
// suite's stdlib-only rule.
//
// The lattice is deliberately three-valued and monotone:
//
//	EscNone < EscArg < EscHeap
//
// EscNone values never leave the frame (safe to stack-allocate), EscArg
// values flow into a call (the callee may retain them), and EscHeap
// values observably outlive the frame (returned, stored through a
// pointer/field/map/slice, sent on a channel, or captured by a closure).
// Joins only move up the lattice, so one forward pass plus an alias
// worklist reaches the fixed point.

// hotPathMarker is the annotation that roots the allocguard analysis: a
// doc-comment line beginning "//lmvet:hotpath" declares the function —
// and everything statically reachable from it — allocation-free.
const hotPathMarker = "lmvet:hotpath"

// HasHotPathDirective reports whether the declaration's doc comment
// carries an //lmvet:hotpath line.
func HasHotPathDirective(fd *ast.FuncDecl) bool {
	if fd == nil || fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, "//"+hotPathMarker) {
			return true
		}
	}
	return false
}

// EscapeClass is the escape lattice.
type EscapeClass uint8

const (
	// EscNone: the value provably stays within the frame.
	EscNone EscapeClass = iota
	// EscArg: the value flows into a call and may be retained.
	EscArg
	// EscHeap: the value outlives the frame.
	EscHeap
)

// String renders the class for diagnostics and tests.
func (e EscapeClass) String() string {
	switch e {
	case EscNone:
		return "none"
	case EscArg:
		return "arg"
	default:
		return "heap"
	}
}

// Provenance classifies where a variable's value comes from, resolved
// through this function's def chain only.
type Provenance uint8

const (
	// ProvUnknown: no single classifiable definition.
	ProvUnknown Provenance = iota
	// ProvParam: the variable is (or aliases) a parameter — storage the
	// caller owns.
	ProvParam
	// ProvMakeCap: make([]T, ..., n) with an explicit capacity — the
	// author sized the buffer.
	ProvMakeCap
	// ProvMakeNoCap: make with no capacity argument.
	ProvMakeNoCap
	// ProvReslice: a reslice such as buf[:0] — reuse of existing storage.
	ProvReslice
	// ProvComposite: a composite literal.
	ProvComposite
	// ProvCall: the result of some call.
	ProvCall
)

// String renders the provenance for diagnostics and tests.
func (p Provenance) String() string {
	switch p {
	case ProvParam:
		return "param"
	case ProvMakeCap:
		return "make(cap)"
	case ProvMakeNoCap:
		return "make"
	case ProvReslice:
		return "reslice"
	case ProvComposite:
		return "composite"
	case ProvCall:
		return "call"
	default:
		return "unknown"
	}
}

// FuncFlow is the dataflow summary of one function body: definitions,
// uses, provenance, and the escape class of every pointer-like local.
type FuncFlow struct {
	info *types.Info

	// defs maps each local variable to the expressions assigned to it,
	// in source order (the def half of the def-use chains).
	defs map[*types.Var][]ast.Expr
	// uses maps each local variable to the identifiers that read it (the
	// use half of the def-use chains).
	uses map[*types.Var][]*ast.Ident
	// escape is the computed escape class per variable; absent means
	// EscNone.
	escape map[*types.Var]EscapeClass
	// params holds the function's parameters (and receiver).
	params map[*types.Var]bool
}

// Escape returns v's computed escape class.
func (f *FuncFlow) Escape(v *types.Var) EscapeClass { return f.escape[v] }

// Defs returns the expressions assigned to v, in source order.
func (f *FuncFlow) Defs(v *types.Var) []ast.Expr { return f.defs[v] }

// Uses returns the identifiers reading v, in source order.
func (f *FuncFlow) Uses(v *types.Var) []*ast.Ident { return f.uses[v] }

// IsParam reports whether v is a parameter or the receiver.
func (f *FuncFlow) IsParam(v *types.Var) bool { return f.params[v] }

// pointerLike reports whether values of type t carry a reference to
// storage (so escaping matters): pointers, slices, maps, channels,
// functions, interfaces, and composites containing them.
func pointerLike(t types.Type) bool {
	return pointerLikeRec(t, make(map[types.Type]bool))
}

func pointerLikeRec(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer || u.Kind() == types.String
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if pointerLikeRec(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return pointerLikeRec(u.Elem(), seen)
	}
	return false
}

// pointerShaped reports whether a value of type t is represented as a
// single pointer word, so storing it into an interface boxes nothing:
// pointers, channels, maps, functions, and unsafe.Pointer. Interfaces
// convert to interfaces without allocating either.
func pointerShaped(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// BuildFuncFlow computes the dataflow summary of fd's body.
func BuildFuncFlow(info *types.Info, fd *ast.FuncDecl) *FuncFlow {
	f := &FuncFlow{
		info:   info,
		defs:   make(map[*types.Var][]ast.Expr),
		uses:   make(map[*types.Var][]*ast.Ident),
		escape: make(map[*types.Var]EscapeClass),
		params: make(map[*types.Var]bool),
	}
	if obj, ok := info.Defs[fd.Name].(*types.Func); ok {
		sig := obj.Type().(*types.Signature)
		if r := sig.Recv(); r != nil {
			f.params[r] = true
		}
		for i := 0; i < sig.Params().Len(); i++ {
			f.params[sig.Params().At(i)] = true
		}
	}
	if fd.Body == nil {
		return f
	}
	f.collect(fd.Body)
	f.propagateAliases()
	return f
}

// localVar resolves an expression to the local variable it reads, nil
// otherwise.
func (f *FuncFlow) localVar(e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if v, ok := f.info.ObjectOf(id).(*types.Var); ok && !v.IsField() && v.Pkg() != nil {
		return v
	}
	return nil
}

// raise joins v's escape class up the lattice.
func (f *FuncFlow) raise(v *types.Var, c EscapeClass) {
	if v == nil {
		return
	}
	if c > f.escape[v] {
		f.escape[v] = c
	}
}

// escapeExpr marks every local variable read by e with class c. It looks
// through unary &, reslices, and parens — the forms that keep the same
// backing storage visible.
func (f *FuncFlow) escapeExpr(e ast.Expr, c EscapeClass) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		f.raise(f.localVar(e), c)
	case *ast.UnaryExpr:
		if e.Op.String() == "&" {
			f.escapeExpr(e.X, c)
		}
	case *ast.SliceExpr:
		f.escapeExpr(e.X, c)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			f.escapeExpr(el, c)
		}
	}
}

// collect performs the single forward pass: record defs and uses, and
// seed escape classes at every sink.
func (f *FuncFlow) collect(body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if v := f.localVar(lhs); v != nil && len(n.Rhs) == len(n.Lhs) {
					if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
						// A store into a package-level variable publishes
						// the RHS beyond the frame.
						f.escapeExpr(n.Rhs[i], EscHeap)
					} else {
						f.defs[v] = append(f.defs[v], n.Rhs[i])
					}
				}
				// A store through a field, index, or dereference
				// publishes the RHS beyond the frame.
				switch ast.Unparen(lhs).(type) {
				case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
					if len(n.Rhs) == len(n.Lhs) {
						f.escapeExpr(n.Rhs[i], EscHeap)
					}
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if v, ok := f.info.Defs[name].(*types.Var); ok && i < len(n.Values) {
					f.defs[v] = append(f.defs[v], n.Values[i])
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				f.escapeExpr(r, EscHeap)
			}
		case *ast.SendStmt:
			f.escapeExpr(n.Value, EscHeap)
		case *ast.CallExpr:
			for _, arg := range n.Args {
				f.escapeExpr(arg, EscArg)
			}
		case *ast.FuncLit:
			// Free variables captured by a closure may outlive the frame
			// whenever the closure does; without tracking the closure
			// itself, the conservative answer is heap.
			f.captures(n)
		case *ast.Ident:
			if v, ok := f.info.Uses[n].(*types.Var); ok && !v.IsField() {
				f.uses[v] = append(f.uses[v], n)
			}
		}
		return true
	})
}

// captures raises every free variable of the closure to EscHeap.
func (f *FuncFlow) captures(lit *ast.FuncLit) {
	declared := make(map[*types.Var]bool)
	ast.Inspect(lit, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := f.info.Defs[id].(*types.Var); ok {
				declared[v] = true
			}
		}
		return true
	})
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := f.info.Uses[id].(*types.Var); ok && !v.IsField() && !declared[v] {
				f.raise(v, EscHeap)
			}
		}
		return true
	})
}

// propagateAliases closes escape over direct aliases (y := x): if y
// escapes, so does x. A small worklist suffices — alias chains are
// shallow and the lattice has height two.
func (f *FuncFlow) propagateAliases() {
	for changed := true; changed; {
		changed = false
		for v, rhss := range f.defs {
			c := f.escape[v]
			if c == EscNone {
				continue
			}
			for _, rhs := range rhss {
				if src := f.localVar(rhs); src != nil && f.escape[src] < c {
					f.escape[src] = c
					changed = true
				}
			}
		}
	}
}

// ProvenanceOf resolves the provenance of expression e: literal forms
// classify directly, identifiers resolve through the def chain (joining
// over multiple defs — conflicting defs degrade to ProvUnknown).
func (f *FuncFlow) ProvenanceOf(e ast.Expr) Provenance {
	return f.provenanceOf(e, make(map[*types.Var]bool))
}

// isBuiltin reports whether id resolves to a universe builtin (append,
// make, new, ...) rather than a declared function shadowing the name.
func isBuiltin(info *types.Info, id *ast.Ident) bool {
	_, ok := info.Uses[id].(*types.Builtin)
	return ok
}

func (f *FuncFlow) provenanceOf(e ast.Expr, seen map[*types.Var]bool) Provenance {
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "make" {
			if isBuiltin(f.info, id) {
				if len(e.Args) >= 3 {
					return ProvMakeCap
				}
				return ProvMakeNoCap
			}
		}
		return ProvCall
	case *ast.SliceExpr:
		return ProvReslice
	case *ast.CompositeLit:
		return ProvComposite
	case *ast.Ident:
		v := f.localVar(e)
		if v == nil {
			return ProvUnknown
		}
		if f.params[v] {
			return ProvParam
		}
		if seen[v] {
			return ProvUnknown
		}
		seen[v] = true
		prov := Provenance(0xff) // sentinel: nothing joined yet
		for _, rhs := range f.defs[v] {
			p := f.provenanceOf(rhs, seen)
			if p == ProvCall && isSelfAppend(f.info, rhs, v) {
				continue // x = append(x, ...) keeps x's own provenance
			}
			if prov == 0xff {
				prov = p
			} else if prov != p {
				return ProvUnknown
			}
		}
		if prov == 0xff {
			return ProvUnknown
		}
		return prov
	}
	return ProvUnknown
}

// isSelfAppend reports whether rhs is append(v, ...) — the idiomatic
// grow-in-place reassignment, which should not disturb v's provenance.
func isSelfAppend(info *types.Info, rhs ast.Expr, v *types.Var) bool {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" || !isBuiltin(info, id) {
		return false
	}
	first, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	return ok && info.ObjectOf(first) == v
}
