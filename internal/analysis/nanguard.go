package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// NaNGuardAnalyzer flags float-slice sorts and min/max reductions in
// functions that contain no reachable NaN check.
//
// Rationale: sort's comparison-based algorithms place NaNs at arbitrary
// positions (every comparison involving NaN is false), so a median or
// quantile read from a sorted slice that still contains NaN is
// position-dependent garbage. Likewise a running min/max reduction gives
// a result that depends on where the NaN sits: seeded with NaN it stays
// NaN, seeded before the NaN it silently skips it. A function that
// guards with math.IsNaN (or delegates to an *IgnoringNaN helper) makes
// its NaN policy explicit and is not flagged.
var NaNGuardAnalyzer = &Analyzer{
	Name: "nanguard",
	Doc:  "flags float sorts and min/max reductions without a reachable NaN check",
	Run:  runNaNGuard,
}

func runNaNGuard(pass *Pass) error {
	for _, fd := range funcDecls(pass) {
		if funcMentionsNaN(fd) {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkNaNSortCall(pass, n)
			case *ast.IfStmt:
				checkMinMaxReduction(pass, n)
			}
			return true
		})
	}
	return nil
}

// funcMentionsNaN reports whether fd calls anything NaN-related:
// math.IsNaN itself, or a helper whose name mentions NaN
// (MedianIgnoringNaN, dropNaN, ...).
func funcMentionsNaN(fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if strings.Contains(calleeName(call), "NaN") {
			found = true
			return false
		}
		return true
	})
	return found
}

func checkNaNSortCall(pass *Pass, call *ast.CallExpr) {
	pkgPath, name, ok := pkgFunc(pass, call)
	if !ok {
		return
	}
	switch {
	case pkgPath == "sort" && name == "Float64s",
		pkgPath == "slices" && (name == "Sort" || name == "Min" || name == "Max"):
		if len(call.Args) >= 1 && sliceOfFloat(pass.TypeOf(call.Args[0])) {
			pass.Reportf(call.Pos(), "%s.%s on a float slice with no NaN check in this function; NaNs end up in arbitrary positions", pkgPath, name)
		}
	case pkgPath == "sort" && (name == "Slice" || name == "SliceStable" || name == "SliceIsSorted"):
		if len(call.Args) == 2 && lessFuncComparesFloats(pass, call.Args[1]) {
			pass.Reportf(call.Pos(), "sort.%s with a float less-func and no NaN check in this function; NaNs end up in arbitrary positions", name)
		}
	}
}

func sliceOfFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	return ok && isFloat(s.Elem())
}

// lessFuncComparesFloats reports whether arg is a func literal whose body
// performs an ordered comparison between float operands.
func lessFuncComparesFloats(pass *Pass, arg ast.Expr) bool {
	lit, ok := ast.Unparen(arg).(*ast.FuncLit)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if cmp, ok := n.(*ast.BinaryExpr); ok && isOrderedOp(cmp.Op) {
			if isFloat(pass.TypeOf(cmp.X)) || isFloat(pass.TypeOf(cmp.Y)) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func isOrderedOp(op token.Token) bool {
	switch op {
	case token.LSS, token.GTR, token.LEQ, token.GEQ:
		return true
	}
	return false
}

// checkMinMaxReduction flags the `if v < m { m = v }` pattern on floats:
// an if whose condition is an ordered float comparison and whose body is
// a single assignment of one comparison operand to the other.
func checkMinMaxReduction(pass *Pass, ifs *ast.IfStmt) {
	cmp, ok := ifs.Cond.(*ast.BinaryExpr)
	if !ok || !isOrderedOp(cmp.Op) || ifs.Else != nil {
		return
	}
	if !isFloat(pass.TypeOf(cmp.X)) && !isFloat(pass.TypeOf(cmp.Y)) {
		return
	}
	if len(ifs.Body.List) != 1 {
		return
	}
	asg, ok := ifs.Body.List[0].(*ast.AssignStmt)
	if !ok || asg.Tok != token.ASSIGN || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return
	}
	lhs, rhs := types.ExprString(asg.Lhs[0]), types.ExprString(asg.Rhs[0])
	x, y := types.ExprString(cmp.X), types.ExprString(cmp.Y)
	if (lhs == x && rhs == y) || (lhs == y && rhs == x) {
		pass.Reportf(ifs.Pos(), "min/max reduction over floats with no NaN check in this function; result depends on NaN position")
	}
}
