package analysis

import (
	"go/ast"
	"go/types"
)

// isFloat reports whether t's core type is a floating-point kind.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// containsFloat reports whether t is a comparable composite (struct or
// array) that transitively contains a floating-point field or element.
// Plain float types return false — they are handled directly.
func containsFloat(t types.Type) bool {
	return containsFloatRec(t, make(map[types.Type]bool), false)
}

func containsFloatRec(t types.Type, seen map[types.Type]bool, inside bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return inside && u.Info()&types.IsFloat != 0
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsFloatRec(u.Field(i).Type(), seen, true) {
				return true
			}
		}
	case *types.Array:
		return containsFloatRec(u.Elem(), seen, true)
	}
	return false
}

// containsLock reports whether t (not behind a pointer) transitively
// contains a sync primitive that must not be copied.
func containsLock(t types.Type) bool {
	return containsLockRec(t, make(map[types.Type]bool))
}

func containsLockRec(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Pool", "Map":
				return true
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLockRec(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLockRec(u.Elem(), seen)
	}
	return false
}

// pkgFunc resolves a call to a package-level function and returns the
// defining package path and function name (e.g. "sort", "Float64s").
// It returns ok=false for method calls, local closures, conversions,
// and builtins.
func pkgFunc(pass *Pass, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	return resolvePkgFunc(pass.Info, call)
}

// resolvePkgFunc is pkgFunc over a bare *types.Info, for analyses (the
// call-graph taint engine) that walk packages outside a per-package Pass.
func resolvePkgFunc(info *types.Info, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if sel, isSel := info.Selections[fun]; isSel && sel != nil {
			return "", "", false // method or field call
		}
		obj := info.ObjectOf(fun.Sel)
		fn, isFn := obj.(*types.Func)
		if !isFn || fn.Pkg() == nil {
			return "", "", false
		}
		return fn.Pkg().Path(), fn.Name(), true
	case *ast.Ident:
		obj := info.ObjectOf(fun)
		fn, isFn := obj.(*types.Func)
		if !isFn || fn.Pkg() == nil {
			return "", "", false
		}
		if fn.Type().(*types.Signature).Recv() != nil {
			return "", "", false
		}
		return fn.Pkg().Path(), fn.Name(), true
	}
	return "", "", false
}

// typeOf returns the type of expression e from info, or nil if unknown.
func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := info.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// calleeName returns the bare name of whatever a call invokes: the
// method or function name for selector calls and plain calls, "" for
// indirect calls through arbitrary expressions.
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		return fun.Sel.Name
	case *ast.Ident:
		return fun.Name
	}
	return ""
}

// funcDecls yields every function or method declaration with a body in
// the pass's files.
func funcDecls(pass *Pass) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				out = append(out, fd)
			}
		}
	}
	return out
}
