package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// MetricSafeAnalyzer enforces the telemetry package's usage contract:
//
//   - Registration (Registry.Counter/Gauge/Histogram/GaugeFunc) must not
//     run inside a loop. Registration is get-or-create under the
//     registry's lock; on a hot loop it turns a lock-free metric update
//     into a serialised map lookup, which is exactly the overhead the
//     atomic metric types exist to avoid. Register once at construction
//     time and hold the returned pointer.
//   - Metric state must move by pointer. Counter, Gauge, Histogram, and
//     Registry all embed atomics (or a mutex); a by-value copy or a
//     dereference forks that state, so updates land on a clone the
//     registry never snapshots — counts silently split.
var MetricSafeAnalyzer = &Analyzer{
	Name: "metricsafe",
	Doc:  "flags metric registration inside loops and by-value copies of telemetry metric state",
	Run:  runMetricSafe,
}

func runMetricSafe(pass *Pass) error {
	for _, fd := range funcDecls(pass) {
		checkMetricCopies(pass, fd)
		if fd.Body != nil {
			checkLoopRegistration(pass, fd.Body, false)
		}
	}
	return nil
}

// telemetryMetricType returns the type name when t (possibly behind one
// pointer) is a metric-state type of a telemetry package — the internal
// one or any package named telemetry.
func telemetryMetricType(t types.Type) (string, bool) {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	o := named.Obj()
	if o.Pkg() == nil {
		return "", false
	}
	if p := o.Pkg().Path(); p != "telemetry" && !strings.HasSuffix(p, "/telemetry") {
		return "", false
	}
	switch o.Name() {
	case "Counter", "Gauge", "Histogram", "Registry":
		return o.Name(), true
	}
	return "", false
}

// containsMetric reports whether t holds telemetry metric state by value
// (directly, or through a struct field or array element).
func containsMetric(t types.Type) bool {
	if _, ok := telemetryMetricType(t); ok {
		if _, isPtr := t.(*types.Pointer); !isPtr {
			return true
		}
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsMetric(u.Field(i).Type()) {
				return true
			}
		}
	case *types.Array:
		return containsMetric(u.Elem())
	}
	return false
}

// checkMetricCopies flags receivers, parameters, results, and explicit
// dereferences that transport metric state by value.
func checkMetricCopies(pass *Pass, fd *ast.FuncDecl) {
	check := func(fl *ast.FieldList, kind string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := pass.TypeOf(field.Type)
			if t == nil {
				continue
			}
			if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
				continue
			}
			if containsMetric(t) {
				qual := func(p *types.Package) string {
					if p == pass.Pkg {
						return ""
					}
					return p.Name()
				}
				pass.Reportf(field.Type.Pos(), "%s of type %s copies telemetry metric state by value; share by pointer", kind, types.TypeString(t, qual))
			}
		}
	}
	check(fd.Recv, "receiver")
	if fd.Type != nil {
		check(fd.Type.Params, "parameter")
		check(fd.Type.Results, "result")
	}
	if fd.Body == nil {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		star, ok := n.(*ast.StarExpr)
		if !ok {
			return true
		}
		tv, ok := pass.Info.Types[star]
		if !ok || !tv.IsValue() {
			return true // a *telemetry.Counter type expression, not a deref
		}
		if name, ok := telemetryMetricType(tv.Type); ok {
			pass.Reportf(star.Pos(), "dereferencing a *telemetry.%s copies its atomic state; keep the pointer", name)
		}
		return true
	})
}

// registrationCall returns the method name when call registers a metric
// on a telemetry Registry.
func registrationCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	switch sel.Sel.Name {
	case "Counter", "Gauge", "Histogram", "GaugeFunc":
	default:
		return "", false
	}
	t := pass.TypeOf(sel.X)
	if t == nil {
		return "", false
	}
	if name, ok := telemetryMetricType(t); ok && name == "Registry" {
		return sel.Sel.Name, true
	}
	return "", false
}

// checkLoopRegistration walks stmts, flagging registration calls that
// execute inside any enclosing for/range statement. Function literals
// reset the loop context — a callback defined in a loop runs later, and
// its own loops are checked independently.
func checkLoopRegistration(pass *Pass, body ast.Node, inLoop bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			if n.Init != nil {
				checkLoopRegistration(pass, n.Init, inLoop)
			}
			if n.Cond != nil {
				checkLoopRegistration(pass, n.Cond, inLoop)
			}
			if n.Post != nil {
				checkLoopRegistration(pass, n.Post, inLoop)
			}
			checkLoopRegistration(pass, n.Body, true)
			return false
		case *ast.RangeStmt:
			checkLoopRegistration(pass, n.X, inLoop)
			checkLoopRegistration(pass, n.Body, true)
			return false
		case *ast.FuncLit:
			checkLoopRegistration(pass, n.Body, false)
			return false
		case *ast.CallExpr:
			if method, ok := registrationCall(pass, n); ok && inLoop {
				pass.Reportf(n.Pos(), "metric registration (%s) inside a loop; register once at construction time and reuse the pointer", method)
			}
		}
		return true
	})
}
