package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the concurrency-lifecycle summary layer the goleak,
// chanprotocol, and ctxflow module analyzers build on — the concurrent
// sibling of the dataflow layer (dataflow.go). For every function in the
// module call graph it records, over go/ast + go/types only:
//
//   - goroutine spawn sites (literal or static callee, loop context);
//   - channel operations — make/send/recv/range/close and channels passed
//     to in-program callees — each tagged with its execution scope (the
//     spawner's linear flow vs a specific go-literal), select membership,
//     defer, loop, and branch conditionality;
//   - sync.WaitGroup Add/Done/Wait events;
//   - context.Context parameter usage;
//   - select-statement summaries (default arm, comma-ok completion
//     receives, ctx.Done arms);
//   - infinite wait-loops and whether any path exits them.
//
// Channel identity is the *types.Var of a local, parameter, or captured
// channel variable. Anything else — fields, globals, aliases, channels
// handed to dynamic or out-of-module callees — marks the variable escaped,
// and the analyzers treat escaped channels as having unknown counterparts.
// The lattice is the same deliberate under-approximation as the call
// graph's: every reported witness is a real, compilable path, at the cost
// of silence where identity is lost.
//
// Effects on channel-typed parameters propagate transitively over the
// call graph (chanEffect bits with per-bit witness links), so a blocking
// send three helpers deep still surfaces at the spawn site that can leak,
// with a dettaint-style witness chain.

// chanEffect is a bit set describing what a function (transitively) does
// with one channel-typed parameter.
type chanEffect uint16

const (
	// effSend: a plain send outside any select — blocks until received.
	effSend chanEffect = 1 << iota
	// effSelectSend: a send as a select comm clause.
	effSelectSend
	// effRecv: a plain receive outside any select.
	effRecv
	// effSelectRecv: a receive as a select comm clause.
	effSelectRecv
	// effRangeRecv: for-range over the channel — drains until close.
	effRangeRecv
	// effClose: the channel is closed.
	effClose
	// effUnknown: the channel escapes analysis (stored, aliased, or
	// passed where the summary cannot follow).
	effUnknown
)

const effAnyRecv = effRecv | effSelectRecv | effRangeRecv
const effAnySend = effSend | effSelectSend

// chanOpKind enumerates the recorded channel operations.
type chanOpKind uint8

const (
	opMake chanOpKind = iota
	opSend
	opRecv
	opRangeRecv
	opClose
	// opPass: the channel is an argument to an in-program static callee;
	// the callee's parameter effects apply at the call site's scope.
	opPass
)

// chanOp is one channel operation in a function body, tagged with enough
// scope context for the lifecycle analyzers to reason about it.
type chanOp struct {
	kind chanOpKind
	// ch is the channel's variable identity; nil when unresolvable (field,
	// global, call result) — such ops only feed blocking-evidence checks.
	ch    *types.Var
	class string // display name: variable name, "x.field", or "channel"
	pos   token.Pos
	// lit is the innermost enclosing function literal, nil for the
	// declaration's own flow.
	lit *ast.FuncLit
	// goLit is the innermost enclosing go-spawned literal; ops with
	// goLit == lit (or lit == nil) execute in a known linear scope.
	goLit *ast.FuncLit
	// sel is the select statement this op is a comm clause of, if any.
	sel     *ast.SelectStmt
	commaOk bool
	// deferred marks `defer close(ch)` — it executes at scope exit.
	deferred bool
	// loop is the innermost enclosing for/range within the op's literal
	// scope (loops outside the literal don't re-execute its body).
	loop ast.Node
	// uncond marks ops at straight-line depth in their scope: not inside
	// any if/switch/select/loop. The protocol simulation (double close,
	// send-after-close) only trusts unconditional ops.
	uncond bool
	// buffered is set on opMake when a nonzero (or non-constant) capacity
	// was given.
	buffered bool
	// callee/argIdx/call describe an opPass.
	callee *FuncNode
	argIdx int
	call   *ast.CallExpr
}

// spawnSite is one `go` statement.
type spawnSite struct {
	pos token.Pos
	// lit is the spawned literal for `go func(){...}()`; nil for named
	// spawns.
	lit *ast.FuncLit
	// callee is the in-program static callee for `go pkg.F(...)`.
	callee *FuncNode
	call   *ast.CallExpr
	// outerLit / loop locate the go statement itself.
	outerLit *ast.FuncLit
	loop     ast.Node
}

// wgOp is one sync.WaitGroup method call.
type wgOp struct {
	pos   token.Pos
	name  string // Add, Done, Wait
	lit   *ast.FuncLit
	goLit *ast.FuncLit
	loop  ast.Node
}

// selectSummary describes one select statement for the lifecycle rules.
type selectSummary struct {
	sel     *ast.SelectStmt
	lit     *ast.FuncLit
	goLit   *ast.FuncLit
	clauses int
	inLoop  bool

	hasDefault   bool
	defaultPos   token.Pos
	defaultExits bool // the default body returns/branches/terminates

	commaOkRecv bool // some case is `v, ok := <-ch` (completion signal)
	commaOkPos  token.Pos
	commaOkChan *types.Var

	hasCtxDone bool // some case receives from a context's Done()
}

// waitLoop is an infinite `for {}` whose body blocks on channel traffic.
type waitLoop struct {
	pos   token.Pos
	lit   *ast.FuncLit
	goLit *ast.FuncLit
	exits bool // some path returns/breaks/terminates out of the loop
}

// bgCall is a call passing context.Background()/TODO() while the
// enclosing function has its own Context parameter in scope.
type bgCall struct {
	pos    token.Pos
	callee string // display name of the called function
	src    string // "context.Background" or "context.TODO"
}

// ctxUse summarises a function's relationship to its Context parameter.
type ctxUse struct {
	param *types.Var // first named context.Context parameter, or nil
	used  bool       // the parameter is read anywhere in the body
	bg    []bgCall
}

// funcConc is the per-function concurrency summary.
type funcConc struct {
	node      *FuncNode
	spawns    []spawnSite
	ops       []chanOp
	wgs       []wgOp
	sels      []*selectSummary
	selOf     map[*ast.SelectStmt]*selectSummary
	waitLoops []waitLoop
	ctx       ctxUse
	// vars lists distinct resolved channel vars in first-appearance order
	// (the analyzers' deterministic iteration order).
	vars    []*types.Var
	escaped map[*types.Var]bool
	madeAt  map[*types.Var]*chanOp
}

// effWitness records how a parameter effect arose: a direct op in the
// function (via == nil, pos set) or through a call passing the parameter
// on to via's viaArg-th parameter.
type effWitness struct {
	pos    token.Pos
	via    *FuncNode
	viaArg int
}

// paramEffect is the transitive effect set of one parameter, with one
// witness per effect bit.
type paramEffect struct {
	bits chanEffect
	wit  map[chanEffect]*effWitness
}

// concInfo is the module-wide concurrency summary, built once per Program
// and shared by the three lifecycle analyzers.
type concInfo struct {
	prog       *Program
	funcs      map[*FuncNode]*funcConc
	peMemo     map[*FuncNode][]paramEffect
	peVisiting map[*FuncNode]bool
}

// concInfoOf lazily builds (and caches on the Program) the concurrency
// summaries for every function node.
func concInfoOf(prog *Program) *concInfo {
	if prog.conc != nil {
		return prog.conc
	}
	ci := &concInfo{
		prog:       prog,
		funcs:      make(map[*FuncNode]*funcConc),
		peMemo:     make(map[*FuncNode][]paramEffect),
		peVisiting: make(map[*FuncNode]bool),
	}
	for _, n := range prog.Nodes() {
		ci.funcs[n] = buildFuncConc(ci, n)
	}
	prog.conc = ci
	return ci
}

// chanVarIdent resolves e to a channel-typed variable identifier,
// returning both the variable and the identifier (for accounting).
func chanVarIdent(info *types.Info, e ast.Expr) (*types.Var, *ast.Ident) {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil, nil
	}
	v, ok := info.ObjectOf(id).(*types.Var)
	if !ok || v.IsField() {
		return nil, nil
	}
	if _, ok := v.Type().Underlying().(*types.Chan); !ok {
		return nil, nil
	}
	return v, id
}

// chanClassOf renders a display name for a channel expression.
func chanClassOf(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		if x, ok := ast.Unparen(e.X).(*ast.Ident); ok {
			return x.Name + "." + e.Sel.Name
		}
		return e.Sel.Name
	}
	return "channel"
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "context" && n.Obj().Name() == "Context"
}

// isTerminalCall reports calls that never return: panic, os.Exit,
// runtime.Goexit, log.Fatal*.
func isTerminalCall(info *types.Info, call *ast.CallExpr) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" && isBuiltin(info, id) {
		return true
	}
	if p, name, ok := resolvePkgFunc(info, call); ok {
		switch {
		case p == "os" && name == "Exit":
			return true
		case p == "runtime" && name == "Goexit":
			return true
		case p == "log" && strings.HasPrefix(name, "Fatal"):
			return true
		}
	}
	return false
}

// bodyExits reports whether the statement list can transfer control out
// of its enclosing select/switch arm: a return, a labeled branch, a goto,
// or a terminating call. Unlabeled break/continue stay within the arm's
// enclosing construct and do not count.
func bodyExits(info *types.Info, stmts []ast.Stmt) bool {
	exits := false
	for _, s := range stmts {
		ast.Inspect(s, func(n ast.Node) bool {
			if exits {
				return false
			}
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.ReturnStmt:
				exits = true
			case *ast.BranchStmt:
				if n.Label != nil || n.Tok == token.GOTO {
					exits = true
				}
			case *ast.CallExpr:
				if isTerminalCall(info, n) {
					exits = true
				}
			}
			return !exits
		})
		if exits {
			break
		}
	}
	return exits
}

// loopExits reports whether control can leave the loop: a return, a
// labeled branch or goto, an unlabeled break at loop level, or a
// terminating call. Breaks swallowed by nested for/switch/select bodies
// do not count.
func loopExits(info *types.Info, loop *ast.ForStmt) bool {
	type posRange struct{ lo, hi token.Pos }
	var inner []posRange
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			inner = append(inner, posRange{n.Body.Pos(), n.Body.End()})
		case *ast.RangeStmt:
			inner = append(inner, posRange{n.Body.Pos(), n.Body.End()})
		case *ast.SwitchStmt:
			inner = append(inner, posRange{n.Body.Pos(), n.Body.End()})
		case *ast.TypeSwitchStmt:
			inner = append(inner, posRange{n.Body.Pos(), n.Body.End()})
		case *ast.SelectStmt:
			inner = append(inner, posRange{n.Body.Pos(), n.Body.End()})
		}
		return true
	})
	exits := false
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		if exits {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			exits = true
		case *ast.BranchStmt:
			if n.Label != nil || n.Tok == token.GOTO {
				exits = true
				break
			}
			if n.Tok == token.BREAK {
				covered := false
				for _, r := range inner {
					if r.lo <= n.Pos() && n.Pos() < r.hi {
						covered = true
						break
					}
				}
				if !covered {
					exits = true
				}
			}
		case *ast.CallExpr:
			if isTerminalCall(info, n) {
				exits = true
			}
		}
		return !exits
	})
	return exits
}

// wgMethodName matches a sync.WaitGroup method call.
func wgMethodName(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	selection, isMethod := info.Selections[sel]
	if !isMethod || selection == nil {
		return "", false
	}
	fn, isFn := selection.Obj().(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil || recvTypeName(recv.Type()) != "WaitGroup" {
		return "", false
	}
	switch fn.Name() {
	case "Add", "Done", "Wait":
		return fn.Name(), true
	}
	return "", false
}

// selComm tags a comm-clause operand with its select.
type selComm struct {
	sel     *ast.SelectStmt
	commaOk bool
}

// buildFuncConc collects node's concurrency summary in one source-order
// walk with an explicit ancestor stack.
func buildFuncConc(ci *concInfo, node *FuncNode) *funcConc {
	fc := &funcConc{
		node:    node,
		selOf:   make(map[*ast.SelectStmt]*selectSummary),
		escaped: make(map[*types.Var]bool),
		madeAt:  make(map[*types.Var]*chanOp),
	}
	info := node.Pkg.Info
	body := node.Decl.Body

	sig := node.Func.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if isContextType(p.Type()) && p.Name() != "" && p.Name() != "_" {
			fc.ctx.param = p
			break
		}
	}

	// Pre-pass: spawned literals and deferred calls.
	spawnedLits := make(map[*ast.FuncLit]bool)
	deferredCalls := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				spawnedLits[lit] = true
			}
		case *ast.DeferStmt:
			deferredCalls[n.Call] = true
		}
		return true
	})

	commSend := make(map[*ast.SendStmt]selComm)
	commRecv := make(map[*ast.UnaryExpr]selComm)
	accounted := make(map[*ast.Ident]bool)
	seenVar := make(map[*types.Var]bool)

	var stack []ast.Node

	// ctxOf reads the ancestor stack (excluding the current node at the
	// top) for the op's literal scope, loop, and branch conditionality.
	ctxOf := func() (lit, goLit *ast.FuncLit, loop ast.Node, uncond bool) {
		uncond = true
		crossedLit := false
		for i := len(stack) - 2; i >= 0; i-- {
			switch a := stack[i].(type) {
			case *ast.FuncLit:
				if !crossedLit {
					lit = a
					crossedLit = true
				}
				if goLit == nil && spawnedLits[a] {
					goLit = a
				}
			case *ast.ForStmt, *ast.RangeStmt:
				if !crossedLit {
					if loop == nil {
						loop = a
					}
					uncond = false
				}
			case *ast.IfStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
				if !crossedLit {
					uncond = false
				}
			}
		}
		return
	}

	addOp := func(op chanOp) *chanOp {
		lit, goLit, loop, uncond := ctxOf()
		op.lit, op.goLit, op.loop, op.uncond = lit, goLit, loop, uncond
		fc.ops = append(fc.ops, op)
		if op.ch != nil && !seenVar[op.ch] {
			seenVar[op.ch] = true
			fc.vars = append(fc.vars, op.ch)
		}
		return &fc.ops[len(fc.ops)-1]
	}

	// localTo reports whether v is declared within this declaration
	// (parameters, receiver, and body locals — including vars captured by
	// its literals, which share the same declaration range).
	localTo := func(v *types.Var) bool {
		return v.Pos() >= node.Decl.Pos() && v.Pos() < node.Decl.End()
	}

	markCtxDone := func(e ast.Expr, ss *selectSummary) {
		if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				if isContextType(typeOf(info, sel.X)) {
					ss.hasCtxDone = true
				}
			}
		}
	}

	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		switch n := n.(type) {
		case *ast.GoStmt:
			_, goLit, loop, _ := ctxOf()
			s := spawnSite{pos: n.Pos(), call: n.Call, loop: loop, outerLit: goLit}
			if fl, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				s.lit = fl
			} else if fn := StaticCallee(info, n.Call); fn != nil {
				s.callee = ci.prog.Funcs[fn]
			}
			fc.spawns = append(fc.spawns, s)

		case *ast.SelectStmt:
			lit, goLit, loop, _ := ctxOf()
			ss := &selectSummary{sel: n, lit: lit, goLit: goLit, inLoop: loop != nil, clauses: len(n.Body.List)}
			for _, cl := range n.Body.List {
				cc, ok := cl.(*ast.CommClause)
				if !ok {
					continue
				}
				if cc.Comm == nil {
					ss.hasDefault = true
					ss.defaultPos = cc.Pos()
					ss.defaultExits = bodyExits(info, cc.Body)
					continue
				}
				switch comm := cc.Comm.(type) {
				case *ast.SendStmt:
					commSend[comm] = selComm{sel: n}
				case *ast.ExprStmt:
					if u, ok := ast.Unparen(comm.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
						commRecv[u] = selComm{sel: n}
						markCtxDone(u.X, ss)
					}
				case *ast.AssignStmt:
					if len(comm.Rhs) == 1 {
						if u, ok := ast.Unparen(comm.Rhs[0]).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
							co := len(comm.Lhs) == 2
							commRecv[u] = selComm{sel: n, commaOk: co}
							if co && !ss.commaOkRecv {
								ss.commaOkRecv = true
								ss.commaOkPos = u.Pos()
								ss.commaOkChan, _ = chanVarIdent(info, u.X)
							}
							markCtxDone(u.X, ss)
						}
					}
				}
			}
			fc.sels = append(fc.sels, ss)
			fc.selOf[n] = ss

		case *ast.SendStmt:
			v, id := chanVarIdent(info, n.Chan)
			if id != nil {
				accounted[id] = true
			}
			sc := commSend[n]
			addOp(chanOp{kind: opSend, ch: v, class: chanClassOf(n.Chan), pos: n.Pos(), sel: sc.sel})

		case *ast.UnaryExpr:
			if n.Op != token.ARROW {
				break
			}
			v, id := chanVarIdent(info, n.X)
			if id != nil {
				accounted[id] = true
			}
			sc, inSel := commRecv[n]
			commaOk := sc.commaOk
			if !inSel && len(stack) >= 2 {
				if as, ok := stack[len(stack)-2].(*ast.AssignStmt); ok {
					commaOk = len(as.Lhs) == 2 && len(as.Rhs) == 1
				}
			}
			addOp(chanOp{kind: opRecv, ch: v, class: chanClassOf(n.X), pos: n.Pos(), sel: sc.sel, commaOk: commaOk})

		case *ast.RangeStmt:
			if t := typeOf(info, n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					v, id := chanVarIdent(info, n.X)
					if id != nil {
						accounted[id] = true
					}
					addOp(chanOp{kind: opRangeRecv, ch: v, class: chanClassOf(n.X), pos: n.Pos()})
				}
			}

		case *ast.BinaryExpr:
			// `ch == nil` / `ch != nil` is a benign read, not an escape.
			if n.Op == token.EQL || n.Op == token.NEQ {
				for _, side := range []ast.Expr{n.X, n.Y} {
					if _, id := chanVarIdent(info, side); id != nil {
						accounted[id] = true
					}
				}
			}

		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && isBuiltin(info, id) {
				switch id.Name {
				case "close":
					if len(n.Args) == 1 {
						v, aid := chanVarIdent(info, n.Args[0])
						if aid != nil {
							accounted[aid] = true
						}
						addOp(chanOp{kind: opClose, ch: v, class: chanClassOf(n.Args[0]), pos: n.Pos(), deferred: deferredCalls[n]})
					}
				case "len", "cap":
					for _, a := range n.Args {
						if _, aid := chanVarIdent(info, a); aid != nil {
							accounted[aid] = true
						}
					}
				case "make":
					if t := typeOf(info, n); t != nil {
						if _, isChan := t.Underlying().(*types.Chan); isChan {
							buffered := false
							if len(n.Args) >= 2 {
								buffered = true
								if tv, ok := info.Types[n.Args[1]]; ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
									if i, exact := constant.Int64Val(tv.Value); exact && i == 0 {
										buffered = false
									}
								}
							}
							v, reassignID := makeTargetVar(info, stack, n)
							if reassignID != nil {
								accounted[reassignID] = true
							}
							op := addOp(chanOp{kind: opMake, ch: v, pos: n.Pos(), buffered: buffered})
							if v != nil {
								op.class = v.Name()
								if fc.madeAt[v] == nil {
									fc.madeAt[v] = op
								} else {
									// Re-made channels have ambiguous identity.
									fc.escaped[v] = true
								}
							}
						}
					}
				}
				return true
			}
			if name, ok := wgMethodName(info, n); ok {
				lit, goLit, loop, _ := ctxOf()
				fc.wgs = append(fc.wgs, wgOp{pos: n.Pos(), name: name, lit: lit, goLit: goLit, loop: loop})
				return true
			}
			var calleeNode *FuncNode
			if fn := StaticCallee(info, n); fn != nil {
				calleeNode = ci.prog.Funcs[fn]
			}
			if fc.ctx.param != nil {
				for _, a := range n.Args {
					if c, ok := ast.Unparen(a).(*ast.CallExpr); ok {
						if p, name, ok := resolvePkgFunc(info, c); ok && p == "context" && (name == "Background" || name == "TODO") {
							fc.ctx.bg = append(fc.ctx.bg, bgCall{pos: n.Pos(), callee: calleeDisplay(info, n), src: "context." + name})
						}
					}
				}
			}
			for i, a := range n.Args {
				v, aid := chanVarIdent(info, a)
				if v == nil {
					continue
				}
				accounted[aid] = true
				if calleeNode == nil {
					// Dynamic, stdlib, or literal callee: identity lost.
					fc.escaped[v] = true
					continue
				}
				csig := calleeNode.Func.Type().(*types.Signature)
				switch {
				case csig.Variadic() && i >= csig.Params().Len()-1:
					fc.escaped[v] = true
				case i < csig.Params().Len():
					addOp(chanOp{kind: opPass, ch: v, class: chanClassOf(a), pos: n.Pos(), callee: calleeNode, argIdx: i, call: n})
				default:
					fc.escaped[v] = true
				}
			}

		case *ast.ForStmt:
			if n.Cond == nil && n.Init == nil && n.Post == nil && blocksOnChannels(info, n.Body) {
				lit, goLit, _, _ := ctxOf()
				fc.waitLoops = append(fc.waitLoops, waitLoop{pos: n.Pos(), lit: lit, goLit: goLit, exits: loopExits(info, n)})
			}

		case *ast.Ident:
			v, ok := info.Uses[n].(*types.Var)
			if !ok {
				break
			}
			if fc.ctx.param != nil && v == fc.ctx.param {
				fc.ctx.used = true
			}
			if v.IsField() || accounted[n] {
				break
			}
			if _, isChan := v.Type().Underlying().(*types.Chan); !isChan {
				break
			}
			if !localTo(v) {
				break
			}
			// Any unclassified read — aliasing, returning, storing into a
			// field or composite — loses identity.
			fc.escaped[v] = true
			if !seenVar[v] {
				seenVar[v] = true
				fc.vars = append(fc.vars, v)
			}
		}
		return true
	})

	sort.SliceStable(fc.ops, func(i, j int) bool { return fc.ops[i].pos < fc.ops[j].pos })
	return fc
}

// blocksOnChannels reports whether the block contains a select or a
// channel op (not crossing function literals) — the shape of a wait loop.
func blocksOnChannels(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectStmt, *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		}
		return !found
	})
	return found
}

// makeTargetVar finds the variable a make(chan ...) is directly assigned
// to, looking through the immediate AssignStmt/ValueSpec parent. For a
// plain `=` reassignment it also returns the LHS identifier so the caller
// can account it as a benign use.
func makeTargetVar(info *types.Info, stack []ast.Node, call *ast.CallExpr) (*types.Var, *ast.Ident) {
	for i := len(stack) - 2; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.ParenExpr:
			continue
		case *ast.AssignStmt:
			if len(p.Lhs) != len(p.Rhs) {
				return nil, nil
			}
			for j, r := range p.Rhs {
				if ast.Unparen(r) != call {
					continue
				}
				id, ok := ast.Unparen(p.Lhs[j]).(*ast.Ident)
				if !ok {
					return nil, nil
				}
				if v, ok := info.Defs[id].(*types.Var); ok {
					return v, nil
				}
				if v, ok := info.Uses[id].(*types.Var); ok {
					return v, id
				}
			}
			return nil, nil
		case *ast.ValueSpec:
			for j, r := range p.Values {
				if ast.Unparen(r) == call && j < len(p.Names) {
					if v, ok := info.Defs[p.Names[j]].(*types.Var); ok {
						return v, nil
					}
				}
			}
			return nil, nil
		default:
			return nil, nil
		}
	}
	return nil, nil
}

// calleeDisplay renders the called function for diagnostics.
func calleeDisplay(info *types.Info, call *ast.CallExpr) string {
	if fn := StaticCallee(info, call); fn != nil {
		if fn.Pkg() != nil {
			return fn.Pkg().Name() + "." + fn.Name()
		}
		return fn.Name()
	}
	if name := calleeName(call); name != "" {
		return name
	}
	return "call"
}

// paramEffects returns node's transitive per-parameter channel effects.
// Cycles in the call graph are cut by the visiting set (an in-progress
// node contributes nothing, like lockorder's funcAcquires).
func (ci *concInfo) paramEffects(n *FuncNode) []paramEffect {
	if pe, ok := ci.peMemo[n]; ok {
		return pe
	}
	if ci.peVisiting[n] {
		return nil
	}
	ci.peVisiting[n] = true
	defer delete(ci.peVisiting, n)

	sig := n.Func.Type().(*types.Signature)
	pe := make([]paramEffect, sig.Params().Len())
	paramIdx := make(map[*types.Var]int, sig.Params().Len())
	for i := 0; i < sig.Params().Len(); i++ {
		paramIdx[sig.Params().At(i)] = i
	}
	add := func(i int, bit chanEffect, w *effWitness) {
		if pe[i].bits&bit != 0 {
			return
		}
		pe[i].bits |= bit
		if pe[i].wit == nil {
			pe[i].wit = make(map[chanEffect]*effWitness)
		}
		pe[i].wit[bit] = w
	}

	fc := ci.funcs[n]
	if fc != nil {
		for k := range fc.ops {
			op := &fc.ops[k]
			i, ok := paramIdx[op.ch]
			if !ok {
				continue
			}
			switch op.kind {
			case opSend:
				bit := effSend
				if op.sel != nil {
					bit = effSelectSend
				}
				add(i, bit, &effWitness{pos: op.pos})
			case opRecv:
				bit := effRecv
				if op.sel != nil {
					bit = effSelectRecv
				}
				add(i, bit, &effWitness{pos: op.pos})
			case opRangeRecv:
				add(i, effRangeRecv, &effWitness{pos: op.pos})
			case opClose:
				add(i, effClose, &effWitness{pos: op.pos})
			case opPass:
				for _, sub := range []chanEffect{effSend, effSelectSend, effRecv, effSelectRecv, effRangeRecv, effClose, effUnknown} {
					subPE := ci.paramEffects(op.callee)
					if op.argIdx < len(subPE) && subPE[op.argIdx].bits&sub != 0 {
						add(i, sub, &effWitness{pos: op.pos, via: op.callee, viaArg: op.argIdx})
					}
				}
			}
		}
		for v, esc := range fc.escaped {
			if !esc {
				continue
			}
			if i, ok := paramIdx[v]; ok {
				add(i, effUnknown, &effWitness{pos: v.Pos()})
			}
		}
	}
	ci.peMemo[n] = pe
	return pe
}

// effChain renders a dettaint-style witness chain for how effect bit
// arises from n's arg-th parameter: "pkg.F ← pkg.g ← <op> (file:line)".
// The returned pos is the direct op at the chain's end.
func (ci *concInfo) effChain(n *FuncNode, arg int, bit chanEffect) ([]string, token.Pos) {
	var names []string
	for hops := 0; hops < 64; hops++ {
		names = append(names, n.DisplayName())
		pe := ci.paramEffects(n)
		if arg >= len(pe) || pe[arg].wit == nil || pe[arg].wit[bit] == nil {
			return names, token.NoPos
		}
		w := pe[arg].wit[bit]
		if w.via == nil {
			return names, w.pos
		}
		n, arg = w.via, w.viaArg
	}
	return names, token.NoPos
}
