package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AllocGuardAnalyzer statically enforces the zero-allocation contract of
// the ingest hot path. Functions annotated with a //lmvet:hotpath doc
// comment — and everything statically reachable from them through the
// module call graph, call edges and function-value references alike —
// are scanned for hidden allocations:
//
//   - interface boxing: a concrete, non-pointer-shaped value converted
//     to an interface at a call site, assignment, or return
//   - variadic calls, which materialise their argument slice
//   - escaping closures and escaping &composite literals (the escape
//     lattice keeps provably frame-local ones quiet)
//   - make of slices, maps, and channels
//   - map and slice composite literals
//   - string <-> []byte / []rune conversions
//   - append beyond provable capacity: appending to a slice whose
//     provenance is neither make-with-capacity nor a reslice of
//     existing storage
//
// Each finding is reported at the allocation site with the shortest
// witness chain from an annotated root (Observe ← binInsert ← boxes
// value into interface{}), mirroring dettaint's chains, so inline
// //lmvet:ignore allocguard suppressions land on the exact line. The
// contract the analyzer pins is the same one BenchmarkMonitorObserve's
// 0 allocs/op measures: amortised allocations (pool misses, map growth,
// once-per-bin state) are suppressed in source with their reasons,
// everything else is a bug.
var AllocGuardAnalyzer = &Analyzer{
	Name:      "allocguard",
	Doc:       "flags hidden allocations (boxing, escaping closures, unpooled make, append growth) on //lmvet:hotpath call paths",
	RunModule: runAllocGuard,
}

// hotWitness records how the hot set reached a function: nil parent
// means the function is itself annotated.
type hotWitness struct {
	parent *FuncNode
}

func runAllocGuard(mp *ModulePass) error {
	prog := mp.Prog

	// Seed: annotated roots, in deterministic node order.
	hot := make(map[*FuncNode]hotWitness)
	var queue []*FuncNode
	for _, node := range prog.Nodes() {
		if HasHotPathDirective(node.Decl) {
			hot[node] = hotWitness{}
			queue = append(queue, node)
		}
	}

	// Propagate down call and reference edges, breadth-first, so each
	// function's witness chain is a shortest path from a root.
	for len(queue) > 0 {
		g := queue[0]
		queue = queue[1:]
		for _, edges := range [][]Edge{g.Calls, g.Refs} {
			for _, e := range edges {
				if _, seen := hot[e.Callee]; seen {
					continue
				}
				hot[e.Callee] = hotWitness{parent: g}
				queue = append(queue, e.Callee)
			}
		}
	}

	// Scan every hot function for allocation sites, in deterministic
	// node order.
	for _, node := range prog.Nodes() {
		if _, ok := hot[node]; !ok {
			continue
		}
		if !mp.requested(node.Pkg) {
			continue
		}
		chain := hotChain(node, hot)
		flow := BuildFuncFlow(node.Pkg.Info, node.Decl)
		for _, site := range allocSites(node, flow) {
			mp.Reportf(site.pos, "hot path allocates: %s ← %s; %s", chain, site.desc, site.advice)
		}
	}
	return nil
}

// hotChain renders the shortest witness path root ← ... ← node.
func hotChain(node *FuncNode, hot map[*FuncNode]hotWitness) string {
	var names []string
	for n := node; n != nil; n = hot[n].parent {
		names = append(names, n.DisplayName())
	}
	// names runs node → root; reverse to render root ← ... ← node.
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	return strings.Join(names, " ← ")
}

// allocSite is one statically detected allocation.
type allocSite struct {
	pos    token.Pos
	desc   string
	advice string
}

// allocSites scans one hot function body for allocation sites, in
// source order.
func allocSites(node *FuncNode, flow *FuncFlow) []allocSite {
	info := node.Pkg.Info
	var out []allocSite
	add := func(pos token.Pos, desc, advice string) {
		out = append(out, allocSite{pos: pos, desc: desc, advice: advice})
	}
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(info, flow, n, add)
		case *ast.CompositeLit:
			t := typeOf(info, n)
			switch t.Underlying().(type) {
			case *types.Map:
				add(n.Pos(), "map literal allocates", "hoist the map off the hot path or reuse one")
			case *types.Slice:
				add(n.Pos(), "slice literal allocates", "hoist to a package-level var or a pooled buffer")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if lit, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					if escapingAddr(info, flow, n, lit) {
						add(n.Pos(), "escaping &composite literal allocates", "take the value from a sync.Pool or preallocate it")
					}
				}
			}
		case *ast.FuncLit:
			if free := freeVars(info, n); len(free) > 0 {
				add(n.Pos(), "closure capturing "+strings.Join(free, ", ")+" allocates", "hoist the closure or pass state explicitly")
			}
			return false // the literal's body runs later; sites inside are not this frame's
		case *ast.AssignStmt:
			checkBoxingAssign(info, n, add)
		case *ast.ReturnStmt:
			checkBoxingReturn(info, node, n, add)
		}
		return true
	})
	return out
}

// checkCall reports the allocation classes visible at one call site:
// builtin make/append, conversions, variadic materialisation, and
// interface boxing of arguments.
func checkCall(info *types.Info, flow *FuncFlow, call *ast.CallExpr, add func(token.Pos, string, string)) {
	// Builtins and conversions. Builtins get synthetic per-call signatures
	// from the type checker (append's is variadic), so they must be
	// classified here and never reach the generic call checks below.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && isBuiltin(info, id) {
		switch id.Name {
		case "make":
			t := typeOf(info, call)
			add(call.Pos(), "make("+typeShort(t)+") allocates", "hoist the buffer to a pool or the caller")
		case "new":
			t := typeOf(info, call)
			add(call.Pos(), typeShort(t)+" via new allocates", "take the value from a sync.Pool or preallocate it")
		case "append":
			if len(call.Args) == 0 {
				return
			}
			switch flow.ProvenanceOf(call.Args[0]) {
			case ProvMakeCap, ProvReslice:
				// The author sized the buffer or is reusing storage.
			default:
				add(call.Pos(), "append beyond provable capacity", "pre-size with make(len, cap) or append into a caller-owned buffer")
			}
		}
		// The remaining builtins (len, cap, copy, delete, complex, ...)
		// don't heap-allocate.
		return
	}
	if conv, ok := stringConversion(info, call); ok {
		add(call.Pos(), conv+" conversion allocates", "keep one representation across the hot path")
		return
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return // other conversions don't heap-allocate
	}

	sig, ok := typeOf(info, call.Fun).(*types.Signature)
	if !ok {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis != token.NoPos {
				continue // spread: no new slice, no per-element boxing
			}
			pt = sig.Params().At(np - 1).Type().(*types.Slice).Elem()
		case i < np:
			pt = sig.Params().At(i).Type()
		}
		if pt == nil {
			continue
		}
		if types.IsInterface(pt.Underlying()) {
			at := typeOf(info, arg)
			if at != nil && !pointerShaped(at) && !isUntypedNil(info, arg) {
				add(arg.Pos(), "boxes "+typeShort(at)+" into "+typeShort(pt), "pass a pointer or keep the argument concrete")
			}
		}
	}
	if sig.Variadic() && call.Ellipsis == token.NoPos && len(call.Args) >= np {
		add(call.Pos(), "variadic call allocates its argument slice", "use a non-variadic variant on the hot path")
	}
}

// stringConversion classifies string <-> []byte / []rune conversions.
func stringConversion(info *types.Info, call *ast.CallExpr) (string, bool) {
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return "", false
	}
	to, from := tv.Type.Underlying(), typeOf(info, call.Args[0])
	if from == nil {
		return "", false
	}
	from = from.Underlying()
	if isString(to) && isByteOrRuneSlice(from) {
		return "[]byte→string", true
	}
	if isByteOrRuneSlice(to) && isString(from) {
		return "string→[]byte", true
	}
	return "", false
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	e, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (e.Kind() == types.Byte || e.Kind() == types.Rune || e.Kind() == types.Uint8 || e.Kind() == types.Int32)
}

// checkBoxingAssign reports concrete non-pointer-shaped values assigned
// into interface-typed destinations.
func checkBoxingAssign(info *types.Info, n *ast.AssignStmt, add func(token.Pos, string, string)) {
	if len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i := range n.Lhs {
		lt, rt := typeOf(info, n.Lhs[i]), typeOf(info, n.Rhs[i])
		if lt == nil || rt == nil || !types.IsInterface(lt.Underlying()) {
			continue
		}
		if !pointerShaped(rt) && !isUntypedNil(info, n.Rhs[i]) {
			add(n.Rhs[i].Pos(), "boxes "+typeShort(rt)+" into "+typeShort(lt), "store a pointer or keep the variable concrete")
		}
	}
}

// checkBoxingReturn reports concrete values returned through interface
// result types.
func checkBoxingReturn(info *types.Info, node *FuncNode, n *ast.ReturnStmt, add func(token.Pos, string, string)) {
	sig := node.Func.Type().(*types.Signature)
	if sig.Results().Len() != len(n.Results) {
		return // bare return or single multi-value call
	}
	for i, r := range n.Results {
		rt := sig.Results().At(i).Type()
		if !types.IsInterface(rt.Underlying()) {
			continue
		}
		at := typeOf(info, r)
		if at != nil && !pointerShaped(at) && !isUntypedNil(info, r) {
			add(r.Pos(), "boxes "+typeShort(at)+" into "+typeShort(rt), "return a pointer or a preallocated value")
		}
	}
}

// escapingAddr reports whether &lit escapes the frame. When the address
// is bound to a local variable, the escape lattice answers; when it is
// used directly in an escaping position (return, store, argument), the
// surrounding context already decided.
func escapingAddr(info *types.Info, flow *FuncFlow, addr *ast.UnaryExpr, lit *ast.CompositeLit) bool {
	// &T{...} bound straight to a local: v := &T{...}. Non-escaping
	// locals stay on the stack.
	for v, rhss := range flow.defs {
		for _, rhs := range rhss {
			if ast.Unparen(rhs) == addr {
				return flow.Escape(v) != EscNone
			}
		}
	}
	// Any other syntactic position (argument, return value, field store,
	// map insert) publishes the pointer; conservatively heap.
	return true
}

// freeVars lists the names a closure captures from its enclosing frame,
// sorted by first use.
func freeVars(info *types.Info, lit *ast.FuncLit) []string {
	declared := make(map[*types.Var]bool)
	ast.Inspect(lit, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := info.Defs[id].(*types.Var); ok {
				declared[v] = true
			}
		}
		return true
	})
	seen := make(map[*types.Var]bool)
	var out []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := info.Uses[id].(*types.Var); ok && !v.IsField() && !declared[v] && !seen[v] {
				if v.Parent() != nil && v.Pkg() != nil && v.Parent() != v.Pkg().Scope() {
					seen[v] = true
					out = append(out, v.Name())
				}
			}
		}
		return true
	})
	return out
}

// isUntypedNil reports whether e is the untyped nil literal.
func isUntypedNil(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[ast.Unparen(e)]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

// typeShort renders a type without package qualification for compact
// diagnostics.
func typeShort(t types.Type) string {
	if t == nil {
		return "?"
	}
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}
