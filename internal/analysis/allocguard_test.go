package analysis

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// allocGuardFixtureDirs are the package directories of the multi-package
// allocguard golden fixture.
func allocGuardFixtureDirs(t *testing.T) (*Loader, []string) {
	t.Helper()
	root := filepath.Join("testdata", "src", "allocguard")
	l, err := NewLoader(root)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	return l, []string{root, filepath.Join(root, "dep")}
}

// allocGuardOnly enables just the allocguard analyzer.
func allocGuardOnly() Config {
	cfg := DefaultConfig()
	cfg.Enabled = make(map[string]bool)
	for _, a := range All() {
		cfg.Enabled[a.Name] = a.Name == "allocguard"
	}
	return cfg
}

// TestAllocGuardGolden drives the hot-set reachability and every
// allocation class over the fixture: call edges, reference edges,
// cross-package chains, capacity/reslice provenance, the escape
// lattice's stack-vs-heap answer, and inline suppressions.
func TestAllocGuardGolden(t *testing.T) {
	l, dirs := allocGuardFixtureDirs(t)
	diags, err := RunSuite(l, dirs, allocGuardOnly())
	if err != nil {
		t.Fatalf("RunSuite: %v", err)
	}
	checkWants(t, l.Loaded(), diags)
}

// TestAllocGuardWitnessDetail pins the exact shape of one cross-package
// witness message: chain order, allocation description, and advice.
func TestAllocGuardWitnessDetail(t *testing.T) {
	l, dirs := allocGuardFixtureDirs(t)
	diags, err := RunSuite(l, dirs, allocGuardOnly())
	if err != nil {
		t.Fatalf("RunSuite: %v", err)
	}
	var msg string
	for _, d := range diags {
		if strings.Contains(d.Message, "dep.Note") {
			msg = d.Message
		}
	}
	if msg == "" {
		t.Fatalf("no dep.Note diagnostic in %d findings", len(diags))
	}
	want := "hot path allocates: allocguard.Ingest ← dep.Note ← " +
		"boxes int into any; store a pointer or keep the variable concrete"
	if msg != want {
		t.Errorf("witness message:\n got %q\nwant %q", msg, want)
	}
}

// TestAllocGuardSeverityStamped checks the default error severity and
// the per-run override.
func TestAllocGuardSeverityStamped(t *testing.T) {
	l, dirs := allocGuardFixtureDirs(t)
	diags, err := RunSuite(l, dirs, allocGuardOnly())
	if err != nil {
		t.Fatalf("RunSuite: %v", err)
	}
	if len(diags) == 0 {
		t.Fatal("no diagnostics")
	}
	for _, d := range diags {
		if d.Severity != string(SeverityError) {
			t.Errorf("%s: severity = %q, want error", d, d.Severity)
		}
	}

	l2, dirs2 := allocGuardFixtureDirs(t)
	cfg := allocGuardOnly()
	cfg.Severity = map[string]Severity{"allocguard": SeverityWarn}
	diags2, err := RunSuite(l2, dirs2, cfg)
	if err != nil {
		t.Fatalf("RunSuite: %v", err)
	}
	for _, d := range diags2 {
		if d.Severity != string(SeverityWarn) {
			t.Errorf("%s: severity = %q, want warn override", d, d.Severity)
		}
	}
}

// TestAllocGuardWorkerEquivalence pins determinism of the module-wide
// analyzer under the parallel driver: identical diagnostics at any
// worker count.
func TestAllocGuardWorkerEquivalence(t *testing.T) {
	run := func(workers int) []Diagnostic {
		l, dirs := allocGuardFixtureDirs(t)
		cfg := DefaultConfig() // every analyzer
		cfg.Workers = workers
		diags, err := RunSuite(l, dirs, cfg)
		if err != nil {
			t.Fatalf("RunSuite(workers=%d): %v", workers, err)
		}
		return diags
	}
	serial := run(1)
	parallelRun := run(8)
	if !reflect.DeepEqual(serial, parallelRun) {
		t.Errorf("parallel diagnostics differ from serial:\nserial:   %v\nparallel: %v", serial, parallelRun)
	}
	if len(serial) == 0 {
		t.Error("fixture produced no diagnostics; equivalence check is vacuous")
	}
}
