package analysis

import (
	"go/token"
	"go/types"
	"path/filepath"
	"strconv"
	"strings"
)

// GoLeakAnalyzer finds goroutines that can outlive their spawner, using
// the goflow summary layer over the module call graph:
//
//   - a spawned goroutine performs a plain (unselected) send or receive
//     on an unbuffered channel made by the spawner, and no counterpart
//     operation is reachable anywhere — not in the spawner's flow, not in
//     a sibling goroutine, not through any callee the channel is passed
//     to. The goroutine blocks forever and its stack, its channel, and
//     everything it captured leak. A variant fires when counterpart
//     receives exist but every one sits in a multi-arm select outside a
//     loop, which can take another arm and abandon the sender;
//   - a goroutine spawned inside a loop with no bounding join: no
//     WaitGroup.Add in the loop, no Done in the goroutine, and no
//     collecting receive in the spawner — a fast producer spawns without
//     bound;
//   - an infinite wait-loop inside a goroutine with no terminating arm:
//     no return, no break out of the loop, no ctx.Done()-style escape —
//     the goroutine never ends even when its work does.
//
// Interprocedural effects carry dettaint-style witness chains: a blocking
// send three helpers deep is reported at the spawn site with the chain of
// parameter passes that reaches it. Channels whose identity escapes the
// summary (fields, globals, dynamic callees) are skipped entirely —
// silence over speculation, the suite-wide policy.
var GoLeakAnalyzer = &Analyzer{
	Name:      "goleak",
	Doc:       "finds goroutines that can outlive their spawner: blocking channel ops with no reachable counterpart, unjoined spawn loops, wait-loops with no exit arm",
	RunModule: runGoLeak,
}

func runGoLeak(mp *ModulePass) error {
	ci := concInfoOf(mp.Prog)
	for _, node := range mp.Prog.Nodes() {
		if !mp.requested(node.Pkg) {
			continue
		}
		fc := ci.funcs[node]
		if fc == nil || len(fc.spawns) == 0 {
			continue
		}
		for si := range fc.spawns {
			s := &fc.spawns[si]
			checkAbandonedOps(mp, ci, fc, s)
			checkSpawnLoop(mp, ci, fc, s)
			checkWaitLoops(mp, ci, fc, s)
		}
	}
	return nil
}

// blockingOp is one potentially-forever channel op a goroutine performs.
type blockingOp struct {
	send  bool // send vs receive
	ch    *chanOp
	chain string // witness chain for interprocedural ops, "" for direct
	pos   token.Pos
}

// checkAbandonedOps implements the no-reachable-counterpart rule for one
// spawn site.
func checkAbandonedOps(mp *ModulePass, ci *concInfo, fc *funcConc, s *spawnSite) {
	var blocking []blockingOp

	// Direct ops in the spawned literal's own linear flow.
	if s.lit != nil {
		for k := range fc.ops {
			op := &fc.ops[k]
			if op.lit != s.lit || op.goLit != s.lit || op.sel != nil {
				continue
			}
			switch op.kind {
			case opSend:
				blocking = append(blocking, blockingOp{send: true, ch: op, pos: op.pos})
			case opRecv:
				blocking = append(blocking, blockingOp{send: false, ch: op, pos: op.pos})
			}
		}
	}
	// Named spawns: the callee's transitive parameter effects.
	if s.callee != nil {
		pe := ci.paramEffects(s.callee)
		for k := range fc.ops {
			op := &fc.ops[k]
			if op.kind != opPass || op.call != s.call || op.argIdx >= len(pe) {
				continue
			}
			bits := pe[op.argIdx].bits
			if bits&effUnknown != 0 {
				continue
			}
			if bits&effSend != 0 {
				names, pos := ci.effChain(s.callee, op.argIdx, effSend)
				blocking = append(blocking, blockingOp{send: true, ch: op, chain: strings.Join(names, " ← "), pos: pos})
			}
			if bits&effRecv != 0 {
				names, pos := ci.effChain(s.callee, op.argIdx, effRecv)
				blocking = append(blocking, blockingOp{send: false, ch: op, chain: strings.Join(names, " ← "), pos: pos})
			}
		}
	}

	for _, b := range blocking {
		ch := b.ch.ch
		if ch == nil || fc.escaped[ch] {
			continue
		}
		made := fc.madeAt[ch]
		if made == nil || made.buffered {
			// Only spawner-made unbuffered channels: parameters and
			// buffered channels have counterparts (or slack) elsewhere.
			continue
		}
		counters, abandonable := counterparts(ci, fc, s, ch, b.send)
		where := posLabel(mp, b.pos)
		if b.chain != "" {
			where = b.chain + " (" + where + ")"
		}
		if len(counters) == 0 {
			if b.send {
				mp.Reportf(s.pos,
					"goroutine can leak: it blocks sending on %s at %s and no receive on %s is reachable on any path; receive from it, buffer it, or select with a cancellation arm",
					ch.Name(), where, ch.Name())
			} else {
				mp.Reportf(s.pos,
					"goroutine can leak: it blocks receiving on %s at %s and no send or close on %s is reachable on any path; send, close, or select with a cancellation arm",
					ch.Name(), where, ch.Name())
			}
			continue
		}
		if b.send && abandonable {
			mp.Reportf(s.pos,
				"goroutine can leak: it blocks sending on %s at %s, and every counterpart receive (%s) sits in a select that can take another arm and abandon it; buffer the channel (make(chan T, 1)) or drain it on the early-return path",
				ch.Name(), where, posLabel(mp, counters[0].pos))
		}
	}
}

// counterparts collects ops on ch that could unblock the spawned
// goroutine's send/recv: everything outside the spawned body itself.
// abandonable is true when every counterpart receive sits in a multi-arm
// select outside a loop — a path that can return without draining.
func counterparts(ci *concInfo, fc *funcConc, s *spawnSite, ch *types.Var, send bool) ([]*chanOp, bool) {
	var out []*chanOp
	abandonable := true
	for k := range fc.ops {
		op := &fc.ops[k]
		if op.ch != ch {
			continue
		}
		// Exclude the spawned goroutine's own contribution.
		if s.lit != nil && op.pos >= s.lit.Pos() && op.pos < s.lit.End() {
			continue
		}
		if s.callee != nil && op.call == s.call {
			continue
		}
		match := false
		selectOnly := false
		switch op.kind {
		case opRecv:
			if send {
				match = true
				ss := fc.selOf[op.sel]
				selectOnly = op.sel != nil && ss != nil && ss.clauses >= 2 && !ss.inLoop
			}
		case opRangeRecv:
			if send {
				match = true
			}
		case opSend:
			if !send {
				match = true
			}
		case opClose:
			if !send {
				match = true
			}
		case opPass:
			pe := ci.paramEffects(op.callee)
			if op.argIdx < len(pe) {
				bits := pe[op.argIdx].bits
				if send && bits&(effAnyRecv|effUnknown) != 0 {
					match = true
				}
				if !send && bits&(effAnySend|effClose|effUnknown) != 0 {
					match = true
				}
			}
		}
		if match {
			out = append(out, op)
			if !selectOnly {
				abandonable = false
			}
		}
	}
	return out, abandonable && len(out) > 0
}

// checkSpawnLoop implements the unjoined-spawn-loop rule.
func checkSpawnLoop(mp *ModulePass, ci *concInfo, fc *funcConc, s *spawnSite) {
	if s.loop == nil {
		return
	}
	// A WaitGroup.Add in the same loop (spawner side) bounds the spawns.
	for _, w := range fc.wgs {
		if w.name == "Add" && w.loop == s.loop && w.lit == s.outerLit {
			return
		}
	}
	// A Done inside the spawned body joins it.
	if s.lit != nil {
		for _, w := range fc.wgs {
			if w.pos >= s.lit.Pos() && w.pos < s.lit.End() && w.name == "Done" {
				return
			}
		}
	} else if s.callee != nil {
		if calleeJoins(ci, s.callee, make(map[*FuncNode]bool)) {
			return
		}
	}
	// A channel the spawner sends on or receives from in the same loop
	// acts as a semaphore or collector; a send/recv from the spawned body
	// into a channel the spawner drains is the worker-pool shape.
	for k := range fc.ops {
		op := &fc.ops[k]
		if op.loop == s.loop && op.lit == s.outerLit && (op.kind == opSend || op.kind == opRecv) {
			return
		}
	}
	if s.lit != nil {
		for k := range fc.ops {
			op := &fc.ops[k]
			if op.kind != opSend || op.ch == nil {
				continue
			}
			if op.pos < s.lit.Pos() || op.pos >= s.lit.End() {
				continue
			}
			// The goroutine sends results; does the spawner drain them?
			for j := range fc.ops {
				dr := &fc.ops[j]
				if dr.ch == op.ch && dr.goLit == nil && (dr.kind == opRecv || dr.kind == opRangeRecv) {
					return
				}
			}
		}
	}
	mp.Reportf(s.pos,
		"goroutine spawned in a loop with no bounding join: no WaitGroup.Add in the loop, no Done in the goroutine, and no collecting channel; a fast producer spawns goroutines without bound — add a WaitGroup or a semaphore channel")
}

// calleeJoins reports whether the named spawn target (or a callee of it)
// calls WaitGroup.Done.
func calleeJoins(ci *concInfo, n *FuncNode, seen map[*FuncNode]bool) bool {
	if seen[n] {
		return false
	}
	seen[n] = true
	if fc := ci.funcs[n]; fc != nil {
		for _, w := range fc.wgs {
			if w.name == "Done" {
				return true
			}
		}
	}
	for _, e := range n.Calls {
		if calleeJoins(ci, e.Callee, seen) {
			return true
		}
	}
	return false
}

// checkWaitLoops implements the missing-exit-arm rule: an infinite
// `for { select {...} }` in a spawned goroutine where no case returns,
// breaks, or terminates.
func checkWaitLoops(mp *ModulePass, ci *concInfo, fc *funcConc, s *spawnSite) {
	if s.lit == nil {
		return
	}
	for _, wl := range fc.waitLoops {
		if wl.lit != s.lit || wl.exits {
			continue
		}
		mp.Reportf(wl.pos,
			"goroutine wait-loop never terminates: no case returns, breaks, or cancels; add a ctx.Done() (or done-channel) arm that returns so the goroutine spawned at %s can end",
			posLabel(mp, s.pos))
	}
}

// posLabel renders "file.go:12" for witness positions.
func posLabel(mp *ModulePass, pos token.Pos) string {
	if pos == token.NoPos {
		return "?"
	}
	p := mp.Prog.Fset.Position(pos)
	return filepath.Base(p.Filename) + ":" + strconv.Itoa(p.Line)
}
