package analysis

import (
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// lockOrderFixtureDirs are the package directories of the lockorder
// golden fixture.
func lockOrderFixtureDirs(t *testing.T) (*Loader, []string) {
	t.Helper()
	root := filepath.Join("testdata", "src", "lockorder")
	l, err := NewLoader(root)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	return l, []string{root, filepath.Join(root, "telemetry")}
}

// lockOrderOnly enables just the lockorder analyzer, with the fixture's
// shard lock as the hot class.
func lockOrderOnly() Config {
	cfg := DefaultConfig()
	cfg.Enabled = make(map[string]bool)
	for _, a := range All() {
		cfg.Enabled[a.Name] = a.Name == "lockorder"
	}
	cfg.HotPathLocks = []string{"locks.shard.mu"}
	return cfg
}

// TestLockOrderGolden drives the order-graph construction over the
// fixture: the direct alpha/beta cycle, the delta/epsilon cycle closed
// through a callback run under a lock, acyclic interprocedural edges
// staying silent, the TryLock contention idiom, the sampled-tick guard,
// and inline suppressions.
func TestLockOrderGolden(t *testing.T) {
	l, dirs := lockOrderFixtureDirs(t)
	diags, err := RunSuite(l, dirs, lockOrderOnly())
	if err != nil {
		t.Fatalf("RunSuite: %v", err)
	}
	checkWants(t, l.Loaded(), diags)
}

// TestLockOrderCycleDetail pins the shape of the direct cycle's message:
// both opposing edges with their witness sites, and the advice.
func TestLockOrderCycleDetail(t *testing.T) {
	l, dirs := lockOrderFixtureDirs(t)
	diags, err := RunSuite(l, dirs, lockOrderOnly())
	if err != nil {
		t.Fatalf("RunSuite: %v", err)
	}
	var msg string
	for _, d := range diags {
		if strings.Contains(d.Message, "locks.alpha.mu, locks.beta.mu") {
			msg = d.Message
		}
	}
	if msg == "" {
		t.Fatalf("no alpha/beta cycle diagnostic in %d findings", len(diags))
	}
	want := regexp.MustCompile(`^lock order cycle between locks\.alpha\.mu, locks\.beta\.mu \(potential deadlock\): ` +
		`locks\.alpha\.mu → locks\.beta\.mu at locks\.go:\d+; ` +
		`locks\.beta\.mu → locks\.alpha\.mu at locks\.go:\d+; ` +
		`acquire these locks in one global order$`)
	if !want.MatchString(msg) {
		t.Errorf("cycle message %q does not match %q", msg, want)
	}
}

// TestLockOrderRepoEdges pins the two real dynamic edges the callback
// modelling exists for: the registry mutex and the printer mutex both
// order before the engine shard lock (Snapshot evaluates GaugeFunc
// closures under the registry lock; lmmonitor's Block writes reports
// under the printer lock), and the repo graph stays cycle-free.
func TestLockOrderRepoEdges(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module; skipped in -short")
	}
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	dirs, err := l.ResolvePatterns(l.ModuleDir, []string{"./..."})
	if err != nil {
		t.Fatalf("ResolvePatterns: %v", err)
	}
	for _, dir := range dirs {
		if _, err := l.Load(dir); err != nil {
			t.Fatalf("Load(%s): %v", dir, err)
		}
	}
	prog := BuildProgram(l.Fset(), l.Loaded())
	lo := &lockOrder{
		prog:     prog,
		acquires: make(map[*FuncNode]map[string]bool),
		visiting: make(map[*FuncNode]bool),
		edges:    make(map[[2]string]token.Pos),
	}
	var diags []Diagnostic
	mp := &ModulePass{
		Prog:          prog,
		Cfg:           DefaultConfig(),
		analyzer:      LockOrderAnalyzer,
		diags:         &diags,
		requestedPkgs: map[string]bool{},
	}
	for _, node := range prog.Nodes() {
		lo.scanFunction(mp, node)
	}
	lo.reportCycles(mp)
	for _, d := range diags {
		if strings.Contains(d.Message, "cycle") {
			t.Errorf("repo lock graph has a cycle: %s", d)
		}
	}
	wantEdges := [][2]string{
		{"telemetry.Registry.mu", "engine.shard.mu"},
		{"main.printer.mu", "engine.shard.mu"},
	}
	for _, w := range wantEdges {
		if _, ok := lo.edges[w]; !ok {
			t.Errorf("expected lock-order edge %s → %s not found; edges: %v", w[0], w[1], edgeKeys(lo))
		}
	}
}

func edgeKeys(lo *lockOrder) [][2]string {
	var out [][2]string
	for k := range lo.edges {
		out = append(out, k)
	}
	return out
}
