package analysis

import "testing"

// TestRepoIsClean runs the full lmvet suite, with the repo's default
// configuration, over every package in the module. It is the regression
// gate that keeps the codebase free of the defect classes the analyzers
// target: a new float ==, an unguarded sort, a time.Now in the
// simulator, an unlocked monitor write, a dropped Close error, or an
// exported simulation entry point that reaches a nondeterminism source
// through any call chain (dettaint, which runs module-wide here and
// prints the witness chain) fails `go test ./...` with the exact
// finding.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	dirs, err := l.ResolvePatterns(l.ModuleDir, []string{"./..."})
	if err != nil {
		t.Fatalf("ResolvePatterns: %v", err)
	}
	if len(dirs) < 10 {
		t.Fatalf("suspiciously few package dirs resolved: %d", len(dirs))
	}
	diags, err := RunSuite(l, dirs, DefaultConfig())
	if err != nil {
		t.Fatalf("RunSuite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
