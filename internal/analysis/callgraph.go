package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Program is the whole-module view a module-wide analyzer runs over: every
// package the loader has pulled in (requested directories plus everything
// they import inside the module), with a static call graph connecting their
// function declarations.
//
// The graph resolves direct calls (pkg.F, F), method calls through concrete
// receiver types (v.M where v's type is a named type or pointer, including
// promoted methods through embedding), and explicitly instantiated generic
// calls (F[T], v.M[T]); the edge target is the generic origin declaration.
// Calls through interface values, function-typed variables, and fields hold
// no static callee and produce no edge — a deliberate under-approximation
// that keeps every reported witness chain a real, compilable path.
type Program struct {
	// Fset resolves positions for every node in every package.
	Fset *token.FileSet
	// Packages are all loaded module-local packages, sorted by import path.
	Packages []*Package
	// Funcs maps a declared function or method to its graph node.
	Funcs map[*types.Func]*FuncNode

	nodes []*FuncNode
	// conc is the lazily built concurrency summary layer (goflow.go),
	// shared by the goleak/chanprotocol/ctxflow analyzers.
	conc *concInfo
}

// FuncNode is one function or method declaration in the call graph.
type FuncNode struct {
	// Func is the type-checker's object for the declaration (the generic
	// origin for generic functions and methods).
	Func *types.Func
	// Decl is the declaration, body included.
	Decl *ast.FuncDecl
	// Pkg is the package the declaration lives in.
	Pkg *Package
	// Calls are the outgoing static call edges, in source order.
	Calls []Edge
	// CalledBy are the incoming edges, ordered by caller, then call site.
	CalledBy []Edge
	// Refs are outgoing reference edges: sites where this function takes
	// another declared function's value without calling it — a method
	// value (x.M) or a function identifier passed, assigned, or stored as
	// a value. The referenced function may run later with the referrer's
	// obligations, so reachability analyses (allocguard) traverse
	// Calls ∪ Refs.
	Refs []Edge
}

// Edge is one static call edge; Pos is the call site in the caller.
type Edge struct {
	Caller *FuncNode
	Callee *FuncNode
	Pos    token.Pos
}

// BuildProgram constructs the call graph over the given packages. Node and
// edge order is deterministic: packages are sorted by import path and
// declarations visited in source order, so analyses that walk the graph in
// that order emit identical output run to run.
func BuildProgram(fset *token.FileSet, pkgs []*Package) *Program {
	sorted := make([]*Package, len(pkgs))
	copy(sorted, pkgs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Path < sorted[j].Path })

	prog := &Program{
		Fset:     fset,
		Packages: sorted,
		Funcs:    make(map[*types.Func]*FuncNode),
	}
	// Pass 1: a node per function declaration with a body.
	for _, pkg := range sorted {
		for _, fd := range pkg.funcDecls() {
			obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			node := &FuncNode{Func: obj, Decl: fd, Pkg: pkg}
			prog.Funcs[obj] = node
			prog.nodes = append(prog.nodes, node)
		}
	}
	// Pass 2: edges. Calls inside function literals are attributed to the
	// enclosing declaration: a closure runs with its creator's determinism
	// obligations.
	for _, node := range prog.nodes {
		caller := node
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := StaticCallee(node.Pkg.Info, call)
			if fn == nil {
				return true
			}
			if callee, ok := prog.Funcs[fn]; ok {
				e := Edge{Caller: caller, Callee: callee, Pos: call.Pos()}
				caller.Calls = append(caller.Calls, e)
				callee.CalledBy = append(callee.CalledBy, e)
			}
			return true
		})
	}
	// Pass 3: reference edges. An expression position is a reference when
	// it resolves to a declared function but is not the callee of a call —
	// method values and function idents used as values. Selector `Sel`
	// idents are claimed by their parent selector so a method value is one
	// edge, not two.
	for _, node := range prog.nodes {
		caller := node
		info := node.Pkg.Info
		calleeExpr := make(map[ast.Expr]bool)
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fun := ast.Unparen(call.Fun)
			switch ix := fun.(type) {
			case *ast.IndexExpr:
				fun = ast.Unparen(ix.X)
			case *ast.IndexListExpr:
				fun = ast.Unparen(ix.X)
			}
			calleeExpr[fun] = true
			return true
		})
		addRef := func(fn *types.Func, pos token.Pos) {
			if callee, ok := prog.Funcs[fn.Origin()]; ok {
				caller.Refs = append(caller.Refs, Edge{Caller: caller, Callee: callee, Pos: pos})
			}
		}
		claimed := make(map[*ast.Ident]bool)
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.SelectorExpr:
				claimed[e.Sel] = true
				if calleeExpr[e] {
					return true
				}
				if sel, ok := info.Selections[e]; ok && sel != nil {
					if fn, ok := sel.Obj().(*types.Func); ok {
						addRef(fn, e.Pos())
					}
					return true
				}
				if fn, ok := info.Uses[e.Sel].(*types.Func); ok {
					addRef(fn, e.Pos())
				}
			case *ast.Ident:
				if calleeExpr[e] || claimed[e] {
					return true
				}
				if fn, ok := info.Uses[e].(*types.Func); ok {
					addRef(fn, e.Pos())
				}
			}
			return true
		})
	}
	// CalledBy edges accumulated in node order are already deterministic,
	// but callers were appended as encountered; normalise to caller source
	// position so the order is independent of map-free implementation
	// details.
	for _, node := range prog.nodes {
		sort.SliceStable(node.CalledBy, func(i, j int) bool {
			return node.CalledBy[i].Pos < node.CalledBy[j].Pos
		})
	}
	return prog
}

// Nodes returns every function node in deterministic order: package import
// path, then source position.
func (p *Program) Nodes() []*FuncNode { return p.nodes }

// funcDecls yields the package's function declarations with bodies in
// source order.
func (p *Package) funcDecls() []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				out = append(out, fd)
			}
		}
	}
	return out
}

// StaticCallee resolves the function or method a call expression invokes
// statically, or nil when the callee is dynamic (interface method, function
// value, builtin, conversion). Generic instantiations resolve to their
// origin declaration.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	// Unwrap explicit type instantiation: F[T](...) / v.M[T](...).
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(ix.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(ix.X)
	}
	switch fun := fun.(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn.Origin()
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok && sel != nil {
			// Method or method-value call. Interface methods have no
			// body in the program; the node lookup filters them out.
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn.Origin()
			}
			return nil
		}
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn.Origin()
		}
	}
	return nil
}

// DisplayName renders the node for witness chains: "pkg.Func" for
// functions, "pkg.(Recv).Method" for methods.
func (n *FuncNode) DisplayName() string {
	pkgName := n.Func.Pkg().Name()
	sig := n.Func.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		local := func(p *types.Package) string { return "" }
		return pkgName + ".(" + types.TypeString(recv.Type(), local) + ")." + n.Func.Name()
	}
	return pkgName + "." + n.Func.Name()
}
