package analysis

import (
	"go/token"
	"os"
	"strings"
)

// Inline suppression. A comment whose text begins exactly with
// "lmvet:ignore" (written as a //-comment with no space before the
// marker, like other machine directives) accepts one finding:
//
//	sum := a == b //lmvet:ignore floatcmp bitwise identity is intended here
//
// The directive names the analyzer being silenced and must carry a
// non-empty reason; a directive with a missing reason or an unknown
// analyzer name is itself reported as an error under the "lmvet"
// analyzer, so suppressions cannot rot silently. A trailing directive
// suppresses matching findings on its own line; a directive alone on its
// line suppresses the line that follows it.

// ignoreDirective is one parsed lmvet:ignore comment.
type ignoreDirective struct {
	analyzer string
	reason   string
	file     string
	line     int // the source line the directive suppresses
}

// ignoreIndex resolves (file, line, analyzer) to a suppression.
type ignoreIndex struct {
	byFileLine map[string]map[int][]string // file -> line -> analyzer names
}

// ignoreMarker is the directive prefix, after the "//" comment opener.
const ignoreMarker = "lmvet:ignore"

// buildIgnoreIndex scans every comment of every package for
// lmvet:ignore directives. known names the valid analyzers; malformed
// directives come back as diagnostics under the "lmvet" analyzer.
func buildIgnoreIndex(pkgs []*Package, known map[string]bool) (*ignoreIndex, []Diagnostic) {
	idx := &ignoreIndex{byFileLine: make(map[string]map[int][]string)}
	var malformed []Diagnostic
	lineText := newLineReader()
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "//"+ignoreMarker)
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					fields := strings.Fields(text)
					if len(fields) < 2 || !known[fields[0]] {
						malformed = append(malformed, Diagnostic{
							Analyzer: "lmvet",
							Pos:      pos,
							Severity: string(SeverityError),
							Message:  "malformed " + ignoreMarker + " directive; use //" + ignoreMarker + " <analyzer> <reason>",
						})
						continue
					}
					line := pos.Line
					if lineText.commentLeadsLine(pos) {
						line++ // standalone directive covers the next line
					}
					byLine := idx.byFileLine[pos.Filename]
					if byLine == nil {
						byLine = make(map[int][]string)
						idx.byFileLine[pos.Filename] = byLine
					}
					byLine[line] = append(byLine[line], fields[0])
				}
			}
		}
	}
	return idx, malformed
}

// suppresses reports whether d is accepted by a directive on its line.
func (idx *ignoreIndex) suppresses(d Diagnostic) bool {
	for _, name := range idx.byFileLine[d.Pos.Filename][d.Pos.Line] {
		if name == d.Analyzer {
			return true
		}
	}
	return false
}

// filter drops suppressed diagnostics.
func (idx *ignoreIndex) filter(ds []Diagnostic) []Diagnostic {
	out := ds[:0]
	for _, d := range ds {
		if !idx.suppresses(d) {
			out = append(out, d)
		}
	}
	return out
}

// lineReader answers whether a comment is the first token on its source
// line, reading each file at most once. On read failure it reports false,
// which degrades to same-line suppression only — the conservative choice.
type lineReader struct {
	lines map[string][]string
}

func newLineReader() *lineReader {
	return &lineReader{lines: make(map[string][]string)}
}

func (r *lineReader) commentLeadsLine(pos token.Position) bool {
	lines, ok := r.lines[pos.Filename]
	if !ok {
		data, err := os.ReadFile(pos.Filename)
		if err != nil {
			lines = nil
		} else {
			lines = strings.Split(string(data), "\n")
		}
		r.lines[pos.Filename] = lines
	}
	if pos.Line-1 >= len(lines) {
		return false
	}
	prefix := lines[pos.Line-1]
	if pos.Column-1 <= len(prefix) {
		prefix = prefix[:pos.Column-1]
	}
	return strings.TrimSpace(prefix) == ""
}
