// Package serve implements lmserved, the long-running monitoring
// daemon: a declarative config file describing monitored targets, hot
// reload on SIGHUP or a poll interval with diff-based target
// start/drain, per-target ingest goroutines with deterministic startup
// jitter and bounded concurrency, periodic engine checkpoints, and a
// read API (/api/verdicts, /api/series/{asn}, /api/health) served from
// immutable snapshots so reads never touch the ingest hot path.
//
// Every time-dependent behaviour goes through the Clock seam, so the
// soak harness can drive days of simulated time deterministically
// through a FakeClock while production uses the system clock.
package serve

import (
	"sort"
	"sync"
	"time"
)

// Clock is the daemon's time source. Production code uses SystemClock;
// tests inject a FakeClock and advance it explicitly, so jitter waits,
// reload polls, and watchdog graces become deterministic instead of
// wall-clock races.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// After returns a channel that delivers the (then-current) time
	// once, after d has elapsed. A non-positive d fires immediately.
	// The channel is buffered: an abandoned timer never leaks a
	// goroutine or blocks a sender.
	After(d time.Duration) <-chan time.Time
}

// systemClock is the production Clock: the process wall clock.
type systemClock struct{}

func (systemClock) Now() time.Time                         { return time.Now() }
func (systemClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// SystemClock returns the wall-clock Clock.
func SystemClock() Clock { return systemClock{} }

// fakeWaiter is one pending After: a deadline and the buffered channel
// the firing time is delivered on.
type fakeWaiter struct {
	deadline time.Time
	ch       chan time.Time
	// seq breaks deadline ties so firing order is deterministic
	// (registration order), never map- or scheduler-dependent.
	seq uint64
}

// FakeClock is a manually advanced Clock for deterministic tests. Time
// only moves when Advance is called; timers registered via After fire
// during the Advance that reaches their deadline, in deadline order
// (registration order within a tie). It is safe for concurrent use.
type FakeClock struct {
	mu      sync.Mutex
	cond    *sync.Cond
	now     time.Time
	seq     uint64
	waiters []*fakeWaiter
}

// NewFakeClock returns a FakeClock reading start until advanced.
func NewFakeClock(start time.Time) *FakeClock {
	c := &FakeClock{now: start}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Now returns the fake current time.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// After registers a timer firing d after the fake now. A non-positive d
// fires before After returns, so polling loops that recheck Now never
// miss a wakeup that an Advance already satisfied.
func (c *FakeClock) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	c.mu.Lock()
	defer c.mu.Unlock()
	if d <= 0 {
		ch <- c.now
		return ch
	}
	c.seq++
	c.waiters = append(c.waiters, &fakeWaiter{deadline: c.now.Add(d), ch: ch, seq: c.seq})
	c.cond.Broadcast()
	return ch
}

// AfterTime registers a timer firing once the fake time reaches the
// absolute instant at. Unlike After, whose deadline is relative to the
// now at call time, AfterTime is immune to the register/advance race: a
// goroutine that computes its deadline before an Advance and registers
// after it still fires correctly (immediately, if at has already
// passed). Harness sources gating data on simulated timestamps need
// exactly this.
func (c *FakeClock) AfterTime(at time.Time) <-chan time.Time {
	ch := make(chan time.Time, 1)
	c.mu.Lock()
	defer c.mu.Unlock()
	if !at.After(c.now) {
		ch <- c.now
		return ch
	}
	c.seq++
	c.waiters = append(c.waiters, &fakeWaiter{deadline: at, ch: ch, seq: c.seq})
	c.cond.Broadcast()
	return ch
}

// Advance moves the fake time forward by d and fires every timer whose
// deadline is reached, in deadline order. Each fired channel receives
// its own deadline as the delivery time, matching time.After's contract
// that the value is the fire time, not the post-advance now.
func (c *FakeClock) Advance(d time.Duration) {
	if d < 0 {
		panic("serve: FakeClock.Advance with negative duration")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	var due, rest []*fakeWaiter
	for _, w := range c.waiters {
		if !w.deadline.After(c.now) {
			due = append(due, w)
		} else {
			rest = append(rest, w)
		}
	}
	sort.Slice(due, func(i, j int) bool {
		if !due[i].deadline.Equal(due[j].deadline) {
			return due[i].deadline.Before(due[j].deadline)
		}
		return due[i].seq < due[j].seq
	})
	for _, w := range due {
		w.ch <- w.deadline // cap-1 buffer: the send never blocks
	}
	c.waiters = rest
}

// Waiters returns the number of pending timers.
func (c *FakeClock) Waiters() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.waiters)
}

// BlockUntil returns once at least n timers are pending — the
// synchronisation point for tests that must know every goroutine under
// test has parked on the clock before advancing it.
func (c *FakeClock) BlockUntil(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.waiters) < n {
		c.cond.Wait()
	}
}
