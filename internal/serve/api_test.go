package serve

// HTTP API suite: golden responses for the empty state, shape and
// stability checks for the populated state, status-code contract for
// the error paths, and a concurrent-read-during-ingest hammer that
// -race turns into a data-race detector for the snapshot read model.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// newAPIDaemon builds a daemon over one congested target with a 48h
// window but only 47h of data: the window's leading two bins are gaps,
// so series responses carry both real values and null gap bins while
// the signal still classifies cleanly.
func newAPIDaemon(t *testing.T) (*Daemon, *soakHarness) {
	t.Helper()
	dir := t.TempDir()
	cfgPath := filepath.Join(dir, "cfg.json")
	writeFile(t, cfgPath, `{
  "window": "48h", "bin_width": "30m", "min_traceroutes": 3, "max_lateness": "2h",
  "shards": 2, "workers": 2, "max_concurrent": 2,
  "targets": [{"name": "alpha", "asn": 64500, "source": "src-alpha"}]
}`)
	h := &soakHarness{clock: NewFakeClock(soakT0)}
	h.setTimelines(map[string][]soakObs{
		"src-alpha": diurnalTimeline(64500, 1, soakT0, soakT0.Add(47*time.Hour), 10*time.Minute, 8),
	})
	d, err := New(cfgPath, Options{Clock: h.clock, Open: h.opener, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	return d, h
}

// runToQuiescence runs d until its single source hits EOF, then drains.
func runToQuiescence(t *testing.T, d *Daemon, h *soakHarness, want int64) {
	t.Helper()
	ctx, kill := context.WithCancel(context.Background())
	run := make(chan error, 1)
	go func() { run <- d.Run(ctx, nil) }()
	h.clock.Advance(48 * time.Hour)
	spinUntil(t, "api ingest", func() bool { return d.Monitor().Stats().Ingested == want })
	kill()
	if err := <-run; err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func get(t *testing.T, handler http.Handler, path string) (*httptest.ResponseRecorder, []byte) {
	t.Helper()
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec, rec.Body.Bytes()
}

func TestAPIGoldenEmptyState(t *testing.T) {
	d, _ := newAPIDaemon(t)
	handler := d.Handler()

	// Before any observation the snapshot is empty but fully formed:
	// these bytes are the wire contract for a freshly started daemon.
	rec, body := get(t, handler, "/api/verdicts")
	if rec.Code != http.StatusOK || rec.Header().Get("Content-Type") != "application/json" {
		t.Fatalf("verdicts: code %d, type %q", rec.Code, rec.Header().Get("Content-Type"))
	}
	wantVerdicts := `{
  "generation": 0,
  "window": {
    "bins": 0,
    "bin_width": "30m0s"
  },
  "verdicts": []
}
`
	if string(body) != wantVerdicts {
		t.Fatalf("verdicts golden mismatch:\n got %q\nwant %q", body, wantVerdicts)
	}

	rec, body = get(t, handler, "/api/health")
	if rec.Code != http.StatusOK {
		t.Fatalf("health: code %d", rec.Code)
	}
	wantHealth := `{
  "status": "ok",
  "generation": 0,
  "window": {
    "bins": 0,
    "bin_width": "30m0s"
  },
  "ingested": 0,
  "dropped": 0,
  "ases": 0,
  "targets": []
}
`
	if string(body) != wantHealth {
		t.Fatalf("health golden mismatch:\n got %q\nwant %q", body, wantHealth)
	}
}

func TestAPIStatusCodes(t *testing.T) {
	d, _ := newAPIDaemon(t)
	handler := d.Handler()
	cases := []struct {
		method, path string
		want         int
	}{
		{http.MethodGet, "/api/verdicts", http.StatusOK},
		{http.MethodGet, "/api/health", http.StatusOK},
		{http.MethodGet, "/api/series/not-a-number", http.StatusBadRequest},
		{http.MethodGet, "/api/series/99999", http.StatusNotFound},
		{http.MethodGet, "/api/series/", http.StatusNotFound},
		{http.MethodPost, "/api/verdicts", http.StatusMethodNotAllowed},
		{http.MethodDelete, "/api/series/64500", http.StatusMethodNotAllowed},
		{http.MethodGet, "/api/nope", http.StatusNotFound},
		{http.MethodGet, "/metrics", http.StatusOK},
		{http.MethodGet, "/metrics.json", http.StatusOK},
	}
	for _, tc := range cases {
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, httptest.NewRequest(tc.method, tc.path, nil))
		if rec.Code != tc.want {
			t.Errorf("%s %s = %d, want %d", tc.method, tc.path, rec.Code, tc.want)
		}
	}
}

func TestAPIPopulatedResponses(t *testing.T) {
	d, h := newAPIDaemon(t)
	runToQuiescence(t, d, h, int64(len(h.timelines["src-alpha"])))
	handler := d.Handler()

	// Verdicts: one classified AS with the full classification facts.
	_, body := get(t, handler, "/api/verdicts")
	var verdicts struct {
		Generation int64 `json:"generation"`
		Window     struct {
			Start    *time.Time `json:"start"`
			Bins     int        `json:"bins"`
			BinWidth string     `json:"bin_width"`
		} `json:"window"`
		Verdicts []struct {
			ASN            uint32  `json:"asn"`
			Class          string  `json:"class"`
			DailyAmplitude float64 `json:"daily_amplitude_ms"`
			IsDaily        bool    `json:"is_daily"`
			Probes         int     `json:"probes"`
		} `json:"verdicts"`
	}
	if err := json.Unmarshal(body, &verdicts); err != nil {
		t.Fatalf("verdicts: %v\n%s", err, body)
	}
	if len(verdicts.Verdicts) != 1 {
		t.Fatalf("verdicts = %+v", verdicts.Verdicts)
	}
	v := verdicts.Verdicts[0]
	if v.ASN != 64500 || v.Probes != 3 || !v.IsDaily || v.Class == "None" || v.DailyAmplitude <= 3 {
		t.Fatalf("verdict = %+v, want congested AS64500 with 3 probes", v)
	}
	if verdicts.Window.Bins != 96 || verdicts.Window.BinWidth != "30m0s" || verdicts.Window.Start == nil {
		t.Fatalf("window = %+v", verdicts.Window)
	}

	// Series: 96 window bins; the window ends at the bin boundary past
	// the newest observation (47:00), so it starts at -1h and the two
	// leading bins are null gaps — everything else is finite.
	rec, body := get(t, handler, "/api/series/64500")
	if rec.Code != http.StatusOK {
		t.Fatalf("series: code %d: %s", rec.Code, body)
	}
	var series struct {
		ASN      uint32     `json:"asn"`
		Start    time.Time  `json:"start"`
		StepSecs float64    `json:"step_seconds"`
		Values   []*float64 `json:"values"`
	}
	if err := json.Unmarshal(body, &series); err != nil {
		t.Fatalf("series: %v", err)
	}
	if series.ASN != 64500 || series.StepSecs != 1800 || len(series.Values) != 96 {
		t.Fatalf("series = asn %d, step %v, %d values", series.ASN, series.StepSecs, len(series.Values))
	}
	for i, val := range series.Values {
		if (i < 2) != (val == nil) {
			t.Fatalf("values[%d] = %v: leading two bins must be null gaps, rest finite", i, val)
		}
	}

	// Health: drained daemon reports its terminal state truthfully.
	_, body = get(t, handler, "/api/health")
	var health struct {
		Status  string `json:"status"`
		Ingested int64 `json:"ingested"`
		Targets []struct {
			Name, State string
			Ingested    int64
		} `json:"targets"`
	}
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "draining" || health.Ingested != int64(len(h.timelines["src-alpha"])) {
		t.Fatalf("health = %+v", health)
	}
	if len(health.Targets) != 1 || health.Targets[0].State != "finished" {
		t.Fatalf("targets = %+v", health.Targets)
	}

	// Responses are deterministic: byte-identical across repeated reads
	// of one snapshot.
	for _, path := range []string{"/api/verdicts", "/api/series/64500", "/api/health"} {
		_, a := get(t, handler, path)
		_, b := get(t, handler, path)
		if !bytes.Equal(a, b) {
			t.Fatalf("%s not byte-stable across reads", path)
		}
	}
}

// TestAPIConcurrentReadsDuringIngest hammers every route while the
// daemon is actively ingesting and reloading; under -race this pins the
// no-locks-shared-with-ingest property of the snapshot read model.
func TestAPIConcurrentReadsDuringIngest(t *testing.T) {
	d, h := newAPIDaemon(t)
	ctx, kill := context.WithCancel(context.Background())
	hup := make(chan os.Signal, 4)
	run := make(chan error, 1)
	go func() { run <- d.Run(ctx, hup) }()

	handler := d.Handler()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			paths := []string{"/api/verdicts", "/api/series/64500", "/api/health", "/metrics"}
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				rec := httptest.NewRecorder()
				handler.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, paths[n%len(paths)], nil))
				if rec.Code >= 500 {
					t.Errorf("%s: %d", paths[n%len(paths)], rec.Code)
					return
				}
			}
		}()
	}
	for i := 0; i < 48; i++ {
		h.clock.Advance(time.Hour)
		hup <- os.Interrupt // reload churn while reads are in flight
		time.Sleep(time.Millisecond)
	}
	want := int64(len(h.timelines["src-alpha"]))
	spinUntil(t, "concurrent ingest", func() bool { return d.Monitor().Stats().Ingested == want })
	close(stop)
	wg.Wait()
	kill()
	if err := <-run; err != nil {
		t.Fatalf("Run: %v", err)
	}
	if g := d.Generation(); g == 0 {
		t.Fatal("no reload applied during the hammer")
	}
}
