package serve

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestParseConfigFull(t *testing.T) {
	cfg, err := ParseConfig([]byte(`{
		"http_addr": "127.0.0.1:0",
		"state_path": "/tmp/lmserved.state",
		"window": "96h",
		"bin_width": "30m",
		"min_traceroutes": 3,
		"max_lateness": 7200000000000,
		"thresholds": {"low": 0.5, "mild": 1, "severe": 3},
		"shards": 4,
		"workers": 2,
		"max_concurrent": 8,
		"startup_jitter": "5m",
		"poll_interval": "1h",
		"targets": [
			{"name": "alpha", "asn": 64500, "source": "/data/alpha.jsonl"},
			{"name": "beta", "asn": 64501, "source": "/data/beta.wire"}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.HTTPAddr != "127.0.0.1:0" || cfg.StatePath != "/tmp/lmserved.state" {
		t.Fatalf("addr/state = %q/%q", cfg.HTTPAddr, cfg.StatePath)
	}
	// Durations parse from both string and nanosecond-number forms.
	if time.Duration(cfg.Window) != 96*time.Hour || time.Duration(cfg.MaxLateness) != 2*time.Hour {
		t.Fatalf("window/lateness = %v/%v", cfg.Window, cfg.MaxLateness)
	}
	if cfg.MaxConcurrent != 8 || time.Duration(cfg.StartupJitter) != 5*time.Minute {
		t.Fatalf("concurrency/jitter = %d/%v", cfg.MaxConcurrent, cfg.StartupJitter)
	}
	if len(cfg.Targets) != 2 || cfg.Targets[1].ASN != 64501 {
		t.Fatalf("targets = %+v", cfg.Targets)
	}
}

func TestParseConfigRejections(t *testing.T) {
	cases := []struct {
		name, doc, want string
	}{
		{"unknown field", `{"tragets": [], "targets": [{"name": "a"}]}`, "unknown field"},
		{"no targets", `{"targets": []}`, "no targets"},
		{"unnamed target", `{"targets": [{"asn": 1, "source": "x"}]}`, "has no name"},
		{"duplicate target", `{"targets": [{"name": "a"}, {"name": "a"}]}`, "duplicate target"},
		{"negative duration", `{"window": "-1h", "targets": [{"name": "a"}]}`, "negative window"},
		{"negative count", `{"shards": -1, "targets": [{"name": "a"}]}`, "negative count"},
		{"bad duration", `{"window": "fortnight", "targets": [{"name": "a"}]}`, "bad duration"},
		{"bad duration type", `{"window": true, "targets": [{"name": "a"}]}`, "string or number"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseConfig([]byte(tc.doc))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestConfigDefaultsPreserveEngineZeros(t *testing.T) {
	cfg, err := ParseConfig([]byte(`{"targets": [{"name": "a", "asn": 1, "source": "x"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.MaxConcurrent != 4 {
		t.Fatalf("MaxConcurrent = %d, want default 4", cfg.MaxConcurrent)
	}
	// Engine-semantic zeros must survive parsing untouched: checkpoint
	// resume relies on zero meaning "adopt the snapshot's value".
	if cfg.Window != 0 || cfg.BinWidth != 0 || cfg.MinTraceroutes != 0 || cfg.MaxLateness != 0 {
		t.Fatalf("engine-semantic fields defaulted: %+v", cfg)
	}
}

func TestReloadableFromFreezesEngineSemantics(t *testing.T) {
	base := func() *Config {
		cfg, err := ParseConfig([]byte(`{
			"http_addr": "127.0.0.1:0", "state_path": "s", "window": "96h",
			"bin_width": "30m", "min_traceroutes": 3, "max_lateness": "2h",
			"thresholds": {"low": 0.5}, "shards": 2, "max_concurrent": 4,
			"targets": [{"name": "a", "asn": 1, "source": "x"}]}`))
		if err != nil {
			t.Fatal(err)
		}
		return cfg
	}
	old := base()

	if err := base().ReloadableFrom(old); err != nil {
		t.Fatalf("identical config not reloadable: %v", err)
	}

	// Operational fields reload freely.
	free := base()
	free.Workers = 8
	free.StartupJitter = Duration(time.Minute)
	free.PollInterval = Duration(time.Hour)
	free.Targets = append(free.Targets, Target{Name: "b", ASN: 2, Source: "y"})
	if err := free.ReloadableFrom(old); err != nil {
		t.Fatalf("operational change rejected: %v", err)
	}

	// Engine-semantic and bind-once fields are frozen.
	frozen := []struct {
		field  string
		mutate func(*Config)
	}{
		{"http_addr", func(c *Config) { c.HTTPAddr = "127.0.0.1:9999" }},
		{"window", func(c *Config) { c.Window = Duration(48 * time.Hour) }},
		{"bin_width", func(c *Config) { c.BinWidth = Duration(time.Hour) }},
		{"min_traceroutes", func(c *Config) { c.MinTraceroutes = 5 }},
		{"max_lateness", func(c *Config) { c.MaxLateness = Duration(time.Hour) }},
		{"thresholds", func(c *Config) { c.Thresholds.Severe = 10 }},
		{"state_path", func(c *Config) { c.StatePath = "other" }},
		{"shards", func(c *Config) { c.Shards = 16 }},
		{"max_concurrent", func(c *Config) { c.MaxConcurrent = 1 }},
	}
	for _, tc := range frozen {
		t.Run(tc.field, func(t *testing.T) {
			next := base()
			tc.mutate(next)
			err := next.ReloadableFrom(old)
			if err == nil || !strings.Contains(err.Error(), tc.field) {
				t.Fatalf("err = %v, want mention of %q", err, tc.field)
			}
		})
	}
}

func TestDiffTargets(t *testing.T) {
	old := []Target{
		{Name: "keep", ASN: 1, Source: "k"},
		{Name: "change", ASN: 2, Source: "old"},
		{Name: "drop", ASN: 3, Source: "d"},
	}
	next := []Target{
		{Name: "zadd", ASN: 4, Source: "z"}, // list order must not matter
		{Name: "change", ASN: 2, Source: "new"},
		{Name: "keep", ASN: 1, Source: "k"},
		{Name: "add", ASN: 5, Source: "a"},
	}
	got := DiffTargets(old, next)
	want := TargetDiff{
		Added:   []Target{{Name: "add", ASN: 5, Source: "a"}, {Name: "zadd", ASN: 4, Source: "z"}},
		Removed: []Target{{Name: "drop", ASN: 3, Source: "d"}},
		Changed: []Target{{Name: "change", ASN: 2, Source: "new"}},
		Kept:    []Target{{Name: "keep", ASN: 1, Source: "k"}},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("diff = %+v, want %+v", got, want)
	}
	// Initial start is the diff against nothing.
	boot := DiffTargets(nil, old)
	if len(boot.Added) != 3 || len(boot.Removed)+len(boot.Changed)+len(boot.Kept) != 0 {
		t.Fatalf("boot diff = %+v", boot)
	}
}

func TestClassifierLayersThresholdsOntoDefaults(t *testing.T) {
	cfg := &Config{Thresholds: ThresholdsConfig{Low: 0.25, Mild: 2, Severe: 8}}
	opts := cfg.classifier()
	if opts.Thresholds.Low != 0.25 || opts.Thresholds.Severe != 8 {
		t.Fatalf("thresholds not applied: %+v", opts.Thresholds)
	}
	// The non-threshold knobs must stay at the paper defaults — a zero
	// MaxGapFrac would make stream.Options discard the whole classifier.
	if opts.MaxGapFrac == 0 {
		t.Fatal("MaxGapFrac zeroed: stream.Options would clobber the classifier")
	}
	zero := &Config{}
	if zero.classifier().Thresholds.Severe == 0 {
		t.Fatal("zero thresholds must select the paper defaults")
	}
}
