package serve

import (
	"testing"
	"time"
)

var clkT0 = time.Date(2019, 9, 1, 0, 0, 0, 0, time.UTC)

func TestFakeClockAdvanceFiresInDeadlineOrder(t *testing.T) {
	c := NewFakeClock(clkT0)
	late := c.After(2 * time.Hour)
	early := c.After(time.Hour)
	tie := c.After(time.Hour) // same deadline as early, registered after

	if got := c.Waiters(); got != 3 {
		t.Fatalf("Waiters() = %d, want 3", got)
	}
	c.Advance(30 * time.Minute)
	select {
	case v := <-early:
		t.Fatalf("early fired at %v before its deadline", v)
	default:
	}

	c.Advance(2 * time.Hour) // now = t0+2h30m: all three are due
	// Delivery values are the deadlines, not the post-advance now.
	if v := <-early; !v.Equal(clkT0.Add(time.Hour)) {
		t.Fatalf("early delivered %v, want %v", v, clkT0.Add(time.Hour))
	}
	if v := <-tie; !v.Equal(clkT0.Add(time.Hour)) {
		t.Fatalf("tie delivered %v, want %v", v, clkT0.Add(time.Hour))
	}
	if v := <-late; !v.Equal(clkT0.Add(2*time.Hour)) {
		t.Fatalf("late delivered %v, want %v", v, clkT0.Add(2*time.Hour))
	}
	if got := c.Waiters(); got != 0 {
		t.Fatalf("Waiters() = %d after firing all, want 0", got)
	}
}

func TestFakeClockNonPositiveAfterFiresImmediately(t *testing.T) {
	c := NewFakeClock(clkT0)
	for _, d := range []time.Duration{0, -time.Second} {
		select {
		case v := <-c.After(d):
			if !v.Equal(clkT0) {
				t.Fatalf("After(%v) delivered %v, want %v", d, v, clkT0)
			}
		default:
			t.Fatalf("After(%v) did not fire immediately", d)
		}
	}
}

func TestFakeClockBlockUntilSeesParkedWaiters(t *testing.T) {
	c := NewFakeClock(clkT0)
	fired := make(chan time.Time, 1)
	go func() {
		fired <- <-c.After(time.Minute)
	}()
	c.BlockUntil(1) // returns only once the goroutine has registered
	c.Advance(time.Minute)
	if v := <-fired; !v.Equal(clkT0.Add(time.Minute)) {
		t.Fatalf("delivered %v, want %v", v, clkT0.Add(time.Minute))
	}
}

func TestFakeClockAbandonedTimerNeverBlocksAdvance(t *testing.T) {
	c := NewFakeClock(clkT0)
	_ = c.After(time.Second) // never read
	done := make(chan struct{})
	go func() {
		c.Advance(time.Minute)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Advance blocked on an abandoned timer channel")
	}
}

func TestFakeClockNegativeAdvancePanics(t *testing.T) {
	c := NewFakeClock(clkT0)
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	c.Advance(-time.Nanosecond)
}
