package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"sort"
	"time"

	"github.com/last-mile-congestion/lastmile/internal/bgp"
	"github.com/last-mile-congestion/lastmile/internal/core"
)

// Duration is a time.Duration that unmarshals from JSON strings in
// time.ParseDuration syntax ("30m", "96h") or from bare nanosecond
// numbers, so config files stay human-readable.
type Duration time.Duration

// UnmarshalJSON parses either a duration string or a nanosecond number.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var v any
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	switch v := v.(type) {
	case string:
		parsed, err := time.ParseDuration(v)
		if err != nil {
			return fmt.Errorf("serve: bad duration %q: %w", v, err)
		}
		*d = Duration(parsed)
		return nil
	case float64:
		*d = Duration(v)
		return nil
	default:
		return fmt.Errorf("serve: duration must be a string or number, got %T", v)
	}
}

// MarshalJSON renders the duration as its string form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// Target is one monitored population: a named input stream attributed
// to an AS. Targets are diffed by Name across reloads — an unchanged
// (Name, ASN, Source) triple keeps its in-flight window untouched; a
// changed one is drained and restarted.
type Target struct {
	// Name identifies the target across reloads.
	Name string `json:"name"`
	// ASN attributes the target's results when the stream does not
	// carry attribution in-band (JSONL input; wire archives override).
	ASN bgp.ASN `json:"asn"`
	// Source locates the target's result stream; its meaning belongs to
	// the SourceOpener (cmd/lmserved opens it as a file path, the soak
	// harness as a key into its synthetic timelines).
	Source string `json:"source"`
}

// Config is the daemon's declarative configuration, loaded from a JSON
// file and hot-reloaded on SIGHUP or every PollInterval. Engine-semantic
// fields (Window, BinWidth, MinTraceroutes, MaxLateness, Thresholds)
// cannot change across a reload — they define the meaning of the
// in-flight window state — and a reload that tries is rejected whole,
// keeping the running config. Target and operational fields reload
// freely.
type Config struct {
	// HTTPAddr is the ops/API listen address; empty disables HTTP.
	HTTPAddr string `json:"http_addr,omitempty"`
	// StatePath is the engine checkpoint file; empty disables
	// checkpointing.
	StatePath string `json:"state_path,omitempty"`

	// Window is the sliding analysis window (default 15 days).
	Window Duration `json:"window,omitempty"`
	// BinWidth is the aggregation bin (default 30 minutes).
	BinWidth Duration `json:"bin_width,omitempty"`
	// MinTraceroutes is the per-bin sanity threshold (default 3).
	MinTraceroutes int `json:"min_traceroutes,omitempty"`
	// MaxLateness tolerates out-of-order arrivals (default 1 hour).
	MaxLateness Duration `json:"max_lateness,omitempty"`
	// Thresholds overrides the classifier's daily-amplitude cutoffs in
	// ms; the zero value selects the paper's defaults.
	Thresholds ThresholdsConfig `json:"thresholds,omitempty"`

	// Shards is the engine lock-stripe count (default GOMAXPROCS).
	Shards int `json:"shards,omitempty"`
	// Workers bounds classification fan-out (default GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// MaxConcurrent bounds how many targets may be inside the engine's
	// ingest path at once (default 4); see the scaling note in
	// DESIGN.md §17 — steady-state ingest capacity is
	// MaxConcurrent / cost(Observe), independent of target count.
	MaxConcurrent int `json:"max_concurrent,omitempty"`
	// StartupJitter spreads target starts deterministically over
	// [0, StartupJitter) by target-name hash, so a restart never
	// thunders every source at once (default 0: start immediately).
	StartupJitter Duration `json:"startup_jitter,omitempty"`
	// PollInterval re-reads the config file this often; zero means
	// reload on SIGHUP only.
	PollInterval Duration `json:"poll_interval,omitempty"`

	// Targets are the monitored populations.
	Targets []Target `json:"targets"`
}

// withDefaults fills zero operational fields. Engine-semantic zeros are
// left alone — stream.Options applies the paper defaults, and a zero
// must stay zero for checkpoint resume to adopt the snapshot's values.
func (c *Config) withDefaults() {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 4
	}
}

// Validate rejects configs that cannot run: no targets, duplicate or
// unnamed targets, or negative durations.
func (c *Config) Validate() error {
	if len(c.Targets) == 0 {
		return errors.New("serve: config has no targets")
	}
	seen := make(map[string]bool, len(c.Targets))
	for i, t := range c.Targets {
		if t.Name == "" {
			return fmt.Errorf("serve: target %d has no name", i)
		}
		if seen[t.Name] {
			return fmt.Errorf("serve: duplicate target %q", t.Name)
		}
		seen[t.Name] = true
	}
	for name, d := range map[string]Duration{
		"window": c.Window, "bin_width": c.BinWidth, "max_lateness": c.MaxLateness,
		"startup_jitter": c.StartupJitter, "poll_interval": c.PollInterval,
	} {
		if d < 0 {
			return fmt.Errorf("serve: negative %s", name)
		}
	}
	if c.MinTraceroutes < 0 || c.Shards < 0 || c.Workers < 0 || c.MaxConcurrent < 0 {
		return errors.New("serve: negative count option")
	}
	return nil
}

// ParseConfig parses and validates a JSON config document. Unknown
// fields are rejected so a typo'd key fails loudly instead of silently
// running with a default.
func ParseConfig(data []byte) (*Config, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	cfg := &Config{}
	if err := dec.Decode(cfg); err != nil {
		return nil, fmt.Errorf("serve: parse config: %w", err)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.withDefaults()
	return cfg, nil
}

// LoadConfig reads and parses the config file at path.
func LoadConfig(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("serve: load config: %w", err)
	}
	return ParseConfig(data)
}

// ReloadableFrom reports whether c can replace old on a live daemon:
// engine-semantic fields must be identical, because the in-flight
// window state was built under them. A non-nil error names the first
// offending field.
func (c *Config) ReloadableFrom(old *Config) error {
	switch {
	case c.HTTPAddr != old.HTTPAddr:
		// The listener is bound once at startup; accepting a changed
		// address here would silently not take effect.
		return errors.New("serve: reload cannot change http_addr (restart required)")
	case c.Window != old.Window:
		return errors.New("serve: reload cannot change window (restart required)")
	case c.BinWidth != old.BinWidth:
		return errors.New("serve: reload cannot change bin_width (restart required)")
	case c.MinTraceroutes != old.MinTraceroutes:
		return errors.New("serve: reload cannot change min_traceroutes (restart required)")
	case c.MaxLateness != old.MaxLateness:
		return errors.New("serve: reload cannot change max_lateness (restart required)")
	case !c.Thresholds.equal(old.Thresholds):
		return errors.New("serve: reload cannot change thresholds (restart required)")
	case c.StatePath != old.StatePath:
		return errors.New("serve: reload cannot change state_path (restart required)")
	case c.Shards != old.Shards:
		return errors.New("serve: reload cannot change shards (restart required)")
	case c.MaxConcurrent != old.MaxConcurrent:
		return errors.New("serve: reload cannot change max_concurrent (restart required)")
	}
	return nil
}

// TargetDiff is the outcome of diffing two target lists by Name.
type TargetDiff struct {
	// Added targets start (with jitter) on reload.
	Added []Target
	// Removed targets are drained on reload.
	Removed []Target
	// Changed targets (same name, different ASN or Source) are drained
	// and restarted with the new definition.
	Changed []Target
	// Kept targets run on untouched — their in-flight windows are never
	// perturbed by a reload.
	Kept []Target
}

// DiffTargets computes the reload diff between two target lists. Output
// slices are sorted by name, so reload application order is
// deterministic.
func DiffTargets(old, next []Target) TargetDiff {
	prev := make(map[string]Target, len(old))
	for _, t := range old {
		prev[t.Name] = t
	}
	var d TargetDiff
	for _, t := range next {
		o, ok := prev[t.Name]
		switch {
		case !ok:
			d.Added = append(d.Added, t)
		case o != t:
			d.Changed = append(d.Changed, t)
		default:
			d.Kept = append(d.Kept, t)
		}
		delete(prev, t.Name)
	}
	for _, t := range prev {
		d.Removed = append(d.Removed, t)
	}
	for _, s := range [][]Target{d.Added, d.Removed, d.Changed, d.Kept} {
		sort.Slice(s, func(i, j int) bool { return s[i].Name < s[j].Name })
	}
	return d
}

// ThresholdsConfig is the config-file form of the classifier cutoffs.
type ThresholdsConfig struct {
	Low    float64 `json:"low,omitempty"`
	Mild   float64 `json:"mild,omitempty"`
	Severe float64 `json:"severe,omitempty"`
}

// equal compares field-wise on float bits, so a NaN threshold compares
// like any other value instead of making a config unequal to itself.
func (t ThresholdsConfig) equal(o ThresholdsConfig) bool {
	return math.Float64bits(t.Low) == math.Float64bits(o.Low) &&
		math.Float64bits(t.Mild) == math.Float64bits(o.Mild) &&
		math.Float64bits(t.Severe) == math.Float64bits(o.Severe)
}

// isZero reports whether no threshold override is set.
func (t ThresholdsConfig) isZero() bool { return t.equal(ThresholdsConfig{}) }

// classifier builds the classifier options from the config's threshold
// overrides. The base is always the paper defaults — stream.Options
// replaces a zero-MaxGapFrac ClassifierOptions wholesale, so partial
// overrides must be layered onto a fully populated value.
func (c *Config) classifier() core.ClassifierOptions {
	opts := core.DefaultClassifierOptions()
	if !c.Thresholds.isZero() {
		opts.Thresholds = core.Thresholds{
			Low:    c.Thresholds.Low,
			Mild:   c.Thresholds.Mild,
			Severe: c.Thresholds.Severe,
		}
	}
	return opts
}
