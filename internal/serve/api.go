package serve

// The daemon's read side. Ingest and reads are decoupled through an
// immutable published Snapshot: the maintenance loop classifies the
// window when the observation watermark crosses a bin boundary and
// atomically swaps the result in; API handlers only ever load the
// pointer. Reads therefore never take an engine lock, never block an
// Observe, and two reads between refreshes see the identical world —
// the consistency model is "frozen at the last bin boundary", not
// "racing the ingest path".

import (
	"encoding/json"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"github.com/last-mile-congestion/lastmile/internal/bgp"
	"github.com/last-mile-congestion/lastmile/internal/stream"
)

// snapNoBin is the "no snapshot yet / snapshot holds no data" bin
// sentinel, chosen to never collide with a real engine bin key.
const snapNoBin = -1 << 62

// Snapshot is the daemon's immutable read model: the classified state
// of the window at one moment, shared by every API handler until the
// next refresh replaces it whole.
type Snapshot struct {
	// Gen is the config generation the snapshot was built under.
	Gen int64
	// Built is the daemon-clock time the snapshot was taken.
	Built time.Time
	// Newest is the newest observation; zero before any data.
	Newest time.Time
	// Bin is the engine bin key covering Newest (snapNoBin before any
	// data) — the refresh gate compares it against the live watermark.
	Bin int64
	// WindowStart/NBins/BinWidth are the analysis window the verdicts
	// were computed over.
	WindowStart time.Time
	NBins       int
	BinWidth    time.Duration
	// Verdicts holds one classification per classifiable AS, sorted by
	// ASN; Skipped records the ASes that could not be classified yet.
	Verdicts []*stream.Verdict
	Skipped  []stream.SkippedAS
	// Stats are the engine counters at snapshot time.
	Stats stream.Stats

	byASN map[bgp.ASN]*stream.Verdict
}

// Verdict returns the snapshot's verdict for asn, if any.
func (s *Snapshot) Verdict(asn bgp.ASN) (*stream.Verdict, bool) {
	v, ok := s.byASN[asn]
	return v, ok
}

// snapshotBox is the atomically swapped Snapshot slot.
type snapshotBox struct{ p atomic.Pointer[Snapshot] }

func (b *snapshotBox) load() *Snapshot   { return b.p.Load() }
func (b *snapshotBox) store(s *Snapshot) { b.p.Store(s) }

// bin returns the published snapshot's covered bin key, or snapNoBin.
func (b *snapshotBox) bin() int64 {
	if s := b.p.Load(); s != nil {
		return s.Bin
	}
	return snapNoBin
}

// refreshSnapshot classifies the current window and publishes the
// result. It runs on the maintenance goroutine (construction, bin
// boundaries, drain) — never concurrently with itself, and concurrently
// with ingest only where the engine's shard locking already makes
// classification safe.
func (d *Daemon) refreshSnapshot() {
	defer d.refreshTimer.Start().Stop()
	verdicts, skipped := d.monitor.ClassifyAll()
	s := &Snapshot{
		Built:    d.clock.Now(),
		Bin:      snapNoBin,
		BinWidth: d.monitor.BinWidth(),
		Verdicts: verdicts,
		Skipped:  skipped,
		Stats:    d.monitor.Stats(),
		byASN:    make(map[bgp.ASN]*stream.Verdict, len(verdicts)),
	}
	if newest, ok := d.monitor.Newest(); ok {
		s.Newest = newest
	}
	if bin, ok := d.monitor.NewestBin(); ok {
		s.Bin = bin
	}
	if start, nBins, ok := d.monitor.WindowBounds(); ok {
		s.WindowStart, s.NBins = start, nBins
	}
	for _, v := range verdicts {
		s.byASN[v.ASN] = v
	}
	d.mu.Lock()
	s.Gen = d.gen
	d.mu.Unlock()
	d.snap.store(s)
	d.refreshes.Inc()
}

// ReadSnapshot returns the currently published read model — what the
// API handlers serve. Never nil after New.
func (d *Daemon) ReadSnapshot() *Snapshot { return d.snap.load() }

// Handler returns the daemon's full ops endpoint: the standard OpsMux
// (/metrics, /metrics.json, /debug/pprof) plus the snapshot-backed
// /api routes.
func (d *Daemon) Handler() http.Handler {
	mux := d.reg.OpsMux()
	mux.HandleFunc("GET /api/verdicts", d.counted(d.handleVerdicts))
	mux.HandleFunc("GET /api/series/{asn}", d.counted(d.handleSeries))
	mux.HandleFunc("GET /api/health", d.counted(d.handleHealth))
	return mux
}

// counted wraps an API handler with the request counter.
func (d *Daemon) counted(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		d.apiRequests.Inc()
		h(w, r)
	}
}

// writeJSON renders v with a stable indent; API responses are golden-
// tested byte-for-byte.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// jsonVerdict is the API shape of one classified AS.
type jsonVerdict struct {
	ASN            bgp.ASN `json:"asn"`
	Class          string  `json:"class"`
	DailyAmplitude float64 `json:"daily_amplitude_ms"`
	IsDaily        bool    `json:"is_daily"`
	Probes         int     `json:"probes"`
	PeakFreqPerDay float64 `json:"peak_freq_per_day"`
	PeakP2P        float64 `json:"peak_p2p_ms"`
}

// jsonSkipped is the API shape of one unclassifiable AS.
type jsonSkipped struct {
	ASN    bgp.ASN `json:"asn"`
	Reason string  `json:"reason"`
}

// jsonWindow is the analysis-window header shared by list responses.
type jsonWindow struct {
	Start    *time.Time `json:"start,omitempty"`
	Bins     int        `json:"bins"`
	BinWidth string     `json:"bin_width"`
}

// verdictsResponse is the /api/verdicts document.
type verdictsResponse struct {
	Generation int64         `json:"generation"`
	Window     jsonWindow    `json:"window"`
	Verdicts   []jsonVerdict `json:"verdicts"`
	Skipped    []jsonSkipped `json:"skipped,omitempty"`
}

// snapWindow renders a snapshot's analysis window.
func snapWindow(s *Snapshot) jsonWindow {
	w := jsonWindow{Bins: s.NBins, BinWidth: s.BinWidth.String()}
	if !s.WindowStart.IsZero() {
		t := s.WindowStart.UTC()
		w.Start = &t
	}
	return w
}

// handleVerdicts serves the classified state of every monitored AS from
// the published snapshot.
func (d *Daemon) handleVerdicts(w http.ResponseWriter, _ *http.Request) {
	s := d.snap.load()
	resp := verdictsResponse{
		Generation: s.Gen,
		Window:     snapWindow(s),
		Verdicts:   make([]jsonVerdict, 0, len(s.Verdicts)),
	}
	for _, v := range s.Verdicts {
		resp.Verdicts = append(resp.Verdicts, jsonVerdict{
			ASN:            v.ASN,
			Class:          v.Class.String(),
			DailyAmplitude: v.DailyAmplitude,
			IsDaily:        v.IsDaily,
			Probes:         v.Probes,
			PeakFreqPerDay: v.Peak.Freq * 24,
			PeakP2P:        v.Peak.P2P,
		})
	}
	for _, sk := range s.Skipped {
		resp.Skipped = append(resp.Skipped, jsonSkipped{ASN: sk.ASN, Reason: sk.Reason.Error()})
	}
	writeJSON(w, resp)
}

// seriesResponse is the /api/series/{asn} document. Values mirror the
// aggregated queuing-delay signal; gap bins are null (JSON has no NaN).
type seriesResponse struct {
	ASN        bgp.ASN    `json:"asn"`
	Generation int64      `json:"generation"`
	Start      time.Time  `json:"start"`
	StepSecs   float64    `json:"step_seconds"`
	Values     []*float64 `json:"values"`
}

// handleSeries serves one AS's aggregated delay signal from the
// published snapshot: 400 for an unparseable ASN, 404 for an AS the
// snapshot holds no verdict for.
func (d *Daemon) handleSeries(w http.ResponseWriter, r *http.Request) {
	raw := r.PathValue("asn")
	n, err := strconv.ParseUint(raw, 10, 32)
	if err != nil {
		http.Error(w, "bad asn: "+raw, http.StatusBadRequest)
		return
	}
	s := d.snap.load()
	v, ok := s.Verdict(bgp.ASN(n))
	if !ok {
		http.Error(w, "no verdict for AS"+raw, http.StatusNotFound)
		return
	}
	sig := v.Signal
	resp := seriesResponse{
		ASN:        v.ASN,
		Generation: s.Gen,
		Start:      sig.Start.UTC(),
		StepSecs:   sig.Step.Seconds(),
		Values:     make([]*float64, len(sig.Values)),
	}
	for i, val := range sig.Values {
		if !math.IsNaN(val) {
			v := val
			resp.Values[i] = &v
		}
	}
	writeJSON(w, resp)
}

// jsonTarget is one target's live lifecycle state in /api/health.
type jsonTarget struct {
	Name     string  `json:"name"`
	ASN      bgp.ASN `json:"asn"`
	State    string  `json:"state"`
	Ingested int64   `json:"ingested"`
}

// healthResponse is the /api/health document: config generation and
// target lifecycle are read live (under the daemon lock only — never an
// engine lock); window facts come from the published snapshot.
type healthResponse struct {
	Status     string       `json:"status"`
	Generation int64        `json:"generation"`
	LastReload *time.Time   `json:"last_reload,omitempty"`
	Window     jsonWindow   `json:"window"`
	Newest     *time.Time   `json:"newest,omitempty"`
	Ingested   int64        `json:"ingested"`
	Dropped    int64        `json:"dropped"`
	ASes       int64        `json:"ases"`
	Targets    []jsonTarget `json:"targets"`
}

// handleHealth serves the daemon's liveness document.
func (d *Daemon) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s := d.snap.load()
	resp := healthResponse{
		Status:   "ok",
		Window:   snapWindow(s),
		Ingested: s.Stats.Ingested,
		Dropped:  s.Stats.Dropped,
		ASes:     s.Stats.ASes,
	}
	if !s.Newest.IsZero() {
		t := s.Newest.UTC()
		resp.Newest = &t
	}
	d.mu.Lock()
	resp.Generation = d.gen
	if !d.lastReload.IsZero() {
		t := d.lastReload.UTC()
		resp.LastReload = &t
	}
	if d.draining {
		resp.Status = "draining"
	}
	resp.Targets = make([]jsonTarget, 0, len(d.targets))
	for _, r := range d.targets {
		resp.Targets = append(resp.Targets, jsonTarget{
			Name:     r.target.Name,
			ASN:      r.target.ASN,
			State:    r.state.get().String(),
			Ingested: r.ingested.get(),
		})
	}
	d.mu.Unlock()
	sort.Slice(resp.Targets, func(i, j int) bool { return resp.Targets[i].Name < resp.Targets[j].Name })
	writeJSON(w, resp)
}
