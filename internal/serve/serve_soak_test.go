package serve

// The deterministic soak harness — the pin on the daemon's headline
// claim: a long-running lmserved, through config reloads, target churn,
// a SIGHUP storm, and a kill-and-resume, ends with verdicts
// bit-identical to a batch core.RunSurvey replay of exactly the
// observations it was handed.
//
// Determinism comes from three properties working together:
//
//   - Time is simulated: every timer in the daemon goes through the
//     Clock seam, and the harness's sources release an observation only
//     once the fake clock reaches its timestamp, so "three simulated
//     days" runs in milliseconds and every reload lands at an exact
//     simulated instant.
//   - The ledger records ground truth at the only correct point: a
//     source appends to it when Next hands a result out, and the
//     daemon's runner contract (a returned result is always delivered,
//     even mid-drain) makes ledger == engine input by construction.
//   - The engine's exact order-statistic medians make final verdicts
//     independent of goroutine interleaving, so the equivalence holds
//     under -race schedules and any worker/shard interleaving — the
//     harness never needs to serialise ingest to compare results.
//
// The timeline (simulated, t0 = 2019-09-01T00:00Z, window 72h):
//
//	t0-1h    boot v1 {alpha, beta, gamma}; alpha congested, beta flat,
//	         gamma short-lived (EOF at 24h)
//	24h      HUP -> v2: remove finished gamma, add delta (data from 25h)
//	48h      HUP -> v3: remove beta MID-STREAM (its data runs to 72h);
//	         then a 5x HUP storm of no-op reloads
//	60h      SIGTERM-equivalent: ctx cancel -> drain, final checkpoint
//	60h      second daemon resumes from the checkpoint, phase-2 sources
//	         serve strictly post-60h data; config now polls hourly
//	62h      config file rewritten -> v4 adds epsilon (data from 66h),
//	         picked up by the POLL path, no signal sent
//	72h      final drain; published snapshot vs batch replay of ledger

import (
	"context"
	"fmt"
	"io"
	"math"
	"net/netip"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/last-mile-congestion/lastmile/internal/bgp"
	"github.com/last-mile-congestion/lastmile/internal/core"
	"github.com/last-mile-congestion/lastmile/internal/traceroute"
)

var soakT0 = time.Date(2019, 9, 1, 0, 0, 0, 0, time.UTC)

// soakTrace builds a 2-hop traceroute with the given last-mile delta.
func soakTrace(probeID int, ts time.Time, deltaMs float64) *traceroute.Result {
	priv := netip.MustParseAddr("192.168.1.1")
	pub := netip.MustParseAddr("203.0.113.1")
	r := &traceroute.Result{
		ProbeID: probeID, MsmID: 5004, Timestamp: ts, AF: 4,
		SrcAddr: netip.MustParseAddr("192.168.1.10"),
		DstAddr: netip.MustParseAddr("198.41.0.4"),
	}
	h1 := traceroute.HopResult{Hop: 1}
	h2 := traceroute.HopResult{Hop: 2}
	for i := 0; i < 3; i++ {
		h1.Replies = append(h1.Replies, traceroute.Reply{From: priv, RTT: 0.5, TTL: 64})
		h2.Replies = append(h2.Replies, traceroute.Reply{From: pub, RTT: 0.5 + deltaMs, TTL: 254})
	}
	r.Hops = []traceroute.HopResult{h1, h2}
	return r
}

// soakObs is one scheduled observation in a target timeline.
type soakObs struct {
	asn bgp.ASN
	ts  time.Time
	res *traceroute.Result
}

// diurnalTimeline builds [from, to) at the given step for three probes,
// with a 12:00–18:00 UTC queuing bump of bumpMs over a 2 ms base.
func diurnalTimeline(asn bgp.ASN, probeBase int, from, to time.Time, step time.Duration, bumpMs float64) []soakObs {
	var out []soakObs
	for ts := from; ts.Before(to); ts = ts.Add(step) {
		delta := 2.0
		if h := ts.Hour(); h >= 12 && h < 18 {
			delta += bumpMs
		}
		for p := 0; p < 3; p++ {
			out = append(out, soakObs{asn: asn, ts: ts, res: soakTrace(probeBase + p, ts, delta)})
		}
	}
	return out
}

// releasedCount counts the timeline prefix a clock-gated source has
// released by cutoff (inclusive — a source releases ts once now >= ts).
func releasedCount(tl []soakObs, cutoff time.Time) int64 {
	var n int64
	for _, o := range tl {
		if !o.ts.After(cutoff) {
			n++
		}
	}
	return n
}

// suffixAfter returns the timeline strictly after cutoff — what a
// resumed daemon's source must serve when the killed daemon had
// released everything through cutoff.
func suffixAfter(tl []soakObs, cutoff time.Time) []soakObs {
	var out []soakObs
	for _, o := range tl {
		if o.ts.After(cutoff) {
			out = append(out, o)
		}
	}
	return out
}

// soakHarness owns the fake clock, the per-source timelines, and the
// ledger of every observation actually handed to a daemon.
type soakHarness struct {
	clock *FakeClock

	mu        sync.Mutex
	timelines map[string][]soakObs
	ledger    []core.AttributedResult
}

// setTimelines swaps the source map (phase-2 suffixes replace phase-1
// timelines before the resumed daemon opens its sources).
func (h *soakHarness) setTimelines(m map[string][]soakObs) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.timelines = m
}

// record appends one handed-out observation to the ledger.
func (h *soakHarness) record(o soakObs) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.ledger = append(h.ledger, core.AttributedResult{ASN: o.asn, Result: o.res})
}

// ledgerCopy snapshots the ledger for batch replay.
func (h *soakHarness) ledgerCopy() []core.AttributedResult {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]core.AttributedResult(nil), h.ledger...)
}

// opener resolves Target.Source as a timeline key.
func (h *soakHarness) opener(t Target) (Source, error) {
	h.mu.Lock()
	tl, ok := h.timelines[t.Source]
	h.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("soak: no timeline %q", t.Source)
	}
	return &scriptSource{h: h, obs: tl}, nil
}

// scriptSource replays a timeline gated by the fake clock: an
// observation is released only once simulated now reaches its
// timestamp, so a drain at simulated time T hands out exactly the
// prefix through T.
type scriptSource struct {
	h   *soakHarness
	obs []soakObs
	i   int
}

func (s *scriptSource) Next(ctx context.Context) (bgp.ASN, *traceroute.Result, error) {
	if err := ctx.Err(); err != nil {
		return 0, nil, err
	}
	if s.i >= len(s.obs) {
		return 0, nil, io.EOF
	}
	o := s.obs[s.i]
	// Gate on the absolute simulated timestamp: AfterTime is immune to
	// the register/advance race, so a source never parks past its
	// release instant no matter how the test's Advance calls interleave
	// with runner scheduling.
	for o.ts.After(s.h.clock.Now()) {
		select {
		case <-s.h.clock.AfterTime(o.ts):
		case <-ctx.Done():
			return 0, nil, ctx.Err()
		}
	}
	s.i++
	// Ledger at hand-out time: the runner contract guarantees this
	// result reaches the engine even if the drain lands right now.
	s.h.record(o)
	return o.asn, o.res, nil
}

func (s *scriptSource) Close() error { return nil }

// spinUntil waits (bounded) for an asynchronously-ingesting daemon to
// reach a condition. The condition is deterministic — the spin only
// bridges goroutine scheduling, never simulated time.
func spinUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
}

// soakConfig renders one config file version.
func soakConfig(statePath, poll string, targets ...Target) string {
	doc := `{
  "state_path": %q,
  "window": "72h", "bin_width": "30m", "min_traceroutes": 3, "max_lateness": "2h",
  "shards": 4, "workers": 2, "max_concurrent": 2,
  "poll_interval": %q,
  "targets": [`
	out := fmt.Sprintf(doc, statePath, poll)
	for i, t := range targets {
		if i > 0 {
			out += ","
		}
		out += fmt.Sprintf("\n    {\"name\": %q, \"asn\": %d, \"source\": %q}", t.Name, t.ASN, t.Source)
	}
	return out + "\n  ]\n}\n"
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestServeSoakEquivalence(t *testing.T) {
	// Sampling cadence scales with test mode. 10 minutes is the floor:
	// it yields exactly min_traceroutes (3) per probe-bin, so anything
	// sparser would leave every bin below the sanity threshold.
	step := 5 * time.Minute
	if testing.Short() {
		step = 10 * time.Minute
	}
	dir := t.TempDir()
	cfgPath := filepath.Join(dir, "lmserved.json")
	statePath := filepath.Join(dir, "lmserved.state")

	tgt := func(name string, asn bgp.ASN) Target {
		return Target{Name: name, ASN: asn, Source: "src-" + name}
	}
	alpha, beta, gamma := tgt("alpha", 64500), tgt("beta", 64501), tgt("gamma", 64502)
	delta, epsilon := tgt("delta", 64503), tgt("epsilon", 64504)

	at := func(d time.Duration) time.Time { return soakT0.Add(d) }
	full := map[string][]soakObs{
		alpha.Source:   diurnalTimeline(alpha.ASN, 1, at(0), at(72*time.Hour), step, 8),
		beta.Source:    diurnalTimeline(beta.ASN, 4, at(0), at(72*time.Hour), step, 0),
		gamma.Source:   diurnalTimeline(gamma.ASN, 7, at(0), at(24*time.Hour), step, 3),
		delta.Source:   diurnalTimeline(delta.ASN, 10, at(25*time.Hour), at(72*time.Hour), step, 8),
		epsilon.Source: diurnalTimeline(epsilon.ASN, 13, at(66*time.Hour), at(72*time.Hour), step, 0),
	}
	h := &soakHarness{clock: NewFakeClock(at(-time.Hour))}
	h.setTimelines(full)

	logf := func(format string, args ...any) { t.Logf("daemon: "+format, args...) }

	// ---- Phase 1: boot v1, reload to v2 and v3, HUP storm, kill at 60h.
	writeFile(t, cfgPath, soakConfig(statePath, "0s", alpha, beta, gamma))
	d1, err := New(cfgPath, Options{Clock: h.clock, Open: h.opener, Logf: logf})
	if err != nil {
		t.Fatal(err)
	}
	ctx1, kill1 := context.WithCancel(context.Background())
	hup1 := make(chan os.Signal, 16)
	run1 := make(chan error, 1)
	go func() { run1 <- d1.Run(ctx1, hup1) }()

	ingested := func(d *Daemon, want int64) func() bool {
		return func() bool { return d.Monitor().Stats().Ingested == want }
	}

	// Day 1: alpha+beta stream, gamma streams its 24h and finishes.
	h.clock.Advance(25 * time.Hour) // sim now = 24h
	want := releasedCount(full[alpha.Source], at(24*time.Hour)) +
		releasedCount(full[beta.Source], at(24*time.Hour)) +
		int64(len(full[gamma.Source]))
	spinUntil(t, "day-1 ingest", ingested(d1, want))

	// Reload v2 at 24h: drop finished gamma, add delta.
	writeFile(t, cfgPath, soakConfig(statePath, "0s", alpha, beta, delta))
	hup1 <- os.Interrupt // any signal value: the channel is the trigger
	spinUntil(t, "reload v2", func() bool { return d1.Generation() == 1 })

	// Day 2: delta joins at 25h.
	h.clock.Advance(24 * time.Hour) // sim now = 48h
	want = releasedCount(full[alpha.Source], at(48*time.Hour)) +
		releasedCount(full[beta.Source], at(48*time.Hour)) +
		int64(len(full[gamma.Source])) +
		releasedCount(full[delta.Source], at(48*time.Hour))
	spinUntil(t, "day-2 ingest", ingested(d1, want))

	// Reload v3 at 48h: beta is removed MID-STREAM — its timeline runs
	// to 72h, but the drain freezes its contribution at exactly <=48h.
	// applyConfig waits for the drained runner before returning, so
	// Generation()==2 implies beta is fully stopped.
	writeFile(t, cfgPath, soakConfig(statePath, "0s", alpha, delta))
	hup1 <- os.Interrupt
	spinUntil(t, "reload v3", func() bool { return d1.Generation() == 2 })

	// HUP storm: five rapid no-op reloads must not perturb anything.
	for i := 0; i < 5; i++ {
		hup1 <- os.Interrupt
	}
	spinUntil(t, "HUP storm", func() bool { return d1.Generation() == 7 })

	// Half of day 3, then kill mid-stream.
	h.clock.Advance(12 * time.Hour) // sim now = 60h
	phase1Want := releasedCount(full[alpha.Source], at(60*time.Hour)) +
		releasedCount(full[beta.Source], at(48*time.Hour)) +
		int64(len(full[gamma.Source])) +
		releasedCount(full[delta.Source], at(60*time.Hour))
	spinUntil(t, "pre-kill ingest", ingested(d1, phase1Want))

	kill1()
	if err := <-run1; err != nil {
		t.Fatalf("phase-1 Run: %v", err)
	}
	if _, err := os.Stat(statePath); err != nil {
		t.Fatalf("final checkpoint missing: %v", err)
	}
	if got := int64(len(h.ledgerCopy())); got != phase1Want {
		t.Fatalf("phase-1 ledger = %d results, want %d", got, phase1Want)
	}

	// ---- Phase 2: resume from the checkpoint; sources serve strictly
	// post-kill data; the config now polls so v4 needs no signal.
	h.setTimelines(map[string][]soakObs{
		alpha.Source:   suffixAfter(full[alpha.Source], at(60*time.Hour)),
		delta.Source:   suffixAfter(full[delta.Source], at(60*time.Hour)),
		epsilon.Source: full[epsilon.Source],
	})
	writeFile(t, cfgPath, soakConfig(statePath, "1h", alpha, delta))
	d2, err := New(cfgPath, Options{Clock: h.clock, Open: h.opener, Logf: logf})
	if err != nil {
		t.Fatal(err)
	}
	// Restored engine counters prove this is a resume, not a cold start.
	if got := d2.Monitor().Stats().Ingested; got != phase1Want {
		t.Fatalf("resumed monitor Ingested = %d, want %d", got, phase1Want)
	}
	ctx2, kill2 := context.WithCancel(context.Background())
	hup2 := make(chan os.Signal, 1)
	run2 := make(chan error, 1)
	go func() { run2 <- d2.Run(ctx2, hup2) }()

	h.clock.Advance(2 * time.Hour) // sim now = 62h
	want = phase1Want +
		releasedCount(full[alpha.Source], at(62*time.Hour)) - releasedCount(full[alpha.Source], at(60*time.Hour)) +
		releasedCount(full[delta.Source], at(62*time.Hour)) - releasedCount(full[delta.Source], at(60*time.Hour))
	spinUntil(t, "post-resume ingest", ingested(d2, want))

	// v4 lands on disk at 62h; only the hourly poll can pick it up. The
	// poll fires on a maintenance wakeup, so advance in small simulated
	// steps until the daemon has the new target (well before epsilon's
	// 66h data start).
	writeFile(t, cfgPath, soakConfig(statePath, "1h", alpha, delta, epsilon))
	hasEpsilon := func() bool {
		d2.mu.Lock()
		defer d2.mu.Unlock()
		_, ok := d2.targets[epsilon.Name]
		return ok
	}
	for !hasEpsilon() {
		if h.clock.Now().After(at(65 * time.Hour)) {
			t.Fatal("poll reload never picked up v4")
		}
		h.clock.Advance(10 * time.Minute)
		time.Sleep(time.Millisecond)
	}

	// Run out the clock; every source hits EOF.
	for h.clock.Now().Before(at(72 * time.Hour)) {
		h.clock.Advance(time.Hour)
	}
	finalWant := int64(len(full[gamma.Source])) +
		releasedCount(full[beta.Source], at(48*time.Hour)) +
		int64(len(full[alpha.Source])+len(full[delta.Source])+len(full[epsilon.Source]))
	spinUntil(t, "final ingest", ingested(d2, finalWant))

	kill2()
	if err := <-run2; err != nil {
		t.Fatalf("phase-2 Run: %v", err)
	}

	// ---- Equivalence: published snapshot vs batch replay of the ledger.
	ledger := h.ledgerCopy()
	if int64(len(ledger)) != finalWant {
		t.Fatalf("ledger = %d results, want %d", len(ledger), finalWant)
	}
	snap := d2.ReadSnapshot()
	if snap == nil || len(snap.Verdicts) == 0 {
		t.Fatal("no final snapshot verdicts")
	}
	start, nBins, ok := d2.Monitor().WindowBounds()
	if !ok {
		t.Fatal("no window bounds after soak")
	}
	end := start.Add(time.Duration(nBins) * snap.BinWidth)
	batch, batchSkipped, err := core.RunSurvey("soak-replay", ledger, core.SurveyOptions{
		Start: start, End: end, BinWidth: snap.BinWidth, MinTraceroutes: 3,
		Workers: 1, Shards: 1,
	})
	if err != nil {
		t.Fatal(err)
	}

	if len(snap.Verdicts) != batch.Len() {
		t.Fatalf("%d daemon verdicts vs %d batch results", len(snap.Verdicts), batch.Len())
	}
	if len(snap.Skipped) != len(batchSkipped) {
		t.Fatalf("%d daemon skips vs %d batch skips", len(snap.Skipped), len(batchSkipped))
	}
	for i := range snap.Skipped {
		if snap.Skipped[i].ASN != batchSkipped[i].ASN {
			t.Fatalf("skip %d: AS%v vs batch AS%v", i, snap.Skipped[i].ASN, batchSkipped[i].ASN)
		}
	}
	for _, v := range snap.Verdicts {
		b := batch.Results[v.ASN]
		if b == nil {
			t.Fatalf("AS%v in daemon snapshot but absent from batch replay", v.ASN)
		}
		if v.Probes != b.Probes || v.Class != b.Class || v.IsDaily != b.IsDaily {
			t.Fatalf("AS%v verdict {%d, %v, %v} vs batch {%d, %v, %v}",
				v.ASN, v.Probes, v.Class, v.IsDaily, b.Probes, b.Class, b.IsDaily)
		}
		if math.Float64bits(v.DailyAmplitude) != math.Float64bits(b.DailyAmplitude) {
			t.Fatalf("AS%v amplitude %v vs batch %v", v.ASN, v.DailyAmplitude, b.DailyAmplitude)
		}
		if fmt.Sprintf("%#v", v.Peak) != fmt.Sprintf("%#v", b.Peak) {
			t.Fatalf("AS%v peak %#v vs batch %#v", v.ASN, v.Peak, b.Peak)
		}
		if !v.Signal.Start.Equal(b.Signal.Start) || v.Signal.Step != b.Signal.Step ||
			len(v.Signal.Values) != len(b.Signal.Values) {
			t.Fatalf("AS%v signal axis differs", v.ASN)
		}
		for i := range v.Signal.Values {
			if math.Float64bits(v.Signal.Values[i]) != math.Float64bits(b.Signal.Values[i]) {
				t.Fatalf("AS%v signal[%d] = %v vs batch %v",
					v.ASN, i, v.Signal.Values[i], b.Signal.Values[i])
			}
		}
	}

	// Scenario sanity: the congested targets report, the flat one is
	// None, and the short-lived ones are too gappy to classify.
	byASN := map[bgp.ASN]*core.Class{}
	for _, v := range snap.Verdicts {
		c := v.Class
		byASN[v.ASN] = &c
	}
	if c := byASN[alpha.ASN]; c == nil || !c.Reported() {
		t.Fatalf("alpha class = %v, want congested", c)
	}
	if c := byASN[beta.ASN]; c == nil || *c != core.None {
		t.Fatalf("beta class = %v, want None", c)
	}
	for _, asn := range []bgp.ASN{gamma.ASN, epsilon.ASN} {
		if byASN[asn] != nil {
			t.Fatalf("AS%v classified, want skipped as too gappy", asn)
		}
	}
	// The soak exercised the reload machinery hard: 7 applied reloads in
	// phase 1 (two diffs + the storm) and at least the poll-applied v4
	// in phase 2.
	if d1.Generation() != 7 || d2.Generation() < 1 {
		t.Fatalf("generations = %d/%d, want 7/>=1", d1.Generation(), d2.Generation())
	}
}
