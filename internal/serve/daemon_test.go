package serve

// Daemon unit tests: deterministic startup jitter, the reload rejection
// paths (bad JSON, frozen engine-semantic fields, reload-while-draining),
// and the invariant that a rejected reload leaves the running config,
// generation, and target set untouched.

import (
	"context"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestJitterForDeterministicAndBounded(t *testing.T) {
	dir := t.TempDir()
	cfgPath := filepath.Join(dir, "cfg.json")
	writeFile(t, cfgPath, `{
  "window": "48h", "bin_width": "30m", "startup_jitter": "1h",
  "targets": [{"name": "alpha", "asn": 64500, "source": "src-alpha"}]
}`)
	h := &soakHarness{clock: NewFakeClock(soakT0)}
	h.setTimelines(map[string][]soakObs{"src-alpha": nil})
	d, err := New(cfgPath, Options{Clock: h.clock, Open: h.opener, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}

	jitter := time.Duration(d.cfg.StartupJitter)
	seen := map[time.Duration]bool{}
	for _, name := range []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"} {
		j1, j2 := d.jitterFor(name), d.jitterFor(name)
		if j1 != j2 {
			t.Fatalf("jitterFor(%q) not deterministic: %v vs %v", name, j1, j2)
		}
		if j1 < 0 || j1 >= jitter {
			t.Fatalf("jitterFor(%q) = %v, want in [0, %v)", name, j1, jitter)
		}
		seen[j1] = true
	}
	if len(seen) < 2 {
		t.Fatalf("all names hashed to the same jitter %v: no spread", seen)
	}

	// Zero configured jitter disables the stagger entirely.
	d.mu.Lock()
	d.cfg.StartupJitter = 0
	d.mu.Unlock()
	if j := d.jitterFor("alpha"); j != 0 {
		t.Fatalf("jitterFor with zero jitter = %v, want 0", j)
	}
}

func TestStartupJitterDelaysSourceOpen(t *testing.T) {
	dir := t.TempDir()
	cfgPath := filepath.Join(dir, "cfg.json")
	writeFile(t, cfgPath, `{
  "window": "48h", "bin_width": "30m", "min_traceroutes": 3, "max_lateness": "2h",
  "startup_jitter": "1h",
  "targets": [
    {"name": "alpha", "asn": 64500, "source": "src-alpha"},
    {"name": "beta", "asn": 64501, "source": "src-beta"}
  ]
}`)
	h := &soakHarness{clock: NewFakeClock(soakT0)}
	h.setTimelines(map[string][]soakObs{
		"src-alpha": diurnalTimeline(64500, 1, soakT0.Add(-time.Hour), soakT0, 10*time.Minute, 8),
		"src-beta":  diurnalTimeline(64501, 4, soakT0.Add(-time.Hour), soakT0, 10*time.Minute, 8),
	})
	var opens atomic.Int64
	open := func(tgt Target) (Source, error) {
		opens.Add(1)
		return h.opener(tgt)
	}
	d, err := New(cfgPath, Options{Clock: h.clock, Open: open, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"alpha", "beta"} {
		if d.jitterFor(name) <= 0 {
			t.Fatalf("precondition: jitterFor(%q) = %v, want > 0", name, d.jitterFor(name))
		}
	}

	ctx, kill := context.WithCancel(context.Background())
	run := make(chan error, 1)
	go func() { run <- d.Run(ctx, nil) }()

	// Both runners park on their jitter timers and the maintenance loop
	// parks on its tick before time moves: no source may open yet.
	h.clock.BlockUntil(3)
	if n := opens.Load(); n != 0 {
		t.Fatalf("%d source(s) opened before the jitter elapsed", n)
	}

	// Advancing past the jitter bound releases both runners; the data is
	// all older than now, so ingest runs straight to EOF.
	h.clock.Advance(time.Hour)
	want := int64(len(h.timelines["src-alpha"]) + len(h.timelines["src-beta"]))
	spinUntil(t, "jittered ingest", func() bool { return d.Monitor().Stats().Ingested == want })
	if n := opens.Load(); n != 2 {
		t.Fatalf("opens = %d after jitter, want 2", n)
	}
	kill()
	if err := <-run; err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// targetNames reads the live target set the way the health handler does.
func targetNames(d *Daemon) []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	names := make([]string, 0, len(d.targets))
	for name := range d.targets {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func TestReloadRejectionsKeepRunningConfig(t *testing.T) {
	dir := t.TempDir()
	cfgPath := filepath.Join(dir, "cfg.json")
	v1 := `{
  "window": "48h", "bin_width": "30m", "min_traceroutes": 3, "max_lateness": "2h",
  "targets": [{"name": "alpha", "asn": 64500, "source": "src-alpha"}]
}`
	writeFile(t, cfgPath, v1)
	h := &soakHarness{clock: NewFakeClock(soakT0)}
	h.setTimelines(map[string][]soakObs{
		"src-alpha": diurnalTimeline(64500, 1, soakT0.Add(-time.Hour), soakT0, 10*time.Minute, 8),
		"src-beta":  diurnalTimeline(64501, 4, soakT0.Add(-time.Hour), soakT0, 10*time.Minute, 8),
	})
	d, err := New(cfgPath, Options{Clock: h.clock, Open: h.opener, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ctx, kill := context.WithCancel(context.Background())
	hup := make(chan os.Signal, 4)
	run := make(chan error, 1)
	go func() { run <- d.Run(ctx, hup) }()
	spinUntil(t, "boot ingest", func() bool {
		return d.Monitor().Stats().Ingested == int64(len(h.timelines["src-alpha"]))
	})

	// A config that fails to parse is rejected whole: the error counter
	// moves, the generation and target set do not.
	writeFile(t, cfgPath, `{"targets": [`)
	hup <- os.Interrupt
	spinUntil(t, "parse rejection", func() bool { return d.reloadErrs.Value() == 1 })
	if g := d.Generation(); g != 0 {
		t.Fatalf("generation = %d after rejected reload, want 0", g)
	}

	// A config that changes a frozen engine-semantic field is rejected
	// the same way, even though it parses.
	writeFile(t, cfgPath, strings.Replace(v1, `"window": "48h"`, `"window": "24h"`, 1))
	hup <- os.Interrupt
	spinUntil(t, "frozen-field rejection", func() bool { return d.reloadErrs.Value() == 2 })
	if g := d.Generation(); g != 0 {
		t.Fatalf("generation = %d after rejected reload, want 0", g)
	}
	if got := targetNames(d); len(got) != 1 || got[0] != "alpha" {
		t.Fatalf("targets = %v after rejected reloads, want [alpha]", got)
	}

	// A valid operational change still applies after the rejections: the
	// rejection path must not wedge the reload machinery.
	writeFile(t, cfgPath, strings.Replace(v1,
		`{"name": "alpha", "asn": 64500, "source": "src-alpha"}`,
		`{"name": "alpha", "asn": 64500, "source": "src-alpha"},
     {"name": "beta", "asn": 64501, "source": "src-beta"}`, 1))
	hup <- os.Interrupt
	spinUntil(t, "valid reload", func() bool { return d.Generation() == 1 })
	if got := targetNames(d); len(got) != 2 || got[1] != "beta" {
		t.Fatalf("targets = %v after valid reload, want [alpha beta]", got)
	}
	if errs := d.reloadErrs.Value(); errs != 2 {
		t.Fatalf("reload errors = %d after valid reload, want 2", errs)
	}

	kill()
	if err := <-run; err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestApplyConfigRejectedWhileDraining(t *testing.T) {
	d, _ := newAPIDaemon(t)
	d.mu.Lock()
	d.draining = true
	d.mu.Unlock()
	cfg, err := LoadConfig(d.path)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.applyConfig(context.Background(), cfg); err == nil ||
		!strings.Contains(err.Error(), "draining") {
		t.Fatalf("applyConfig while draining = %v, want draining error", err)
	}
}
