package serve

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"github.com/last-mile-congestion/lastmile/internal/bgp"
	"github.com/last-mile-congestion/lastmile/internal/ioutil"
	"github.com/last-mile-congestion/lastmile/internal/report"
	"github.com/last-mile-congestion/lastmile/internal/stream"
	"github.com/last-mile-congestion/lastmile/internal/telemetry"
	"github.com/last-mile-congestion/lastmile/internal/traceroute"
)

// Source yields one target's attributed traceroute results. Next must
// honour ctx — a cancelled target is draining and its Next must return
// promptly with ctx's error. Every result Next hands out is delivered
// to the engine, even when the drain lands between Next and Observe, so
// a Source can treat a returned result as consumed.
type Source interface {
	// Next returns the next result, io.EOF when the stream is
	// exhausted, or ctx.Err() when the target is draining.
	Next(ctx context.Context) (bgp.ASN, *traceroute.Result, error)
	// Close releases the source; called exactly once per opened source.
	Close() error
}

// SourceOpener opens the result stream of one target. cmd/lmserved
// opens Target.Source as a file path; the soak harness resolves it into
// a synthetic, fake-clock-driven timeline.
type SourceOpener func(t Target) (Source, error)

// Options configures a Daemon beyond its config file.
type Options struct {
	// Clock is the daemon's time source (nil = SystemClock). Jitter
	// waits, reload polls, and snapshot-refresh ticks all go through
	// it, so a FakeClock makes the whole daemon simulation-time driven.
	Clock Clock
	// Open opens target sources; required.
	Open SourceOpener
	// Metrics is the registry the daemon and its monitor instrument
	// (nil = a private registry). The /metrics handlers expose it.
	Metrics *telemetry.Registry
	// Logf receives operational log lines (nil = stderr).
	Logf func(format string, args ...any)
}

// targetState is a target runner's lifecycle position.
type targetState int32

const (
	// targetPending: spawned, waiting out its startup jitter.
	targetPending targetState = iota
	// targetIngesting: consuming its source.
	targetIngesting
	// targetFinished: source hit EOF.
	targetFinished
	// targetDrained: cancelled by a reload or shutdown.
	targetDrained
	// targetFailed: source open/read or engine delivery failed.
	targetFailed
)

// String renders the state for logs and /api/health.
func (s targetState) String() string {
	switch s {
	case targetPending:
		return "pending"
	case targetIngesting:
		return "ingesting"
	case targetFinished:
		return "finished"
	case targetDrained:
		return "drained"
	case targetFailed:
		return "failed"
	}
	return "unknown"
}

// targetRunner is one target's ingest goroutine and its observable
// state. The runner is joined through the daemon WaitGroup; done is
// closed on exit so a reload can wait for a changed target's old
// definition to drain before starting the new one.
type targetRunner struct {
	target   Target
	cancel   context.CancelFunc
	done     chan struct{}
	state    atomicState
	ingested atomicCounter
}

// atomicState is a targetState with atomic access (a thin wrapper whose
// zero value is targetPending).
type atomicState struct{ v atomic.Int32 }

func (s *atomicState) set(st targetState) { s.v.Store(int32(st)) }
func (s *atomicState) get() targetState   { return targetState(s.v.Load()) }

// atomicCounter is an int64 with atomic access.
type atomicCounter struct{ v atomic.Int64 }

func (c *atomicCounter) add(n int64) { c.v.Add(n) }
func (c *atomicCounter) get() int64  { return c.v.Load() }

// Daemon is the lmserved core: a stream.Monitor fed by per-target
// ingest goroutines, reconfigured by diffed hot reloads, checkpointed
// at bin boundaries, and read through immutable published snapshots.
type Daemon struct {
	path  string
	clock Clock
	open  SourceOpener
	logf  func(string, ...any)
	reg   *telemetry.Registry

	monitor *stream.Monitor
	ckpt    *stream.Checkpointer

	// sem bounds how many targets are inside the engine ingest path at
	// once: acquire = send, release = receive. Capacity is
	// MaxConcurrent, fixed at construction (a reload cannot change it).
	sem chan struct{}

	// tick is the maintenance cadence (half the effective bin width):
	// each tick checks for a crossed bin boundary (snapshot refresh +
	// checkpoint) and for an elapsed config poll interval.
	tick time.Duration

	mu         sync.Mutex
	cfg        *Config
	gen        int64
	lastReload time.Time
	targets    map[string]*targetRunner
	draining   bool

	wg sync.WaitGroup

	snap snapshotBox

	// Instrumentation: reload and target lifecycle counters, plus the
	// snapshot-refresh and checkpoint activity the read path rides on.
	reloads      *telemetry.Counter
	reloadErrs   *telemetry.Counter
	started      *telemetry.Counter
	finished     *telemetry.Counter
	drained      *telemetry.Counter
	failures     *telemetry.Counter
	refreshes    *telemetry.Counter
	checkpoints  *telemetry.Counter
	apiRequests  *telemetry.Counter
	refreshTimer *telemetry.Histogram
}

// New builds a daemon from the config file at path. A checkpoint at the
// config's state_path is resumed when present and usable; a corrupt one
// is logged and cold-started (stream.Open's contract). The returned
// daemon has not started any target — call Run.
func New(path string, opts Options) (*Daemon, error) {
	cfg, err := LoadConfig(path)
	if err != nil {
		return nil, err
	}
	if opts.Open == nil {
		return nil, errors.New("serve: Options.Open is required")
	}
	clock := opts.Clock
	if clock == nil {
		clock = SystemClock()
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "lmserved: "+format+"\n", args...)
		}
	}
	reg := opts.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}

	opened, err := stream.Open(cfg.StatePath, stream.Options{
		Window:         time.Duration(cfg.Window),
		BinWidth:       time.Duration(cfg.BinWidth),
		MinTraceroutes: cfg.MinTraceroutes,
		MaxLateness:    time.Duration(cfg.MaxLateness),
		Classifier:     cfg.classifier(),
		Shards:         cfg.Shards,
		Workers:        cfg.Workers,
		Metrics:        reg,
	})
	if err != nil {
		return nil, err
	}
	if opened.Warning != nil {
		logf("%v", opened.Warning)
	}
	if opened.Resumed {
		logf("resumed from checkpoint %s", cfg.StatePath)
	}

	// The monitor knows its effective bin width even when the config
	// left it zero (default, or adopted from a resumed snapshot).
	effBin := opened.Monitor.BinWidth()
	d := &Daemon{
		path:    path,
		clock:   clock,
		open:    opts.Open,
		logf:    logf,
		reg:     reg,
		monitor: opened.Monitor,
		sem:     make(chan struct{}, cfg.MaxConcurrent),
		tick:    effBin / 2,
		cfg:     cfg,
		targets: make(map[string]*targetRunner),

		reloads:      reg.Counter("serve_reloads_total"),
		reloadErrs:   reg.Counter("serve_reload_errors_total"),
		started:      reg.Counter("serve_targets_started_total"),
		finished:     reg.Counter("serve_targets_finished_total"),
		drained:      reg.Counter("serve_targets_drained_total"),
		failures:     reg.Counter("serve_target_failures_total"),
		refreshes:    reg.Counter("serve_snapshot_refreshes_total"),
		checkpoints:  reg.Counter("serve_checkpoints_total"),
		apiRequests:  reg.Counter("serve_api_requests_total"),
		refreshTimer: reg.Histogram("serve_snapshot_refresh_seconds", telemetry.DefLatencyBuckets),
	}
	if cfg.StatePath != "" {
		d.ckpt = stream.NewCheckpointer(opened.Monitor, cfg.StatePath)
	}
	reg.GaugeFunc("serve_targets", func() float64 {
		d.mu.Lock()
		defer d.mu.Unlock()
		return float64(len(d.targets))
	})
	// A resumed daemon can serve its restored verdicts before the first
	// new observation arrives; a cold one publishes an empty snapshot
	// so the API never sees a nil read model.
	d.refreshSnapshot()
	return d, nil
}

// Run starts every configured target and serves reloads and
// maintenance until ctx is cancelled, then drains: cancel all targets,
// join them, publish a final snapshot, and write a final checkpoint
// (the zero-data-loss half of the SIGTERM contract). hup delivers
// reload requests (SIGHUP in production, the test harness otherwise);
// it may be nil.
func (d *Daemon) Run(ctx context.Context, hup <-chan os.Signal) error {
	d.mu.Lock()
	for _, t := range DiffTargets(nil, d.cfg.Targets).Added {
		d.startTargetLocked(ctx, t)
	}
	pollEvery := time.Duration(d.cfg.PollInterval)
	d.mu.Unlock()
	nextPoll := d.clock.Now().Add(pollEvery)

	for {
		select {
		case <-ctx.Done():
			return d.drain()
		case _, ok := <-hup:
			if !ok {
				hup = nil // a closed hup channel means "no more reloads"
				continue
			}
			d.reloadFromFile(ctx, "SIGHUP")
		case <-d.clock.After(d.tick):
			d.onBinBoundary()
			d.mu.Lock()
			pollEvery = time.Duration(d.cfg.PollInterval)
			d.mu.Unlock()
			if pollEvery > 0 && !d.clock.Now().Before(nextPoll) {
				nextPoll = d.clock.Now().Add(pollEvery)
				d.reloadFromFile(ctx, "poll")
			}
		}
	}
}

// onBinBoundary refreshes the read snapshot and checkpoints iff the
// observation watermark has crossed into a new bin since the last
// refresh — the same data-driven cadence the Checkpointer uses, so
// replayed archives and live feeds behave identically.
func (d *Daemon) onBinBoundary() {
	bin, ok := d.monitor.NewestBin()
	if !ok || bin == d.snap.bin() {
		return
	}
	d.refreshSnapshot()
	if d.ckpt != nil {
		if wrote, err := d.ckpt.MaybeCheckpoint(); err != nil {
			d.logf("checkpoint: %v", err)
		} else if wrote {
			d.checkpoints.Inc()
		}
	}
}

// drain is the graceful-shutdown tail of Run: stop ingest, join every
// runner, publish the final read snapshot from the now-quiescent
// engine, and write the final checkpoint unconditionally — losing the
// partial bin since the last boundary is not acceptable on SIGTERM.
func (d *Daemon) drain() error {
	d.mu.Lock()
	d.draining = true
	for _, r := range d.targets {
		r.cancel()
	}
	d.mu.Unlock()
	d.wg.Wait()
	d.refreshSnapshot()
	var err error
	if d.ckpt != nil {
		if err = d.ckpt.Checkpoint(); err == nil {
			d.checkpoints.Inc()
		}
	}
	st := d.monitor.Stats()
	d.logf("drained: ingested %d, dropped %d, window holds %d AS(es), %d bin(s)",
		st.Ingested, st.Dropped, st.ASes, st.Bins)
	return err
}

// reloadFromFile re-reads the config file and applies it; a config that
// fails to parse, validate, or that changes engine-semantic fields is
// rejected whole and the running config stays in force.
func (d *Daemon) reloadFromFile(ctx context.Context, why string) {
	next, err := LoadConfig(d.path)
	if err != nil {
		d.reloadErrs.Inc()
		d.logf("reload (%s) rejected: %v", why, err)
		return
	}
	if err := d.applyConfig(ctx, next); err != nil {
		d.reloadErrs.Inc()
		d.logf("reload (%s) rejected: %v", why, err)
		return
	}
	d.reloads.Inc()
}

// applyConfig diffs next against the running config and applies it:
// removed targets drain, added ones start (with jitter), changed ones
// drain and restart under their new definition, and kept targets — and
// their in-flight windows — are never touched.
func (d *Daemon) applyConfig(ctx context.Context, next *Config) error {
	d.mu.Lock()
	if d.draining {
		d.mu.Unlock()
		return errors.New("serve: daemon is draining")
	}
	if err := next.ReloadableFrom(d.cfg); err != nil {
		d.mu.Unlock()
		return err
	}
	diff := DiffTargets(d.cfg.Targets, next.Targets)
	// Cancel removed and changed targets and take their join handles;
	// the waits happen outside the lock so a slow drain never blocks
	// the API's health reads.
	var waitFor []*targetRunner
	for _, t := range append(append([]Target{}, diff.Removed...), diff.Changed...) {
		if r := d.targets[t.Name]; r != nil {
			r.cancel()
			waitFor = append(waitFor, r)
			delete(d.targets, t.Name)
		}
	}
	d.cfg = next
	d.gen++
	gen := d.gen
	d.lastReload = d.clock.Now()
	d.mu.Unlock()

	for _, r := range waitFor {
		<-r.done
	}
	d.mu.Lock()
	for _, t := range append(append([]Target{}, diff.Added...), diff.Changed...) {
		d.startTargetLocked(ctx, t)
	}
	d.mu.Unlock()
	d.logf("reload applied: gen %d, +%d target(s), -%d, ~%d, %d kept",
		gen, len(diff.Added), len(diff.Removed), len(diff.Changed), len(diff.Kept))
	return nil
}

// startTargetLocked spawns one target runner; the caller holds d.mu.
func (d *Daemon) startTargetLocked(ctx context.Context, t Target) {
	tctx, cancel := context.WithCancel(ctx)
	r := &targetRunner{target: t, cancel: cancel, done: make(chan struct{})}
	d.targets[t.Name] = r
	d.wg.Add(1)
	d.started.Inc()
	go d.runTarget(tctx, r)
}

// jitterFor spreads target starts deterministically over
// [0, StartupJitter) keyed by an FNV-1a hash of the target name: a
// daemon restart re-staggers its sources identically every time, with
// no shared-seed randomness and no thundering herd.
func (d *Daemon) jitterFor(name string) time.Duration {
	d.mu.Lock()
	j := time.Duration(d.cfg.StartupJitter)
	d.mu.Unlock()
	if j <= 0 {
		return 0
	}
	h := fnv.New64a()
	_, _ = io.WriteString(h, name)
	return time.Duration(h.Sum64() % uint64(j))
}

// runTarget is one target's ingest loop: jitter, open, then pull
// results and deliver them to the engine under the concurrency bound.
func (d *Daemon) runTarget(ctx context.Context, r *targetRunner) {
	defer d.wg.Done()
	defer close(r.done)
	if j := d.jitterFor(r.target.Name); j > 0 {
		select {
		case <-d.clock.After(j):
		case <-ctx.Done():
			r.state.set(targetDrained)
			d.drained.Inc()
			return
		}
	}
	src, err := d.open(r.target)
	if err != nil {
		r.state.set(targetFailed)
		d.failures.Inc()
		d.logf("target %s: open: %v", r.target.Name, err)
		return
	}
	defer ioutil.CloseQuiet(src)
	r.state.set(targetIngesting)
	for {
		asn, res, err := src.Next(ctx)
		switch {
		case err == nil:
		case errors.Is(err, io.EOF):
			r.state.set(targetFinished)
			d.finished.Inc()
			return
		case ctx.Err() != nil:
			r.state.set(targetDrained)
			d.drained.Inc()
			return
		default:
			r.state.set(targetFailed)
			d.failures.Inc()
			d.logf("target %s: read: %v", r.target.Name, err)
			return
		}
		if asn == 0 {
			asn = r.target.ASN
		}
		// Bounded concurrency: hold one token across the engine
		// delivery (acquire = send, release = receive). The token is
		// acquired unconditionally: a result Next handed out is always
		// delivered, even when the drain lands here, so the Source
		// contract — returned means consumed — holds.
		d.sem <- struct{}{}
		oerr := d.monitor.Observe(asn, res)
		<-d.sem
		if oerr != nil {
			r.state.set(targetFailed)
			d.failures.Inc()
			d.logf("target %s: observe: %v", r.target.Name, oerr)
			return
		}
		r.ingested.add(1)
	}
}

// WriteReport renders the published snapshot as the operator-facing
// classification table — cmd/lmserved prints it to stdout after Run
// drains, when the snapshot is final and exact.
func (d *Daemon) WriteReport(w io.Writer) error {
	s := d.snap.load()
	fmt.Fprintf(w, "== lmserved report (gen %d) ==\n", s.Gen)
	if !s.Newest.IsZero() {
		fmt.Fprintf(w, "window: %s + %d x %s (newest %s)\n",
			s.WindowStart.UTC().Format(time.RFC3339), s.NBins, s.BinWidth,
			s.Newest.UTC().Format(time.RFC3339))
	}
	if len(s.Verdicts) == 0 && len(s.Skipped) == 0 {
		_, err := fmt.Fprintln(w, "(no classifiable AS — windows never warmed up)")
		return err
	}
	if len(s.Verdicts) > 0 {
		tb := report.NewTable("AS", "probes", "class", "daily amp (ms)", "window signal")
		for _, v := range s.Verdicts {
			tb.AddRowf(v.ASN.String(), v.Probes, v.Class.String(),
				fmt.Sprintf("%.2f", v.DailyAmplitude),
				report.Sparkline(report.Downsample(v.Signal.Values, 48), 0))
		}
		if err := tb.Render(w); err != nil {
			return err
		}
	}
	for _, sk := range s.Skipped {
		fmt.Fprintf(w, "skipped %s: %v\n", sk.ASN, sk.Reason)
	}
	return nil
}

// Monitor exposes the underlying monitor for in-process callers (the
// final report, tests). API reads never use it — they read published
// snapshots.
func (d *Daemon) Monitor() *stream.Monitor { return d.monitor }

// HTTPAddr returns the config's ops/API listen address ("" disables
// HTTP). It is reload-frozen, so the startup value stays authoritative.
func (d *Daemon) HTTPAddr() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.cfg.HTTPAddr
}

// Generation returns the config generation: 0 at start, +1 per applied
// reload.
func (d *Daemon) Generation() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.gen
}
