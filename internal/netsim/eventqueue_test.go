package netsim

import (
	"math"
	"testing"
)

func TestMM1MatchesClosedForm(t *testing.T) {
	// The event-driven queue must agree with the analytic waiting time
	// W = S·ρ/(1−ρ) the whole pipeline is built on.
	const serviceMs = 0.12
	for _, rho := range []float64{0.3, 0.5, 0.7, 0.9} {
		rng := DerivedRand(0xee, uint64(rho*100))
		res, err := SimulateMM1(rho, serviceMs, 0, 400_000, rng)
		if err != nil {
			t.Fatal(err)
		}
		want := serviceMs * rho / (1 - rho)
		if math.Abs(res.MeanWaitMs-want)/want > 0.1 {
			t.Fatalf("rho=%v: simulated wait %.4f ms, closed form %.4f ms", rho, res.MeanWaitMs, want)
		}
		if res.DropFrac != 0 {
			t.Fatalf("rho=%v: drops without a buffer bound", rho)
		}
	}
}

func TestMM1WaitGrowsWithRho(t *testing.T) {
	prev := -1.0
	for _, rho := range []float64{0.2, 0.4, 0.6, 0.8} {
		rng := DerivedRand(0xef, uint64(rho*100))
		res, err := SimulateMM1(rho, 0.12, 0, 100_000, rng)
		if err != nil {
			t.Fatal(err)
		}
		if res.MeanWaitMs <= prev {
			t.Fatalf("wait not monotone at rho=%v", rho)
		}
		prev = res.MeanWaitMs
	}
}

func TestMM1OverloadNeedsBuffer(t *testing.T) {
	if _, err := SimulateMM1(1.2, 0.12, 0, 1000, DerivedRand(1)); err == nil {
		t.Fatal("overload without buffer must error")
	}
	res, err := SimulateMM1(1.2, 0.12, 6.5, 200_000, DerivedRand(2))
	if err != nil {
		t.Fatal(err)
	}
	// Overloaded finite buffer: drops occur and admitted packets wait
	// close to the buffer depth — the regime the analytic model pins at
	// BufferMs.
	if res.DropFrac <= 0 {
		t.Fatal("overload must drop packets")
	}
	if res.MeanWaitMs < 0.5*6.5 || res.MeanWaitMs > 1.5*6.5 {
		t.Fatalf("overload mean wait %.2f ms, want near the 6.5 ms buffer", res.MeanWaitMs)
	}
}

func TestMM1P95ExceedsMean(t *testing.T) {
	res, err := SimulateMM1(0.7, 0.12, 0, 100_000, DerivedRand(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.P95WaitMs <= res.MeanWaitMs {
		t.Fatalf("p95 %.4f should exceed mean %.4f for an exponential-tailed queue", res.P95WaitMs, res.MeanWaitMs)
	}
}

func TestMM1Errors(t *testing.T) {
	rng := DerivedRand(4)
	if _, err := SimulateMM1(0, 0.1, 0, 100, rng); err == nil {
		t.Fatal("rho=0 must error")
	}
	if _, err := SimulateMM1(0.5, 0, 0, 100, rng); err == nil {
		t.Fatal("service=0 must error")
	}
	if _, err := SimulateMM1(0.5, 0.1, 0, 0, rng); err == nil {
		t.Fatal("packets=0 must error")
	}
}

func TestMM1ValidatesQueueModel(t *testing.T) {
	// End-to-end consistency: QueueModel.MeanDelay must track the
	// event-driven reference across the utilisation range used by the
	// access-network model.
	q := QueueModel{ServiceMs: 0.12, BufferMs: 1000}
	for _, rho := range []float64{0.4, 0.6, 0.8} {
		rng := DerivedRand(0xf0, uint64(rho*100))
		res, err := SimulateMM1(rho, q.ServiceMs, 0, 300_000, rng)
		if err != nil {
			t.Fatal(err)
		}
		analytic := q.MeanDelay(rho)
		if math.Abs(res.MeanWaitMs-analytic)/analytic > 0.1 {
			t.Fatalf("rho=%v: event-driven %.4f vs analytic %.4f", rho, res.MeanWaitMs, analytic)
		}
	}
}
