package netsim

import (
	"math"
	"testing"
)

// TestStreamDeriveMatchesDerivedRand pins the rekeying contract the
// parallel hot path relies on: a Stream re-keyed in place must emit
// exactly the draws a fresh DerivedRand would, across every draw kind
// the pipeline uses and across interleaved rekeys.
func TestStreamDeriveMatchesDerivedRand(t *testing.T) {
	keys := [][]uint64{
		{2020, 7, 0},
		{2020, 7, 1},
		{1, 2, 3, 4},
		{0},
		{2020, 7, 0}, // revisit an earlier key after other draws
	}
	s := NewStream()
	for _, parts := range keys {
		fresh := DerivedRand(parts...)
		s.Derive(parts...)
		for i := 0; i < 16; i++ {
			if a, b := fresh.Float64(), s.Float64(); math.Float64bits(a) != math.Float64bits(b) {
				t.Fatalf("key %v draw %d: Float64 %v vs %v", parts, i, a, b)
			}
			if a, b := fresh.NormFloat64(), s.NormFloat64(); math.Float64bits(a) != math.Float64bits(b) {
				t.Fatalf("key %v draw %d: NormFloat64 %v vs %v", parts, i, a, b)
			}
			if a, b := fresh.Int63n(1000), s.Int63n(1000); a != b {
				t.Fatalf("key %v draw %d: Int63n %d vs %d", parts, i, a, b)
			}
			if a, b := fresh.Intn(30), s.Intn(30); a != b {
				t.Fatalf("key %v draw %d: Intn %d vs %d", parts, i, a, b)
			}
		}
	}
}
