package netsim

import (
	"math"
	"math/rand"
)

// QueueModel converts link utilisation into queuing delay. Below
// saturation it follows the M/M/1 waiting-time curve W = S·ρ/(1−ρ); at and
// beyond saturation the delay is pinned to the buffer depth, which is what
// a persistently full FIFO does to every packet crossing it.
type QueueModel struct {
	// ServiceMs is the mean per-packet service time in milliseconds,
	// setting the scale of the M/M/1 curve. Carrier aggregation gear
	// forwarding minutes of mixed traffic sits around 0.05–0.3 ms.
	ServiceMs float64
	// BufferMs is the maximum queuing delay in milliseconds: the depth of
	// the device's buffer expressed in time.
	BufferMs float64
	// JitterFrac is the relative standard deviation of sampled delays
	// around the mean (per-packet variation from cross traffic).
	JitterFrac float64
}

// DefaultQueue returns a queue model typical of the shared aggregation
// gear the paper blames: sub-millisecond service time and a buffer worth
// tens of milliseconds.
func DefaultQueue() QueueModel {
	return QueueModel{ServiceMs: 0.12, BufferMs: 40, JitterFrac: 0.25}
}

// MeanDelay returns the expected queuing delay in milliseconds at
// utilisation rho (rho may exceed 1 during overload).
func (q QueueModel) MeanDelay(rho float64) float64 {
	if rho <= 0 {
		return 0
	}
	if rho >= 1 {
		return q.BufferMs
	}
	d := q.ServiceMs * rho / (1 - rho)
	if d > q.BufferMs {
		return q.BufferMs
	}
	return d
}

// SampleDelay draws one queuing-delay observation at utilisation rho,
// adding multiplicative lognormal-ish jitter around the mean. The result
// is never negative and never exceeds twice the buffer (a second of
// serialisation behind a full buffer plus scheduling noise).
func (q QueueModel) SampleDelay(rho float64, rng *rand.Rand) float64 {
	mean := q.MeanDelay(rho)
	if mean <= 0 {
		return 0
	}
	// Multiplicative noise keeps small delays small and lets congested
	// samples spread, like real queue occupancy does.
	noise := math.Exp(rng.NormFloat64()*q.JitterFrac - q.JitterFrac*q.JitterFrac/2)
	return min(mean*noise, 2*q.BufferMs)
}

// LossProb returns the packet-loss probability at utilisation rho: zero
// until the buffer is nearly full, then climbing linearly with overload.
// Traceroute replies crossing a saturated device go missing at this rate.
func (q QueueModel) LossProb(rho float64) float64 {
	if rho < 0.95 {
		return 0
	}
	p := (rho - 0.95) * 0.4
	if p > 0.5 {
		return 0.5
	}
	return p
}
