package netsim

import (
	"errors"
	"math"
	"math/rand"
	"sort"
)

// Discrete-event validation of the analytic queue model. The pipeline's
// QueueModel uses the closed-form M/M/1 waiting time W = S·ρ/(1−ρ); this
// file provides an independent event-driven simulation of the same queue
// so tests can verify the closed form instead of trusting it, and so the
// buffer-cap behaviour under overload has an executable reference.

// MM1Result summarises one event-driven run.
type MM1Result struct {
	// MeanWaitMs is the average time a packet spent queued (excluding
	// its own service).
	MeanWaitMs float64
	// P95WaitMs is the 95th-percentile wait.
	P95WaitMs float64
	// DropFrac is the fraction of packets dropped at a full buffer
	// (zero for infinite buffers).
	DropFrac float64
	// Packets is the number of simulated arrivals.
	Packets int
}

// SimulateMM1 runs an event-driven M/M/1 queue with Poisson arrivals at
// utilisation rho, exponential service with mean serviceMs, and an
// optional buffer bound in milliseconds of queued work (0 = infinite).
// It uses the Lindley recursion W(n+1) = max(0, W(n) + S(n) − A(n+1)),
// which is the exact single-server queue dynamic.
func SimulateMM1(rho, serviceMs, bufferMs float64, packets int, rng *rand.Rand) (*MM1Result, error) {
	if rho <= 0 || serviceMs <= 0 {
		return nil, errors.New("netsim: rho and service time must be positive")
	}
	if packets <= 0 {
		return nil, errors.New("netsim: need at least one packet")
	}
	if rho >= 1 && bufferMs <= 0 {
		return nil, errors.New("netsim: rho >= 1 diverges without a buffer bound")
	}
	// Arrival rate: rho = lambda * serviceMs.
	meanInterArrival := serviceMs / rho

	wait := 0.0
	var sumWait float64
	waits := make([]float64, 0, packets)
	drops := 0
	for n := 0; n < packets; n++ {
		if bufferMs > 0 && wait > bufferMs {
			// The queue already holds more work than the buffer
			// admits: this arrival is dropped and does not add
			// service demand.
			drops++
			// Advance time to the next arrival anyway.
			wait = max(wait-rng.ExpFloat64()*meanInterArrival, 0)
			continue
		}
		w := wait
		sumWait += w
		waits = append(waits, w)
		service := rng.ExpFloat64() * serviceMs
		interArrival := rng.ExpFloat64() * meanInterArrival
		wait = max(wait+service-interArrival, 0)
	}
	admitted := packets - drops
	if admitted == 0 {
		return nil, errors.New("netsim: every packet dropped")
	}
	// P95 via selection on the recorded waits.
	p95 := percentile(waits, 0.95)
	return &MM1Result{
		MeanWaitMs: sumWait / float64(admitted),
		P95WaitMs:  p95,
		DropFrac:   float64(drops) / float64(packets),
		Packets:    packets,
	}, nil
}

// percentile returns the q-quantile of xs by sorting a copy.
func percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	return cp[int(q*float64(len(cp)-1))]
}
