package netsim

import (
	"math"
	"net/netip"
	"testing"
	"time"
)

func TestMixSeedDeterministic(t *testing.T) {
	a := MixSeed(1, 2, 3)
	b := MixSeed(1, 2, 3)
	if a != b {
		t.Fatal("MixSeed not deterministic")
	}
	if MixSeed(1, 2, 3) == MixSeed(1, 2, 4) {
		t.Fatal("MixSeed ignores final part")
	}
	if MixSeed(1, 2) == MixSeed(2, 1) {
		t.Fatal("MixSeed should be order-sensitive")
	}
}

func TestDerivedRandReproducible(t *testing.T) {
	r1 := DerivedRand(42, 7)
	r2 := DerivedRand(42, 7)
	for i := 0; i < 10; i++ {
		if r1.Float64() != r2.Float64() {
			t.Fatal("DerivedRand streams differ")
		}
	}
}

func TestTruncNormal(t *testing.T) {
	rng := DerivedRand(1)
	for i := 0; i < 1000; i++ {
		v := TruncNormal(rng, 0.1, 1.0, 0)
		if v < 0 {
			t.Fatalf("TruncNormal produced %v < 0", v)
		}
	}
}

func TestLognormalPositive(t *testing.T) {
	rng := DerivedRand(2)
	for i := 0; i < 1000; i++ {
		if v := Lognormal(rng, 0, 0.5); v <= 0 {
			t.Fatalf("Lognormal produced %v", v)
		}
	}
}

func TestDemandBounds(t *testing.T) {
	p := DefaultProfile(9)
	start := time.Date(2019, 9, 19, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 7*48; i++ {
		tm := start.Add(time.Duration(i) * 30 * time.Minute)
		d := p.DemandAt(tm)
		if d < 0 || d > 1 {
			t.Fatalf("demand at %v = %v out of [0,1]", tm, d)
		}
	}
}

func TestDemandPeaksInEvening(t *testing.T) {
	p := DefaultProfile(9) // Japan
	day := time.Date(2019, 9, 19, 0, 0, 0, 0, time.UTC)
	// 21:00 JST = 12:00 UTC; 04:00 JST = 19:00 UTC previous day.
	evening := p.DemandAt(day.Add(12 * time.Hour))
	night := p.DemandAt(day.Add(19 * time.Hour))
	if evening <= night {
		t.Fatalf("evening %v should exceed night %v", evening, night)
	}
	if evening < 0.9 {
		t.Fatalf("evening peak = %v, want near 1", evening)
	}
	if night > 0.5 {
		t.Fatalf("night trough = %v, want near base", night)
	}
}

func TestDemandUTCOffsetShiftsPeak(t *testing.T) {
	jp := DefaultProfile(9)
	us := DefaultProfile(-5)
	day := time.Date(2019, 9, 19, 0, 0, 0, 0, time.UTC)
	// 12:00 UTC is 21:00 JST but 07:00 EST.
	at := day.Add(12 * time.Hour)
	if jp.DemandAt(at) <= us.DemandAt(at) {
		t.Fatal("JST evening should out-demand EST morning at 12:00 UTC")
	}
}

func TestDemandWeekendBoost(t *testing.T) {
	p := DefaultProfile(0)
	// 14:00 local on a Saturday vs the preceding Thursday.
	sat := time.Date(2019, 9, 21, 14, 0, 0, 0, time.UTC)
	thu := time.Date(2019, 9, 19, 14, 0, 0, 0, time.UTC)
	if p.DemandAt(sat) <= p.DemandAt(thu) {
		t.Fatalf("weekend daytime %v should exceed weekday %v",
			p.DemandAt(sat), p.DemandAt(thu))
	}
}

func TestCOVIDShiftWidensDaytime(t *testing.T) {
	normal := DefaultProfile(0)
	locked := DefaultProfile(0)
	locked.COVIDShift = 1
	// 11:00 local on a weekday.
	at := time.Date(2020, 4, 8, 11, 0, 0, 0, time.UTC)
	if locked.DemandAt(at) <= normal.DemandAt(at)+0.1 {
		t.Fatalf("lockdown daytime %v should clearly exceed normal %v",
			locked.DemandAt(at), normal.DemandAt(at))
	}
	// Night demand stays comparable.
	night := time.Date(2020, 4, 8, 4, 0, 0, 0, time.UTC)
	if math.Abs(locked.DemandAt(night)-normal.DemandAt(night)) > 0.15 {
		t.Fatalf("lockdown night %v vs normal %v diverge too much",
			locked.DemandAt(night), normal.DemandAt(night))
	}
}

func TestPeakDemandWindow(t *testing.T) {
	p := DefaultProfile(0)
	peak := time.Date(2019, 9, 19, 21, 0, 0, 0, time.UTC)
	offPeak := time.Date(2019, 9, 19, 9, 0, 0, 0, time.UTC)
	if !p.PeakDemandWindow(peak) {
		t.Fatal("21:00 should be in peak window")
	}
	if p.PeakDemandWindow(offPeak) {
		t.Fatal("09:00 should not be in peak window")
	}
}

func TestQueueMeanDelayShape(t *testing.T) {
	q := DefaultQueue()
	if q.MeanDelay(0) != 0 {
		t.Fatal("zero utilisation should have zero delay")
	}
	if q.MeanDelay(-1) != 0 {
		t.Fatal("negative utilisation should have zero delay")
	}
	// Monotone increasing up to the buffer cap.
	prev := -1.0
	for rho := 0.0; rho <= 2.0; rho += 0.05 {
		d := q.MeanDelay(rho)
		if d < prev-1e-12 {
			t.Fatalf("delay not monotone at rho=%v", rho)
		}
		prev = d
	}
	if q.MeanDelay(1.0) != q.BufferMs {
		t.Fatalf("saturated delay = %v, want buffer %v", q.MeanDelay(1.0), q.BufferMs)
	}
	if q.MeanDelay(5.0) != q.BufferMs {
		t.Fatal("overload delay must stay pinned at buffer")
	}
}

func TestQueueMM1Curve(t *testing.T) {
	q := QueueModel{ServiceMs: 1, BufferMs: 1000}
	if got := q.MeanDelay(0.5); math.Abs(got-1) > 1e-12 {
		t.Fatalf("MM1 at 0.5 = %v, want 1", got)
	}
	if got := q.MeanDelay(0.9); math.Abs(got-9) > 1e-9 {
		t.Fatalf("MM1 at 0.9 = %v, want 9", got)
	}
}

func TestSampleDelayBounds(t *testing.T) {
	q := DefaultQueue()
	rng := DerivedRand(3)
	for i := 0; i < 2000; i++ {
		d := q.SampleDelay(1.5, rng)
		if d < 0 || d > 2*q.BufferMs {
			t.Fatalf("sample %v out of bounds", d)
		}
	}
	if q.SampleDelay(0, rng) != 0 {
		t.Fatal("zero utilisation must sample zero delay")
	}
}

func TestSampleDelayMeanTracksModel(t *testing.T) {
	q := QueueModel{ServiceMs: 0.5, BufferMs: 100, JitterFrac: 0.3}
	rng := DerivedRand(4)
	sum := 0.0
	n := 20000
	for i := 0; i < n; i++ {
		sum += q.SampleDelay(0.8, rng)
	}
	got := sum / float64(n)
	want := q.MeanDelay(0.8)
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("sampled mean %v, model mean %v", got, want)
	}
}

func TestLossProb(t *testing.T) {
	q := DefaultQueue()
	if q.LossProb(0.5) != 0 {
		t.Fatal("no loss below saturation")
	}
	if q.LossProb(1.2) <= 0 {
		t.Fatal("overload must lose packets")
	}
	if q.LossProb(10) > 0.5 {
		t.Fatal("loss capped at 0.5")
	}
}

func newTestDevice(peak float64) *AggregationDevice {
	return &AggregationDevice{
		ID:              1,
		Profile:         DefaultProfile(9),
		BaseUtilization: 0.3,
		PeakUtilization: peak,
		Queue:           DefaultQueue(),
		AccessMbps:      50,
	}
}

func TestDeviceUtilizationRange(t *testing.T) {
	d := newTestDevice(1.4)
	start := time.Date(2019, 9, 19, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 48; i++ {
		u := d.UtilizationAt(start.Add(time.Duration(i) * 30 * time.Minute))
		if u < d.BaseUtilization-1e-9 || u > d.PeakUtilization+1e-9 {
			t.Fatalf("utilisation %v outside [base, peak]", u)
		}
	}
}

func TestDeviceCongestionIsDiurnal(t *testing.T) {
	d := newTestDevice(1.3)
	// 21:00 JST = 12:00 UTC; 04:00 JST = 19:00 UTC.
	peakT := time.Date(2019, 9, 19, 12, 0, 0, 0, time.UTC)
	offT := time.Date(2019, 9, 19, 19, 0, 0, 0, time.UTC)
	if d.MeanQueueDelayAt(peakT) <= d.MeanQueueDelayAt(offT) {
		t.Fatal("peak delay should exceed off-peak delay")
	}
	if d.MeanQueueDelayAt(peakT) < 5 {
		t.Fatalf("overloaded device peak delay = %v ms, want substantial",
			d.MeanQueueDelayAt(peakT))
	}
}

func TestHealthyDeviceStaysFlat(t *testing.T) {
	d := newTestDevice(0.6) // well provisioned
	start := time.Date(2019, 9, 19, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 48; i++ {
		delay := d.MeanQueueDelayAt(start.Add(time.Duration(i) * 30 * time.Minute))
		if delay > 0.5 {
			t.Fatalf("healthy device delay = %v ms at bin %d", delay, i)
		}
	}
}

func TestDeviceThroughputDropsAtPeak(t *testing.T) {
	d := newTestDevice(2.2)
	rng := DerivedRand(5)
	peakT := time.Date(2019, 9, 19, 12, 0, 0, 0, time.UTC) // 21:00 JST
	offT := time.Date(2019, 9, 19, 19, 0, 0, 0, time.UTC)  // 04:00 JST
	var peakSum, offSum float64
	n := 500
	for i := 0; i < n; i++ {
		peakSum += d.ThroughputAt(peakT, rng)
		offSum += d.ThroughputAt(offT, rng)
	}
	peakAvg, offAvg := peakSum/float64(n), offSum/float64(n)
	if peakAvg > offAvg*0.6 {
		t.Fatalf("peak throughput %v vs off-peak %v: want < half-ish", peakAvg, offAvg)
	}
	if offAvg < 35 {
		t.Fatalf("off-peak throughput %v, want near access rate", offAvg)
	}
}

func TestThroughputBounds(t *testing.T) {
	d := newTestDevice(2.5)
	rng := DerivedRand(6)
	for i := 0; i < 2000; i++ {
		tm := time.Date(2019, 9, 19, i%24, 0, 0, 0, time.UTC)
		thr := d.ThroughputAt(tm, rng)
		if thr < 0.1 || thr > d.AccessMbps*1.05 {
			t.Fatalf("throughput %v out of bounds", thr)
		}
	}
}

func TestConstantDelay(t *testing.T) {
	c := ConstantDelay{MeanMs: 2, JitterMs: 0.1}
	rng := DerivedRand(7)
	sum := 0.0
	for i := 0; i < 1000; i++ {
		d := c.QueueDelayAt(time.Now(), rng)
		if d < 0 {
			t.Fatalf("negative delay %v", d)
		}
		sum += d
	}
	if avg := sum / 1000; math.Abs(avg-2) > 0.05 {
		t.Fatalf("avg = %v, want ~2", avg)
	}
	if c.LossProbAt(time.Now()) != 0 {
		t.Fatal("constant segments never drop")
	}
}

func buildTestRoute(dev *AggregationDevice) *Route {
	return &Route{Hops: []Hop{
		{Addr: netip.MustParseAddr("192.168.1.1"), BaseMs: 0.4, NoiseMs: 0.05},
		{Addr: netip.MustParseAddr("203.0.113.1"), BaseMs: 1.2, NoiseMs: 0.1,
			Sources: []DelaySource{dev}},
		{Addr: netip.MustParseAddr("203.0.113.254"), BaseMs: 2.0, NoiseMs: 0.1},
	}}
}

func TestRouteRTTMonotoneInHops(t *testing.T) {
	dev := newTestDevice(0.5)
	r := buildTestRoute(dev)
	rng := DerivedRand(8)
	at := time.Date(2019, 9, 19, 19, 0, 0, 0, time.UTC)
	var prev float64
	for i := 0; i < r.Len(); i++ {
		sum, n := 0.0, 0
		for k := 0; k < 200; k++ {
			rtt, ok, err := r.RTT(i, at, rng)
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				sum += rtt
				n++
			}
		}
		avg := sum / float64(n)
		if avg <= prev {
			t.Fatalf("hop %d avg RTT %v not beyond previous %v", i, avg, prev)
		}
		prev = avg
	}
}

func TestRouteCongestionInflatesDownstreamHops(t *testing.T) {
	dev := newTestDevice(1.5)
	r := buildTestRoute(dev)
	rng := DerivedRand(9)
	peakT := time.Date(2019, 9, 19, 12, 0, 0, 0, time.UTC) // 21:00 JST
	offT := time.Date(2019, 9, 19, 19, 0, 0, 0, time.UTC)  // 04:00 JST
	avgAt := func(hop int, at time.Time) float64 {
		sum, n := 0.0, 0
		for k := 0; k < 400; k++ {
			rtt, ok, err := r.RTT(hop, at, rng)
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				sum += rtt
				n++
			}
		}
		if n == 0 {
			t.Fatal("all replies lost")
		}
		return sum / float64(n)
	}
	// Hop 0 is before the congested segment: no diurnal change.
	if d := avgAt(0, peakT) - avgAt(0, offT); math.Abs(d) > 0.1 {
		t.Fatalf("hop 0 shifted by %v ms between peak and off-peak", d)
	}
	// Hops 1 and 2 are at/after the congestion point: clearly inflated.
	for hop := 1; hop <= 2; hop++ {
		if d := avgAt(hop, peakT) - avgAt(hop, offT); d < 3 {
			t.Fatalf("hop %d inflated by only %v ms at peak", hop, d)
		}
	}
}

func TestRouteRTTErrors(t *testing.T) {
	r := &Route{}
	if _, _, err := r.RTT(0, time.Now(), DerivedRand(1)); err != ErrNoHop {
		t.Fatalf("err = %v, want ErrNoHop", err)
	}
	r2 := buildTestRoute(newTestDevice(0.5))
	if _, _, err := r2.RTT(-1, time.Now(), DerivedRand(1)); err != ErrNoHop {
		t.Fatal("negative hop index must error")
	}
	if _, _, err := r2.RTT(99, time.Now(), DerivedRand(1)); err != ErrNoHop {
		t.Fatal("out-of-range hop index must error")
	}
}

func TestRouteLossUnderOverload(t *testing.T) {
	dev := newTestDevice(3.0) // extreme overload: high loss at peak
	r := buildTestRoute(dev)
	rng := DerivedRand(10)
	peakT := time.Date(2019, 9, 19, 12, 0, 0, 0, time.UTC)
	lost := 0
	for k := 0; k < 1000; k++ {
		_, ok, err := r.RTT(2, peakT, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			lost++
		}
	}
	if lost == 0 {
		t.Fatal("expected some lost replies under extreme overload")
	}
}

func BenchmarkRouteRTT(b *testing.B) {
	dev := newTestDevice(1.2)
	r := buildTestRoute(dev)
	rng := DerivedRand(11)
	at := time.Date(2019, 9, 19, 12, 0, 0, 0, time.UTC)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := r.RTT(2, at, rng); err != nil {
			b.Fatal(err)
		}
	}
}
