package netsim

import (
	"math/rand"
	"time"
)

// AggregationDevice is a shared element of the access network — in
// Japan's legacy infrastructure, the carrier's PPPoE termination gear; in
// a cable plant, a CMTS; in a well-provisioned FTTH network, an OLT with
// headroom. Many subscribers share it, so its utilisation follows the
// population's diurnal demand, and when it saturates every subscriber
// behind it sees queuing delay and reduced throughput at once.
type AggregationDevice struct {
	// ID distinguishes devices for deterministic per-device randomness.
	ID uint64
	// Profile is the demand curve of the subscriber population.
	Profile DiurnalProfile
	// BaseUtilization is the utilisation floor from always-on traffic
	// (transit, background sync), applied when demand alone would drop
	// below it.
	BaseUtilization float64
	// PeakUtilization is the utilisation when demand is 1. Values above
	// 1 model under-provisioned devices that saturate at peak — the
	// paper's persistently congested legacy gear.
	PeakUtilization float64
	// Queue converts utilisation into delay.
	Queue QueueModel
	// AccessMbps is the per-subscriber access rate cap in Mbit/s (the
	// technology limit net of framing overhead).
	AccessMbps float64
}

// UtilizationAt returns the device utilisation at time t: offered load is
// proportional to population demand (utilisation reaches PeakUtilization
// when demand is 1), floored at BaseUtilization.
func (d *AggregationDevice) UtilizationAt(t time.Time) float64 {
	u := d.PeakUtilization * d.Profile.DemandAt(t)
	return max(u, d.BaseUtilization)
}

// MeanQueueDelayAt returns the expected queuing delay in ms at time t.
func (d *AggregationDevice) MeanQueueDelayAt(t time.Time) float64 {
	return d.Queue.MeanDelay(d.UtilizationAt(t))
}

// QueueDelayAt draws one queuing-delay observation in ms at time t,
// implementing DelaySource.
func (d *AggregationDevice) QueueDelayAt(t time.Time, rng *rand.Rand) float64 {
	return d.Queue.SampleDelay(d.UtilizationAt(t), rng)
}

// LossProbAt returns the probe-reply loss probability at time t,
// implementing DelaySource.
func (d *AggregationDevice) LossProbAt(t time.Time) float64 {
	return d.Queue.LossProb(d.UtilizationAt(t))
}

// ThroughputAt draws a single-flow throughput observation in Mbit/s at
// time t: the access rate scaled by the device's fair share when
// oversubscribed. This is the rate a CDN object download behind this
// device achieves.
func (d *AggregationDevice) ThroughputAt(t time.Time, rng *rand.Rand) float64 {
	rho := d.UtilizationAt(t)
	thr := d.AccessMbps
	if rho > 1 {
		// Overloaded session-termination gear degrades superlinearly:
		// beyond the fair share (1/rho), loss-recovery and the
		// device's CPU soft path eat into goodput. A cubic decline
		// reproduces the field observation that motivates the paper's
		// §4 — a few milliseconds of (shallow-buffer) queueing delay
		// coinciding with halved throughput. Floored at 1/8 of the
		// access rate.
		thr = max(d.AccessMbps/(rho*rho*rho), d.AccessMbps/8)
	}
	// Per-download variation: server pacing, TCP dynamics, home Wi-Fi.
	noise := Lognormal(rng, 0, 0.18)
	thr *= noise
	return min(max(thr, 0.1), d.AccessMbps*1.05)
}

// ConstantDelay is a DelaySource adding a fixed mean delay with small
// jitter — used for backbone segments that never congest in the model.
type ConstantDelay struct {
	// MeanMs is the mean added delay in milliseconds.
	MeanMs float64
	// JitterMs is the standard deviation of the added delay.
	JitterMs float64
}

// QueueDelayAt implements DelaySource.
func (c ConstantDelay) QueueDelayAt(_ time.Time, rng *rand.Rand) float64 {
	return TruncNormal(rng, c.MeanMs, c.JitterMs, 0)
}

// LossProbAt implements DelaySource: backbone segments do not lose
// traceroute replies in this model.
func (c ConstantDelay) LossProbAt(time.Time) float64 { return 0 }
