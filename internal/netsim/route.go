package netsim

import (
	"errors"
	"math/rand"
	"net/netip"
	"time"
)

// DelaySource contributes stochastic queuing delay to packets crossing a
// path segment and may drop probe replies under overload.
type DelaySource interface {
	// QueueDelayAt draws one queuing-delay observation in ms at time t.
	QueueDelayAt(t time.Time, rng *rand.Rand) float64
	// LossProbAt returns the probability that a probe reply crossing the
	// source at time t is lost.
	LossProbAt(t time.Time) float64
}

// Hop is one router on a simulated route.
type Hop struct {
	// Addr is the address the router answers traceroute probes with. An
	// invalid Addr models a router that does not reply (a "*" hop).
	Addr netip.Addr
	// BaseMs is this hop's added round-trip propagation plus processing
	// time in milliseconds (delta over the previous hop).
	BaseMs float64
	// NoiseMs is the standard deviation of per-probe noise added at this
	// hop (reply generation on the router's slow path).
	NoiseMs float64
	// Sources are the congestion points on the segment between the
	// previous hop and this one; their delay is also incurred by every
	// later hop on the route.
	Sources []DelaySource
}

// Route is an ordered list of hops from a vantage point toward a target.
// Index 0 is the first router (typically the home gateway).
type Route struct {
	Hops []Hop
}

// ErrNoHop is returned when a hop index is out of range.
var ErrNoHop = errors.New("netsim: hop index out of range")

// RTT draws one round-trip time observation in ms to hop i at time t.
// The RTT accumulates the base and congestion delays of hops 0..i, like a
// real TTL-limited probe does, so a congested segment inflates every hop
// at and beyond it. The boolean result is false when the reply was lost.
func (r *Route) RTT(i int, t time.Time, rng *rand.Rand) (float64, bool, error) {
	if i < 0 || i >= len(r.Hops) {
		return 0, false, ErrNoHop
	}
	total := 0.0
	for j := 0; j <= i; j++ {
		h := &r.Hops[j]
		total += h.BaseMs
		for _, src := range h.Sources {
			total += src.QueueDelayAt(t, rng)
			if rng.Float64() < src.LossProbAt(t) {
				return 0, false, nil
			}
		}
	}
	h := &r.Hops[i]
	if h.NoiseMs > 0 {
		total = TruncNormal(rng, total, h.NoiseMs, 0.01)
	}
	return total, true, nil
}

// Len returns the number of hops.
func (r *Route) Len() int { return len(r.Hops) }
