// Package netsim models the network substrate under the measurement
// pipeline: shared access-network aggregation devices with diurnal demand,
// a queueing-delay model, traceroute routes whose hops accumulate those
// delays, and a fair-share throughput model. The same utilisation signal
// drives both queuing delay and throughput, so the delay–throughput
// anticorrelation the paper observes (§4.3) is an emergent property of the
// model rather than an assumption of the analysis.
//
// All randomness is derived deterministically from (seed, entity, time)
// tuples so that simulations are exactly reproducible and independent of
// execution order.
package netsim

import (
	"math"
	"math/rand"
)

// splitmix64 advances and mixes a 64-bit state; it is the standard
// finaliser used to seed PRNGs from arbitrary integers.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// MixSeed reduces a tuple of identifiers to a single well-mixed seed.
// Simulation entities derive their per-(entity, time) PRNGs through it, so
// results do not depend on the order entities are simulated in.
func MixSeed(parts ...uint64) uint64 {
	h := uint64(0x8e51_ecde_7d3a_f3b1)
	for _, p := range parts {
		h = splitmix64(h ^ p)
	}
	return h
}

// splitmixSource is a rand.Source64 backed by splitmix64. The standard
// library's default source pays a ~3µs reseed (it fills a 607-word
// feedback register); simulations here create a fresh PRNG per
// (entity, time) tuple, so seeding must be O(1).
type splitmixSource struct {
	state uint64
}

// Uint64 implements rand.Source64.
func (s *splitmixSource) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	x := s.state
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Int63 implements rand.Source.
func (s *splitmixSource) Int63() int64 { return int64(s.Uint64() >> 1) }

// Seed implements rand.Source.
func (s *splitmixSource) Seed(seed int64) { s.state = uint64(seed) }

// DerivedRand returns a PRNG seeded from the mixed parts.
func DerivedRand(parts ...uint64) *rand.Rand {
	return rand.New(&splitmixSource{state: MixSeed(parts...)})
}

// Stream is a reusable keyed PRNG for hot loops that would otherwise
// create a fresh DerivedRand per (entity, time) tuple: Derive re-keys
// the generator in place, and subsequent draws are bit-identical to a
// fresh DerivedRand with the same parts. Rekeying works because
// splitmixSource's one word of state is the seed, and rand.Rand's only
// state outside its source backs Read, which the pipeline never calls.
// A Stream is not safe for concurrent use; give each worker its own.
type Stream struct {
	*rand.Rand
	src splitmixSource
}

// NewStream returns an unkeyed Stream; call Derive before drawing.
func NewStream() *Stream {
	s := &Stream{}
	s.Rand = rand.New(&s.src)
	return s
}

// Derive re-keys the stream to the mixed parts.
func (s *Stream) Derive(parts ...uint64) {
	s.src.state = MixSeed(parts...)
}

// TruncNormal draws from a normal distribution with the given mean and
// standard deviation, truncated below at lo. RTT noise must never push a
// delay negative.
func TruncNormal(rng *rand.Rand, mean, stddev, lo float64) float64 {
	v := mean + rng.NormFloat64()*stddev
	if v < lo {
		return lo
	}
	return v
}

// Lognormal draws from a lognormal distribution parameterised by the mean
// and standard deviation of the underlying normal. Heavy-tailed per-packet
// delay spikes — cross traffic, CPE scheduling — are well described by a
// lognormal body.
func Lognormal(rng *rand.Rand, mu, sigma float64) float64 {
	return math.Exp(mu + rng.NormFloat64()*sigma)
}
