package netsim

import (
	"math"
	"time"
)

// DiurnalProfile describes how user demand on an access network varies
// over the day and week, normalised so DemandAt returns a value in [0, 1]
// where 1 is the demand at the busiest instant of a regular evening peak.
//
// The shape is the sum of a low nightly baseline and a smooth evening
// peak, following the load curves ISPs publish: demand bottoms out around
// 04:00 local, ramps through the day, and peaks in the 19:00–23:00 window.
// Weekends shift extra demand into the daytime. Lockdowns (COVIDShift)
// raise and widen the daytime plateau, which is exactly the signature the
// paper reads off ISP_US in April 2020.
type DiurnalProfile struct {
	// UTCOffset is the local-time offset of the subscriber population in
	// hours (Japan = +9).
	UTCOffset float64
	// BaseLevel is the demand floor at the quietest time of night, as a
	// fraction of peak (typically 0.25–0.45).
	BaseLevel float64
	// PeakHour is the local hour of maximum demand (typically 21).
	PeakHour float64
	// PeakWidth controls the spread of the evening peak in hours
	// (standard deviation of the Gaussian bump, typically 2.5–3.5).
	PeakWidth float64
	// DaytimeLevel is the mid-afternoon demand plateau as a fraction of
	// peak (typically 0.55–0.75).
	DaytimeLevel float64
	// WeekendBoost adds demand to weekend daytimes, fraction of peak
	// (typically 0.05–0.15).
	WeekendBoost float64
	// COVIDShift raises and widens daytime demand: 0 is normal times,
	// 1 models a full lockdown with work-from-home traffic.
	COVIDShift float64
}

// DefaultProfile returns a typical residential demand profile for the
// given UTC offset.
func DefaultProfile(utcOffset float64) DiurnalProfile {
	return DiurnalProfile{
		UTCOffset:    utcOffset,
		BaseLevel:    0.22,
		PeakHour:     21,
		PeakWidth:    2.8,
		DaytimeLevel: 0.6,
		WeekendBoost: 0.1,
	}
}

// localHour returns the local hour-of-day in [0, 24).
func (p DiurnalProfile) localHour(t time.Time) float64 {
	u := t.UTC()
	h := float64(u.Hour()) + float64(u.Minute())/60 + float64(u.Second())/3600 + p.UTCOffset
	h = math.Mod(h, 24)
	if h < 0 {
		h += 24
	}
	return h
}

// localWeekday returns the weekday at the subscriber's local time.
func (p DiurnalProfile) localWeekday(t time.Time) time.Weekday {
	return t.UTC().Add(time.Duration(p.UTCOffset * float64(time.Hour))).Weekday()
}

// circularGauss evaluates a Gaussian bump centred at c with width w on the
// 24-hour circle.
func circularGauss(h, c, w float64) float64 {
	d := math.Abs(h - c)
	if d > 12 {
		d = 24 - d
	}
	return math.Exp(-d * d / (2 * w * w))
}

// DemandAt returns normalised demand in [0, 1] at time t.
func (p DiurnalProfile) DemandAt(t time.Time) float64 {
	h := p.localHour(t)

	// Evening peak bump.
	peak := circularGauss(h, p.PeakHour, p.PeakWidth)

	// Daytime plateau: smooth rise after ~08:00 local, fading into the
	// evening peak; implemented as a wide bump centred mid-afternoon.
	day := circularGauss(h, 15, 4.5)

	daytime := p.DaytimeLevel
	wd := p.localWeekday(t)
	if wd == time.Saturday || wd == time.Sunday {
		daytime += p.WeekendBoost
	}
	// Lockdown: daytime demand approaches evening-peak demand and the
	// peak itself widens (people stream earlier and longer).
	if p.COVIDShift > 0 {
		daytime += p.COVIDShift * (1.05 - daytime) * 0.8
		wide := circularGauss(h, p.PeakHour, p.PeakWidth*1.5)
		peak = math.Max(peak, p.COVIDShift*0.9*wide)
	}

	demand := p.BaseLevel + (1-p.BaseLevel)*math.Max(peak, daytime*day)
	return min(max(demand, 0), 1)
}

// PeakDemandWindow reports whether t falls within the profile's nominal
// evening peak (within one PeakWidth of PeakHour, local time).
func (p DiurnalProfile) PeakDemandWindow(t time.Time) bool {
	h := p.localHour(t)
	d := math.Abs(h - p.PeakHour)
	if d > 12 {
		d = 24 - d
	}
	return d <= p.PeakWidth
}
