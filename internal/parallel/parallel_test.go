package parallel

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestMapOrdered(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 16} {
		got, err := Map(context.Background(), workers, 100, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 100 {
			t.Fatalf("workers=%d: got %d results, want 100", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(context.Background(), 4, 0, func(i int) (int, error) {
		t.Fatal("fn called for n=0")
		return 0, nil
	})
	if err != nil || got != nil {
		t.Fatalf("got (%v, %v), want (nil, nil)", got, err)
	}
}

func TestMapFirstErrorWins(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for _, workers := range []int{1, 4} {
		_, err := Map(context.Background(), workers, 50, func(i int) (int, error) {
			switch i {
			case 7:
				return 0, errLow
			case 31:
				return 0, errHigh
			}
			return i, nil
		})
		// The lowest failing index is always dispatched before any
		// higher one, so its error must be the one reported.
		if !errors.Is(err, errLow) {
			t.Fatalf("workers=%d: got %v, want %v", workers, err, errLow)
		}
	}
}

func TestMapStopsDispatchAfterError(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int64
	_, err := Map(context.Background(), 2, 10000, func(i int) (int, error) {
		calls.Add(1)
		if i == 0 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want %v", err, boom)
	}
	if n := calls.Load(); n == 10000 {
		t.Fatalf("all %d indices ran despite early error", n)
	}
}

func TestMapContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	_, err := Map(ctx, 4, 10000, func(i int) (int, error) {
		if calls.Add(1) == 10 {
			cancel()
		}
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if n := calls.Load(); n == 10000 {
		t.Fatalf("all %d indices ran despite cancellation", n)
	}
}

func TestForEach(t *testing.T) {
	out := make([]int, 64)
	err := ForEach(context.Background(), 8, len(out), func(i int) error {
		out[i] = i + 1
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i+1 {
			t.Fatalf("out[%d] = %d, want %d", i, v, i+1)
		}
	}
}

// TestMapRaceStress hammers the pool so `go test -race` exercises the
// dispatcher/worker/result handoff; scripts/check.sh runs this package
// under the race detector for exactly that reason.
func TestMapRaceStress(t *testing.T) {
	for round := 0; round < 20; round++ {
		n := 257
		got, err := Map(context.Background(), 8, n, func(i int) (string, error) {
			return fmt.Sprintf("v%d", i), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if want := fmt.Sprintf("v%d", i); v != want {
				t.Fatalf("round %d: got[%d] = %q, want %q", round, i, v, want)
			}
		}
	}
}
