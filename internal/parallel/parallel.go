// Package parallel provides the bounded worker pool the expensive
// pipeline stages fan out on. The survey world derives every stochastic
// draw from (seed, entity, period) tuples via netsim.DerivedRand, so
// per-AS, per-probe, and per-period work is order-independent; this
// package supplies the matching execution layer: results are delivered
// in input order, making parallel output byte-identical to the serial
// run regardless of scheduling. See DESIGN.md §9 for the determinism
// argument.
package parallel

import (
	"context"
	"sync"
	"sync/atomic"

	"github.com/last-mile-congestion/lastmile/internal/telemetry"
)

// Pool instrumentation registers into the process-wide registry at init
// time: pooled fan-outs happen all over the pipeline, so one shared
// inflight gauge is the queue-depth signal operators read. The serial
// path stays untouched — Workers=1 runs must reproduce historical
// behaviour with zero added cost.
var (
	poolRuns     = telemetry.Default().Counter("parallel_pool_runs_total")
	poolTasks    = telemetry.Default().Counter("parallel_tasks_total")
	poolInflight = telemetry.Default().Gauge("parallel_inflight")
)

// Map runs fn for indices 0..n-1 on at most workers goroutines and
// returns the results in input order. workers <= 1 (or n <= 1) runs
// serially on the calling goroutine with no pool overhead — the path
// Workers=1 callers use to reproduce historical serial behaviour
// exactly.
//
// Error semantics are first-error-wins in *input* order: the returned
// error is the one fn produced at the lowest failing index, matching
// what a serial loop that stops at the first failure would return.
// After any failure (or context cancellation) no new indices are
// dispatched; in-flight calls run to completion.
func Map[T any](ctx context.Context, workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, ctx.Err()
	}
	if workers <= 1 || n == 1 {
		return mapSerial(ctx, n, fn)
	}
	if workers > n {
		workers = n
	}
	poolRuns.Inc()
	out := make([]T, n)
	errs := make([]error, n)
	var failed atomic.Bool

	// The dispatcher feeds indices in order and stops at the first
	// observed failure; workers drain the channel until it closes, so
	// the dispatcher's send never deadlocks.
	idx := make(chan int)
	go func() {
		defer close(idx)
		for i := 0; i < n; i++ {
			if failed.Load() || ctx.Err() != nil {
				return
			}
			idx <- i
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				poolTasks.Inc()
				poolInflight.Inc()
				v, err := fn(i)
				poolInflight.Dec()
				if err != nil {
					errs[i] = err
					failed.Store(true)
					continue
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// mapSerial is the workers<=1 path: an ordinary loop, so error handling
// and evaluation order match pre-parallel code exactly.
func mapSerial[T any](ctx context.Context, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		v, err := fn(i)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// ForEach runs fn for indices 0..n-1 on at most workers goroutines with
// the same ordering and error semantics as Map, for stages that write
// their results through fn (typically into a caller-owned slice at
// index i) rather than returning them.
func ForEach(ctx context.Context, workers, n int, fn func(i int) error) error {
	_, err := Map(ctx, workers, n, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}
