package traceroute

import "net/netip"

// A []byte port of net/netip's address parser for the zero-allocation
// decode path: netip.ParseAddr takes a string, and converting a scanner
// token to call it is an allocation encoding/json-free decoding exists
// to remove. The grammar and accepted values track netip.ParseAddr
// exactly — parseV4Fields/parseV6Bytes mirror the stdlib's
// parseIPv4Fields/parseIPv6 — with two deliberate tightenings: zoned
// IPv6 addresses (fe80::1%eth0) are rejected rather than parsed (the
// Atlas schema never carries zones), and the result is returned
// unmapped (4-in-6 forms collapse to IPv4), folding in the .Unmap()
// the reference codec applies after parsing. The differential fuzz over
// ParseAtlasInto exercises the equivalence.

// parseAddrBytes parses an IP address literal, dispatching on the first
// structural byte like netip.ParseAddr.
func parseAddrBytes(s []byte) (netip.Addr, bool) {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '.':
			return parseV4Bytes(s)
		case ':':
			return parseV6Bytes(s)
		case '%':
			// A zone with no address — and were the address present, the
			// ':' would have dispatched to parseV6Bytes, which rejects
			// zones wholesale.
			return netip.Addr{}, false
		}
	}
	return netip.Addr{}, false
}

// parseV4Fields decodes dotted-decimal octets into fields, enforcing
// netip's rules: 1-3 digits per octet, no leading zeros, values ≤ 255,
// exactly four octets.
func parseV4Fields(s []byte, fields []uint8) bool {
	var val, pos, digLen int
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9':
			if digLen == 1 && val == 0 {
				return false // leading zero
			}
			val = val*10 + int(c) - '0'
			digLen++
			if val > 255 {
				return false
			}
		case c == '.':
			// Reject .1.2.3 | 1.2.3. | 1..2.3 | 1.2.3.4.5
			if i == 0 || i == len(s)-1 || s[i-1] == '.' || pos == 3 {
				return false
			}
			fields[pos] = uint8(val)
			pos++
			val, digLen = 0, 0
		default:
			return false
		}
	}
	if pos < 3 {
		return false
	}
	fields[3] = uint8(val)
	return true
}

func parseV4Bytes(s []byte) (netip.Addr, bool) {
	var fields [4]uint8
	if !parseV4Fields(s, fields[:]) {
		return netip.Addr{}, false
	}
	return netip.AddrFrom4(fields), true
}

// parseV6Bytes decodes an IPv6 literal: colon-separated groups of at
// most four hex digits, at most one "::" ellipsis (which must expand to
// at least one zero group), and an optional embedded IPv4 tail
// replacing the final two groups.
func parseV6Bytes(in []byte) (netip.Addr, bool) {
	s := in
	var ip [16]byte
	ellipsis := -1 // byte position of the ellipsis in ip

	// Might have a leading ellipsis.
	if len(s) >= 2 && s[0] == ':' && s[1] == ':' {
		ellipsis = 0
		s = s[2:]
		if len(s) == 0 {
			return netip.IPv6Unspecified(), true
		}
	}

	i := 0
	for i < 16 {
		// One hex group.
		off := 0
		acc := uint32(0)
		for ; off < len(s); off++ {
			c := s[off]
			if c >= '0' && c <= '9' {
				acc = (acc << 4) + uint32(c-'0')
			} else if c >= 'a' && c <= 'f' {
				acc = (acc << 4) + uint32(c-'a'+10)
			} else if c >= 'A' && c <= 'F' {
				acc = (acc << 4) + uint32(c-'A'+10)
			} else {
				break
			}
			if off > 3 || acc > 0xFFFF {
				return netip.Addr{}, false
			}
		}
		if off == 0 {
			return netip.Addr{}, false // empty group
		}

		// A following dot means the group starts an embedded IPv4 tail.
		if off < len(s) && s[off] == '.' {
			if (ellipsis < 0 && i != 12) || i+4 > 16 {
				return netip.Addr{}, false
			}
			if !parseV4Fields(s, ip[i:i+4]) {
				return netip.Addr{}, false
			}
			s = nil
			i += 4
			break
		}

		ip[i] = byte(acc >> 8)
		ip[i+1] = byte(acc)
		i += 2

		s = s[off:]
		if len(s) == 0 {
			break
		}

		// Otherwise the group must be followed by a colon and more.
		if s[0] != ':' || len(s) == 1 {
			return netip.Addr{}, false
		}
		s = s[1:]

		// A second colon is the ellipsis.
		if s[0] == ':' {
			if ellipsis >= 0 {
				return netip.Addr{}, false // multiple ::
			}
			ellipsis = i
			s = s[1:]
			if len(s) == 0 {
				break // trailing :: is valid
			}
		}
	}

	if len(s) != 0 {
		return netip.Addr{}, false // trailing garbage
	}
	if i < 16 {
		if ellipsis < 0 {
			return netip.Addr{}, false // too short without ::
		}
		n := 16 - i
		for j := i - 1; j >= ellipsis; j-- {
			ip[j+n] = ip[j]
		}
		clear(ip[ellipsis : ellipsis+n])
	} else if ellipsis >= 0 {
		return netip.Addr{}, false // :: must stand for ≥1 zero group
	}
	return netip.AddrFrom16(ip).Unmap(), true
}
