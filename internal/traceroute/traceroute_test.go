package traceroute

import (
	"bytes"
	"compress/gzip"
	"math"
	"net/netip"
	"strings"
	"testing"
	"time"
)

func sampleResult() *Result {
	return &Result{
		ProbeID:   1001,
		MsmID:     5010,
		Timestamp: time.Date(2019, 9, 19, 12, 0, 0, 0, time.UTC),
		AF:        4,
		SrcAddr:   netip.MustParseAddr("192.168.1.5"),
		FromAddr:  netip.MustParseAddr("203.0.113.7"),
		DstAddr:   netip.MustParseAddr("193.0.14.129"),
		Proto:     "ICMP",
		Hops: []HopResult{
			{Hop: 1, Replies: []Reply{
				{From: netip.MustParseAddr("192.168.1.1"), RTT: 0.52, TTL: 64},
				{From: netip.MustParseAddr("192.168.1.1"), RTT: 0.48, TTL: 64},
				{From: netip.MustParseAddr("192.168.1.1"), RTT: 0.61, TTL: 64},
			}},
			{Hop: 2, Replies: []Reply{
				{From: netip.MustParseAddr("203.0.113.1"), RTT: 2.1, TTL: 254},
				{Timeout: true, RTT: math.NaN()},
				{From: netip.MustParseAddr("203.0.113.1"), RTT: 2.4, TTL: 254},
			}},
			{Hop: 3, Replies: []Reply{
				{From: netip.MustParseAddr("193.0.14.129"), RTT: 8.9, TTL: 55},
			}},
		},
	}
}

func TestValidateOK(t *testing.T) {
	if err := sampleResult().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateErrors(t *testing.T) {
	r := sampleResult()
	r.AF = 5
	if err := r.Validate(); err == nil {
		t.Fatal("want error for bad AF")
	}

	r = sampleResult()
	r.Timestamp = time.Time{}
	if err := r.Validate(); err == nil {
		t.Fatal("want error for zero timestamp")
	}

	r = sampleResult()
	r.Hops[1].Hop = 1 // duplicate TTL
	if err := r.Validate(); err == nil {
		t.Fatal("want error for out-of-order hops")
	}

	r = sampleResult()
	r.Hops[0].Replies = append(r.Hops[0].Replies, Reply{}, Reply{})
	if err := r.Validate(); err == nil {
		t.Fatal("want error for >3 replies")
	}
}

func TestReachedDst(t *testing.T) {
	r := sampleResult()
	if !r.ReachedDst() {
		t.Fatal("sample reaches its destination")
	}
	r.Hops = r.Hops[:2]
	if r.ReachedDst() {
		t.Fatal("truncated trace does not reach destination")
	}
}

func TestRTTs(t *testing.T) {
	r := sampleResult()
	rtts := r.RTTs(1)
	if len(rtts) != 2 {
		t.Fatalf("rtts = %v, want timeout skipped", rtts)
	}
	if r.RTTs(-1) != nil || r.RTTs(10) != nil {
		t.Fatal("out-of-range hop should return nil")
	}
}

func TestAtlasRoundTrip(t *testing.T) {
	orig := sampleResult()
	data, err := MarshalAtlas(orig)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseAtlas(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.ProbeID != orig.ProbeID || got.MsmID != orig.MsmID || got.AF != orig.AF {
		t.Fatalf("header mismatch: %+v", got)
	}
	if !got.Timestamp.Equal(orig.Timestamp) {
		t.Fatalf("timestamp = %v, want %v", got.Timestamp, orig.Timestamp)
	}
	if got.SrcAddr != orig.SrcAddr || got.FromAddr != orig.FromAddr || got.DstAddr != orig.DstAddr {
		t.Fatal("address mismatch")
	}
	if len(got.Hops) != len(orig.Hops) {
		t.Fatalf("hops = %d, want %d", len(got.Hops), len(orig.Hops))
	}
	if !got.Hops[1].Replies[1].Timeout {
		t.Fatal("timeout reply lost in round trip")
	}
	if got.Hops[0].Replies[0].RTT != 0.52 {
		t.Fatalf("rtt = %v", got.Hops[0].Replies[0].RTT)
	}
	if got.Hops[0].Replies[0].TTL != 64 {
		t.Fatalf("ttl = %d", got.Hops[0].Replies[0].TTL)
	}
}

func TestParseRealAtlasShape(t *testing.T) {
	// A result shaped like genuine Atlas API output, including fields we
	// ignore and an error reply.
	raw := `{
	  "fw": 4790, "af": 4, "prb_id": 6021, "msm_id": 5005,
	  "timestamp": 1568894400, "lts": 22,
	  "src_addr": "192.168.178.30", "from": "93.192.0.10",
	  "dst_addr": "192.33.4.12", "dst_name": "c.root-servers.net",
	  "proto": "ICMP", "size": 48, "paris_id": 9,
	  "result": [
	    {"hop": 1, "result": [
	      {"from": "192.168.178.1", "rtt": 0.72, "size": 28, "ttl": 64},
	      {"from": "192.168.178.1", "rtt": 0.59, "size": 28, "ttl": 64},
	      {"from": "192.168.178.1", "rtt": 0.57, "size": 28, "ttl": 64}]},
	    {"hop": 2, "result": [
	      {"x": "*"},
	      {"from": "87.186.224.94", "rtt": 11.5, "size": 28, "ttl": 253},
	      {"err": "N", "from": "87.186.224.94", "rtt": 12.0}]},
	    {"hop": 255, "result": [{"x": "*"}, {"x": "*"}, {"x": "*"}]}
	  ]
	}`
	r, err := ParseAtlas([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	if r.ProbeID != 6021 {
		t.Fatalf("probe = %d", r.ProbeID)
	}
	if r.Timestamp.Unix() != 1568894400 {
		t.Fatalf("timestamp = %v", r.Timestamp)
	}
	if len(r.Hops) != 3 {
		t.Fatalf("hops = %d", len(r.Hops))
	}
	// The err reply must be treated as unusable.
	if !r.Hops[1].Replies[2].Timeout {
		t.Fatal("err reply should be a timeout")
	}
	if got := r.RTTs(1); len(got) != 1 || got[0] != 11.5 {
		t.Fatalf("hop 2 rtts = %v", got)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParseAtlasBadJSON(t *testing.T) {
	if _, err := ParseAtlas([]byte("{nope")); err == nil {
		t.Fatal("want error")
	}
	if _, err := ParseAtlas([]byte(`{"src_addr": "garbage"}`)); err == nil {
		t.Fatal("want error for bad address")
	}
	if _, err := ParseAtlas([]byte(`{"result":[{"hop":1,"result":[{"from":"bad","rtt":1}]}]}`)); err == nil {
		t.Fatal("want error for bad reply address")
	}
}

func TestWriterScannerRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 5; i++ {
		r := sampleResult()
		r.ProbeID = 1000 + i
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	sc := NewScanner(&buf)
	count := 0
	for sc.Scan() {
		if sc.Result().ProbeID != 1000+count {
			t.Fatalf("probe = %d at %d", sc.Result().ProbeID, count)
		}
		count++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Fatalf("scanned %d, want 5", count)
	}
}

func TestScannerSkipsBlankLines(t *testing.T) {
	data, _ := MarshalAtlas(sampleResult())
	input := "\n" + string(data) + "\n   \n" + string(data) + "\n"
	sc := NewScanner(strings.NewReader(input))
	count := 0
	for sc.Scan() {
		count++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("scanned %d, want 2", count)
	}
}

func TestScannerReportsLineOfError(t *testing.T) {
	data, _ := MarshalAtlas(sampleResult())
	input := string(data) + "\n{broken\n"
	sc := NewScanner(strings.NewReader(input))
	if !sc.Scan() {
		t.Fatal("first line should parse")
	}
	if sc.Scan() {
		t.Fatal("second line should fail")
	}
	if sc.Err() == nil || !strings.Contains(sc.Err().Error(), "line 2") {
		t.Fatalf("err = %v, want line number", sc.Err())
	}
	// After an error, Scan keeps returning false.
	if sc.Scan() {
		t.Fatal("Scan after error should return false")
	}
}

func TestMarshalOmitsInvalidAddrs(t *testing.T) {
	r := sampleResult()
	r.SrcAddr = netip.Addr{}
	data, err := MarshalAtlas(r)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(data, []byte("src_addr")) {
		t.Fatal("invalid src_addr should be omitted")
	}
	back, err := ParseAtlas(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.SrcAddr.IsValid() {
		t.Fatal("src_addr should stay invalid")
	}
}

func BenchmarkParseAtlas(b *testing.B) {
	data, err := MarshalAtlas(sampleResult())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseAtlas(data); err != nil {
			b.Fatal(err)
		}
	}
}

func TestScannerReadsGzip(t *testing.T) {
	var plain bytes.Buffer
	w := NewWriter(&plain)
	for i := 0; i < 3; i++ {
		r := sampleResult()
		r.ProbeID = 500 + i
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	var zipped bytes.Buffer
	zw := gzip.NewWriter(&zipped)
	if _, err := zw.Write(plain.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	sc := NewScanner(&zipped)
	count := 0
	for sc.Scan() {
		if sc.Result().ProbeID != 500+count {
			t.Fatalf("probe = %d", sc.Result().ProbeID)
		}
		count++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Fatalf("scanned %d, want 3", count)
	}
}
