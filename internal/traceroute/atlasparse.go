package traceroute

// A hand-rolled, pooled streaming tokenizer for the RIPE Atlas
// traceroute result JSON — the decode half of the zero-allocation ingest
// path. ParseAtlasInto replaces encoding/json on the hot path: it
// decodes one result into caller-owned storage, reusing the Result's hop
// and reply slices, an internal unescape scratch buffer, and interned
// protocol strings, so steady-state decoding of a stream amortises to
// zero allocations per result (the same EstimateInto/sync.Pool
// discipline the engine hot path uses, enforced by allocguard through
// the //lmvet:hotpath annotations and by the ingest benchmark gate).
//
// Semantics mirror the reference codec (ParseAtlas, which still runs
// encoding/json and serves as the differential-fuzz oracle): the same
// field set, encoding/json's case folding for key matching, JSON null as
// a field no-op (the *float64 rtt resets), invalid UTF-8 and unpaired
// surrogates replaced by U+FFFD inside strings, and identical
// timeout/error-reply folding. Where the two differ the hand parser is
// strictly *tighter* — it rejects a handful of inputs encoding/json
// accepts: duplicate occurrences of a mapped key (json merges them
// element-wise into already-decoded values; nothing produces that on
// purpose), zoned IPv6 addresses, values nested deeper than
// maxSkipDepth, and the literal -9223372036854775808 in an int field.
// FuzzParseAtlasJSON pins the containment: every input ParseAtlasInto
// accepts, ParseAtlas accepts with an identical Result.
//
// The code avoids closures and string conversions throughout — not
// style, contract: allocguard flags both classes on hot paths, so
// object/array walking is explicit loops over enterObject/nextMember
// rather than callbacks.

import (
	"fmt"
	"math"
	"net/netip"
	"strconv"
	"sync"
	"time"
	"unicode/utf8"
)

// SyntaxError is the typed error every malformed input maps onto: the
// byte offset where decoding stopped making sense and a static reason.
// Decoding never panics and never silently truncates.
type SyntaxError struct {
	// Off is the byte offset into the input.
	Off int
	// Msg is the static reason.
	Msg string
}

// Error renders the offset and reason.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("traceroute: atlas json: offset %d: %s", e.Off, e.Msg)
}

// maxSkipDepth bounds the nesting of unknown (skipped) values so hostile
// input cannot overflow the stack. Tighter than encoding/json's 10000,
// which keeps the parser strictly contained in what the oracle accepts.
const maxSkipDepth = 1000

// unixZero is the timestamp encoding/json's zero int64 maps onto —
// time.Unix(0, 0).UTC() — so a result without a timestamp field decodes
// identically through both codecs.
var unixZero = time.Unix(0, 0).UTC()

// Interned protocol strings: assigning these constants instead of
// converting the token bytes keeps the steady-state decode of real Atlas
// data allocation-free.
const (
	protoICMP = "ICMP"
	protoUDP  = "UDP"
	protoTCP  = "TCP"
)

// JSON literals, compared byte-wise by expectLiteral.
const (
	litNull  = "null"
	litTrue  = "true"
	litFalse = "false"
)

// atlasParser is the pooled per-parse state: the input cursor plus two
// reusable buffers (string unescaping, reply source-address retention).
type atlasParser struct {
	data    []byte
	pos     int
	scratch []byte // unescape buffer, valid until the next readString
	fromBuf []byte // holds a reply's "from" string across its object
}

var atlasParserPool = sync.Pool{
	New: func() any {
		return &atlasParser{scratch: make([]byte, 0, 64), fromBuf: make([]byte, 0, 64)}
	},
}

// ParseAtlasInto decodes one RIPE Atlas traceroute result into r,
// reusing r's hop and reply storage. On error r's contents are
// unspecified. The decoded Result owns no part of data; strings are
// interned or copied.
//
//lmvet:hotpath
func ParseAtlasInto(r *Result, data []byte) error {
	p := atlasParserPool.Get().(*atlasParser)
	p.data, p.pos = data, 0
	err := p.parseResult(r)
	p.data = nil
	atlasParserPool.Put(p)
	return err
}

// errAt builds the terminal parse error. Out of line so the hot decode
// loop pays for it only when a stream aborts.
func (p *atlasParser) errAt(msg string) error {
	return &SyntaxError{Off: p.pos, Msg: msg} //lmvet:ignore allocguard terminal error path: one allocation when a stream aborts on malformed input
}

// skipSpace advances past JSON whitespace.
func (p *atlasParser) skipSpace() {
	for p.pos < len(p.data) {
		switch p.data[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

// parseResult decodes the top-level value: an object (the result) or the
// literal null (a zero result, as encoding/json decodes it).
func (p *atlasParser) parseResult(r *Result) error {
	hops := r.Hops[:0]
	*r = Result{Timestamp: unixZero, Hops: hops}

	p.skipSpace()
	if p.pos >= len(p.data) {
		return p.errAt("unexpected end of input")
	}
	switch p.data[p.pos] {
	case 'n':
		if err := p.expectLiteral(litNull); err != nil {
			return err
		}
	case '{':
		if err := p.parseResultObject(r); err != nil {
			return err
		}
	default:
		return p.errAt("expected a result object")
	}
	p.skipSpace()
	if p.pos != len(p.data) {
		return p.errAt("trailing data after result")
	}
	return nil
}

// Bit positions for duplicate-key detection, one seen-set per object.
const (
	seenFw = 1 << iota
	seenAF
	seenPrbID
	seenMsmID
	seenTimestamp
	seenSrcAddr
	seenFrom
	seenDstAddr
	seenProto
	seenResult
	seenHop
	seenX
	seenErrKey
	seenRTT
	seenTTL
)

// mark records a mapped key in an object's seen set, rejecting a second
// occurrence (see the package comment on why duplicates are rejected
// rather than merged).
func (p *atlasParser) mark(seen *uint32, bit uint32) error {
	if *seen&bit != 0 {
		return p.errAt("duplicate object key")
	}
	*seen |= bit
	return nil
}

// parseResultObject decodes the top-level object's fields.
func (p *atlasParser) parseResultObject(r *Result) error {
	more, err := p.enterObject()
	if err != nil {
		return err
	}
	var seen uint32
	for more {
		key, err := p.readKey()
		if err != nil {
			return err
		}
		switch {
		case keyEquals(key, "fw"):
			if err := p.mark(&seen, seenFw); err != nil {
				return err
			}
			// Decoded for validation (the reference schema maps it) but
			// not represented in Result.
			if _, _, err := p.parseIntField(); err != nil {
				return err
			}
		case keyEquals(key, "af"):
			if err := p.mark(&seen, seenAF); err != nil {
				return err
			}
			v, isNull, err := p.parseIntField()
			if err != nil {
				return err
			}
			if !isNull {
				r.AF = int(v)
			}
		case keyEquals(key, "prb_id"):
			if err := p.mark(&seen, seenPrbID); err != nil {
				return err
			}
			v, isNull, err := p.parseIntField()
			if err != nil {
				return err
			}
			if !isNull {
				r.ProbeID = int(v)
			}
		case keyEquals(key, "msm_id"):
			if err := p.mark(&seen, seenMsmID); err != nil {
				return err
			}
			v, isNull, err := p.parseIntField()
			if err != nil {
				return err
			}
			if !isNull {
				r.MsmID = int(v)
			}
		case keyEquals(key, "timestamp"):
			if err := p.mark(&seen, seenTimestamp); err != nil {
				return err
			}
			v, isNull, err := p.parseIntField()
			if err != nil {
				return err
			}
			if !isNull {
				r.Timestamp = time.Unix(v, 0).UTC()
			}
		case keyEquals(key, "src_addr"):
			if err := p.mark(&seen, seenSrcAddr); err != nil {
				return err
			}
			if err := p.parseAddrField(&r.SrcAddr); err != nil {
				return err
			}
		case keyEquals(key, "from"):
			if err := p.mark(&seen, seenFrom); err != nil {
				return err
			}
			if err := p.parseAddrField(&r.FromAddr); err != nil {
				return err
			}
		case keyEquals(key, "dst_addr"):
			if err := p.mark(&seen, seenDstAddr); err != nil {
				return err
			}
			if err := p.parseAddrField(&r.DstAddr); err != nil {
				return err
			}
		case keyEquals(key, "proto"):
			if err := p.mark(&seen, seenProto); err != nil {
				return err
			}
			s, isNull, err := p.parseStringField()
			if err != nil {
				return err
			}
			if !isNull {
				r.Proto = InternProto(s)
			}
		case keyEquals(key, "result"):
			if err := p.mark(&seen, seenResult); err != nil {
				return err
			}
			if err := p.parseHops(r); err != nil {
				return err
			}
		default:
			if err := p.skipValue(0); err != nil {
				return err
			}
		}
		if more, err = p.nextMember(); err != nil {
			return err
		}
	}
	return nil
}

// parseHops decodes the per-TTL hop array. A JSON null is a no-op, as
// null into a slice field is for encoding/json.
func (p *atlasParser) parseHops(r *Result) error {
	p.skipSpace()
	if p.pos < len(p.data) && p.data[p.pos] == 'n' {
		return p.expectLiteral(litNull)
	}
	r.Hops = r.Hops[:0]
	more, err := p.enterArray()
	if err != nil {
		return err
	}
	for more {
		if err := p.parseHop(r.AddHop()); err != nil {
			return err
		}
		if more, err = p.nextElem(); err != nil {
			return err
		}
	}
	return nil
}

// parseHop decodes one hop object (or null: a zero hop).
func (p *atlasParser) parseHop(h *HopResult) error {
	p.skipSpace()
	if p.pos < len(p.data) && p.data[p.pos] == 'n' {
		return p.expectLiteral(litNull)
	}
	more, err := p.enterObject()
	if err != nil {
		return err
	}
	var seen uint32
	for more {
		key, err := p.readKey()
		if err != nil {
			return err
		}
		switch {
		case keyEquals(key, "hop"):
			if err := p.mark(&seen, seenHop); err != nil {
				return err
			}
			v, isNull, err := p.parseIntField()
			if err != nil {
				return err
			}
			if !isNull {
				h.Hop = int(v)
			}
		case keyEquals(key, "result"):
			if err := p.mark(&seen, seenResult); err != nil {
				return err
			}
			if err := p.parseReplies(h); err != nil {
				return err
			}
		default:
			if err := p.skipValue(0); err != nil {
				return err
			}
		}
		if more, err = p.nextMember(); err != nil {
			return err
		}
	}
	return nil
}

// parseReplies decodes one hop's reply array. Null is a no-op like
// parseHops.
func (p *atlasParser) parseReplies(h *HopResult) error {
	p.skipSpace()
	if p.pos < len(p.data) && p.data[p.pos] == 'n' {
		return p.expectLiteral(litNull)
	}
	h.Replies = h.Replies[:0]
	more, err := p.enterArray()
	if err != nil {
		return err
	}
	for more {
		if err := p.parseReply(h.AddReply()); err != nil {
			return err
		}
		if more, err = p.nextElem(); err != nil {
			return err
		}
	}
	return nil
}

// parseReply decodes one reply object, folding it exactly as the
// reference codec does: a reply with a non-empty "x" or "err", an empty
// or missing "from", or no "rtt" is a timeout with NaN RTT; anything
// else must carry a parseable source address.
func (p *atlasParser) parseReply(rep *Reply) error {
	p.skipSpace()
	if p.pos < len(p.data) && p.data[p.pos] == 'n' {
		// null element: the zero reply folds to a timeout.
		if err := p.expectLiteral(litNull); err != nil {
			return err
		}
		rep.Timeout = true
		rep.RTT = math.NaN()
		return nil
	}
	more, err := p.enterObject()
	if err != nil {
		return err
	}
	var seen uint32
	var sawX, sawErr, rttSet bool
	var rtt float64
	var ttl int
	p.fromBuf = p.fromBuf[:0]
	for more {
		key, err := p.readKey()
		if err != nil {
			return err
		}
		switch {
		case keyEquals(key, "x"):
			if err := p.mark(&seen, seenX); err != nil {
				return err
			}
			s, isNull, err := p.parseStringField()
			if err != nil {
				return err
			}
			if !isNull {
				sawX = len(s) > 0
			}
		case keyEquals(key, "err"):
			if err := p.mark(&seen, seenErrKey); err != nil {
				return err
			}
			s, isNull, err := p.parseStringField()
			if err != nil {
				return err
			}
			if !isNull {
				sawErr = len(s) > 0
			}
		case keyEquals(key, "from"):
			if err := p.mark(&seen, seenFrom); err != nil {
				return err
			}
			s, isNull, err := p.parseStringField()
			if err != nil {
				return err
			}
			if !isNull {
				// Retained for after the object: whether it must parse
				// as an address depends on fields that may follow (rtt,
				// x, err).
				p.fromBuf = append(p.fromBuf[:0], s...)
			}
		case keyEquals(key, "rtt"):
			if err := p.mark(&seen, seenRTT); err != nil {
				return err
			}
			// *float64 in the reference schema: null is an explicit
			// absent value, not a no-op.
			p.skipSpace()
			if p.pos < len(p.data) && p.data[p.pos] == 'n' {
				if err := p.expectLiteral(litNull); err != nil {
					return err
				}
				rttSet = false
				break
			}
			v, err := p.parseFloatValue()
			if err != nil {
				return err
			}
			rtt, rttSet = v, true
		case keyEquals(key, "ttl"):
			if err := p.mark(&seen, seenTTL); err != nil {
				return err
			}
			v, isNull, err := p.parseIntField()
			if err != nil {
				return err
			}
			if !isNull {
				ttl = int(v)
			}
		default:
			if err := p.skipValue(0); err != nil {
				return err
			}
		}
		if more, err = p.nextMember(); err != nil {
			return err
		}
	}
	if sawX || sawErr || len(p.fromBuf) == 0 || !rttSet {
		rep.Timeout = true
		rep.RTT = math.NaN()
		return nil
	}
	addr, ok := parseAddrBytes(p.fromBuf)
	if !ok {
		return p.errAt("bad reply address")
	}
	rep.From = addr
	rep.RTT = rtt
	rep.TTL = ttl
	return nil
}

// parseAddrField decodes a string field into an address: the empty
// string is the invalid address (field absent), anything else must
// parse. JSON null leaves the reset (invalid) value.
func (p *atlasParser) parseAddrField(dst *netip.Addr) error {
	s, isNull, err := p.parseStringField()
	if err != nil || isNull {
		return err
	}
	if len(s) == 0 {
		*dst = netip.Addr{}
		return nil
	}
	addr, ok := parseAddrBytes(s)
	if !ok {
		return p.errAt("bad address")
	}
	*dst = addr
	return nil
}

// InternProto maps a protocol token onto its interned constant (ICMP,
// UDP, TCP, ""), so decoding real measurement data never allocates for
// the protocol string. Both decode paths — this parser and the binary
// wire codec — share it.
func InternProto(s []byte) string {
	switch {
	case len(s) == 0:
		return ""
	case bytesEqualString(s, protoICMP):
		return protoICMP
	case bytesEqualString(s, protoUDP):
		return protoUDP
	case bytesEqualString(s, protoTCP):
		return protoTCP
	}
	return string(s) //lmvet:ignore allocguard non-standard protocol token: allocates once per result carrying one, absent from real Atlas data
}

// bytesEqualString compares without converting (a string([]byte)
// conversion is an allocation site to allocguard, and the comparison
// must stay free).
func bytesEqualString(b []byte, s string) bool {
	if len(b) != len(s) {
		return false
	}
	for i := 0; i < len(b); i++ {
		if b[i] != s[i] {
			return false
		}
	}
	return true
}

// enterObject consumes '{' and reports whether the object has members;
// an empty object is consumed entirely.
func (p *atlasParser) enterObject() (bool, error) {
	p.skipSpace()
	if p.pos >= len(p.data) || p.data[p.pos] != '{' {
		return false, p.errAt("expected an object")
	}
	p.pos++
	p.skipSpace()
	if p.pos < len(p.data) && p.data[p.pos] == '}' {
		p.pos++
		return false, nil
	}
	return true, nil
}

// nextMember advances past ',' (more members) or '}' (object done)
// after a member's value.
func (p *atlasParser) nextMember() (bool, error) {
	p.skipSpace()
	if p.pos >= len(p.data) {
		return false, p.errAt("unterminated object")
	}
	switch p.data[p.pos] {
	case ',':
		p.pos++
		return true, nil
	case '}':
		p.pos++
		return false, nil
	}
	return false, p.errAt("expected ',' or '}' in object")
}

// readKey reads `"key" :` and returns the decoded key, valid until the
// next readString (callers match it before decoding the value).
func (p *atlasParser) readKey() ([]byte, error) {
	p.skipSpace()
	key, err := p.readString()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos >= len(p.data) || p.data[p.pos] != ':' {
		return nil, p.errAt("expected ':' after object key")
	}
	p.pos++
	return key, nil
}

// enterArray consumes '[' and reports whether the array has elements;
// an empty array is consumed entirely.
func (p *atlasParser) enterArray() (bool, error) {
	p.skipSpace()
	if p.pos >= len(p.data) || p.data[p.pos] != '[' {
		return false, p.errAt("expected an array")
	}
	p.pos++
	p.skipSpace()
	if p.pos < len(p.data) && p.data[p.pos] == ']' {
		p.pos++
		return false, nil
	}
	return true, nil
}

// nextElem advances past ',' (more elements) or ']' (array done) after
// an element.
func (p *atlasParser) nextElem() (bool, error) {
	p.skipSpace()
	if p.pos >= len(p.data) {
		return false, p.errAt("unterminated array")
	}
	switch p.data[p.pos] {
	case ',':
		p.pos++
		return true, nil
	case ']':
		p.pos++
		return false, nil
	}
	return false, p.errAt("expected ',' or ']' in array")
}

// expectLiteral consumes one of the fixed literals (null, true, false).
func (p *atlasParser) expectLiteral(lit string) error {
	if len(p.data)-p.pos < len(lit) {
		return p.errAt("bad literal")
	}
	for i := 0; i < len(lit); i++ {
		if p.data[p.pos+i] != lit[i] {
			return p.errAt("bad literal")
		}
	}
	p.pos += len(lit)
	return nil
}

// parseIntField decodes an integer-typed field: a JSON number with no
// fraction or exponent, within int64 range — exactly the literals
// encoding/json accepts for an int destination — or null (isNull, a
// no-op for the caller). The one divergence is math.MinInt64 itself,
// rejected rather than decoded (tighter; no Atlas field carries it).
func (p *atlasParser) parseIntField() (v int64, isNull bool, err error) {
	p.skipSpace()
	if p.pos < len(p.data) && p.data[p.pos] == 'n' {
		if err := p.expectLiteral(litNull); err != nil {
			return 0, false, err
		}
		return 0, true, nil
	}
	lit, err := p.readNumber()
	if err != nil {
		return 0, false, err
	}
	i := 0
	neg := false
	if lit[0] == '-' {
		neg = true
		i = 1
	}
	var u uint64
	for ; i < len(lit); i++ {
		c := lit[i]
		if c < '0' || c > '9' {
			return 0, false, p.errAt("number is not an integer")
		}
		u = u*10 + uint64(c-'0')
		if u > math.MaxInt64 {
			return 0, false, p.errAt("integer overflow")
		}
	}
	if neg {
		return -int64(u), false, nil
	}
	return int64(u), false, nil
}

// parseFloatValue decodes a JSON number into a float64 with
// strconv-identical rounding: the Clinger fast path covers every RTT
// real Atlas data carries; mantissas beyond 19 significant digits or
// decimal exponents outside ±22 fall back to strconv.ParseFloat.
func (p *atlasParser) parseFloatValue() (float64, error) {
	lit, err := p.readNumber()
	if err != nil {
		return 0, err
	}
	f, ok := fastFloat(lit)
	if ok {
		return f, nil
	}
	f, perr := strconv.ParseFloat(string(lit), 64) //lmvet:ignore allocguard slow-path conversion for extreme literals; real Atlas RTTs take the exact fast path
	if perr != nil {
		return 0, p.errAt("number out of range")
	}
	return f, nil
}

// fastFloat is the exact fast path: a mantissa of at most 19 significant
// digits that fits 2^53 combined with a decimal exponent in [-22, 22] is
// correctly rounded by one float64 multiply or divide (Clinger 1990).
// ok=false falls back to strconv.
func fastFloat(lit []byte) (f float64, ok bool) {
	i := 0
	neg := false
	if lit[0] == '-' {
		neg = true
		i = 1
	}
	var mant uint64
	digits := 0
	exp := 0
	for ; i < len(lit); i++ {
		c := lit[i]
		if c < '0' || c > '9' {
			break
		}
		if digits < 19 {
			mant = mant*10 + uint64(c-'0')
			if mant != 0 {
				digits++
			}
		} else {
			if c != '0' {
				return 0, false // dropped a non-zero digit: inexact
			}
			exp++
		}
	}
	if i < len(lit) && lit[i] == '.' {
		i++
		for ; i < len(lit); i++ {
			c := lit[i]
			if c < '0' || c > '9' {
				break
			}
			if digits < 19 {
				mant = mant*10 + uint64(c-'0')
				if mant != 0 {
					digits++
				}
				exp--
			} else if c != '0' {
				return 0, false
			}
		}
	}
	if i < len(lit) {
		// Exponent part; the grammar was validated by readNumber.
		i++ // 'e' | 'E'
		eneg := false
		if lit[i] == '+' || lit[i] == '-' {
			eneg = lit[i] == '-'
			i++
		}
		ev := 0
		for ; i < len(lit); i++ {
			ev = ev*10 + int(lit[i]-'0')
			if ev > 10000 {
				return 0, false
			}
		}
		if eneg {
			ev = -ev
		}
		exp += ev
	}
	if mant == 0 {
		if neg {
			return math.Copysign(0, -1), true
		}
		return 0, true
	}
	if mant > 1<<53-1 || exp < -22 || exp > 22 {
		return 0, false
	}
	f = float64(mant)
	if exp > 0 {
		f *= float64pow10[exp]
	} else if exp < 0 {
		f /= float64pow10[-exp]
	}
	if neg {
		f = -f
	}
	return f, true
}

// float64pow10 holds the powers of ten exactly representable as float64.
var float64pow10 = [23]float64{
	1e0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11,
	1e12, 1e13, 1e14, 1e15, 1e16, 1e17, 1e18, 1e19, 1e20, 1e21, 1e22,
}

// readNumber consumes one JSON number token and returns its literal.
func (p *atlasParser) readNumber() ([]byte, error) {
	start := p.pos
	if p.pos < len(p.data) && p.data[p.pos] == '-' {
		p.pos++
	}
	switch {
	case p.pos >= len(p.data):
		return nil, p.errAt("expected a number")
	case p.data[p.pos] == '0':
		p.pos++
	case p.data[p.pos] >= '1' && p.data[p.pos] <= '9':
		for p.pos < len(p.data) && p.data[p.pos] >= '0' && p.data[p.pos] <= '9' {
			p.pos++
		}
	default:
		return nil, p.errAt("expected a number")
	}
	if p.pos < len(p.data) && p.data[p.pos] == '.' {
		p.pos++
		if p.pos >= len(p.data) || p.data[p.pos] < '0' || p.data[p.pos] > '9' {
			return nil, p.errAt("bad number fraction")
		}
		for p.pos < len(p.data) && p.data[p.pos] >= '0' && p.data[p.pos] <= '9' {
			p.pos++
		}
	}
	if p.pos < len(p.data) && (p.data[p.pos] == 'e' || p.data[p.pos] == 'E') {
		p.pos++
		if p.pos < len(p.data) && (p.data[p.pos] == '+' || p.data[p.pos] == '-') {
			p.pos++
		}
		if p.pos >= len(p.data) || p.data[p.pos] < '0' || p.data[p.pos] > '9' {
			return nil, p.errAt("bad number exponent")
		}
		for p.pos < len(p.data) && p.data[p.pos] >= '0' && p.data[p.pos] <= '9' {
			p.pos++
		}
	}
	return p.data[start:p.pos], nil
}

// parseStringField decodes a string-typed field or null. The returned
// bytes are valid until the next readString call.
func (p *atlasParser) parseStringField() (s []byte, isNull bool, err error) {
	p.skipSpace()
	if p.pos < len(p.data) && p.data[p.pos] == 'n' {
		if err := p.expectLiteral(litNull); err != nil {
			return nil, false, err
		}
		return nil, true, nil
	}
	s, err = p.readString()
	return s, false, err
}

// readString consumes one JSON string token and returns its decoded
// bytes: a zero-copy sub-slice of the input when the token is plain
// ASCII without escapes, the reusable scratch buffer otherwise (valid
// until the next readString). Escapes follow encoding/json, including
// replacing unpaired surrogates and invalid UTF-8 with U+FFFD.
func (p *atlasParser) readString() ([]byte, error) {
	if p.pos >= len(p.data) || p.data[p.pos] != '"' {
		return nil, p.errAt("expected a string")
	}
	p.pos++
	start := p.pos
	for p.pos < len(p.data) {
		c := p.data[p.pos]
		if c == '"' {
			s := p.data[start:p.pos]
			p.pos++
			return s, nil
		}
		if c == '\\' || c >= utf8.RuneSelf {
			return p.readStringSlow(start)
		}
		if c < 0x20 {
			return nil, p.errAt("raw control character in string")
		}
		p.pos++
	}
	return nil, p.errAt("unterminated string")
}

// readStringSlow finishes a string containing escapes or non-ASCII
// bytes, decoding into the scratch buffer.
func (p *atlasParser) readStringSlow(start int) ([]byte, error) {
	buf := append(p.scratch[:0], p.data[start:p.pos]...)
	for p.pos < len(p.data) {
		c := p.data[p.pos]
		switch {
		case c == '"':
			p.pos++
			p.scratch = buf
			return buf, nil
		case c < 0x20:
			return nil, p.errAt("raw control character in string")
		case c == '\\':
			p.pos++
			if p.pos >= len(p.data) {
				return nil, p.errAt("unterminated escape")
			}
			e := p.data[p.pos]
			p.pos++
			switch e {
			case '"', '\\', '/':
				buf = append(buf, e) //lmvet:ignore allocguard scratch buffer grows once to the longest escaped string, then every decode reuses it
			case 'b':
				buf = append(buf, '\b') //lmvet:ignore allocguard scratch buffer grows once to the longest escaped string, then every decode reuses it
			case 'f':
				buf = append(buf, '\f') //lmvet:ignore allocguard scratch buffer grows once to the longest escaped string, then every decode reuses it
			case 'n':
				buf = append(buf, '\n') //lmvet:ignore allocguard scratch buffer grows once to the longest escaped string, then every decode reuses it
			case 'r':
				buf = append(buf, '\r') //lmvet:ignore allocguard scratch buffer grows once to the longest escaped string, then every decode reuses it
			case 't':
				buf = append(buf, '\t') //lmvet:ignore allocguard scratch buffer grows once to the longest escaped string, then every decode reuses it
			case 'u':
				r, err := p.readHex4()
				if err != nil {
					return nil, err
				}
				if utf16IsSurrogate(r) {
					// A high surrogate pairs with an immediately
					// following valid \u low surrogate; any other
					// surrogate becomes U+FFFD on its own, with the
					// looked-at escape left for the next iteration —
					// exactly encoding/json's unquote.
					paired := false
					if utf16IsHighSurrogate(r) && p.pos+1 < len(p.data) &&
						p.data[p.pos] == '\\' && p.data[p.pos+1] == 'u' {
						save := p.pos
						p.pos += 2
						r2, err2 := p.readHex4()
						if err2 == nil && utf16IsLowSurrogate(r2) {
							r = 0x10000 + (r-0xD800)<<10 + (r2 - 0xDC00)
							paired = true
						} else {
							p.pos = save
						}
					}
					if !paired {
						r = uint32(utf8.RuneError)
					}
				}
				buf = utf8.AppendRune(buf, rune(r))
			default:
				return nil, p.errAt("invalid escape")
			}
		case c < utf8.RuneSelf:
			buf = append(buf, c) //lmvet:ignore allocguard scratch buffer grows once to the longest escaped string, then every decode reuses it
			p.pos++
		default:
			r, size := utf8.DecodeRune(p.data[p.pos:])
			if r == utf8.RuneError && size == 1 {
				buf = utf8.AppendRune(buf, utf8.RuneError)
			} else {
				buf = append(buf, p.data[p.pos:p.pos+size]...) //lmvet:ignore allocguard scratch buffer grows once to the longest escaped string, then every decode reuses it
			}
			p.pos += size
		}
	}
	return nil, p.errAt("unterminated string")
}

// readHex4 decodes the 4 hex digits of a \u escape.
func (p *atlasParser) readHex4() (uint32, error) {
	if len(p.data)-p.pos < 4 {
		return 0, p.errAt("short unicode escape")
	}
	var v uint32
	for i := 0; i < 4; i++ {
		c := p.data[p.pos+i]
		switch {
		case c >= '0' && c <= '9':
			v = v<<4 | uint32(c-'0')
		case c >= 'a' && c <= 'f':
			v = v<<4 | uint32(c-'a'+10)
		case c >= 'A' && c <= 'F':
			v = v<<4 | uint32(c-'A'+10)
		default:
			return 0, p.errAt("bad unicode escape")
		}
	}
	p.pos += 4
	return v, nil
}

func utf16IsSurrogate(r uint32) bool     { return r >= 0xD800 && r < 0xE000 }
func utf16IsHighSurrogate(r uint32) bool { return r >= 0xD800 && r < 0xDC00 }
func utf16IsLowSurrogate(r uint32) bool  { return r >= 0xDC00 && r < 0xE000 }

// skipValue consumes one JSON value of any shape (an unknown field),
// validating its syntax without building anything.
func (p *atlasParser) skipValue(depth int) error {
	if depth > maxSkipDepth {
		return p.errAt("value nested too deeply")
	}
	p.skipSpace()
	if p.pos >= len(p.data) {
		return p.errAt("expected a value")
	}
	switch c := p.data[p.pos]; {
	case c == '"':
		return p.skipString()
	case c == '-' || (c >= '0' && c <= '9'):
		_, err := p.readNumber()
		return err
	case c == 't':
		return p.expectLiteral(litTrue)
	case c == 'f':
		return p.expectLiteral(litFalse)
	case c == 'n':
		return p.expectLiteral(litNull)
	case c == '{':
		more, err := p.enterObject()
		if err != nil {
			return err
		}
		for more {
			if _, err := p.readKey(); err != nil {
				return err
			}
			if err := p.skipValue(depth + 1); err != nil {
				return err
			}
			if more, err = p.nextMember(); err != nil {
				return err
			}
		}
		return nil
	case c == '[':
		more, err := p.enterArray()
		if err != nil {
			return err
		}
		for more {
			if err := p.skipValue(depth + 1); err != nil {
				return err
			}
			if more, err = p.nextElem(); err != nil {
				return err
			}
		}
		return nil
	}
	return p.errAt("expected a value")
}

// skipString validates one string token without decoding it.
func (p *atlasParser) skipString() error {
	p.pos++ // opening quote, checked by the caller
	for p.pos < len(p.data) {
		c := p.data[p.pos]
		switch {
		case c == '"':
			p.pos++
			return nil
		case c < 0x20:
			return p.errAt("raw control character in string")
		case c == '\\':
			p.pos++
			if p.pos >= len(p.data) {
				return p.errAt("unterminated escape")
			}
			switch p.data[p.pos] {
			case '"', '\\', '/', 'b', 'f', 'n', 'r', 't':
				p.pos++
			case 'u':
				p.pos++
				if _, err := p.readHex4(); err != nil {
					return err
				}
			default:
				return p.errAt("invalid escape")
			}
		default:
			p.pos++
		}
	}
	return p.errAt("unterminated string")
}

// keyEquals reports whether a decoded object key matches the lowercase
// ASCII field name under encoding/json's case folding: ASCII case plus
// the two Unicode runes whose simple-fold orbit lands on an ASCII letter
// (KELVIN SIGN K onto k, LATIN SMALL LETTER LONG S ſ onto s) — so the
// hand parser matches exactly the keys the reference codec matches.
func keyEquals(key []byte, name string) bool {
	j := 0
	for i := 0; i < len(key); {
		if j >= len(name) {
			return false
		}
		c := key[i]
		if c < utf8.RuneSelf {
			if c >= 'A' && c <= 'Z' {
				c += 'a' - 'A'
			}
			if c != name[j] {
				return false
			}
			i++
			j++
			continue
		}
		r, size := utf8.DecodeRune(key[i:])
		switch r {
		case 'K': // U+212A KELVIN SIGN
			c = 'k'
		case 'ſ': // U+017F LATIN SMALL LETTER LONG S
			c = 's'
		default:
			return false
		}
		if c != name[j] {
			return false
		}
		i += size
		j++
	}
	return j == len(name)
}
