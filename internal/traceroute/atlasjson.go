package traceroute

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/netip"
	"time"

	lmioutil "github.com/last-mile-congestion/lastmile/internal/ioutil"
)

// atlasResult mirrors the RIPE Atlas traceroute result schema (firmware
// 4460+). Only the fields the pipeline needs are mapped; unknown fields
// are ignored on decode.
type atlasResult struct {
	Fw        int        `json:"fw"`
	AF        int        `json:"af"`
	PrbID     int        `json:"prb_id"`
	MsmID     int        `json:"msm_id"`
	Timestamp int64      `json:"timestamp"`
	SrcAddr   string     `json:"src_addr,omitempty"`
	From      string     `json:"from,omitempty"`
	DstAddr   string     `json:"dst_addr,omitempty"`
	Proto     string     `json:"proto,omitempty"`
	Result    []atlasHop `json:"result"`
}

type atlasHop struct {
	Hop    int          `json:"hop"`
	Result []atlasReply `json:"result"`
}

// atlasReply is one probe reply: either {"x": "*"} for a timeout or
// {"from": ..., "rtt": ..., "ttl": ...} for an answer. Error replies
// ({"err": ...}) are preserved as timeouts on decode.
type atlasReply struct {
	X    string   `json:"x,omitempty"`
	Err  string   `json:"err,omitempty"`
	From string   `json:"from,omitempty"`
	RTT  *float64 `json:"rtt,omitempty"`
	TTL  int      `json:"ttl,omitempty"`
}

// MarshalAtlas encodes r in the RIPE Atlas result JSON format.
func MarshalAtlas(r *Result) ([]byte, error) {
	ar := atlasResult{
		Fw:        5020,
		AF:        r.AF,
		PrbID:     r.ProbeID,
		MsmID:     r.MsmID,
		Timestamp: r.Timestamp.Unix(),
		Proto:     r.Proto,
	}
	if r.SrcAddr.IsValid() {
		ar.SrcAddr = r.SrcAddr.String()
	}
	if r.FromAddr.IsValid() {
		ar.From = r.FromAddr.String()
	}
	if r.DstAddr.IsValid() {
		ar.DstAddr = r.DstAddr.String()
	}
	for _, h := range r.Hops {
		ah := atlasHop{Hop: h.Hop}
		for _, rep := range h.Replies {
			if rep.Timeout || !rep.From.IsValid() {
				ah.Result = append(ah.Result, atlasReply{X: "*"})
				continue
			}
			rtt := rep.RTT
			ah.Result = append(ah.Result, atlasReply{
				From: rep.From.String(),
				RTT:  &rtt,
				TTL:  rep.TTL,
			})
		}
		ar.Result = append(ar.Result, ah)
	}
	return json.Marshal(ar)
}

// ParseAtlas decodes one RIPE Atlas traceroute result.
func ParseAtlas(data []byte) (*Result, error) {
	var ar atlasResult
	if err := json.Unmarshal(data, &ar); err != nil {
		return nil, fmt.Errorf("traceroute: %w", err)
	}
	return fromAtlas(&ar)
}

func fromAtlas(ar *atlasResult) (*Result, error) {
	r := &Result{
		ProbeID:   ar.PrbID,
		MsmID:     ar.MsmID,
		Timestamp: time.Unix(ar.Timestamp, 0).UTC(),
		AF:        ar.AF,
		Proto:     ar.Proto,
	}
	var err error
	parse := func(s string) (netip.Addr, error) {
		if s == "" {
			return netip.Addr{}, nil
		}
		a, perr := netip.ParseAddr(s)
		if perr != nil {
			return netip.Addr{}, perr
		}
		return a.Unmap(), nil
	}
	if r.SrcAddr, err = parse(ar.SrcAddr); err != nil {
		return nil, fmt.Errorf("traceroute: src_addr: %w", err)
	}
	if r.FromAddr, err = parse(ar.From); err != nil {
		return nil, fmt.Errorf("traceroute: from: %w", err)
	}
	if r.DstAddr, err = parse(ar.DstAddr); err != nil {
		return nil, fmt.Errorf("traceroute: dst_addr: %w", err)
	}
	for _, ah := range ar.Result {
		h := HopResult{Hop: ah.Hop}
		for _, rep := range ah.Result {
			if rep.X != "" || rep.Err != "" || rep.From == "" || rep.RTT == nil {
				h.Replies = append(h.Replies, Reply{Timeout: true, RTT: math.NaN()})
				continue
			}
			from, perr := netip.ParseAddr(rep.From)
			if perr != nil {
				return nil, fmt.Errorf("traceroute: hop %d: bad reply address %q", ah.Hop, rep.From)
			}
			h.Replies = append(h.Replies, Reply{
				From: from.Unmap(),
				RTT:  *rep.RTT,
				TTL:  rep.TTL,
			})
		}
		r.Hops = append(r.Hops, h)
	}
	return r, nil
}

// Writer streams results as newline-delimited Atlas JSON.
type Writer struct {
	w *bufio.Writer
}

// NewWriter wraps w for JSONL output.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Write appends one result as a JSON line.
func (tw *Writer) Write(r *Result) error {
	data, err := MarshalAtlas(r)
	if err != nil {
		return err
	}
	if _, err := tw.w.Write(data); err != nil {
		return err
	}
	return tw.w.WriteByte('\n')
}

// Flush flushes buffered output. Call it before closing the underlying
// writer.
func (tw *Writer) Flush() error { return tw.w.Flush() }

// Scanner streams results from newline-delimited Atlas JSON. It owns
// one Result that every Scan decodes into, so steady-state scanning
// allocates nothing per line; see Result for the reuse contract.
type Scanner struct {
	sc   *bufio.Scanner
	res  Result
	err  error
	line int
}

// NewScanner wraps r for JSONL input, transparently decompressing
// gzip-compressed streams (Atlas dumps usually ship as .gz). Lines up to
// 4 MiB are accepted.
func NewScanner(r io.Reader) *Scanner {
	rd, err := lmioutil.MaybeGzip(r)
	if err != nil {
		// A broken gzip header surfaces as the scanner's first error.
		s := &Scanner{sc: bufio.NewScanner(r)}
		s.err = fmt.Errorf("traceroute: %w", err)
		return s
	}
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	return &Scanner{sc: sc}
}

// Scan advances to the next result, skipping blank lines. It returns
// false at end of input or on the first error; check Err. Each Scan
// overwrites the Result returned by Result.
//
//lmvet:hotpath
func (s *Scanner) Scan() bool {
	if s.err != nil {
		return false
	}
	for s.sc.Scan() {
		s.line++
		line := s.sc.Bytes()
		blank := true
		for _, b := range line {
			if b != ' ' && b != '\t' && b != '\r' {
				blank = false
				break
			}
		}
		if blank {
			continue
		}
		if err := ParseAtlasInto(&s.res, line); err != nil {
			s.err = fmt.Errorf("line %d: %w", s.line, err) //lmvet:ignore allocguard terminal error path: the scan is over
			return false
		}
		return true
	}
	s.err = s.sc.Err()
	return false
}

// Result returns the result decoded by the last successful Scan. The
// pointer and everything it references are valid until the next Scan
// call, which reuses the same storage; callers that retain a result
// across Scans must Clone it (or CopyFrom into their own Result).
func (s *Scanner) Result() *Result { return &s.res }

// Err returns the first error encountered, or nil at clean end of input.
func (s *Scanner) Err() error { return s.err }
