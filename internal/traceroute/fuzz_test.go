package traceroute

import (
	"math"
	"testing"
)

// FuzzParseAtlasJSON is the coverage-guided companion to
// TestParseAtlasNeverPanics: ParseAtlas must never panic, and any input
// it accepts must survive a Marshal/Parse round trip with its sample
// structure intact — hop count, per-hop reply counts, the answered
// (non-timeout) subset, identity fields, and RTT bits.
//
// Seed corpus: the f.Add seeds below plus testdata/fuzz/FuzzParseAtlasJSON.
// scripts/check.sh runs a short -fuzz smoke pass over it.
func FuzzParseAtlasJSON(f *testing.F) {
	valid, err := MarshalAtlas(sampleResult())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte("{}"))
	f.Add([]byte("null"))
	f.Add([]byte(`{"result": [{"hop": 1, "result": [{"x": "*"}]}]}`))
	f.Add([]byte(`{"fw": 5020, "af": 6, "prb_id": 7, "msm_id": 5010, "timestamp": 1568894400,` +
		` "src_addr": "2001:db8::5", "result": [{"hop": 1, "result":` +
		` [{"from": "2001:db8::1", "rtt": 0.7, "ttl": 64}, {"err": "N"}]}]}`))
	f.Add([]byte(`{"result": [{"hop": 1, "result": [{"rtt": "fast"}]}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := ParseAtlas(data) // must not panic
		if err != nil {
			return
		}
		// Accepted input: re-encode and re-parse; the sampled structure
		// must round-trip exactly.
		enc, err := MarshalAtlas(r)
		if err != nil {
			t.Fatalf("accepted input failed to re-encode: %v\ninput: %q", err, data)
		}
		r2, err := ParseAtlas(enc)
		if err != nil {
			t.Fatalf("re-encoded output failed to parse: %v\nencoded: %q", err, enc)
		}
		if r2.ProbeID != r.ProbeID || r2.MsmID != r.MsmID || r2.AF != r.AF ||
			!r2.Timestamp.Equal(r.Timestamp) {
			t.Fatalf("identity fields changed: %+v vs %+v", r2, r)
		}
		if len(r2.Hops) != len(r.Hops) {
			t.Fatalf("hop count %d -> %d", len(r.Hops), len(r2.Hops))
		}
		for i, h := range r.Hops {
			h2 := r2.Hops[i]
			if h2.Hop != h.Hop || len(h2.Replies) != len(h.Replies) {
				t.Fatalf("hop[%d] {%d,%d replies} -> {%d,%d replies}",
					i, h.Hop, len(h.Replies), h2.Hop, len(h2.Replies))
			}
			for j, rep := range h.Replies {
				rep2 := h2.Replies[j]
				if rep2.Timeout != rep.Timeout {
					t.Fatalf("hop[%d] reply[%d] timeout %v -> %v", i, j, rep.Timeout, rep2.Timeout)
				}
				if rep.Timeout {
					continue
				}
				if rep2.From != rep.From || rep2.TTL != rep.TTL ||
					math.Float64bits(rep2.RTT) != math.Float64bits(rep.RTT) {
					t.Fatalf("hop[%d] reply[%d] %+v -> %+v", i, j, rep, rep2)
				}
			}
		}
	})
}
