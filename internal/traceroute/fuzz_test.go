package traceroute

import (
	"math"
	"testing"
)

// FuzzParseAtlasJSON is the coverage-guided companion to
// TestParseAtlasNeverPanics: ParseAtlas must never panic, and any input
// it accepts must survive a Marshal/Parse round trip with its sample
// structure intact — hop count, per-hop reply counts, the answered
// (non-timeout) subset, identity fields, and RTT bits.
//
// It is also the differential oracle for the hand-rolled zero-alloc
// parser: ParseAtlasInto may reject inputs encoding/json accepts (its
// documented tightenings — duplicate mapped keys, zoned addresses, the
// nesting cap), but it must never accept an input the oracle rejects,
// and when both accept they must produce bit-identical Results.
//
// Seed corpus: the f.Add seeds below plus testdata/fuzz/FuzzParseAtlasJSON.
// scripts/check.sh runs a short -fuzz smoke pass over it.
func FuzzParseAtlasJSON(f *testing.F) {
	valid, err := MarshalAtlas(sampleResult())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte("{}"))
	f.Add([]byte("null"))
	f.Add([]byte(`{"result": [{"hop": 1, "result": [{"x": "*"}]}]}`))
	f.Add([]byte(`{"fw": 5020, "af": 6, "prb_id": 7, "msm_id": 5010, "timestamp": 1568894400,` +
		` "src_addr": "2001:db8::5", "result": [{"hop": 1, "result":` +
		` [{"from": "2001:db8::1", "rtt": 0.7, "ttl": 64}, {"err": "N"}]}]}`))
	f.Add([]byte(`{"result": [{"hop": 1, "result": [{"rtt": "fast"}]}]}`))
	// The zero-alloc parser's documented tightenings: the oracle accepts
	// these, ParseAtlasInto rejects them.
	f.Add([]byte(`{"timestamp": 1, "timestamp": 2}`))
	f.Add([]byte(`{"src_addr": "fe80::1%eth0"}`))
	// Key folding and escape handling must match encoding/json exactly.
	f.Add([]byte(`{"PRB_ID": 3, "timestamp": 9}`))
	f.Add([]byte(`{"proto": "𝄞\uD800x", "prb_id": 1}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var into Result
		intoErr := ParseAtlasInto(&into, data) // must not panic
		r, err := ParseAtlas(data)             // must not panic
		if intoErr == nil && err != nil {
			t.Fatalf("ParseAtlasInto accepted input the oracle rejects (%v)\ninput: %q", err, data)
		}
		if err != nil {
			return
		}
		if intoErr == nil && !resultsIdentical(r, &into) {
			t.Fatalf("parsers disagree on accepted input:\noracle: %+v\n  into: %+v\ninput: %q",
				r, &into, data)
		}
		// Accepted input: re-encode and re-parse; the sampled structure
		// must round-trip exactly.
		enc, err := MarshalAtlas(r)
		if err != nil {
			t.Fatalf("accepted input failed to re-encode: %v\ninput: %q", err, data)
		}
		r2, err := ParseAtlas(enc)
		if err != nil {
			t.Fatalf("re-encoded output failed to parse: %v\nencoded: %q", err, enc)
		}
		if r2.ProbeID != r.ProbeID || r2.MsmID != r.MsmID || r2.AF != r.AF ||
			!r2.Timestamp.Equal(r.Timestamp) {
			t.Fatalf("identity fields changed: %+v vs %+v", r2, r)
		}
		// The re-encoding is canonical JSON; the zero-alloc parser must
		// agree with the oracle on it too.
		var into2 Result
		if err := ParseAtlasInto(&into2, enc); err != nil {
			// Zoned addresses survive the oracle's round trip but are a
			// documented ParseAtlasInto tightening; everything else must
			// be accepted.
			if !hasZonedAddr(r) {
				t.Fatalf("ParseAtlasInto rejected canonical re-encoding: %v\nencoded: %q", err, enc)
			}
		} else if !resultsIdentical(r2, &into2) {
			t.Fatalf("parsers disagree on canonical re-encoding:\noracle: %+v\n  into: %+v", r2, &into2)
		}
		if len(r2.Hops) != len(r.Hops) {
			t.Fatalf("hop count %d -> %d", len(r.Hops), len(r2.Hops))
		}
		for i, h := range r.Hops {
			h2 := r2.Hops[i]
			if h2.Hop != h.Hop || len(h2.Replies) != len(h.Replies) {
				t.Fatalf("hop[%d] {%d,%d replies} -> {%d,%d replies}",
					i, h.Hop, len(h.Replies), h2.Hop, len(h2.Replies))
			}
			for j, rep := range h.Replies {
				rep2 := h2.Replies[j]
				if rep2.Timeout != rep.Timeout {
					t.Fatalf("hop[%d] reply[%d] timeout %v -> %v", i, j, rep.Timeout, rep2.Timeout)
				}
				if rep.Timeout {
					continue
				}
				if rep2.From != rep.From || rep2.TTL != rep.TTL ||
					math.Float64bits(rep2.RTT) != math.Float64bits(rep.RTT) {
					t.Fatalf("hop[%d] reply[%d] %+v -> %+v", i, j, rep, rep2)
				}
			}
		}
	})
}

// resultsIdentical is bit-exact equality: every field, RTTs by bit
// pattern, nil and empty slices equal.
func resultsIdentical(a, b *Result) bool {
	if a.ProbeID != b.ProbeID || a.MsmID != b.MsmID || a.AF != b.AF ||
		!a.Timestamp.Equal(b.Timestamp) || a.Proto != b.Proto ||
		a.SrcAddr != b.SrcAddr || a.FromAddr != b.FromAddr || a.DstAddr != b.DstAddr {
		return false
	}
	if len(a.Hops) != len(b.Hops) {
		return false
	}
	for i := range a.Hops {
		ha, hb := &a.Hops[i], &b.Hops[i]
		if ha.Hop != hb.Hop || len(ha.Replies) != len(hb.Replies) {
			return false
		}
		for j := range ha.Replies {
			ra, rb := &ha.Replies[j], &hb.Replies[j]
			if ra.Timeout != rb.Timeout || ra.From != rb.From || ra.TTL != rb.TTL ||
				math.Float64bits(ra.RTT) != math.Float64bits(rb.RTT) {
				return false
			}
		}
	}
	return true
}

// hasZonedAddr reports whether any address in r carries an IPv6 zone —
// representable by the oracle but rejected by the zero-alloc parser.
func hasZonedAddr(r *Result) bool {
	if r.SrcAddr.Zone() != "" || r.FromAddr.Zone() != "" || r.DstAddr.Zone() != "" {
		return true
	}
	for i := range r.Hops {
		for j := range r.Hops[i].Replies {
			if r.Hops[i].Replies[j].From.Zone() != "" {
				return true
			}
		}
	}
	return false
}
