// Package traceroute defines the traceroute result model the pipeline
// consumes and a codec for the RIPE Atlas result format, so the same
// analysis runs on simulated measurements and on genuine Atlas API data.
package traceroute

import (
	"errors"
	"fmt"
	"net/netip"
	"time"
)

// Reply is one response to a TTL-limited probe. Atlas sends three probes
// per hop, so hops normally carry three replies.
type Reply struct {
	// From is the address that answered. Invalid when the probe timed
	// out.
	From netip.Addr
	// RTT is the round-trip time in milliseconds. NaN/0 with Timeout set
	// when the probe timed out.
	RTT float64
	// TTL is the reply's remaining time-to-live, when reported.
	TTL int
	// Timeout marks a probe that received no answer (a "*" in classic
	// traceroute output).
	Timeout bool
}

// HopResult groups the replies for one TTL.
type HopResult struct {
	// Hop is the 1-based TTL of the probes.
	Hop int
	// Replies holds up to three probe replies.
	Replies []Reply
}

// Result is one executed traceroute.
type Result struct {
	// ProbeID identifies the vantage point.
	ProbeID int
	// MsmID identifies the measurement the traceroute belongs to (one of
	// the Atlas built-ins in this pipeline).
	MsmID int
	// Timestamp is the measurement start time.
	Timestamp time.Time
	// AF is the address family, 4 or 6.
	AF int
	// SrcAddr is the probe's local (usually private) address.
	SrcAddr netip.Addr
	// FromAddr is the probe's public address as seen by the Atlas
	// infrastructure; the paper uses it for the probe→ASN longest-prefix
	// match when edge addresses are unannounced.
	FromAddr netip.Addr
	// DstAddr is the traceroute target.
	DstAddr netip.Addr
	// Proto is the probe protocol (ICMP, UDP, TCP).
	Proto string
	// Hops holds the per-TTL results in ascending TTL order.
	Hops []HopResult
}

// Validate checks structural invariants: a known address family,
// ascending hop numbers, and at most three replies per hop.
func (r *Result) Validate() error {
	if r.AF != 4 && r.AF != 6 {
		return fmt.Errorf("traceroute: bad address family %d", r.AF)
	}
	if r.Timestamp.IsZero() {
		return errors.New("traceroute: zero timestamp")
	}
	prev := 0
	for i, h := range r.Hops {
		if h.Hop <= prev {
			return fmt.Errorf("traceroute: hop %d out of order at index %d", h.Hop, i)
		}
		if len(h.Replies) > 3 {
			return fmt.Errorf("traceroute: hop %d has %d replies (max 3)", h.Hop, len(h.Replies))
		}
		prev = h.Hop
	}
	return nil
}

// AddHop appends one zeroed hop to r and returns it, reusing spare hop
// capacity and the slot's previous Replies storage — the growth primitive
// of the zero-allocation decode paths (ParseAtlasInto, wire decoding,
// CopyFrom). Steady-state reuse of one Result allocates nothing once the
// hop and reply slices have grown to the stream's working set.
func (r *Result) AddHop() *HopResult {
	if len(r.Hops) < cap(r.Hops) {
		r.Hops = r.Hops[:len(r.Hops)+1]
		h := &r.Hops[len(r.Hops)-1]
		h.Hop = 0
		h.Replies = h.Replies[:0]
		return h
	}
	r.Hops = append(r.Hops, HopResult{}) //lmvet:ignore allocguard grows once to the stream's max hop count, then every decode reuses the storage
	return &r.Hops[len(r.Hops)-1]
}

// AddReply appends one zeroed reply to h and returns it, reusing spare
// capacity like AddHop.
func (h *HopResult) AddReply() *Reply {
	if len(h.Replies) < cap(h.Replies) {
		h.Replies = h.Replies[:len(h.Replies)+1]
		rep := &h.Replies[len(h.Replies)-1]
		*rep = Reply{}
		return rep
	}
	h.Replies = append(h.Replies, Reply{}) //lmvet:ignore allocguard grows once to the 3-reply steady state, then every decode reuses the storage
	return &h.Replies[len(h.Replies)-1]
}

// CopyFrom deep-copies src into r, reusing r's hop and reply storage.
// It is the allocation-free way to retain a scanner's reused Result
// beyond the next Scan when r itself is recycled (e.g. through a
// sync.Pool).
//
//lmvet:hotpath
func (r *Result) CopyFrom(src *Result) {
	hops := r.Hops[:0]
	*r = *src
	r.Hops = hops
	for i := range src.Hops {
		sh := &src.Hops[i]
		h := r.AddHop()
		h.Hop = sh.Hop
		for j := range sh.Replies {
			*h.AddReply() = sh.Replies[j]
		}
	}
}

// Clone returns a fresh deep copy of r, sharing no storage with it.
func (r *Result) Clone() *Result {
	out := &Result{}
	out.CopyFrom(r)
	return out
}

// ReachedDst reports whether any reply came from the traceroute target.
func (r *Result) ReachedDst() bool {
	for _, h := range r.Hops {
		for _, rep := range h.Replies {
			if !rep.Timeout && rep.From == r.DstAddr {
				return true
			}
		}
	}
	return false
}

// RTTs returns the non-timeout RTTs of hop index i (not TTL).
func (r *Result) RTTs(i int) []float64 {
	if i < 0 || i >= len(r.Hops) {
		return nil
	}
	var out []float64
	for _, rep := range r.Hops[i].Replies {
		if !rep.Timeout && rep.RTT > 0 {
			out = append(out, rep.RTT)
		}
	}
	return out
}
