package traceroute

import (
	"math/rand"
	"strings"
	"testing"
)

// Robustness: the parsers must never panic on malformed or adversarial
// input — they either parse or return an error. These tests replay
// mutation-fuzzed variants of valid documents.

func TestParseAtlasNeverPanics(t *testing.T) {
	valid, err := MarshalAtlas(sampleResult())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	corpus := [][]byte{
		valid,
		[]byte("{}"),
		[]byte("[]"),
		[]byte("null"),
		[]byte(`{"result": "not-an-array"}`),
		[]byte(`{"result": [{"hop": "x"}]}`),
		[]byte(`{"result": [{"hop": 1, "result": [{"rtt": "fast"}]}]}`),
		[]byte(`{"timestamp": -1}`),
		[]byte(`{"af": 99, "prb_id": -5}`),
	}
	for _, seed := range corpus {
		// The seed itself must not panic.
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", seed, r)
				}
			}()
			ParseAtlas(seed) //nolint:errcheck // error is acceptable, panic is not
		}()
		// 200 random mutations of the seed.
		for i := 0; i < 200; i++ {
			mut := append([]byte(nil), seed...)
			for k := 0; k < 1+rng.Intn(4); k++ {
				if len(mut) == 0 {
					break
				}
				switch rng.Intn(3) {
				case 0: // flip a byte
					mut[rng.Intn(len(mut))] = byte(rng.Intn(256))
				case 1: // truncate
					mut = mut[:rng.Intn(len(mut)+1)]
				case 2: // duplicate a chunk
					p := rng.Intn(len(mut))
					mut = append(mut[:p], append([]byte{mut[p]}, mut[p:]...)...)
				}
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("panic on mutated input %q: %v", mut, r)
					}
				}()
				ParseAtlas(mut) //nolint:errcheck // error is acceptable, panic is not
			}()
		}
	}
}

func TestScannerNeverPanicsOnGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		var sb strings.Builder
		lines := rng.Intn(5)
		for l := 0; l < lines; l++ {
			n := rng.Intn(200)
			for i := 0; i < n; i++ {
				sb.WriteByte(byte(rng.Intn(256)))
			}
			sb.WriteByte('\n')
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on garbage stream: %v", r)
				}
			}()
			sc := NewScanner(strings.NewReader(sb.String()))
			for sc.Scan() {
				_ = sc.Result()
			}
			_ = sc.Err()
		}()
	}
}
