// Package experiments regenerates every table and figure of the paper's
// evaluation. Each experiment has a Run function returning a typed result
// and a Render method producing terminal output; cmd/lmexp, the benchmark
// suite, and EXPERIMENTS.md are all driven from here.
//
// Index (see DESIGN.md §4 for the full mapping):
//
//	Fig1     — weekly aggregated queuing delay, ISP_DE vs ISP_US, 7 periods
//	Fig2     — Welch periodograms of the Fig. 1 signals
//	Fig3     — CDFs of prominent frequency and daily amplitude, 646 ASes
//	Fig4     — classification × APNIC rank bucket, Sep 2019 vs Apr 2020
//	Headline — §3's survey numbers (reported counts, churn, COVID, geo)
//	Fig5     — Tokyo aggregated delays, ISP_A/B/C
//	Fig6     — Tokyo CDN throughput, broadband vs mobile
//	Fig7     — delay-throughput Spearman correlation, ISP_A vs ISP_C
//	Fig8     — ISP_D probes vs anchor (Appendix B)
//	Fig9     — IPv4 vs IPv6 throughput (Appendix C)
package experiments

import "runtime"

// Options scales the experiments. The zero value selects paper-scale
// parameters; tests use reduced scales.
type Options struct {
	// Seed drives all randomness (default 2020, the paper's year).
	Seed uint64
	// WorldASes sizes the survey world (default 646).
	WorldASes int
	// FleetSize is the nominal probe count for the Fig. 1/2/8 dedicated
	// fleets (default 340, giving the paper's ~290–345 active probes).
	FleetSize int
	// CDNClients is the client population per Tokyo broadband ISP
	// (default 2000).
	CDNClients int
	// TraceroutesPerBin is the per-bin traceroute cadence (default 6).
	TraceroutesPerBin int
	// Workers bounds the worker pools the expensive stages fan out on:
	// surveys over periods and ASes, fleets over probes, Tokyo over
	// service arms, ablations over variants. 0 selects
	// runtime.GOMAXPROCS(0); 1 reproduces the serial path exactly.
	// Every stochastic draw is keyed by (seed, entity, time) and results
	// are delivered in input order, so output is bit-identical at any
	// worker count (see DESIGN.md).
	Workers int
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 2020
	}
	if o.WorldASes == 0 {
		o.WorldASes = 646
	}
	if o.FleetSize == 0 {
		o.FleetSize = 340
	}
	if o.CDNClients == 0 {
		o.CDNClients = 2000
	}
	if o.TraceroutesPerBin == 0 {
		o.TraceroutesPerBin = 6
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}
