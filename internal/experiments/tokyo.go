package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"net/netip"
	"time"

	"github.com/last-mile-congestion/lastmile/internal/bgp"
	"github.com/last-mile-congestion/lastmile/internal/cdn"
	"github.com/last-mile-congestion/lastmile/internal/parallel"
	"github.com/last-mile-congestion/lastmile/internal/report"
	"github.com/last-mile-congestion/lastmile/internal/scenario"
	"github.com/last-mile-congestion/lastmile/internal/stats"
	"github.com/last-mile-congestion/lastmile/internal/timeseries"
)

// TokyoSet is the shared input of Figures 5, 6, 7 and 9: the §4 case
// study measured end to end — Atlas delays for the Greater-Tokyo probes
// and CDN throughput estimates for every service arm.
type TokyoSet struct {
	Tokyo  *scenario.Tokyo
	Period scenario.Period

	// DelayA/B/C are the aggregated last-mile queuing delays (30-minute
	// bins) with contributing probe counts.
	DelayA, DelayB, DelayC *scenario.PopulationResult

	// Broadband IPv4 throughput, mobile prefixes excluded (15-minute
	// bins) — Fig. 6 top/bottom.
	ThrA, ThrB, ThrC *timeseries.Series
	// Mobile throughput — Fig. 6 middle/bottom.
	ThrAMobile, ThrBMobile, ThrCMobile *timeseries.Series
	// Broadband throughput on 30-minute bins, for the Fig. 7 join with
	// the delay series.
	ThrA30, ThrC30 *timeseries.Series
	// Per-family broadband throughput — Fig. 9.
	ThrA4, ThrA6, ThrB4, ThrB6, ThrC4, ThrC6 *timeseries.Series

	// UniqueIPs counts distinct client addresses seen by the broadband
	// estimators (the paper's ≈150k unique IPs).
	UniqueIPs int
}

// RunTokyo builds the Tokyo world, measures delays, generates one shared
// CDN log stream, and feeds it through all throughput estimators.
func RunTokyo(o Options) (*TokyoSet, error) {
	o = o.withDefaults()
	tk, err := scenario.BuildTokyo(o.Seed, o.CDNClients)
	if err != nil {
		return nil, err
	}
	p := scenario.TokyoPeriod()
	set := &TokyoSet{Tokyo: tk, Period: p}

	// Delays (§4.1). The three fleets fan out as service arms, and each
	// fleet fans out again over its probes; every draw is keyed by probe
	// ID, so the results match the serial run at any worker count.
	delayArms := []*scenario.TokyoISP{tk.ISPA, tk.ISPB, tk.ISPC}
	delays, err := parallel.Map(context.Background(), o.Workers, len(delayArms), func(i int) (*scenario.PopulationResult, error) {
		return scenario.SimulatePopulationDelayWorkers(delayArms[i].Probes, p, o.TraceroutesPerBin, o.Seed, o.Workers)
	})
	if err != nil {
		return nil, err
	}
	set.DelayA, set.DelayB, set.DelayC = delays[0], delays[1], delays[2]

	// Throughput estimators (§4.2). All estimators consume the same
	// mixed log stream, exactly as the paper slices one CDN dataset.
	inAS := func(asn bgp.ASN) func(netip.Addr) bool {
		return func(a netip.Addr) bool {
			origin, err := tk.RIB.OriginOf(a)
			return err == nil && origin == asn
		}
	}
	mkEst := func(asn bgp.ASN, binWidth time.Duration, af int, excludeMobile, onlyMobile bool) (*cdn.Estimator, error) {
		opts := cdn.DefaultThroughputOptions()
		opts.BinWidth = binWidth
		opts.AF = af
		base := inAS(asn)
		switch {
		case excludeMobile:
			opts.Include = func(a netip.Addr) bool { return base(a) && !tk.MobilePrefixes.Contains(a) }
		case onlyMobile:
			opts.Include = func(a netip.Addr) bool { return base(a) && tk.MobilePrefixes.Contains(a) }
		default:
			opts.Include = base
		}
		return cdn.NewEstimator(p.Start, p.End, opts)
	}

	type estSpec struct {
		est **cdn.Estimator
		asn bgp.ASN
		bin time.Duration
		af  int
		// excludeMobile keeps broadband only; onlyMobile the reverse.
		excludeMobile, onlyMobile bool
	}
	var (
		estA, estB, estC                *cdn.Estimator
		estAMob, estBMob, estCMob       *cdn.Estimator
		estA30, estC30                  *cdn.Estimator
		estA4, estA6, estB4, estB6      *cdn.Estimator
		estC4, estC6                    *cdn.Estimator
	)
	specs := []estSpec{
		{&estA, scenario.ASNTokyoA, 15 * time.Minute, 4, true, false},
		{&estB, scenario.ASNTokyoB, 15 * time.Minute, 4, true, false},
		{&estC, scenario.ASNTokyoC, 15 * time.Minute, 4, true, false},
		{&estAMob, scenario.ASNTokyoAMobile, 15 * time.Minute, 4, false, true},
		{&estBMob, scenario.ASNTokyoB, 15 * time.Minute, 4, false, true},
		{&estCMob, scenario.ASNTokyoC, 15 * time.Minute, 4, false, true},
		{&estA30, scenario.ASNTokyoA, 30 * time.Minute, 4, true, false},
		{&estC30, scenario.ASNTokyoC, 30 * time.Minute, 4, true, false},
		{&estA4, scenario.ASNTokyoA, 15 * time.Minute, 4, true, false},
		{&estA6, scenario.ASNTokyoA, 15 * time.Minute, 6, true, false},
		{&estB4, scenario.ASNTokyoB, 15 * time.Minute, 4, true, false},
		{&estB6, scenario.ASNTokyoB, 15 * time.Minute, 6, true, false},
		{&estC4, scenario.ASNTokyoC, 15 * time.Minute, 4, true, false},
		{&estC6, scenario.ASNTokyoC, 15 * time.Minute, 6, true, false},
	}
	ests := make([]*cdn.Estimator, len(specs))
	for j, s := range specs {
		e, err := mkEst(s.asn, s.bin, s.af, s.excludeMobile, s.onlyMobile)
		if err != nil {
			return nil, err
		}
		*s.est = e
		ests[j] = e
	}

	// The six generator arms fan out, each feeding its own estimator
	// shard; shards are merged in arm order afterwards. Arms draw their
	// clients from disjoint prefixes, so the merged estimators are
	// identical to every estimator consuming one shared stream (see
	// Estimator.Merge).
	arms := []*scenario.TokyoISP{tk.ISPA, tk.ISPB, tk.ISPC, tk.ISPAMobile, tk.ISPBMobile, tk.ISPCMobile}
	shards, err := parallel.Map(context.Background(), o.Workers, len(arms), func(i int) ([]*cdn.Estimator, error) {
		arm := arms[i]
		if arm.CDNClients == 0 {
			return nil, nil
		}
		shard := make([]*cdn.Estimator, len(specs))
		for j, s := range specs {
			e, err := mkEst(s.asn, s.bin, s.af, s.excludeMobile, s.onlyMobile)
			if err != nil {
				return nil, err
			}
			shard[j] = e
		}
		emit := func(e cdn.LogEntry) error {
			for _, est := range shard {
				est.Add(&e)
			}
			return nil
		}
		gen := &cdn.Generator{
			Network:                 arm.Network,
			Devices:                 arm.Devices,
			Clients:                 arm.CDNClients,
			RequestsPerClientPerDay: 40,
			DualStackFrac:           0.6,
			Seed:                    o.Seed + uint64(i)*1000,
		}
		if err := gen.Generate(p.Start, p.End, emit); err != nil {
			return nil, err
		}
		return shard, nil
	})
	if err != nil {
		return nil, err
	}
	for _, shard := range shards {
		if shard == nil {
			continue
		}
		for j := range ests {
			ests[j].Merge(shard[j])
		}
	}

	const minIPs = 3
	set.ThrA, set.ThrB, set.ThrC = estA.Series(minIPs), estB.Series(minIPs), estC.Series(minIPs)
	set.ThrAMobile, set.ThrBMobile, set.ThrCMobile = estAMob.Series(minIPs), estBMob.Series(minIPs), estCMob.Series(minIPs)
	set.ThrA30, set.ThrC30 = estA30.Series(minIPs), estC30.Series(minIPs)
	set.ThrA4, set.ThrA6 = estA4.Series(minIPs), estA6.Series(minIPs)
	set.ThrB4, set.ThrB6 = estB4.Series(minIPs), estB6.Series(minIPs)
	set.ThrC4, set.ThrC6 = estC4.Series(minIPs), estC6.Series(minIPs)
	set.UniqueIPs = estA.UniqueIPs() + estB.UniqueIPs() + estC.UniqueIPs()
	return set, nil
}

// Fig5Result is the Tokyo delay comparison (§4.1).
type Fig5Result struct {
	Period                 string
	ProbesA, ProbesB, ProbesC int
	DelayA, DelayB, DelayC *timeseries.Series
	// DailyMax holds each ISP's per-day maximum delay (the markers of
	// Fig. 5).
	DailyMaxA, DailyMaxB, DailyMaxC []float64
}

// Fig5From extracts Figure 5 from a Tokyo run.
func Fig5From(ts *TokyoSet) *Fig5Result {
	return &Fig5Result{
		Period:    ts.Period.Label,
		ProbesA:   ts.DelayA.Probes,
		ProbesB:   ts.DelayB.Probes,
		ProbesC:   ts.DelayC.Probes,
		DelayA:    ts.DelayA.Signal,
		DelayB:    ts.DelayB.Signal,
		DelayC:    ts.DelayC.Signal,
		DailyMaxA: dailyMaxima(ts.DelayA.Signal),
		DailyMaxB: dailyMaxima(ts.DelayB.Signal),
		DailyMaxC: dailyMaxima(ts.DelayC.Signal),
	}
}

// Render writes the Fig. 5 view.
func (r *Fig5Result) Render(w io.Writer) error {
	fmt.Fprintf(w, "Fig. 5 — aggregated last-mile queuing delay, Greater Tokyo, %s\n", r.Period)
	tb := report.NewTable("ISP", "probes", "median", "max", "daily max (ms, per day)", "signal")
	rows := []struct {
		name   string
		probes int
		s      *timeseries.Series
		dm     []float64
	}{
		{"ISP_A", r.ProbesA, r.DelayA, r.DailyMaxA},
		{"ISP_B", r.ProbesB, r.DelayB, r.DailyMaxB},
		{"ISP_C", r.ProbesC, r.DelayC, r.DailyMaxC},
	}
	for _, row := range rows {
		med := stats.MedianIgnoringNaN(row.s.Values)
		max := stats.MaxIgnoringNaN(row.s.Values)
		tb.AddRowf(row.name, row.probes,
			fmt.Sprintf("%.2f", med), fmt.Sprintf("%.2f", max),
			fmtDailyMax(row.dm),
			report.Sparkline(report.Downsample(row.s.Values, 48), 6))
	}
	if err := tb.Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return nil
}

// dailyMaxima returns the per-day maximum of a series.
func dailyMaxima(s *timeseries.Series) []float64 {
	perDay := int(24 * time.Hour / s.Step)
	var out []float64
	for lo := 0; lo < s.Len(); lo += perDay {
		hi := lo + perDay
		if hi > s.Len() {
			hi = s.Len()
		}
		out = append(out, stats.MaxIgnoringNaN(s.Values[lo:hi]))
	}
	return out
}

func fmtDailyMax(dm []float64) string {
	out := ""
	for i, v := range dm {
		if i > 0 {
			out += " "
		}
		if math.IsNaN(v) {
			out += "-"
		} else {
			out += fmt.Sprintf("%.1f", v)
		}
	}
	return out
}

// Fig6Result is the Tokyo throughput comparison (§4.2).
type Fig6Result struct {
	Period string
	// Broadband and Mobile are the median-throughput series per ISP.
	Broadband, Mobile map[string]*timeseries.Series
	UniqueIPs         int
}

// Fig6From extracts Figure 6 from a Tokyo run.
func Fig6From(ts *TokyoSet) *Fig6Result {
	return &Fig6Result{
		Period: ts.Period.Label,
		Broadband: map[string]*timeseries.Series{
			"ISP_A": ts.ThrA, "ISP_B": ts.ThrB, "ISP_C": ts.ThrC,
		},
		Mobile: map[string]*timeseries.Series{
			"ISP_A": ts.ThrAMobile, "ISP_B": ts.ThrBMobile, "ISP_C": ts.ThrCMobile,
		},
		UniqueIPs: ts.UniqueIPs,
	}
}

// Render writes the Fig. 6 view.
func (r *Fig6Result) Render(w io.Writer) error {
	fmt.Fprintf(w, "Fig. 6 — median CDN throughput (Mbps), Tokyo, %s (%d unique broadband IPs)\n", r.Period, r.UniqueIPs)
	tb := report.NewTable("series", "median", "min-of-daily-min", "peak-hour drop", "signal")
	for _, name := range []string{"ISP_A", "ISP_B", "ISP_C"} {
		for _, kind := range []string{"broadband", "mobile"} {
			s := r.Broadband[name]
			if kind == "mobile" {
				s = r.Mobile[name]
			}
			med := stats.MedianIgnoringNaN(s.Values)
			min := stats.MinIgnoringNaN(s.Values)
			drop := peakHourDrop(s)
			tb.AddRowf(name+" "+kind,
				fmt.Sprintf("%.1f", med), fmt.Sprintf("%.1f", min),
				fmt.Sprintf("%.0f%%", 100*drop),
				report.Sparkline(report.Downsample(s.Values, 48), 60))
		}
	}
	if err := tb.Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return nil
}

// peakHourDrop returns 1 − (peak-hour median / off-peak median) for a
// JST subscriber population: peak 20:00–23:00 JST, off-peak 03:00–06:00
// JST.
func peakHourDrop(s *timeseries.Series) float64 {
	var peak, off []float64
	for i, v := range s.Values {
		if math.IsNaN(v) {
			continue
		}
		h := (s.TimeAt(i).UTC().Hour() + 9) % 24 // JST
		switch {
		case h >= 20 && h < 23:
			peak = append(peak, v)
		case h >= 3 && h < 6:
			off = append(off, v)
		}
	}
	pm := stats.MedianIgnoringNaN(peak)
	om := stats.MedianIgnoringNaN(off)
	if math.IsNaN(pm) || math.IsNaN(om) || om == 0 {
		return 0
	}
	return 1 - pm/om
}

// Fig7Result is the delay-throughput correlation (§4.3).
type Fig7Result struct {
	Period string
	// RhoA and RhoC are the Spearman rank correlations for ISP_A and
	// ISP_C (paper: −0.6 and 0.0).
	RhoA, RhoC float64
	// PointsA and PointsC are the (delay ms, throughput Mbps) pairs the
	// scatter plots of Fig. 7 draw.
	PointsA, PointsC [][2]float64
}

// Fig7From joins the Fig. 5 delays with 30-minute-binned throughput and
// computes the correlations.
func Fig7From(ts *TokyoSet) *Fig7Result {
	r := &Fig7Result{Period: ts.Period.Label}
	r.RhoA, r.PointsA = delayThroughput(ts.DelayA.Signal, ts.ThrA30)
	r.RhoC, r.PointsC = delayThroughput(ts.DelayC.Signal, ts.ThrC30)
	return r
}

func delayThroughput(delay, thr *timeseries.Series) (float64, [][2]float64) {
	n := delay.Len()
	if thr.Len() < n {
		n = thr.Len()
	}
	var points [][2]float64
	xs := make([]float64, 0, n)
	ys := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		d, t := delay.Values[i], thr.Values[i]
		if math.IsNaN(d) || math.IsNaN(t) {
			continue
		}
		points = append(points, [2]float64{d, t})
		xs = append(xs, d)
		ys = append(ys, t)
	}
	rho, err := stats.Spearman(xs, ys)
	if err != nil {
		return math.NaN(), points
	}
	return rho, points
}

// Render writes the Fig. 7 view.
func (r *Fig7Result) Render(w io.Writer) error {
	fmt.Fprintf(w, "Fig. 7 — delay vs throughput, Spearman rank correlation, %s\n", r.Period)
	tb := report.NewTable("ISP", "rho (measured)", "rho (paper)", "points")
	tb.AddRowf("ISP_A", fmt.Sprintf("%.2f", r.RhoA), "-0.6", len(r.PointsA))
	tb.AddRowf("ISP_C", fmt.Sprintf("%.2f", r.RhoC), "0.0", len(r.PointsC))
	if err := tb.Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return nil
}

// Fig9Result is the IPv4 vs IPv6 throughput comparison (Appendix C).
type Fig9Result struct {
	Period string
	// V4 and V6 map ISP name to median-throughput series.
	V4, V6 map[string]*timeseries.Series
}

// Fig9From extracts Figure 9 from a Tokyo run.
func Fig9From(ts *TokyoSet) *Fig9Result {
	return &Fig9Result{
		Period: ts.Period.Label,
		V4:     map[string]*timeseries.Series{"ISP_A": ts.ThrA4, "ISP_B": ts.ThrB4, "ISP_C": ts.ThrC4},
		V6:     map[string]*timeseries.Series{"ISP_A": ts.ThrA6, "ISP_B": ts.ThrB6, "ISP_C": ts.ThrC6},
	}
}

// Render writes the Fig. 9 view.
func (r *Fig9Result) Render(w io.Writer) error {
	fmt.Fprintf(w, "Fig. 9 — IPv4 vs IPv6 throughput (Mbps), Tokyo, %s\n", r.Period)
	tb := report.NewTable("ISP", "family", "median", "peak-hour drop", "signal")
	for _, name := range []string{"ISP_A", "ISP_B", "ISP_C"} {
		for _, fam := range []string{"IPv4", "IPv6"} {
			s := r.V4[name]
			if fam == "IPv6" {
				s = r.V6[name]
			}
			tb.AddRowf(name, fam,
				fmt.Sprintf("%.1f", stats.MedianIgnoringNaN(s.Values)),
				fmt.Sprintf("%.0f%%", 100*peakHourDrop(s)),
				report.Sparkline(report.Downsample(s.Values, 48), 60))
		}
	}
	if err := tb.Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return nil
}
