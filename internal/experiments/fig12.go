package experiments

import (
	"context"
	"fmt"
	"io"
	"net/netip"

	"github.com/last-mile-congestion/lastmile/internal/core"
	"github.com/last-mile-congestion/lastmile/internal/dsp"
	"github.com/last-mile-congestion/lastmile/internal/isp"
	"github.com/last-mile-congestion/lastmile/internal/netsim"
	"github.com/last-mile-congestion/lastmile/internal/parallel"
	"github.com/last-mile-congestion/lastmile/internal/report"
	"github.com/last-mile-congestion/lastmile/internal/scenario"
	"github.com/last-mile-congestion/lastmile/internal/stats"
	"github.com/last-mile-congestion/lastmile/internal/timeseries"
)

// Fig. 1's two example networks: a large German eyeball with stable
// last-mile latency, and a large American eyeball with a small but
// persistent diurnal pattern that deepens under the April 2020 lockdown.
const (
	ispDESeverity = isp.Severity(0.04)
	ispUSSeverity = isp.Severity(0.285)
)

// PeriodProfile is one measurement period's aggregated delay view.
type PeriodProfile struct {
	// Period labels the measurement period.
	Period string
	// Probes is the number of contributing probes.
	Probes int
	// Signal is the aggregated queuing delay over the whole period.
	Signal *timeseries.Series
	// Weekly is the Monday-to-Sunday fold of Signal (336 30-minute
	// bins), the x-axis of Fig. 1.
	Weekly []float64
}

// Fig1Result holds the weekly delay profiles of both example ISPs across
// the seven measurement periods.
type Fig1Result struct {
	DE, US []PeriodProfile
}

// fig1Network builds one of the example networks. covidSensitivity
// overrides the archetype default: ISP_US sits in a region whose lockdown
// shifted proportionally more traffic onto residential access.
func fig1Network(name string, asn uint32, cc string, utc float64, sev isp.Severity, covidSensitivity float64, v4, v6 string) (*isp.Network, error) {
	cfg := isp.NewEyeball(name, toASN(asn), cc, utc,
		netip.MustParsePrefix(v4), netip.MustParsePrefix(v6), sev)
	cfg.COVIDSensitivity = covidSensitivity
	return isp.New(cfg)
}

// runFleetPeriods measures one network's fleet over the given periods,
// fanning the periods out on o.Workers workers. Each period builds its
// own devices and probes from period-keyed seeds, so the profiles are
// identical at any worker count.
func runFleetPeriods(network *isp.Network, o Options, idBase int, periods []scenario.Period) ([]PeriodProfile, error) {
	return parallel.Map(context.Background(), o.Workers, len(periods), func(i int) (PeriodProfile, error) {
		p := periods[i]
		devices := network.BuildDevices(netsim.MixSeed(o.Seed, uint64(network.ASN), scenario.PeriodIndex(p)), p.COVIDShift)
		n := scenario.FleetSizeFor(o.FleetSize, p)
		probes, err := scenario.BuildFleet(network, devices, n, idBase, o.Seed)
		if err != nil {
			return PeriodProfile{}, err
		}
		res, err := scenario.SimulatePopulationDelayWorkers(probes, p, o.TraceroutesPerBin, o.Seed, o.Workers)
		if err != nil {
			return PeriodProfile{}, err
		}
		weekly, err := timeseries.DayHourProfile(res.Signal)
		if err != nil {
			return PeriodProfile{}, err
		}
		return PeriodProfile{
			Period: p.Label,
			Probes: res.Probes,
			Signal: res.Signal,
			Weekly: weekly,
		}, nil
	})
}

// Fig1 reproduces Figure 1: one week of aggregated last-mile queuing
// delay for the German and American example ISPs across all seven
// measurement periods.
func Fig1(o Options) (*Fig1Result, error) {
	o = o.withDefaults()
	de, err := fig1Network("ISP_DE", 3320, "DE", 1, ispDESeverity, 1, "11.1.0.0/16", "2001:db8:de00::/48")
	if err != nil {
		return nil, err
	}
	us, err := fig1Network("ISP_US", 7922, "US", -5, ispUSSeverity, 1.05, "11.2.0.0/16", "2001:db8:a500::/48")
	if err != nil {
		return nil, err
	}
	periods := scenario.AllPeriods()
	deProfiles, err := runFleetPeriods(de, o, 100000, periods)
	if err != nil {
		return nil, err
	}
	usProfiles, err := runFleetPeriods(us, o, 200000, periods)
	if err != nil {
		return nil, err
	}
	return &Fig1Result{DE: deProfiles, US: usProfiles}, nil
}

// Render writes the Fig. 1 view: per ISP and period, the probe count,
// the weekly delay envelope as a sparkline, and peak statistics.
func (r *Fig1Result) Render(w io.Writer) error {
	render := func(name string, profiles []PeriodProfile) error {
		fmt.Fprintf(w, "%s — one week of aggregated last-mile queuing delay (ms)\n", name)
		tb := report.NewTable("period", "probes", "max", "p95", "Mon..Sun (sparkline)")
		for _, p := range profiles {
			max, p95 := profileStats(p.Weekly)
			tb.AddRowf(p.Period, p.Probes,
				fmt.Sprintf("%.2f", max), fmt.Sprintf("%.2f", p95),
				report.Sparkline(report.Downsample(p.Weekly, 56), 2.5))
		}
		if err := tb.Render(w); err != nil {
			return err
		}
		_, err := fmt.Fprintln(w)
		return err
	}
	if err := render("ISP_DE", r.DE); err != nil {
		return err
	}
	return render("ISP_US", r.US)
}

// PeriodogramView is one periodogram of Fig. 2.
type PeriodogramView struct {
	Period string
	// Freqs are in cycles per hour; P2P is the average peak-to-peak
	// amplitude (ms) per bin.
	Freqs, P2P []float64
	// DailyAmplitude is the amplitude at 1/24 cycles per hour.
	DailyAmplitude float64
	// DailyIsProminent reports whether the daily bin is the spectrum's
	// prominent peak.
	DailyIsProminent bool
}

// Fig2Result holds the Welch periodograms of the Fig. 1 signals.
type Fig2Result struct {
	DE, US []PeriodogramView
}

// Fig2 reproduces Figure 2: Welch periodograms of the Fig. 1 aggregated
// delays, normalised to read peak-to-peak amplitude directly.
func Fig2(o Options) (*Fig2Result, error) {
	f1, err := Fig1(o)
	if err != nil {
		return nil, err
	}
	return fig2From(f1)
}

// Fig2From computes Fig. 2 from an existing Fig. 1 result, avoiding the
// duplicate simulation when both figures are produced together.
func Fig2From(f1 *Fig1Result) (*Fig2Result, error) { return fig2From(f1) }

func fig2From(f1 *Fig1Result) (*Fig2Result, error) {
	views := func(profiles []PeriodProfile) ([]PeriodogramView, error) {
		var out []PeriodogramView
		for _, p := range profiles {
			filled, err := dsp.Interpolate(p.Signal.Values)
			if err != nil {
				return nil, err
			}
			pg, err := dsp.Welch(filled, p.Signal.SampleRatePerHour(), dsp.WelchDefaults())
			if err != nil {
				return nil, err
			}
			amp, dailyBin, _ := pg.AmplitudeAt(core.DailyFreq)
			peak, _ := pg.ProminentPeak()
			out = append(out, PeriodogramView{
				Period:           p.Period,
				Freqs:            pg.Freqs,
				P2P:              pg.P2P,
				DailyAmplitude:   amp,
				DailyIsProminent: peak.Bin == dailyBin,
			})
		}
		return out, nil
	}
	de, err := views(f1.DE)
	if err != nil {
		return nil, err
	}
	us, err := views(f1.US)
	if err != nil {
		return nil, err
	}
	return &Fig2Result{DE: de, US: us}, nil
}

// Render writes the Fig. 2 view.
func (r *Fig2Result) Render(w io.Writer) error {
	render := func(name string, views []PeriodogramView) error {
		fmt.Fprintf(w, "%s — Welch periodogram, y = avg peak-to-peak amplitude (ms)\n", name)
		tb := report.NewTable("period", "daily amp", "daily prominent", "spectrum (DC..Nyquist)")
		for _, v := range views {
			tb.AddRowf(v.Period,
				fmt.Sprintf("%.2f", v.DailyAmplitude),
				fmt.Sprintf("%v", v.DailyIsProminent),
				report.Sparkline(report.Downsample(v.P2P[1:], 48), 1.2))
		}
		if err := tb.Render(w); err != nil {
			return err
		}
		_, err := fmt.Fprintln(w)
		return err
	}
	if err := render("ISP_DE", r.DE); err != nil {
		return err
	}
	return render("ISP_US", r.US)
}

// profileStats returns max and p95 of the non-NaN weekly values.
func profileStats(weekly []float64) (max, p95 float64) {
	s, err := stats.Summarize(weekly)
	if err != nil {
		return 0, 0
	}
	return s.Max, s.P95
}
