package experiments

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"

	"github.com/last-mile-congestion/lastmile/internal/core"
)

// smallOpts returns reduced-scale options so the tests stay fast while
// exercising every experiment end to end.
func smallOpts() Options {
	return Options{
		Seed:              2020,
		WorldASes:         100,
		FleetSize:         48,
		CDNClients:        150,
		TraceroutesPerBin: 4,
	}
}

// fig1Cache shares the Fig. 1 simulation between the Fig. 1 and Fig. 2
// tests.
var fig1Cache struct {
	once sync.Once
	r    *Fig1Result
	err  error
}

func smallFig1(t *testing.T) *Fig1Result {
	t.Helper()
	fig1Cache.once.Do(func() {
		fig1Cache.r, fig1Cache.err = Fig1(smallOpts())
	})
	if fig1Cache.err != nil {
		t.Fatal(fig1Cache.err)
	}
	return fig1Cache.r
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Seed != 2020 || o.WorldASes != 646 || o.FleetSize != 340 ||
		o.CDNClients != 2000 || o.TraceroutesPerBin != 6 {
		t.Fatalf("defaults = %+v", o)
	}
}

func TestFig1ShapesMatchPaper(t *testing.T) {
	r := smallFig1(t)
	if len(r.DE) != 7 || len(r.US) != 7 {
		t.Fatalf("periods = %d/%d, want 7", len(r.DE), len(r.US))
	}
	// ISP_DE stays flat in every period, including 2020-04. At the
	// reduced test fleet the weekly fold carries sampling noise, so the
	// bound is loose; Fig. 2's daily-amplitude check is the strict one.
	for _, p := range r.DE {
		_, p95 := profileStats(p.Weekly)
		if p95 > 0.6 {
			t.Fatalf("ISP_DE %s weekly p95 = %.2f, want flat", p.Period, p95)
		}
	}
	// ISP_US has a visible diurnal wave that deepens in 2020-04.
	var normalMax, covidMax float64
	for _, p := range r.US {
		max, _ := profileStats(p.Weekly)
		if p.Period == "2020-04" {
			covidMax = max
		} else if max > normalMax {
			normalMax = max
		}
	}
	if normalMax < 0.4 || normalMax > 2 {
		t.Fatalf("ISP_US normal max = %.2f, want a small wave", normalMax)
	}
	if covidMax <= normalMax {
		t.Fatalf("ISP_US covid max %.2f should exceed normal %.2f", covidMax, normalMax)
	}
	// Probe counts grow over the deployment periods.
	if r.US[0].Probes >= r.US[6].Probes {
		t.Fatalf("probe deployment should grow: %d -> %d", r.US[0].Probes, r.US[6].Probes)
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ISP_US") {
		t.Fatal("render missing ISP_US")
	}
}

func TestFig2AmplitudesMatchPaper(t *testing.T) {
	r, err := Fig2From(smallFig1(t))
	if err != nil {
		t.Fatal(err)
	}
	// ISP_DE: daily amplitude well under the Low threshold everywhere.
	for _, v := range r.DE {
		if v.DailyAmplitude > 0.4 {
			t.Fatalf("ISP_DE %s daily amp = %.2f", v.Period, v.DailyAmplitude)
		}
	}
	// ISP_US: ~0.4 ms in normal periods (paper: ~0.4), >1 ms in 2020-04
	// (paper: 1.19) — i.e. Mild under COVID, None otherwise.
	for _, v := range r.US {
		if v.Period == "2020-04" {
			if v.DailyAmplitude < 1 {
				t.Fatalf("ISP_US 2020-04 amp = %.2f, want > 1", v.DailyAmplitude)
			}
			continue
		}
		if v.DailyAmplitude < 0.2 || v.DailyAmplitude > 0.7 {
			t.Fatalf("ISP_US %s amp = %.2f, want ~0.4", v.Period, v.DailyAmplitude)
		}
		if !v.DailyIsProminent {
			t.Fatalf("ISP_US %s daily should be prominent", v.Period)
		}
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

// runSmallSurveys is shared by the survey-derived tests (cached: the
// seven surveys are the most expensive fixture in the suite).
var surveyCache struct {
	once sync.Once
	set  *SurveySet
	err  error
}

func runSmallSurveys(t *testing.T) *SurveySet {
	t.Helper()
	surveyCache.once.Do(func() {
		surveyCache.set, surveyCache.err = RunSurveys(smallOpts())
	})
	if surveyCache.err != nil {
		t.Fatal(surveyCache.err)
	}
	return surveyCache.set
}

func TestSurveySetShape(t *testing.T) {
	set := runSmallSurveys(t)
	if len(set.Longitudinal) != 6 || set.COVID == nil {
		t.Fatalf("surveys = %d + covid %v", len(set.Longitudinal), set.COVID != nil)
	}
	if len(set.AllSurveys()) != 7 {
		t.Fatal("AllSurveys should include COVID")
	}
	if set.septemberSurvey().Period != "2019-09" {
		t.Fatalf("september = %s", set.septemberSurvey().Period)
	}
	// COVID reported count clearly exceeds September's.
	sep := len(set.septemberSurvey().ReportedASes())
	apr := len(set.COVID.ReportedASes())
	if apr <= sep {
		t.Fatalf("COVID reported %d should exceed normal %d", apr, sep)
	}
	growth := float64(apr-sep) / float64(sep)
	if growth < 0.2 || growth > 1.2 {
		t.Fatalf("COVID growth = %.0f%%, want broadly +55%%", growth*100)
	}
}

func TestFig3FromSurveys(t *testing.T) {
	set := runSmallSurveys(t)
	r := Fig3From(set)
	if len(r.Periods) != 6 {
		t.Fatalf("periods = %d", len(r.Periods))
	}
	// The majority of daily amplitudes sit below 0.5 ms.
	if r.AmpSplit[0] < 0.4 {
		t.Fatalf("amp split = %v, want most below 0.5 ms", r.AmpSplit)
	}
	total := r.AmpSplit[0] + r.AmpSplit[1] + r.AmpSplit[2] + r.AmpSplit[3]
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("amp split sums to %v", total)
	}
	// Daily is the majority prominent component, but not universal.
	if r.DailyProminentFrac < 0.4 || r.DailyProminentFrac > 0.99 {
		t.Fatalf("daily prominent frac = %.2f", r.DailyProminentFrac)
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestFig4FromSurveys(t *testing.T) {
	set := runSmallSurveys(t)
	r := Fig4From(set)
	if r.Sep2019.Period != "2019-09" || r.Apr2020.Period != "2020-04" {
		t.Fatalf("periods = %s / %s", r.Sep2019.Period, r.Apr2020.Period)
	}
	var monitored int
	for b := range r.Sep2019.Totals {
		monitored += r.Sep2019.Totals[b]
	}
	if monitored != set.septemberSurvey().Len() {
		t.Fatalf("bucket totals %d != survey size %d", monitored, set.septemberSurvey().Len())
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestHeadlineFromSurveys(t *testing.T) {
	set := runSmallSurveys(t)
	r := HeadlineFrom(set)
	if r.MonitoredASes == 0 || r.AvgReported <= 0 {
		t.Fatalf("headline = %+v", r)
	}
	if r.ReportedApr2020 <= r.ReportedSep2019 {
		t.Fatal("COVID must increase reported count")
	}
	if r.CountriesReported == 0 || r.CountriesSevere == 0 {
		t.Fatal("geography breakdown empty")
	}
	if r.JPSevereShare <= 0 {
		t.Fatal("JP severe share should be positive")
	}
	if r.JPTop10Reported < r.JPTop10Constant {
		t.Fatal("reported-at-least-once cannot be below constantly-reported")
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "COVID increase") {
		t.Fatal("render missing COVID row")
	}
}

// runSmallTokyo is shared by the Tokyo-derived tests (cached).
var tokyoCache struct {
	once sync.Once
	ts   *TokyoSet
	err  error
}

func runSmallTokyo(t *testing.T) *TokyoSet {
	t.Helper()
	tokyoCache.once.Do(func() {
		tokyoCache.ts, tokyoCache.err = RunTokyo(smallOpts())
	})
	if tokyoCache.err != nil {
		t.Fatal(tokyoCache.err)
	}
	return tokyoCache.ts
}

func TestFig5Shapes(t *testing.T) {
	ts := runSmallTokyo(t)
	r := Fig5From(ts)
	if r.ProbesA != 8 || r.ProbesB != 5 || r.ProbesC != 8 {
		t.Fatalf("probes = %d/%d/%d", r.ProbesA, r.ProbesB, r.ProbesC)
	}
	maxA := maxOf(r.DelayA.Values)
	maxC := maxOf(r.DelayC.Values)
	if maxA < 2 {
		t.Fatalf("ISP_A max delay = %.2f, want clear congestion", maxA)
	}
	if maxC > maxA/5 {
		t.Fatalf("ISP_C max %.2f not an order below ISP_A %.2f", maxC, maxA)
	}
	if len(r.DailyMaxA) != 8 {
		t.Fatalf("daily maxima = %d, want 8 days", len(r.DailyMaxA))
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestFig6Shapes(t *testing.T) {
	ts := runSmallTokyo(t)
	r := Fig6From(ts)
	// ISP_A broadband halves at peak; mobile does not; ISP_C flat.
	dropA := peakHourDrop(r.Broadband["ISP_A"])
	dropAMob := peakHourDrop(r.Mobile["ISP_A"])
	dropC := peakHourDrop(r.Broadband["ISP_C"])
	if dropA < 0.3 {
		t.Fatalf("ISP_A broadband peak drop = %.0f%%, want ~half", dropA*100)
	}
	if dropAMob > 0.15 {
		t.Fatalf("ISP_A mobile peak drop = %.0f%%, want stable", dropAMob*100)
	}
	if dropC > 0.15 {
		t.Fatalf("ISP_C peak drop = %.0f%%, want stable", dropC*100)
	}
	if ts.UniqueIPs == 0 {
		t.Fatal("no unique client IPs counted")
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestFig7Correlations(t *testing.T) {
	ts := runSmallTokyo(t)
	r := Fig7From(ts)
	// Paper: ISP_A rho = -0.6, ISP_C rho = 0.0. Shape: strongly negative
	// vs near zero.
	if r.RhoA > -0.4 {
		t.Fatalf("ISP_A rho = %.2f, want strongly negative", r.RhoA)
	}
	if math.Abs(r.RhoC) > 0.35 {
		t.Fatalf("ISP_C rho = %.2f, want near zero", r.RhoC)
	}
	if len(r.PointsA) == 0 || len(r.PointsC) == 0 {
		t.Fatal("no scatter points")
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestFig9IPv6BypassesCongestion(t *testing.T) {
	ts := runSmallTokyo(t)
	r := Fig9From(ts)
	dropV4 := peakHourDrop(r.V4["ISP_A"])
	dropV6 := peakHourDrop(r.V6["ISP_A"])
	if dropV4 < 0.3 {
		t.Fatalf("ISP_A IPv4 drop = %.0f%%", dropV4*100)
	}
	if dropV6 > 0.15 {
		t.Fatalf("ISP_A IPv6 drop = %.0f%%, want IPoE bypass", dropV6*100)
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestFig8AnchorVsProbes(t *testing.T) {
	o := smallOpts()
	r, err := Fig8(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Periods) != 4 {
		t.Fatalf("periods = %d, want 4 (App. B)", len(r.Periods))
	}
	for i := range r.Periods {
		probeMax := maxOf(r.ProbeWeekly[i])
		anchorMax := maxOf(r.AnchorWeekly[i])
		if probeMax < 1.5 {
			t.Fatalf("%s: probes max %.2f, want congestion", r.Periods[i], probeMax)
		}
		if anchorMax > 1 {
			t.Fatalf("%s: anchor max %.2f, want flat", r.Periods[i], anchorMax)
		}
	}
	// 2020-04 has the extra probe of the figure legend.
	if r.ProbeCounts[3] <= r.ProbeCounts[0]-1 {
		t.Fatalf("probe counts = %v", r.ProbeCounts)
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestAblations(t *testing.T) {
	o := smallOpts()

	agg, err := AblationAggregation(o)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Variants[0].Value >= agg.Variants[1].Value {
		t.Fatalf("median %v should be far below mean %v", agg.Variants[0].Value, agg.Variants[1].Value)
	}

	bin, err := AblationBinWidth(o)
	if err != nil {
		t.Fatal(err)
	}
	if bin.Variants[0].Value >= bin.Variants[1].Value {
		t.Fatalf("30-min bins %v should suppress transients vs 5-min %v",
			bin.Variants[0].Value, bin.Variants[1].Value)
	}

	est, err := AblationEstimator(o)
	if err != nil {
		t.Fatal(err)
	}
	if est.Variants[0].Value <= est.Variants[1].Value {
		t.Fatalf("pairwise %v should exceed min-diff %v (queue visibility)",
			est.Variants[0].Value, est.Variants[1].Value)
	}

	disc, err := AblationDiscard(o)
	if err != nil {
		t.Fatal(err)
	}
	if disc.Variants[0].Value*5 >= disc.Variants[1].Value {
		t.Fatalf("filter on %v should be far below filter off %v",
			disc.Variants[0].Value, disc.Variants[1].Value)
	}

	welch, err := AblationWelch(o)
	if err != nil {
		t.Fatal(err)
	}
	if welch.Variants[0].Value <= 0 {
		t.Fatal("welch RMSE should be positive")
	}

	th, err := AblationThresholds(o)
	if err != nil {
		t.Fatal(err)
	}
	if !(th.Variants[0].Value > th.Variants[1].Value && th.Variants[1].Value > th.Variants[2].Value) {
		t.Fatalf("threshold sweep should be monotone: %v", th.Variants)
	}

	var buf bytes.Buffer
	for _, r := range []*AblationResult{agg, bin, est, disc, welch, th} {
		if err := r.Render(&buf); err != nil {
			t.Fatal(err)
		}
	}
}

func TestClassCoherenceWithCore(t *testing.T) {
	// Survey results must use exactly the §2.3 classes.
	set := runSmallSurveys(t)
	for _, res := range set.COVID.Results {
		if res.Class < core.None || res.Class > core.Severe {
			t.Fatalf("unexpected class %v", res.Class)
		}
	}
}

func maxOf(vals []float64) float64 {
	m := 0.0
	for _, v := range vals {
		if !math.IsNaN(v) && v > m {
			m = v
		}
	}
	return m
}
