package experiments

import (
	"fmt"
	"math"
	"testing"
	"time"

	"github.com/last-mile-congestion/lastmile/internal/atlas"
	"github.com/last-mile-congestion/lastmile/internal/core"
	"github.com/last-mile-congestion/lastmile/internal/scenario"
	"github.com/last-mile-congestion/lastmile/internal/stream"
	"github.com/last-mile-congestion/lastmile/internal/traceroute"
)

// TestBatchStreamReplayEquivalence is the unification contract of the
// shared incremental delay engine: streaming a completed measurement
// period through stream.Monitor reproduces core.RunSurvey's signals and
// classifications bit for bit, at every shard and worker count. Batch is
// a replay — there is one pipeline, not two.

// buildReplayDataset generates six days of Atlas traceroutes for probes
// drawn from three Tokyo ISPs with different congestion levels, so the
// equivalence covers Severe, Mild and None verdicts at once. The feed
// order is per probe (each probe's full timeline in turn), which also
// exercises cross-probe out-of-order ingestion on the streaming side.
func buildReplayDataset(t testing.TB) (results []core.AttributedResult, start, end time.Time) {
	t.Helper()
	tk, err := scenario.BuildTokyo(2020, 10)
	if err != nil {
		t.Fatal(err)
	}
	period := scenario.TokyoPeriod()
	start = period.Start
	end = start.AddDate(0, 0, 6)
	eng := atlas.NewEngine(2020)
	for _, isp := range []*scenario.TokyoISP{tk.ISPA, tk.ISPB, tk.ISPC} {
		probes := isp.Probes
		if len(probes) > 3 {
			probes = probes[:3]
		}
		for _, p := range probes {
			asn := p.ASN
			if err := eng.Run(p, start, end, func(r *traceroute.Result) error {
				results = append(results, core.AttributedResult{ASN: asn, Result: r})
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	return results, start, end
}

func TestBatchStreamReplayEquivalence(t *testing.T) {
	results, start, end := buildReplayDataset(t)
	batch, batchSkipped, err := core.RunSurvey("replay", results, core.SurveyOptions{
		Start: start, End: end, Workers: 1, Shards: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if batch.Len() == 0 {
		t.Fatal("batch survey classified no AS")
	}

	for _, cfg := range []struct{ shards, workers int }{{1, 1}, {8, 8}} {
		label := fmt.Sprintf("shards=%d,workers=%d", cfg.shards, cfg.workers)
		m := stream.NewMonitor(stream.Options{
			Window:  end.Sub(start),
			Shards:  cfg.shards,
			Workers: cfg.workers,
		})
		for _, ar := range results {
			if err := m.Observe(ar.ASN, ar.Result); err != nil {
				t.Fatalf("%s: %v", label, err)
			}
		}
		if st := m.Stats(); st.Dropped != 0 {
			t.Fatalf("%s: replay dropped %d results", label, st.Dropped)
		}

		verdicts, skipped := m.ClassifyAll()
		if len(verdicts) != batch.Len() {
			t.Fatalf("%s: %d streaming verdicts vs %d batch results", label, len(verdicts), batch.Len())
		}
		if len(skipped) != len(batchSkipped) {
			t.Fatalf("%s: %d streaming skips vs %d batch skips", label, len(skipped), len(batchSkipped))
		}
		for i := range skipped {
			if skipped[i].ASN != batchSkipped[i].ASN {
				t.Fatalf("%s: skip %d is AS%v, batch skipped AS%v", label, i, skipped[i].ASN, batchSkipped[i].ASN)
			}
		}
		for _, v := range verdicts {
			want := batch.Results[v.ASN]
			if want == nil {
				t.Fatalf("%s: AS%v classified online but absent from batch survey", label, v.ASN)
			}
			if v.Probes != want.Probes || v.Class != want.Class || v.IsDaily != want.IsDaily {
				t.Fatalf("%s: AS%v verdict {%d, %v, %v} vs batch {%d, %v, %v}", label, v.ASN,
					v.Probes, v.Class, v.IsDaily, want.Probes, want.Class, want.IsDaily)
			}
			if math.Float64bits(v.DailyAmplitude) != math.Float64bits(want.DailyAmplitude) {
				t.Fatalf("%s: AS%v amplitude %v vs %v", label, v.ASN, v.DailyAmplitude, want.DailyAmplitude)
			}
			if fmt.Sprintf("%#v", v.Peak) != fmt.Sprintf("%#v", want.Peak) {
				t.Fatalf("%s: AS%v peak %#v vs %#v", label, v.ASN, v.Peak, want.Peak)
			}
			sameSeries(t, fmt.Sprintf("%s AS%v signal", label, v.ASN), want.Signal, v.Signal)
		}
	}
}
